// Package topology describes a grid deployment: sites, nodes, network
// interfaces and the networks that connect them. It is the knowledge
// base the selector (paper §4.2, "Selector") consults to choose, for
// every pair of nodes, which network and which communication method to
// use. Topology is pure description; the runtime behaviour of each
// network lives in internal/netsim.
package topology

import (
	"fmt"
	"time"
)

// NodeID identifies a node (a "process" in PadicoTM terms) across the
// whole grid.
type NodeID int

// NetworkKind classifies a network by technology, which implies its
// paradigm affinity: SANs are parallel-oriented, LAN/WAN are
// distributed-oriented (paper §2.2).
type NetworkKind int

const (
	Loopback NetworkKind = iota
	Myrinet              // SAN, GM/BIP drivers
	SCI                  // SAN, SISCI driver
	VIANet               // SAN, VIA driver
	Ethernet             // LAN, TCP/IP
	WAN                  // high-bandwidth high-latency (VTHD-like)
	Internet             // slow lossy trans-continental link
)

var kindNames = map[NetworkKind]string{
	Loopback: "loopback", Myrinet: "myrinet", SCI: "sci", VIANet: "via",
	Ethernet: "ethernet", WAN: "wan", Internet: "internet",
}

func (k NetworkKind) String() string { return kindNames[k] }

// Parallel reports whether this technology is parallel-oriented, i.e.
// reached through Madeleine/MadIO rather than sockets/SysIO.
func (k NetworkKind) Parallel() bool {
	switch k {
	case Myrinet, SCI, VIANet:
		return true
	}
	return false
}

// Network is one interconnect: a Myrinet switch, an Ethernet segment, a
// WAN path between two sites.
type Network struct {
	Name    string
	Kind    NetworkKind
	Secure  bool          // physically secure (machine room) vs public
	RateBps float64       // payload bytes/s of one link
	Latency time.Duration // one-way wire latency
	Loss    float64       // packet loss probability (0..1)
	MTU     int           // maximum transmission unit (0 = message-based)

	members map[NodeID]int // node -> address on this network
	next    int
}

// Addr returns n's address on the network and whether it is attached.
func (nw *Network) Addr(n NodeID) (int, bool) {
	a, ok := nw.members[n]
	return a, ok
}

// Members returns the attached nodes in address order.
func (nw *Network) Members() []NodeID {
	out := make([]NodeID, len(nw.members))
	for n, a := range nw.members {
		out[a] = n
	}
	return out
}

// Size returns the number of attached nodes.
func (nw *Network) Size() int { return len(nw.members) }

// NIC is one attachment of a node to a network.
type NIC struct {
	Node NodeID
	Net  *Network
	Addr int // address on Net
}

// Node is a grid node: a machine in some site running one PadicoTM
// process.
type Node struct {
	ID   NodeID
	Name string
	Site string // administrative domain; inter-site traffic is "insecure"
	NICs []*NIC
}

// Grid is the full deployment description.
type Grid struct {
	nodes    []*Node
	networks []*Network
}

// New returns an empty grid.
func New() *Grid { return &Grid{} }

// AddNetwork declares a network.
func (g *Grid) AddNetwork(name string, kind NetworkKind, secure bool,
	rate float64, lat time.Duration, loss float64, mtu int) *Network {
	nw := &Network{
		Name: name, Kind: kind, Secure: secure,
		RateBps: rate, Latency: lat, Loss: loss, MTU: mtu,
		members: make(map[NodeID]int),
	}
	g.networks = append(g.networks, nw)
	return nw
}

// AddNode declares a node in a site.
func (g *Grid) AddNode(name, site string) *Node {
	n := &Node{ID: NodeID(len(g.nodes)), Name: name, Site: site}
	g.nodes = append(g.nodes, n)
	return n
}

// Attach connects a node to a network and returns the new NIC.
func (g *Grid) Attach(n *Node, nw *Network) *NIC {
	if _, dup := nw.members[n.ID]; dup {
		panic(fmt.Sprintf("topology: node %s already on network %s", n.Name, nw.Name))
	}
	nic := &NIC{Node: n.ID, Net: nw, Addr: nw.next}
	nw.members[n.ID] = nw.next
	nw.next++
	n.NICs = append(n.NICs, nic)
	return nic
}

// Node returns the node with the given id.
func (g *Grid) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("topology: unknown node %d", id))
	}
	return g.nodes[id]
}

// Nodes returns all nodes in id order.
func (g *Grid) Nodes() []*Node { return g.nodes }

// Networks returns all declared networks.
func (g *Grid) Networks() []*Network { return g.networks }

// Common returns the networks shared by two nodes, in declaration order.
func (g *Grid) Common(a, b NodeID) []*Network {
	var out []*Network
	for _, nw := range g.networks {
		if _, oka := nw.members[a]; !oka {
			continue
		}
		if _, okb := nw.members[b]; !okb {
			continue
		}
		out = append(out, nw)
	}
	return out
}

// SameSite reports whether two nodes belong to the same site.
func (g *Grid) SameSite(a, b NodeID) bool {
	return g.Node(a).Site == g.Node(b).Site
}

// Sites returns the distinct site names in first-declaration order.
// Data-placement layers use sites as failure/locality zones.
func (g *Grid) Sites() []string {
	var out []string
	seen := make(map[string]bool)
	for _, n := range g.nodes {
		if !seen[n.Site] {
			seen[n.Site] = true
			out = append(out, n.Site)
		}
	}
	return out
}

// String renders a human-readable inventory (used by cmd/padico-info).
func (g *Grid) String() string {
	s := ""
	for _, nw := range g.networks {
		s += fmt.Sprintf("network %-12s kind=%-8s secure=%-5v rate=%.3gMB/s lat=%v loss=%.2g nodes=%d\n",
			nw.Name, nw.Kind, nw.Secure, nw.RateBps/1e6, nw.Latency, nw.Loss, nw.Size())
	}
	for _, n := range g.nodes {
		s += fmt.Sprintf("node %-10s site=%-8s nics=", n.Name, n.Site)
		for i, nic := range n.NICs {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%s[%d]", nic.Net.Name, nic.Addr)
		}
		s += "\n"
	}
	return s
}
