package topology

import (
	"testing"
	"time"
)

// build declares: site A {n0,n1} on myrinet+ethernet, site B {n2} on
// ethernet2+wan, with the wan also reaching n0 and n1.
func build() (*Grid, []*Node, []*Network) {
	g := New()
	myri := g.AddNetwork("myri", Myrinet, true, 250e6, 2*time.Microsecond, 0, 0)
	eth := g.AddNetwork("eth", Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	eth2 := g.AddNetwork("eth2", Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	wan := g.AddNetwork("wan", WAN, false, 12.2e6, 8*time.Millisecond, 0, 1500)

	n0 := g.AddNode("n0", "A")
	n1 := g.AddNode("n1", "A")
	n2 := g.AddNode("n2", "B")
	for _, n := range []*Node{n0, n1} {
		g.Attach(n, myri)
		g.Attach(n, eth)
		g.Attach(n, wan)
	}
	g.Attach(n2, eth2)
	g.Attach(n2, wan)
	return g, []*Node{n0, n1, n2}, []*Network{myri, eth, eth2, wan}
}

func TestCommonNetworks(t *testing.T) {
	g, _, nws := build()
	myri, wan := nws[0], nws[3]

	// Same-cluster pair shares SAN + LAN + WAN, in declaration order.
	common := g.Common(0, 1)
	if len(common) != 3 || common[0] != myri {
		t.Fatalf("Common(0,1) = %v", common)
	}
	// Cross-site pair shares only the WAN.
	common = g.Common(0, 2)
	if len(common) != 1 || common[0] != wan {
		t.Fatalf("Common(0,2) = %v", common)
	}
	// Same-node "pair" shares everything the node is attached to.
	if got := g.Common(0, 0); len(got) != 3 {
		t.Fatalf("Common(0,0) = %v", got)
	}
}

func TestSameSiteAndSites(t *testing.T) {
	g, _, _ := build()
	if !g.SameSite(0, 1) || g.SameSite(0, 2) {
		t.Fatal("site classification wrong")
	}
	sites := g.Sites()
	if len(sites) != 2 || sites[0] != "A" || sites[1] != "B" {
		t.Fatalf("Sites() = %v", sites)
	}
}

func TestMembersAddressOrder(t *testing.T) {
	g, _, nws := build()
	wan := nws[3]
	members := wan.Members()
	if len(members) != 3 {
		t.Fatalf("wan members = %v", members)
	}
	for i, m := range members {
		addr, ok := wan.Addr(m)
		if !ok || addr != i {
			t.Fatalf("member %d has addr %d (attached=%v)", m, addr, ok)
		}
	}
	if _, ok := nws[0].Addr(2); ok {
		t.Fatal("n2 reported attached to myrinet")
	}
	_ = g
}

func TestDoubleAttachPanics(t *testing.T) {
	g, nodes, nws := build()
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	g.Attach(nodes[0], nws[0])
}

func TestParallelKinds(t *testing.T) {
	parallel := []NetworkKind{Myrinet, SCI, VIANet}
	distributed := []NetworkKind{Loopback, Ethernet, WAN, Internet}
	for _, k := range parallel {
		if !k.Parallel() {
			t.Errorf("%v not classified parallel", k)
		}
	}
	for _, k := range distributed {
		if k.Parallel() {
			t.Errorf("%v classified parallel", k)
		}
	}
}
