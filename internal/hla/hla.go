// Package hla implements a small HLA-RTI core (the paper's Certi, §4.3):
// a federation with publish/subscribe object attributes, attribute
// reflections delivered to subscriber callbacks, and conservative time
// management (time-advance requests granted at the federation's lower
// bound). Star topology: the federation runs where it was created and
// federates join over VLink — a distributed-paradigm middleware.
package hla

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ErrJoin is returned when joining an unknown federation.
var ErrJoin = errors.New("hla: cannot join federation")

type msgKind byte

const (
	mJoin msgKind = iota
	mSubscribe
	mUpdate
	mReflect
	mTimeRequest
	mTimeGrant
)

// Federation is the RTI executive (server side).
type Federation struct {
	k       *vtime.Kernel
	name    string
	members []*memberConn

	Updates int64
}

type memberConn struct {
	v        *vlink.VLink
	handle   int
	subs     map[string]bool
	reqTime  float64
	granted  float64
	pendingT bool
}

// CreateFederation starts the RTI executive listening on driver/port.
func CreateFederation(k *vtime.Kernel, ep *vlink.Endpoint, name, driver string, port int) (*Federation, error) {
	f := &Federation{k: k, name: name}
	ln, err := ep.Listen(driver, port)
	if err != nil {
		return nil, err
	}
	ln.SetAcceptHandler(func(v *vlink.VLink) { f.serve(v) })
	return f, nil
}

// ModuleName implements core.Module.
func (f *Federation) ModuleName() string { return "certi-hla" }

func (f *Federation) serve(v *vlink.VLink) {
	m := &memberConn{v: v, handle: len(f.members) + 1, subs: make(map[string]bool), granted: 0}
	f.members = append(f.members, m)
	f.k.GoDaemon(fmt.Sprintf("hla-fed:%d", m.handle), func(p *vtime.Proc) {
		for {
			kind, class, payload, t, err := readMsg(p, v)
			if err != nil {
				return
			}
			p.Consume(model.HLARequestCost)
			switch kind {
			case mSubscribe:
				m.subs[class] = true
			case mUpdate:
				f.Updates++
				for _, other := range f.members {
					if other != m && other.subs[class] {
						writeMsg(p, other.v, mReflect, class, payload, t)
					}
				}
			case mTimeRequest:
				m.reqTime = t
				m.pendingT = true
				f.grantTimes(p)
			}
		}
	})
}

// grantTimes grants pending time-advance requests up to the federation
// lower bound (min of all requested/granted times).
func (f *Federation) grantTimes(p *vtime.Proc) {
	for _, m := range f.members {
		if !m.pendingT {
			continue
		}
		lbts := m.reqTime
		for _, other := range f.members {
			if other == m {
				continue
			}
			t := other.granted
			if other.pendingT && other.reqTime > t {
				t = other.reqTime
			}
			if t < lbts {
				lbts = t
			}
		}
		if lbts >= m.reqTime {
			m.granted = m.reqTime
			m.pendingT = false
			writeMsg(p, m.v, mTimeGrant, "", nil, m.reqTime)
		}
	}
}

// Federate is one simulation member (client side).
type Federate struct {
	k      *vtime.Kernel
	v      *vlink.VLink
	name   string
	onRefl func(class string, value []byte, t float64)
	grants *vtime.Queue[float64]
	refl   *vtime.Queue[Reflection]
}

// Reflection is one received attribute update.
type Reflection struct {
	Class string
	Value []byte
	Time  float64
}

// Join connects a federate to the federation executive.
func Join(p *vtime.Proc, ep *vlink.Endpoint, driver string, node topology.NodeID, port int, name string) (*Federate, error) {
	v, err := ep.ConnectWait(p, driver, vlink.Addr{Node: node, Port: port})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrJoin, err)
	}
	fd := &Federate{
		k: p.Kernel(), v: v, name: name,
		grants: vtime.NewQueue[float64]("hla-grants:" + name),
		refl:   vtime.NewQueue[Reflection]("hla-refl:" + name),
	}
	writeMsg(p, v, mJoin, name, nil, 0)
	fd.k.GoDaemon("hla-fedate:"+name, func(q *vtime.Proc) {
		for {
			kind, class, payload, t, err := readMsg(q, v)
			if err != nil {
				return
			}
			q.Consume(model.HLARequestCost)
			switch kind {
			case mReflect:
				fd.refl.Push(Reflection{Class: class, Value: payload, Time: t})
			case mTimeGrant:
				fd.grants.Push(t)
			}
		}
	})
	return fd, nil
}

// Subscribe registers interest in an object class's attributes.
func (fd *Federate) Subscribe(p *vtime.Proc, class string) {
	writeMsg(p, fd.v, mSubscribe, class, nil, 0)
}

// UpdateAttributes publishes new attribute values at time t.
func (fd *Federate) UpdateAttributes(p *vtime.Proc, class string, value []byte, t float64) {
	writeMsg(p, fd.v, mUpdate, class, value, t)
}

// NextReflection blocks for the next incoming reflection.
func (fd *Federate) NextReflection(p *vtime.Proc) Reflection { return fd.refl.Pop(p) }

// TryReflection is the non-blocking variant.
func (fd *Federate) TryReflection() (Reflection, bool) { return fd.refl.TryPop() }

// TimeAdvanceRequest asks for logical time t and blocks until granted.
func (fd *Federate) TimeAdvanceRequest(p *vtime.Proc, t float64) float64 {
	writeMsg(p, fd.v, mTimeRequest, "", nil, t)
	return fd.grants.Pop(p)
}

// Resign disconnects the federate.
func (fd *Federate) Resign() { fd.v.Close() }

// ---------------------------------------------------------------------
// Wire format: [1B kind][8B time][2B classLen][class][4B payloadLen][payload]

func writeMsg(p *vtime.Proc, v *vlink.VLink, kind msgKind, class string, payload []byte, t float64) {
	buf := make([]byte, 1+8+2+len(class)+4+len(payload))
	buf[0] = byte(kind)
	binary.BigEndian.PutUint64(buf[1:], uint64FromF(t))
	binary.BigEndian.PutUint16(buf[9:], uint16(len(class)))
	copy(buf[11:], class)
	off := 11 + len(class)
	binary.BigEndian.PutUint32(buf[off:], uint32(len(payload)))
	copy(buf[off+4:], payload)
	hdr := make([]byte, 4, 4+len(buf))
	binary.BigEndian.PutUint32(hdr, uint32(len(buf)))
	v.Write(p, append(hdr, buf...))
}

func readMsg(p *vtime.Proc, v *vlink.VLink) (msgKind, string, []byte, float64, error) {
	var hdr [4]byte
	if _, err := v.ReadFull(p, hdr[:]); err != nil {
		return 0, "", nil, 0, err
	}
	buf := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := v.ReadFull(p, buf); err != nil {
		return 0, "", nil, 0, err
	}
	kind := msgKind(buf[0])
	t := fFromUint64(binary.BigEndian.Uint64(buf[1:]))
	cl := int(binary.BigEndian.Uint16(buf[9:]))
	class := string(buf[11 : 11+cl])
	off := 11 + cl
	pl := int(binary.BigEndian.Uint32(buf[off:]))
	payload := append([]byte(nil), buf[off+4:off+4+pl]...)
	return kind, class, payload, t, nil
}

func uint64FromF(f float64) uint64 { return math.Float64bits(f) }
func fFromUint64(u uint64) float64 { return math.Float64frombits(u) }
