package weather_test

import (
	"testing"
	"time"

	"padico/internal/grid"
	"padico/internal/netsim"
	"padico/internal/selector"
	"padico/internal/topology"
	"padico/internal/vtime"
	"padico/internal/weather"
)

// TestForecastConvergesToLinkRate: on a healthy two-cluster WAN the
// bandwidth forecast converges near the 12.2 MB/s access cap, the
// latency forecast near the 8 ms one-way VTHD figure, and passive RTT
// sweeps fold in (the probe connections themselves feed the ipstack
// estimator).
func TestForecastConvergesToLinkRate(t *testing.T) {
	g := grid.TwoClusterWAN(1, 1)
	svc := g.EnableWeather(weather.Config{})
	if svc.Entries() != 1 {
		t.Fatalf("entries = %d, want 1 (one site pair, one WAN)", svc.Entries())
	}
	wan := g.Topo.Networks()[4]
	if err := g.K.Run(func(p *vtime.Proc) { p.Sleep(4 * time.Second) }); err != nil {
		t.Fatal(err)
	}
	f, ok := svc.Forecast(0, 1, wan)
	if !ok {
		t.Fatal("no forecast after 4s of monitoring")
	}
	if f.Down {
		t.Fatalf("healthy link forecast down: %+v", f)
	}
	if f.BandwidthBps < 8e6 || f.BandwidthBps > 14e6 {
		t.Fatalf("bandwidth forecast %.3g, want ~12.2e6", f.BandwidthBps)
	}
	if f.Latency < 6*time.Millisecond || f.Latency > 12*time.Millisecond {
		t.Fatalf("latency forecast %v, want ~8ms", f.Latency)
	}
	if svc.Stats().Pings == 0 || svc.Stats().BandwidthProbes == 0 || svc.Stats().PassiveRTT == 0 {
		t.Fatalf("probe stats %+v", svc.Stats())
	}
	// Forecasts only exist per monitored network.
	if _, ok := svc.Forecast(0, 1, g.Topo.Networks()[0]); ok {
		t.Fatal("SAN got a forecast")
	}
	// Same-site pairs are not monitored.
	if _, ok := svc.PairBandwidth(0, 0); ok {
		t.Fatal("self pair has weather")
	}
}

// TestForecastTracksDegradation: on the DegradingWAN testbed the
// site0–site1 forecast collapses after DegradeAt (step detection: one
// bandwidth probe suffices) while site0–site2 stays healthy, and the
// degraded-threshold crossing is published exactly once.
func TestForecastTracksDegradation(t *testing.T) {
	g := grid.DegradingWAN(1)
	svc := g.EnableWeather(weather.Config{})
	if svc.Entries() != 3 {
		t.Fatalf("entries = %d, want 3 site pairs", svc.Entries())
	}
	var wan *topology.Network
	for _, nw := range g.Topo.Networks() {
		if nw.Name == "vthd" {
			wan = nw
		}
	}
	crossings := 0
	svc.Subscribe(func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast) {
		crossings++
		if !g.Topo.SameSite(a, 0) && !g.Topo.SameSite(b, 0) {
			t.Errorf("publication for an unaffected pair %d-%d", a, b)
		}
	})
	if err := g.K.Run(func(p *vtime.Proc) {
		p.Sleep(grid.DegradeAt - time.Second)
		f01, ok := svc.Forecast(0, 1, wan)
		if !ok || f01.BandwidthBps < 8e6 {
			t.Fatalf("pre-degrade forecast site0-site1: %+v ok=%v", f01, ok)
		}
		p.Sleep(3 * time.Second) // past DegradeAt plus a probe cycle
		f01, ok = svc.Forecast(0, 1, wan)
		if !ok || f01.BandwidthBps > 1.2e6 || f01.Down {
			t.Fatalf("post-degrade forecast site0-site1: %+v ok=%v", f01, ok)
		}
		f02, ok := svc.Forecast(0, 2, wan)
		if !ok || f02.BandwidthBps < 8e6 {
			t.Fatalf("post-degrade forecast site0-site2: %+v ok=%v", f02, ok)
		}
		if bw, ok := svc.PairBandwidth(0, 1); !ok || bw > 1.2e6 {
			t.Fatalf("PairBandwidth(0,1) = %.3g ok=%v", bw, ok)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if crossings != 1 {
		t.Fatalf("published %d crossings, want exactly 1", crossings)
	}
}

// TestOutageMarksDownAndRecovers: a full outage of the WAN core flips
// the forecast to Down after the configured failure streak; restoring
// the link clears it.
func TestOutageMarksDownAndRecovers(t *testing.T) {
	g := grid.TwoClusterWAN(1, 1)
	core := g.CoreHop("core:vthd")
	if core == nil {
		t.Fatal("no core hop registered")
	}
	netsim.ScheduleOutage(g.K,
		vtime.Time(0).Add(2*time.Second), vtime.Time(0).Add(12*time.Second), core)
	svc := g.EnableWeather(weather.Config{})
	wan := g.Topo.Networks()[4]
	if err := g.K.Run(func(p *vtime.Proc) {
		// Deep enough for a probe timeout (bandwidth probes wait 4x)
		// plus one failed re-dial (SYN timeout).
		p.Sleep(10500 * time.Millisecond)
		f, ok := svc.Forecast(0, 1, wan)
		if !ok || !f.Down {
			t.Fatalf("mid-outage forecast: %+v ok=%v", f, ok)
		}
		p.Sleep(9500 * time.Millisecond) // restored + re-dial + probe
		f, ok = svc.Forecast(0, 1, wan)
		if !ok || f.Down {
			t.Fatalf("post-restore forecast: %+v ok=%v", f, ok)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWeatherIsDeterministic: two identical monitored runs produce
// bit-identical forecasts and statistics.
func TestWeatherIsDeterministic(t *testing.T) {
	run := func() (selector.Forecast, weather.Stats) {
		g := grid.DegradingWAN(1)
		svc := g.EnableWeather(weather.Config{})
		var wan *topology.Network
		for _, nw := range g.Topo.Networks() {
			if nw.Name == "vthd" {
				wan = nw
			}
		}
		if err := g.K.Run(func(p *vtime.Proc) { p.Sleep(grid.DegradeAt + 2*time.Second) }); err != nil {
			t.Fatal(err)
		}
		f, _ := svc.Forecast(0, 1, wan)
		return f, svc.Stats()
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 {
		t.Fatalf("forecasts diverged: %+v vs %+v", f1, f2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
}
