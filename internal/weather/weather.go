// Package weather is the grid's network monitoring and forecasting
// service — the Network-Weather-Service role of production grids
// ("Towards Parallel Computing on the Internet", PAPERS.md) rebuilt on
// the simulated testbed. The paper's Selector (§4.2) consults a static
// topology knowledge base; weather gives it eyes: per-pair, per-network
// forecasts of bandwidth, latency, loss and outage, folded from
//
//   - active probes: small RTT pings plus periodic bandwidth
//     micro-transfers over ordinary session channels, pinned to the
//     network under measurement and budgeted (one representative node
//     pair per site pair, a few KB/s) so monitoring never competes
//     with the workloads it serves, and
//   - passive observation: closed session channels report their
//     transfer counters (bytes moved over wall-of-virtual-time), and
//     the ipstack's smoothed TCP RTT estimates are swept for free.
//
// Estimates are EWMA-smoothed with step detection (a sample far from
// the forecast resets it — a degraded link must be believed after one
// probe, not after the average decays). Forecasts are published
// through the Service's registry: selector.Select consults it as an
// Oracle, and subscribers (adaptive sessions, group trees) are
// notified when a pair crosses the degraded threshold or goes down.
//
// Everything is deterministic: probe cadences are fixed virtual-time
// sleeps (staggered per entry, never wall clock), there is no
// randomness, and registry iteration is in entry declaration order —
// the same testbed and schedule yield bit-identical forecasts and
// publications on every run.
package weather

import (
	"fmt"
	"sync/atomic"
	"time"

	"padico/internal/ipstack"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Config tunes a Service. Zero values select defaults.
type Config struct {
	// ProbeInterval is the RTT ping cadence per monitored entry
	// (default 250 ms of virtual time).
	ProbeInterval time.Duration
	// BandwidthEvery runs a bandwidth micro-transfer every N-th probe
	// tick instead of a ping (default 4).
	BandwidthEvery int
	// ProbeBytes is the micro-transfer size (default 64 KiB) — small
	// enough to stay within the probe budget, large enough to out-grow
	// slow start on the cached probe connection.
	ProbeBytes int
	// ProbeTimeout bounds one ping reply (default 1 s); bandwidth
	// probes get four times as long.
	ProbeTimeout time.Duration
	// DownAfter is the consecutive-failure count that declares a link
	// down (default 2).
	DownAfter int
	// Alpha is the EWMA gain for active samples (default 0.5).
	Alpha float64
	// PassiveAlpha is the (lighter) gain for passive samples
	// (default 0.25).
	PassiveAlpha float64
	// StepRatio is the relative change beyond which a sample resets
	// the forecast outright instead of being averaged in (default 0.5):
	// condition steps — a link degrading 16x — must be believed after
	// one observation.
	StepRatio float64
	// DegradedRatio: a forecast below this fraction of the network's
	// nameplate rate is "degraded"; crossings are published to
	// subscribers (default 0.5).
	DegradedRatio float64
	// PassiveInterval is the ipstack SRTT sweep cadence (default 1 s).
	PassiveInterval time.Duration
	// MinObserveBytes is the smallest closed-channel transfer folded
	// into the passive bandwidth estimate (default 256 KiB) — tiny
	// control exchanges measure protocol latency, not bandwidth.
	MinObserveBytes int64
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.BandwidthEvery <= 0 {
		c.BandwidthEvery = 4
	}
	if c.ProbeBytes <= 0 {
		c.ProbeBytes = 64 << 10
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.PassiveAlpha <= 0 || c.PassiveAlpha > 1 {
		c.PassiveAlpha = 0.25
	}
	if c.StepRatio <= 0 {
		c.StepRatio = 0.5
	}
	if c.DegradedRatio <= 0 {
		c.DegradedRatio = 0.5
	}
	if c.PassiveInterval <= 0 {
		c.PassiveInterval = time.Second
	}
	if c.MinObserveBytes <= 0 {
		c.MinObserveBytes = 256 << 10
	}
	return c
}

// Stats counts monitoring activity. Counters are bumped with atomic
// adds and read race-free through Service.Stats; with telemetry
// attached they also surface in the shared registry under the
// "weather." prefix.
type Stats struct {
	Pings, ProbeFailures int64
	BandwidthProbes      int64
	PassiveBandwidth     int64 // closed-channel transfers folded in
	PassiveRTT           int64 // ipstack SRTT sweeps folded in
	Publishes            int64 // threshold crossings notified
}

// entry is one monitored (site pair, network): the representative node
// pair, the forecast, and the probe channel state.
type entry struct {
	key    string
	s1, s2 string          // the site pair, sorted
	a, b   topology.NodeID // representative pair, a < b
	nw     *topology.Network

	f       selector.Forecast
	haveBW  bool
	haveLat bool
	baseLat time.Duration // minimum one-way latency observed (base RTT/2)

	failures int
	degraded bool // last published degraded state

	ch      session.Channel
	replies *vtime.Queue[probeReply]
	seq     uint64
	warmup  int // bandwidth samples to discard on a fresh connection
}

// Service is the per-grid weather monitor. It implements
// selector.Oracle and session.Weather.
type Service struct {
	k     *vtime.Kernel
	topo  *topology.Grid
	mgr   *session.Manager
	stack *ipstack.Stack // passive SRTT tap (may be nil)
	cfg   Config

	entries []*entry
	byKey   map[string]*entry
	subs    []*subscription
	// publishing guards subs against in-place compaction while a
	// publication is iterating it.
	publishing bool
	started    bool

	stats  Stats
	tel    *telemetry.Hub
	hProbe *telemetry.Histogram
}

// Stats returns a consistent copy of the service's counters.
func (s *Service) Stats() Stats {
	return Stats{
		Pings:            atomic.LoadInt64(&s.stats.Pings),
		ProbeFailures:    atomic.LoadInt64(&s.stats.ProbeFailures),
		BandwidthProbes:  atomic.LoadInt64(&s.stats.BandwidthProbes),
		PassiveBandwidth: atomic.LoadInt64(&s.stats.PassiveBandwidth),
		PassiveRTT:       atomic.LoadInt64(&s.stats.PassiveRTT),
		Publishes:        atomic.LoadInt64(&s.stats.Publishes),
	}
}

// New builds a weather service over a testbed's session manager. The
// stack, when non-nil, is swept for passive TCP RTT estimates. Call
// Start to begin monitoring.
func New(k *vtime.Kernel, topo *topology.Grid, mgr *session.Manager, stack *ipstack.Stack, cfg Config) *Service {
	s := &Service{
		k: k, topo: topo, mgr: mgr, stack: stack, cfg: cfg.withDefaults(),
		byKey: make(map[string]*entry),
	}
	if h := telemetry.For(k); h != nil {
		s.tel = h
		h.Registry().BindStruct("weather", &s.stats)
		s.hProbe = h.Registry().Histogram("weather.probe_rtt")
	}
	s.discover()
	return s
}

// siteKey canonicalizes a site pair.
func siteKey(s1, s2 string) (string, string) {
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	return s1, s2
}

// entryKey is the registry key of one (site pair, network).
func entryKey(s1, s2, nw string) string {
	s1, s2 = siteKey(s1, s2)
	return s1 + "|" + s2 + "|" + nw
}

// monitorable reports whether a network's conditions are worth active
// probing: the wide area is what changes underneath a grid. Machine
// rooms (SANs, the site LAN) are static in this testbed family, and
// probing them would only burn budget.
func monitorable(k topology.NetworkKind) bool {
	return k == topology.WAN || k == topology.Internet
}

// discover enumerates monitored entries: for every site pair, the
// lowest-id node of each site is the representative, and every
// monitorable network the pair shares gets one entry. Iteration orders
// are sorted or declaration order throughout — the registry layout is
// deterministic.
func (s *Service) discover() {
	siteRep := make(map[string]topology.NodeID)
	var sites []string
	for _, n := range s.topo.Nodes() { // id order: first node of a site is its rep
		if _, ok := siteRep[n.Site]; !ok {
			siteRep[n.Site] = n.ID
			sites = append(sites, n.Site)
		}
	}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a, b := siteRep[sites[i]], siteRep[sites[j]]
			if a > b {
				a, b = b, a
			}
			for _, nw := range s.topo.Common(a, b) {
				if !monitorable(nw.Kind) {
					continue
				}
				k1, k2 := siteKey(sites[i], sites[j])
				e := &entry{
					key: entryKey(sites[i], sites[j], nw.Name),
					s1:  k1, s2: k2,
					a: a, b: b, nw: nw,
				}
				s.entries = append(s.entries, e)
				s.byKey[e.key] = e
			}
		}
	}
}

// Entries reports how many (site pair, network) combinations are
// monitored.
func (s *Service) Entries() int { return len(s.entries) }

// Start spawns the probe and sweep daemons. Idempotent.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, e := range s.entries {
		e := e
		// Stagger the probers so entries do not fire in lockstep on
		// shared access links (deterministic: fixed per-index offset).
		offset := time.Duration(i) * 7 * time.Millisecond
		s.k.GoDaemon(fmt.Sprintf("weather:probe:%s", e.key), func(p *vtime.Proc) {
			p.Sleep(offset)
			s.probeLoop(p, e)
		})
	}
	if s.stack != nil {
		s.k.GoDaemon("weather:passive-rtt", s.sweepRTT)
	}
}

// sweepRTT periodically folds the ipstack's smoothed TCP RTT estimates
// for the monitored pairs — passive latency observations riding on
// whatever traffic already flows.
func (s *Service) sweepRTT(p *vtime.Proc) {
	for {
		p.Sleep(s.cfg.PassiveInterval)
		for _, e := range s.entries {
			srtt, ok := s.stack.SRTT(e.a, e.b)
			if !ok {
				srtt, ok = s.stack.SRTT(e.b, e.a)
			}
			if !ok || srtt <= 0 {
				continue
			}
			s.foldLatency(e, srtt/2, s.cfg.PassiveAlpha)
			atomic.AddInt64(&s.stats.PassiveRTT, 1)
		}
	}
}

// ---------------------------------------------------------------------
// Folding and publication.

// ewma folds a sample into a forecast figure with step detection.
func (s *Service) ewma(prev, sample, alpha float64, have bool) float64 {
	if !have || prev <= 0 {
		return sample
	}
	delta := sample - prev
	if delta < 0 {
		delta = -delta
	}
	if delta > prev*s.cfg.StepRatio {
		return sample // condition step: believe it now
	}
	return alpha*sample + (1-alpha)*prev
}

func (s *Service) foldBandwidth(e *entry, bps float64, alpha float64) {
	e.f.BandwidthBps = s.ewma(e.f.BandwidthBps, bps, alpha, e.haveBW)
	e.haveBW = true
	s.maybePublish(e)
}

// foldBandwidthLower folds a lower-bound sample (a lifetime average
// that may include idle time): it may raise the forecast freely —
// observed throughput proves capacity — but lowers it only by the
// gentle passive gain, never by a step reset. One mostly-idle
// long-lived channel closing must not flash a healthy link degraded.
func (s *Service) foldBandwidthLower(e *entry, bps float64) {
	if !e.haveBW || bps >= e.f.BandwidthBps {
		s.foldBandwidth(e, bps, s.cfg.PassiveAlpha)
		return
	}
	a := s.cfg.PassiveAlpha
	e.f.BandwidthBps = a*bps + (1-a)*e.f.BandwidthBps
	s.maybePublish(e)
}

func (s *Service) foldLatency(e *entry, lat time.Duration, alpha float64) {
	e.f.Latency = time.Duration(s.ewma(float64(e.f.Latency), float64(lat), alpha, e.haveLat))
	if !e.haveLat || lat < e.baseLat {
		e.baseLat = lat // propagation floor: congestion only inflates
	}
	e.haveLat = true
}

// foldLoss tracks the ping failure fraction as a crude loss figure.
func (s *Service) foldLoss(e *entry, lost bool) {
	sample := 0.0
	if lost {
		sample = 1.0
	}
	e.f.Loss = s.cfg.Alpha*sample + (1-s.cfg.Alpha)*e.f.Loss
}

// maybePublish notifies subscribers when the entry crossed the
// degraded threshold (either direction) or its outage state flipped.
// The up-to-date forecast itself is always visible through Forecast.
func (s *Service) maybePublish(e *entry) {
	degraded := e.f.Down || (e.haveBW && e.f.BandwidthBps < s.cfg.DegradedRatio*e.nw.RateBps)
	if degraded == e.degraded {
		return
	}
	e.degraded = degraded
	atomic.AddInt64(&s.stats.Publishes, 1)
	s.tel.Note("weather", "publish: degraded state flipped", int(e.a), int64(e.b), boolInt(degraded))
	if s.tel.Tracing() {
		s.tel.Instant("weather", "publish", int(e.a)).
			I64("peer", int64(e.b)).Str("net", e.nw.Name).I64("degraded", boolInt(degraded)).End()
	}
	// Index loop, publication guard: a callback may cancel its own (or
	// another) subscription, or add one — compaction is deferred until
	// the loop is done so the list never shifts under the iteration.
	s.publishing = true
	for i := 0; i < len(s.subs); i++ {
		if fn := s.subs[i].fn; fn != nil {
			fn(e.a, e.b, e.nw, e.f)
		}
	}
	s.publishing = false
	s.compactSubs()
}

// setDown flips the outage state and publishes the transition.
func (s *Service) setDown(e *entry, down bool) {
	if e.f.Down == down {
		return
	}
	e.f.Down = down
	if down {
		e.degraded = false // force a crossing publication
	}
	s.maybePublish(e)
}

// ---------------------------------------------------------------------
// The Oracle / session.Weather interface.

// Forecast implements selector.Oracle: the forecast for a node pair on
// one network is the site-pair entry's (grid weather is a wide-area
// phenomenon; intra-site fabrics are not monitored).
func (s *Service) Forecast(a, b topology.NodeID, nw *topology.Network) (selector.Forecast, bool) {
	e, ok := s.lookup(a, b, nw.Name)
	if !ok || (!e.haveBW && !e.f.Down) {
		return selector.Forecast{}, false
	}
	return e.f, true
}

// PairBandwidth returns the best forecast bandwidth across the pair's
// monitored networks (0 for a fully down pair), and whether any
// forecast exists. Consumers rank alternative peers with it.
func (s *Service) PairBandwidth(a, b topology.NodeID) (float64, bool) {
	sa, sb := siteKey(s.topo.Node(a).Site, s.topo.Node(b).Site)
	if sa == sb {
		return 0, false
	}
	best, any := 0.0, false
	for _, e := range s.entries {
		if e.s1 != sa || e.s2 != sb || (!e.haveBW && !e.f.Down) {
			continue
		}
		any = true
		if !e.f.Down && e.f.BandwidthBps > best {
			best = e.f.BandwidthBps
		}
	}
	return best, any
}

func (s *Service) lookup(a, b topology.NodeID, nwName string) (*entry, bool) {
	sa, sb := s.topo.Node(a).Site, s.topo.Node(b).Site
	if sa == sb {
		return nil, false
	}
	e, ok := s.byKey[entryKey(sa, sb, nwName)]
	return e, ok
}

// ObserveTransfer implements session.Weather: transfer counters
// become a passive bandwidth sample for the pair and network, only
// when the transfer was big enough to measure bandwidth rather than
// protocol latency. Live (saturated-window) samples fold like probe
// measurements, step detection included; lifetime averages are lower
// bounds and may only lower the forecast gently.
func (s *Service) ObserveTransfer(src, dst topology.NodeID, network string, bytesOut int64, elapsed vtime.Duration, live bool) {
	if bytesOut < s.cfg.MinObserveBytes || elapsed <= 0 {
		return
	}
	e, ok := s.lookup(src, dst, network)
	if !ok {
		return
	}
	bps := float64(bytesOut) / elapsed.Seconds()
	if live {
		s.foldBandwidth(e, bps, s.cfg.PassiveAlpha)
	} else {
		s.foldBandwidthLower(e, bps)
	}
	atomic.AddInt64(&s.stats.PassiveBandwidth, 1)
}

// subscription is one registered transition callback; cancelled ones
// are nilled in place (publication order is positional) and compacted
// once they dominate the list.
type subscription struct {
	fn func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast)
}

// Subscribe implements session.Weather: fn runs (in kernel or prober
// context) on every published transition, in subscription order. The
// returned cancel removes it; short-lived subscribers (one adaptive
// channel per transfer) must cancel or the list grows without bound.
func (s *Service) Subscribe(fn func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast)) func() {
	sub := &subscription{fn: fn}
	s.subs = append(s.subs, sub)
	return func() {
		sub.fn = nil
		s.compactSubs()
	}
}

// compactSubs drops cancelled subscriptions once they outnumber the
// live ones (order of the survivors is preserved). Deferred while a
// publication is iterating the list.
func (s *Service) compactSubs() {
	if s.publishing {
		return
	}
	dead := 0
	for _, sub := range s.subs {
		if sub.fn == nil {
			dead++
		}
	}
	if dead <= len(s.subs)/2 || len(s.subs) < 16 {
		return
	}
	live := s.subs[:0]
	for _, sub := range s.subs {
		if sub.fn != nil {
			live = append(live, sub)
		}
	}
	for i := len(live); i < len(s.subs); i++ {
		s.subs[i] = nil
	}
	s.subs = live
}

// String renders the registry (for padico-info style reporting).
func (s *Service) String() string {
	out := ""
	for _, e := range s.entries {
		state := "?"
		if e.f.Down {
			state = "DOWN"
		} else if e.haveBW {
			state = fmt.Sprintf("%.2f MB/s", e.f.BandwidthBps/1e6)
		}
		out += fmt.Sprintf("%-40s lat=%-10v loss=%.2f %s\n", e.key, e.f.Latency, e.f.Loss, state)
	}
	return out
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
