package weather

// Active probing: one prober daemon per monitored entry, driving a
// session channel pinned (OpenWith) to the network under measurement.
// The probe protocol is three-segment messages [1B kind][8B seq][8B
// value]:
//
//	ping  -> echo replies with the same frame; RTT = round trip.
//	bw    -> value is the micro-transfer size; the prober streams that
//	         many bytes, the echo replies bwAck after consuming them;
//	         bandwidth = size / (round trip - measured RTT).
//
// A reply pump per channel turns replies into a queue the prober pops
// with a timeout: a link in outage cannot block monitoring — failures
// accumulate into a Down forecast, the poisoned channel is dropped,
// and the prober keeps re-dialing until the link answers again.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"padico/internal/selector"
	"padico/internal/vtime"
)

const (
	probePing  = 0x50
	probeBW    = 0x51
	probeBWAck = 0x52

	probeChunk = 16 << 10 // echo-side consumption granularity
)

// probeReply is one frame the reply pump delivered.
type probeReply struct {
	kind byte
	seq  uint64
	val  uint64
}

// probeFrame builds one three-segment frame: the sequence number pairs
// replies with requests, so a stale reply from a timed-out round can
// never be mistaken for the current one.
func probeFrame(kind byte, seq, val uint64) [][]byte {
	sq := make([]byte, 8)
	binary.BigEndian.PutUint64(sq, seq)
	v := make([]byte, 8)
	binary.BigEndian.PutUint64(v, val)
	return [][]byte{{kind}, sq, v}
}

// probeDecision pins a probe channel to the entry's network: plain
// sysio, single stream, no wrappers — the probe measures the link, not
// a protocol stack.
func probeDecision(e *entry) selector.Decision {
	return selector.Decision{Network: e.nw, Method: "sysio", Streams: 1}
}

// openProbe provisions the entry's probe channel plus its echo daemon
// and reply pump.
func (s *Service) openProbe(p *vtime.Proc, e *entry) error {
	ch, err := s.mgr.OpenWith(p, e.a, e.b, probeDecision(e))
	if err != nil {
		return err
	}
	e.ch = ch
	// A fresh TCP connection is still in slow start: its first
	// micro-transfers measure the congestion window, not the link.
	// Discard them instead of publishing a phantom degradation.
	e.warmup = 2
	e.replies = vtime.NewQueue[probeReply](fmt.Sprintf("weather:replies:%s", e.key))
	replies := e.replies
	// Echo side (node b): answer pings, swallow micro-transfers.
	s.k.GoDaemon(fmt.Sprintf("weather:echo:%s", e.key), func(q *vtime.Proc) {
		rc := ch.Remote()
		buf := make([]byte, probeChunk)
		for {
			segs, err := rc.Recv(q, 1, 8, 8)
			if err != nil {
				return
			}
			switch segs[0][0] {
			case probePing:
				if rc.Send(q, segs[0], segs[1], segs[2]) != nil {
					return
				}
			case probeBW:
				left := int(binary.BigEndian.Uint64(segs[2]))
				for left > 0 {
					n := left
					if n > len(buf) {
						n = len(buf)
					}
					m, err := rc.Read(q, buf[:n])
					left -= m
					if err != nil {
						return
					}
				}
				if rc.Send(q, []byte{probeBWAck}, segs[1], segs[2]) != nil {
					return
				}
			}
		}
	})
	// Reply pump (node a): replies become poppable with a timeout.
	s.k.GoDaemon(fmt.Sprintf("weather:pump:%s", e.key), func(q *vtime.Proc) {
		for {
			segs, err := ch.Recv(q, 1, 8, 8)
			if err != nil {
				return
			}
			replies.Push(probeReply{kind: segs[0][0],
				seq: binary.BigEndian.Uint64(segs[1]),
				val: binary.BigEndian.Uint64(segs[2])})
		}
	})
	return nil
}

// closeProbe drops a poisoned probe channel; the next tick re-dials.
func (e *entry) closeProbe() {
	if e.ch != nil {
		e.ch.Close()
		e.ch.Remote().Close()
		e.ch = nil
		e.replies = nil
	}
}

// probeFailure records one failed probe round. The channel is only
// dropped once the streak smells like an outage: a single timeout is
// usually congestion (stale pongs are dropped by sequence number), and
// re-dialing resets the connection's congestion window — which costs a
// fresh warm-up before bandwidth samples are trustworthy again.
func (s *Service) probeFailure(e *entry) {
	atomic.AddInt64(&s.stats.ProbeFailures, 1)
	s.tel.Note("weather", "probe failure", int(e.a), int64(e.b), int64(e.failures+1))
	s.foldLoss(e, true)
	e.failures++
	if e.failures >= s.cfg.DownAfter {
		e.closeProbe()
		s.setDown(e, true)
	}
}

// probeSuccess clears the failure streak (and a Down verdict).
func (s *Service) probeSuccess(e *entry) {
	e.failures = 0
	s.foldLoss(e, false)
	s.setDown(e, false)
}

// probeLoop is the per-entry prober daemon.
func (s *Service) probeLoop(p *vtime.Proc, e *entry) {
	tick := 0
	for {
		p.Sleep(s.cfg.ProbeInterval)
		if e.ch == nil {
			if err := s.openProbe(p, e); err != nil {
				s.probeFailure(e)
				continue
			}
		}
		tick++
		if tick%s.cfg.BandwidthEvery == 0 && e.haveLat {
			s.probeBandwidth(p, e)
		} else {
			s.probePing(p, e)
		}
	}
}

// replyTimeout scales the probe timeout with the measured latency: a
// congested link inflates RTTs by its queue depth, and declaring it
// down for being slow would be exactly the misdiagnosis hysteresis
// exists to prevent.
func (s *Service) replyTimeout(e *entry) vtime.Duration {
	return s.cfg.ProbeTimeout + 4*e.f.Latency
}

// probePing measures one RTT.
func (s *Service) probePing(p *vtime.Proc, e *entry) {
	e.seq++
	seq := e.seq
	atomic.AddInt64(&s.stats.Pings, 1)
	sp := s.tel.Begin("weather", "probe.ping", int(e.a)).
		I64("peer", int64(e.b)).I64("seq", int64(seq))
	defer sp.End()
	// Each probe is a request root: the echo's send and its TCP
	// segments attach here, not to whatever ran the daemon last.
	defer sp.Exit(sp.Enter())
	start := p.Now()
	segs := probeFrame(probePing, seq, 0)
	if e.ch.Send(p, segs...) != nil {
		s.probeFailure(e)
		return
	}
	for {
		r, ok := e.replies.PopTimeout(p, s.replyTimeout(e))
		if !ok {
			s.probeFailure(e)
			return
		}
		if r.kind != probePing || r.seq < seq {
			continue // stale reply from before a timeout round
		}
		rtt := p.Now().Sub(start)
		s.hProbe.Observe(rtt)
		s.foldLatency(e, rtt/2, s.cfg.Alpha)
		s.probeSuccess(e)
		return
	}
}

// probeBandwidth measures one micro-transfer: the serialization time is
// the round trip minus the (already forecast) round-trip latency, so a
// high-latency healthy WAN is not mistaken for a slow one.
func (s *Service) probeBandwidth(p *vtime.Proc, e *entry) {
	size := s.cfg.ProbeBytes
	atomic.AddInt64(&s.stats.BandwidthProbes, 1)
	e.seq++
	seq := e.seq
	sp := s.tel.Begin("weather", "probe.bw", int(e.a)).
		I64("peer", int64(e.b)).I64("bytes", int64(size))
	defer sp.End()
	defer sp.Exit(sp.Enter())
	start := p.Now()
	segs := probeFrame(probeBW, seq, uint64(size))
	if e.ch.Send(p, segs...) != nil {
		s.probeFailure(e)
		return
	}
	chunk := make([]byte, probeChunk)
	for sent := 0; sent < size; {
		n := size - sent
		if n > len(chunk) {
			n = len(chunk)
		}
		if _, err := e.ch.Write(p, chunk[:n]); err != nil {
			s.probeFailure(e)
			return
		}
		sent += n
	}
	for {
		r, ok := e.replies.PopTimeout(p, 4*s.replyTimeout(e))
		if !ok {
			s.probeFailure(e)
			return
		}
		if r.kind != probeBWAck || r.seq != seq {
			continue // stale ack from a timed-out round
		}
		if e.warmup > 0 {
			e.warmup--
			s.probeSuccess(e)
			return
		}
		// Correct by the *base* round trip (the propagation floor), not
		// the smoothed latency: congestion inflates the EWMA with
		// queueing delay, and subtracting queueing time from a transfer
		// that spent it queueing would overestimate the link.
		elapsed := p.Now().Sub(start)
		serialize := elapsed - 2*e.baseLat
		if serialize <= 0 {
			serialize = elapsed
		}
		s.foldBandwidth(e, float64(size)/serialize.Seconds(), s.cfg.Alpha)
		s.probeSuccess(e)
		return
	}
}
