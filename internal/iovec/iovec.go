// Package iovec is the buffer-management substrate of the zero-copy
// segment path: refcounted, pool-backed byte buffers (Buf) and segment
// vectors over them (Vec) with slice/retain/release semantics.
//
// The paper's performance argument (§3–4, Madeleine's incremental
// packing) is that payload bytes should be packed once and then travel
// the stack by reference. Before this package every rung of the data
// path re-copied: ipstack cloned each TCP segment, every VLink wrapper
// staged through its own buffer, the session layer materialized fresh
// buffers per receive. With iovec, a layer that does not transform
// bytes (striping, framing, the TCP segmenter) forwards retained views;
// a transforming layer (cipher, compression) copies exactly once into a
// pooled buffer.
//
// Ownership rules (see DESIGN.md "Buffer management"):
//
//   - Get returns a Buf with one reference, owned by the caller.
//   - Retain adds a reference; Release drops one. The buffer returns to
//     its pool when the count reaches zero; releasing a free buffer
//     panics.
//   - A Vec does not own its segments' buffers implicitly: Slice and
//     Clone retain on behalf of the returned vector, which must then be
//     Released exactly once.
//   - Unowned segments (Make, plain byte slices) are borrowed from the
//     caller: they must stay immutable until the operation that took
//     them completes. Retain/Release are no-ops for them.
//
// Buffers may be shared between Procs of one vtime.Kernel: the kernel's
// strictly sequential execution model makes plain (non-atomic)
// refcounts correct and deterministic. Do not share a Buf between
// kernels or with goroutines outside the simulation.
package iovec

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Size classes for the pools. Get rounds the request up to the next
// class; larger requests get a dedicated unpooled allocation.
var classSizes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

var pools [len(classSizes)]sync.Pool

// Pool traffic accounting, package-wide (the pools are). Gets, frees
// and unpooled allocations are driven purely by simulation logic, so
// their deltas within one run are deterministic; misses depend on what
// the GC kept alive in the sync.Pools, so telemetry marks the miss
// series volatile. Atomics, because the pools are shared across
// kernels and tests bump them from multiple goroutines under -race.
var (
	poolGets     int64
	poolMisses   int64
	poolFrees    int64
	poolUnpooled int64
)

// PoolGets returns cumulative pooled-class Get calls.
func PoolGets() int64 { return atomic.LoadInt64(&poolGets) }

// PoolMisses returns Gets that allocated because the class pool was
// empty — a wall-clock-coupled (GC-dependent) value.
func PoolMisses() int64 { return atomic.LoadInt64(&poolMisses) }

// PoolFrees returns buffers returned to their pools.
func PoolFrees() int64 { return atomic.LoadInt64(&poolFrees) }

// PoolUnpooled returns Gets beyond the largest class (dedicated
// allocations).
func PoolUnpooled() int64 { return atomic.LoadInt64(&poolUnpooled) }

func classFor(n int) int {
	for c, s := range classSizes {
		if n <= s {
			return c
		}
	}
	return -1
}

// Buf is one refcounted storage block.
type Buf struct {
	p     []byte
	n     int // requested length (view size)
	refs  int
	class int // pool class, -1 when unpooled
}

// Get returns a buffer of length n with one reference. The bytes are
// NOT zeroed: callers must write before exposing any region.
func Get(n int) *Buf {
	c := classFor(n)
	if c < 0 {
		atomic.AddInt64(&poolUnpooled, 1)
		return &Buf{p: make([]byte, n), n: n, refs: 1, class: -1}
	}
	atomic.AddInt64(&poolGets, 1)
	if v := pools[c].Get(); v != nil {
		b := v.(*Buf)
		b.n = n
		b.refs = 1
		return b
	}
	atomic.AddInt64(&poolMisses, 1)
	return &Buf{p: make([]byte, classSizes[c]), n: n, refs: 1, class: c}
}

// Bytes returns the buffer's view: len is the requested size.
func (b *Buf) Bytes() []byte { return b.p[:b.n] }

// Cap returns the full capacity of the underlying block.
func (b *Buf) Cap() int { return len(b.p) }

// Refs returns the current reference count (for tests).
func (b *Buf) Refs() int { return b.refs }

// Retain adds a reference and returns b for chaining.
func (b *Buf) Retain() *Buf {
	if b.refs <= 0 {
		panic("iovec: retain of a free buffer")
	}
	b.refs++
	return b
}

// Release drops one reference; the last release returns the buffer to
// its pool. Releasing a free buffer panics — that discipline is what
// catches ownership bugs instead of letting them corrupt recycled
// bytes silently.
func (b *Buf) Release() {
	if b.refs <= 0 {
		panic(fmt.Sprintf("iovec: release of a free buffer (refs=%d)", b.refs))
	}
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.class >= 0 {
		atomic.AddInt64(&poolFrees, 1)
		pools[b.class].Put(b)
	}
}

// Seg is one segment of a vector: a byte view plus the buffer that owns
// the bytes (nil for borrowed caller memory).
type Seg struct {
	B     []byte
	Owner *Buf
}

// Vec is a segment vector. The zero value is an empty vector.
type Vec struct {
	Segs []Seg
}

// Make builds an unowned vector over caller memory (no retention; the
// caller keeps the bytes immutable for the borrow's duration).
func Make(bs ...[]byte) Vec {
	segs := make([]Seg, len(bs))
	for i, b := range bs {
		segs[i] = Seg{B: b}
	}
	return Vec{Segs: segs}
}

// Owned wraps a buffer's full view into a single-segment vector,
// transferring the caller's reference to the vector (no extra retain:
// releasing the vector releases the buffer).
func Owned(b *Buf) Vec {
	return Vec{Segs: []Seg{{B: b.Bytes(), Owner: b}}}
}

// Len returns the total byte count.
func (v Vec) Len() int {
	n := 0
	for _, s := range v.Segs {
		n += len(s.B)
	}
	return n
}

// Retain adds one reference to every owned segment.
func (v Vec) Retain() {
	for _, s := range v.Segs {
		if s.Owner != nil {
			s.Owner.Retain()
		}
	}
}

// Release drops one reference from every owned segment.
func (v Vec) Release() {
	for _, s := range v.Segs {
		if s.Owner != nil {
			s.Owner.Release()
		}
	}
}

// Append adds one segment. owner may be nil (borrowed bytes). No
// reference is taken: the caller transfers or lends its own.
func (v *Vec) Append(owner *Buf, view []byte) {
	v.Segs = append(v.Segs, Seg{B: view, Owner: owner})
}

// Reset empties the vector, keeping the segment array for reuse. It
// does NOT release segments — callers release before resetting when
// they own the references.
func (v *Vec) Reset() { v.Segs = v.Segs[:0] }

// SliceInto appends retained views of v's byte range [off, off+n) to
// dst. Owned source segments are retained once per contributing
// segment; dst must eventually be Released. dst may have pre-allocated
// segment storage (pooled callers pass a reused array).
func (v Vec) SliceInto(dst *Vec, off, n int) {
	if n < 0 || off < 0 {
		panic("iovec: negative slice bounds")
	}
	for _, s := range v.Segs {
		if n == 0 {
			return
		}
		if off >= len(s.B) {
			off -= len(s.B)
			continue
		}
		take := len(s.B) - off
		if take > n {
			take = n
		}
		if s.Owner != nil {
			s.Owner.Retain()
		}
		dst.Segs = append(dst.Segs, Seg{B: s.B[off : off+take], Owner: s.Owner})
		off = 0
		n -= take
	}
	if n > 0 {
		panic("iovec: slice beyond vector length")
	}
}

// Slice returns a retained sub-vector of the byte range [off, off+n).
func (v Vec) Slice(off, n int) Vec {
	out := Vec{Segs: make([]Seg, 0, len(v.Segs))}
	v.SliceInto(&out, off, n)
	return out
}

// Clone returns an independently-owned copy of the vector: owned
// segments are retained, unowned (borrowed) segments are copied into a
// pooled buffer so the clone survives the lender reusing its memory.
func (v Vec) Clone() Vec {
	out := Vec{Segs: make([]Seg, 0, len(v.Segs))}
	for _, s := range v.Segs {
		if s.Owner != nil {
			s.Owner.Retain()
			out.Segs = append(out.Segs, s)
			continue
		}
		b := Get(len(s.B))
		copy(b.Bytes(), s.B)
		out.Segs = append(out.Segs, Seg{B: b.Bytes(), Owner: b})
	}
	return out
}

// WriteTo writes the vector's bytes to w segment by segment — the
// file-backed analogue of the driver writev path: a store engine
// persisting [header | key | payload] hands the writer each view in
// place instead of flattening them into a staging buffer first.
// Implements io.WriterTo.
func (v Vec) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, s := range v.Segs {
		n, err := w.Write(s.B)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// CopyTo copies the vector's bytes into dst and returns the count
// (min of lengths).
func (v Vec) CopyTo(dst []byte) int {
	total := 0
	for _, s := range v.Segs {
		if total >= len(dst) {
			break
		}
		total += copy(dst[total:], s.B)
	}
	return total
}

// AppendFrom appends the vector's bytes starting at offset off to dst
// and returns the extended slice.
func (v Vec) AppendFrom(dst []byte, off int) []byte {
	for _, s := range v.Segs {
		if off >= len(s.B) {
			off -= len(s.B)
			continue
		}
		dst = append(dst, s.B[off:]...)
		off = 0
	}
	return dst
}

// Flatten copies the whole vector into a fresh pooled buffer and
// returns it (one reference, caller releases). Handy for substrates
// that need contiguous bytes.
func (v Vec) Flatten() *Buf {
	b := Get(v.Len())
	v.CopyTo(b.Bytes())
	return b
}

// Fifo is a byte staging buffer with head-indexed consumption: stream
// reassemblers append at the tail and consume from the front, and the
// backing array is reused once drained. The re-slicing idiom
// (buf = buf[n:]) it replaces strands capacity on every consume and
// reallocates on nearly every append under steady traffic.
type Fifo struct {
	buf []byte
	off int
}

// Write appends p's bytes.
func (f *Fifo) Write(p []byte) { copy(f.Grow(len(p)), p) }

// Grow appends n uninitialized bytes and returns that region for the
// caller to fill (decompressors, decryptors). When the tail is full,
// the unconsumed bytes are first compacted to the front so capacity
// (and any reallocation) is sized by live data, not by the consumed
// prefix.
func (f *Fifo) Grow(n int) []byte {
	if f.off > 0 && len(f.buf)+n > cap(f.buf) {
		live := copy(f.buf, f.buf[f.off:])
		f.buf = f.buf[:live]
		f.off = 0
	}
	n0 := len(f.buf)
	if cap(f.buf)-n0 < n {
		nb := make([]byte, n0+n, (n0+n)*2)
		copy(nb, f.buf)
		f.buf = nb
		return nb[n0:]
	}
	f.buf = f.buf[:n0+n]
	return f.buf[n0:]
}

// Bytes returns the unconsumed region (valid until the next call).
func (f *Fifo) Bytes() []byte { return f.buf[f.off:] }

// Len returns the unconsumed byte count.
func (f *Fifo) Len() int { return len(f.buf) - f.off }

// Consume drops n bytes from the front; the backing array is recycled
// once everything was consumed.
func (f *Fifo) Consume(n int) {
	f.off += n
	if f.off > len(f.buf) {
		panic("iovec: Fifo consume beyond content")
	}
	if f.off == len(f.buf) {
		f.buf = f.buf[:0]
		f.off = 0
	}
}

// CopyToFrom copies the vector's bytes starting at offset off into
// dst, returning the count copied (min of the remaining bytes and
// len(dst)).
func (v Vec) CopyToFrom(dst []byte, off int) int {
	total := 0
	for _, s := range v.Segs {
		if off >= len(s.B) {
			off -= len(s.B)
			continue
		}
		if total >= len(dst) {
			break
		}
		total += copy(dst[total:], s.B[off:])
		off = 0
	}
	return total
}
