package iovec

import (
	"bytes"
	"errors"
	"testing"

	"padico/internal/vtime"
)

func TestGetReleaseRecycles(t *testing.T) {
	b := Get(1000)
	if len(b.Bytes()) != 1000 {
		t.Fatalf("len = %d, want 1000", len(b.Bytes()))
	}
	if b.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", b.Refs())
	}
	b.Bytes()[0] = 0xAA
	b.Release()
	if b.Refs() != 0 {
		t.Fatalf("refs after release = %d, want 0", b.Refs())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterFreePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("retain of a free buffer did not panic")
		}
	}()
	b.Retain()
}

func TestVecDoubleReleasePanics(t *testing.T) {
	v := Owned(Get(128))
	v.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double vector release did not panic")
		}
	}()
	v.Release()
}

// TestRetainAcrossRelease is the aliasing rule: a retained sub-slice
// must keep its bytes intact after the original owner releases — the
// block must not return to the pool (where a later Get could scribble
// over it) while any view is live.
func TestRetainAcrossRelease(t *testing.T) {
	b := Get(4096)
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(i)
	}
	v := Owned(b)
	view := v.Slice(100, 200) // retains b
	v.Release()               // original owner gone; view keeps b alive
	if b.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (held by view)", b.Refs())
	}

	// Churn the pool: if b had been recycled, one of these would get its
	// block and overwrite the view's bytes.
	for i := 0; i < 16; i++ {
		nb := Get(4096)
		for j := range nb.Bytes() {
			nb.Bytes()[j] = 0xFF
		}
		nb.Release()
	}

	want := make([]byte, 200)
	for i := range want {
		want[i] = byte(100 + i)
	}
	got := make([]byte, 0, 200)
	got = view.AppendFrom(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("retained view's bytes changed after owner release + pool churn")
	}
	view.Release()
	if b.Refs() != 0 {
		t.Fatalf("refs = %d, want 0", b.Refs())
	}
}

func TestSliceCloneCopySemantics(t *testing.T) {
	owned := Get(10)
	copy(owned.Bytes(), []byte("0123456789"))
	borrowed := []byte("abcdefghij")
	v := Vec{}
	v.Append(owned, owned.Bytes())
	v.Append(nil, borrowed)
	if v.Len() != 20 {
		t.Fatalf("Len = %d, want 20", v.Len())
	}

	// Slice spanning both segments.
	s := v.Slice(8, 4)
	got := string(s.AppendFrom(nil, 0))
	if got != "89ab" {
		t.Fatalf("slice = %q, want %q", got, "89ab")
	}
	if owned.Refs() != 2 {
		t.Fatalf("owner refs = %d, want 2", owned.Refs())
	}
	s.Release()

	// Clone copies the borrowed segment: mutating the lender afterwards
	// must not affect the clone.
	c := v.Clone()
	borrowed[0] = 'X'
	got = string(c.AppendFrom(nil, 0))
	if got != "0123456789abcdefghij" {
		t.Fatalf("clone = %q, want original bytes", got)
	}
	c.Release()
	v.Release() // releases owned's original reference
	if owned.Refs() != 0 {
		t.Fatalf("owner refs = %d, want 0", owned.Refs())
	}
}

func TestFlattenAndCopyTo(t *testing.T) {
	v := Make([]byte("hello "), []byte("world"))
	b := v.Flatten()
	if string(b.Bytes()) != "hello world" {
		t.Fatalf("flatten = %q", b.Bytes())
	}
	dst := make([]byte, 5)
	if n := v.CopyTo(dst); n != 5 || string(dst) != "hello" {
		t.Fatalf("CopyTo = %d %q", n, dst)
	}
	b.Release()
}

// TestMultiProcRetainRelease exercises retain/release from many Procs
// of one vtime kernel — the concurrency model iovec is specified
// against: scheduling interleavings are arbitrary, execution is
// serialized, so plain refcounts must end balanced.
func TestMultiProcRetainRelease(t *testing.T) {
	k := vtime.NewKernel()
	b := Get(1 << 10)
	copy(b.Bytes(), bytes.Repeat([]byte{0x5A}, 1<<10))
	v := Owned(b)
	const procs = 16
	err := k.Run(func(p *vtime.Proc) {
		done := vtime.NewWaitGroup("iovec")
		done.Add(procs)
		for i := 0; i < procs; i++ {
			i := i
			k.Go("holder", func(q *vtime.Proc) {
				defer done.Done()
				view := v.Slice(i*8, 64)
				q.Sleep(vtime.Duration(i+1) * 1000) // stagger releases
				for _, s := range view.Segs {
					if s.B[0] != 0x5A {
						t.Errorf("proc %d saw corrupted byte %x", i, s.B[0])
					}
				}
				view.Release()
			})
		}
		done.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (the original)", b.Refs())
	}
	v.Release()
}

func TestUnpooledLargeBuffer(t *testing.T) {
	b := Get(8 << 20) // beyond the largest class
	if len(b.Bytes()) != 8<<20 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release of unpooled buffer did not panic")
		}
	}()
	b.Release()
}

func TestFifoReusesBackingOnceDrained(t *testing.T) {
	var f Fifo
	f.Write([]byte("hello"))
	f.Write([]byte(" world"))
	if f.Len() != 11 || string(f.Bytes()) != "hello world" {
		t.Fatalf("fifo = %q (len %d)", f.Bytes(), f.Len())
	}
	f.Consume(6)
	if string(f.Bytes()) != "world" {
		t.Fatalf("after consume: %q", f.Bytes())
	}
	f.Consume(5)
	if f.Len() != 0 {
		t.Fatalf("len after drain = %d", f.Len())
	}
	// Once drained, the backing array is recycled: writing again must
	// not grow capacity beyond what the first round established.
	c0 := cap(f.buf)
	for i := 0; i < 100; i++ {
		f.Write([]byte("0123456789"))
		f.Consume(10)
	}
	if cap(f.buf) != c0 {
		t.Fatalf("backing array reallocated: cap %d -> %d", c0, cap(f.buf))
	}
	copy(f.Grow(3), "abc")
	if string(f.Bytes()) != "abc" {
		t.Fatalf("grow region = %q", f.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-consume did not panic")
		}
	}()
	f.Consume(4)
}

// failAfter errors once n bytes have been written — exercises WriteTo's
// short-write path.
type failAfter struct {
	buf bytes.Buffer
	n   int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.buf.Len()+len(p) > f.n {
		take := f.n - f.buf.Len()
		f.buf.Write(p[:take])
		return take, errFull
	}
	return f.buf.Write(p)
}

var errFull = errors.New("full")

func TestWriteToGathersSegments(t *testing.T) {
	hdr := []byte("HDR|")
	b := Get(6)
	copy(b.Bytes(), "owned!")
	v := Make(hdr)
	v.Append(b, b.Bytes())
	v.Append(nil, []byte("|tail"))

	var sink bytes.Buffer
	n, err := v.WriteTo(&sink)
	if err != nil || n != int64(v.Len()) {
		t.Fatalf("WriteTo = (%d, %v), want (%d, nil)", n, err, v.Len())
	}
	if sink.String() != "HDR|owned!|tail" {
		t.Fatalf("gathered bytes = %q", sink.String())
	}

	// A failing writer stops mid-vector and reports the partial count.
	fw := &failAfter{n: 7}
	n, err = v.WriteTo(fw)
	if err == nil || n != 7 {
		t.Fatalf("short WriteTo = (%d, %v), want (7, errFull)", n, err)
	}
	b.Release()
}
