// Package rmi models the Java side of the paper's evaluation: "Java
// sockets" (a managed-runtime socket whose per-operation cost reflects
// runtime crossings and heap staging — Kaffe in the paper, ported into
// PadicoTM with small changes) and a minimal RMI layer (registry,
// remote invocation with serialized arguments) on top of them.
//
// Table 1 measures Java sockets at 40 µs one-way latency yet 237.9 MB/s
// bandwidth: the VM crossing is expensive per call, but the data path
// stays nearly zero-copy. JavaSocket reproduces both constants.
package rmi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrNotBound = errors.New("rmi: name not bound")
	ErrNoMethod = errors.New("rmi: no such method")
)

// JavaSocket wraps a VLink with the managed-runtime cost profile.
type JavaSocket struct {
	V *vlink.VLink
	k *vtime.Kernel
}

// NewJavaSocket wraps an established VLink.
func NewJavaSocket(k *vtime.Kernel, v *vlink.VLink) *JavaSocket {
	return &JavaSocket{V: v, k: k}
}

// Write sends all of data, charging the VM-crossing and heap-staging
// costs.
func (s *JavaSocket) Write(p *vtime.Proc, data []byte) (int, error) {
	p.Consume(model.JavaSocketOpCost + model.JavaSocketPerByte.Cost(len(data)))
	return s.V.Write(p, data)
}

// Read receives available bytes.
func (s *JavaSocket) Read(p *vtime.Proc, buf []byte) (int, error) {
	n, err := s.V.Read(p, buf)
	p.Consume(model.JavaSocketOpCost + model.JavaSocketPerByte.Cost(n))
	return n, err
}

// ReadFull reads exactly len(buf) bytes.
func (s *JavaSocket) ReadFull(p *vtime.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := s.Read(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close shuts the socket down.
func (s *JavaSocket) Close() { s.V.Close() }

// ---------------------------------------------------------------------
// RMI: registry + remote invocation over Java sockets.

// RemoteMethod executes one remote call: serialized args in, serialized
// result out.
type RemoteMethod func(p *vtime.Proc, args []byte) ([]byte, error)

// RemoteObject is a method table.
type RemoteObject map[string]RemoteMethod

// Registry is the per-node RMI runtime (rmiregistry + transport).
type Registry struct {
	k     *vtime.Kernel
	ep    *vlink.Endpoint
	port  int
	names map[string]RemoteObject

	Calls int64
}

// NewRegistry creates and activates an RMI registry on driver/port.
func NewRegistry(k *vtime.Kernel, ep *vlink.Endpoint, driver string, port int) (*Registry, error) {
	r := &Registry{k: k, ep: ep, port: port, names: make(map[string]RemoteObject)}
	ln, err := ep.Listen(driver, port)
	if err != nil {
		return nil, err
	}
	ln.SetAcceptHandler(func(v *vlink.VLink) { r.serve(v) })
	return r, nil
}

// ModuleName implements core.Module.
func (r *Registry) ModuleName() string { return "rmi" }

// Bind publishes an object under a name.
func (r *Registry) Bind(name string, obj RemoteObject) { r.names[name] = obj }

// serve handles one inbound connection: [nameLen][name][methLen][meth]
// [argLen][args] -> [status][resLen][res], length-framed.
func (r *Registry) serve(v *vlink.VLink) {
	r.k.GoDaemon("rmi-serve", func(p *vtime.Proc) {
		for {
			req, err := readFrame(p, v)
			if err != nil {
				return
			}
			// Server-side deserialization cost.
			p.Consume(model.RMIRequestCost + model.SerializeRMIPerByte.Cost(len(req)))
			dec := decoder{buf: req}
			name := dec.str()
			meth := dec.str()
			args := dec.bytes()
			var status byte
			var res []byte
			obj, ok := r.names[name]
			if !ok {
				status, res = 1, []byte(ErrNotBound.Error())
			} else if m, ok := obj[meth]; !ok {
				status, res = 1, []byte(ErrNoMethod.Error())
			} else if out, err := m(p, args); err != nil {
				status, res = 1, []byte(err.Error())
			} else {
				res = out
			}
			r.Calls++
			p.Consume(model.RMIRequestCost + model.SerializeRMIPerByte.Cost(len(res)))
			reply := make([]byte, 1+len(res))
			reply[0] = status
			copy(reply[1:], res)
			writeFrame(p, v, reply)
		}
	})
}

// Stub is a client-side remote reference.
type Stub struct {
	k    *vtime.Kernel
	v    *vlink.VLink
	name string
}

// Lookup dials the registry on (node, port) and returns a stub for a
// bound name.
func Lookup(p *vtime.Proc, ep *vlink.Endpoint, driver string, node topology.NodeID, port int, name string) (*Stub, error) {
	v, err := ep.ConnectWait(p, driver, vlink.Addr{Node: node, Port: port})
	if err != nil {
		return nil, err
	}
	return &Stub{k: p.Kernel(), v: v, name: name}, nil
}

// Call invokes a remote method synchronously.
func (s *Stub) Call(p *vtime.Proc, method string, args []byte) ([]byte, error) {
	var enc encoder
	enc.str(s.name)
	enc.str(method)
	enc.bytes(args)
	p.Consume(model.RMIRequestCost + model.SerializeRMIPerByte.Cost(len(enc.buf)))
	writeFrame(p, s.v, enc.buf)
	reply, err := readFrame(p, s.v)
	if err != nil {
		return nil, err
	}
	p.Consume(model.RMIRequestCost + model.SerializeRMIPerByte.Cost(len(reply)))
	if reply[0] != 0 {
		return nil, fmt.Errorf("rmi: remote exception: %s", reply[1:])
	}
	return reply[1:], nil
}

// ---------------------------------------------------------------------
// Framing and mini-serialization.

func writeFrame(p *vtime.Proc, v *vlink.VLink, body []byte) {
	hdr := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(hdr, uint32(len(body)))
	v.Write(p, append(hdr, body...))
}

func readFrame(p *vtime.Proc, v *vlink.VLink) ([]byte, error) {
	var hdr [4]byte
	if _, err := v.ReadFull(p, hdr[:]); err != nil {
		return nil, err
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := v.ReadFull(p, body); err != nil {
		return nil, err
	}
	return body, nil
}

type encoder struct{ buf []byte }

func (e *encoder) str(s string) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	e.buf = append(e.buf, l[:]...)
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	e.buf = append(e.buf, l[:]...)
	e.buf = append(e.buf, b...)
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) bytes() []byte {
	n := int(binary.BigEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}
