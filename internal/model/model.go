// Package model centralizes the performance calibration of the
// simulated testbed. The paper's evaluation (IPDPS 2004, §5) ran on
// dual-Pentium III 1 GHz nodes with Myrinet-2000, switched Ethernet-100,
// the VTHD WAN and a lossy trans-continental Internet link. Every
// constant below is either a published hardware figure or a software
// cost derived from the published end-to-end points so that the
// simulated stack lands on the paper's numbers when the same layers are
// traversed.
//
// Derivations are spelled out next to each constant; the invariant used
// throughout is
//
//	one-way latency  = Σ per-side per-message costs + wire latency
//	bandwidth(size)  = size / (latency + size × Σ per-byte costs)
//
// with per-byte costs summed serially (the paper's bandwidth test acks
// every message, so marshalling, the wire and unmarshalling do not
// pipeline across a single message).
package model

import "time"

// ---------------------------------------------------------------------
// Myrinet-2000 (SAN). Hardware: 2 Gb/s links ≈ 250 MB/s payload rate;
// the paper reports 240 MB/s = 96 % of nominal as the best achievable,
// which we model as a 0.65 µs per-4KiB-packet host/NIC overhead:
// 4096 / (4096/250e6 + 0.65e-6) ≈ 240.5 MB/s.
const (
	MyrinetRate       = 250e6 // bytes/s on the wire
	MyrinetPacket     = 4096  // bytes per hardware packet
	MyrinetPktOverhd  = 650 * time.Nanosecond
	MyrinetWireLat    = 2 * time.Microsecond // switch + cable
	MyrinetHWChannels = 2                    // channels Madeleine gets (paper §4.1)
)

// SCI: mapped-memory SAN, slightly lower rate and latency than Myrinet,
// a single hardware channel (paper §4.1).
const (
	SCIRate       = 180e6
	SCIWireLat    = 1400 * time.Nanosecond
	SCIHWChannels = 1
)

// Ethernet-100: 100 Mb/s = 12.5 MB/s raw. Frame = 1500 payload + 38
// overhead (header+FCS+preamble+IFG); TCP/IP headers eat 40 more. The
// paper's reference curve peaks around 11 MB/s.
const (
	EthernetRate    = 12.5e6
	EthernetMTU     = 1500
	EthernetFrameOH = 38
	EthernetWireLat = 30 * time.Microsecond // host + switch, per hop
)

// VTHD WAN: high bandwidth (1 Gb/s core), high latency; each node
// reaches it through its Ethernet-100 access link, which is why the
// paper caps parallel-stream throughput at 12 MB/s. One-way path
// latency 8 ms (paper §5: "a 8 ms latency").
const (
	VTHDCoreRate = 125e6
	VTHDWireLat  = 8 * time.Millisecond
)

// Lossy trans-continental Internet link (paper §5 last ¶): 5–10 % loss.
// Calibrated so Reno lands near the paper's 150 KB/s and the link can
// carry ≈ 550 KB/s of VRP traffic: capacity 600 KB/s, one-way 25 ms,
// 5 % packet loss (Mathis: 1460 B / 0.05 s × 1.22/√0.05 ≈ 160 KB/s).
const (
	LossyRate    = 600e3
	LossyWireLat = 25 * time.Millisecond
	LossyLossPct = 0.05
)

// ---------------------------------------------------------------------
// Per-side, per-message software costs. The chain over Myrinet is
// GM → Madeleine → MadIO → {Circuit | VLink} → middleware, and the
// paper's Table 1 fixes the cumulative one-way latencies:
//
//	GM       : 1.5+1.5 (hosts) + 2 (wire)          = 5.0 µs
//	Madeleine: + 2×1.25                            = 7.5 µs
//	MadIO    : + 2×0.025 (header combining, §4.1)  = 7.55 µs  (<0.1 µs over Madeleine)
//	Circuit  : + 2×0.425                           = 8.4 µs   (Table 1)
//	VLink    : MadIO + 2×1.325                     = 10.2 µs  (Table 1)
//	MPI      : Circuit + 2×1.83                    = 12.06 µs (Table 1)
//	omniORB4 : VLink + 2×4.1                       = 18.4 µs  (Table 1)
//	omniORB3 : VLink + 2×5.05                      = 20.3 µs  (Table 1)
//	Java     : VLink + 2×14.9                      = 40 µs    (Table 1)
//	Mico     : VLink + 2×26.4                      = 63 µs    (§5)
//	ORBacus  : VLink + 2×21.9                      = 54 µs    (§5)
const (
	GMHostCost        = 1500 * time.Nanosecond
	BIPHostCost       = 1200 * time.Nanosecond // BIP is leaner than GM
	BIPEagerLimit     = 1024                   // short/long protocol threshold
	BIPRendezvousCost = 900 * time.Nanosecond  // extra RTS/CTS processing per side
	SISCIHostCost     = 900 * time.Nanosecond
	VIAHostCost       = 1300 * time.Nanosecond

	MadeleineCost = 1250 * time.Nanosecond

	// MadIO logical multiplexing: with header combining the demux header
	// rides in the same hardware message (one extra segment); without it
	// the header is a separate Madeleine message (ablation).
	MadIOCombinedCost = 25 * time.Nanosecond
	MadIOSeparateCost = 900 * time.Nanosecond

	CircuitCost = 425 * time.Nanosecond
	VLinkCost   = 1325 * time.Nanosecond

	MPICost  = 1830 * time.Nanosecond
	VMadCost = 50 * time.Nanosecond // virtual-Madeleine personality is a thin shim
	FMCost   = 60 * time.Nanosecond
	VioCost  = 40 * time.Nanosecond // personalities adapt syntax only (§3.3)
	AioCost  = 60 * time.Nanosecond
	SysWrap  = 45 * time.Nanosecond
)

// Per-request CPU of the middleware systems (per side), from Table 1 as
// derived above.
const (
	OmniORB3RequestCost = 5050 * time.Nanosecond
	OmniORB4RequestCost = 4100 * time.Nanosecond
	MicoRequestCost     = 26400 * time.Nanosecond
	ORBacusRequestCost  = 21900 * time.Nanosecond
	JavaSocketOpCost    = 14900 * time.Nanosecond
	SOAPRequestCost     = 120 * time.Microsecond // XML parse/serialize dominates
	PVMRequestCost      = 2600 * time.Nanosecond
	HLARequestCost      = 9000 * time.Nanosecond
	DSMRequestCost      = 3000 * time.Nanosecond
	RMIRequestCost      = 35 * time.Microsecond
)

// ---------------------------------------------------------------------
// Per-byte CPU costs (ns/byte, per side). Derived from the published
// 1 MB bandwidths against the 240.5 MB/s effective wire:
//
//	extra(target) = 1e3/target(MB/s) − 1e3/240.5, split across 2 sides.
//
//	Mico    55 MB/s → 7.09 ns/B/side (one full marshalling copy per side
//	        at ≈141 MB/s, the paper's explanation: "they always copy data
//	        for marshalling and unmarshalling")
//	ORBacus 63 MB/s → 5.95 ns/B/side (≈168 MB/s copies)
//	omniORB4 235.8 → 0.0411, omniORB3 238.4 → 0.0180,
//	Java 237.9 → 0.0224, MPICH 238.7 → 0.0153, VLink 239 → 0.0127,
//	Circuit 240 → 0.004 (zero-copy paths only touch descriptors).
type PerByte float64 // nanoseconds per byte, per side

const (
	MicoCopyPerByte     PerByte = 7.09
	ORBacusCopyPerByte  PerByte = 5.95
	OmniORB4PerByte     PerByte = 0.0411
	OmniORB3PerByte     PerByte = 0.0180
	JavaSocketPerByte   PerByte = 0.0224
	MPIPerByte          PerByte = 0.0153
	VLinkPerByte        PerByte = 0.0127
	CircuitPerByte      PerByte = 0.004
	SOAPPerByte         PerByte = 28.0 // XML text encoding of binary payloads
	CompressPerByte     PerByte = 14.0 // AdOC flate, per input byte
	EncryptPerByte      PerByte = 9.0  // AES-CTR + HMAC on a PIII
	MemcpyPerByte       PerByte = 1.15 // plain 870 MB/s memcpy
	SerializeRMIPerByte PerByte = 11.0
)

// ---------------------------------------------------------------------
// Local disk (the durable object store under datagrid). Commodity
// IDE/early-SATA disks of the paper's era stream ~40 MB/s on writes and
// ~55 MB/s on reads once the head is settled; an fsync costs a platter
// rotation plus cache flush, ~8 ms. The pack engine appends needles
// sequentially, so per-needle cost is per-byte streaming plus a small
// per-record overhead (header parse, inode-less index update); seeks
// only happen on cold needle loads.
const (
	DiskWritePerByte PerByte = 25.0                  // 40 MB/s sequential write
	DiskReadPerByte  PerByte = 18.2                  // 55 MB/s sequential read
	DiskNeedleCost           = 60 * time.Microsecond // per-needle record overhead
	DiskSeekCost             = 6 * time.Millisecond  // cold random needle load
	FsyncCost                = 8 * time.Millisecond  // rotation + cache flush
)

// Cost converts a byte count at a per-byte rate into a duration.
func (pb PerByte) Cost(n int) time.Duration {
	return time.Duration(float64(n) * float64(pb))
}

// Serialize returns the wire time of n bytes at rate bytes/s.
func Serialize(n int, rate float64) time.Duration {
	return time.Duration(float64(n) / rate * 1e9)
}
