package ipstack

import (
	"padico/internal/iovec"
	"padico/internal/netsim"
)

// sendBlockSize is the pooled block unit of the TCP send queue. It is
// an iovec pool class, and large enough that a segment (one MSS) spans
// at most two blocks.
const sendBlockSize = 64 << 10

// sendQueue is the TCP socket send buffer as a queue of pooled,
// refcounted blocks: bytes [sndUna, sndEnd) live here exactly once.
// Writers copy into the tail block (the stack's single pack — the only
// payload copy on the send side); the segmenter emits retained views
// of block regions, so a transmission or retransmission allocates and
// copies nothing. Acked bytes are trimmed from the head; a block
// returns to the pool when both the queue and every in-flight packet
// view released it. Block space is never rewound or rewritten below
// the fill point, so a delayed duplicate still in the network always
// reads the bytes it was sent with.
type sendQueue struct {
	blocks []qblock
	n      int // bytes stored (un-acked + un-sent)
}

// qblock is one block: valid bytes are buf.Bytes()[lo:hi].
type qblock struct {
	buf    *iovec.Buf
	lo, hi int
}

// size returns the byte count currently queued.
func (q *sendQueue) size() int { return q.n }

// grow appends b's bytes to the tail (copying once into pooled
// blocks).
func (q *sendQueue) grow(b []byte) {
	for len(b) > 0 {
		if len(q.blocks) == 0 || q.blocks[len(q.blocks)-1].hi == sendBlockSize {
			q.blocks = append(q.blocks, qblock{buf: iovec.Get(sendBlockSize)})
		}
		t := &q.blocks[len(q.blocks)-1]
		c := copy(t.buf.Bytes()[t.hi:], b)
		t.hi += c
		q.n += c
		b = b[c:]
	}
}

// growVec appends n bytes of v starting at offset from (copying once).
func (q *sendQueue) growVec(v iovec.Vec, from, n int) {
	for _, s := range v.Segs {
		if n == 0 {
			return
		}
		if from >= len(s.B) {
			from -= len(s.B)
			continue
		}
		take := len(s.B) - from
		if take > n {
			take = n
		}
		q.grow(s.B[from : from+take])
		from = 0
		n -= take
	}
}

// drop trims n acked bytes from the head, releasing fully-consumed
// blocks (their bytes stay alive while in-flight views hold
// references).
func (q *sendQueue) drop(n int) {
	q.n -= n
	for n > 0 {
		b := &q.blocks[0]
		take := b.hi - b.lo
		if take > n {
			take = n
		}
		b.lo += take
		n -= take
		if b.lo == sendBlockSize { // fully filled and fully acked
			b.buf.Release()
			q.blocks = q.blocks[1:]
		}
	}
}

// view appends retained views of the byte range [off, off+n) — off
// relative to the queue head — to dst. The caller owns the references
// (one per contributing block) and releases them when the packet is
// consumed or dropped.
func (q *sendQueue) view(off, n int, dst *iovec.Vec) {
	for i := range q.blocks {
		if n == 0 {
			return
		}
		b := &q.blocks[i]
		blen := b.hi - b.lo
		if off >= blen {
			off -= blen
			continue
		}
		take := blen - off
		if take > n {
			take = n
		}
		b.buf.Retain()
		dst.Append(b.buf, b.buf.Bytes()[b.lo+off:b.lo+off+take])
		off = 0
		n -= take
	}
	if n > 0 {
		panic("ipstack: segment view beyond send queue")
	}
}

// reset releases every block (connection abort/teardown).
func (q *sendQueue) reset() {
	for i := range q.blocks {
		q.blocks[i].buf.Release()
	}
	q.blocks = nil
	q.n = 0
}

// ---------------------------------------------------------------------
// Pooled TCP packets.

// tcpPacket bundles everything one TCP transmission needs — the netsim
// packet, the IP/TCP headers and the payload view vector — in a single
// pooled object. One is taken per segment (data and ACKs alike),
// recycled after the receiver consumed it or the fabric dropped it, so
// steady-state TCP traffic allocates nothing per packet.
type tcpPacket struct {
	s    *Stack
	pkt  netsim.Packet
	hdr  ipHeader
	seg  tcpSeg
	pl   iovec.Vec
	segs [2]iovec.Seg // inline storage for pl (a segment spans <= 2 blocks)
	drop func()       // pre-bound release, wired as pkt.Drop
}

func (s *Stack) getTP() *tcpPacket {
	var tp *tcpPacket
	if n := len(s.tpFree); n > 0 {
		tp = s.tpFree[n-1]
		s.tpFree = s.tpFree[:n-1]
	} else {
		tp = &tcpPacket{s: s}
		tp.drop = tp.release
	}
	tp.pl.Segs = tp.segs[:0]
	return tp
}

// release drops the payload references and recycles the packet. Called
// exactly once per transmission: by the receiving host after the
// segment was processed, or by the fabric on a drop.
func (tp *tcpPacket) release() {
	tp.pl.Release()
	tp.pl.Segs = nil
	tp.hdr = ipHeader{}
	tp.seg = tcpSeg{}
	tp.pkt = netsim.Packet{}
	tp.s.tpFree = append(tp.s.tpFree, tp)
}
