package ipstack

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/vtime"
)

// lanPair wires two hosts over a loss-free Ethernet-100 LAN.
func lanPair(k *vtime.Kernel) (*Stack, *Host, *Host) {
	st := New(k)
	lan := netsim.NewSwitchedLAN(k, model.EthernetRate, model.EthernetFrameOH,
		model.EthernetWireLat, 0, 1)
	st.ConnectLAN(lan, 0, 0, 1, 1, model.EthernetMTU)
	return st, st.Host(0), st.Host(1)
}

// wanPair wires two hosts across a VTHD-like WAN: Ethernet access hops
// feeding a fast 8 ms core.
func wanPair(k *vtime.Kernel) (*Stack, *Host, *Host) {
	st := New(k)
	mk := func(seed int64) *netsim.Path {
		return netsim.NewPath(k, "vthd", seed,
			&netsim.Hop{Name: "access", Rate: 12.2e6, Latency: 50 * time.Microsecond, QueueCap: 64},
			&netsim.Hop{Name: "core", Rate: model.VTHDCoreRate, Latency: model.VTHDWireLat, QueueCap: 4096},
		)
	}
	st.ConnectPath(0, 1, mk(11), mk(12), model.EthernetMTU)
	return st, st.Host(0), st.Host(1)
}

// lossyPair wires two hosts across the trans-continental lossy link.
func lossyPair(k *vtime.Kernel) (*Stack, *Host, *Host) {
	st := New(k)
	mk := func(seed int64) *netsim.Path {
		return netsim.NewPath(k, "lossy", seed,
			&netsim.Hop{Name: "transcont", Rate: model.LossyRate,
				Latency: model.LossyWireLat, Loss: model.LossyLossPct, QueueCap: 256},
		)
	}
	st.ConnectPath(0, 1, mk(21), mk(22), model.EthernetMTU)
	return st, st.Host(0), st.Host(1)
}

func TestUDPDelivery(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lanPair(k)
	if err := k.Run(func(p *vtime.Proc) {
		ua, _ := ha.ListenUDP(5000)
		ub, _ := hb.ListenUDP(6000)
		if err := ua.SendTo(1, 6000, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		dg := ub.Recv(p)
		if string(dg.Data) != "ping" || dg.From != 0 || dg.FromPort != 5000 {
			t.Fatalf("got %+v", dg)
		}
		if err := ub.SendTo(0, 5000, []byte("pong")); err != nil {
			t.Fatal(err)
		}
		if dg := ua.Recv(p); string(dg.Data) != "pong" {
			t.Fatalf("got %q", dg.Data)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPMTULimit(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, _ := lanPair(k)
	if err := k.Run(func(p *vtime.Proc) {
		ua, _ := ha.ListenUDP(0)
		mtu, err := ua.MTU(1)
		if err != nil || mtu != model.EthernetMTU-28 {
			t.Fatalf("MTU = %d, %v", mtu, err)
		}
		if err := ua.SendTo(1, 9, make([]byte, mtu+1)); err == nil {
			t.Fatal("oversized datagram accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConnectTransferClose(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lanPair(k)
	msg := make([]byte, 100000)
	rnd := rand.New(rand.NewSource(3))
	rnd.Read(msg)
	var got []byte
	if err := k.Run(func(p *vtime.Proc) {
		ln, err := hb.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		k.Go("server", func(q *vtime.Proc) {
			defer done.Done()
			c, err := ln.Accept(q)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 4096)
			for {
				n, err := c.Read(q, buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		})
		c, err := ha.Dial(p, 1, 80)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, msg); err != nil {
			t.Fatal(err)
		}
		c.Close()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(msg))
	}
}

func TestTCPDialNoListener(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, _ := lanPair(k)
	if err := k.Run(func(p *vtime.Proc) {
		if _, err := ha.Dial(p, 1, 9999); !errors.Is(err, ErrRefused) {
			t.Fatalf("err = %v, want ErrRefused", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialNoRoute(t *testing.T) {
	k := vtime.NewKernel()
	st := New(k)
	if err := k.Run(func(p *vtime.Proc) {
		if _, err := st.Host(0).Dial(p, 42, 80); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("err = %v, want ErrNoRoute", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// transfer pushes size bytes a->b and returns goodput in bytes/s of
// virtual time.
func transfer(t *testing.T, k *vtime.Kernel, ha, hb *Host, size int) float64 {
	t.Helper()
	var rate float64
	if err := k.Run(func(p *vtime.Proc) {
		ln, _ := hb.Listen(80)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var recvEnd vtime.Time
		k.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			c, _ := ln.Accept(q)
			buf := make([]byte, 64<<10)
			total := 0
			for total < size {
				n, err := c.Read(q, buf)
				total += n
				if err != nil {
					if err != io.EOF {
						t.Error(err)
					}
					break
				}
			}
			recvEnd = q.Now()
		})
		c, err := ha.Dial(p, hb.ID(), 80)
		if err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		chunk := make([]byte, 64<<10)
		sent := 0
		for sent < size {
			n := size - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			if err := c.Write(p, chunk[:n]); err != nil {
				t.Fatal(err)
			}
			sent += n
		}
		done.Wait(p)
		rate = float64(size) / recvEnd.Sub(start).Seconds()
	}); err != nil {
		t.Fatal(err)
	}
	return rate
}

func TestTCPLANThroughputNearLineRate(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lanPair(k)
	rate := transfer(t, k, ha, hb, 4<<20)
	// Paper's Ethernet-100 reference peaks around 11 MB/s.
	if rate < 10.5e6 || rate > 12.5e6 {
		t.Fatalf("LAN TCP rate = %.3g MB/s, want ~11", rate/1e6)
	}
}

func TestTCPWANWindowLimited(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := wanPair(k)
	rate := transfer(t, k, ha, hb, 8<<20)
	// Paper §5: "a bandwidth of 9 MB/s" for one stream on VTHD —
	// the 160 KiB window over a ~17 ms RTT.
	if rate < 7.5e6 || rate > 10.5e6 {
		t.Fatalf("WAN TCP rate = %.3g MB/s, want ~9", rate/1e6)
	}
}

func TestTCPLossyLinkCollapses(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lossyPair(k)
	rate := transfer(t, k, ha, hb, 512<<10)
	// Paper §5: "with TCP/IP and plain sockets, we get 150 KB/s" on the
	// 5-10%-loss link. Emergent Reno behaviour: well under the link's
	// 600 KB/s capacity, in the 100-250 KB/s band.
	if rate < 90e3 || rate > 260e3 {
		t.Fatalf("lossy TCP rate = %.3g KB/s, want ~150", rate/1e3)
	}
}

func TestTCPRetransmitsOnLossyLink(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lossyPair(k)
	var retrans int64
	if err := k.Run(func(p *vtime.Proc) {
		ln, _ := hb.Listen(80)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		k.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			c, _ := ln.Accept(q)
			buf := make([]byte, 32<<10)
			total := 0
			for total < 200000 {
				n, err := c.Read(q, buf)
				total += n
				if err != nil {
					break
				}
			}
		})
		c, err := ha.Dial(p, 1, 80)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, make([]byte, 200000)); err != nil {
			t.Fatal(err)
		}
		done.Wait(p)
		retrans = c.Retransmits
	}); err != nil {
		t.Fatal(err)
	}
	if retrans == 0 {
		t.Fatal("no retransmissions on a 5% loss link")
	}
}

func TestTCPBidirectional(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lanPair(k)
	if err := k.Run(func(p *vtime.Proc) {
		ln, _ := hb.Listen(80)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		k.Go("echo", func(q *vtime.Proc) {
			defer done.Done()
			c, _ := ln.Accept(q)
			buf := make([]byte, 1024)
			for {
				n, err := c.Read(q, buf)
				if n > 0 {
					if err := c.Write(q, buf[:n]); err != nil {
						return
					}
				}
				if err != nil {
					c.Close()
					return
				}
			}
		})
		c, _ := ha.Dial(p, 1, 80)
		for i := 0; i < 10; i++ {
			msg := []byte("echo-me-please-0123456789")
			if err := c.Write(p, msg); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(msg))
			if _, err := c.ReadFull(p, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("echo mismatch: %q", got)
			}
		}
		c.Close()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPFlowControlBlocksSender(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lanPair(k)
	if err := k.Run(func(p *vtime.Proc) {
		ln, _ := hb.Listen(80)
		accepted := vtime.NewQueue[*TCPConn]("acc")
		k.GoDaemon("acceptor", func(q *vtime.Proc) {
			c, _ := ln.Accept(q)
			accepted.Push(c)
			// Never reads: receiver window must stall the sender.
			vtime.NewCond("forever").Wait(q)
		})
		c, _ := ha.Dial(p, 1, 80)
		// Try to push well past snd+rcv buffering; must not complete.
		big := make([]byte, DefaultSndBuf+DefaultRcvBuf+1<<20)
		wrote := vtime.NewWaitGroup("wrote")
		wrote.Add(1)
		finished := false
		k.GoDaemon("writer", func(q *vtime.Proc) {
			_ = c.Write(q, big)
			finished = true
			wrote.Done()
		})
		p.Sleep(5 * time.Second)
		if finished {
			t.Error("write of unbounded data completed against a stalled reader")
		}
		srv, _ := accepted.TryPop()
		if srv == nil {
			t.Fatal("no accepted conn")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSetBuffersChangesWANThroughput(t *testing.T) {
	// Halving the receive window must roughly halve window-limited WAN
	// throughput — the mechanism behind the paper's parallel-streams fix.
	run := func(rcv int) float64 {
		k := vtime.NewKernel()
		_, ha, hb := wanPair(k)
		var rate float64
		if err := k.Run(func(p *vtime.Proc) {
			ln, _ := hb.Listen(80)
			done := vtime.NewWaitGroup("done")
			done.Add(1)
			var end vtime.Time
			size := 4 << 20
			k.Go("sink", func(q *vtime.Proc) {
				defer done.Done()
				c, _ := ln.Accept(q)
				c.SetBuffers(0, rcv)
				buf := make([]byte, 64<<10)
				total := 0
				for total < size {
					n, err := c.Read(q, buf)
					total += n
					if err != nil {
						break
					}
				}
				end = q.Now()
			})
			c, _ := ha.Dial(p, 1, 80)
			start := p.Now()
			c.Write(p, make([]byte, size))
			done.Wait(p)
			rate = float64(size) / end.Sub(start).Seconds()
		}); err != nil {
			t.Fatal(err)
		}
		return rate
	}
	full := run(DefaultRcvBuf)
	half := run(DefaultRcvBuf / 2)
	if ratio := full / half; ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("window halving gave ratio %.2f, want ~2", ratio)
	}
}

// Property: any payload split into arbitrary write chunks arrives intact
// and in order over the lossy link.
func TestQuickTCPStreamIntegrityUnderLoss(t *testing.T) {
	f := func(seed int64, chunks []uint16) bool {
		if len(chunks) == 0 || len(chunks) > 12 {
			return true
		}
		var msg []byte
		rnd := rand.New(rand.NewSource(seed))
		var sizes []int
		for _, c := range chunks {
			n := int(c)%4000 + 1
			sizes = append(sizes, n)
			b := make([]byte, n)
			rnd.Read(b)
			msg = append(msg, b...)
		}
		k := vtime.NewKernel()
		_, ha, hb := lossyPair(k)
		var got []byte
		err := k.Run(func(p *vtime.Proc) {
			ln, _ := hb.Listen(80)
			done := vtime.NewWaitGroup("done")
			done.Add(1)
			k.Go("sink", func(q *vtime.Proc) {
				defer done.Done()
				c, _ := ln.Accept(q)
				buf := make([]byte, 8192)
				for {
					n, err := c.Read(q, buf)
					got = append(got, buf[:n]...)
					if err != nil {
						return
					}
				}
			})
			c, err := ha.Dial(p, 1, 80)
			if err != nil {
				t.Log(err)
				return
			}
			off := 0
			for _, n := range sizes {
				if err := c.Write(p, msg[off:off+n]); err != nil {
					t.Log(err)
					return
				}
				off += n
			}
			c.Close()
			done.Wait(p)
		})
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReadyHandlerFires(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lanPair(k)
	fired := 0
	if err := k.Run(func(p *vtime.Proc) {
		ln, _ := hb.Listen(80)
		lnReady := 0
		ln.SetReadyHandler(func() { lnReady++ })
		c, err := ha.Dial(p, 1, 80)
		if err != nil {
			t.Fatal(err)
		}
		if lnReady == 0 {
			t.Error("listener ready handler did not fire")
		}
		srv, _ := ln.Accept(p)
		srv.SetReadyHandler(func() { fired++ })
		c.Write(p, []byte("x"))
		p.Sleep(10 * time.Millisecond)
		if fired == 0 {
			t.Error("conn ready handler did not fire")
		}
		if !srv.Readable() {
			t.Error("srv not readable")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPortConflicts(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, _ := lanPair(k)
	if err := k.Run(func(p *vtime.Proc) {
		if _, err := ha.Listen(80); err != nil {
			t.Fatal(err)
		}
		if _, err := ha.Listen(80); !errors.Is(err, ErrPortInUse) {
			t.Fatalf("dup Listen err = %v", err)
		}
		if _, err := ha.ListenUDP(53); err != nil {
			t.Fatal(err)
		}
		if _, err := ha.ListenUDP(53); !errors.Is(err, ErrPortInUse) {
			t.Fatalf("dup ListenUDP err = %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPLossOnLossyLink(t *testing.T) {
	k := vtime.NewKernel()
	_, ha, hb := lossyPair(k)
	received := 0
	if err := k.Run(func(p *vtime.Proc) {
		ua, _ := ha.ListenUDP(1000)
		ub, _ := hb.ListenUDP(2000)
		k.GoDaemon("sink", func(q *vtime.Proc) {
			for {
				ub.Recv(q)
				received++
			}
		})
		for i := 0; i < 500; i++ {
			ua.SendTo(1, 2000, make([]byte, 1000))
			p.Sleep(2 * time.Millisecond) // pace under link rate
		}
		p.Sleep(time.Second)
		if ub.Drops != 0 {
			t.Errorf("socket queue overflowed: %d drops", ub.Drops)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if received == 500 {
		t.Fatal("no loss on 5% lossy link")
	}
	if received < 400 {
		t.Fatalf("too much loss: %d/500", received)
	}
}
