// Package ipstack implements the "system-level TCP/IP" of the testbed:
// hosts with per-destination routes, UDP datagram sockets and a small
// Reno TCP (slow start, congestion avoidance, fast retransmit, RTO
// backoff, cumulative ACKs, out-of-order reassembly, flow control).
//
// It plays the role the OS socket layer plays in the paper: SysIO
// (internal/netaccess) arbitrates access to these sockets, and the
// distributed-paradigm stack (VLink and everything above it) ultimately
// bottoms out here when running on LAN/WAN resources. WAN behaviour in
// the paper's evaluation — the 9 MB/s window-limited VTHD streams, the
// 150 KB/s collapse on the lossy trans-continental link — emerges from
// this protocol's dynamics rather than from hard-coded figures.
package ipstack

import (
	"errors"
	"fmt"
	"io"
	"slices"
	"time"

	"padico/internal/iovec"
	"padico/internal/netsim"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Protocol numbers for the IP header.
const (
	protoTCP = 6
	protoUDP = 17
)

// Header sizes charged as wire overhead.
const (
	tcpHeader = 40 // IP + TCP
	udpHeader = 28 // IP + UDP
)

// Default socket buffer sizes. The 160 KiB receive window is what makes
// a single VTHD stream land at the paper's ~9 MB/s (160 KiB / 16 ms RTT).
const (
	DefaultSndBuf = 256 << 10
	DefaultRcvBuf = 160 << 10
)

// Exported errors.
var (
	ErrRefused   = errors.New("ipstack: connection refused")
	ErrClosed    = errors.New("ipstack: use of closed connection")
	ErrNoRoute   = errors.New("ipstack: no route to host")
	ErrPortInUse = errors.New("ipstack: port already in use")
	ErrHostDown  = errors.New("ipstack: host is down")
)

// ipHeader is carried in netsim.Packet.Meta.
type ipHeader struct {
	proto    int
	src, dst topology.NodeID
	srcPort  int
	dstPort  int
	nw       string     // TCP only: named network the segment travels on ("" = default route)
	seg      *tcpSeg    // TCP only
	tp       *tcpPacket // TCP only: owning pooled packet (payload + recycling)
}

// tcpSeg is the TCP-specific part of a packet.
type tcpSeg struct {
	syn, ack, fin bool
	seq           int64      // stream offset of the first payload byte (or of FIN)
	ackNo         int64      // cumulative ack (valid if ack)
	wnd           int        // advertised receive window
	ts            vtime.Time // sender timestamp
	ets           vtime.Time // echoed timestamp (for RTT sampling)
}

// route is a unidirectional way to reach one destination host.
type route struct {
	mtu  int
	send func(pkt *netsim.Packet)
}

// Stack owns all hosts of a simulation.
type Stack struct {
	k      *vtime.Kernel
	hosts  map[topology.NodeID]*Host
	tpFree []*tcpPacket // pooled TCP packets (single-threaded kernel)
	// srtt holds the latest smoothed RTT estimate per directed host
	// pair, updated on every TCP RTT sample. Pure bookkeeping (no
	// events): network-weather monitors read it as a passive latency
	// observation, free-riding on whatever traffic already flows.
	srtt map[[2]topology.NodeID]time.Duration

	// Telemetry handles, nil (free no-ops) until SetTelemetry.
	tel         *telemetry.Hub
	mRetransmit *telemetry.Counter
	mSegsSent   *telemetry.Counter
	hRTT        *telemetry.Histogram
}

// New creates an empty stack on the kernel.
func New(k *vtime.Kernel) *Stack {
	return &Stack{
		k: k, hosts: make(map[topology.NodeID]*Host),
		srtt: make(map[[2]topology.NodeID]time.Duration),
	}
}

// SetTelemetry wires the stack into a telemetry hub: retransmit and
// segment counters plus the per-sample RTT histogram go to the unified
// registry, and retransmits emit trace instants when tracing is on.
func (s *Stack) SetTelemetry(h *telemetry.Hub) {
	if h == nil || s.tel != nil {
		return
	}
	s.tel = h
	reg := h.Registry()
	s.mRetransmit = reg.Counter("ipstack.tcp_retransmits")
	s.mSegsSent = reg.Counter("ipstack.tcp_segs_sent")
	s.hRTT = reg.Histogram("ipstack.rtt")
}

// SRTT returns the most recent smoothed TCP RTT estimate measured from
// a to b (by any connection), and whether one exists.
func (s *Stack) SRTT(a, b topology.NodeID) (time.Duration, bool) {
	d, ok := s.srtt[[2]topology.NodeID{a, b}]
	return d, ok
}

// Host returns (creating it on first use) the protocol endpoint of a
// node.
func (s *Stack) Host(id topology.NodeID) *Host {
	h, ok := s.hosts[id]
	if !ok {
		h = &Host{
			stack: s, id: id,
			listeners: make(map[int]*Listener),
			udp:       make(map[int]*UDPConn),
			conns:     make(map[connKey]*TCPConn),
			routes:    make(map[topology.NodeID]*route),
			nextPort:  40000,
		}
		s.hosts[id] = h
	}
	return h
}

// Kernel returns the stack's kernel.
func (s *Stack) Kernel() *vtime.Kernel { return s.k }

// KillHost crashes node n: the host answers no further traffic, every
// listener and UDP socket closes, and every established TCP connection
// fails promptly on both ends (no FIN, no timeout wait — exactly what a
// power loss looks like from the peer's side is delivered explicitly so
// callback layers error out instead of stalling on RTO silence).
// Teardown walks ports and connection keys in sorted order so the event
// sequence is deterministic. Idempotent.
func (s *Stack) KillHost(n topology.NodeID) {
	h, ok := s.hosts[n]
	if !ok || h.dead {
		return
	}
	h.dead = true
	if s.tel != nil {
		s.tel.Note("ipstack", "host crashed", int(n), int64(len(h.conns)), 0)
	}
	lports := make([]int, 0, len(h.listeners))
	for p := range h.listeners {
		lports = append(lports, p)
	}
	slices.Sort(lports)
	for _, p := range lports {
		h.listeners[p].Close()
	}
	uports := make([]int, 0, len(h.udp))
	for p := range h.udp {
		uports = append(uports, p)
	}
	slices.Sort(uports)
	for _, p := range uports {
		h.udp[p].Close()
	}
	keys := make([]connKey, 0, len(h.conns))
	for k := range h.conns {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b connKey) int {
		if a.remote != b.remote {
			return int(a.remote) - int(b.remote)
		}
		if a.localPort != b.localPort {
			return a.localPort - b.localPort
		}
		return a.remotePort - b.remotePort
	})
	for _, k := range keys {
		c := h.conns[k]
		if c == nil {
			continue
		}
		c.Fail()
		if ph, ok := s.hosts[k.remote]; ok {
			peer := connKey{remote: n, remotePort: k.localPort, localPort: k.remotePort}
			if pc, ok := ph.conns[peer]; ok {
				pc.Fail()
			}
		}
	}
}

// ConnectLAN attaches two hosts to a shared fabric and installs routes
// between them. Call once per unordered pair; addresses are the nodes'
// attachment addresses on the fabric.
func (s *Stack) ConnectLAN(f netsim.Fabric, a topology.NodeID, addrA int,
	b topology.NodeID, addrB int, mtu int) {
	s.ConnectLANVia("", f, a, addrA, b, addrB, mtu)
}

// ConnectLANVia is ConnectLAN with the route registered under a network
// name, so multi-homed hosts can be told which wire to dial on (DialVia).
// The pair's default route is only claimed when none exists yet — the
// first network wired between a pair is its default.
func (s *Stack) ConnectLANVia(nw string, f netsim.Fabric, a topology.NodeID, addrA int,
	b topology.NodeID, addrB int, mtu int) {
	ha, hb := s.Host(a), s.Host(b)
	ha.ensureAttached(f, addrA)
	hb.ensureAttached(f, addrB)
	ha.addRoute(b, nw, &route{mtu: mtu, send: func(pkt *netsim.Packet) {
		pkt.Src, pkt.Dst = addrA, addrB
		f.Send(pkt)
	}})
	hb.addRoute(a, nw, &route{mtu: mtu, send: func(pkt *netsim.Packet) {
		pkt.Src, pkt.Dst = addrB, addrA
		f.Send(pkt)
	}})
}

// ConnectPath installs a WAN route between two hosts using a dedicated
// netsim.Path per direction.
func (s *Stack) ConnectPath(a, b topology.NodeID, ab, ba *netsim.Path, mtu int) {
	s.ConnectPathVia("", a, b, ab, ba, mtu)
}

// ConnectPathVia is ConnectPath with the route registered under a
// network name (see ConnectLANVia).
func (s *Stack) ConnectPathVia(nw string, a, b topology.NodeID, ab, ba *netsim.Path, mtu int) {
	ha, hb := s.Host(a), s.Host(b)
	ab.SetDeliver(hb.input)
	ba.SetDeliver(ha.input)
	ha.addRoute(b, nw, &route{mtu: mtu, send: ab.Send})
	hb.addRoute(a, nw, &route{mtu: mtu, send: ba.Send})
}

// connKey identifies an established TCP connection on a host.
type connKey struct {
	remote     topology.NodeID
	remotePort int
	localPort  int
}

// viaKey identifies a named route: the destination host plus the
// network the route rides on.
type viaKey struct {
	dst topology.NodeID
	nw  string
}

// Host is one node's transport endpoint.
type Host struct {
	stack     *Stack
	id        topology.NodeID
	attached  map[netsim.Fabric]bool
	listeners map[int]*Listener
	udp       map[int]*UDPConn
	conns     map[connKey]*TCPConn
	routes    map[topology.NodeID]*route
	vias      map[viaKey]*route // named routes for multi-homed pairs
	nextPort  int
	dead      bool // crashed: no traffic in or out
}

// ID returns the host's node id.
func (h *Host) ID() topology.NodeID { return h.id }

// Dead reports whether the host has been crashed by KillHost.
func (h *Host) Dead() bool { return h.dead }

// addRoute registers a route toward dst: under its network name when
// one is given, and as the pair's default when no default exists yet.
func (h *Host) addRoute(dst topology.NodeID, nw string, rt *route) {
	if nw != "" {
		if h.vias == nil {
			h.vias = make(map[viaKey]*route)
		}
		h.vias[viaKey{dst: dst, nw: nw}] = rt
	}
	if _, ok := h.routes[dst]; !ok || nw == "" {
		h.routes[dst] = rt
	}
}

// routeTo resolves the route toward dst: the named one when nw is set
// and registered, the pair's default otherwise.
func (h *Host) routeTo(dst topology.NodeID, nw string) (*route, bool) {
	if nw != "" {
		if rt, ok := h.vias[viaKey{dst: dst, nw: nw}]; ok {
			return rt, true
		}
	}
	rt, ok := h.routes[dst]
	return rt, ok
}

func (h *Host) ensureAttached(f netsim.Fabric, addr int) {
	if h.attached == nil {
		h.attached = make(map[netsim.Fabric]bool)
	}
	if !h.attached[f] {
		f.Attach(addr, h.input)
		h.attached[f] = true
	}
}

func (h *Host) ephemeralPort() int {
	h.nextPort++
	return h.nextPort
}

// input demultiplexes an arriving packet. Runs in kernel context.
func (h *Host) input(pkt *netsim.Packet) {
	hdr := pkt.Meta.(*ipHeader)
	if h.dead {
		// A crashed host answers nothing: the packet vanishes exactly as
		// on a powered-off machine, and the sender's own protocol (RTO,
		// SYN timeout) discovers the silence.
		if hdr.proto == protoTCP {
			hdr.tp.release()
		}
		return
	}
	switch hdr.proto {
	case protoUDP:
		if u, ok := h.udp[hdr.dstPort]; ok {
			u.deliver(hdr, pkt.Payload)
		}
	case protoTCP:
		tp := hdr.tp
		key := connKey{remote: hdr.src, remotePort: hdr.srcPort, localPort: hdr.dstPort}
		if c, ok := h.conns[key]; ok {
			c.segment(hdr.seg, tp.pl)
		} else if hdr.seg.syn && !hdr.seg.ack {
			if ln, ok := h.listeners[hdr.dstPort]; ok {
				ln.handleSYN(hdr)
			}
			// No listener: refuse by dropping; the dialer times out.
		}
		// The receiver copied (in-order) or cloned (out-of-order) what it
		// keeps; the transmission's own payload references end here.
		tp.release()
	}
}

// ---------------------------------------------------------------------
// TCP listener.

// Listener accepts inbound TCP connections on a port.
type Listener struct {
	host    *Host
	port    int
	backlog *vtime.Queue[*TCPConn]
	closed  bool
}

// Listen binds a TCP listener to port.
func (h *Host) Listen(port int) (*Listener, error) {
	if h.dead {
		return nil, ErrHostDown
	}
	if _, dup := h.listeners[port]; dup {
		return nil, ErrPortInUse
	}
	ln := &Listener{
		host: h, port: port,
		backlog: vtime.NewQueue[*TCPConn](fmt.Sprintf("accept:%d:%d", h.id, port)),
	}
	h.listeners[port] = ln
	return ln, nil
}

// Port returns the bound port.
func (ln *Listener) Port() int { return ln.port }

// handleSYN creates the server-side connection and replies SYN|ACK.
func (ln *Listener) handleSYN(hdr *ipHeader) {
	if ln.closed {
		return
	}
	h := ln.host
	// Reply on the wire the SYN arrived on: a multi-homed dialer that
	// picked a named network gets its return traffic on the same one.
	rt, ok := h.routeTo(hdr.src, hdr.nw)
	if !ok {
		return
	}
	c := newTCPConn(h, hdr.src, ln.port, hdr.srcPort, rt, hdr.nw)
	c.established = true
	h.conns[connKey{remote: hdr.src, remotePort: hdr.srcPort, localPort: ln.port}] = c
	c.sendSeg(tcpSeg{syn: true, ack: true, wnd: c.rcvWnd(), ts: h.stack.k.Now(), ets: hdr.seg.ts}, 0, 0)
	ln.backlog.Push(c)
}

// Accept blocks until an inbound connection is available.
func (ln *Listener) Accept(p *vtime.Proc) (*TCPConn, error) {
	if ln.closed {
		return nil, ErrClosed
	}
	return ln.backlog.Pop(p), nil
}

// AcceptTimeout is Accept bounded by d.
func (ln *Listener) AcceptTimeout(p *vtime.Proc, d time.Duration) (*TCPConn, bool) {
	return ln.backlog.PopTimeout(p, d)
}

// SetReadyHandler installs a callback fired (in kernel context) whenever
// a connection lands in the accept backlog; used by SysIO.
func (ln *Listener) SetReadyHandler(fn func()) { ln.backlog.OnPush = fn }

// Pending returns the number of connections waiting to be accepted.
func (ln *Listener) Pending() int { return ln.backlog.Len() }

// Close unbinds the listener.
func (ln *Listener) Close() {
	ln.closed = true
	delete(ln.host.listeners, ln.port)
}

// ---------------------------------------------------------------------
// UDP.

// UDPDatagram is one received datagram.
type UDPDatagram struct {
	From     topology.NodeID
	FromPort int
	Data     []byte
}

// UDPConn is a bound UDP socket.
type UDPConn struct {
	host   *Host
	port   int
	rx     *vtime.Queue[UDPDatagram]
	rxCap  int
	closed bool
	Drops  int64
}

// ListenUDP binds a UDP socket; port 0 picks an ephemeral port.
func (h *Host) ListenUDP(port int) (*UDPConn, error) {
	if h.dead {
		return nil, ErrHostDown
	}
	if port == 0 {
		port = h.ephemeralPort()
	}
	if _, dup := h.udp[port]; dup {
		return nil, ErrPortInUse
	}
	u := &UDPConn{
		host: h, port: port, rxCap: 256,
		rx: vtime.NewQueue[UDPDatagram](fmt.Sprintf("udp:%d:%d", h.id, port)),
	}
	h.udp[port] = u
	return u, nil
}

// Port returns the bound port.
func (u *UDPConn) Port() int { return u.port }

// MTU returns the path MTU toward dst minus the UDP/IP header, i.e. the
// largest datagram payload that can be sent.
func (u *UDPConn) MTU(dst topology.NodeID) (int, error) {
	rt, ok := u.host.routes[dst]
	if !ok {
		return 0, ErrNoRoute
	}
	return rt.mtu - udpHeader, nil
}

// SendTo transmits one datagram (unreliable, unordered under loss).
func (u *UDPConn) SendTo(dst topology.NodeID, dstPort int, data []byte) error {
	if u.closed {
		return ErrClosed
	}
	rt, ok := u.host.routes[dst]
	if !ok {
		return ErrNoRoute
	}
	if len(data)+udpHeader > rt.mtu {
		return fmt.Errorf("ipstack: datagram of %d bytes exceeds path MTU %d", len(data), rt.mtu)
	}
	rt.send(&netsim.Packet{
		Payload: data, Wire: len(data) + udpHeader,
		Meta: &ipHeader{proto: protoUDP, src: u.host.id, dst: dst,
			srcPort: u.port, dstPort: dstPort},
	})
	return nil
}

func (u *UDPConn) deliver(hdr *ipHeader, data []byte) {
	if u.closed {
		return
	}
	if u.rx.Len() >= u.rxCap {
		u.Drops++
		return
	}
	u.rx.Push(UDPDatagram{From: hdr.src, FromPort: hdr.srcPort, Data: data})
}

// Recv blocks until a datagram arrives.
func (u *UDPConn) Recv(p *vtime.Proc) UDPDatagram { return u.rx.Pop(p) }

// RecvTimeout is Recv bounded by d.
func (u *UDPConn) RecvTimeout(p *vtime.Proc, d time.Duration) (UDPDatagram, bool) {
	return u.rx.PopTimeout(p, d)
}

// SetReadyHandler installs a SysIO-style arrival callback.
func (u *UDPConn) SetReadyHandler(fn func()) { u.rx.OnPush = fn }

// Pending returns the number of queued datagrams.
func (u *UDPConn) Pending() int { return u.rx.Len() }

// Close unbinds the socket.
func (u *UDPConn) Close() {
	u.closed = true
	delete(u.host.udp, u.port)
}

// ---------------------------------------------------------------------
// TCP connection. See package comment for the feature set.

const (
	minRTO     = 200 * time.Millisecond
	maxRTO     = 10 * time.Second
	synTimeout = 3 * time.Second
)

// TCPConn is a reliable byte-stream connection.
type TCPConn struct {
	host       *Host
	remote     topology.NodeID
	localPort  int
	remotePort int
	rt         *route
	nw         string // named network the connection is pinned to ("" = default)
	mss        int

	established bool
	dialErr     error
	connCond    *vtime.Cond

	// Sender state.
	sndq       sendQueue // bytes [sndUna, sndEnd) not yet acked, in pooled blocks
	sndUna     int64
	sndNxt     int64
	sndEnd     int64 // total bytes written so far
	sndCap     int
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool  // NewReno fast recovery in progress
	recover    int64 // sndNxt when recovery was entered
	peerWnd    int
	// RTO scheduling uses pooled fire-and-forget events instead of a
	// cancellable Timer: re-arming on every ACK round is the hottest
	// timer path in the stack. rtoArmed + rtoDeadline identify the
	// current arm; a fired event that does not match is stale (its arm
	// was superseded) and ignores itself, which is exactly what the old
	// Timer.Stop tombstone achieved.
	rtoArmed    bool
	rtoDeadline vtime.Time
	rtoFn       func()
	rto         time.Duration
	srtt        time.Duration
	rttvar      time.Duration
	finQueued   bool
	finSeq      int64 // == sndEnd when finQueued
	writeCond   *vtime.Cond
	writableCB  func()
	wasFull     bool

	// Receiver state.
	rcvNxt int64
	// rcvBuf is a head-indexed FIFO: the backing array is recycled once
	// the reader drains it and compacted on growth, so a long-lived
	// flow whose reader never catches it exactly empty (a multicast
	// relay) stays O(window), not O(bytes streamed).
	rcvBuf   iovec.Fifo
	rcvCap   int
	ooo      map[int64]iovec.Vec // cloned (refcounted) out-of-order payloads
	oooBytes int
	peerFin  int64      // -1 until FIN received; then stream length
	lastTS   vtime.Time // timestamp of latest in-order segment, echoed in ACKs
	readCond *vtime.Cond
	readyCB  func()

	closed bool
	failed bool // torn down by peer death: reads surface the error promptly

	// Stats for tests and the bench harness.
	Retransmits int64
	SegsSent    int64
	SegsRecvd   int64
}

func newTCPConn(h *Host, remote topology.NodeID, localPort, remotePort int, rt *route, nw string) *TCPConn {
	name := fmt.Sprintf("tcp:%d:%d->%d:%d", h.id, localPort, remote, remotePort)
	c := &TCPConn{
		host: h, remote: remote, localPort: localPort, remotePort: remotePort,
		rt: rt, nw: nw, mss: rt.mtu - tcpHeader,
		sndCap: DefaultSndBuf, rcvCap: DefaultRcvBuf,
		ssthresh: 1 << 30, peerWnd: DefaultRcvBuf,
		rto: time.Second, peerFin: -1,
		ooo:       make(map[int64]iovec.Vec),
		connCond:  vtime.NewCond(name + ":conn"),
		writeCond: vtime.NewCond(name + ":write"),
		readCond:  vtime.NewCond(name + ":read"),
	}
	c.cwnd = float64(2 * c.mss)
	c.rtoFn = c.onRTOEvent
	return c
}

// Dial opens a TCP connection to (dst, port), blocking p through the
// handshake.
func (h *Host) Dial(p *vtime.Proc, dst topology.NodeID, port int) (*TCPConn, error) {
	return h.DialVia(p, dst, port, "")
}

// DialVia is Dial pinned to a named network: the handshake and every
// segment of the connection travel the named route when one is
// registered (multi-homed pairs), the default route otherwise.
func (h *Host) DialVia(p *vtime.Proc, dst topology.NodeID, port int, nw string) (*TCPConn, error) {
	if h.dead {
		return nil, ErrHostDown
	}
	rt, ok := h.routeTo(dst, nw)
	if !ok {
		return nil, ErrNoRoute
	}
	c := newTCPConn(h, dst, h.ephemeralPort(), port, rt, nw)
	key := connKey{remote: dst, remotePort: port, localPort: c.localPort}
	h.conns[key] = c
	deadline := p.Now().Add(synTimeout)
	for try := 0; try < 3 && !c.established; try++ {
		c.sendSeg(tcpSeg{syn: true, wnd: c.rcvWnd(), ts: p.Now()}, 0, 0)
		c.connCond.WaitTimeout(p, time.Second)
		if p.Now() >= deadline {
			break
		}
	}
	if !c.established {
		delete(h.conns, key)
		return nil, ErrRefused
	}
	return c, nil
}

// Remote returns the peer node.
func (c *TCPConn) Remote() topology.NodeID { return c.remote }

// LocalPort returns the local port number.
func (c *TCPConn) LocalPort() int { return c.localPort }

// MSS returns the maximum segment size on this connection's path.
func (c *TCPConn) MSS() int { return c.mss }

// SetBuffers overrides the send/receive buffer sizes; call before
// transferring data.
func (c *TCPConn) SetBuffers(snd, rcv int) {
	if snd > 0 {
		c.sndCap = snd
	}
	if rcv > 0 {
		c.rcvCap = rcv
	}
}

// SetReadyHandler installs a callback fired in kernel context whenever
// data (or EOF) becomes available to Read; used by SysIO.
func (c *TCPConn) SetReadyHandler(fn func()) { c.readyCB = fn }

// PokeReady re-fires the ready callback if data is already pending;
// poll-style layers use it to re-arm interest after registering.
func (c *TCPConn) PokeReady() {
	if c.readyCB != nil && c.Readable() {
		c.readyCB()
	}
}

// Readable reports whether Read would return without blocking. A
// failed connection is always readable: the pending result is the
// error, and callback layers must learn about it promptly.
func (c *TCPConn) Readable() bool {
	return c.failed || c.rcvLen() > 0 || (c.peerFin >= 0 && c.rcvNxt >= c.peerFin)
}

// rcvLen returns the number of unconsumed received bytes.
func (c *TCPConn) rcvLen() int { return c.rcvBuf.Len() }

func (c *TCPConn) rcvWnd() int {
	w := c.rcvCap - c.rcvLen() - c.oooBytes
	if w < 0 {
		w = 0
	}
	return w
}

// sendSeg emits one segment whose payload is the send-queue byte range
// [off, off+n) — taken as retained views of the pooled blocks, not
// copied. n == 0 sends a bare control segment (SYN/ACK/FIN). off is
// relative to sndUna (the queue head). The pooled packet is recycled
// by the receiving host after processing, or by the fabric on a drop.
func (c *TCPConn) sendSeg(sg tcpSeg, off, n int64) {
	c.SegsSent++
	c.host.stack.mSegsSent.Inc()
	if n > 0 && c.host.stack.tel.Tracing() {
		// Payload segments inherit the ambient request context, so the
		// lowest wire events still hang off the originating request root.
		c.host.stack.tel.Instant("ipstack", "tcp.seg", int(c.host.id)).
			I64("dst", int64(c.remote)).I64("bytes", n).End()
	}
	tp := c.host.stack.getTP()
	if n > 0 {
		c.sndq.view(int(off), int(n), &tp.pl)
	}
	tp.seg = sg
	tp.hdr = ipHeader{proto: protoTCP, src: c.host.id, dst: c.remote,
		srcPort: c.localPort, dstPort: c.remotePort, nw: c.nw, seg: &tp.seg, tp: tp}
	tp.pkt = netsim.Packet{Wire: int(n) + tcpHeader, Meta: &tp.hdr, Drop: tp.drop}
	c.rt.send(&tp.pkt)
}

// TryWrite queues as much of b as fits in the send buffer without
// blocking and returns the number of bytes accepted. Used by
// callback-driven layers (SysIO/VLink) that must never block the I/O
// manager.
func (c *TCPConn) TryWrite(b []byte) int {
	return c.TryWriteVec(iovec.Make(b), 0)
}

// TryWriteVec is TryWrite over a segment vector, starting at byte
// offset from: the vector's bytes are copied once into the pooled send
// queue (the socket's single pack point), exactly as a flattened
// TryWrite of the same bytes would be — same acceptance, same pump.
func (c *TCPConn) TryWriteVec(v iovec.Vec, from int) int {
	if c.closed || c.finQueued {
		return 0
	}
	free := c.sndCap - c.sndq.size()
	if free <= 0 {
		c.wasFull = true
		return 0
	}
	n := v.Len() - from
	if n > free {
		n = free
	}
	c.sndq.growVec(v, from, n)
	c.sndEnd += int64(n)
	if c.sndq.size() == c.sndCap {
		c.wasFull = true
	}
	c.pump()
	return n
}

// Writable reports whether TryWrite would accept at least one byte.
func (c *TCPConn) Writable() bool {
	return !c.closed && !c.finQueued && c.sndq.size() < c.sndCap
}

// SetWritableHandler installs a callback fired in kernel context when
// send-buffer space opens up after having been full.
func (c *TCPConn) SetWritableHandler(fn func()) { c.writableCB = fn }

// Write queues the whole of b on the stream, blocking p while the send
// buffer is full.
func (c *TCPConn) Write(p *vtime.Proc, b []byte) error {
	for len(b) > 0 {
		if c.closed || c.finQueued {
			return ErrClosed
		}
		free := c.sndCap - c.sndq.size()
		if free == 0 {
			c.writeCond.Wait(p)
			continue
		}
		n := len(b)
		if n > free {
			n = free
		}
		c.sndq.grow(b[:n])
		c.sndEnd += int64(n)
		b = b[n:]
		c.pump()
	}
	return nil
}

// Read fills buf with available stream bytes, blocking p until at least
// one byte (or EOF) is available.
func (c *TCPConn) Read(p *vtime.Proc, buf []byte) (int, error) {
	for {
		if c.rcvLen() > 0 {
			n := copy(buf, c.rcvBuf.Bytes())
			c.rcvBuf.Consume(n)
			// Window may have reopened; let the peer know if it was shut.
			if c.rcvWnd() >= c.mss && c.rcvWnd()-n < c.mss {
				c.sendAck()
			}
			return n, nil
		}
		if c.peerFin >= 0 && c.rcvNxt >= c.peerFin {
			return 0, io.EOF
		}
		if c.closed {
			return 0, ErrClosed
		}
		c.readCond.Wait(p)
	}
}

// ReadFull reads exactly len(buf) bytes unless EOF intervenes.
func (c *TCPConn) ReadFull(p *vtime.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close sends FIN after any queued data. Reading remains possible until
// the peer's FIN.
func (c *TCPConn) Close() {
	if c.closed || c.finQueued {
		return
	}
	c.finQueued = true
	c.finSeq = c.sndEnd
	c.sndEnd++ // FIN occupies one sequence number
	c.pump()
}

// Fail tears the connection down because the peer (or the host itself)
// crashed: the abort is immediate, and callback-driven layers are woken
// so a pending sysio read or queued write surfaces the error instead of
// stalling until a timeout.
func (c *TCPConn) Fail() {
	if c.closed {
		return
	}
	c.failed = true
	c.Abort()
	if c.readyCB != nil {
		c.readyCB()
	}
	if c.writableCB != nil {
		c.writableCB()
	}
}

// Failed reports whether the connection was torn down by a crash
// (rather than an orderly Close/Abort).
func (c *TCPConn) Failed() bool { return c.failed }

// Abort tears the connection down immediately (no FIN exchange).
func (c *TCPConn) Abort() {
	c.closed = true
	c.rtoArmed = false
	c.sndq.reset()
	c.releaseOOO()
	delete(c.host.conns, connKey{remote: c.remote, remotePort: c.remotePort, localPort: c.localPort})
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
}

// flightLimit returns how many bytes may be outstanding.
func (c *TCPConn) flightLimit() int64 {
	w := int64(c.cwnd)
	if pw := int64(c.peerWnd); pw < w {
		w = pw
	}
	if w < int64(c.mss) {
		// Always allow one segment (zero-window probe simplification:
		// the window reopens via the reader's explicit ACK).
		if c.peerWnd == 0 {
			return 0
		}
		w = int64(c.mss)
	}
	return w
}

// pump transmits as much as window and data allow. Runs in kernel or
// proc context.
func (c *TCPConn) pump() {
	if c.closed {
		return
	}
	for {
		limit := c.sndUna + c.flightLimit()
		if c.sndNxt >= limit {
			break
		}
		if c.finQueued && c.sndNxt == c.finSeq {
			c.sendSeg(tcpSeg{fin: true, ack: true, seq: c.sndNxt,
				ackNo: c.rcvNxt, wnd: c.rcvWnd(), ts: c.host.stack.k.Now()}, 0, 0)
			c.sndNxt++
			break
		}
		avail := c.sndEnd - c.sndNxt
		if c.finQueued {
			avail-- // FIN's sequence slot is not data
		}
		if avail <= 0 {
			break
		}
		n := limit - c.sndNxt
		if n > avail {
			n = avail
		}
		if n > int64(c.mss) {
			n = int64(c.mss)
		}
		// Zero-copy transmit: the segment rides retained views of the
		// send-queue blocks instead of a per-segment make+copy.
		c.sendSeg(tcpSeg{ack: true, seq: c.sndNxt, ackNo: c.rcvNxt,
			wnd: c.rcvWnd(), ts: c.host.stack.k.Now()}, c.sndNxt-c.sndUna, n)
		c.sndNxt += n
	}
	c.armRTO()
}

func (c *TCPConn) armRTO() {
	if c.sndUna == c.sndNxt { // nothing outstanding
		c.rtoArmed = false
		return
	}
	if c.rtoArmed {
		return // already armed
	}
	c.rtoArmed = true
	c.rtoDeadline = c.host.stack.k.Now().Add(c.rto)
	c.host.stack.k.Schedule(c.rto, c.rtoFn)
}

// onRTOEvent filters stale RTO firings: only the event matching the
// current arm's deadline acts, every superseded one is a no-op.
func (c *TCPConn) onRTOEvent() {
	if !c.rtoArmed || c.host.stack.k.Now() != c.rtoDeadline {
		return
	}
	c.rtoArmed = false
	c.onRTO()
}

func (c *TCPConn) onRTO() {
	if c.closed || c.sndUna == c.sndNxt {
		return
	}
	// Multiplicative decrease and retransmit of the first unacked segment.
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = flight / 2
	if min := float64(2 * c.mss); c.ssthresh < min {
		c.ssthresh = min
	}
	c.cwnd = float64(c.mss)
	c.inRecovery = false
	c.dupAcks = 0
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	// Go-back-N: rewind and resend from the first unacked byte in slow
	// start. The receiver's reassembly buffer makes the cumulative ACKs
	// jump straight over whatever did arrive.
	c.sndNxt = c.sndUna
	c.Retransmits++
	c.noteRetransmit("rto")
	c.pump() // re-arms the (backed-off) RTO
}

// noteRetransmit feeds the telemetry hub: a counter bump always, plus a
// trace instant on the sender's lane when tracing is on.
func (c *TCPConn) noteRetransmit(why string) {
	s := c.host.stack
	s.mRetransmit.Inc()
	if s.tel.Tracing() {
		s.tel.Instant("ipstack", "tcp.retransmit", int(c.host.id)).
			Str("why", why).
			I64("seq", c.sndUna).
			I64("dst", int64(c.remote)).End()
	}
}

// retransmitFirst resends the segment starting at sndUna.
func (c *TCPConn) retransmitFirst() {
	c.Retransmits++
	c.noteRetransmit("fast")
	if c.finQueued && c.sndUna == c.finSeq {
		c.sendSeg(tcpSeg{fin: true, ack: true, seq: c.sndUna,
			ackNo: c.rcvNxt, wnd: c.rcvWnd(), ts: c.host.stack.k.Now()}, 0, 0)
		return
	}
	n := c.sndNxt - c.sndUna
	if c.finQueued && c.sndUna+n > c.finSeq {
		n = c.finSeq - c.sndUna
	}
	if n > int64(c.mss) {
		n = int64(c.mss)
	}
	if n <= 0 {
		return
	}
	c.sendSeg(tcpSeg{ack: true, seq: c.sndUna, ackNo: c.rcvNxt,
		wnd: c.rcvWnd(), ts: c.host.stack.k.Now()}, 0, n)
}

func (c *TCPConn) sendAck() {
	c.sendSeg(tcpSeg{ack: true, ackNo: c.rcvNxt, wnd: c.rcvWnd(),
		ts: c.host.stack.k.Now(), ets: c.lastTS}, 0, 0)
}

// segment processes one arriving segment. Runs in kernel context. The
// payload vector is borrowed for the duration of the call (the caller
// recycles the transmission afterwards): in-order bytes are copied into
// the receive buffer, out-of-order payloads are cloned (which retains
// the sender's pooled blocks instead of copying).
func (c *TCPConn) segment(seg *tcpSeg, payload iovec.Vec) {
	if c.closed {
		return
	}
	c.SegsRecvd++

	// Handshake.
	if seg.syn && seg.ack && !c.established {
		c.established = true
		c.rttSample(seg.ets)
		c.connCond.Broadcast()
		c.sendAck()
		return
	}
	if seg.syn && !seg.ack {
		// Duplicate SYN: our SYN|ACK was lost; resend it.
		c.sendSeg(tcpSeg{syn: true, ack: true, wnd: c.rcvWnd(),
			ts: c.host.stack.k.Now(), ets: seg.ts}, 0, 0)
		return
	}
	plen := payload.Len()

	// ACK processing (sender side).
	if seg.ack {
		c.peerWnd = seg.wnd
		switch {
		case seg.ackNo > c.sndUna:
			acked := seg.ackNo - c.sndUna
			dataAcked := acked
			if c.finQueued && seg.ackNo > c.finSeq {
				dataAcked = c.finSeq - c.sndUna
			}
			if dataAcked > 0 {
				c.sndq.drop(int(dataAcked))
			}
			c.sndUna = seg.ackNo
			if c.sndNxt < c.sndUna {
				c.sndNxt = c.sndUna
			}
			c.dupAcks = 0
			if c.inRecovery {
				if seg.ackNo < c.recover {
					// NewReno partial ack: the next hole is known lost;
					// retransmit it immediately instead of waiting for
					// three more dupacks or an RTO.
					c.retransmitFirst()
				} else {
					c.inRecovery = false
					c.cwnd = c.ssthresh
				}
			}
			c.rttSample(seg.ets)
			// Congestion window growth (RFC 5681: at most one SMSS per ACK
			// in slow start, so cumulative jumps after reassembly do not
			// overshoot).
			if c.cwnd < c.ssthresh {
				inc := float64(acked)
				if m := float64(c.mss); inc > m {
					inc = m
				}
				c.cwnd += inc // slow start
			} else {
				c.cwnd += float64(c.mss) * float64(acked) / c.cwnd // CA
			}
			// Fresh RTO for the remaining flight.
			c.rtoArmed = false
			c.writeCond.Broadcast()
			if c.wasFull && c.Writable() {
				c.wasFull = false
				if c.writableCB != nil {
					c.writableCB()
				}
			}
			c.pump()
		case seg.ackNo == c.sndUna && c.sndNxt > c.sndUna && plen == 0 && !seg.fin:
			c.dupAcks++
			switch {
			case c.dupAcks == 3 && !c.inRecovery:
				// Fast retransmit, enter NewReno fast recovery.
				flight := float64(c.sndNxt - c.sndUna)
				c.ssthresh = flight / 2
				if min := float64(2 * c.mss); c.ssthresh < min {
					c.ssthresh = min
				}
				c.cwnd = c.ssthresh + float64(3*c.mss)
				c.inRecovery = true
				c.recover = c.sndNxt
				c.retransmitFirst()
			case c.inRecovery:
				// Window inflation: each dupack signals a departed
				// segment, letting new data keep the pipe full.
				c.cwnd += float64(c.mss)
				c.pump()
			}
		}
	}

	// Data / FIN processing (receiver side). Segments may overlap
	// arbitrarily (retransmissions are cut at mss boundaries that need
	// not match the original transmission), so both the in-order path
	// and the out-of-order drain trim duplicates by stream offset.
	advanced := false
	if plen > 0 {
		end := seg.seq + int64(plen)
		switch {
		case end <= c.rcvNxt:
			// Complete duplicate: ack only.
		case seg.seq <= c.rcvNxt:
			skip := int(c.rcvNxt - seg.seq)
			payload.CopyToFrom(c.rcvBuf.Grow(plen-skip), skip)
			c.rcvNxt = end
			c.lastTS = seg.ts
			c.drainOOO()
			advanced = true
		default: // a hole precedes this segment
			if _, dup := c.ooo[seg.seq]; !dup && c.oooBytes+plen <= c.rcvCap {
				// Clone retains the sender's pooled blocks — the bytes are
				// parked by reference until the hole fills.
				c.ooo[seg.seq] = payload.Clone()
				c.oooBytes += plen
			}
		}
		// Ack everything (including duplicates — that's what generates
		// the dupacks driving fast retransmit on the other side).
		c.sendAck()
	}
	if seg.fin {
		if seg.seq == c.rcvNxt && c.peerFin < 0 {
			c.peerFin = seg.seq
			c.rcvNxt = seg.seq + 1
			advanced = true
		}
		c.sendAck()
	}
	if advanced {
		c.readCond.Broadcast()
		if c.readyCB != nil {
			c.readyCB()
		}
	}
}

// drainOOO folds every buffered out-of-order segment that is now
// (partially) in order into rcvBuf, trimming overlaps. Keys are scanned
// in sorted order so behaviour is deterministic.
func (c *TCPConn) drainOOO() {
	for {
		progressed := false
		keys := make([]int64, 0, len(c.ooo))
		for seq := range c.ooo {
			keys = append(keys, seq)
		}
		slices.Sort(keys)
		for _, seq := range keys {
			pl := c.ooo[seq]
			n := pl.Len()
			end := seq + int64(n)
			switch {
			case end <= c.rcvNxt: // fully duplicate now
				delete(c.ooo, seq)
				c.oooBytes -= n
				pl.Release()
			case seq <= c.rcvNxt: // extends the contiguous stream
				delete(c.ooo, seq)
				c.oooBytes -= n
				skip := int(c.rcvNxt - seq)
				pl.CopyToFrom(c.rcvBuf.Grow(n-skip), skip)
				c.rcvNxt = end
				pl.Release()
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// releaseOOO drops every parked out-of-order payload (abort path).
func (c *TCPConn) releaseOOO() {
	for seq, pl := range c.ooo {
		pl.Release()
		delete(c.ooo, seq)
	}
	c.oooBytes = 0
}

func (c *TCPConn) rttSample(ets vtime.Time) {
	if ets == 0 {
		return
	}
	sample := c.host.stack.k.Now().Sub(ets)
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := c.srtt - sample
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	c.host.stack.srtt[[2]topology.NodeID{c.host.id, c.remote}] = c.srtt
	c.host.stack.hRTT.Observe(sample)
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}
