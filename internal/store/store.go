// Package store is the per-node storage engine behind the datagrid: a
// narrow Engine interface with two backends — the in-memory map the
// datagrid has used since PR 1 (extracted verbatim, byte-identical
// virtual-time behavior) and a durable pack engine modeled on auklet's
// objectserver (needles appended into large bundle files, an in-memory
// KV index rebuilt from a needle scan on open, fsync batching on a
// virtual-time budget).
//
// The division of labor with datagrid: datagrid owns placement,
// replication, transfer and the catalog of checksums; an Engine owns
// one node's bytes. Every payload handed to Put is a buffer the engine
// may retain (the datagrid always hands freshly received transfer
// buffers), and every view handed out by Get/Read stays valid until
// that key is rewritten, deleted or quarantined — the zero-copy
// contract that lets transfers and the repair loop forward stored
// views verbatim instead of copying.
//
// Virtual-time cost model (see internal/model "Local disk"): the
// memory backend charges nothing — exactly the pre-store datagrid, so
// every pinned table stays bit-identical. The pack backend charges
// streaming write cost plus budget-batched fsyncs on Put, cold-load
// seek+read cost on Read, and always-from-disk read+hash cost on
// Verify (the auditor path never trusts the in-memory cache — that is
// the point of scrubbing).
package store

import (
	"crypto/sha256"
	"errors"
	"sort"
	"sync/atomic"

	"padico/internal/model"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Exported errors.
var (
	// ErrCorrupt reports a Verify mismatch between stored bytes and the
	// needle's recorded sha256.
	ErrCorrupt = errors.New("store: needle corrupt")
	// ErrNoKey reports an operation on an absent key.
	ErrNoKey = errors.New("store: no such key")
)

// Engine is one node's local object store. Engines live on a single
// vtime.Kernel: the strictly sequential scheduler is the
// synchronization (stats counters are atomic only so registry
// snapshots race-free after Run).
type Engine interface {
	// Put stores (or replaces) key. data may be retained by the engine
	// until the key is rewritten, deleted or quarantined; sum is the
	// catalogued sha256 the auditor will scrub against.
	Put(p *vtime.Proc, key string, data []byte, sum [32]byte) error
	// Get returns a zero-copy view of the stored bytes without charging
	// virtual I/O time — the catalog/verification peek. The view is
	// valid until the key is rewritten, deleted or quarantined.
	Get(key string) ([]byte, bool)
	// Read is Get on the transfer-source path: the same view, with the
	// engine's virtual read cost charged (a pack cold load pays
	// seek+streaming; warm views and the memory backend are free).
	Read(p *vtime.Proc, key string) ([]byte, bool)
	// Sum returns the sha256 recorded for key at Put time.
	Sum(key string) ([32]byte, bool)
	// Size returns the stored payload size of key.
	Size(key string) (int, bool)
	// Delete removes key (a tombstone needle in the pack backend, a map
	// removal in memory); it reports whether the key existed.
	Delete(p *vtime.Proc, key string) bool
	// Verify re-reads key's bytes from their resting place (disk for
	// the pack backend, never the serving cache) and checks them
	// against the recorded sha256, charging read+hash virtual time.
	// Returns ErrCorrupt on mismatch, ErrNoKey when absent.
	Verify(p *vtime.Proc, key string) error
	// Quarantine takes a corrupt needle out of service: the key
	// disappears from Get/Keys (and, for the pack backend, a tombstone
	// keeps a reopen from resurrecting the bad needle). Reports whether
	// the key existed.
	Quarantine(p *vtime.Proc, key string) bool
	// Corrupt is the chaos hook: flip one stored payload byte (on disk
	// for the pack backend) without touching the recorded sha256, so
	// the next Verify fails. Reports whether the key existed.
	Corrupt(key string) bool
	// Keys returns the live (non-quarantined, non-deleted) keys,
	// sorted.
	Keys() []string
	// Len returns the live key count.
	Len() int
	// Bytes returns the live payload byte total.
	Bytes() int64
	// Close flushes and releases engine resources.
	Close() error
}

// Factory builds one node's engine; the datagrid calls it lazily on
// the first byte stored at a node. nil Config.Engine selects
// MemoryFactory.
type Factory func(k *vtime.Kernel, node topology.NodeID) (Engine, error)

// Stats counts engine activity; bound into the telemetry registry
// under "store." (several engines under one prefix sum, so the
// snapshot aggregates the whole grid's store traffic).
type Stats struct {
	Puts, Reads, Deletes  int64
	Verifies, Quarantines int64
	// Pack-only counters (zero on the memory backend).
	NeedlesWritten, Tombstones int64
	BundleBytes, Fsyncs        int64
	BundleRolls, TornTails     int64
	ColdLoads                  int64
}

// bindStats registers an engine's counters under the shared "store."
// prefix; several engines bound to one kernel's registry aggregate
// into a grid-wide view. Nil-safe when telemetry is not attached.
func bindStats(k *vtime.Kernel, s *Stats) {
	telemetry.For(k).Registry().BindStruct("store", s)
}

// MemoryFactory builds the in-memory backend — the pre-store datagrid
// map behind the Engine interface, byte-identical in virtual time and
// allocation behavior.
func MemoryFactory(k *vtime.Kernel, node topology.NodeID) (Engine, error) {
	return NewMemory(k, node), nil
}

type memObj struct {
	data []byte
	sum  [32]byte
}

// Memory is the in-memory engine: a map of retained payload buffers.
type Memory struct {
	node  topology.NodeID
	objs  map[string]memObj
	stats Stats
}

// NewMemory builds an empty memory engine for one node and binds its
// stats into the kernel's telemetry registry (if attached).
func NewMemory(k *vtime.Kernel, node topology.NodeID) *Memory {
	m := &Memory{node: node, objs: make(map[string]memObj)}
	bindStats(k, &m.stats)
	return m
}

// Put stores the buffer by reference — no copy, no virtual-time
// charge, exactly the pre-store map assignment.
func (m *Memory) Put(_ *vtime.Proc, key string, data []byte, sum [32]byte) error {
	m.objs[key] = memObj{data: data, sum: sum}
	atomic.AddInt64(&m.stats.Puts, 1)
	return nil
}

// Get returns the stored view.
func (m *Memory) Get(key string) ([]byte, bool) {
	o, ok := m.objs[key]
	return o.data, ok
}

// Read is Get: RAM-resident bytes charge nothing.
func (m *Memory) Read(_ *vtime.Proc, key string) ([]byte, bool) {
	o, ok := m.objs[key]
	if ok {
		atomic.AddInt64(&m.stats.Reads, 1)
	}
	return o.data, ok
}

// Sum returns the recorded checksum.
func (m *Memory) Sum(key string) ([32]byte, bool) {
	o, ok := m.objs[key]
	return o.sum, ok
}

// Size returns the stored payload length.
func (m *Memory) Size(key string) (int, bool) {
	o, ok := m.objs[key]
	return len(o.data), ok
}

// Delete removes the key from the map.
func (m *Memory) Delete(_ *vtime.Proc, key string) bool {
	if _, ok := m.objs[key]; !ok {
		return false
	}
	delete(m.objs, key)
	atomic.AddInt64(&m.stats.Deletes, 1)
	return true
}

// Verify re-hashes the resident bytes against the recorded sum,
// charging the hash pass (same per-byte rate the datagrid charges for
// its own checksum passes).
func (m *Memory) Verify(p *vtime.Proc, key string) error {
	o, ok := m.objs[key]
	if !ok {
		return ErrNoKey
	}
	atomic.AddInt64(&m.stats.Verifies, 1)
	p.Consume(model.MemcpyPerByte.Cost(len(o.data)))
	if sha256.Sum256(o.data) != o.sum {
		return ErrCorrupt
	}
	return nil
}

// Quarantine drops the corrupt entry.
func (m *Memory) Quarantine(_ *vtime.Proc, key string) bool {
	if _, ok := m.objs[key]; !ok {
		return false
	}
	delete(m.objs, key)
	atomic.AddInt64(&m.stats.Quarantines, 1)
	return true
}

// Corrupt flips a payload byte in place (chaos hook).
func (m *Memory) Corrupt(key string) bool {
	o, ok := m.objs[key]
	if !ok || len(o.data) == 0 {
		return false
	}
	o.data[len(o.data)/2] ^= 0xFF
	return true
}

// Keys returns the live keys, sorted.
func (m *Memory) Keys() []string {
	out := make([]string, 0, len(m.objs))
	for k := range m.objs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the live key count.
func (m *Memory) Len() int { return len(m.objs) }

// Bytes returns the live payload total.
func (m *Memory) Bytes() int64 {
	var n int64
	for _, o := range m.objs {
		n += int64(len(o.data))
	}
	return n
}

// Close is a no-op for the memory backend.
func (m *Memory) Close() error { return nil }

// Stats returns a consistent copy of the engine's counters.
func (m *Memory) Stats() Stats { return loadStats(&m.stats) }

func loadStats(s *Stats) Stats {
	return Stats{
		Puts:           atomic.LoadInt64(&s.Puts),
		Reads:          atomic.LoadInt64(&s.Reads),
		Deletes:        atomic.LoadInt64(&s.Deletes),
		Verifies:       atomic.LoadInt64(&s.Verifies),
		Quarantines:    atomic.LoadInt64(&s.Quarantines),
		NeedlesWritten: atomic.LoadInt64(&s.NeedlesWritten),
		Tombstones:     atomic.LoadInt64(&s.Tombstones),
		BundleBytes:    atomic.LoadInt64(&s.BundleBytes),
		Fsyncs:         atomic.LoadInt64(&s.Fsyncs),
		BundleRolls:    atomic.LoadInt64(&s.BundleRolls),
		TornTails:      atomic.LoadInt64(&s.TornTails),
		ColdLoads:      atomic.LoadInt64(&s.ColdLoads),
	}
}
