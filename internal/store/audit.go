package store

import (
	"fmt"
	"time"

	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// The auditor is the scrub half of anti-entropy (auklet's
// device_audit): a background daemon that walks a node's needles at a
// bounded byte rate, re-reads each one from its resting place and
// checks the recorded sha256. A mismatch is quarantined on the spot —
// the key vanishes from the engine so the grid stops serving bad bytes
// — and announced loudly: a telemetry instant, a flight-recorder note,
// an automatic flight dump, and the OnCorrupt callback that lets the
// datagrid's repair loop re-replicate the lost copy.
//
// The rate bound matters more than the interval: scrubbing competes
// with serving for the same virtual platter, so a pass consumes disk
// time as if it streamed at RateBytes/s regardless of how fast
// Verify's own charges add up.

// AuditConfig tunes one node's auditor. Zero values select defaults.
type AuditConfig struct {
	// Interval is the virtual-time gap between scrub passes
	// (default 5 s).
	Interval vtime.Duration
	// RateBytes caps the scrub rate in bytes of needle payload per
	// second of virtual time (default 50 MB/s — slightly under the
	// platter's sequential read rate, leaving headroom for serving).
	RateBytes float64
	// OnCorrupt runs after a corrupt needle was quarantined. The
	// datagrid hooks its repair loop here.
	OnCorrupt func(p *vtime.Proc, key string)
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	if c.RateBytes == 0 {
		c.RateBytes = 50e6
	}
	return c
}

// Auditor scrubs one engine.
type Auditor struct {
	k    *vtime.Kernel
	node topology.NodeID
	eng  Engine
	cfg  AuditConfig
	hub  *telemetry.Hub
	hLat *telemetry.Histogram

	// Passes and Quarantined count completed scrub passes and needles
	// taken out of service, for tests and stats readers.
	Passes      int
	Quarantined int
}

// NewAuditor builds an auditor for one node's engine. Call Start to
// run it as a background daemon, or Pass for a synchronous scrub.
func NewAuditor(k *vtime.Kernel, node topology.NodeID, eng Engine, cfg AuditConfig) *Auditor {
	h := telemetry.For(k)
	return &Auditor{
		k:    k,
		node: node,
		eng:  eng,
		cfg:  cfg.withDefaults(),
		hub:  h,
		hLat: h.Registry().Histogram("store.audit_latency"),
	}
}

// Start spawns the scrub daemon: sleep Interval, run a pass, repeat.
func (a *Auditor) Start() {
	a.k.GoDaemon("store-audit", func(p *vtime.Proc) {
		for {
			p.Sleep(a.cfg.Interval)
			a.Pass(p)
		}
	})
}

// Pass scrubs every live needle once, returning how many were
// quarantined. The pass is paced to RateBytes: if the engine's own
// Verify charges come in under the budgeted disk time, the difference
// is slept so the scrub never looks faster than the platter allows.
func (a *Auditor) Pass(p *vtime.Proc) int {
	t0 := p.Now()
	span := a.hub.Begin("store", "audit-pass", int(a.node))
	// Each pass is a request root: verify work and any repair traffic it
	// triggers attach here rather than to the auditor daemon's history.
	defer span.Exit(span.Enter())
	quarantined := 0
	var scanned int64
	for _, key := range a.eng.Keys() {
		size, _ := a.eng.Size(key)
		scanned += int64(size)
		err := a.eng.Verify(p, key)
		if err == ErrCorrupt {
			a.eng.Quarantine(p, key)
			quarantined++
			a.Quarantined++
			a.hub.Instant("store", "quarantine", int(a.node))
			a.hub.Note("store", "corrupt needle quarantined: "+key, int(a.node), int64(size), 0)
			a.hub.DumpFlight(fmt.Sprintf("store: corrupt needle quarantined on node %d", a.node))
			if a.cfg.OnCorrupt != nil {
				a.cfg.OnCorrupt(p, key)
			}
		}
		// Pace to the scrub budget: total elapsed disk time for the
		// bytes scanned so far must be at least scanned/RateBytes.
		budget := vtime.Duration(float64(scanned) / a.cfg.RateBytes * float64(time.Second))
		if elapsed := p.Now().Sub(t0); elapsed < budget {
			p.Sleep(budget - elapsed)
		}
	}
	a.Passes++
	span.End()
	a.hLat.Observe(p.Now().Sub(t0))
	return quarantined
}
