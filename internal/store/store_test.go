package store_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"padico/internal/store"
	"padico/internal/vtime"
)

// payload builds a deterministic pseudo-random buffer.
func payload(seed int64, size int) []byte {
	b := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// run executes fn as the root proc of a fresh kernel.
func run(t *testing.T, fn func(k *vtime.Kernel, p *vtime.Proc)) {
	t.Helper()
	k := vtime.NewKernel()
	if err := k.Run(func(p *vtime.Proc) { fn(k, p) }); err != nil {
		t.Fatal(err)
	}
}

// engines returns both backends for interface-level tests.
func engines(t *testing.T, k *vtime.Kernel) map[string]store.Engine {
	t.Helper()
	pk, err := store.OpenPack(k, 1, t.TempDir(), store.PackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]store.Engine{
		"memory": store.NewMemory(k, 1),
		"pack":   pk,
	}
}

func put(t *testing.T, p *vtime.Proc, e store.Engine, key string, data []byte) [32]byte {
	t.Helper()
	sum := sha256.Sum256(data)
	if err := e.Put(p, key, data, sum); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
	return sum
}

func TestEngineRoundtrip(t *testing.T) {
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		for name, e := range engines(t, k) {
			a, b := payload(1, 2000), payload(2, 300)
			sumA := put(t, p, e, "alpha", a)
			put(t, p, e, "beta", b)

			if got, ok := e.Get("alpha"); !ok || !bytes.Equal(got, a) {
				t.Errorf("%s: Get(alpha) mismatch (ok=%v)", name, ok)
			}
			if got, ok := e.Read(p, "beta"); !ok || !bytes.Equal(got, b) {
				t.Errorf("%s: Read(beta) mismatch (ok=%v)", name, ok)
			}
			if sum, ok := e.Sum("alpha"); !ok || sum != sumA {
				t.Errorf("%s: Sum(alpha) mismatch", name)
			}
			if n, ok := e.Size("alpha"); !ok || n != len(a) {
				t.Errorf("%s: Size(alpha)=%d want %d", name, n, len(a))
			}
			if e.Len() != 2 || e.Bytes() != int64(len(a)+len(b)) {
				t.Errorf("%s: Len=%d Bytes=%d", name, e.Len(), e.Bytes())
			}
			keys := e.Keys()
			if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "beta" {
				t.Errorf("%s: Keys=%v", name, keys)
			}
			if _, ok := e.Get("gamma"); ok {
				t.Errorf("%s: Get(gamma) found a ghost", name)
			}

			// Overwrite replaces bytes and checksum.
			a2 := payload(3, 500)
			put(t, p, e, "alpha", a2)
			if got, _ := e.Get("alpha"); !bytes.Equal(got, a2) {
				t.Errorf("%s: overwrite not visible", name)
			}
			if err := e.Verify(p, "alpha"); err != nil {
				t.Errorf("%s: Verify after overwrite: %v", name, err)
			}

			// Delete removes; double delete reports false.
			if !e.Delete(p, "beta") {
				t.Errorf("%s: Delete(beta) = false", name)
			}
			if e.Delete(p, "beta") {
				t.Errorf("%s: double Delete(beta) = true", name)
			}
			if _, ok := e.Get("beta"); ok || e.Len() != 1 {
				t.Errorf("%s: beta survived delete", name)
			}
			if err := e.Verify(p, "beta"); !errors.Is(err, store.ErrNoKey) {
				t.Errorf("%s: Verify(deleted) = %v", name, err)
			}
			if err := e.Close(); err != nil {
				t.Errorf("%s: Close: %v", name, err)
			}
		}
	})
}

func TestEngineCorruptVerifyQuarantine(t *testing.T) {
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		for name, e := range engines(t, k) {
			put(t, p, e, "obj", payload(7, 4096))
			if err := e.Verify(p, "obj"); err != nil {
				t.Fatalf("%s: clean Verify: %v", name, err)
			}
			if !e.Corrupt("obj") {
				t.Fatalf("%s: Corrupt = false", name)
			}
			if err := e.Verify(p, "obj"); !errors.Is(err, store.ErrCorrupt) {
				t.Fatalf("%s: Verify(corrupt) = %v, want ErrCorrupt", name, err)
			}
			if !e.Quarantine(p, "obj") {
				t.Fatalf("%s: Quarantine = false", name)
			}
			if _, ok := e.Get("obj"); ok {
				t.Fatalf("%s: quarantined key still served", name)
			}
			e.Close()
		}
	})
}

func TestPackReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	var want []byte
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 3, dir, store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		put(t, p, e, "keep", payload(11, 3000))
		put(t, p, e, "gone", payload(12, 100))
		put(t, p, e, "keep", payload(13, 1234)) // overwrite wins on replay
		e.Delete(p, "gone")                     // tombstone wins on replay
		want, _ = e.Get("keep")
		want = append([]byte(nil), want...)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	})
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 3, dir, store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if got, ok := e.Get("keep"); !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopen: keep lost or stale (ok=%v len=%d)", ok, len(got))
		}
		if _, ok := e.Get("gone"); ok {
			t.Fatal("reopen: tombstoned key resurrected")
		}
		if e.Len() != 1 {
			t.Fatalf("reopen: Len=%d want 1", e.Len())
		}
		if err := e.Verify(p, "keep"); err != nil {
			t.Fatalf("reopen: Verify(keep): %v", err)
		}
		// Appends after reopen land after the replayed tail.
		put(t, p, e, "new", payload(14, 64))
	})
}

func TestPackReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 4, dir, store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		put(t, p, e, "first", payload(21, 2048))
		put(t, p, e, "second", payload(22, 2048))
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	})

	// Simulate a crash mid-append: cut the last needle's payload short.
	bundle := filepath.Join(dir, "bundle-000000.pack")
	fi, err := os.Stat(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(bundle, fi.Size()-512); err != nil {
		t.Fatal(err)
	}

	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 4, dir, store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if _, ok := e.Get("second"); ok {
			t.Fatal("torn needle served after reopen")
		}
		if _, ok := e.Get("first"); !ok {
			t.Fatal("intact needle lost with the torn tail")
		}
		if e.Stats().TornTails != 1 {
			t.Fatalf("TornTails=%d want 1", e.Stats().TornTails)
		}
		if err := e.Verify(p, "first"); err != nil {
			t.Fatalf("Verify(first): %v", err)
		}
		// The truncated tail must be clean append space: write, reopen,
		// check both records.
		put(t, p, e, "third", payload(23, 777))
	})
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 4, dir, store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if e.Len() != 2 {
			t.Fatalf("after torn-tail append+reopen: Len=%d want 2", e.Len())
		}
		for _, key := range []string{"first", "third"} {
			if err := e.Verify(p, key); err != nil {
				t.Fatalf("Verify(%s): %v", key, err)
			}
		}
	})
}

func TestPackBundleRolling(t *testing.T) {
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		dir := t.TempDir()
		e, err := store.OpenPack(k, 5, dir, store.PackConfig{BundleMaxBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			put(t, p, e, string(rune('a'+i)), payload(int64(i), 1500))
		}
		if e.Stats().BundleRolls == 0 {
			t.Fatal("no bundle rolls at 4 KiB cap with 12 KiB written")
		}
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) < 2 {
			t.Fatalf("expected multiple bundle files, got %d", len(names))
		}
		// Every object readable across bundles, then across a reopen.
		for i := 0; i < 8; i++ {
			key := string(rune('a' + i))
			if got, ok := e.Read(p, key); !ok || !bytes.Equal(got, payload(int64(i), 1500)) {
				t.Fatalf("Read(%s) mismatch after roll (ok=%v)", key, ok)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		e2, err := store.OpenPack(k, 5, dir, store.PackConfig{BundleMaxBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		if e2.Len() != 8 {
			t.Fatalf("reopen across bundles: Len=%d want 8", e2.Len())
		}
	})
}

func TestPackFsyncBatching(t *testing.T) {
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 6, t.TempDir(),
			store.PackConfig{SyncBudget: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		// Many puts inside one budget window: at most the leading sync.
		for i := 0; i < 20; i++ {
			put(t, p, e, "burst", payload(int64(i), 256))
		}
		burst := e.Stats().Fsyncs
		if burst > 1 {
			t.Fatalf("burst of 20 puts paid %d fsyncs, want ≤ 1", burst)
		}
		// Spaced puts: one sync per budget window.
		for i := 0; i < 5; i++ {
			p.Sleep(60 * time.Millisecond)
			put(t, p, e, "spaced", payload(int64(i), 256))
		}
		if got := e.Stats().Fsyncs - burst; got != 5 {
			t.Fatalf("5 spaced puts paid %d fsyncs, want 5", got)
		}
	})
}

func TestPackChargesVirtualDiskTime(t *testing.T) {
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		mem := store.NewMemory(k, 7)
		pk, err := store.OpenPack(k, 7, t.TempDir(), store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer pk.Close()
		t0 := p.Now()
		put(t, p, mem, "x", payload(31, 1<<20))
		if p.Now() != t0 {
			t.Fatal("memory Put consumed virtual time")
		}
		put(t, p, pk, "x", payload(31, 1<<20))
		if p.Now() == t0 {
			t.Fatal("pack Put consumed no virtual time")
		}
	})
}

func TestAuditorPassQuarantinesAndPaces(t *testing.T) {
	run(t, func(k *vtime.Kernel, p *vtime.Proc) {
		e, err := store.OpenPack(k, 8, t.TempDir(), store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		const objs, size = 4, 1 << 16
		for i := 0; i < objs; i++ {
			put(t, p, e, string(rune('a'+i)), payload(int64(40+i), size))
		}
		e.Corrupt("c")

		var repaired []string
		a := store.NewAuditor(k, 8, e, store.AuditConfig{
			RateBytes: 10e6,
			OnCorrupt: func(p *vtime.Proc, key string) { repaired = append(repaired, key) },
		})
		t0 := p.Now()
		if n := a.Pass(p); n != 1 {
			t.Fatalf("Pass quarantined %d, want 1", n)
		}
		if len(repaired) != 1 || repaired[0] != "c" {
			t.Fatalf("OnCorrupt got %v", repaired)
		}
		if _, ok := e.Get("c"); ok {
			t.Fatal("corrupt needle still served after audit")
		}
		// Rate pacing: scanning objs×size bytes at 10 MB/s takes at
		// least bytes/rate of virtual time.
		minD := vtime.Duration(float64(objs*size) / 10e6 * float64(time.Second))
		if got := p.Now().Sub(t0); got < minD {
			t.Fatalf("audit pass took %v, rate budget demands ≥ %v", got, minD)
		}
		// A clean second pass quarantines nothing.
		if n := a.Pass(p); n != 0 {
			t.Fatalf("clean Pass quarantined %d", n)
		}
		if a.Passes != 2 {
			t.Fatalf("Passes=%d want 2", a.Passes)
		}
	})
}

func TestAuditorBackgroundDaemon(t *testing.T) {
	k := vtime.NewKernel()
	var e store.Engine
	if err := k.Run(func(p *vtime.Proc) {
		var err error
		e, err = store.OpenPack(k, 9, t.TempDir(), store.PackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		put(t, p, e, "obj", payload(51, 8192))
		e.Corrupt("obj")
		a := store.NewAuditor(k, 9, e, store.AuditConfig{Interval: 100 * time.Millisecond})
		a.Start()
		p.Sleep(350 * time.Millisecond) // ≥ 3 scrub intervals
		if _, ok := e.Get("obj"); ok {
			t.Fatal("background auditor never quarantined the corrupt needle")
		}
		if a.Passes < 2 {
			t.Fatalf("Passes=%d want ≥ 2", a.Passes)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Close()
}
