package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"padico/internal/iovec"
	"padico/internal/model"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// The pack engine is the durable backend, modeled on auklet's
// objectserver pack engine: every object is a *needle* appended to a
// large append-only *bundle* file, and the only metadata structure is
// an in-memory key → needle index rebuilt by scanning needle headers
// on open. There is no per-object file, no B-tree, no write-ahead log:
// the bundle IS the log, and a tombstone needle is how deletion and
// quarantine are made durable. Bundles roll at BundleMaxBytes so no
// single file grows unboundedly and a torn tail only ever costs the
// final file's last record.
//
// Needle layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic  "PNdl"
//	4       1     flags  (bit0 = tombstone)
//	5       2     keyLen
//	7       8     payload size
//	15      32    sha256(payload)
//	47      4     crc32-IEEE over bytes [0,47)
//	51      k     key bytes
//	51+k    n     payload bytes
//
// The trailing header CRC is what makes the open-time scan
// crash-safe: a torn final needle (header cut short, CRC mismatch, or
// body extending past EOF) ends the scan, the tail is truncated away,
// and the engine keeps appending from the last valid record.
const (
	needleMagic   = 0x506c644e // "PNdl" read little-endian
	needleHdrLen  = 51
	flagTombstone = 0x01
)

// PackConfig tunes the pack engine. Zero values select defaults.
type PackConfig struct {
	// BundleMaxBytes rolls the active bundle once it grows past this
	// size (default 64 MiB).
	BundleMaxBytes int64
	// SyncBudget batches fsyncs: a Put pays FsyncCost only when the
	// last sync is at least this much virtual time in the past
	// (default 100 ms). Auklet's objectserver makes the same trade —
	// group commit bounded by a time budget, not per-write durability.
	SyncBudget vtime.Duration
}

func (c PackConfig) withDefaults() PackConfig {
	if c.BundleMaxBytes == 0 {
		c.BundleMaxBytes = 64 << 20
	}
	if c.SyncBudget == 0 {
		c.SyncBudget = 100 * time.Millisecond
	}
	return c
}

// PackFactory returns a Factory that gives each node its own bundle
// directory root/node-<id>.
func PackFactory(root string, cfg PackConfig) Factory {
	return func(k *vtime.Kernel, node topology.NodeID) (Engine, error) {
		dir := filepath.Join(root, fmt.Sprintf("node-%d", node))
		return OpenPack(k, node, dir, cfg)
	}
}

// needleRef locates one live needle: which bundle, where the payload
// starts, how long it is, and the catalogued checksum.
type needleRef struct {
	bundle int
	off    int64 // payload offset within the bundle file
	size   int
	sum    [32]byte
}

// cacheEntry is one warm payload view: either the caller's Put buffer
// retained by reference, or a pooled buffer filled by a cold load (the
// engine holds one reference, released when the entry is evicted).
type cacheEntry struct {
	b   []byte
	buf *iovec.Buf
}

// Pack is the durable engine for one node.
type Pack struct {
	node topology.NodeID
	dir  string
	cfg  PackConfig

	index map[string]needleRef
	cache map[string]cacheEntry

	bundles  []*os.File // open bundle files, index = bundle number
	active   int        // bundle currently appended to
	w        *bufio.Writer
	wOff     int64 // next append offset in the active bundle
	dirty    bool  // unflushed buffered writes
	lastSync vtime.Time
	unsynced int64 // bytes appended since the last durable point

	hub   *telemetry.Hub
	stats Stats
}

// OpenPack opens (or creates) a node's bundle directory, scans every
// bundle's needles to rebuild the index, truncates a torn tail if the
// last record was cut mid-write, and arms the last bundle for append.
func OpenPack(k *vtime.Kernel, node topology.NodeID, dir string, cfg PackConfig) (*Pack, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	e := &Pack{
		node:  node,
		dir:   dir,
		cfg:   cfg.withDefaults(),
		index: make(map[string]needleRef),
		cache: make(map[string]cacheEntry),
		hub:   telemetry.For(k),
	}
	bindStats(k, &e.stats)
	// Fsync backpressure: bytes written but not yet durable. GaugeFunc
	// registrations sum, so a multi-node grid reports the fleet-wide
	// backlog under one name.
	e.hub.Registry().GaugeFunc("store.fsync_backlog_bytes", func() int64 {
		return atomic.LoadInt64(&e.unsynced)
	})

	names, err := e.bundleNames()
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		if err := e.rollBundle(); err != nil {
			return nil, err
		}
		return e, nil
	}
	for i, name := range names {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.bundles = append(e.bundles, f)
		end, err := e.scanBundle(i, f)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.active, e.wOff = i, end
	}
	e.w = bufio.NewWriter(&offsetWriter{f: e.bundles[e.active], off: &e.wOff})
	return e, nil
}

// bundleNames lists bundle files sorted by number.
func (e *Pack) bundleNames() ([]string, error) {
	ents, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "bundle-") && strings.HasSuffix(ent.Name(), ".pack") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// offsetWriter appends to f at *off, advancing it — bufio needs a
// plain Writer, and the engine needs to know where every needle
// landed.
type offsetWriter struct {
	f   *os.File
	off *int64
}

func (ow *offsetWriter) Write(p []byte) (int, error) {
	n, err := ow.f.WriteAt(p, *ow.off)
	*ow.off += int64(n)
	return n, err
}

// scanBundle replays one bundle's needles into the index, returning
// the end offset of the last valid record. An invalid header or a body
// running past EOF is a torn tail: everything from that offset on is
// truncated away and the scan stops.
func (e *Pack) scanBundle(bundle int, f *os.File) (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	fileLen := fi.Size()
	var off int64
	var hdr [needleHdrLen]byte
	for off < fileLen {
		valid := false
		var keyLen, size int
		var flags byte
		var sum [32]byte
		if off+needleHdrLen <= fileLen {
			if _, err := f.ReadAt(hdr[:], off); err != nil {
				return 0, err
			}
			if binary.LittleEndian.Uint32(hdr[0:4]) == needleMagic &&
				crc32.ChecksumIEEE(hdr[:47]) == binary.LittleEndian.Uint32(hdr[47:51]) {
				flags = hdr[4]
				keyLen = int(binary.LittleEndian.Uint16(hdr[5:7]))
				size = int(binary.LittleEndian.Uint64(hdr[7:15]))
				copy(sum[:], hdr[15:47])
				if off+needleHdrLen+int64(keyLen)+int64(size) <= fileLen {
					valid = true
				}
			}
		}
		if !valid {
			// Torn tail: the record was cut mid-write. Drop it and
			// everything after — the index keeps whatever the last
			// complete needle said.
			if err := f.Truncate(off); err != nil {
				return 0, err
			}
			atomic.AddInt64(&e.stats.TornTails, 1)
			e.hub.Note("store", "torn tail truncated", int(e.node), off, fileLen-off)
			return off, nil
		}
		keyb := make([]byte, keyLen)
		if _, err := f.ReadAt(keyb, off+needleHdrLen); err != nil {
			return 0, err
		}
		key := string(keyb)
		if flags&flagTombstone != 0 {
			delete(e.index, key)
		} else {
			e.index[key] = needleRef{
				bundle: bundle,
				off:    off + needleHdrLen + int64(keyLen),
				size:   size,
				sum:    sum,
			}
		}
		off += needleHdrLen + int64(keyLen) + int64(size)
	}
	return off, nil
}

// rollBundle closes out the active bundle and opens the next one.
func (e *Pack) rollBundle() error {
	if e.w != nil {
		if err := e.w.Flush(); err != nil {
			return err
		}
		e.dirty = false
	}
	n := len(e.bundles)
	f, err := os.OpenFile(
		filepath.Join(e.dir, fmt.Sprintf("bundle-%06d.pack", n)),
		os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	e.bundles = append(e.bundles, f)
	e.active, e.wOff = n, 0
	e.w = bufio.NewWriter(&offsetWriter{f: f, off: &e.wOff})
	if n > 0 {
		atomic.AddInt64(&e.stats.BundleRolls, 1)
	}
	return nil
}

// encodeHeader fills hdr for one needle.
func encodeHeader(hdr *[needleHdrLen]byte, flags byte, key string, size int, sum [32]byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], needleMagic)
	hdr[4] = flags
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(len(key)))
	binary.LittleEndian.PutUint64(hdr[7:15], uint64(size))
	copy(hdr[15:47], sum[:])
	binary.LittleEndian.PutUint32(hdr[47:51], crc32.ChecksumIEEE(hdr[:47]))
}

// appendNeedle writes one needle through the buffered writer as a
// gather write — header, key and payload are handed to the writer as
// views in place (Vec.WriteTo), never flattened into a staging copy.
// Returns the payload offset.
func (e *Pack) appendNeedle(p *vtime.Proc, flags byte, key string, data []byte, sum [32]byte) (int64, error) {
	if len(key) > 0xFFFF {
		return 0, fmt.Errorf("store: key too long (%d bytes)", len(key))
	}
	if e.wOff+int64(e.w.Buffered()) >= e.cfg.BundleMaxBytes {
		if err := e.rollBundle(); err != nil {
			return 0, err
		}
	}
	start := e.wOff + int64(e.w.Buffered())
	var hdr [needleHdrLen]byte
	encodeHeader(&hdr, flags, key, len(data), sum)
	v := iovec.Make(hdr[:], []byte(key), data)
	if _, err := v.WriteTo(e.w); err != nil {
		return 0, err
	}
	e.dirty = true
	needleLen := needleHdrLen + len(key) + len(data)
	atomic.AddInt64(&e.unsynced, int64(needleLen))
	atomic.AddInt64(&e.stats.NeedlesWritten, 1)
	atomic.AddInt64(&e.stats.BundleBytes, int64(needleLen))
	p.Consume(model.DiskNeedleCost + model.DiskWritePerByte.Cost(needleLen))
	e.maybeSync(p)
	return start + needleHdrLen + int64(len(key)), nil
}

// maybeSync is the fsync batcher: when the last durable point is more
// than SyncBudget of virtual time ago, flush buffered writes and pay
// one FsyncCost for everything since — group commit on a time budget.
func (e *Pack) maybeSync(p *vtime.Proc) {
	if p.Now().Sub(e.lastSync) < e.cfg.SyncBudget {
		return
	}
	e.flush()
	e.lastSync = p.Now()
	atomic.StoreInt64(&e.unsynced, 0)
	atomic.AddInt64(&e.stats.Fsyncs, 1)
	p.Consume(model.FsyncCost)
}

// flush pushes buffered appends into the file (the simulation's
// durable point; the real fsync syscall is skipped — the virtual
// FsyncCost models it, and tests simulate crashes by truncating files,
// not by killing the process).
func (e *Pack) flush() {
	if e.w != nil && e.dirty {
		if err := e.w.Flush(); err != nil {
			panic(fmt.Sprintf("store: bundle flush: %v", err))
		}
		e.dirty = false
	}
}

// evict drops a warm cache entry, releasing the engine's reference on
// pooled cold-load buffers.
func (e *Pack) evict(key string) {
	if ce, ok := e.cache[key]; ok {
		if ce.buf != nil {
			ce.buf.Release()
		}
		delete(e.cache, key)
	}
}

// Put appends a needle and indexes it. The data slice is retained as
// the warm serving view — the same zero-copy contract as the memory
// backend.
func (e *Pack) Put(p *vtime.Proc, key string, data []byte, sum [32]byte) error {
	off, err := e.appendNeedle(p, 0, key, data, sum)
	if err != nil {
		return err
	}
	e.index[key] = needleRef{bundle: e.active, off: off, size: len(data), sum: sum}
	e.evict(key)
	e.cache[key] = cacheEntry{b: data}
	atomic.AddInt64(&e.stats.Puts, 1)
	return nil
}

// load returns the payload view for key, reading it from the bundle
// into a pooled buffer when the cache is cold. Charges nothing itself;
// the caller charges (Read does, Get does not).
func (e *Pack) load(key string) ([]byte, bool, bool) {
	ref, ok := e.index[key]
	if !ok {
		return nil, false, false
	}
	if ce, ok := e.cache[key]; ok {
		return ce.b, true, false
	}
	if ref.bundle == e.active {
		e.flush()
	}
	b := iovec.Get(ref.size)
	if _, err := e.bundles[ref.bundle].ReadAt(b.Bytes(), ref.off); err != nil {
		panic(fmt.Sprintf("store: needle read node=%d key=%q: %v", e.node, key, err))
	}
	e.cache[key] = cacheEntry{b: b.Bytes(), buf: b}
	atomic.AddInt64(&e.stats.ColdLoads, 1)
	return b.Bytes(), true, true
}

// Get returns the payload view without charging virtual time.
func (e *Pack) Get(key string) ([]byte, bool) {
	b, ok, _ := e.load(key)
	return b, ok
}

// Read returns the payload view, charging seek + streaming read cost
// when the needle had to come off the platter.
func (e *Pack) Read(p *vtime.Proc, key string) ([]byte, bool) {
	b, ok, cold := e.load(key)
	if !ok {
		return nil, false
	}
	if cold {
		p.Consume(model.DiskSeekCost + model.DiskReadPerByte.Cost(len(b)))
	}
	atomic.AddInt64(&e.stats.Reads, 1)
	return b, true
}

// Sum returns the checksum recorded in the needle header.
func (e *Pack) Sum(key string) ([32]byte, bool) {
	ref, ok := e.index[key]
	return ref.sum, ok
}

// Size returns the stored payload length.
func (e *Pack) Size(key string) (int, bool) {
	ref, ok := e.index[key]
	return ref.size, ok
}

// tombstone makes a removal durable: append a tombstone needle (so a
// reopen's scan forgets the key too), drop the index entry and any
// warm view.
func (e *Pack) tombstone(p *vtime.Proc, key string) bool {
	if _, ok := e.index[key]; !ok {
		return false
	}
	if _, err := e.appendNeedle(p, flagTombstone, key, nil, [32]byte{}); err != nil {
		panic(fmt.Sprintf("store: tombstone append node=%d key=%q: %v", e.node, key, err))
	}
	delete(e.index, key)
	e.evict(key)
	atomic.AddInt64(&e.stats.Tombstones, 1)
	return true
}

// Delete appends a tombstone for key.
func (e *Pack) Delete(p *vtime.Proc, key string) bool {
	if !e.tombstone(p, key) {
		return false
	}
	atomic.AddInt64(&e.stats.Deletes, 1)
	return true
}

// Quarantine takes a corrupt needle out of service — same durable
// tombstone as Delete, counted separately. The needle's bytes stay in
// the bundle (a real engine would move them to a quarantine directory
// for forensics) but nothing references them anymore.
func (e *Pack) Quarantine(p *vtime.Proc, key string) bool {
	if !e.tombstone(p, key) {
		return false
	}
	atomic.AddInt64(&e.stats.Quarantines, 1)
	return true
}

// Verify is the scrub path: it always re-reads the needle's bytes from
// the bundle file — never the warm cache, which would defeat the point
// of auditing — and checks them against the header checksum, charging
// sequential read plus hash cost.
func (e *Pack) Verify(p *vtime.Proc, key string) error {
	ref, ok := e.index[key]
	if !ok {
		return ErrNoKey
	}
	if ref.bundle == e.active {
		e.flush()
	}
	b := iovec.Get(ref.size)
	defer b.Release()
	if _, err := e.bundles[ref.bundle].ReadAt(b.Bytes(), ref.off); err != nil {
		panic(fmt.Sprintf("store: verify read node=%d key=%q: %v", e.node, key, err))
	}
	atomic.AddInt64(&e.stats.Verifies, 1)
	p.Consume(model.DiskReadPerByte.Cost(ref.size) + model.MemcpyPerByte.Cost(ref.size))
	if sha256.Sum256(b.Bytes()) != ref.sum {
		return ErrCorrupt
	}
	return nil
}

// Corrupt flips one payload byte on disk (chaos hook for audit/repair
// tests and benches) and drops the warm view so reads observe the
// damage.
func (e *Pack) Corrupt(key string) bool {
	ref, ok := e.index[key]
	if !ok || ref.size == 0 {
		return false
	}
	if ref.bundle == e.active {
		e.flush()
	}
	f := e.bundles[ref.bundle]
	pos := ref.off + int64(ref.size/2)
	var one [1]byte
	if _, err := f.ReadAt(one[:], pos); err != nil {
		panic(fmt.Sprintf("store: corrupt read node=%d key=%q: %v", e.node, key, err))
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one[:], pos); err != nil {
		panic(fmt.Sprintf("store: corrupt write node=%d key=%q: %v", e.node, key, err))
	}
	e.evict(key)
	return true
}

// Keys returns the live keys, sorted.
func (e *Pack) Keys() []string {
	out := make([]string, 0, len(e.index))
	for k := range e.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the live key count.
func (e *Pack) Len() int { return len(e.index) }

// Bytes returns the live payload total.
func (e *Pack) Bytes() int64 {
	var n int64
	for _, ref := range e.index {
		n += int64(ref.size)
	}
	return n
}

// Close flushes buffered appends, releases warm views and closes every
// bundle file.
func (e *Pack) Close() error {
	e.flush()
	for key := range e.cache {
		e.evict(key)
	}
	var first error
	for _, f := range e.bundles {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.bundles = nil
	e.w = nil
	return first
}

// Stats returns a consistent copy of the engine's counters.
func (e *Pack) Stats() Stats { return loadStats(&e.stats) }
