// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed: Figure 3 (bandwidth vs
// message size over Myrinet-2000 per middleware), Table 1 (one-way
// latency and peak bandwidth), the MadIO overhead claim, the VTHD WAN
// parallel-streams experiment, and the VRP lossy-link experiment, plus
// the ablations DESIGN.md calls out. Used by bench_test.go and
// cmd/padico-bench.
package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"padico/internal/datagrid"
	"padico/internal/faults"
	"padico/internal/grid"
	"padico/internal/group"
	"padico/internal/madapi"
	"padico/internal/mpi"
	"padico/internal/netsim"
	"padico/internal/orb"
	"padico/internal/personality"
	"padico/internal/rmi"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/store"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vrp"
	"padico/internal/vtime"
	"padico/internal/weather"
)

// Fig3Sizes are the message sizes of the figure's x-axis.
var Fig3Sizes = []int{32, 256, 1 << 10, 8 << 10, 32 << 10, 256 << 10, 1 << 20}

// Point is one (size, bandwidth) sample.
type Point struct {
	Size int
	MBps float64
}

// Series is one curve of Figure 3.
type Series struct {
	Name   string
	Points []Point
}

// Row is one column of Table 1.
type Row struct {
	Name     string
	OnewayUS float64 // one-way latency, µs
	PeakMBps float64 // bandwidth at 1 MB
}

// ---------------------------------------------------------------------
// Middleware stacks on a 2-node Myrinet cluster.

// stack abstracts "send size bytes, get a small ack" for the bandwidth
// and latency protocol of the paper's tests.
type stack interface {
	// xfer performs one size-byte exchange acknowledged by the peer and
	// returns nothing; timing happens outside.
	xfer(p *vtime.Proc, size int)
}

// Runner builds a middleware stack inside a fresh simulation and
// measures exchange timings on it.
type Runner struct {
	g     *grid.Grid
	build func(p *vtime.Proc) stack
}

// measure builds the stack inside the simulation and times reps
// exchanges of size bytes; it returns the mean one-way-ish exchange
// time and the implied bandwidth.
// Measure is exported for bench_test ablations.
func (r *Runner) measure(size, reps int) (time.Duration, float64) {
	var per time.Duration
	err := r.g.K.Run(func(p *vtime.Proc) {
		s := r.build(p)
		s.xfer(p, size) // warm-up (connection setup, allocations)
		start := p.Now()
		for i := 0; i < reps; i++ {
			s.xfer(p, size)
		}
		per = p.Now().Sub(start) / time.Duration(reps)
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return per, float64(size) / per.Seconds() / 1e6
}

// --- MPI (MPICH/Madeleine in PadicoTM) ---

type mpiStack struct {
	c0, c1 *mpi.Comm
	ack    []byte
}

func (s *mpiStack) xfer(p *vtime.Proc, size int) {
	buf := make([]byte, size)
	done := vtime.NewWaitGroup("x")
	done.Add(1)
	p.Kernel().Go("peer", func(q *vtime.Proc) {
		rb := make([]byte, size)
		s.c1.Recv(q, 0, 7, rb)
		s.c1.Send(q, 0, 8, s.ack)
		done.Done()
	})
	s.c0.Send(p, 1, 7, buf)
	s.c0.Recv(p, 1, 8, make([]byte, 1))
	done.Wait(p)
}

// MPIPadico builds MPI over the virtual-Madeleine personality on a
// Circuit (the in-PadicoTM configuration).
func MPIPadico() *Runner {
	g := grid.Cluster(2)
	return &Runner{g: g, build: func(p *vtime.Proc) stack {
		circs, err := g.NewCircuits(p, "mpi", []topology.NodeID{0, 1})
		if err != nil {
			panic(err)
		}
		c0 := mpi.New(g.K, personality.NewVMad(g.K, circs[0]))
		c1 := mpi.New(g.K, personality.NewVMad(g.K, circs[1]))
		return &mpiStack{c0: c0, c1: c1, ack: []byte{1}}
	}}
}

// --- ORB profiles over the madio VLink driver ---

type orbStack struct {
	ref *orb.ObjectRef
}

func (s *orbStack) xfer(p *vtime.Proc, size int) {
	args := orb.NewEncoder()
	args.PutBytes(make([]byte, size))
	if _, err := s.ref.Invoke(p, "sink", args); err != nil {
		panic(err)
	}
}

// ORBOnMyrinet builds a CORBA client/server pair with the given profile
// over the Myrinet madio driver.
func ORBOnMyrinet(profile orb.Profile) *Runner {
	g := grid.Cluster(2)
	return &Runner{g: g, build: func(p *vtime.Proc) stack {
		server := orb.New(g.K, g.RT[1].VLink, profile, "madio", 5000)
		server.RegisterServant("bench", orb.Servant{
			"sink": func(q *vtime.Proc, args *orb.Decoder, reply *orb.Encoder) error {
				args.Bytes()
				reply.PutU32(1)
				return nil
			},
		})
		if err := server.Activate(); err != nil {
			panic(err)
		}
		client := orb.New(g.K, g.RT[0].VLink, profile, "madio", 5001)
		ref, err := client.Resolve(server.IOR("bench"))
		if err != nil {
			panic(err)
		}
		return &orbStack{ref: ref}
	}}
}

// --- Java sockets ---

type javaStack struct {
	a, b *rmi.JavaSocket
}

func (s *javaStack) xfer(p *vtime.Proc, size int) {
	done := vtime.NewWaitGroup("x")
	done.Add(1)
	p.Kernel().Go("peer", func(q *vtime.Proc) {
		buf := make([]byte, size)
		s.b.ReadFull(q, buf)
		s.b.Write(q, []byte{1})
		done.Done()
	})
	s.a.Write(p, make([]byte, size))
	s.a.ReadFull(p, make([]byte, 1))
	done.Wait(p)
}

// JavaOnMyrinet builds a Java-socket pair over the madio driver.
func JavaOnMyrinet() *Runner {
	g := grid.Cluster(2)
	return &Runner{g: g, build: func(p *vtime.Proc) stack {
		ln, err := g.RT[1].VLink.Listen("madio", 5000)
		if err != nil {
			panic(err)
		}
		acc := vtime.NewQueue[*vlink.VLink]("acc")
		ln.SetAcceptHandler(func(v *vlink.VLink) { acc.Push(v) })
		va, err := g.RT[0].VLink.ConnectWait(p, "madio", vlink.Addr{Node: 1, Port: 5000})
		if err != nil {
			panic(err)
		}
		vb := acc.Pop(p)
		return &javaStack{a: rmi.NewJavaSocket(g.K, va), b: rmi.NewJavaSocket(g.K, vb)}
	}}
}

// --- Raw abstract interfaces (Table 1's Circuit and VLink rows) ---

type vlinkStack struct{ a, b *vlink.VLink }

func (s *vlinkStack) xfer(p *vtime.Proc, size int) {
	done := vtime.NewWaitGroup("x")
	done.Add(1)
	p.Kernel().Go("peer", func(q *vtime.Proc) {
		buf := make([]byte, size)
		s.b.ReadFull(q, buf)
		s.b.Write(q, []byte{1})
		done.Done()
	})
	s.a.Write(p, make([]byte, size))
	s.a.ReadFull(p, make([]byte, 1))
	done.Wait(p)
}

// VLinkOnMyrinet measures the bare VLink abstract interface.
func VLinkOnMyrinet() *Runner {
	g := grid.Cluster(2)
	return &Runner{g: g, build: func(p *vtime.Proc) stack {
		ln, err := g.RT[1].VLink.Listen("madio", 5000)
		if err != nil {
			panic(err)
		}
		acc := vtime.NewQueue[*vlink.VLink]("acc")
		ln.SetAcceptHandler(func(v *vlink.VLink) { acc.Push(v) })
		va, err := g.RT[0].VLink.ConnectWait(p, "madio", vlink.Addr{Node: 1, Port: 5000})
		if err != nil {
			panic(err)
		}
		return &vlinkStack{a: va, b: acc.Pop(p)}
	}}
}

type circuitStack struct {
	c0, c1 madapi.Channel
}

func (s *circuitStack) xfer(p *vtime.Proc, size int) {
	done := vtime.NewWaitGroup("x")
	done.Add(1)
	p.Kernel().Go("peer", func(q *vtime.Proc) {
		in := s.c1.BeginUnpacking(q)
		in.Unpack(size, madapi.ReceiveCheaper)
		in.EndUnpacking()
		out := s.c1.BeginPacking(0)
		out.Pack([]byte{1}, madapi.SendSafer)
		out.EndPacking()
		done.Done()
	})
	out := s.c0.BeginPacking(1)
	out.Pack(make([]byte, size), madapi.SendLater)
	out.EndPacking()
	in := s.c0.BeginUnpacking(p)
	in.Unpack(1, madapi.ReceiveCheaper)
	in.EndUnpacking()
	done.Wait(p)
}

// CircuitOnMyrinet measures the bare Circuit abstract interface.
func CircuitOnMyrinet() *Runner {
	g := grid.Cluster(2)
	return &Runner{g: g, build: func(p *vtime.Proc) stack {
		circs, err := g.NewCircuits(p, "bench", []topology.NodeID{0, 1})
		if err != nil {
			panic(err)
		}
		return &circuitStack{c0: circs[0], c1: circs[1]}
	}}
}

// ---------------------------------------------------------------------
// Figure 3.

// Fig3 produces every curve of Figure 3 (plus the Ethernet TCP
// reference). Each point runs on a fresh simulation for isolation.
func Fig3() []Series {
	mk := func(name string, build func() *Runner) Series {
		s := Series{Name: name}
		for _, size := range Fig3Sizes {
			reps := 8
			if size <= 1024 {
				reps = 64
			}
			_, mbps := build().measure(size, reps)
			s.Points = append(s.Points, Point{Size: size, MBps: mbps})
		}
		return s
	}
	out := []Series{
		mk("omniORB-3.0.2/Myrinet-2000", func() *Runner { return ORBOnMyrinet(orb.OmniORB3) }),
		mk("omniORB-4.0.0/Myrinet-2000", func() *Runner { return ORBOnMyrinet(orb.OmniORB4) }),
		mk("Mico-2.3.7/Myrinet-2000", func() *Runner { return ORBOnMyrinet(orb.Mico) }),
		mk("ORBacus-4.0.5/Myrinet-2000", func() *Runner { return ORBOnMyrinet(orb.ORBacus) }),
		mk("MPICH/Myrinet-2000", MPIPadico),
		mk("Java socket/Myrinet-2000", JavaOnMyrinet),
	}
	out = append(out, ethernetReference())
	return out
}

// ethernetReference is the "TCP/Ethernet-100 (reference)" curve.
func ethernetReference() Series {
	s := Series{Name: "TCP/Ethernet-100 (reference)"}
	for _, size := range Fig3Sizes {
		s.Points = append(s.Points, Point{Size: size, MBps: tcpEthernet(size)})
	}
	return s
}

func tcpEthernet(size int) float64 {
	g := grid.Cluster(2)
	var mbps float64
	err := g.K.Run(func(p *vtime.Proc) {
		ln, _ := g.Stack.Host(1).Listen(80)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		reps := 4
		if size <= 1024 {
			reps = 32
		}
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			c, _ := ln.Accept(q)
			buf := make([]byte, 64<<10)
			for i := 0; i < reps; i++ {
				total := 0
				for total < size {
					n, err := c.Read(q, buf)
					total += n
					if err != nil {
						return
					}
				}
				c.Write(q, []byte{1})
			}
		})
		c, err := g.Stack.Host(0).Dial(p, 1, 80)
		if err != nil {
			panic(err)
		}
		payload := make([]byte, size)
		c.Write(p, payload) // warm-up is folded in: first exchange grows cwnd
		c.ReadFull(p, make([]byte, 1))
		start := p.Now()
		for i := 0; i < reps-1; i++ {
			c.Write(p, payload)
			c.ReadFull(p, make([]byte, 1))
		}
		per := p.Now().Sub(start) / time.Duration(reps-1)
		mbps = float64(size) / per.Seconds() / 1e6
		done.Wait(p)
	})
	if err != nil {
		panic(err)
	}
	return mbps
}

// ---------------------------------------------------------------------
// Table 1.

// Table1 reproduces the latency/bandwidth table.
func Table1() []Row {
	mk := func(name string, r *Runner) Row {
		lat, _ := r.measure(1, 256)
		r2 := rebuild(name)
		_, bw := r2.measure(1<<20, 16)
		return Row{Name: name, OnewayUS: float64(lat.Nanoseconds()) / 2 / 1e3, PeakMBps: bw}
	}
	return []Row{
		mk("Circuit", CircuitOnMyrinet()),
		mk("VLink", VLinkOnMyrinet()),
		mk("MPICH", MPIPadico()),
		mk("omniORB 3", ORBOnMyrinet(orb.OmniORB3)),
		mk("omniORB 4", ORBOnMyrinet(orb.OmniORB4)),
		mk("Java sockets", JavaOnMyrinet()),
		mk("Mico", ORBOnMyrinet(orb.Mico)),
		mk("ORBacus", ORBOnMyrinet(orb.ORBacus)),
	}
}

// rebuild returns a fresh runner for the named Table 1 row (each
// measurement runs on a fresh kernel for isolation).
func rebuild(name string) *Runner {
	switch name {
	case "Circuit":
		return CircuitOnMyrinet()
	case "VLink":
		return VLinkOnMyrinet()
	case "MPICH":
		return MPIPadico()
	case "omniORB 3":
		return ORBOnMyrinet(orb.OmniORB3)
	case "omniORB 4":
		return ORBOnMyrinet(orb.OmniORB4)
	case "Java sockets":
		return JavaOnMyrinet()
	case "Mico":
		return ORBOnMyrinet(orb.Mico)
	case "ORBacus":
		return ORBOnMyrinet(orb.ORBacus)
	}
	panic("bench: unknown row " + name)
}

// ---------------------------------------------------------------------
// §5 ¶3: overheads.

// OverheadResult reports the two overhead claims.
type OverheadResult struct {
	MadIOCombinedUS float64 // MadIO-over-Madeleine one-way overhead, µs
	MadIOSeparateUS float64 // same without header combining (ablation)
	MPIPadicoUS     float64 // MPI one-way inside PadicoTM
	MPIDirectUS     float64 // MPI one-way directly over a Circuit channel
}

// Overhead measures the §4.1/§5 overhead claims.
func Overhead() OverheadResult {
	var res OverheadResult
	res.MadIOCombinedUS = madioLatency(true) - madeleineBaselineUS
	res.MadIOSeparateUS = madioLatency(false) - madeleineBaselineUS
	lat, _ := MPIPadico().measure(1, 256)
	res.MPIPadicoUS = float64(lat.Nanoseconds()) / 2 / 1e3
	lat2, _ := mpiDirect().measure(1, 256)
	res.MPIDirectUS = float64(lat2.Nanoseconds()) / 2 / 1e3
	return res
}

// madeleineBaselineUS is the measured Madeleine/GM one-way latency in
// µs (see madeleine tests: GM 5.7 incl framing + 2×1.25 Madeleine).
const madeleineBaselineUS = 8.28

func madioLatency(combining bool) float64 {
	g := grid.Cluster(2)
	if !combining {
		// Rebuild MadIO without header combining: measured through a raw
		// VLink on the madio driver is polluted by VLink costs, so probe
		// the MadIO layer directly through the runtime's instance.
		return rawMadIOLatency(g, false)
	}
	return rawMadIOLatency(g, true)
}

// rawMadIOLatency measures ping-pong directly at the MadIO layer.
func rawMadIOLatency(g *grid.Grid, combining bool) float64 {
	// The grid builder wires MadIO with combining; for the ablation we
	// wire the second hardware channel without it.
	myri := g.Topo.Networks()[0]
	m0 := g.RT[0].MadIO[myri]
	m1 := g.RT[1].MadIO[myri]
	if !combining {
		m0, m1 = grid.RewireMadIONoCombining(g, 0, 1)
	}
	var oneway time.Duration
	err := g.K.Run(func(p *vtime.Proc) {
		pong := vtime.NewQueue[struct{}]("pong")
		m1.Register(900, func(q *vtime.Proc, src int, in madapi.InMessage) {
			in.Unpack(1, madapi.ReceiveCheaper)
			in.EndUnpacking()
			m1.Send(src, 900, []byte{1})
		})
		m0.Register(900, func(q *vtime.Proc, src int, in madapi.InMessage) {
			in.Unpack(1, madapi.ReceiveCheaper)
			in.EndUnpacking()
			pong.Push(struct{}{})
		})
		const rounds = 256
		start := p.Now()
		for i := 0; i < rounds; i++ {
			m0.Send(1, 900, []byte{1})
			pong.Pop(p)
		}
		oneway = p.Now().Sub(start) / (2 * rounds)
	})
	if err != nil {
		panic(err)
	}
	return float64(oneway.Nanoseconds()) / 1e3
}

// mpiDirect builds MPI straight over a Circuit (no personality) — the
// "standalone MPICH" comparator.
func mpiDirect() *Runner {
	g := grid.Cluster(2)
	return &Runner{g: g, build: func(p *vtime.Proc) stack {
		circs, err := g.NewCircuits(p, "mpi-direct", []topology.NodeID{0, 1})
		if err != nil {
			panic(err)
		}
		return &mpiStack{
			c0: mpi.New(g.K, circs[0]), c1: mpi.New(g.K, circs[1]), ack: []byte{1},
		}
	}}
}

// ---------------------------------------------------------------------
// §5 ¶4: VTHD WAN.

// WANResult is the VTHD experiment outcome.
type WANResult struct {
	SingleMBps  float64
	StripedMBps float64
	Streams     int
}

// WAN measures one TCP stream vs parallel streams across the VTHD-like
// WAN.
func WAN() WANResult {
	return WANResult{
		SingleMBps:  wanRate(selector.Decision{Method: "sysio", Streams: 1}, 8<<20),
		StripedMBps: wanRate(selector.Decision{Method: "pstreams", Streams: 4}, 16<<20),
		Streams:     4,
	}
}

func wanRate(dec selector.Decision, size int) float64 {
	g := grid.TwoClusterWAN(1, 1)
	var rate float64
	err := g.K.Run(func(p *vtime.Proc) {
		la, lb, err := g.DialVLinkWith(p, 0, 1, dec)
		if err != nil {
			panic(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var end vtime.Time
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 64<<10)
			total := 0
			for total < size {
				n, err := lb.Read(q, buf)
				total += n
				if err != nil {
					if err != io.EOF {
						panic(err)
					}
					break
				}
			}
			end = q.Now()
		})
		start := p.Now()
		chunk := make([]byte, 256<<10)
		sent := 0
		for sent < size {
			n := size - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			la.Write(p, chunk[:n])
			sent += n
		}
		done.Wait(p)
		rate = float64(size) / end.Sub(start).Seconds() / 1e6
	})
	if err != nil {
		panic(err)
	}
	return rate
}

// ---------------------------------------------------------------------
// §5 ¶5: VRP on the lossy link.

// VRPResult is the lossy-link experiment outcome.
type VRPResult struct {
	TCPKBps     float64
	VRPKBps     float64
	SkippedFrac float64
	Tolerance   float64
}

// VRPBench measures plain TCP vs VRP with 10% tolerance on the
// trans-continental lossy link.
func VRPBench() VRPResult {
	res := VRPResult{Tolerance: 0.10}

	g := grid.LossyPair()
	size := 512 << 10
	err := g.K.Run(func(p *vtime.Proc) {
		la, lb, err := g.DialVLinkWith(p, 0, 1, selector.Decision{Method: "sysio", Streams: 1})
		if err != nil {
			panic(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var end vtime.Time
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 64<<10)
			total := 0
			for total < size {
				n, err := lb.Read(q, buf)
				total += n
				if err != nil {
					break
				}
			}
			end = q.Now()
		})
		start := p.Now()
		payload := make([]byte, size)
		rand.New(rand.NewSource(1)).Read(payload)
		la.Write(p, payload)
		done.Wait(p)
		res.TCPKBps = float64(size) / end.Sub(start).Seconds() / 1e3
	})
	if err != nil {
		panic(err)
	}

	g2 := grid.LossyPair()
	err = g2.K.Run(func(p *vtime.Proc) {
		ua, _ := g2.Stack.Host(0).ListenUDP(7000)
		ub, _ := g2.Stack.Host(1).ListenUDP(7001)
		sender := vrp.New(g2.K, ua, 1, 7001, res.Tolerance, 600e3)
		recv := vrp.New(g2.K, ub, 0, 7000, res.Tolerance, 600e3)
		payload := make([]byte, 1200)
		nmsgs := size / len(payload)
		start := p.Now()
		for i := 0; i < nmsgs; i++ {
			sender.Send(payload)
		}
		received := 0
		for {
			if _, ok := recv.RecvTimeout(p, 2*time.Second); !ok {
				break
			}
			received++
		}
		elapsed := p.Now().Sub(start).Seconds() - 2
		res.VRPKBps = float64(received*len(payload)) / elapsed / 1e3
		res.SkippedFrac = float64(sender.Stats().Skipped) / float64(nmsgs)
	})
	if err != nil {
		panic(err)
	}
	return res
}

// Measure times reps exchanges of size bytes on a Runner and returns
// the per-exchange duration and implied bandwidth in MB/s.
func Measure(r *Runner, size, reps int) (time.Duration, float64) {
	return r.measure(size, reps)
}

// ---------------------------------------------------------------------
// Hot-path micro-workloads. These are the wall-clock benchmarks of the
// zero-copy segment path: virtual-time results must stay bit-identical
// across buffer-management changes (see determinism_test.go), while
// allocs/op and wall-clock per op are what the optimisation moves.

// TCPBulkSize is the payload of one TCPBulk run.
const TCPBulkSize = 8 << 20

// TCPBulk pushes TCPBulkSize bytes through one raw TCP connection
// across the VTHD-like WAN (no VLink on top, so it isolates the
// ipstack segment path) and returns the virtual bandwidth in MB/s.
func TCPBulk() float64 {
	g := grid.TwoClusterWAN(1, 1)
	var rate float64
	err := g.K.Run(func(p *vtime.Proc) {
		ln, _ := g.Stack.Host(1).Listen(80)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var end vtime.Time
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			c, _ := ln.Accept(q)
			buf := make([]byte, 64<<10)
			total := 0
			for total < TCPBulkSize {
				n, err := c.Read(q, buf)
				total += n
				if err != nil {
					return
				}
			}
			end = q.Now()
		})
		c, err := g.Stack.Host(0).Dial(p, 1, 80)
		if err != nil {
			panic(err)
		}
		start := p.Now()
		chunk := make([]byte, 256<<10)
		sent := 0
		for sent < TCPBulkSize {
			n := TCPBulkSize - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			c.Write(p, chunk[:n])
			sent += n
		}
		done.Wait(p)
		rate = float64(TCPBulkSize) / end.Sub(start).Seconds() / 1e6
	})
	if err != nil {
		panic(err)
	}
	return rate
}

// DataGridWallClock is one flat replica-3 striped datagrid run — the
// single configuration tracked by BenchmarkDataGridWallClock and
// BENCH_4.json.
func DataGridWallClock() DataGridResult {
	return dataGridRun(4, 3, false)
}

// ---------------------------------------------------------------------
// Network weather: adaptive vs static on a degrading WAN.

// WeatherResult is one row of the adaptive-vs-static table on the
// grid.DegradingWAN testbed.
type WeatherResult struct {
	// Adaptive marks the run with weather monitoring + adaptation on
	// (weather.Service + selector oracle + adaptive sessions +
	// forecast-ranked GET sources). The static run sees the *same*
	// fabric degradation with none of the adaptation.
	Adaptive bool
	// MakespanS is the whole workload's virtual time.
	MakespanS float64
	// StreamS is the completion time of the bulk stream that crosses
	// the degrade instant (the re-selection showcase).
	StreamS float64
	// GetS is the post-degrade GET phase duration (the source-switch
	// showcase).
	GetS float64
	// DegradedLinkMB counts bytes serialized onto the degraded
	// site0-site1 core — the currency adaptation saves.
	DegradedLinkMB float64
	// Adaptation events.
	SourceSwitches, Reselects, Resumes int64
}

// Weather workload shape.
const (
	WeatherObjects    = 4
	WeatherObjectSize = 4 << 20
	WeatherStreamSize = 6 << 20
	WeatherGetRounds  = 2
)

// weatherPayload is compressible (a repeated pseudo-random block):
// AdOC on a degraded link is one of the adaptations under test.
func weatherPayload(size int) []byte {
	block := make([]byte, 512)
	rand.New(rand.NewSource(97)).Read(block)
	return bytes.Repeat(block, size/len(block))
}

// WeatherBench runs the degrading-WAN workload twice — static
// selection, then full adaptation — and reports both rows.
func WeatherBench() []WeatherResult {
	return []WeatherResult{weatherRun(false), weatherRun(true)}
}

// weatherRun is one degrading-WAN workload: ingest before the degrade,
// a bulk stream across it, GETs after it. Everything is deterministic;
// the two runs differ only in whether anything adapts.
func weatherRun(adaptive bool) WeatherResult {
	r, _ := weatherRunTraced(adaptive, false)
	return r
}

// weatherRunTraced is weatherRun with an optional telemetry hub: when
// traced, the hub is attached (tracing on) before any layer is built,
// so spans from the whole stack land in it.
func weatherRunTraced(adaptive, traced bool) (WeatherResult, *telemetry.Hub) {
	g := grid.DegradingWAN(2) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	var h *telemetry.Hub
	if traced {
		h = g.Telemetry()
		h.EnableTracing()
	}
	if adaptive {
		g.EnableWeather(weather.Config{})
	}
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Streams: 4, Adaptive: adaptive})
	// Placement on the two remote sites only: every GET from site0 has
	// a choice of remote source, which is exactly what the forecast
	// ranking decides.
	ring := datagrid.NewRing(0)
	for _, n := range []topology.NodeID{2, 3} {
		ring.Add(n, "site1")
	}
	for _, n := range []topology.NodeID{4, 5} {
		ring.Add(n, "site2")
	}
	dg.SetRing(ring)

	res := WeatherResult{Adaptive: adaptive}
	data := weatherPayload(WeatherObjectSize)
	err := g.K.Run(func(p *vtime.Proc) {
		// Phase 1 (healthy): ingest + replication from site0 clients.
		for i := 0; i < WeatherObjects; i++ {
			if err := dg.Put(p, topology.NodeID(i%2), fmt.Sprintf("w-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)

		// Bulk stream that crosses the degrade instant: start shortly
		// before, so half of it rides the degraded link (static) or a
		// re-selected stack (adaptive).
		streamStart := vtime.Time(0).Add(grid.DegradeAt - 200*time.Millisecond)
		if p.Now() >= streamStart {
			panic("bench: weather ingest ran past the degrade instant")
		}
		p.Sleep(streamStart.Sub(p.Now()))
		var opts []session.Option
		if adaptive {
			opts = append(opts, session.WithAdaptive())
		}
		ch, err := g.Open(p, 0, 2, opts...)
		if err != nil {
			panic(err)
		}
		payload := weatherPayload(WeatherStreamSize)
		done := vtime.NewWaitGroup("weather:stream")
		done.Add(1)
		g.K.Go("weather:sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, len(payload))
			if _, err := ch.Remote().ReadFull(q, buf); err != nil {
				panic(err)
			}
			if !bytes.Equal(buf, payload) {
				panic("bench: weather stream corrupted")
			}
		})
		const chunk = 128 << 10
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := ch.Write(p, payload[off:end]); err != nil {
				panic(err)
			}
		}
		done.Wait(p)
		res.StreamS = p.Now().Sub(streamStart).Seconds()
		ch.Close()
		ch.Remote().Close()

		// Let the forecasts converge on the new conditions (the static
		// run sleeps identically — same phase boundaries).
		settle := vtime.Time(0).Add(grid.DegradeAt + 2*time.Second)
		if p.Now() < settle {
			p.Sleep(settle.Sub(p.Now()))
		}

		// Phase 2 (degraded): GETs from site0; every object has one
		// replica behind the degraded link and one behind a healthy
		// one.
		getStart := p.Now()
		for r := 0; r < WeatherGetRounds; r++ {
			for i := 0; i < WeatherObjects; i++ {
				got, err := dg.Get(p, topology.NodeID(i%2), fmt.Sprintf("w-%d", i))
				if err != nil {
					panic(err)
				}
				if !bytes.Equal(got, data) {
					panic("bench: weather GET corrupted")
				}
			}
		}
		res.GetS = p.Now().Sub(getStart).Seconds()
		res.MakespanS = p.Now().Seconds()
	})
	if err != nil {
		panic(fmt.Sprintf("bench: weather: %v", err))
	}
	res.DegradedLinkMB = float64(g.CoreHop(grid.DegradedCore).Bytes) / 1e6
	res.SourceSwitches = dg.Stats().SourceSwitches
	res.Reselects = g.Session().Stats().Reselects
	res.Resumes = g.Session().Stats().Resumes
	return res, h
}

// ---------------------------------------------------------------------
// Data grid: striped bulk replication across the WAN (extension; the
// heavy-traffic workload the paper's crossroads argument points at).

// DataGridResult is the outcome of one data-grid configuration on the
// lossy two-cluster WAN testbed.
type DataGridResult struct {
	Streams  int
	Replicas int
	// Hierarchical marks runs whose Put fan-out rode group.Multicast
	// over the two-tier spanning tree instead of point-to-point jobs.
	Hierarchical bool
	// IngestMBps is the aggregate client->first-replica PUT rate.
	IngestMBps float64
	// ConvergeS is the virtual time from the last PUT returning until
	// every object reached its full replica set.
	ConvergeS float64
	// WANMB is the total wide-area traffic of the run, both directions.
	WANMB float64
	// CircuitJobs / VLinkJobs split transfers by paradigm; GroupJobs
	// counts replication fan-outs served by one hierarchical multicast.
	CircuitJobs int64
	VLinkJobs   int64
	GroupJobs   int64
}

// DataGridSizes: objects per run and bytes per object.
const (
	DataGridObjects    = 4
	DataGridObjectSize = 4 << 20
	DataGridWANLoss    = 0.01
)

// DataGridBench measures aggregate ingest throughput and replication
// convergence versus stripe count and replica factor on a two-cluster
// WAN with isolated loss.
func DataGridBench() []DataGridResult {
	var out []DataGridResult
	for _, cfg := range []struct{ streams, replicas int }{
		{1, 2}, {4, 2}, {4, 3},
	} {
		out = append(out, dataGridRun(cfg.streams, cfg.replicas, false))
	}
	return out
}

// GroupBench is the flat-vs-hierarchical fan-out experiment: the same
// replica-3 workload on the lossy two-cluster WAN, once with PR 2's
// point-to-point fan-out and once with group.Multicast over the
// two-tier spanning tree. With two of the three replicas landing in
// the remote site, the tree pays one WAN crossing per object where the
// flat fan-out pays two — strictly fewer WAN bytes and a lower
// convergence makespan, deterministically.
func GroupBench() []DataGridResult {
	return []DataGridResult{
		dataGridRun(4, 3, false),
		dataGridRun(4, 3, true),
	}
}

func dataGridRun(streams, replicas int, hierarchical bool) DataGridResult {
	r, _ := dataGridRunTraced(streams, replicas, hierarchical, false)
	return r
}

// dataGridRunTraced is dataGridRun with an optional telemetry hub
// (attached before the data grid is built, tracing on).
func dataGridRunTraced(streams, replicas int, hierarchical, traced bool) (DataGridResult, *telemetry.Hub) {
	g := grid.TwoClusterWANLoss(2, 2, DataGridWANLoss)
	var h *telemetry.Hub
	if traced {
		h = g.Telemetry()
		h.EnableTracing()
	}
	dg := g.NewDataGrid(datagrid.Config{Replicas: replicas, Streams: streams, Hierarchical: hierarchical})
	res := DataGridResult{Streams: streams, Replicas: replicas, Hierarchical: hierarchical}
	err := g.K.Run(func(p *vtime.Proc) {
		data := make([]byte, DataGridObjectSize)
		rand.New(rand.NewSource(42)).Read(data)
		start := p.Now()
		for i := 0; i < DataGridObjects; i++ {
			name := fmt.Sprintf("bench-%d", i)
			if err := dg.Put(p, topology.NodeID(i%4), name, data); err != nil {
				panic(err)
			}
		}
		putDone := p.Now()
		res.IngestMBps = float64(DataGridObjects*DataGridObjectSize) /
			putDone.Sub(start).Seconds() / 1e6
		dg.WaitSettled(p)
		res.ConvergeS = p.Now().Sub(putDone).Seconds()
		for i := 0; i < DataGridObjects; i++ {
			if err := dg.VerifyReplicas(fmt.Sprintf("bench-%d", i)); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("bench: datagrid: %v", err))
	}
	res.CircuitJobs = dg.Stats().CircuitTransfers
	res.VLinkJobs = dg.Stats().VLinkTransfers
	res.GroupJobs = dg.Stats().GroupFanouts
	res.WANMB = float64(dg.Stats().WANBytes) / 1e6
	return res, h
}

// WeatherTrace runs both WeatherBench rows (static, adaptive) with
// span tracing and returns their concatenated Chrome trace JSON.
// Deterministic: byte-identical across runs.
func WeatherTrace() []byte {
	var out []byte
	for _, adaptive := range []bool{false, true} {
		_, h := weatherRunTraced(adaptive, true)
		out = append(out, h.TraceJSON()...)
	}
	return out
}

// DataGridTrace runs the DataGridBench configurations plus the
// hierarchical fan-out row with span tracing and returns their
// concatenated Chrome trace JSON. Deterministic: byte-identical
// across runs.
func DataGridTrace() []byte {
	var out []byte
	for _, cfg := range []struct {
		streams, replicas int
		hier              bool
	}{
		{1, 2, false}, {4, 2, false}, {4, 3, false}, {4, 3, true},
	} {
		_, h := dataGridRunTraced(cfg.streams, cfg.replicas, cfg.hier, true)
		out = append(out, h.TraceJSON()...)
	}
	return out
}

// ---------------------------------------------------------------------
// TraceRun: the full observability workload.

// TraceRun executes one fully observed degrading-WAN run: weather
// monitoring, an adaptive striped data grid with hierarchical fan-out,
// one explicit collective round (multicast + the three-wave barrier),
// and a bulk adaptive stream across the degrade instant, with span
// tracing on and a mid-run loss burst scheduled on the degraded core
// so the TCP recovery path appears in the trace too. It returns the
// hub; callers serialize the trace (Hub.WriteTrace) or snapshot the
// metrics registry from it. Deterministic: two runs yield
// byte-identical trace JSON.
func TraceRun() *telemetry.Hub {
	g := grid.DegradingWAN(2) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	h := g.Telemetry()
	h.EnableTracing()
	g.EnableWeather(weather.Config{})
	hop := g.CoreHop(grid.DegradedCore)
	netsim.ScheduleLoss(g.K, vtime.Time(0).Add(2*time.Second), hop, 0.03)
	netsim.ScheduleLoss(g.K, vtime.Time(0).Add(4*time.Second), hop, 0)
	dg := g.NewDataGrid(datagrid.Config{Replicas: 3, Streams: 4, Adaptive: true, Hierarchical: true})
	ring := datagrid.NewRing(0)
	for _, n := range []topology.NodeID{2, 3} {
		ring.Add(n, "site1")
	}
	for _, n := range []topology.NodeID{4, 5} {
		ring.Add(n, "site2")
	}
	dg.SetRing(ring)
	data := weatherPayload(1 << 20)
	err := g.K.Run(func(p *vtime.Proc) {
		// Phase 1 (healthy, then through the loss burst): ingest with
		// hierarchical replication.
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, topology.NodeID(i%2), fmt.Sprintf("t-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)

		// One explicit collective round on a cross-site group.
		grp, err := group.New(g.K, g.Topo, g.Session(), []topology.NodeID{0, 2, 4}, group.Config{})
		if err != nil {
			panic(err)
		}
		if _, err := grp.Multicast(p, 0, "trace", data[:256<<10], 1); err != nil {
			panic(err)
		}
		if err := grp.Barrier(p); err != nil {
			panic(err)
		}

		// Bulk adaptive stream across the degrade instant.
		streamStart := vtime.Time(0).Add(grid.DegradeAt - 200*time.Millisecond)
		if p.Now() < streamStart {
			p.Sleep(streamStart.Sub(p.Now()))
		}
		ch, err := g.Open(p, 0, 2, session.WithAdaptive(), session.WithStreams(4))
		if err != nil {
			panic(err)
		}
		payload := weatherPayload(4 << 20)
		done := vtime.NewWaitGroup("trace:stream")
		done.Add(1)
		g.K.Go("trace:sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, len(payload))
			if _, err := ch.Remote().ReadFull(q, buf); err != nil {
				panic(err)
			}
		})
		const chunk = 128 << 10
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := ch.Write(p, payload[off:end]); err != nil {
				panic(err)
			}
		}
		done.Wait(p)
		ch.Close()
		ch.Remote().Close()

		// Phase 2 (degraded): let forecasts converge, then GETs from
		// site0 — the source ranking walks away from the degraded site.
		settle := vtime.Time(0).Add(grid.DegradeAt + 2*time.Second)
		if p.Now() < settle {
			p.Sleep(settle.Sub(p.Now()))
		}
		for i := 0; i < 4; i++ {
			if _, err := dg.Get(p, topology.NodeID(i%2), fmt.Sprintf("t-%d", i)); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("bench: trace run: %v", err))
	}
	return h
}

// ---------------------------------------------------------------------
// SLO monitoring: the degrading-WAN ingest workload with a virtual-time
// SLO monitor attached.

// SLOWindows are the burn-rate look-backs of every bench objective:
// short enough that the degrade-era transfers heat both windows within
// the run, long enough that one slow transfer alone does not page.
var SLOWindows = []vtime.Duration{vtime.Duration(2 * time.Second), vtime.Duration(8 * time.Second)}

// SLOObjectives are the stack's standing objectives as exercised by
// SLOBench: transfer latency on the data grid, repair time-to-heal on
// the anti-entropy loop, and probe availability on the weather service.
func SLOObjectives() []telemetry.Objective {
	return []telemetry.Objective{
		{
			Name: "datagrid-transfer-p99", Target: 0.99,
			Hist: "datagrid.transfer_latency", Threshold: vtime.Duration(500 * time.Millisecond),
			Windows: SLOWindows,
		},
		{
			Name: "repair-time-to-heal", Target: 0.90,
			Hist: "store.repair_latency", Threshold: vtime.Duration(5 * time.Second),
			Windows: SLOWindows,
		},
		{
			Name: "probe-availability", Target: 0.95,
			Bad: "weather.probe_failures",
			Total: []string{
				"weather.pings", "weather.bandwidth_probes",
			},
			Windows: SLOWindows,
		},
		{
			// Recovery availability: every repair pass that finds an
			// object with no reachable fresh replica books one bad event
			// (datagrid.lost_objects), every completed repair a good one
			// — so the objective burns for exactly as long as data is
			// unreachable and clears once the heal restores sources.
			Name: "recovery-availability", Target: 0.95,
			Bad: "datagrid.lost_objects",
			Total: []string{
				"datagrid.repairs", "datagrid.lost_objects",
			},
			Windows: SLOWindows,
		},
	}
}

// SLOBench runs an ingest workload across the DegradingWAN degrade
// instant with an SLO monitor evaluating in virtual time: the healthy
// era's transfers stay inside the latency budget, the degraded era's
// crawl through the collapsed core and burn it (breach), and a quiet
// tail lets the short window cool (clear). A final recovery era then
// partitions the replica site entirely — the repair loop screams
// lost-object events until the heal restores reachability, so the
// recovery-availability objective breaches during the outage and
// clears after it. It returns the monitor; render its history with
// FormatSLO. Deterministic: two runs yield a byte-identical table.
func SLOBench() *telemetry.SLOMonitor {
	g := grid.DegradingWAN(2) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	h := g.Telemetry()
	g.EnableWeather(weather.Config{})
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Streams: 4, RepairInterval: time.Second})
	// Replicas land in site1 only: every transfer crosses the core that
	// collapses at DegradeAt.
	ring := datagrid.NewRing(0)
	for _, n := range []topology.NodeID{2, 3} {
		ring.Add(n, "site1")
	}
	dg.SetRing(ring)
	inj := faults.NewInjector(g)
	wireDetector(g, inj, dg)
	mon := telemetry.NewSLOMonitor(h, 0, SLOObjectives()...)
	mon.Start()
	data := weatherPayload(1 << 20)
	err := g.K.Run(func(p *vtime.Proc) {
		// Healthy era: ingest within the budget.
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("slo-a-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		// Degraded era: the same traffic after the core collapsed.
		deg := vtime.Time(0).Add(grid.DegradeAt + 250*time.Millisecond)
		if p.Now() < deg {
			p.Sleep(deg.Sub(p.Now()))
		}
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("slo-b-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		// Quiet tail: no new transfers; the short window cools and the
		// alert clears.
		p.Sleep(4 * time.Second)
		// Recovery era: partition the replica site. Every repair pass
		// finds the objects unreachable and books lost-object events;
		// recovery-availability burns all-bad and breaches.
		inj.PartitionSite("site1",
			"core:vthd:site0+site1", "core:vthd:site1+site2")
		p.Sleep(6 * time.Second)
		// Heal: the detector re-adds the site, the still-fresh replicas
		// count again, the screaming stops and the windows drain.
		inj.HealSite("site1",
			"core:vthd:site0+site1", "core:vthd:site1+site2")
		p.Sleep(6 * time.Second)
	})
	if err != nil {
		panic(fmt.Sprintf("bench: slo: %v", err))
	}
	return mon
}

// ---------------------------------------------------------------------
// Failure scenarios: crash-partition-and-heal, the headline robustness
// bench. Three rows, three failure modes: one node crash, one whole
// site blackout, one WAN partition routed around on the backup wire.

// PartitionResult is one failure-scenario row of the -partition table.
type PartitionResult struct {
	Scenario string // what failed
	Testbed  string
	// DetectS is the fault instant to the first detected transition
	// (failure-detector sweep, or the weather forecast going Down).
	DetectS float64
	// RecoverS is the fault instant to full reconvergence: every object
	// verified at its replication factor again, or — for the WAN
	// partition — a full client read round completing on the rerouted
	// wire.
	RecoverS float64
	// MovedMB counts payload bytes moved while healing (re-replication
	// traffic), or wire bytes the backup WAN carried after the reroute.
	MovedMB float64
	// Repairs counts repair transfers completed while healing.
	Repairs int64
	// Lost is the number of objects with no reachable fresh replica
	// once recovery settled — the headline number, asserted zero.
	Lost int
}

const (
	partitionObjects     = 8
	partitionObjectSize  = 1 << 20
	partitionDetectEvery = 500 * time.Millisecond
)

// PartitionBench runs the three failure scenarios end to end and
// reports time-to-detect, time-to-reconverge, bytes moved while
// healing, and lost objects (always zero). Deterministic: two runs
// yield a byte-identical table.
func PartitionBench() []PartitionResult {
	return []PartitionResult{
		crashRecoveryRun("node-crash", false),
		crashRecoveryRun("site-blackout", true),
		wanPartitionRun(),
	}
}

// replicasHealed reports whether every catalogued object verifies at
// its (current) placement.
func replicasHealed(dg *datagrid.DataGrid) bool {
	for _, name := range dg.Objects() {
		if dg.VerifyReplicas(name) != nil {
			return false
		}
	}
	return true
}

// wireDetector connects a failure detector to the datagrid's
// membership: a detected crash marks the node down and shrinks the
// ring (rebalance through the repair path re-replicates everything it
// held); a detected heal marks it up and re-adds it. The returned
// pointer holds the virtual time of the first detected failure.
func wireDetector(g *grid.Grid, inj *faults.Injector, dg *datagrid.DataGrid) *vtime.Time {
	detectAt := new(vtime.Time)
	det := faults.NewDetector(inj, partitionDetectEvery, func(n topology.NodeID, down bool) {
		if down {
			if *detectAt == 0 {
				*detectAt = g.K.Now()
			}
			dg.MarkDown(n)
			dg.RemoveMember(n)
			return
		}
		dg.MarkUp(n)
		dg.AddMember(n, g.Topo.Node(n).Site)
	})
	det.Start()
	return detectAt
}

// crashRecoveryRun ingests a replicated working set on the three-site
// testbed, then kills the primary holder of the first object — alone,
// or with its whole site — and measures the self-heal: the detector
// shrinks the ring, the repair loop re-replicates every object that
// lost a copy from weather-ranked surviving sources, and the run ends
// when every object verifies at full replication again.
func crashRecoveryRun(scenario string, wholeSite bool) PartitionResult {
	g := grid.MultiSiteLoss(3, 2, DataGridWANLoss)
	g.Telemetry()
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Streams: 4, RepairInterval: time.Second})
	inj := faults.NewInjector(g)
	detectAt := wireDetector(g, inj, dg)
	res := PartitionResult{Scenario: scenario, Testbed: "MultiSiteLoss(3x2)"}
	err := g.K.Run(func(p *vtime.Proc) {
		data := weatherPayload(partitionObjectSize)
		for i := 0; i < partitionObjects; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("part-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		meta, _ := dg.Meta("part-0")
		victim := meta.Targets[0]
		before := dg.Stats()
		tFault := p.Now()
		if wholeSite {
			inj.CrashSite(g.Topo.Node(victim).Site)
		} else {
			inj.CrashNode(victim)
		}
		deadline := tFault.Add(120 * time.Second)
		// Wait out the detection latency first: until the detector's
		// sweep shrinks the ring, the stale placement still "verifies".
		for *detectAt == 0 {
			p.Sleep(100 * time.Millisecond)
			if p.Now() > deadline {
				panic("bench: partition: crash never detected")
			}
		}
		for {
			p.Sleep(250 * time.Millisecond)
			dg.WaitSettled(p)
			if replicasHealed(dg) {
				break
			}
			if p.Now() > deadline {
				panic("bench: partition: no reconvergence within 120s of virtual time")
			}
		}
		after := dg.Stats()
		res.DetectS = detectAt.Sub(tFault).Seconds()
		res.RecoverS = p.Now().Sub(tFault).Seconds()
		res.MovedMB = float64(after.BytesMoved-before.BytesMoved) / 1e6
		res.Repairs = after.Repairs - before.Repairs
		res.Lost = len(dg.LostObjects())
	})
	if err != nil {
		panic(fmt.Sprintf("bench: partition %s: %v", scenario, err))
	}
	return res
}

// wanPartitionRun stores the working set in the remote site of the
// dual-homed testbed, cuts the primary WAN core, and measures how long
// client reads take to move onto the backup wire: the weather service
// marks the dead network down after consecutive probe failures, the
// selector's next decisions carry Decision.Network = backup, and sysio
// dials the alternate wire. The core is healed at the end and the
// catalog verified intact.
func wanPartitionRun() PartitionResult {
	g := grid.DualWAN(2) // site0 {0,1}, site1 {2,3}; cores "core:vthd" + "core:backup"
	g.Telemetry()
	wsvc := g.EnableWeather(weather.Config{})
	dg := g.NewDataGrid(datagrid.Config{
		Replicas: 2, Streams: 4, Adaptive: true,
		RetryTimeout: 5 * time.Second, RepairInterval: time.Second,
	})
	// Both replicas in site1: every client read from site0 crosses a WAN.
	ring := datagrid.NewRing(0)
	for _, n := range []topology.NodeID{2, 3} {
		ring.Add(n, "site1")
	}
	dg.SetRing(ring)
	inj := faults.NewInjector(g)
	var downAt vtime.Time
	unsub := wsvc.Subscribe(func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast) {
		if f.Down && nw.Name == "vthd" && downAt == 0 {
			downAt = g.K.Now()
		}
	})
	defer unsub()
	backup := g.CoreHop("core:backup")
	res := PartitionResult{Scenario: "wan-partition", Testbed: "DualWAN(2x2)"}
	getRound := func(p *vtime.Proc) bool {
		clean := true
		for i := 0; i < partitionObjects/2; i++ {
			if _, err := dg.Get(p, 0, fmt.Sprintf("wan-%d", i)); err != nil {
				clean = false
			}
		}
		return clean
	}
	err := g.K.Run(func(p *vtime.Proc) {
		data := weatherPayload(partitionObjectSize)
		for i := 0; i < partitionObjects/2; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("wan-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		if !getRound(p) { // healthy round across the primary
			panic("bench: wan-partition: healthy read round failed")
		}
		backupBefore := backup.Bytes
		tFault := p.Now()
		deadline := tFault.Add(120 * time.Second)
		inj.PartitionCores("core:vthd")
		// Wait for the weather service to notice the dead wire, then
		// read until a full round lands on the backup.
		for downAt == 0 {
			if p.Now() > deadline {
				panic("bench: wan-partition: weather never marked the core down")
			}
			p.Sleep(250 * time.Millisecond)
		}
		for !getRound(p) {
			if p.Now() > deadline {
				panic("bench: wan-partition: reads never reconverged on the backup")
			}
			p.Sleep(250 * time.Millisecond)
		}
		res.DetectS = downAt.Sub(tFault).Seconds()
		res.RecoverS = p.Now().Sub(tFault).Seconds()
		res.MovedMB = float64(backup.Bytes-backupBefore) / 1e6
		inj.HealCores("core:vthd")
		p.Sleep(time.Second)
		if !getRound(p) {
			panic("bench: wan-partition: read round failed after the heal")
		}
		res.Lost = len(dg.LostObjects())
	})
	if err != nil {
		panic(fmt.Sprintf("bench: wan-partition: %v", err))
	}
	return res
}

// ---------------------------------------------------------------------
// Store: the durable pack engine vs the in-memory map, plus the
// corrupt-and-repair anti-entropy drill.

// StoreResult is one engine row of the -store table. Every row runs
// the same workload on the lossy two-cluster WAN: ingest StoreObjects
// objects, read them all back from a non-entry client, scrub every
// node once, then corrupt two needles and drive one full
// audit -> quarantine -> repair cycle.
type StoreResult struct {
	Engine string // "memory" | "pack"
	// PutMBps is the aggregate client->first-replica ingest rate; on
	// the pack engine this includes the simulated needle appends and
	// batched fsyncs, so it trails the memory row.
	PutMBps float64
	// GetMBps is the aggregate read-back rate from a remote client.
	GetMBps float64
	// ScrubS is one synchronous grid-wide audit pass (every replica
	// re-read and re-hashed, paced to the scrub rate bound).
	ScrubS float64
	// Corrupted needles were injected; Quarantined is what the next
	// audit pass caught (must equal Corrupted); Repaired counts copies
	// the anti-entropy loop restored; Lost must be zero.
	Corrupted   int
	Quarantined int
	Repaired    int64
	Lost        int
}

// StoreSizes: objects per run and bytes per object.
const (
	StoreObjects    = 8
	StoreObjectSize = 1 << 20
)

// StoreBench runs the store table: the in-memory map and the durable
// pack engine under the identical datagrid workload. Deterministic on
// both rows — the pack engine's disk charges are simulated virtual
// time, not wall clock.
func StoreBench() []StoreResult {
	return []StoreResult{storeRun("memory"), storeRun("pack")}
}

func storeRun(engine string) StoreResult {
	g := grid.TwoClusterWANLoss(2, 2, DataGridWANLoss)
	cfg := datagrid.Config{Replicas: 2, Streams: 4}
	if engine == "pack" {
		dir, err := os.MkdirTemp("", "padico-store-bench-*")
		if err != nil {
			panic(fmt.Sprintf("bench: store: %v", err))
		}
		defer os.RemoveAll(dir)
		cfg.Engine = store.PackFactory(dir, store.PackConfig{})
	}
	dg := g.NewDataGrid(cfg)
	res := StoreResult{Engine: engine}
	err := g.K.Run(func(p *vtime.Proc) {
		data := make([]byte, StoreObjectSize)
		rand.New(rand.NewSource(7)).Read(data)
		start := p.Now()
		for i := 0; i < StoreObjects; i++ {
			if err := dg.Put(p, topology.NodeID(i%4), fmt.Sprintf("st-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		res.PutMBps = float64(StoreObjects*StoreObjectSize) / p.Now().Sub(start).Seconds() / 1e6

		gs := p.Now()
		for i := 0; i < StoreObjects; i++ {
			if _, err := dg.Get(p, topology.NodeID((i+1)%4), fmt.Sprintf("st-%d", i)); err != nil {
				panic(err)
			}
		}
		res.GetMBps = float64(StoreObjects*StoreObjectSize) / p.Now().Sub(gs).Seconds() / 1e6

		ss := p.Now()
		if n := dg.AuditNow(p); n != 0 {
			panic(fmt.Sprintf("bench: store: clean scrub quarantined %d", n))
		}
		res.ScrubS = p.Now().Sub(ss).Seconds()

		// The drill: two needles rot on different nodes; one audit pass
		// quarantines both, one repair pass restores the replication
		// factor, and nothing is lost.
		for _, i := range []int{1, 5} {
			name := fmt.Sprintf("st-%d", i)
			if !dg.EngineOn(dg.Holders(name)[i%2]).Corrupt(name) {
				panic("bench: store: could not corrupt " + name)
			}
		}
		res.Corrupted = 2
		res.Quarantined = dg.AuditNow(p)
		dg.RepairNow(p)
		dg.WaitSettled(p)
		for i := 0; i < StoreObjects; i++ {
			if err := dg.VerifyReplicas(fmt.Sprintf("st-%d", i)); err != nil {
				panic(err)
			}
		}
		res.Lost = len(dg.LostObjects())
	})
	if err != nil {
		panic(fmt.Sprintf("bench: store: %v", err))
	}
	res.Repaired = dg.Stats().Repairs
	if err := dg.Close(); err != nil {
		panic(fmt.Sprintf("bench: store: close: %v", err))
	}
	return res
}
