// The time-series run: the DegradingWAN + partition scenario of
// SLOBench instrumented with the series sampler instead of (only) the
// SLO monitor, on durable pack engines so every layer with a gauge has
// something to show. One run feeds both export surfaces of
// padico-bench: -series (pinned deterministic JSON) and -dash (the
// self-contained HTML dashboard), whose curves tell the whole story —
// healthy ingest, the core collapsing at DegradeAt (hop busy-fraction
// jumps to saturation, queued bytes pile up, transfer p99 explodes),
// the site partition (lost-object rate screams, live channels drain),
// and the heal (repair wave, queues drain, latencies recover).
package bench

import (
	"fmt"
	"os"
	"time"

	"padico/internal/datagrid"
	"padico/internal/faults"
	"padico/internal/grid"
	"padico/internal/store"
	"padico/internal/telemetry"
	"padico/internal/telemetry/series"
	"padico/internal/topology"
	"padico/internal/vtime"
	"padico/internal/weather"
)

// SeriesInterval is the sampler cadence of SeriesRun: fine enough to
// resolve the degrade edge, coarse enough that a ~26s virtual run
// stays far inside one ring (no downsampling, every scrape a point).
const SeriesInterval = 250 * time.Millisecond

// SeriesOutcome is what SeriesRun hands the exporters: the sampler
// holding every track, the hub (for Prom exposition), and the run's
// event marks for the dashboard.
type SeriesOutcome struct {
	Sampler *telemetry.Sampler
	Hub     *telemetry.Hub
	Marks   []series.Mark
}

// SeriesRun executes the degrade → partition → heal scenario with the
// metric sampler attached and returns the collected series.
// Deterministic: two runs yield byte-identical series JSON (pinned in
// determinism tests); volatile metrics (iovec pool misses) are
// excluded by the sampler itself.
func SeriesRun() SeriesOutcome {
	g := grid.DegradingWAN(2) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	h := g.Telemetry()
	g.EnableWeather(weather.Config{})

	// Durable pack engines so the store layer has fsync backlog and
	// bundle-byte activity to sample.
	dir, err := os.MkdirTemp("", "padico-series-*")
	if err != nil {
		panic(fmt.Sprintf("bench: series: %v", err))
	}
	defer os.RemoveAll(dir)
	dg := g.NewDataGrid(datagrid.Config{
		Replicas: 2, Streams: 4, RepairInterval: time.Second,
		Engine: store.PackFactory(dir, store.PackConfig{}),
	})
	// Replicas land in site1 only: every transfer crosses the core that
	// collapses at DegradeAt.
	ring := datagrid.NewRing(0)
	for _, n := range []topology.NodeID{2, 3} {
		ring.Add(n, "site1")
	}
	dg.SetRing(ring)
	inj := faults.NewInjector(g)
	wireDetector(g, inj, dg)

	sam := h.StartSampler(vtime.Duration(SeriesInterval))
	data := weatherPayload(1 << 20)
	var partAt, healAt vtime.Time
	err = g.K.Run(func(p *vtime.Proc) {
		// Healthy era: spaced ingest, so the rate tracks show a steady
		// plateau rather than one spike.
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("ts-a-%d", i), data); err != nil {
				panic(err)
			}
			p.Sleep(300 * time.Millisecond)
		}
		dg.WaitSettled(p)
		// Degraded era: the same traffic after the core collapsed —
		// transfers crawl, the hop queue fills, p99 breaches.
		deg := vtime.Time(0).Add(grid.DegradeAt + 250*time.Millisecond)
		if p.Now() < deg {
			p.Sleep(deg.Sub(p.Now()))
		}
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("ts-b-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		// Quiet tail: queues drain, rates fall back to zero.
		p.Sleep(2 * time.Second)
		// Partition the replica site: the repair loop finds every object
		// unreachable and the lost-object rate screams.
		partAt = p.Now()
		inj.PartitionSite("site1",
			"core:vthd:site0+site1", "core:vthd:site1+site2")
		p.Sleep(6 * time.Second)
		// Heal: the detector re-adds the site and the repair wave
		// re-verifies everything — visible as the final activity burst.
		healAt = p.Now()
		inj.HealSite("site1",
			"core:vthd:site0+site1", "core:vthd:site1+site2")
		p.Sleep(6 * time.Second)
	})
	if err != nil {
		panic(fmt.Sprintf("bench: series: %v", err))
	}
	if err := dg.Close(); err != nil {
		panic(fmt.Sprintf("bench: series: close: %v", err))
	}
	return SeriesOutcome{
		Sampler: sam,
		Hub:     h,
		Marks: []series.Mark{
			{T: vtime.Time(0).Add(grid.DegradeAt), Label: "degrade"},
			{T: partAt, Label: "partition"},
			{T: healAt, Label: "heal"},
		},
	}
}

// SeriesDashOptions returns the dashboard options for a SeriesRun
// outcome — shared by padico-bench and examples/dashboard.
func SeriesDashOptions(out SeriesOutcome) series.DashOptions {
	return series.DashOptions{
		Title:    "padico · DegradingWAN degrade → partition → heal",
		Subtitle: "3 sites × 2 nodes, VTHD core collapses 16× at 6s; site1 partitioned, then healed. Sampler cadence 250ms of virtual time.",
		Marks:    out.Marks,
	}
}
