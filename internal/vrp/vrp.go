// Package vrp implements the Variable Reliability Protocol (paper §3.2,
// citing Denis, RR2000-11): a datagram protocol over UDP with a tunable
// loss tolerance. Applications that prefer throughput over full
// reliability (visualization streams, monitoring) accept up to a given
// fraction of losses; VRP retransmits only when the observed loss in
// the current window exceeds the budget, so the link's capacity goes to
// fresh data instead of recovery — the paper measures 500 KB/s where
// TCP collapses to 150 KB/s on a 5-10 % lossy trans-continental link.
//
// Protocol: DATA(seq) datagrams paced at the configured rate; the
// receiver acks a window summary [base, bitmap]; the sender retransmits
// only enough of the reported holes to keep the delivered-loss fraction
// under the tolerance; a hole the sender decides not to repair is
// SKIPped explicitly so the receiver can advance.
package vrp

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"padico/internal/ipstack"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Tunables.
const (
	ackEvery    = 16 // receiver acks every N data packets
	ackInterval = 20 * time.Millisecond
)

// Stats of one VRP endpoint.
type Stats struct {
	Sent          int64
	Delivered     int64
	Skipped       int64 // holes accepted under the tolerance
	Retransmitted int64
}

// Conn is one unidirectional VRP session (sender or receiver role
// depends on which methods are used; both directions may be active).
type Conn struct {
	k         *vtime.Kernel
	udp       *ipstack.UDPConn
	peer      topology.NodeID
	peerPort  int
	tolerance float64
	rateBps   float64
	mtu       int

	// Sender state.
	nextSeq  uint64
	sendBuf  map[uint64][]byte // in-flight, not yet acked/skipped
	skipped  map[uint64]bool   // abandoned holes (skip may need resending)
	sendTime vtime.Time        // pacing horizon
	sentWin  int64             // packets sent in current accounting window
	skipWin  int64             // packets skipped in current accounting window
	tailBase uint64            // last post-horizon ack base (tail-loss detection)

	// Receiver state.
	rcvNext  uint64
	rcvStash map[uint64][]byte
	rcvQ     *vtime.Queue[Message]

	stats Stats
	tel   *telemetry.Hub
}

// Stats returns a consistent copy of the connection's counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Sent:          atomic.LoadInt64(&c.stats.Sent),
		Delivered:     atomic.LoadInt64(&c.stats.Delivered),
		Skipped:       atomic.LoadInt64(&c.stats.Skipped),
		Retransmitted: atomic.LoadInt64(&c.stats.Retransmitted),
	}
}

// Message is one delivered datagram. Seq gaps indicate tolerated
// losses.
type Message struct {
	Seq  uint64
	Data []byte
}

type pktKind byte

const (
	pktData pktKind = iota
	pktAck
	pktSkip
)

// New opens a VRP endpoint on the given UDP socket toward a peer.
// tolerance is the accepted loss fraction (0..1); rateBps paces the
// sender (VRP targets streams of known rate).
func New(k *vtime.Kernel, udp *ipstack.UDPConn, peer topology.NodeID, peerPort int,
	tolerance, rateBps float64) *Conn {
	c := &Conn{
		k: k, udp: udp, peer: peer, peerPort: peerPort,
		tolerance: tolerance, rateBps: rateBps,
		sendBuf:  make(map[uint64][]byte),
		skipped:  make(map[uint64]bool),
		tailBase: ^uint64(0),
		rcvStash: make(map[uint64][]byte),
		rcvQ:     vtime.NewQueue[Message](fmt.Sprintf("vrp:%d", udp.Port())),
	}
	if h := telemetry.For(k); h != nil {
		c.tel = h
		h.Registry().BindStruct("vrp", &c.stats)
	}
	mtu, err := udp.MTU(peer)
	if err != nil {
		panic(fmt.Sprintf("vrp: no route to peer: %v", err))
	}
	c.mtu = mtu - 16 // VRP header allowance
	k.GoDaemon(fmt.Sprintf("vrp-rx:%d", udp.Port()), c.rxLoop)
	return c
}

// MaxPayload returns the largest datagram payload.
func (c *Conn) MaxPayload() int { return c.mtu }

// Send transmits one datagram (paced). It never blocks; pacing is
// virtual-time based.
func (c *Conn) Send(data []byte) {
	if len(data) > c.mtu {
		panic(fmt.Sprintf("vrp: payload %d exceeds max %d", len(data), c.mtu))
	}
	seq := c.nextSeq
	c.nextSeq++
	c.sendBuf[seq] = append([]byte(nil), data...)
	atomic.AddInt64(&c.stats.Sent, 1)
	c.sentWin++
	c.sendPaced(pktData, seq, data)
}

// sendPaced schedules the packet respecting the configured rate.
func (c *Conn) sendPaced(kind pktKind, seq uint64, data []byte) {
	now := c.k.Now()
	if c.sendTime < now {
		c.sendTime = now
	}
	txTime := vtime.Duration(float64(len(data)+28) / c.rateBps * 1e9)
	at := c.sendTime
	c.sendTime = c.sendTime.Add(txTime)
	c.k.At(at, func() { c.udp.SendTo(c.peer, c.peerPort, c.packet(kind, seq, data)) })
}

// sendNow bypasses pacing: recovery traffic (skips, repairs) must not
// queue behind the whole fresh-data backlog or in-order delivery stalls
// for the stream's entire duration.
func (c *Conn) sendNow(kind pktKind, seq uint64, data []byte) {
	c.udp.SendTo(c.peer, c.peerPort, c.packet(kind, seq, data))
}

func (c *Conn) packet(kind pktKind, seq uint64, data []byte) []byte {
	pkt := make([]byte, 9+len(data))
	pkt[0] = byte(kind)
	binary.BigEndian.PutUint64(pkt[1:], seq)
	copy(pkt[9:], data)
	return pkt
}

// rxLoop handles inbound packets (data on the receiver role, acks on
// the sender role).
func (c *Conn) rxLoop(p *vtime.Proc) {
	lastAck := vtime.Time(0)
	sinceAck := 0
	for {
		dg, ok := c.udp.RecvTimeout(p, ackInterval)
		now := p.Now()
		if !ok {
			// Periodic ack keeps the sender informed even under burst loss.
			if c.rcvNext > 0 || len(c.rcvStash) > 0 {
				c.sendAckSummary()
				lastAck = now
			}
			continue
		}
		kind := pktKind(dg.Data[0])
		seq := binary.BigEndian.Uint64(dg.Data[1:])
		switch kind {
		case pktData:
			c.onData(seq, dg.Data[9:])
			sinceAck++
			if sinceAck >= ackEvery || now.Sub(lastAck) > ackInterval {
				c.sendAckSummary()
				sinceAck = 0
				lastAck = now
			}
		case pktSkip:
			c.onSkip(seq)
		case pktAck:
			c.onAck(seq, dg.Data[9:])
		}
	}
}

// onData stashes or delivers one data packet.
func (c *Conn) onData(seq uint64, data []byte) {
	if seq < c.rcvNext {
		return // duplicate of something already delivered/skipped
	}
	if _, dup := c.rcvStash[seq]; dup {
		return
	}
	c.rcvStash[seq] = append([]byte(nil), data...)
	c.deliverInOrder()
}

// onSkip marks a hole as abandoned by the sender.
func (c *Conn) onSkip(seq uint64) {
	if seq == c.rcvNext {
		c.rcvNext++
		c.deliverInOrder()
	}
}

func (c *Conn) deliverInOrder() {
	for {
		data, ok := c.rcvStash[c.rcvNext]
		if !ok {
			return
		}
		delete(c.rcvStash, c.rcvNext)
		c.rcvQ.Push(Message{Seq: c.rcvNext, Data: data})
		c.rcvNext++
	}
}

// sendAckSummary reports [base, 64-hole bitmap beyond base].
func (c *Conn) sendAckSummary() {
	var bitmap uint64
	for i := uint64(0); i < 64; i++ {
		if _, ok := c.rcvStash[c.rcvNext+i]; ok {
			bitmap |= 1 << i
		}
	}
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], bitmap)
	pkt := make([]byte, 9+8)
	pkt[0] = byte(pktAck)
	binary.BigEndian.PutUint64(pkt[1:], c.rcvNext)
	copy(pkt[9:], payload[:])
	c.udp.SendTo(c.peer, c.peerPort, pkt)
}

// onAck decides, hole by hole, between retransmission and an explicit
// skip, keeping skipped/sent under the tolerance.
func (c *Conn) onAck(base uint64, payload []byte) {
	bitmap := binary.BigEndian.Uint64(payload)
	// Everything below base is done.
	for seq := range c.sendBuf {
		if seq < base {
			delete(c.sendBuf, seq)
		}
	}
	for seq := range c.skipped {
		if seq < base {
			delete(c.skipped, seq)
		}
	}
	// Holes: positions below the highest sequence the receiver proved it
	// has. When the whole backlog has been transmitted (pacing horizon
	// passed) and the receiver still reports base < nextSeq with nothing
	// stashed, the tail itself is the hole.
	var maxKnown uint64
	known := false
	for i := uint64(0); i < 64; i++ {
		if bitmap&(1<<i) != 0 {
			maxKnown = base + i
			known = true
		}
	}
	if !known {
		// Tail-loss detection: acks lag by the one-way latency, so data
		// may legitimately still be in flight after the pacing horizon.
		// Only when the base STALLS across two post-horizon acks is the
		// tail genuinely lost.
		if c.k.Now() > c.sendTime.Add(2*ackInterval) && base < c.nextSeq && base == c.tailBase {
			maxKnown = c.nextSeq // repair/skip everything pending
		} else {
			c.tailBase = base
			return
		}
	}
	for seq := base; seq < maxKnown; seq++ {
		bit := uint64(0)
		if seq-base < 64 {
			bit = bitmap & (1 << (seq - base))
		}
		if bit != 0 {
			continue // received
		}
		data, mine := c.sendBuf[seq]
		if !mine {
			if c.skipped[seq] {
				// The skip announcement itself was lost; repeat it.
				c.sendNow(pktSkip, seq, nil)
			}
			continue
		}
		budget := c.tolerance * float64(c.sentWin)
		if float64(c.skipWin+1) <= budget {
			// Within tolerance: abandon the hole.
			c.skipWin++
			atomic.AddInt64(&c.stats.Skipped, 1)
			if c.tel.Tracing() {
				c.tel.Instant("vrp", "skip", int(c.peer)).I64("seq", int64(seq)).End()
			}
			delete(c.sendBuf, seq)
			c.skipped[seq] = true
			c.sendNow(pktSkip, seq, nil)
			continue
		}
		// Over budget: repair.
		atomic.AddInt64(&c.stats.Retransmitted, 1)
		c.sendNow(pktData, seq, data)
	}
}

// Recv blocks for the next in-order delivery (gaps = tolerated losses).
func (c *Conn) Recv(p *vtime.Proc) Message { return c.rcvQ.Pop(p) }

// RecvTimeout is Recv bounded by d.
func (c *Conn) RecvTimeout(p *vtime.Proc, d time.Duration) (Message, bool) {
	return c.rcvQ.PopTimeout(p, d)
}

// Pending returns queued deliveries.
func (c *Conn) Pending() int { return c.rcvQ.Len() }

// Delivered counts in-order deliveries on the receiver side.
func (c *Conn) Delivered() int64 { return int64(c.rcvNext) }
