package vrp_test

import (
	"testing"
	"time"

	"padico/internal/ipstack"
	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/vrp"
	"padico/internal/vtime"
)

// pair builds a VRP sender/receiver over a path with the given loss.
func pair(k *vtime.Kernel, loss float64, tolerance float64) (*vrp.Conn, *vrp.Conn) {
	st := ipstack.New(k)
	mk := func(seed int64) *netsim.Path {
		return netsim.NewPath(k, "link", seed,
			&netsim.Hop{Name: "hop", Rate: model.LossyRate,
				Latency: model.LossyWireLat, Loss: loss, QueueCap: 256})
	}
	st.ConnectPath(0, 1, mk(5), mk(6), 1500)
	ua, _ := st.Host(0).ListenUDP(7000)
	ub, _ := st.Host(1).ListenUDP(7001)
	return vrp.New(k, ua, 1, 7001, tolerance, model.LossyRate),
		vrp.New(k, ub, 0, 7000, tolerance, model.LossyRate)
}

func TestLosslessLinkDeliversEverythingInOrder(t *testing.T) {
	k := vtime.NewKernel()
	snd, rcv := pair(k, 0, 0.1)
	const n = 300
	if err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			snd.Send([]byte{byte(i)})
		}
		for i := 0; i < n; i++ {
			m := rcv.Recv(p)
			if m.Seq != uint64(i) || m.Data[0] != byte(i) {
				t.Fatalf("msg %d: seq=%d data=%d", i, m.Seq, m.Data[0])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if snd.Stats().Skipped != 0 || snd.Stats().Retransmitted != 0 {
		t.Fatalf("recovery on a lossless link: %+v", snd.Stats())
	}
}

func TestZeroToleranceRepairsEverything(t *testing.T) {
	k := vtime.NewKernel()
	snd, rcv := pair(k, 0.05, 0) // lossy link, no loss allowed
	const n = 400
	received := 0
	if err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			snd.Send(make([]byte, 512))
		}
		for {
			if _, ok := rcv.RecvTimeout(p, 3*time.Second); !ok {
				break
			}
			received++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if received != n {
		t.Fatalf("delivered %d of %d with zero tolerance", received, n)
	}
	if snd.Stats().Retransmitted == 0 {
		t.Fatal("no repairs on a 5% lossy link")
	}
	if snd.Stats().Skipped != 0 {
		t.Fatalf("skips with zero tolerance: %d", snd.Stats().Skipped)
	}
}

func TestToleranceBoundsSkips(t *testing.T) {
	k := vtime.NewKernel()
	snd, rcv := pair(k, 0.05, 0.02) // loss above tolerance: some repairs
	const n = 500
	received := 0
	if err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			snd.Send(make([]byte, 512))
		}
		for {
			if _, ok := rcv.RecvTimeout(p, 3*time.Second); !ok {
				break
			}
			received++
		}
	}); err != nil {
		t.Fatal(err)
	}
	skipFrac := float64(snd.Stats().Skipped) / float64(n)
	if skipFrac > 0.021 {
		t.Fatalf("skipped %.1f%% with 2%% tolerance", skipFrac*100)
	}
	if float64(received)/float64(n) < 0.97 {
		t.Fatalf("delivered only %d/%d", received, n)
	}
	if snd.Stats().Retransmitted == 0 {
		t.Fatal("5% loss above 2% tolerance must force repairs")
	}
}

func TestMaxPayloadRespectsMTU(t *testing.T) {
	k := vtime.NewKernel()
	snd, _ := pair(k, 0, 0.1)
	if err := k.Run(func(p *vtime.Proc) {
		if snd.MaxPayload() <= 0 || snd.MaxPayload() >= 1500 {
			t.Fatalf("max payload = %d", snd.MaxPayload())
		}
		defer func() {
			if recover() == nil {
				t.Error("oversized send did not panic")
			}
		}()
		snd.Send(make([]byte, snd.MaxPayload()+1))
	}); err != nil {
		t.Fatal(err)
	}
}
