package adoc_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"padico/internal/adoc"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// loopPair builds an adoc-wrapped loopback pair on one node.
func loopPair(k *vtime.Kernel) (*adoc.Driver, *vlink.Endpoint) {
	ep := vlink.NewEndpoint(topology.NodeID(0))
	d := adoc.New(k, vlink.NewLoopbackDriver(k, 0))
	ep.AddDriver(d)
	return d, ep
}

func roundTrip(t *testing.T, payload []byte) (float64, []byte) {
	k := vtime.NewKernel()
	d, ep := loopPair(k)
	var got []byte
	if err := k.Run(func(p *vtime.Proc) {
		ln, err := ep.Listen("adoc", 1)
		if err != nil {
			t.Fatal(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		k.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			v := ln.Accept(q)
			buf := make([]byte, 32<<10)
			for {
				n, err := v.Read(q, buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		})
		v, err := ep.ConnectWait(p, "adoc", vlink.Addr{Node: 0, Port: 1})
		if err != nil {
			t.Fatal(err)
		}
		v.Write(p, payload)
		v.Close()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	return d.Ratio(), got
}

func TestCompressibleDataShrinks(t *testing.T) {
	payload := bytes.Repeat([]byte("the quick brown fox jumps over the lazy grid "), 2000)
	ratio, got := roundTrip(t, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	if ratio < 3 {
		t.Fatalf("compression ratio = %.2f on text, want > 3", ratio)
	}
}

func TestIncompressibleDataPassesThrough(t *testing.T) {
	payload := make([]byte, 100<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	ratio, got := roundTrip(t, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("ratio = %.3f on random data, want ~1 (stored frames)", ratio)
	}
}

// Property: any payload round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, compressible bool) bool {
		size := int(n)%50000 + 1
		var payload []byte
		if compressible {
			payload = bytes.Repeat([]byte{byte(seed), byte(seed >> 8)}, size/2+1)[:size]
		} else {
			payload = make([]byte, size)
			rand.New(rand.NewSource(seed)).Read(payload)
		}
		tt := &testing.T{}
		_, got := roundTrip(tt, payload)
		return !tt.Failed() && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
