// Package adoc implements AdOC-style adaptive online compression (paper
// §3.2, citing Jeannot/Knutsson/Björkman): a VLink wrapper driver that
// deflates each chunk before it reaches the inner link, choosing the
// compression level adaptively — when the network is the bottleneck
// (send backlog grows) it compresses harder; when the CPU would become
// the bottleneck it backs off to light levels.
//
// Wire format per chunk: [1B level][4B origLen][4B compLen][compressed]
// where level 0 means "stored" (incompressible data passes through).
package adoc

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ChunkSize bounds the unit of compression.
const ChunkSize = 32 << 10

// Driver decorates an inner VLink driver with adaptive compression.
type Driver struct {
	k     *vtime.Kernel
	inner vlink.Driver

	// Stats
	BytesIn   int64 // pre-compression
	BytesWire int64 // post-compression
}

// New builds an AdOC driver over inner.
func New(k *vtime.Kernel, inner vlink.Driver) *Driver {
	return &Driver{k: k, inner: inner}
}

// Name implements vlink.Driver.
func (d *Driver) Name() string { return "adoc" }

// Ratio returns the achieved compression ratio so far (1 = none).
func (d *Driver) Ratio() float64 {
	if d.BytesWire == 0 {
		return 1
	}
	return float64(d.BytesIn) / float64(d.BytesWire)
}

// Listen implements vlink.Driver.
func (d *Driver) Listen(port int) (vlink.Listener, error) {
	il, err := d.inner.Listen(port)
	if err != nil {
		return nil, err
	}
	l := &listener{d: d, il: il}
	il.SetAcceptHandler(func(c vlink.Conn) {
		if l.accept != nil {
			l.accept(newConn(d, c))
		}
	})
	return l, nil
}

type listener struct {
	d      *Driver
	il     vlink.Listener
	accept func(vlink.Conn)
}

func (l *listener) SetAcceptHandler(fn func(vlink.Conn)) { l.accept = fn }
func (l *listener) Close()                               { l.il.Close() }

// Dial implements vlink.Driver.
func (d *Driver) Dial(addr vlink.Addr, cb func(vlink.Conn, error)) {
	d.inner.Dial(addr, func(c vlink.Conn, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(newConn(d, c), nil)
	})
}

// conn compresses writes and decompresses reads.
type conn struct {
	d        *Driver
	inner    vlink.Conn
	backlog  int        // bytes accepted but not yet flushed to inner
	wHorizon vtime.Time // serializes frame emission (compressor is one CPU)

	fp   []byte
	rx   []byte
	eof  bool
	rbuf []byte
	rcb  func(int, error)
}

const chunkHdrLen = 9

func newConn(d *Driver, inner vlink.Conn) *conn {
	c := &conn{d: d, inner: inner}
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		c.feed(buf[:n])
		if err != nil {
			c.eof = true
			c.tryComplete()
			return
		}
		inner.PostRead(buf, pump)
	}
	inner.PostRead(buf, pump)
	return c
}

// Kernel lets VLink charge costs on the right kernel.
func (c *conn) Kernel() *vtime.Kernel { return c.d.k }

// Peer implements vlink.Conn.
func (c *conn) Peer() topology.NodeID { return c.inner.Peer() }

// level picks the compression level from the current backlog: an
// uncongested link gets cheap level 1; a congested one is worth more
// CPU (AdOC's adaptation rule).
func (c *conn) level() int {
	switch {
	case c.backlog > 8*ChunkSize:
		return 9
	case c.backlog > 4*ChunkSize:
		return 6
	case c.backlog > ChunkSize:
		return 3
	default:
		return 1
	}
}

// PostWrite implements vlink.Conn.
func (c *conn) PostWrite(data []byte, cb func(int, error)) {
	total := len(data)
	nchunks := (total + ChunkSize - 1) / ChunkSize
	if nchunks == 0 {
		cb(0, nil)
		return
	}
	completed := 0
	for off := 0; off < total; off += ChunkSize {
		end := off + ChunkSize
		if end > total {
			end = total
		}
		chunk := data[off:end]
		lvl := c.level()
		comp, ok := deflateChunk(chunk, lvl)
		if !ok {
			lvl = 0
			comp = chunk
		}
		hdr := make([]byte, chunkHdrLen, chunkHdrLen+len(comp))
		hdr[0] = byte(lvl)
		binary.BigEndian.PutUint32(hdr[1:], uint32(len(chunk)))
		binary.BigEndian.PutUint32(hdr[5:], uint32(len(comp)))
		frame := append(hdr, comp...)
		c.d.BytesIn += int64(len(chunk))
		c.d.BytesWire += int64(len(frame))
		c.backlog += len(frame)
		// CPU cost of deflate scales with level. Frames must leave in
		// order, so each is scheduled after the previous one's cost on a
		// per-connection horizon (one compressor CPU).
		cost := model.CompressPerByte.Cost(len(chunk)) * vtime.Duration(1+lvl) / 5
		now := c.d.k.Now()
		if c.wHorizon < now {
			c.wHorizon = now
		}
		c.wHorizon = c.wHorizon.Add(cost)
		c.d.k.At(c.wHorizon, func() {
			c.inner.PostWrite(frame, func(n int, err error) {
				c.backlog -= len(frame)
				completed++
				if completed == nchunks {
					cb(total, err)
				}
			})
		})
	}
}

// feed parses inbound frames and inflates them.
func (c *conn) feed(data []byte) {
	c.fp = append(c.fp, data...)
	for len(c.fp) >= chunkHdrLen {
		lvl := int(c.fp[0])
		orig := int(binary.BigEndian.Uint32(c.fp[1:]))
		clen := int(binary.BigEndian.Uint32(c.fp[5:]))
		if len(c.fp) < chunkHdrLen+clen {
			break
		}
		comp := c.fp[chunkHdrLen : chunkHdrLen+clen]
		var out []byte
		if lvl == 0 {
			out = append([]byte(nil), comp...)
		} else {
			r := flate.NewReader(bytes.NewReader(comp))
			out = make([]byte, orig)
			if _, err := io.ReadFull(r, out); err != nil {
				panic(fmt.Sprintf("adoc: corrupt frame: %v", err))
			}
			r.Close()
		}
		c.fp = c.fp[chunkHdrLen+clen:]
		c.rx = append(c.rx, out...)
	}
	c.tryComplete()
}

func (c *conn) tryComplete() {
	if c.rcb == nil || (len(c.rx) == 0 && !c.eof) {
		return
	}
	n := copy(c.rbuf, c.rx)
	c.rx = c.rx[n:]
	cb := c.rcb
	c.rcb, c.rbuf = nil, nil
	var err error
	if n == 0 && c.eof {
		err = io.EOF
	}
	cb(n, err)
}

// PostRead implements vlink.Conn.
func (c *conn) PostRead(buf []byte, cb func(int, error)) {
	if c.rcb != nil {
		panic("adoc: overlapping PostRead")
	}
	c.rbuf, c.rcb = buf, cb
	c.tryComplete()
}

// Close implements vlink.Conn.
func (c *conn) Close() { c.inner.Close() }

// deflateChunk compresses data; ok is false when compression does not
// pay (incompressible input).
func deflateChunk(data []byte, level int) ([]byte, bool) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, false
	}
	w.Write(data)
	w.Close()
	if buf.Len() >= len(data) {
		return nil, false
	}
	return buf.Bytes(), true
}
