// Package adoc implements AdOC-style adaptive online compression (paper
// §3.2, citing Jeannot/Knutsson/Björkman): a VLink wrapper driver that
// deflates each chunk before it reaches the inner link, choosing the
// compression level adaptively — when the network is the bottleneck
// (send backlog grows) it compresses harder; when the CPU would become
// the bottleneck it backs off to light levels.
//
// Wire format per chunk: [1B level][4B origLen][4B compLen][compressed]
// where level 0 means "stored" (incompressible data passes through).
package adoc

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"padico/internal/iovec"
	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ChunkSize bounds the unit of compression.
const ChunkSize = 32 << 10

// Driver decorates an inner VLink driver with adaptive compression.
type Driver struct {
	k     *vtime.Kernel
	inner vlink.Driver

	// Stats
	BytesIn   int64 // pre-compression
	BytesWire int64 // post-compression
}

// New builds an AdOC driver over inner.
func New(k *vtime.Kernel, inner vlink.Driver) *Driver {
	return &Driver{k: k, inner: inner}
}

// Name implements vlink.Driver.
func (d *Driver) Name() string { return "adoc" }

// Ratio returns the achieved compression ratio so far (1 = none).
func (d *Driver) Ratio() float64 {
	if d.BytesWire == 0 {
		return 1
	}
	return float64(d.BytesIn) / float64(d.BytesWire)
}

// Listen implements vlink.Driver.
func (d *Driver) Listen(port int) (vlink.Listener, error) {
	il, err := d.inner.Listen(port)
	if err != nil {
		return nil, err
	}
	l := &listener{d: d, il: il}
	il.SetAcceptHandler(func(c vlink.Conn) {
		if l.accept != nil {
			l.accept(newConn(d, c))
		}
	})
	return l, nil
}

type listener struct {
	d      *Driver
	il     vlink.Listener
	accept func(vlink.Conn)
}

func (l *listener) SetAcceptHandler(fn func(vlink.Conn)) { l.accept = fn }
func (l *listener) Close()                               { l.il.Close() }

// Dial implements vlink.Driver.
func (d *Driver) Dial(addr vlink.Addr, cb func(vlink.Conn, error)) {
	d.inner.Dial(addr, func(c vlink.Conn, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(newConn(d, c), nil)
	})
}

// conn compresses writes and decompresses reads.
type conn struct {
	d        *Driver
	inner    vlink.Conn
	backlog  int        // bytes accepted but not yet flushed to inner
	wHorizon vtime.Time // serializes frame emission (compressor is one CPU)

	// Per-level cached deflaters and their shared output staging: one
	// compressor CPU per connection, so reuse is race-free and the
	// per-chunk flate.NewWriter allocation disappears. The read side
	// caches the inflater and its source reader the same way.
	fw   map[int]*flate.Writer
	cbuf bytes.Buffer
	fr   io.ReadCloser
	crd  bytes.Reader

	fp   iovec.Fifo
	rx   iovec.Fifo
	eof  bool
	rbuf []byte
	rcb  func(int, error)
}

const chunkHdrLen = 9

func newConn(d *Driver, inner vlink.Conn) *conn {
	c := &conn{d: d, inner: inner}
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		c.feed(buf[:n])
		if err != nil {
			c.eof = true
			c.tryComplete()
			return
		}
		inner.PostRead(buf, pump)
	}
	inner.PostRead(buf, pump)
	return c
}

// Kernel lets VLink charge costs on the right kernel.
func (c *conn) Kernel() *vtime.Kernel { return c.d.k }

// Peer implements vlink.Conn.
func (c *conn) Peer() topology.NodeID { return c.inner.Peer() }

// level picks the compression level from the current backlog: an
// uncongested link gets cheap level 1; a congested one is worth more
// CPU (AdOC's adaptation rule).
func (c *conn) level() int {
	switch {
	case c.backlog > 8*ChunkSize:
		return 9
	case c.backlog > 4*ChunkSize:
		return 6
	case c.backlog > ChunkSize:
		return 3
	default:
		return 1
	}
}

// PostWrite implements vlink.Conn.
func (c *conn) PostWrite(data []byte, cb func(int, error)) {
	c.PostWritev(iovec.Make(data), cb)
}

// PostWritev implements vlink.VecConn. Compression transforms bytes,
// so this wrapper's contract is "copy exactly once into a pooled
// buffer": each chunk is deflated (or, when incompressible, copied
// verbatim) straight into the pooled frame that travels down the inner
// link, and the frame is released when the inner driver accepted it.
func (c *conn) PostWritev(v iovec.Vec, cb func(int, error)) {
	total := v.Len()
	nchunks := (total + ChunkSize - 1) / ChunkSize
	if nchunks == 0 {
		cb(0, nil)
		return
	}
	completed := 0
	var stage *iovec.Buf // contiguous chunk staging when a chunk spans segments
	for off := 0; off < total; off += ChunkSize {
		end := off + ChunkSize
		if end > total {
			end = total
		}
		chunk := contiguous(v, off, end-off, &stage)
		lvl := c.level()
		comp, ok := c.deflateChunk(chunk, lvl)
		if !ok {
			lvl = 0
			comp = chunk
		}
		frame := iovec.Get(chunkHdrLen + len(comp))
		fb := frame.Bytes()
		fb[0] = byte(lvl)
		binary.BigEndian.PutUint32(fb[1:], uint32(len(chunk)))
		binary.BigEndian.PutUint32(fb[5:], uint32(len(comp)))
		copy(fb[chunkHdrLen:], comp)
		c.d.BytesIn += int64(len(chunk))
		c.d.BytesWire += int64(len(fb))
		c.backlog += len(fb)
		// CPU cost of deflate scales with level. Frames must leave in
		// order, so each is scheduled after the previous one's cost on a
		// per-connection horizon (one compressor CPU).
		cost := model.CompressPerByte.Cost(len(chunk)) * vtime.Duration(1+lvl) / 5
		now := c.d.k.Now()
		if c.wHorizon < now {
			c.wHorizon = now
		}
		c.wHorizon = c.wHorizon.Add(cost)
		flen := len(fb)
		c.d.k.ScheduleAt(c.wHorizon, func() {
			c.inner.PostWrite(frame.Bytes(), func(n int, err error) {
				frame.Release()
				c.backlog -= flen
				completed++
				if completed == nchunks {
					cb(total, err)
				}
			})
		})
	}
	if stage != nil {
		stage.Release()
	}
}

// contiguous returns chunk [off, off+n) of v as one byte slice: a
// direct view when the range sits inside one segment, otherwise a copy
// into a reused pooled staging buffer (*stage).
func contiguous(v iovec.Vec, off, n int, stage **iovec.Buf) []byte {
	rem := off
	for _, s := range v.Segs {
		if rem < len(s.B) {
			if rem+n <= len(s.B) {
				return s.B[rem : rem+n]
			}
			break
		}
		rem -= len(s.B)
	}
	if *stage == nil || len((*stage).Bytes()) < n {
		if *stage != nil {
			(*stage).Release()
		}
		*stage = iovec.Get(ChunkSize)
	}
	dst := (*stage).Bytes()[:n]
	sl := v.Slice(off, n)
	sl.CopyTo(dst)
	sl.Release()
	return dst
}

// feed parses inbound frames and inflates them.
func (c *conn) feed(data []byte) {
	c.fp.Write(data)
	for c.fp.Len() >= chunkHdrLen {
		fb := c.fp.Bytes()
		lvl := int(fb[0])
		orig := int(binary.BigEndian.Uint32(fb[1:]))
		clen := int(binary.BigEndian.Uint32(fb[5:]))
		if c.fp.Len() < chunkHdrLen+clen {
			break
		}
		comp := fb[chunkHdrLen : chunkHdrLen+clen]
		if lvl == 0 {
			c.rx.Write(comp)
		} else {
			// Inflate straight into the reassembly buffer through the
			// cached inflater (no intermediate chunk materialization).
			c.crd.Reset(comp)
			if c.fr == nil {
				c.fr = flate.NewReader(&c.crd)
			} else if err := c.fr.(flate.Resetter).Reset(&c.crd, nil); err != nil {
				panic(fmt.Sprintf("adoc: inflater reset: %v", err))
			}
			if _, err := io.ReadFull(c.fr, c.rx.Grow(orig)); err != nil {
				panic(fmt.Sprintf("adoc: corrupt frame: %v", err))
			}
		}
		c.fp.Consume(chunkHdrLen + clen)
	}
	c.tryComplete()
}

func (c *conn) tryComplete() {
	if c.rcb == nil || (c.rx.Len() == 0 && !c.eof) {
		return
	}
	n := copy(c.rbuf, c.rx.Bytes())
	c.rx.Consume(n)
	cb := c.rcb
	c.rcb, c.rbuf = nil, nil
	var err error
	if n == 0 && c.eof {
		err = io.EOF
	}
	cb(n, err)
}

// PostRead implements vlink.Conn.
func (c *conn) PostRead(buf []byte, cb func(int, error)) {
	if c.rcb != nil {
		panic("adoc: overlapping PostRead")
	}
	c.rbuf, c.rcb = buf, cb
	c.tryComplete()
}

// Close implements vlink.Conn.
func (c *conn) Close() { c.inner.Close() }

// deflateChunk compresses data into the connection's reused staging
// buffer; ok is false when compression does not pay (incompressible
// input). The returned slice aliases c.cbuf and is consumed (copied
// into the outgoing frame) before the next chunk resets it.
func (c *conn) deflateChunk(data []byte, level int) ([]byte, bool) {
	if c.fw == nil {
		c.fw = make(map[int]*flate.Writer)
	}
	c.cbuf.Reset()
	w, ok := c.fw[level]
	if !ok {
		var err error
		w, err = flate.NewWriter(&c.cbuf, level)
		if err != nil {
			return nil, false
		}
		c.fw[level] = w
	} else {
		w.Reset(&c.cbuf)
	}
	w.Write(data)
	w.Close()
	if c.cbuf.Len() >= len(data) {
		return nil, false
	}
	return c.cbuf.Bytes(), true
}
