// Package pstreams implements the Parallel Streams communication method
// (paper §3.2): a single logical link striped over several TCP sockets,
// so that on a high-bandwidth high-latency WAN each isolated packet
// loss (or a too-small per-socket window) hurts only one stripe. This
// is the mechanism behind the paper's VTHD result: one stream reaches
// 9 MB/s, parallel streams reach the access link's 12 MB/s.
//
// pstreams is a VLink driver that decorates an inner driver (normally
// sysio): dialing opens N inner connections, writes are striped in
// fixed-size chunks with sequence headers, and the receiver reassembles
// the byte stream in order.
package pstreams

import (
	"encoding/binary"
	"fmt"
	"io"

	"padico/internal/iovec"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ChunkSize is the striping unit.
const ChunkSize = 32 << 10

// Driver implements vlink.Driver with N-way striping over an inner
// driver.
type Driver struct {
	k       *vtime.Kernel
	inner   vlink.Driver
	streams int
	nextLID uint64
	node    topology.NodeID
}

// New builds a pstreams driver striping over n connections of inner.
func New(k *vtime.Kernel, node topology.NodeID, inner vlink.Driver, n int) *Driver {
	if n < 1 {
		n = 1
	}
	return &Driver{k: k, inner: inner, streams: n, node: node}
}

// Name implements vlink.Driver.
func (d *Driver) Name() string { return "pstreams" }

// Streams returns the striping width.
func (d *Driver) Streams() int { return d.streams }

// Listen implements vlink.Driver: inbound inner connections are grouped
// by link id from their preamble until the announced width is reached.
func (d *Driver) Listen(port int) (vlink.Listener, error) {
	il, err := d.inner.Listen(port)
	if err != nil {
		return nil, err
	}
	l := &listener{d: d, il: il, pending: make(map[uint64]*pendingLink)}
	il.SetAcceptHandler(l.onInner)
	return l, nil
}

type listener struct {
	d       *Driver
	il      vlink.Listener
	accept  func(vlink.Conn)
	pending map[uint64]*pendingLink
}

type pendingLink struct {
	want  int
	conns []vlink.Conn
}

// preamble: [8B linkID][1B index][1B total]
const preambleLen = 10

func (l *listener) onInner(c vlink.Conn) {
	buf := make([]byte, preambleLen)
	got := 0
	var pump func(n int, err error)
	pump = func(n int, err error) {
		got += n
		if err != nil {
			c.Close()
			return
		}
		if got < preambleLen {
			c.PostRead(buf[got:], pump)
			return
		}
		lid := binary.BigEndian.Uint64(buf)
		idx := int(buf[8])
		total := int(buf[9])
		pl, ok := l.pending[lid]
		if !ok {
			pl = &pendingLink{want: total, conns: make([]vlink.Conn, total)}
			l.pending[lid] = pl
		}
		pl.conns[idx] = c
		for _, cc := range pl.conns {
			if cc == nil {
				return
			}
		}
		delete(l.pending, lid)
		pc := newConn(l.d, pl.conns)
		if l.accept != nil {
			l.accept(pc)
		}
	}
	c.PostRead(buf, pump)
}

// SetAcceptHandler implements vlink.Listener.
func (l *listener) SetAcceptHandler(fn func(vlink.Conn)) { l.accept = fn }

// Close implements vlink.Listener.
func (l *listener) Close() { l.il.Close() }

// Dial implements vlink.Driver.
func (d *Driver) Dial(addr vlink.Addr, cb func(vlink.Conn, error)) {
	d.nextLID++
	lid := d.nextLID ^ (uint64(d.node) << 48) // unique across dialing nodes
	conns := make([]vlink.Conn, d.streams)
	remaining := d.streams
	failed := false
	for i := 0; i < d.streams; i++ {
		i := i
		d.inner.Dial(addr, func(c vlink.Conn, err error) {
			if err != nil {
				if !failed {
					failed = true
					cb(nil, fmt.Errorf("pstreams: stripe %d: %w", i, err))
				}
				return
			}
			pre := make([]byte, preambleLen)
			binary.BigEndian.PutUint64(pre, lid)
			pre[8] = byte(i)
			pre[9] = byte(d.streams)
			c.PostWrite(pre, func(int, error) {})
			conns[i] = c
			remaining--
			if remaining == 0 && !failed {
				cb(newConn(d, conns), nil)
			}
		})
	}
}

// conn is the striped logical connection.
type conn struct {
	d       *Driver
	streams []vlink.Conn
	nextW   int    // round-robin writer cursor
	seqW    uint64 // next chunk sequence number

	// Reassembly.
	nextSeq uint64
	stash   map[uint64]*iovec.Buf
	rx      iovec.Fifo
	eofs    int
	rbuf    []byte
	rcb     func(int, error)
}

// chunk header: [8B seq][4B len]
const chunkHdrLen = 12

func newConn(d *Driver, streams []vlink.Conn) *conn {
	c := &conn{d: d, streams: streams, stash: make(map[uint64]*iovec.Buf)}
	// Size per-stripe socket windows so the aggregate slightly exceeds
	// the path BDP instead of multiplying the default window by the
	// stripe count (which would just fill bottleneck queues and drop).
	if len(streams) > 1 {
		per := 3 * 160 << 10 / (2 * len(streams))
		for _, s := range streams {
			if bs, ok := s.(interface{ SetBuffers(snd, rcv int) }); ok {
				bs.SetBuffers(per, per)
			}
		}
	}
	for _, s := range streams {
		c.startReader(s)
	}
	return c
}

// Kernel lets VLink charge costs on the right kernel.
func (c *conn) Kernel() *vtime.Kernel { return c.d.k }

// Peer implements vlink.Conn.
func (c *conn) Peer() topology.NodeID { return c.streams[0].Peer() }

// startReader pumps one stripe into the reassembler.
func (c *conn) startReader(s vlink.Conn) {
	var fp iovec.Fifo
	buf := make([]byte, ChunkSize+chunkHdrLen)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		fp.Write(buf[:n])
		for fp.Len() >= chunkHdrLen {
			fb := fp.Bytes()
			seq := binary.BigEndian.Uint64(fb)
			ln := int(binary.BigEndian.Uint32(fb[8:]))
			if fp.Len() < chunkHdrLen+ln {
				break
			}
			stashed := iovec.Get(ln)
			copy(stashed.Bytes(), fb[chunkHdrLen:chunkHdrLen+ln])
			c.stash[seq] = stashed
			fp.Consume(chunkHdrLen + ln)
		}
		c.drain()
		if err != nil {
			c.eofs++
			if c.eofs == len(c.streams) {
				c.drain() // deliver EOF if a read is pending
			}
			return
		}
		s.PostRead(buf, pump)
	}
	s.PostRead(buf, pump)
}

// drain moves in-order chunks to rx and completes a pending read.
func (c *conn) drain() {
	for {
		chunk, ok := c.stash[c.nextSeq]
		if !ok {
			break
		}
		delete(c.stash, c.nextSeq)
		c.nextSeq++
		c.rx.Write(chunk.Bytes())
		chunk.Release()
	}
	if c.rcb == nil {
		return
	}
	if c.rx.Len() == 0 {
		if c.eofs == len(c.streams) {
			cb := c.rcb
			c.rcb, c.rbuf = nil, nil
			cb(0, io.EOF)
		}
		return
	}
	n := copy(c.rbuf, c.rx.Bytes())
	c.rx.Consume(n)
	cb := c.rcb
	c.rcb, c.rbuf = nil, nil
	cb(n, nil)
}

// PostRead implements vlink.Conn.
func (c *conn) PostRead(buf []byte, cb func(int, error)) {
	if c.rcb != nil {
		panic("pstreams: overlapping PostRead")
	}
	c.rbuf, c.rcb = buf, cb
	c.drain()
}

// PostWrite implements vlink.Conn.
func (c *conn) PostWrite(data []byte, cb func(int, error)) {
	c.PostWritev(iovec.Make(data), cb)
}

// PostWritev implements vlink.VecConn: stripe the vector round-robin in
// ChunkSize units with sequence headers. Striping transforms no bytes,
// so it adds zero copies — each chunk frame is a pooled 12-byte header
// segment plus retained views of the caller's vector, released when the
// stripe's driver accepted (copied or owned) the frame. The completion
// fires once every stripe accepted its chunks.
func (c *conn) PostWritev(v iovec.Vec, cb func(int, error)) {
	total := v.Len()
	nchunks := (total + ChunkSize - 1) / ChunkSize
	if nchunks == 0 {
		cb(0, nil)
		return
	}
	completed := 0
	for off := 0; off < total; off += ChunkSize {
		end := off + ChunkSize
		if end > total {
			end = total
		}
		hdr := iovec.Get(chunkHdrLen)
		binary.BigEndian.PutUint64(hdr.Bytes(), c.seqW)
		binary.BigEndian.PutUint32(hdr.Bytes()[8:], uint32(end-off))
		c.seqW++
		frame := iovec.Owned(hdr)
		v.SliceInto(&frame, off, end-off)
		s := c.streams[c.nextW]
		c.nextW = (c.nextW + 1) % len(c.streams)
		postv(s, frame, func(int, error) {
			frame.Release()
			completed++
			if completed == nchunks {
				cb(total, nil)
			}
		})
	}
}

// postv writes a vector through a stripe, flattening once if the inner
// driver has no vector support.
func postv(s vlink.Conn, frame iovec.Vec, cb func(int, error)) {
	if vc, ok := s.(vlink.VecConn); ok {
		vc.PostWritev(frame, cb)
		return
	}
	flat := frame.Flatten()
	s.PostWrite(flat.Bytes(), func(n int, err error) {
		flat.Release()
		cb(n, err)
	})
}

// Close implements vlink.Conn.
func (c *conn) Close() {
	for _, s := range c.streams {
		s.Close()
	}
}
