package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"padico/internal/topology"
	"padico/internal/vtime"
)

func TestCrossbarLatencyAndSerialization(t *testing.T) {
	k := vtime.NewKernel()
	xb := NewCrossbar(k, topology.Myrinet, 250e6, 650*time.Nanosecond, 2*time.Microsecond)
	var arrivals []vtime.Time
	xb.Attach(0, func(pkt *Packet) {})
	xb.Attach(1, func(pkt *Packet) { arrivals = append(arrivals, k.Now()) })
	err := k.Run(func(p *vtime.Proc) {
		// Two back-to-back 4096-byte packets from the same source must
		// serialize: second arrives one tx-time after the first.
		xb.Send(&Packet{Src: 0, Dst: 1, Wire: 4096})
		xb.Send(&Packet{Src: 0, Dst: 1, Wire: 4096})
		p.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	tx := time.Duration(4096.0/250e6*1e9) + 650*time.Nanosecond
	want1 := vtime.Time(0).Add(tx + 2*time.Microsecond)
	want2 := vtime.Time(0).Add(2*tx + 2*time.Microsecond)
	if arrivals[0] != want1 || arrivals[1] != want2 {
		t.Fatalf("arrivals = %v, want [%v %v]", arrivals, want1, want2)
	}
}

func TestCrossbarDistinctSourcesDoNotSerialize(t *testing.T) {
	k := vtime.NewKernel()
	xb := NewCrossbar(k, topology.Myrinet, 250e6, 0, time.Microsecond)
	var arrivals []vtime.Time
	xb.Attach(0, func(*Packet) {})
	xb.Attach(1, func(*Packet) {})
	xb.Attach(2, func(*Packet) { arrivals = append(arrivals, k.Now()) })
	err := k.Run(func(p *vtime.Proc) {
		xb.Send(&Packet{Src: 0, Dst: 2, Wire: 1000})
		xb.Send(&Packet{Src: 1, Dst: 2, Wire: 1000})
		p.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 || arrivals[0] != arrivals[1] {
		t.Fatalf("independent sources should arrive together: %v", arrivals)
	}
}

func TestCrossbarPayloadIntegrity(t *testing.T) {
	k := vtime.NewKernel()
	xb := NewCrossbar(k, topology.Myrinet, 250e6, 0, time.Microsecond)
	var got []byte
	xb.Attach(0, func(*Packet) {})
	xb.Attach(1, func(pkt *Packet) { got = pkt.Payload })
	err := k.Run(func(p *vtime.Proc) {
		xb.Send(&Packet{Src: 0, Dst: 1, Payload: []byte("hello grid"), Wire: 10})
		p.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello grid" {
		t.Fatalf("payload = %q", got)
	}
}

func TestLANStoreAndForward(t *testing.T) {
	k := vtime.NewKernel()
	lan := NewSwitchedLAN(k, 12.5e6, 38, 30*time.Microsecond, 0, 1)
	var at vtime.Time
	lan.Attach(0, func(*Packet) {})
	lan.Attach(1, func(pkt *Packet) { at = k.Now() })
	err := k.Run(func(p *vtime.Proc) {
		lan.Send(&Packet{Src: 0, Dst: 1, Wire: 1462}) // 1500-byte frame
		p.Sleep(10 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Store-and-forward: frame crosses ingress then egress, 120 µs each
	// at 12.5 MB/s, + 30 µs switch latency.
	frameTx := time.Duration(1500.0 / 12.5e6 * 1e9)
	want := vtime.Time(0).Add(2*frameTx + 30*time.Microsecond)
	if at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestLANLossIsDeterministic(t *testing.T) {
	run := func() int64 {
		k := vtime.NewKernel()
		lan := NewSwitchedLAN(k, 12.5e6, 38, time.Microsecond, 0.3, 42)
		lan.Attach(0, func(*Packet) {})
		lan.Attach(1, func(*Packet) {})
		_ = k.Run(func(p *vtime.Proc) {
			for i := 0; i < 1000; i++ {
				lan.Send(&Packet{Src: 0, Dst: 1, Wire: 100})
			}
			p.Sleep(time.Second)
		})
		return lan.Drops
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("loss not deterministic: %d vs %d", d1, d2)
	}
	if d1 < 200 || d1 > 400 {
		t.Fatalf("drops = %d out of 1000 at p=0.3", d1)
	}
}

// TestPathLossIsDeterministic pins the reproducibility contract: the
// loss RNG is per-path and seeded, so two runs with the same seed
// produce identical drop counts and identical delivery instants, while
// a different seed produces a different drop pattern.
func TestPathLossIsDeterministic(t *testing.T) {
	run := func(seed int64) (int64, []vtime.Time) {
		k := vtime.NewKernel()
		path := NewPath(k, "lossy", seed,
			&Hop{Name: "l", Rate: 1e6, Latency: time.Millisecond, Loss: 0.2, QueueCap: 1 << 20})
		var arrivals []vtime.Time
		path.SetDeliver(func(*Packet) { arrivals = append(arrivals, k.Now()) })
		_ = k.Run(func(p *vtime.Proc) {
			for i := 0; i < 500; i++ {
				path.Send(&Packet{Wire: 500})
			}
			p.Sleep(time.Second)
		})
		return path.Drops(), arrivals
	}
	d1, a1 := run(7)
	d2, a2 := run(7)
	if d1 != d2 || len(a1) != len(a2) {
		t.Fatalf("same seed diverged: %d/%d drops, %d/%d deliveries", d1, d2, len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a1[i], a2[i])
		}
	}
	if d1 < 50 || d1 > 150 {
		t.Fatalf("drops = %d of 500 at p=0.2", d1)
	}
	d3, _ := run(8)
	if d3 == d1 {
		t.Fatal("different seeds produced identical drop counts (suspicious)")
	}
}

func TestPathThroughputMatchesBottleneck(t *testing.T) {
	k := vtime.NewKernel()
	// Fast first hop, slow second: throughput set by the bottleneck.
	path := NewPath(k, "wan", 7,
		&Hop{Name: "access", Rate: 12.5e6, Latency: 30 * time.Microsecond, QueueCap: 1 << 20},
		&Hop{Name: "core", Rate: 1e6, Latency: 5 * time.Millisecond, QueueCap: 1 << 20},
	)
	var last vtime.Time
	var bytes int
	path.SetDeliver(func(pkt *Packet) { last = k.Now(); bytes += pkt.Wire })
	err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < 100; i++ {
			path.Send(&Packet{Src: 0, Dst: 1, Wire: 1000})
		}
		p.Sleep(time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 100000 {
		t.Fatalf("delivered %d bytes", bytes)
	}
	rate := float64(bytes) / last.Seconds()
	if rate < 0.9e6 || rate > 1.1e6 {
		t.Fatalf("path rate = %.3g B/s, want ~1e6", rate)
	}
}

func TestPathQueueOverflowDrops(t *testing.T) {
	k := vtime.NewKernel()
	path := NewPath(k, "narrow", 7,
		&Hop{Name: "slow", Rate: 1e5, Latency: time.Millisecond, QueueCap: 4},
	)
	delivered := 0
	path.SetDeliver(func(*Packet) { delivered++ })
	err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < 100; i++ {
			path.Send(&Packet{Wire: 1000})
		}
		p.Sleep(5 * time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if path.Drops() == 0 {
		t.Fatal("no tail drops despite tiny queue")
	}
	if delivered+int(path.Drops()) != 100 {
		t.Fatalf("delivered %d + drops %d != 100", delivered, path.Drops())
	}
}

// TestPathConditionsSchedule pins the dynamic-fabric contract: a rate
// change armed on the kernel takes effect at its virtual instant, the
// schedule is deterministic across runs, and byte accounting follows
// the packets that actually serialized.
func TestPathConditionsSchedule(t *testing.T) {
	run := func() (vtime.Time, int64) {
		k := vtime.NewKernel()
		hop := &Hop{Name: "core", Rate: 10e6, Latency: time.Millisecond, QueueCap: 1 << 20}
		path := NewPath(k, "wan", 7, hop)
		var last vtime.Time
		path.SetDeliver(func(*Packet) { last = k.Now() })
		// Degrade to a tenth of the rate at t=5ms.
		ScheduleRate(k, vtime.Time(0).Add(5*time.Millisecond), hop, 1e6)
		err := k.Run(func(p *vtime.Proc) {
			for i := 0; i < 100; i++ {
				path.Send(&Packet{Wire: 1000}) // 100 µs each at 10 MB/s
			}
			p.Sleep(10 * time.Millisecond)
			for i := 0; i < 100; i++ {
				path.Send(&Packet{Wire: 1000}) // 1 ms each at 1 MB/s
			}
			p.Sleep(200 * time.Millisecond)
		})
		if err != nil {
			t.Fatal(err)
		}
		return last, hop.Bytes
	}
	last, bytes := run()
	// Second burst starts at 10 ms and serializes at 1 MB/s: 100 ms of
	// wire time + 1 ms latency.
	want := vtime.Time(0).Add(10*time.Millisecond + 100*time.Millisecond + time.Millisecond)
	if last != want {
		t.Fatalf("last delivery = %v, want %v", last, want)
	}
	if bytes != 200000 {
		t.Fatalf("hop bytes = %d, want 200000", bytes)
	}
	last2, bytes2 := run()
	if last2 != last || bytes2 != bytes {
		t.Fatalf("schedule not deterministic: %v/%d vs %v/%d", last, bytes, last2, bytes2)
	}
}

// TestLANConditionsSchedule: LAN conditions are schedulable like hop
// conditions — a rate change armed on the kernel takes effect at its
// instant for packets sent afterwards.
func TestLANConditionsSchedule(t *testing.T) {
	k := vtime.NewKernel()
	lan := NewSwitchedLAN(k, 10e6, 0, time.Microsecond, 0, 1)
	var arrivals []vtime.Time
	lan.Attach(0, func(*Packet) {})
	lan.Attach(1, func(*Packet) { arrivals = append(arrivals, k.Now()) })
	k.At(vtime.Time(0).Add(5*time.Millisecond), func() { lan.SetRate(1e6) })
	k.At(vtime.Time(0).Add(50*time.Millisecond), func() { lan.SetLoss(1.0) })
	err := k.Run(func(p *vtime.Proc) {
		lan.Send(&Packet{Src: 0, Dst: 1, Wire: 10000}) // 1 ms/side at 10 MB/s
		p.Sleep(10 * time.Millisecond)
		lan.Send(&Packet{Src: 0, Dst: 1, Wire: 10000}) // 10 ms/side at 1 MB/s
		p.Sleep(50 * time.Millisecond)
		lan.Send(&Packet{Src: 0, Dst: 1, Wire: 10000}) // loss=1: dropped
		p.Sleep(100 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	want1 := vtime.Time(0).Add(2*time.Millisecond + time.Microsecond)
	want2 := vtime.Time(0).Add(10*time.Millisecond + 20*time.Millisecond + time.Microsecond)
	if len(arrivals) != 2 || arrivals[0] != want1 || arrivals[1] != want2 {
		t.Fatalf("arrivals = %v, want [%v %v]", arrivals, want1, want2)
	}
	if lan.Drops != 1 {
		t.Fatalf("drops = %d, want 1 after SetLoss(1)", lan.Drops)
	}
}

// TestPathOutageAndRestore pins outage semantics: while down every
// packet is dropped (and counted); after restore traffic flows again.
func TestPathOutageAndRestore(t *testing.T) {
	k := vtime.NewKernel()
	hop := &Hop{Name: "core", Rate: 1e6, Latency: time.Millisecond, QueueCap: 1 << 20}
	path := NewPath(k, "wan", 7, hop)
	delivered := 0
	path.SetDeliver(func(*Packet) { delivered++ })
	down := vtime.Time(0).Add(10 * time.Millisecond)
	up := vtime.Time(0).Add(20 * time.Millisecond)
	ScheduleOutage(k, down, up, hop)
	dropHits := 0
	err := k.Run(func(p *vtime.Proc) {
		send := func() {
			path.Send(&Packet{Wire: 100, Drop: func() { dropHits++ }})
		}
		send() // healthy
		p.Sleep(15 * time.Millisecond)
		if !hop.Down() {
			t.Fatal("hop should be down at t=15ms")
		}
		send() // during outage: dropped
		p.Sleep(10 * time.Millisecond)
		if hop.Down() {
			t.Fatal("hop should be restored at t=25ms")
		}
		send() // restored
		p.Sleep(10 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 || hop.Drops != 1 || dropHits != 1 {
		t.Fatalf("delivered=%d drops=%d dropHooks=%d, want 2/1/1", delivered, hop.Drops, dropHits)
	}
}

func TestLoopback(t *testing.T) {
	k := vtime.NewKernel()
	lo := NewLoopback(k, 500*time.Nanosecond)
	var at vtime.Time
	lo.Attach(0, func(*Packet) { at = k.Now() })
	err := k.Run(func(p *vtime.Proc) {
		lo.Send(&Packet{Dst: 0, Wire: 64})
		p.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != vtime.Time(500) {
		t.Fatalf("loopback arrival = %v", at)
	}
}

// Property: on a loss-free crossbar, every packet sent is delivered
// exactly once, in per-source FIFO order.
func TestQuickCrossbarFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		k := vtime.NewKernel()
		xb := NewCrossbar(k, topology.Myrinet, 250e6, 0, time.Microsecond)
		var got []int
		xb.Attach(0, func(*Packet) {})
		xb.Attach(1, func(pkt *Packet) { got = append(got, pkt.Meta.(int)) })
		err := k.Run(func(p *vtime.Proc) {
			for i, s := range sizes {
				xb.Send(&Packet{Src: 0, Dst: 1, Wire: int(s) + 1, Meta: i})
			}
			p.Sleep(time.Second)
		})
		if err != nil || len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyGridDescription(t *testing.T) {
	g := topology.New()
	myri := g.AddNetwork("myri0", topology.Myrinet, true, 250e6, 2*time.Microsecond, 0, 0)
	eth := g.AddNetwork("eth0", topology.Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	a := g.AddNode("n0", "rennes")
	b := g.AddNode("n1", "rennes")
	c := g.AddNode("n2", "lyon")
	g.Attach(a, myri)
	g.Attach(b, myri)
	g.Attach(a, eth)
	g.Attach(b, eth)
	g.Attach(c, eth)

	if !g.SameSite(a.ID, b.ID) || g.SameSite(a.ID, c.ID) {
		t.Fatal("site classification wrong")
	}
	common := g.Common(a.ID, b.ID)
	if len(common) != 2 || common[0] != myri {
		t.Fatalf("common(a,b) = %v", common)
	}
	if got := g.Common(a.ID, c.ID); len(got) != 1 || got[0] != eth {
		t.Fatalf("common(a,c) should be eth only")
	}
	if ms := myri.Members(); len(ms) != 2 || ms[0] != a.ID || ms[1] != b.ID {
		t.Fatalf("myrinet members = %v", ms)
	}
	if !topology.Myrinet.Parallel() || topology.Ethernet.Parallel() {
		t.Fatal("paradigm classification wrong")
	}
}
