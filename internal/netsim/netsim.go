// Package netsim simulates the grid's networking hardware on the vtime
// kernel: a Myrinet-like crossbar SAN, a switched Ethernet LAN, and
// multi-hop WAN paths with configurable rate, latency, loss and queues.
// Data really moves (packets carry payload bytes end to end); timing is
// virtual: each link serializes packets at its configured rate and adds
// its latency, so bandwidth and latency emerge from the same mechanics
// as on real hardware.
//
// netsim sits below the drivers (internal/drivers/*) which expose
// vendor-style APIs, and below internal/ipstack which implements UDP and
// a Reno TCP over these fabrics.
//
// All randomness (loss draws) comes from a per-fabric *rand.Rand seeded
// at construction — never the global math/rand source — so a simulation
// is bit-for-bit reproducible: the same seeds yield the same drops at
// the same virtual instants on every run.
//
// Fabric conditions are time-varying: Hop and SwitchedLAN parameters
// can change mid-simulation through SetConditions (or the Schedule*
// helpers, which arm the change as a kernel event at a fixed virtual
// instant), and a Hop can be taken down and restored outright. A
// schedule is part of the testbed description — the same schedule on
// the same seeds yields the same packet trace, so dynamic fabrics stay
// exactly as deterministic as static ones.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Packet is a unit of transmission on a fabric. Payload is real data;
// Wire is the byte count that occupies the link (payload + headers), so
// protocol overhead costs wire time even though header bytes are
// represented structurally rather than serialized.
type Packet struct {
	Src, Dst int // fabric addresses
	Payload  []byte
	Wire     int // bytes on the wire; >= len(Payload)
	Meta     any // driver/protocol data (seq numbers, flags, ...)
	// Drop, when set, is invoked (in kernel context) if a fabric drops
	// the packet — loss draw or queue overflow — instead of delivering
	// it. Protocols that attach pooled or refcounted resources to a
	// packet use it to release them; exactly one of delivery or Drop
	// happens per send.
	Drop func()
}

// dropped invokes the drop hook, if any.
func (pkt *Packet) dropped() {
	if pkt.Drop != nil {
		pkt.Drop()
	}
}

// deliverStep is a pooled one-shot "hand pkt to deliver" event: fabrics
// fire one per packet, so allocating a fresh closure each time would
// dominate the simulation's allocation profile. Each step carries a
// pre-bound run closure; recycling happens just before delivery.
type deliverStep struct {
	pool    *stepPool
	deliver DeliverFunc
	pkt     *Packet
	run     func()
}

// stepPool is a per-fabric free list (the kernel is single-threaded, so
// a plain slice is correct and deterministic).
type stepPool struct{ free []*deliverStep }

func (sp *stepPool) get(deliver DeliverFunc, pkt *Packet) *deliverStep {
	var st *deliverStep
	if n := len(sp.free); n > 0 {
		st = sp.free[n-1]
		sp.free = sp.free[:n-1]
	} else {
		st = &deliverStep{pool: sp}
		st.run = func() {
			d, p := st.deliver, st.pkt
			st.deliver, st.pkt = nil, nil
			st.pool.free = append(st.pool.free, st)
			d(p)
		}
	}
	st.deliver, st.pkt = deliver, pkt
	return st
}

// DeliverFunc receives a packet in kernel (event handler) context. It
// must not block; typical implementations push to a vtime.Queue and
// signal a poller.
type DeliverFunc func(pkt *Packet)

// Fabric is a simulated interconnect to which endpoints attach by
// address.
type Fabric interface {
	// Attach registers the delivery callback for an address.
	Attach(addr int, deliver DeliverFunc)
	// Send schedules pkt for delivery to pkt.Dst. It never blocks; flow
	// control, if any, is the caller's business.
	Send(pkt *Packet)
	// Kind reports the technology simulated by this fabric.
	Kind() topology.NetworkKind
}

// ---------------------------------------------------------------------
// Crossbar: a full-bisection SAN switch (Myrinet, SCI, VIA hardware).
// Each source port serializes its own traffic (rate + per-packet
// overhead); the switch adds a fixed latency. No loss, no contention on
// distinct destination ports (ideal crossbar).

// Crossbar simulates a SAN switch.
type Crossbar struct {
	k        *vtime.Kernel
	kind     topology.NetworkKind
	rate     float64 // bytes/s per port
	pktOverh time.Duration
	wireLat  time.Duration
	ports    map[int]DeliverFunc
	txFree   map[int]vtime.Time // per-source serialization horizon
	steps    stepPool

	// Stats
	Packets int64
	Bytes   int64
}

// NewCrossbar builds a SAN fabric with the given per-port rate,
// per-packet overhead and switch latency.
func NewCrossbar(k *vtime.Kernel, kind topology.NetworkKind, rate float64,
	pktOverhead, wireLat time.Duration) *Crossbar {
	return &Crossbar{
		k: k, kind: kind, rate: rate, pktOverh: pktOverhead, wireLat: wireLat,
		ports:  make(map[int]DeliverFunc),
		txFree: make(map[int]vtime.Time),
	}
}

// Kind implements Fabric.
func (c *Crossbar) Kind() topology.NetworkKind { return c.kind }

// Attach implements Fabric.
func (c *Crossbar) Attach(addr int, deliver DeliverFunc) {
	if _, dup := c.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: crossbar address %d attached twice", addr))
	}
	c.ports[addr] = deliver
}

// Send implements Fabric: the packet occupies the source port for
// wire/rate + overhead, then arrives after the switch latency.
func (c *Crossbar) Send(pkt *Packet) {
	deliver, ok := c.ports[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: crossbar send to unattached address %d", pkt.Dst))
	}
	now := c.k.Now()
	start := c.txFree[pkt.Src]
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(pkt.Wire)/c.rate*1e9) + c.pktOverh
	end := start.Add(txTime)
	c.txFree[pkt.Src] = end
	c.Packets++
	c.Bytes += int64(pkt.Wire)
	c.k.ScheduleAt(end.Add(c.wireLat), c.steps.get(deliver, pkt).run)
}

// ---------------------------------------------------------------------
// SwitchedLAN: store-and-forward Ethernet switch. Ingress and egress
// ports serialize independently at the port rate; frame overhead is
// added per packet; optional uniform random loss (deterministic RNG).

// SwitchedLAN simulates a switched Ethernet segment.
type SwitchedLAN struct {
	k       *vtime.Kernel
	rate    float64
	frameOH int
	wireLat time.Duration
	loss    float64
	rng     *rand.Rand
	ports   map[int]DeliverFunc
	inFree  map[int]vtime.Time
	outFree map[int]vtime.Time
	steps   lanStepPool

	Packets int64
	Drops   int64
	Bytes   int64
}

// lanStep is the switched-LAN counterpart of deliverStep: store-and-
// forward needs two stages (egress scheduling after full ingress
// reception, then delivery), so the pooled object carries both
// pre-bound closures and the per-packet transmit time.
type lanStep struct {
	pool    *lanStepPool
	s       *SwitchedLAN
	pkt     *Packet
	deliver DeliverFunc
	txTime  time.Duration
	egress  func()
	final   func()
}

type lanStepPool struct{ free []*lanStep }

func (sp *lanStepPool) get(s *SwitchedLAN, deliver DeliverFunc, pkt *Packet, txTime time.Duration) *lanStep {
	var st *lanStep
	if n := len(sp.free); n > 0 {
		st = sp.free[n-1]
		sp.free = sp.free[:n-1]
	} else {
		st = &lanStep{pool: sp}
		st.egress = func() {
			lan := st.s
			es := lan.outFree[st.pkt.Dst]
			if n := lan.k.Now(); es < n {
				es = n
			}
			outEnd := es.Add(st.txTime)
			lan.outFree[st.pkt.Dst] = outEnd
			lan.k.ScheduleAt(outEnd.Add(lan.wireLat), st.final)
		}
		st.final = func() {
			d, p := st.deliver, st.pkt
			st.s, st.deliver, st.pkt = nil, nil, nil
			st.pool.free = append(st.pool.free, st)
			d(p)
		}
	}
	st.s, st.deliver, st.pkt, st.txTime = s, deliver, pkt, txTime
	return st
}

// NewSwitchedLAN builds an Ethernet-like fabric.
func NewSwitchedLAN(k *vtime.Kernel, rate float64, frameOverhead int,
	wireLat time.Duration, loss float64, seed int64) *SwitchedLAN {
	return &SwitchedLAN{
		k: k, rate: rate, frameOH: frameOverhead, wireLat: wireLat, loss: loss,
		rng:   rand.New(rand.NewSource(seed)),
		ports: make(map[int]DeliverFunc), inFree: make(map[int]vtime.Time),
		outFree: make(map[int]vtime.Time),
	}
}

// Kind implements Fabric.
func (s *SwitchedLAN) Kind() topology.NetworkKind { return topology.Ethernet }

// SetRate changes the per-port rate for packets sent from now on.
func (s *SwitchedLAN) SetRate(rate float64) { s.rate = rate }

// SetLoss changes the uniform loss probability for packets sent from
// now on (the RNG stream is unchanged: draws happen per packet).
func (s *SwitchedLAN) SetLoss(loss float64) { s.loss = loss }

// Attach implements Fabric.
func (s *SwitchedLAN) Attach(addr int, deliver DeliverFunc) {
	if _, dup := s.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: LAN address %d attached twice", addr))
	}
	s.ports[addr] = deliver
}

// Send implements Fabric.
func (s *SwitchedLAN) Send(pkt *Packet) {
	deliver, ok := s.ports[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: LAN send to unattached address %d", pkt.Dst))
	}
	frame := pkt.Wire + s.frameOH
	txTime := time.Duration(float64(frame) / s.rate * 1e9)
	now := s.k.Now()

	// Ingress link (host -> switch).
	start := s.inFree[pkt.Src]
	if start < now {
		start = now
	}
	inEnd := start.Add(txTime)
	s.inFree[pkt.Src] = inEnd

	s.Packets++
	s.Bytes += int64(frame)
	if s.loss > 0 && s.rng.Float64() < s.loss {
		s.Drops++
		pkt.dropped()
		return // consumed ingress wire time, then vanished
	}

	// Egress link (switch -> host): store-and-forward, so egress starts
	// after full ingress reception.
	s.k.ScheduleAt(inEnd, s.steps.get(s, deliver, pkt, txTime).egress)
}

// ---------------------------------------------------------------------
// Hop and Path: WAN modelling. A Path is a unidirectional chain of hops,
// each with its own rate, latency, loss and a bounded FIFO queue
// (tail-drop). Bidirectional WAN connectivity uses two Paths.

// Hop is one store-and-forward stage of a Path. Rate, Latency and Loss
// are read at send time, so they may change mid-simulation — use
// SetConditions (or the Schedule* helpers) rather than poking the
// fields so outage state stays coherent.
type Hop struct {
	Name     string
	Rate     float64 // bytes/s
	Latency  time.Duration
	Loss     float64 // random loss probability
	QueueCap int     // max packets queued waiting for the link (0 = 64)

	free    vtime.Time
	queued  int
	down    bool
	dequeue func() // pre-bound queue drain, scheduled once per packet

	// Queue byte accounting: wire sizes of the packets currently
	// waiting for the link, drained FIFO by dequeue. FIFO order is
	// correct because free is monotonic — packets finish serializing
	// in the order they were queued.
	qbytes int64
	qsizes []int
	qhead  int

	registered bool // hop metrics bound into a registry (once)

	Packets int64
	Drops   int64
	Bytes   int64 // wire bytes that serialized onto this link
	BusyNs  int64 // cumulative serialization time: utilization numerator
}

// QueuedBytes returns the wire bytes currently waiting for the link.
func (h *Hop) QueuedBytes() int64 { return h.qbytes }

// RegisterHopMetrics binds a hop's utilization and backpressure
// instruments into reg under "netsim.hop.<name>": busy_ns (cumulative
// serialization time — the sampler renders its rate as a busy-fraction
// gauge), queued_bytes and queued_pkts (queue depth gauges), and
// drops. Idempotent per hop; unnamed hops and nil registries are
// skipped. Call sites that build hops before attaching telemetry
// (grid.Telemetry) invoke this at attach time.
func RegisterHopMetrics(reg *telemetry.Registry, h *Hop) {
	if reg == nil || h == nil || h.Name == "" || h.registered {
		return
	}
	h.registered = true
	prefix := "netsim.hop." + h.Name
	reg.CounterFunc(prefix+".busy_ns", func() int64 { return h.BusyNs })
	reg.CounterFunc(prefix+".drops", func() int64 { return h.Drops })
	reg.GaugeFunc(prefix+".queued_bytes", func() int64 { return h.qbytes })
	reg.GaugeFunc(prefix+".queued_pkts", func() int64 { return int64(h.queued) })
}

// Conditions is a snapshot of one hop's time-varying parameters.
type Conditions struct {
	Rate    float64 // bytes/s
	Latency time.Duration
	Loss    float64 // random loss probability
	Down    bool    // outage: every packet is dropped while set
}

// Conditions returns the hop's current parameters.
func (h *Hop) Conditions() Conditions {
	return Conditions{Rate: h.Rate, Latency: h.Latency, Loss: h.Loss, Down: h.down}
}

// SetConditions swaps the hop's parameters. Packets already serialized
// (in latency flight) are unaffected; packets sent after the change see
// the new rate, latency, loss and outage state.
func (h *Hop) SetConditions(c Conditions) {
	h.Rate = c.Rate
	h.Latency = c.Latency
	h.Loss = c.Loss
	h.down = c.Down
}

// SetRate changes only the hop's rate.
func (h *Hop) SetRate(rate float64) { h.Rate = rate }

// SetLatency changes only the hop's latency.
func (h *Hop) SetLatency(d time.Duration) { h.Latency = d }

// SetLoss changes only the hop's loss probability.
func (h *Hop) SetLoss(loss float64) { h.Loss = loss }

// SetDown takes the link down (every packet dropped) or restores it.
func (h *Hop) SetDown(down bool) { h.down = down }

// Down reports whether the hop is in outage.
func (h *Hop) Down() bool { return h.down }

// noteChange records a scheduled fabric change on the flight recorder
// and (when tracing) the trace, so dynamic WAN conditions line up with
// the transfer spans they perturb.
func noteChange(k *vtime.Kernel, h *Hop, what string) {
	tel := telemetry.For(k)
	if tel == nil {
		return
	}
	tel.Note("netsim", "hop condition change", 0, int64(h.Rate), int64(h.Latency))
	if tel.Tracing() {
		tel.Instant("netsim", "hop."+what, 0).Str("hop", h.Name).
			I64("rate_bps", int64(h.Rate)).I64("lat_ns", int64(h.Latency)).End()
	}
}

// ScheduleConditions arms a full condition swap at virtual time at.
func ScheduleConditions(k *vtime.Kernel, at vtime.Time, h *Hop, c Conditions) {
	k.At(at, func() { h.SetConditions(c); noteChange(k, h, "conditions") })
}

// ScheduleRate arms a rate change at virtual time at.
func ScheduleRate(k *vtime.Kernel, at vtime.Time, h *Hop, rate float64) {
	k.At(at, func() { h.SetRate(rate); noteChange(k, h, "rate") })
}

// ScheduleLatency arms a latency change at virtual time at.
func ScheduleLatency(k *vtime.Kernel, at vtime.Time, h *Hop, d time.Duration) {
	k.At(at, func() { h.SetLatency(d); noteChange(k, h, "latency") })
}

// ScheduleLoss arms a loss change at virtual time at.
func ScheduleLoss(k *vtime.Kernel, at vtime.Time, h *Hop, loss float64) {
	k.At(at, func() { h.SetLoss(loss); noteChange(k, h, "loss") })
}

// ScheduleOutage arms an outage at `at` and, if restore > at, the
// matching restore.
func ScheduleOutage(k *vtime.Kernel, at, restore vtime.Time, h *Hop) {
	k.At(at, func() { h.SetDown(true); noteChange(k, h, "outage") })
	if restore > at {
		k.At(restore, func() { h.SetDown(false); noteChange(k, h, "restore") })
	}
}

// Path is a unidirectional multi-hop route between two fabrics'
// endpoints — used by ipstack for inter-site traffic.
type Path struct {
	k     *vtime.Kernel
	name  string
	hops  []*Hop
	rng   *rand.Rand
	dst   DeliverFunc
	steps []*hopStep // free list of pooled per-packet hop steps
}

// hopStep is one pooled "packet advances to hop i" event.
type hopStep struct {
	p   *Path
	i   int
	pkt *Packet
	run func()
}

// NewPath builds a path delivering to dst through the given hops.
func NewPath(k *vtime.Kernel, name string, seed int64, hops ...*Hop) *Path {
	for _, h := range hops {
		if h.QueueCap == 0 {
			h.QueueCap = 64
		}
		h := h
		h.dequeue = func() {
			h.queued--
			if h.qhead < len(h.qsizes) {
				h.qbytes -= int64(h.qsizes[h.qhead])
				h.qhead++
				if h.qhead == len(h.qsizes) {
					h.qsizes = h.qsizes[:0]
					h.qhead = 0
				}
			}
		}
	}
	return &Path{k: k, name: name, hops: hops, rng: rand.New(rand.NewSource(seed))}
}

// SetDeliver installs the terminal delivery callback.
func (p *Path) SetDeliver(d DeliverFunc) { p.dst = d }

// Name returns the path's name.
func (p *Path) Name() string { return p.name }

// Send pushes a packet through every hop in order.
func (p *Path) Send(pkt *Packet) { p.sendHop(0, pkt) }

func (p *Path) sendHop(i int, pkt *Packet) {
	if i == len(p.hops) {
		if p.dst == nil {
			panic("netsim: path " + p.name + " has no delivery callback")
		}
		p.dst(pkt)
		return
	}
	h := p.hops[i]
	h.Packets++
	if h.down {
		h.Drops++
		pkt.dropped()
		return
	}
	if h.Loss > 0 && p.rng.Float64() < h.Loss {
		h.Drops++
		pkt.dropped()
		return
	}
	now := p.k.Now()
	start := h.free
	if start < now {
		start = now
	}
	// Tail-drop if too many packets are already waiting for this link.
	if h.queued >= h.QueueCap {
		h.Drops++
		pkt.dropped()
		return
	}
	txTime := time.Duration(float64(pkt.Wire) / h.Rate * 1e9)
	end := start.Add(txTime)
	h.free = end
	h.Bytes += int64(pkt.Wire)
	h.BusyNs += int64(txTime)
	// The queue drains when the packet finishes serializing; packets in
	// propagation (latency) flight do not occupy buffer space.
	h.queued++
	h.qsizes = append(h.qsizes, pkt.Wire)
	h.qbytes += int64(pkt.Wire)
	p.k.ScheduleAt(end, h.dequeue)
	var st *hopStep
	if n := len(p.steps); n > 0 {
		st = p.steps[n-1]
		p.steps = p.steps[:n-1]
	} else {
		st = &hopStep{p: p}
		st.run = func() {
			i, pkt := st.i, st.pkt
			st.pkt = nil
			st.p.steps = append(st.p.steps, st)
			st.p.sendHop(i, pkt)
		}
	}
	st.i, st.pkt = i+1, pkt
	p.k.ScheduleAt(end.Add(h.Latency), st.run)
}

// Drops sums drops over all hops (loss + queue overflow).
func (p *Path) Drops() int64 {
	var d int64
	for _, h := range p.hops {
		d += h.Drops
	}
	return d
}

// ---------------------------------------------------------------------
// LoopbackFabric: intra-node communication, near-zero latency.

// Loopback is the intra-process fabric.
type Loopback struct {
	k     *vtime.Kernel
	lat   time.Duration
	ports map[int]DeliverFunc
	steps stepPool
}

// NewLoopback builds a loopback fabric with the given (tiny) latency.
func NewLoopback(k *vtime.Kernel, lat time.Duration) *Loopback {
	return &Loopback{k: k, lat: lat, ports: make(map[int]DeliverFunc)}
}

// Kind implements Fabric.
func (l *Loopback) Kind() topology.NetworkKind { return topology.Loopback }

// Attach implements Fabric.
func (l *Loopback) Attach(addr int, deliver DeliverFunc) { l.ports[addr] = deliver }

// Send implements Fabric.
func (l *Loopback) Send(pkt *Packet) {
	deliver, ok := l.ports[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: loopback send to unattached address %d", pkt.Dst))
	}
	l.k.Schedule(l.lat, l.steps.get(deliver, pkt).run)
}
