package telemetry

import (
	"testing"
	"time"

	"padico/internal/vtime"
)

func TestWindowFirstSampleAndDelta(t *testing.T) {
	w := NewWindow()
	if got := w.Delta("x", 5); got != 5 {
		t.Fatalf("first sample: got %d, want full cumulative 5", got)
	}
	if got := w.Delta("x", 9); got != 4 {
		t.Fatalf("second sample: got %d, want 4", got)
	}
	if got := w.Delta("x", 9); got != 0 {
		t.Fatalf("idle interval: got %d, want 0", got)
	}
}

func TestWindowWraparound(t *testing.T) {
	w := NewWindow()
	w.Delta("x", 100)
	// A cumulative value below the baseline means the source was
	// recreated: the delta is the full new value, never negative.
	if got := w.Delta("x", 3); got != 3 {
		t.Fatalf("wraparound: got %d, want 3", got)
	}
	if got := w.Delta("x", 10); got != 7 {
		t.Fatalf("post-wraparound: got %d, want 7", got)
	}
}

func TestWindowPrime(t *testing.T) {
	w := NewWindow()
	w.Prime("y", 10)
	if got := w.Delta("y", 12); got != 2 {
		t.Fatalf("primed delta: got %d, want 2 (setup excluded)", got)
	}
}

func TestWindowHistDelta(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	w := NewWindow()

	for i := 0; i < 10; i++ {
		h.Observe(vtime.Duration(time.Millisecond))
	}
	s := w.HistDelta("lat", h)
	if s.Count != 10 {
		t.Fatalf("first window count: got %d, want 10", s.Count)
	}
	if s.P50 != vtime.Duration(time.Millisecond) {
		t.Fatalf("first window p50: got %v, want 1ms", s.P50)
	}
	if s.Sum != 10*vtime.Duration(time.Millisecond) {
		t.Fatalf("first window sum: got %v, want 10ms", s.Sum)
	}

	// The second window sees only the new observations: quantiles are
	// windowed, not polluted by the 10 cumulative 1ms samples.
	for i := 0; i < 4; i++ {
		h.Observe(vtime.Duration(100 * time.Millisecond))
	}
	s = w.HistDelta("lat", h)
	if s.Count != 4 {
		t.Fatalf("second window count: got %d, want 4", s.Count)
	}
	if s.P50 != vtime.Duration(100*time.Millisecond) {
		t.Fatalf("second window p50: got %v, want 100ms (windowed, not cumulative)", s.P50)
	}

	// Idle window: zero everything.
	s = w.HistDelta("lat", h)
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("idle window: got %+v, want zeros", s)
	}
}

func TestWindowHistDeltaReset(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	w := NewWindow()
	h.Observe(vtime.Duration(time.Millisecond))
	h.Observe(vtime.Duration(time.Millisecond))
	w.HistDelta("lat", h)

	// A fresh histogram under the same name (a recreated registry):
	// bucket counts shrink, which reads as a reset — the full new
	// contents are the window.
	reg2 := NewRegistry()
	h2 := reg2.Histogram("lat")
	h2.Observe(vtime.Duration(2 * time.Millisecond))
	s := w.HistDelta("lat", h2)
	if s.Count != 1 {
		t.Fatalf("reset window count: got %d, want 1", s.Count)
	}
	if s.P50 != vtime.Duration(2*time.Millisecond) {
		t.Fatalf("reset window p50: got %v, want 2ms", s.P50)
	}
}

func TestWindowHistDeltaNil(t *testing.T) {
	w := NewWindow()
	if s := w.HistDelta("absent", nil); s != (HistSample{}) {
		t.Fatalf("nil histogram: got %+v, want zero sample", s)
	}
}
