package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"padico/internal/telemetry/series"
	"padico/internal/vtime"
)

func TestSamplerNilHubNoop(t *testing.T) {
	var h *Hub
	s := h.StartSampler(250e6)
	if s != nil {
		t.Fatal("nil hub must yield a nil sampler")
	}
	// Every method of the nil sampler no-ops.
	s.Stop()
	if s.Scrapes() != 0 || s.Series() != nil {
		t.Fatal("nil sampler accessors must be empty")
	}
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"series":[]`) {
		t.Fatalf("nil sampler JSON: %q", b.String())
	}
	b.Reset()
	if err := s.WriteDash(&b, series.DashOptions{Title: "t"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") && !strings.Contains(b.String(), "<!DOCTYPE html>") {
		t.Fatalf("nil sampler dash: %q", b.String())
	}
}

func TestSamplerScrapesKinds(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	reg := h.Registry()
	c := reg.Counter("layer.ops")
	g := reg.Gauge("layer.depth")
	hist := reg.Histogram("layer.lat")
	reg.Counter("layer.wobbly").Add(7)
	reg.MarkVolatile("layer.wobbly")
	reg.Counter("link.busy_ns")

	sam := h.StartSampler(vtime.Duration(100 * time.Millisecond))
	err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < 10; i++ {
			c.Add(5)
			g.Set(int64(i))
			hist.Observe(vtime.Duration(time.Millisecond))
			// Half an interval of "serialization" per interval.
			reg.Counter("link.busy_ns").Add(50e6)
			p.Sleep(100 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	set := sam.Series()
	if sam.Scrapes() == 0 || set.Len() == 0 {
		t.Fatal("sampler took no scrapes")
	}
	if set.Get("layer.wobbly") != nil {
		t.Fatal("volatile metric leaked into the series")
	}
	// Counter → rate: 5 ops per 100ms interval = 50/s.
	ops := set.Get("layer.ops")
	if ops == nil || ops.Kind != "rate" {
		t.Fatalf("counter track missing or wrong kind: %+v", ops)
	}
	if v := ops.Points()[1].V; v != 50 {
		t.Fatalf("ops rate: got %v, want 50/s", v)
	}
	// Gauge → level samples.
	if depth := set.Get("layer.depth"); depth == nil || depth.Kind != "gauge" {
		t.Fatal("gauge track missing")
	}
	// Histogram → rate + quantile tracks.
	if set.Get("layer.lat.rate") == nil || set.Get("layer.lat.p50") == nil || set.Get("layer.lat.p99") == nil {
		t.Fatal("histogram tracks missing")
	}
	if p50 := set.Get("layer.lat.p50"); p50.Points()[1].V != 1e6 {
		t.Fatalf("windowed p50: got %v, want 1ms", p50.Points()[1].V)
	}
	// *.busy_ns renders as a busy-fraction gauge, not a raw rate.
	busy := set.Get("link.busy_frac")
	if busy == nil || busy.Kind != "gauge" {
		t.Fatal("busy_ns not rendered as busy_frac gauge")
	}
	if set.Get("link.busy_ns") != nil {
		t.Fatal("raw busy_ns track should be replaced by busy_frac")
	}
	if v := busy.Points()[1].V; v != 0.5 {
		t.Fatalf("busy fraction: got %v, want 0.5", v)
	}
}

// TestSamplerConcurrentBumps drives scrapes while goroutines outside
// the kernel hammer the counters — the -race check that scraping reads
// (atomic loads under the registry lock) never race with hot-path
// bumps.
func TestSamplerConcurrentBumps(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	reg := h.Registry()
	c := reg.Counter("hot.ops")
	g := reg.Gauge("hot.depth")
	hist := reg.Histogram("hot.lat")

	done := make(chan struct{})
	var wg sync.WaitGroup
	var spin int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Inc()
					g.Add(1)
					hist.Observe(vtime.Duration(atomic.AddInt64(&spin, 1) % 1e6))
				}
			}
		}()
	}
	sam := h.StartSampler(vtime.Duration(10 * time.Millisecond))
	err := k.Run(func(p *vtime.Proc) {
		p.Sleep(time.Second)
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sam.Scrapes() == 0 || sam.Series().Get("hot.ops") == nil {
		t.Fatal("sampler missed the hot counters")
	}
}
