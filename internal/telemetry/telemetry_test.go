package telemetry

import (
	"bytes"
	"encoding/json"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"padico/internal/vtime"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram(nil)
	// 99 fast observations and one slow outlier.
	for i := 0; i < 99; i++ {
		h.Observe(30 * time.Microsecond)
	}
	h.Observe(3 * time.Second)
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0.50); got != 50*time.Microsecond {
		t.Errorf("p50 = %v, want 50µs (bucket upper bound of 30µs)", got)
	}
	if got := h.Quantile(0.99); got != 50*time.Microsecond {
		t.Errorf("p99 = %v, want 50µs (99 of 100 below)", got)
	}
	if got := h.Quantile(1.0); got != 5*time.Second {
		t.Errorf("p100 = %v, want 5s bucket bound", got)
	}
	wantSum := 99*30*time.Microsecond + 3*time.Second
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramOverflowReportsMax(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(500 * time.Second) // beyond the 100s ladder
	if got := h.Quantile(0.99); got != 500*time.Second {
		t.Errorf("overflow p99 = %v, want observed max 500s", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta.ops").Add(3)
	r.Counter("alpha.ops").Add(1)
	r.Gauge("mid.depth").Set(7)
	r.Histogram("beta.lat").Observe(time.Millisecond)
	s1 := r.Snapshot()
	if !sort.SliceIsSorted(s1, func(i, j int) bool { return s1[i].Name < s1[j].Name }) {
		t.Fatalf("snapshot not sorted: %+v", s1)
	}
	names := []string{}
	for _, m := range s1 {
		names = append(names, m.Name)
	}
	want := []string{"alpha.ops", "beta.lat", "mid.depth", "zeta.ops"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	s2 := r.Snapshot()
	if FormatSnapshot(s1) != FormatSnapshot(s2) {
		t.Error("repeated snapshots differ")
	}
}

func TestCounterFuncAggregates(t *testing.T) {
	r := NewRegistry()
	a, b := int64(2), int64(5)
	r.CounterFunc("vrp.sent", func() int64 { return a })
	r.CounterFunc("vrp.sent", func() int64 { return b })
	s := r.Snapshot()
	if len(s) != 1 || s[0].Value != 7 {
		t.Fatalf("snapshot = %+v, want single vrp.sent=7", s)
	}
}

func TestBindStruct(t *testing.T) {
	type stats struct {
		Opens          int64
		WANBytes       int64
		VLinkTransfers int64 `metric:"vlink_transfers"`
		Hidden         int64 `metric:"-"`
		NotAMetric     string
	}
	var st stats
	atomic.AddInt64(&st.Opens, 4)
	atomic.AddInt64(&st.WANBytes, 1024)
	atomic.AddInt64(&st.VLinkTransfers, 2)
	st.Hidden = 99
	r := NewRegistry()
	r.BindStruct("session", &st)
	got := map[string]int64{}
	for _, m := range r.Snapshot() {
		got[m.Name] = m.Value
	}
	want := map[string]int64{"session.opens": 4, "session.wan_bytes": 1024, "session.vlink_transfers": 2}
	if len(got) != len(want) {
		t.Fatalf("snapshot names = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	// Second instance under the same prefix aggregates.
	var st2 stats
	st2.Opens = 6
	r.BindStruct("session", &st2)
	for _, m := range r.Snapshot() {
		if m.Name == "session.opens" && m.Value != 10 {
			t.Errorf("aggregated opens = %d, want 10", m.Value)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Opens":         "opens",
		"CircuitOpens":  "circuit_opens",
		"WANBytes":      "wan_bytes",
		"Puts":          "puts",
		"TreeRebuilds":  "tree_rebuilds",
		"PassiveRTT":    "passive_rtt",
		"Retransmitted": "retransmitted",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

// traceFixture runs a tiny deterministic workload with tracing on and
// returns the hub.
func traceFixture(t *testing.T) *Hub {
	t.Helper()
	k := vtime.NewKernel()
	h := Attach(k)
	h.EnableTracing()
	err := k.Run(func(p *vtime.Proc) {
		root := h.Begin("test", "outer", 0).I64("bytes", 4096)
		p.Sleep(2 * time.Millisecond)
		child := h.Begin("test", "inner", 1).Parent(root).Str("via", "vlink")
		p.Sleep(500 * time.Microsecond)
		child.End()
		h.Instant("test", "mark", 1).End()
		root.End()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return h
}

func TestTraceJSONValidAndLinked(t *testing.T) {
	h := traceFixture(t)
	js := h.TraceJSON()
	if !json.Valid(js) {
		t.Fatalf("invalid JSON:\n%s", js)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Tid  int             `json:"tid"`
			Ts   json.Number     `json:"ts"`
			Dur  json.Number     `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
	}
	for _, want := range []string{"outer", "inner", "mark", "thread_name", "process_name"} {
		if byName[want] == 0 {
			t.Errorf("missing event %q", want)
		}
	}
	spans := h.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: inner, mark, outer.
	if spans[0].Name != "inner" || spans[2].Name != "outer" {
		t.Errorf("span order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Parent != spans[2].ID {
		t.Errorf("inner.parent = %d, want outer id %d", spans[0].Parent, spans[2].ID)
	}
	if spans[2].Dur != 2500*time.Microsecond {
		t.Errorf("outer dur = %v, want 2.5ms", spans[2].Dur)
	}
	if !spans[1].Instant {
		t.Error("mark should be an instant")
	}
}

func TestTraceByteIdentical(t *testing.T) {
	a := traceFixture(t).TraceJSON()
	b := traceFixture(t).TraceJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("trace JSON differs across identical runs")
	}
}

func TestSpanPoolRecycles(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	h.EnableTracing()
	k.Run(func(p *vtime.Proc) {
		s1 := h.Begin("t", "a", 0)
		s1.End()
		s2 := h.Begin("t", "b", 0)
		if s1 != s2 {
			t.Error("span handle not recycled from free list")
		}
		s2.End()
	})
}

func TestNilSafety(t *testing.T) {
	var h *Hub
	h.EnableTracing()
	h.Begin("x", "y", 0).I64("a", 1).Str("b", "c").Parent(nil).End()
	h.Instant("x", "y", 0).End()
	h.Note("c", "m", 0, 0, 0)
	h.DumpFlight("nope")
	h.KernelFailure(nil)
	if h.Registry() != nil || h.Spans() != nil || h.TraceJSON() != nil || h.Tracing() {
		t.Error("nil hub must be inert")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.CounterFunc("x", nil)
	r.BindStruct("x", &struct{}{})
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
}

func TestFlightRingWraps(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	k.Run(func(p *vtime.Proc) {
		for i := 0; i < flightRing+10; i++ {
			h.Note("test", "tick", i, int64(i), 0)
			p.Sleep(time.Millisecond)
		}
	})
	evs := h.Flight()
	if len(evs) != flightRing {
		t.Fatalf("ring holds %d, want %d", len(evs), flightRing)
	}
	if evs[0].V1 != 10 || evs[len(evs)-1].V1 != int64(flightRing+9) {
		t.Errorf("ring window [%d..%d], want [10..%d]", evs[0].V1, evs[len(evs)-1].V1, flightRing+9)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("flight events out of order")
		}
	}
}

func TestFlightDumpOnKernelFailure(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	var buf bytes.Buffer
	h.SetFlightSink(&buf)
	k.Run(func(p *vtime.Proc) {
		h.Note("test", "about to hang", 3, 42, 0)
		vtime.NewQueue[int]("never").Pop(p) // deadlock
	})
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("flight recorder dump")) {
		t.Fatalf("no dump on kernel failure:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte("about to hang")) {
		t.Fatalf("dump missing noted event:\n%s", out)
	}
}

func TestAttachIdempotent(t *testing.T) {
	k := vtime.NewKernel()
	if Attach(k) != Attach(k) {
		t.Error("Attach must return the existing hub")
	}
	if For(k) == nil {
		t.Error("For must find the attached hub")
	}
	if For(vtime.NewKernel()) != nil {
		t.Error("For on a bare kernel must be nil")
	}
}
