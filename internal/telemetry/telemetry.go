// Package telemetry is the deterministic, virtual-time-native
// observability layer for the whole stack: a span tracer exported as
// Chrome trace_event JSON (opens directly in Perfetto), a unified
// metrics registry, and a bounded flight recorder for post-mortems.
//
// Everything is stamped with *kernel virtual time*, never wall clock,
// so a trace is a bit-identical artifact of a run — determinism tests
// pin it like any other bench table. The grid-style monitoring systems
// the literature credits with making grids operable (GMA-style
// producer/consumer pipes, NWS sensors) are substituted here by an
// in-process hub per kernel: layers produce spans/metrics, the bench
// harness and tests consume snapshots.
//
// Ownership and cost rules:
//   - A Hub is attached to at most one kernel (Attach) and all span
//     operations happen in kernel context — the strictly sequential
//     scheduler is the synchronization.
//   - Disabled paths are free: every method is nil-receiver-safe, so
//     layers instrument unconditionally; with no hub attached the cost
//     is one pointer test and zero allocations.
//   - Span records are pooled (a free list, same discipline as the
//     iovec pools and the kernel's event free list): steady-state
//     tracing allocates only when the finished-span log grows.
package telemetry

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"

	"padico/internal/iovec"
	"padico/internal/vtime"
)

// Ctx is the propagated trace context: the request (root span) identity
// and the causally current span. It is the kernel's ambient TraceCtx —
// the scheduler carries it across proc switches and event fires, so a
// span begun anywhere in the simulation attaches to the request that
// caused it. See Span.Enter for installing a root.
type Ctx = vtime.TraceCtx

// CtxWireLen is the encoded size of a Ctx on the wire.
const CtxWireLen = 8 + 8

// EncodeCtx renders a trace context as 16 big-endian bytes, for layers
// that carry it in tracing-gated wire headers (datagrid transfer
// headers, group multicast headers, adaptive session records).
func EncodeCtx(c Ctx) []byte {
	b := make([]byte, CtxWireLen)
	binary.BigEndian.PutUint64(b, uint64(c.Trace))
	binary.BigEndian.PutUint64(b[8:], uint64(c.Span))
	return b
}

// DecodeCtx parses a context encoded by EncodeCtx.
func DecodeCtx(b []byte) Ctx {
	if len(b) < CtxWireLen {
		return Ctx{}
	}
	return Ctx{Trace: int64(binary.BigEndian.Uint64(b)), Span: int64(binary.BigEndian.Uint64(b[8:]))}
}

// Hub is the per-kernel telemetry instance: tracer + registry + flight
// recorder. The zero value is unusable; create with Attach.
type Hub struct {
	k   *vtime.Kernel
	reg *Registry

	tracing bool
	nextID  int64
	spans   []spanRec
	free    *Span // recycled span handles

	flight     []FlightEvent // lazily-allocated ring
	flightIdx  int
	flightLen  int
	flightSink io.Writer
	dumps      int
	dumpLimit  int // 0 = default, <0 = unlimited (SetDumpLimit)
}

// Attach returns the kernel's hub, creating and attaching one on first
// call. Layers constructed after the attach discover it with For and
// bind their metrics; attach the hub before building the layers you
// want observed.
func Attach(k *vtime.Kernel) *Hub {
	if h := For(k); h != nil {
		return h
	}
	h := &Hub{k: k, reg: NewRegistry()}
	// Kernel scheduler counters: plain (non-atomic) fields, so they are
	// read unsynchronized — snapshot after Run returns.
	h.reg.CounterFunc("vtime.events_fired", func() int64 { return k.EventsFired })
	h.reg.CounterFunc("vtime.proc_switches", func() int64 { return k.ProcSwitches })
	h.reg.CounterFunc("vtime.procs_spawned", func() int64 { return k.ProcsSpawned })
	// Buffer-pool traffic, read against attach-time baselines so each
	// run's readings are independent of earlier runs in the process
	// (the iovec pools are package-global). Gets/frees/occupancy are
	// driven purely by simulation logic and stay deterministic; misses
	// depend on what the GC kept alive in the sync.Pools, so that
	// series is volatile — visible in snapshots and Prom exposition,
	// excluded from the pinned series JSON.
	gets0, misses0 := iovec.PoolGets(), iovec.PoolMisses()
	frees0, unpooled0 := iovec.PoolFrees(), iovec.PoolUnpooled()
	h.reg.CounterFunc("iovec.pool_gets", func() int64 { return iovec.PoolGets() - gets0 })
	h.reg.CounterFunc("iovec.pool_misses", func() int64 { return iovec.PoolMisses() - misses0 })
	h.reg.CounterFunc("iovec.pool_unpooled", func() int64 { return iovec.PoolUnpooled() - unpooled0 })
	h.reg.GaugeFunc("iovec.pool_outstanding", func() int64 {
		return (iovec.PoolGets() - gets0) - (iovec.PoolFrees() - frees0)
	})
	h.reg.MarkVolatile("iovec.pool_misses")
	k.Telemetry = h
	return h
}

// For returns the hub attached to k, or nil. The nil hub is fully
// usable: every method no-ops.
func For(k *vtime.Kernel) *Hub {
	h, _ := k.Telemetry.(*Hub)
	return h
}

// KernelFailure implements vtime.FailureObserver: a deadlock or a proc
// panic (the determinism assertions of this codebase) dumps the flight
// recorder so the post-mortem rides along with the error.
func (h *Hub) KernelFailure(err error) {
	if h == nil {
		return
	}
	h.DumpFlight("kernel failure: " + err.Error())
}

// Registry returns the hub's metrics registry (nil on a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// EnableTracing turns the span tracer on. Off by default: metrics and
// the flight recorder are always-on cheap, spans are opt-in.
func (h *Hub) EnableTracing() {
	if h != nil {
		h.tracing = true
	}
}

// Tracing reports whether spans are being recorded. Use to gate
// argument construction that would allocate.
func (h *Hub) Tracing() bool { return h != nil && h.tracing }

// spanArg is one key/value attached to a span. Values are int64 or
// string; fixed storage, no maps.
type spanArg struct {
	key  string
	sval string
	ival int64
	str  bool
}

const maxArgs = 4

// Span is an in-flight span handle. Obtained from Begin/Instant,
// finished with End, after which the handle is recycled — do not
// retain. Nil-safe: a nil *Span ignores every call.
type Span struct {
	h      *Hub
	next   *Span // free list
	id     int64
	parent int64
	trace  int64
	cat    string
	name   string
	tid    int
	start  vtime.Time
	inst   bool
	nargs  int
	args   [maxArgs]spanArg
}

// spanRec is a finished span, stored by value in the trace log.
type spanRec struct {
	id     int64
	parent int64
	trace  int64
	cat    string
	name   string
	tid    int
	start  vtime.Time
	dur    vtime.Duration
	inst   bool
	nargs  int
	args   [maxArgs]spanArg
}

// Begin opens a span in category cat (the layer) named name, on trace
// lane tid (the node). Returns nil when tracing is off — all Span
// methods tolerate that. The span auto-parents under the ambient trace
// context: when a request is in flight, the new span joins its tree;
// otherwise it becomes a root of its own trace.
func (h *Hub) Begin(cat, name string, tid int) *Span {
	if h == nil || !h.tracing {
		return nil
	}
	s := h.free
	if s != nil {
		h.free = s.next
	} else {
		s = new(Span)
	}
	h.nextID++
	*s = Span{h: h, id: h.nextID, cat: cat, name: name, tid: tid, start: h.k.Now()}
	if cur := h.k.TraceCtx(); !cur.Zero() {
		s.trace = cur.Trace
		s.parent = cur.Span
	} else {
		s.trace = s.id
	}
	return s
}

// Cur returns the ambient trace context (zero on a nil hub).
func (h *Hub) Cur() Ctx {
	if h == nil {
		return Ctx{}
	}
	return h.k.TraceCtx()
}

// SetCur installs c as the ambient trace context — the adoption point
// for a context that arrived over the wire (a chunk header, a multicast
// header, a replayed record).
func (h *Hub) SetCur(c Ctx) {
	if h != nil {
		h.k.SetTraceCtx(c)
	}
}

// Instant opens a zero-duration instant event (retransmit fired,
// decision taken, forecast published). End it like a span.
func (h *Hub) Instant(cat, name string, tid int) *Span {
	s := h.Begin(cat, name, tid)
	if s != nil {
		s.inst = true
	}
	return s
}

// ID returns the span's id (0 on nil), for cross-proc parent linking.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Ctx returns the span's trace context (zero on nil): its trace id and
// its own id as the causally current span — what a child would inherit.
func (s *Span) Ctx() Ctx {
	if s == nil {
		return Ctx{}
	}
	return Ctx{Trace: s.trace, Span: s.id}
}

// Enter installs s as the ambient trace context, making everything that
// executes downstream — spawned procs, scheduled events, spans on other
// nodes — attach to s's tree. It returns the previous context; restore
// it with Exit when the operation completes:
//
//	sp := tel.Begin("datagrid", "put", node)
//	defer sp.End()
//	prev := sp.Enter()
//	defer sp.Exit(prev)
func (s *Span) Enter() Ctx {
	if s == nil {
		return Ctx{}
	}
	return s.h.k.SetTraceCtx(Ctx{Trace: s.trace, Span: s.id})
}

// Exit restores the context saved by Enter (no-op on nil).
func (s *Span) Exit(prev Ctx) {
	if s != nil {
		s.h.k.SetTraceCtx(prev)
	}
}

// Parent links s under p (both may be nil), adopting p's trace.
func (s *Span) Parent(p *Span) *Span {
	if s != nil && p != nil {
		s.parent = p.id
		s.trace = p.trace
	}
	return s
}

// ParentID links s under a span id captured earlier with ID.
func (s *Span) ParentID(id int64) *Span {
	if s != nil {
		s.parent = id
	}
	return s
}

// I64 attaches an integer argument. At most 4 arguments per span;
// extras are dropped.
func (s *Span) I64(key string, v int64) *Span {
	if s != nil && s.nargs < maxArgs {
		s.args[s.nargs] = spanArg{key: key, ival: v}
		s.nargs++
	}
	return s
}

// Str attaches a string argument.
func (s *Span) Str(key, v string) *Span {
	if s != nil && s.nargs < maxArgs {
		s.args[s.nargs] = spanArg{key: key, sval: v, str: true}
		s.nargs++
	}
	return s
}

// End closes the span at the current virtual time, appends it to the
// trace log, and recycles the handle.
func (s *Span) End() {
	if s == nil {
		return
	}
	h := s.h
	h.spans = append(h.spans, spanRec{
		id: s.id, parent: s.parent, trace: s.trace, cat: s.cat, name: s.name,
		tid: s.tid, start: s.start, dur: h.k.Now().Sub(s.start), inst: s.inst,
		nargs: s.nargs, args: s.args,
	})
	s.next = h.free
	h.free = s
}

// SpanInfo is one finished span, exposed for tests and examples.
type SpanInfo struct {
	ID, Parent, Trace int64
	Cat, Name         string
	Tid               int
	Start             vtime.Time
	Dur               vtime.Duration
	Instant           bool
	Args              string // "k=v k=v" rendering
}

// Spans returns the finished spans in completion order.
func (h *Hub) Spans() []SpanInfo {
	if h == nil {
		return nil
	}
	out := make([]SpanInfo, len(h.spans))
	for i, r := range h.spans {
		var b bytes.Buffer
		for j := 0; j < r.nargs; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			a := r.args[j]
			if a.str {
				fmt.Fprintf(&b, "%s=%s", a.key, a.sval)
			} else {
				fmt.Fprintf(&b, "%s=%d", a.key, a.ival)
			}
		}
		out[i] = SpanInfo{
			ID: r.id, Parent: r.parent, Trace: r.trace, Cat: r.cat, Name: r.name,
			Tid: r.tid, Start: r.start, Dur: r.dur, Instant: r.inst, Args: b.String(),
		}
	}
	return out
}

// usec renders virtual nanoseconds as the microsecond decimal string
// the trace_event format wants — integer math only, so the trace is
// bit-identical across runs and platforms.
func usec(ns int64) string {
	return strconv.FormatInt(ns/1000, 10) + "." + fmt.Sprintf("%03d", ns%1000)
}

// WriteTrace emits the span log as Chrome trace_event JSON: one
// process, one lane (tid) per node, spans as "X" complete events and
// instants as "i" events. Span ids, trace ids and parents ride in args.
// Wherever a span's parent lives on a *different* node, a flow arrow
// ("s" at the parent, "f" at the child) is synthesized so Perfetto
// draws the causal hop between lanes. Events appear in completion
// order; under the sequential kernel that order — like everything else
// here — is deterministic. Spans still open at export time are simply
// absent: only finished spans are in the log.
func (h *Hub) WriteTrace(w io.Writer) error {
	if h == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	bw.WriteString(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"padico"}}`)
	tids := map[int]bool{}
	for _, r := range h.spans {
		tids[r.tid] = true
	}
	sorted := make([]int, 0, len(tids))
	for tid := range tids {
		sorted = append(sorted, tid)
	}
	sort.Ints(sorted)
	for _, tid := range sorted {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"node %d\"}}", tid, tid)
	}
	for _, r := range h.spans {
		if r.inst {
			fmt.Fprintf(bw, ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"cat\":%q,\"name\":%q,\"args\":{",
				r.tid, usec(int64(r.start)), r.cat, r.name)
		} else {
			fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"cat\":%q,\"name\":%q,\"args\":{",
				r.tid, usec(int64(r.start)), usec(int64(r.dur)), r.cat, r.name)
		}
		fmt.Fprintf(bw, "\"span\":%d", r.id)
		if r.trace != 0 {
			fmt.Fprintf(bw, ",\"trace\":%d", r.trace)
		}
		if r.parent != 0 {
			fmt.Fprintf(bw, ",\"parent\":%d", r.parent)
		}
		for j := 0; j < r.nargs; j++ {
			a := r.args[j]
			if a.str {
				fmt.Fprintf(bw, ",%q:%q", a.key, a.sval)
			} else {
				fmt.Fprintf(bw, ",%q:%d", a.key, a.ival)
			}
		}
		bw.WriteString("}}")
	}
	// Cross-node flow arrows: one s/f pair per span whose parent sits on
	// another lane. The binding point "e" attaches each end to the slice
	// enclosing its timestamp; the s end is clamped into the parent's
	// extent so a child that outlives its parent still binds to it.
	type extent struct {
		tid        int
		start, end vtime.Time
	}
	byID := make(map[int64]extent, len(h.spans))
	for _, r := range h.spans {
		byID[r.id] = extent{tid: r.tid, start: r.start, end: r.start.Add(r.dur)}
	}
	for _, r := range h.spans {
		p, ok := byID[r.parent]
		if r.parent == 0 || !ok || p.tid == r.tid {
			continue
		}
		at := r.start
		if at > p.end {
			at = p.end
		}
		if at < p.start {
			at = p.start
		}
		fmt.Fprintf(bw, ",\n{\"ph\":\"s\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"cat\":%q,\"name\":\"flow\",\"id\":%d,\"bp\":\"e\"}",
			p.tid, usec(int64(at)), r.cat, r.id)
		fmt.Fprintf(bw, ",\n{\"ph\":\"f\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"cat\":%q,\"name\":\"flow\",\"id\":%d,\"bp\":\"e\"}",
			r.tid, usec(int64(r.start)), r.cat, r.id)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// TraceJSON renders the trace to a byte slice.
func (h *Hub) TraceJSON() []byte {
	if h == nil {
		return nil
	}
	var b bytes.Buffer
	h.WriteTrace(&b) // (*bytes.Buffer).Write cannot fail
	return b.Bytes()
}
