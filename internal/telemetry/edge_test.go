package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"padico/internal/vtime"
)

// TestWriteTraceWithOpenSpans pins the export contract for spans still
// open at export time: the trace is valid JSON without them (a span
// only reaches the record table on End), and ending them later makes
// them appear in the next export.
func TestWriteTraceWithOpenSpans(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	h.EnableTracing()
	if err := k.Run(func(p *vtime.Proc) {
		open := h.Begin("test", "still-open", 0)
		h.Begin("test", "closed", 0).End()

		var buf bytes.Buffer
		if err := h.WriteTrace(&buf); err != nil {
			t.Fatalf("mid-run export: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("export with an open span is not valid JSON:\n%s", buf.Bytes())
		}
		if bytes.Contains(buf.Bytes(), []byte("still-open")) {
			t.Error("open span leaked into the export before End")
		}
		if !bytes.Contains(buf.Bytes(), []byte(`"closed"`)) {
			t.Error("finished span missing from the export")
		}

		p.Sleep(time.Millisecond)
		open.End()
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	js := h.TraceJSON()
	if !json.Valid(js) {
		t.Fatalf("final export invalid:\n%s", js)
	}
	if !bytes.Contains(js, []byte("still-open")) {
		t.Error("span missing from the export after End")
	}
}

// TestHistogramQuantileEdges pins the quantile and CountAtMost
// behaviour on empty and single-observation histograms.
func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram q%v = %v, want 0", q, got)
		}
	}
	if got := h.CountAtMost(time.Second); got != 0 {
		t.Errorf("empty CountAtMost = %d, want 0", got)
	}
	h.Observe(30 * time.Microsecond)
	if got := h.CountAtMost(0); got != 0 {
		t.Errorf("CountAtMost(0) = %d, want 0", got)
	}
	if got := h.CountAtMost(50 * time.Microsecond); got != 1 {
		t.Errorf("CountAtMost(50µs) = %d, want 1 (bucket bound)", got)
	}
	if got := h.CountAtMost(time.Hour); got != 1 {
		t.Errorf("CountAtMost(1h) = %d, want 1", got)
	}
}

// TestFormatSnapshotConcurrent hammers a registry's counters from real
// goroutines while snapshots are taken: under -race this pins the
// atomic access contract, and after the writers drain, two snapshots
// must format identically.
func TestFormatSnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc.ops")
	g := r.Gauge("conc.depth")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(int64(i))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if snap := r.Snapshot(); len(snap) == 0 {
			t.Fatal("empty snapshot while writers run")
		}
	}
	wg.Wait()
	a, b := FormatSnapshot(r.Snapshot()), FormatSnapshot(r.Snapshot())
	if a != b {
		t.Fatalf("snapshots differ after writers drained:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "conc.ops") || !strings.Contains(a, "4000") {
		t.Errorf("final snapshot missing the settled counter:\n%s", a)
	}
}

// TestSetDumpLimit pins the configurable dump cap: the default allows
// two full dumps, a custom limit is honored exactly, and n <= 0 removes
// the cap.
func TestSetDumpLimit(t *testing.T) {
	countDumps := func(configure func(h *Hub), n int) (full, suppressed int) {
		k := vtime.NewKernel()
		h := Attach(k)
		var buf bytes.Buffer
		h.SetFlightSink(&buf)
		configure(h)
		k.Run(func(p *vtime.Proc) {
			h.Note("test", "tick", 0, 1, 0)
			for i := 0; i < n; i++ {
				h.DumpFlight("drill")
			}
		})
		return strings.Count(buf.String(), "=== flight recorder dump"),
			strings.Count(buf.String(), "flight dump suppressed")
	}
	if full, supp := countDumps(func(*Hub) {}, 5); full != 2 || supp != 3 {
		t.Errorf("default cap: %d full + %d suppressed, want 2 + 3", full, supp)
	}
	if full, supp := countDumps(func(h *Hub) { h.SetDumpLimit(4) }, 5); full != 4 || supp != 1 {
		t.Errorf("cap 4: %d full + %d suppressed, want 4 + 1", full, supp)
	}
	if full, supp := countDumps(func(h *Hub) { h.SetDumpLimit(0) }, 5); full != 5 || supp != 0 {
		t.Errorf("uncapped: %d full + %d suppressed, want 5 + 0", full, supp)
	}
	// Nil safety.
	var h *Hub
	h.SetDumpLimit(3)
}

// TestCtxWireRoundTrip pins the trace-context wire encoding.
func TestCtxWireRoundTrip(t *testing.T) {
	for _, c := range []Ctx{{}, {Trace: 1, Span: 2}, {Trace: 1<<62 + 7, Span: 1<<61 + 3}} {
		b := EncodeCtx(c)
		if len(b) != CtxWireLen {
			t.Fatalf("encoded length %d, want %d", len(b), CtxWireLen)
		}
		if got := DecodeCtx(b); got != c {
			t.Errorf("round trip %+v -> %+v", c, got)
		}
	}
	if got := DecodeCtx([]byte{1, 2}); !got.Zero() {
		t.Errorf("short buffer decoded to %+v, want zero", got)
	}
}

// TestSpanEnterExit pins the ambient-context idiom: Begin adopts the
// current context as parent, Enter installs the span as the ambient
// parent, Exit restores what Enter displaced.
func TestSpanEnterExit(t *testing.T) {
	k := vtime.NewKernel()
	h := Attach(k)
	h.EnableTracing()
	if err := k.Run(func(p *vtime.Proc) {
		root := h.Begin("test", "root", 0)
		prev := root.Enter()
		if cur := h.Cur(); cur.Span != root.Ctx().Span || cur.Trace != root.Ctx().Trace {
			t.Errorf("Enter did not install the span: cur %+v, span %+v", cur, root.Ctx())
		}
		child := h.Begin("test", "child", 0)
		child.End()
		root.Exit(prev)
		if !h.Cur().Zero() {
			t.Errorf("Exit did not restore the empty ambient context: %+v", h.Cur())
		}
		orphan := h.Begin("test", "orphan", 0)
		orphan.End()
		root.End()
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	spans := h.Spans()
	byName := map[string]SpanInfo{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	root, child, orphan := byName["root"], byName["child"], byName["orphan"]
	if child.Parent != root.ID || child.Trace != root.Trace {
		t.Errorf("child not adopted: %+v vs root %+v", child, root)
	}
	if orphan.Parent != 0 || orphan.Trace != orphan.ID {
		t.Errorf("orphan should be its own root: %+v", orphan)
	}
}
