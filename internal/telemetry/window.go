// Windowed sampling without Reset: the sampler (and any other
// periodic consumer) needs "what happened since the last scrape", but
// counters and histograms are cumulative and shared — resetting them
// would corrupt every other reader (SLO monitor, end-of-run snapshot).
// A Window keeps the previous scrape's cumulative values per name and
// returns exact deltas, so per-interval rates are computed from the
// same monotonic state everyone else reads.
package telemetry

import (
	"sync/atomic"

	"padico/internal/vtime"
)

// Window tracks per-name cumulative baselines for delta-since-last
// sampling. Not safe for concurrent use — one Window per consumer.
type Window struct {
	last  map[string]int64
	hists map[string][]int64 // per-bucket cumulative counts, incl. overflow
}

// NewWindow returns an empty window: the first Delta for every name
// reports the full cumulative value (delta from zero), unless the name
// was Primed first.
func NewWindow() *Window {
	return &Window{last: make(map[string]int64), hists: make(map[string][]int64)}
}

// Delta returns cum minus the value recorded at the previous call for
// name, and records cum as the new baseline. First-sample semantics:
// an unseen name reports the full cumulative value. Wraparound
// semantics: a cumulative value below the baseline means the source
// was recreated (a fresh Registry, a restarted layer), so the delta is
// the full new value, never negative.
func (w *Window) Delta(name string, cum int64) int64 {
	prev, seen := w.last[name]
	w.last[name] = cum
	if !seen || cum < prev {
		return cum
	}
	return cum - prev
}

// Prime records cum as the baseline for name without reporting a
// delta, so the next Delta measures only activity after this instant —
// how a sampler excludes setup-phase traffic from its first interval.
func (w *Window) Prime(name string, cum int64) { w.last[name] = cum }

// HistSample is one windowed histogram reading: observations, summed
// virtual time, and quantiles computed over the window only.
type HistSample struct {
	Count    int64
	Sum      vtime.Duration
	P50, P99 vtime.Duration
}

// HistDelta returns the histogram activity since the previous call for
// name and advances the baseline. Quantiles are exact over the window
// (per-bucket deltas, not cumulative ranks); observations that landed
// in the overflow bucket report the histogram's lifetime max, the same
// honesty rule as Histogram.Quantile. A nil histogram reports zeros.
func (w *Window) HistDelta(name string, h *Histogram) HistSample {
	if h == nil {
		return HistSample{}
	}
	cur := make([]int64, len(h.counts))
	for i := range h.counts {
		cur[i] = atomic.LoadInt64(&h.counts[i])
	}
	prev := w.hists[name]
	w.hists[name] = cur
	deltas := make([]int64, len(cur))
	reset := prev == nil
	if !reset {
		for i := range cur {
			if cur[i] < prev[i] {
				reset = true
				break
			}
		}
	}
	var s HistSample
	for i := range cur {
		d := cur[i]
		if !reset {
			d -= prev[i]
		}
		deltas[i] = d
		s.Count += d
	}
	s.Sum = vtime.Duration(w.Delta(name+"\x00sum", atomic.LoadInt64(&h.sum)))
	if s.Count == 0 {
		return s
	}
	s.P50 = windowQuantile(h, deltas, s.Count, 0.50)
	s.P99 = windowQuantile(h, deltas, s.Count, 0.99)
	return s
}

// windowQuantile ranks q within the windowed bucket deltas.
func windowQuantile(h *Histogram, deltas []int64, n int64, q float64) vtime.Duration {
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i, d := range deltas {
		cum += d
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return vtime.Duration(atomic.LoadInt64(&h.max))
		}
	}
	return vtime.Duration(atomic.LoadInt64(&h.max))
}

// HistogramByName returns the named histogram without creating it
// (nil when absent) — the sampler's read-only lookup.
func (r *Registry) HistogramByName(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}
