// Metrics registry: named counters, gauges, and fixed-bucket
// virtual-time histograms with a deterministic sorted snapshot.
//
// The registry is the unification point for the per-layer Stats structs
// (datagrid, session, group, weather, vrp): each layer keeps its struct
// of atomically-bumped int64 fields for cheap hot-path accounting and
// *binds* it into the registry (BindStruct), which walks the fields
// with reflection only at Snapshot time — registration itself is one
// slice append, so attaching telemetry adds no per-operation work and
// near-zero setup allocations.
package telemetry

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"padico/internal/vtime"
)

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (disabled telemetry) and safe for concurrent use.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a point-in-time value.
type Gauge struct{ v int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// defaultBuckets is a 1-2-5 exponential ladder from 1 µs to 100 s —
// wide enough for NIC-level latencies and WAN-scale transfer times in
// the same histogram.
var defaultBuckets = func() []vtime.Duration {
	var b []vtime.Duration
	for mag := vtime.Duration(1000); mag <= 100e9; mag *= 10 {
		for _, m := range []vtime.Duration{1, 2, 5} {
			if d := m * mag; d <= 100e9 {
				b = append(b, d)
			}
		}
	}
	return b
}()

// Histogram is a fixed-bucket virtual-time histogram. Buckets are
// upper bounds; one implicit overflow bucket catches the rest.
// Observations are atomic adds — no allocation, no lock.
type Histogram struct {
	bounds []vtime.Duration
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64   // ns
	n      int64
	max    int64 // ns, CAS-maintained
}

func newHistogram(bounds []vtime.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = defaultBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d vtime.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	atomic.AddInt64(&h.n, 1)
	atomic.AddInt64(&h.sum, int64(d))
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	atomic.AddInt64(&h.counts[i], 1)
	for {
		m := atomic.LoadInt64(&h.max)
		if int64(d) <= m || atomic.CompareAndSwapInt64(&h.max, m, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.n)
}

// Sum returns the total observed virtual time.
func (h *Histogram) Sum() vtime.Duration {
	if h == nil {
		return 0
	}
	return vtime.Duration(atomic.LoadInt64(&h.sum))
}

// Quantile returns a deterministic estimate of the q-quantile: the
// upper bound of the bucket holding the q-ranked observation. The
// overflow bucket reports the maximum observed value, so p99/p100 stay
// honest for outliers beyond the ladder.
func (h *Histogram) Quantile(q float64) vtime.Duration {
	if h == nil {
		return 0
	}
	n := atomic.LoadInt64(&h.n)
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range h.counts {
		cum += atomic.LoadInt64(&h.counts[i])
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return vtime.Duration(atomic.LoadInt64(&h.max))
		}
	}
	return vtime.Duration(atomic.LoadInt64(&h.max))
}

// CountAtMost returns how many observations fell in buckets whose upper
// bound is <= d — the "good events" count for a latency SLO with
// threshold d. The threshold is effectively rounded down to a bucket
// boundary of the 1-2-5 ladder; declare objectives on ladder values
// (1ms, 2ms, 5ms, ...) for exact semantics.
func (h *Histogram) CountAtMost(d vtime.Duration) int64 {
	if h == nil {
		return 0
	}
	var cum int64
	for i, b := range h.bounds {
		if b > d {
			break
		}
		cum += atomic.LoadInt64(&h.counts[i])
	}
	return cum
}

// Kind discriminates snapshot entries.
type Kind int

// Snapshot metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Metric is one row of a registry snapshot.
type Metric struct {
	Name  string
	Kind  Kind
	Value int64 // counter or gauge value
	// Histogram-only fields.
	Count    int64
	Sum      vtime.Duration
	P50, P99 vtime.Duration
}

// boundStruct defers reflection over a layer's Stats struct to
// Snapshot time: registering costs one append, reading is cold-path.
type boundStruct struct {
	prefix string
	v      reflect.Value // struct value (addressable)
}

// Registry holds named metrics. Creation methods are idempotent on the
// name; Snapshot returns every metric sorted by name. All methods are
// nil-receiver-safe so layers can instrument unconditionally.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	funcs     map[string][]func() int64
	gaugeFns  map[string][]func() int64
	volatiles map[string]bool
	bound     []boundStruct
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		funcs:     make(map[string][]func() int64),
		gaugeFns:  make(map[string][]func() int64),
		volatiles: make(map[string]bool),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the default
// 1-2-5 µs..100s bucket ladder on first use.
func (r *Registry) Histogram(name string, bounds ...vtime.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers an externally-stored counter read through fn at
// snapshot time. Multiple registrations under one name sum — several
// instances of a layer (two VRP endpoints, several groups) aggregate
// naturally.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = append(r.funcs[name], fn)
}

// GaugeFunc registers an externally-stored gauge read through fn at
// snapshot time — the instrumentation shape for state a layer already
// maintains (queue depths, live-channel counts, dirty bytes) where
// pushing a Gauge on every mutation would scatter Set calls through
// hot paths. Multiple registrations under one name sum, so per-node
// instances (store engines, sessions) aggregate naturally.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = append(r.gaugeFns[name], fn)
}

// MarkVolatile flags metric names whose values depend on wall-clock
// effects outside the simulation (GC-driven sync.Pool hit rates, for
// example). Volatile metrics stay visible in snapshots and Prometheus
// exposition but are excluded from the deterministic series sampler,
// which is pinned bit-identical across runs.
func (r *Registry) MarkVolatile(names ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		r.volatiles[n] = true
	}
}

// Volatile reports whether name was flagged by MarkVolatile.
func (r *Registry) Volatile(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.volatiles[name]
}

// BindStruct registers every int64 field of the struct pointed to by s
// as a counter named prefix.snake_case(field). A `metric:"name"` field
// tag overrides the derived name; `metric:"-"` skips the field. Fields
// are read with atomic loads at snapshot time, so structs bumped via
// atomic.AddInt64 from kernel procs snapshot race-free. Binding from
// several instances under the same prefix aggregates (sums) like
// CounterFunc.
func (r *Registry) BindStruct(prefix string, s any) {
	if r == nil {
		return
	}
	v := reflect.ValueOf(s)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("telemetry: BindStruct wants *struct, got %T", s))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bound = append(r.bound, boundStruct{prefix: prefix, v: v.Elem()})
}

// snakeCase converts a Go field name to a metric name component:
// "CircuitOpens" -> "circuit_opens", "WANBytes" -> "wan_bytes".
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, c := range rs {
		if c >= 'A' && c <= 'Z' {
			prevLower := i > 0 && (rs[i-1] >= 'a' && rs[i-1] <= 'z' || rs[i-1] >= '0' && rs[i-1] <= '9')
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			c += 'a' - 'A'
		}
		b.WriteRune(c)
	}
	return b.String()
}

// Value returns the summed value of the named counter across direct
// counters, counter funcs and bound-struct fields — the same total the
// snapshot would report, read for one name (the SLO monitor's tick
// path). Unknown names read 0.
func (r *Registry) Value(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum int64
	if c := r.counters[name]; c != nil {
		sum += c.Value()
	}
	for _, fn := range r.funcs[name] {
		sum += fn()
	}
	for _, bs := range r.bound {
		if !strings.HasPrefix(name, bs.prefix) || len(name) <= len(bs.prefix) || name[len(bs.prefix)] != '.' {
			continue
		}
		want := name[len(bs.prefix)+1:]
		t := bs.v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Type.Kind() != reflect.Int64 || !f.IsExported() {
				continue
			}
			fname := snakeCase(f.Name)
			if tag, ok := f.Tag.Lookup("metric"); ok {
				if tag == "-" {
					continue
				}
				fname = tag
			}
			if fname == want {
				sum += atomic.LoadInt64(bs.v.Field(i).Addr().Interface().(*int64))
			}
		}
	}
	return sum
}

// Snapshot returns every registered metric sorted by name. Histogram
// rows carry count/sum/p50/p99. The result is deterministic: map
// iteration order is erased by the sort, and every value is read
// atomically.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sums := make(map[string]int64)
	for name, c := range r.counters {
		sums[name] += c.Value()
	}
	for name, fns := range r.funcs {
		for _, fn := range fns {
			sums[name] += fn()
		}
	}
	for _, bs := range r.bound {
		t := bs.v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Type.Kind() != reflect.Int64 || !f.IsExported() {
				continue
			}
			name := snakeCase(f.Name)
			if tag, ok := f.Tag.Lookup("metric"); ok {
				if tag == "-" {
					continue
				}
				name = tag
			}
			addr := bs.v.Field(i).Addr().Interface().(*int64)
			sums[bs.prefix+"."+name] += atomic.LoadInt64(addr)
		}
	}
	gaugeSums := make(map[string]int64, len(r.gauges)+len(r.gaugeFns))
	for name, g := range r.gauges {
		gaugeSums[name] += g.Value()
	}
	for name, fns := range r.gaugeFns {
		for _, fn := range fns {
			gaugeSums[name] += fn()
		}
	}
	out := make([]Metric, 0, len(sums)+len(gaugeSums)+len(r.hists))
	for name, v := range sums {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: v})
	}
	for name, v := range gaugeSums {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: v})
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Kind: KindHistogram,
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FormatSnapshot renders a snapshot as an aligned text table.
func FormatSnapshot(ms []Metric) string {
	var b strings.Builder
	width := 0
	for _, m := range ms {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range ms {
		switch m.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, "%-*s  n=%d p50=%v p99=%v sum=%v\n",
				width, m.Name, m.Count, m.P50, m.P99, m.Sum)
		default:
			fmt.Fprintf(&b, "%-*s  %d\n", width, m.Name, m.Value)
		}
	}
	return b.String()
}
