// The time-series sampler: a kernel daemon that scrapes the whole
// registry on a fixed virtual-time cadence into bounded series.Set
// tracks — counter deltas become per-second rates, gauges become level
// samples, histograms become windowed rate + p50/p99 quantile tracks.
// Scrapes consume zero virtual time (the daemon only sleeps), so
// attaching a sampler never perturbs the simulation it observes; runs
// that do not start one are byte-identical to runs before this file
// existed.
//
// Cadence rules, enforced here and documented in DESIGN.md:
//   - one scrape per interval, first scrape at t0+interval;
//   - the window is primed at start, so the first interval measures
//     only post-start activity (setup traffic is excluded);
//   - metrics flagged MarkVolatile (wall-clock-coupled values like
//     sync.Pool hit rates) are skipped — the series artifact stays
//     bit-identical across runs and is pinned in determinism tests;
//   - counters named *.busy_ns render as a *.busy_frac gauge in
//     [0,1] — time-integrated utilization over the interval — instead
//     of a raw ns/s rate.
package telemetry

import (
	"io"
	"strings"

	"padico/internal/telemetry/series"
	"padico/internal/vtime"
)

// Sampler scrapes the hub's registry on a fixed virtual-time cadence.
// Create with Hub.StartSampler; all methods are nil-receiver-safe so
// benches can thread an optional sampler without guards.
type Sampler struct {
	h        *Hub
	interval vtime.Duration
	set      *series.Set
	win      *Window
	scrapes  int64
	stopped  bool
}

// StartSampler spawns the sampling daemon on the hub's kernel.
// interval <= 0 defaults to 250ms of virtual time — the same cadence
// as the SLO monitor, fine enough to resolve a WAN degrade, coarse
// enough that a 30s run stays well inside one ring. Returns nil on a
// nil hub (and a nil *Sampler no-ops everywhere).
func (h *Hub) StartSampler(interval vtime.Duration) *Sampler {
	if h == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250e6
	}
	s := &Sampler{
		h:        h,
		interval: interval,
		set:      series.New(interval, 0),
		win:      NewWindow(),
	}
	s.prime()
	h.k.GoDaemon("series-sampler", func(p *vtime.Proc) {
		for {
			p.Sleep(s.interval)
			if s.stopped {
				return
			}
			s.scrape(p.Now())
		}
	})
	return s
}

// prime records the current cumulative values as baselines so the
// first interval reports only activity after StartSampler.
func (s *Sampler) prime() {
	for _, m := range s.h.reg.Snapshot() {
		switch m.Kind {
		case KindCounter:
			s.win.Prime(m.Name, m.Value)
		case KindHistogram:
			s.win.HistDelta(m.Name, s.h.reg.HistogramByName(m.Name))
		}
	}
}

// scrape takes one sample of every non-volatile metric.
func (s *Sampler) scrape(now vtime.Time) {
	ival := float64(s.interval)
	for _, m := range s.h.reg.Snapshot() {
		if s.h.reg.Volatile(m.Name) {
			continue
		}
		switch m.Kind {
		case KindCounter:
			d := s.win.Delta(m.Name, m.Value)
			if base, ok := strings.CutSuffix(m.Name, ".busy_ns"); ok {
				s.set.Add(base+".busy_frac", series.KindGauge, "frac", now, float64(d)/ival)
				continue
			}
			s.set.Add(m.Name, series.KindRate, "/s", now, float64(d)*1e9/ival)
		case KindGauge:
			s.set.Add(m.Name, series.KindGauge, gaugeUnit(m.Name), now, float64(m.Value))
		case KindHistogram:
			hs := s.win.HistDelta(m.Name, s.h.reg.HistogramByName(m.Name))
			s.set.Add(m.Name+".rate", series.KindRate, "/s", now, float64(hs.Count)*1e9/ival)
			s.set.Add(m.Name+".p50", series.KindQuantile, "ns", now, float64(hs.P50))
			s.set.Add(m.Name+".p99", series.KindQuantile, "ns", now, float64(hs.P99))
		}
	}
	s.scrapes++
}

// gaugeUnit derives a display unit from naming convention.
func gaugeUnit(name string) string {
	switch {
	case strings.HasSuffix(name, "_bytes"):
		return "bytes"
	case strings.HasSuffix(name, "_frac"):
		return "frac"
	default:
		return ""
	}
}

// Stop halts sampling at the next tick; the set keeps what it has.
func (s *Sampler) Stop() {
	if s != nil {
		s.stopped = true
	}
}

// Scrapes returns how many scrapes have completed.
func (s *Sampler) Scrapes() int64 {
	if s == nil {
		return 0
	}
	return s.scrapes
}

// Series returns the accumulated track set (nil on a nil sampler; a
// nil *series.Set is itself safe to encode).
func (s *Sampler) Series() *series.Set {
	if s == nil {
		return nil
	}
	return s.set
}

// WriteJSON emits the deterministic series JSON (see series.WriteJSON).
func (s *Sampler) WriteJSON(w io.Writer) error { return s.Series().WriteJSON(w) }

// WriteDash emits the self-contained HTML dashboard (see series.WriteDash).
func (s *Sampler) WriteDash(w io.Writer, o series.DashOptions) error {
	if s == nil {
		return series.New(0, 0).WriteDash(w, o)
	}
	return s.set.WriteDash(w, o)
}
