package series

import (
	"bytes"
	"strings"
	"testing"

	"padico/internal/vtime"
)

func TestTrackRingDownsampling(t *testing.T) {
	s := New(1e9, 4)
	tr := s.Track("g", KindGauge, "")
	for i := 0; i < 4; i++ {
		tr.Add(vtime.Time(i)*1e9, float64(i)) // 0,1,2,3 → cap hit → halve
	}
	pts := tr.Points()
	if len(pts) != 2 || tr.Stride() != 2 {
		t.Fatalf("after cap: %d points stride %d, want 2 points stride 2", len(pts), tr.Stride())
	}
	// Gauge pairs merge by mean; the merged point keeps the later time.
	if pts[0].V != 0.5 || pts[1].V != 2.5 {
		t.Fatalf("gauge pair means: got %v/%v, want 0.5/2.5", pts[0].V, pts[1].V)
	}
	if pts[0].T != 1e9 || pts[1].T != 3e9 {
		t.Fatalf("merged times: got %v/%v, want 1e9/3e9", pts[0].T, pts[1].T)
	}
	// At stride 2, two raw samples make one stored point.
	tr.Add(4e9, 10)
	if len(tr.Points()) != 2 {
		t.Fatalf("half-accumulated sample must not store a point")
	}
	tr.Add(5e9, 20)
	pts = tr.Points()
	if len(pts) != 3 || pts[2].V != 15 || pts[2].T != 5e9 {
		t.Fatalf("stride-2 merge: got %+v", pts)
	}
}

func TestTrackMergeRules(t *testing.T) {
	s := New(1e9, 4)
	q := s.Track("q", KindQuantile, "ns")
	for i, v := range []float64{5, 1, 2, 8} {
		q.Add(vtime.Time(i)*1e9, v)
	}
	pts := q.Points()
	// Quantile pairs merge by max: downsampling never hides a spike.
	if pts[0].V != 5 || pts[1].V != 8 {
		t.Fatalf("quantile pair max: got %v/%v, want 5/8", pts[0].V, pts[1].V)
	}
	r := s.Track("r", KindRate, "/s")
	for i, v := range []float64{2, 4, 10, 30} {
		r.Add(vtime.Time(i)*1e9, v)
	}
	pts = r.Points()
	// Rate pairs merge by mean (equal-width intervals).
	if pts[0].V != 3 || pts[1].V != 20 {
		t.Fatalf("rate pair mean: got %v/%v, want 3/20", pts[0].V, pts[1].V)
	}
}

func TestTrackRepeatedDownsampling(t *testing.T) {
	s := New(1e9, 8)
	tr := s.Track("g", KindGauge, "")
	for i := 0; i < 64; i++ {
		tr.Add(vtime.Time(i)*1e9, 1)
	}
	if got := len(tr.Points()); got > 8 {
		t.Fatalf("ring exceeded cap: %d points", got)
	}
	if tr.Stride() < 8 {
		t.Fatalf("stride did not grow: %d", tr.Stride())
	}
	for _, p := range tr.Points() {
		if p.V != 1 {
			t.Fatalf("constant series must stay constant through downsampling, got %v", p.V)
		}
	}
}

func TestSetNilSafety(t *testing.T) {
	var s *Set
	if s.Track("a", KindGauge, "") != nil {
		t.Fatal("nil set must return nil track")
	}
	s.Add("a", KindGauge, "", 0, 1) // must not panic
	if s.Len() != 0 || s.Tracks() != nil || s.Get("a") != nil {
		t.Fatal("nil set accessors must be empty")
	}
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "{\"interval_ns\":0,\"series\":[]}\n" {
		t.Fatalf("nil set JSON: %q", b.String())
	}
	var nilTrack *Track
	nilTrack.Add(0, 1) // must not panic
}

func TestWriteJSONDeterministic(t *testing.T) {
	build := func() *Set {
		s := New(250e6, 0)
		// Insertion order differs; output must not.
		names := []string{"b.two", "a.one", "c.three"}
		for i, n := range names {
			s.Add(n, KindGauge, "", vtime.Time(i)*1e9, float64(i)+0.5)
		}
		return s
	}
	j1, j2 := build().JSON(), build().JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("series JSON differs between identical builds")
	}
	out := string(j1)
	if !strings.Contains(out, `"name":"a.one"`) ||
		strings.Index(out, "a.one") > strings.Index(out, "b.two") {
		t.Fatalf("tracks not sorted by name: %s", out)
	}
}

func TestWriteDashSelfContained(t *testing.T) {
	s := New(250e6, 0)
	for i := 0; i < 8; i++ {
		s.Add("netsim.hop.core.busy_frac", KindGauge, "frac", vtime.Time(i)*1e9, float64(i%3))
		s.Add("datagrid.puts", KindRate, "/s", vtime.Time(i)*1e9, float64(i))
	}
	var b bytes.Buffer
	err := s.WriteDash(&b, DashOptions{
		Title: "t", Subtitle: "sub",
		Marks: []Mark{{T: 3e9, Label: "degrade"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "degrade", "netsim.hop.core.busy_frac", "datagrid.puts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	for _, forbid := range []string{"<script", "src=", "href="} {
		if strings.Contains(out, forbid) {
			t.Fatalf("dashboard not self-contained: found %q", forbid)
		}
	}
}
