// Self-contained HTML dashboard: every track in a Set rendered as an
// inline-SVG timeline, grouped by layer, with vertical markers for
// run events (degrade, partition, heal). One file, no external
// JavaScript or CSS, deterministic byte-for-byte output — it can be
// opened from a CI artifact or an air-gapped machine and diffed like
// any other pinned artifact.
package series

import (
	"bytes"
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"

	"padico/internal/vtime"
)

// Mark is a vertical annotation line drawn on every chart — the
// instants that explain the curves (WAN degrade, partition, heal).
type Mark struct {
	T     vtime.Time
	Label string
}

// DashOptions configures WriteDash.
type DashOptions struct {
	Title    string
	Subtitle string
	Marks    []Mark
}

// Chart geometry: fixed so output is stable and charts align.
const (
	dashChartW = 860.0 // plot width, px
	dashChartH = 96.0  // plot height, px
	dashPadL   = 8.0
	dashPadT   = 6.0
)

// layerPalette maps chart stroke colors to layers deterministically by
// hashing the layer name onto a fixed palette.
var dashPalette = []string{
	"#4fc3f7", "#81c784", "#ffb74d", "#e57373", "#ba68c8",
	"#f06292", "#4db6ac", "#fff176", "#a1887f", "#90a4ae",
}

func dashColor(layer string) string {
	var h uint32
	for i := 0; i < len(layer); i++ {
		h = h*31 + uint32(layer[i])
	}
	return dashPalette[h%uint32(len(dashPalette))]
}

// layerOf splits "netsim.hop.core:vthd.busy_ns" → "netsim".
func layerOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// fmtCoord renders an SVG coordinate with fixed precision so output
// bytes never depend on float noise in the shortest-form algorithm.
func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// fmtVal renders an axis label compactly: SI-ish suffixes keep the
// gutter narrow without losing the order of magnitude.
func fmtVal(v float64) string {
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v >= 1e9:
		return neg + trimZero(strconv.FormatFloat(v/1e9, 'f', 2, 64)) + "G"
	case v >= 1e6:
		return neg + trimZero(strconv.FormatFloat(v/1e6, 'f', 2, 64)) + "M"
	case v >= 1e3:
		return neg + trimZero(strconv.FormatFloat(v/1e3, 'f', 2, 64)) + "k"
	case v >= 10 || v == 0:
		return neg + trimZero(strconv.FormatFloat(v, 'f', 1, 64))
	default:
		return neg + trimZero(strconv.FormatFloat(v, 'f', 3, 64))
	}
}

func trimZero(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// fmtSec renders a virtual-time axis label in seconds.
func fmtSec(t vtime.Time) string {
	return trimZero(strconv.FormatFloat(float64(t)/1e9, 'f', 2, 64)) + "s"
}

// WriteDash renders the whole set as one HTML file. Tracks are grouped
// by layer (name prefix before the first dot), each rendered as an
// area+line timeline over the full virtual-time span of the set, with
// the option marks drawn as labelled vertical rules on every chart.
func (s *Set) WriteDash(w io.Writer, o DashOptions) error {
	var b bytes.Buffer
	title := o.Title
	if title == "" {
		title = "padico time-series"
	}
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(dashCSS)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	if o.Subtitle != "" {
		fmt.Fprintf(&b, "<p class=\"sub\">%s</p>\n", html.EscapeString(o.Subtitle))
	}

	tracks := s.Tracks()
	// Global time span so every chart shares one x-axis.
	var t0, t1 vtime.Time
	first := true
	for _, t := range tracks {
		for _, p := range t.pts {
			if first || p.T < t0 {
				t0 = p.T
			}
			if first || p.T > t1 {
				t1 = p.T
			}
			first = false
		}
	}
	for _, m := range o.Marks {
		if first || m.T < t0 {
			t0 = m.T
		}
		if first || m.T > t1 {
			t1 = m.T
		}
		first = false
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	span := float64(t1 - t0)

	if len(o.Marks) > 0 {
		b.WriteString("<p class=\"sub\">marks: ")
		for i, m := range o.Marks {
			if i > 0 {
				b.WriteString(" · ")
			}
			fmt.Fprintf(&b, "%s @ %s", html.EscapeString(m.Label), fmtSec(m.T))
		}
		b.WriteString("</p>\n")
	}

	lastLayer := ""
	for _, t := range tracks {
		if layer := layerOf(t.Name); layer != lastLayer {
			fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(layer))
			lastLayer = layer
		}
		writeChart(&b, t, t0, span, o.Marks)
	}
	b.WriteString(dashFooter)
	b.WriteString("</body>\n</html>\n")
	_, err := w.Write(b.Bytes())
	return err
}

func writeChart(b *bytes.Buffer, t *Track, t0 vtime.Time, span float64, marks []Mark) {
	lo, hi := t.MinMax()
	if lo > 0 { // anchor at zero so levels read absolutely
		lo = 0
	}
	if hi <= lo {
		hi = lo + 1
	}
	vspan := hi - lo

	x := func(at vtime.Time) float64 {
		return dashPadL + dashChartW*float64(at-t0)/span
	}
	y := func(v float64) float64 {
		return dashPadT + dashChartH*(1-(v-lo)/vspan)
	}

	unit := t.Unit
	if unit != "" {
		unit = " " + unit
	}
	fmt.Fprintf(b, "<div class=\"chart\">\n<div class=\"name\">%s <span class=\"kind\">%s%s · peak %s · last %s</span></div>\n",
		html.EscapeString(t.Name), html.EscapeString(t.Kind), html.EscapeString(unit),
		fmtVal(hi), fmtVal(t.Last()))
	totW := dashPadL*2 + dashChartW
	totH := dashPadT*2 + dashChartH + 14
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %s %s\" width=\"%s\" height=\"%s\">\n",
		fmtCoord(totW), fmtCoord(totH), fmtCoord(totW), fmtCoord(totH))
	// Frame and zero line.
	fmt.Fprintf(b, "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" class=\"frame\"/>\n",
		fmtCoord(dashPadL), fmtCoord(dashPadT), fmtCoord(dashChartW), fmtCoord(dashChartH))
	if lo < 0 && hi > 0 {
		fmt.Fprintf(b, "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" class=\"zero\"/>\n",
			fmtCoord(dashPadL), fmtCoord(y(0)), fmtCoord(dashPadL+dashChartW), fmtCoord(y(0)))
	}
	// Marks behind the data.
	for _, m := range marks {
		mx := x(m.T)
		fmt.Fprintf(b, "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" class=\"mark\"/>\n",
			fmtCoord(mx), fmtCoord(dashPadT), fmtCoord(mx), fmtCoord(dashPadT+dashChartH))
	}
	// Area fill + line.
	color := dashColor(layerOf(t.Name))
	if len(t.pts) > 0 {
		var area, line strings.Builder
		base := y(lo)
		if lo < 0 && hi > 0 {
			base = y(0)
		}
		fmt.Fprintf(&area, "M%s %s", fmtCoord(x(t.pts[0].T)), fmtCoord(base))
		for i, p := range t.pts {
			px, py := fmtCoord(x(p.T)), fmtCoord(y(p.V))
			fmt.Fprintf(&area, " L%s %s", px, py)
			if i == 0 {
				fmt.Fprintf(&line, "M%s %s", px, py)
			} else {
				fmt.Fprintf(&line, " L%s %s", px, py)
			}
		}
		fmt.Fprintf(&area, " L%s %s Z", fmtCoord(x(t.pts[len(t.pts)-1].T)), fmtCoord(base))
		fmt.Fprintf(b, "<path d=\"%s\" fill=\"%s\" opacity=\"0.18\"/>\n", area.String(), color)
		fmt.Fprintf(b, "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n", line.String(), color)
	}
	// Axis labels: y extremes on the left inside the frame, x extremes
	// under the frame.
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" class=\"lab\">%s</text>\n",
		fmtCoord(dashPadL+4), fmtCoord(dashPadT+11), html.EscapeString(fmtVal(hi)))
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" class=\"lab\">%s</text>\n",
		fmtCoord(dashPadL+4), fmtCoord(dashPadT+dashChartH-4), html.EscapeString(fmtVal(lo)))
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" class=\"lab\">%s</text>\n",
		fmtCoord(dashPadL), fmtCoord(dashPadT+dashChartH+12), html.EscapeString(fmtSec(t0)))
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" class=\"lab end\">%s</text>\n",
		fmtCoord(dashPadL+dashChartW), fmtCoord(dashPadT+dashChartH+12),
		html.EscapeString(fmtSec(t0+vtime.Time(span))))
	b.WriteString("</svg>\n</div>\n")
}

const dashCSS = `<style>
body { background: #14161a; color: #d7dae0; font: 13px/1.45 -apple-system, "Segoe UI", sans-serif; margin: 24px auto; max-width: 920px; }
h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
h2 { font-size: 14px; font-weight: 600; color: #8ab4f8; margin: 22px 0 6px; border-bottom: 1px solid #2a2e36; padding-bottom: 3px; }
.sub { color: #9aa0a6; margin: 2px 0 10px; }
.chart { margin: 8px 0 14px; }
.name { font-family: ui-monospace, monospace; font-size: 12px; margin-bottom: 2px; }
.kind { color: #9aa0a6; }
.frame { fill: #1b1e24; stroke: #2a2e36; }
.zero { stroke: #3a3f48; stroke-dasharray: 3 3; }
.mark { stroke: #e8a13a; stroke-dasharray: 2 3; opacity: 0.8; }
.lab { fill: #7d848d; font: 10px ui-monospace, monospace; }
.lab.end { text-anchor: end; }
footer { color: #5f6368; margin-top: 24px; font-size: 11px; }
</style>
`

const dashFooter = `<footer>Self-contained dashboard: inline SVG, no external assets. Virtual-time axis; every chart shares the same span and event marks.</footer>
`
