// Package series is the time-series data model behind the telemetry
// sampler: compact per-metric tracks of (virtual time, value) points,
// bounded by a ring with deterministic downsampling, and deterministic
// encoders (series JSON for pinning, a self-contained SVG dashboard
// for humans — see dash.go).
//
// The package is pure data — it imports only vtime — so the sampler
// (internal/telemetry), benches and tests can all build and consume
// sets without import cycles. Everything is deterministic by
// construction: insertion order is erased by sorted encoding, floats
// are formatted with strconv's shortest round-trip form, and the
// downsampling rule depends only on the sample sequence, never on
// wall-clock or map order.
package series

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"

	"padico/internal/vtime"
)

// Track kinds: how samples merge when the ring downsamples.
const (
	// KindRate marks per-interval rates derived from counter deltas;
	// adjacent samples merge by mean (equal-width intervals, so the
	// mean of two rates is the rate over the doubled interval).
	KindRate = "rate"
	// KindGauge marks point-in-time levels; adjacent samples merge by
	// mean.
	KindGauge = "gauge"
	// KindQuantile marks latency-quantile tracks; adjacent samples
	// merge by max, so downsampling never hides a latency spike.
	KindQuantile = "quantile"
)

// DefaultCap is the ring bound: a track holds at most this many
// points. Even, so pair-merging halves it exactly.
const DefaultCap = 480

// Point is one sample.
type Point struct {
	T vtime.Time
	V float64
}

// Track is one bounded series. Add samples in non-decreasing time
// order; when the ring fills, adjacent pairs merge (per the kind's
// rule) and the track's stride doubles — each stored point then covers
// twice the virtual time, and resolution degrades gracefully instead
// of the head of the run falling off.
type Track struct {
	Name string
	Kind string
	Unit string // display hint: "/s", "bytes", "ns", ...

	cap    int
	stride int // raw samples per stored point
	nacc   int // raw samples accumulated toward the next stored point
	acc    float64
	pts    []Point
}

func newTrack(name, kind, unit string, cap int) *Track {
	if cap < 2 {
		cap = 2
	}
	cap &^= 1 // even, so downsampling halves exactly
	return &Track{Name: name, Kind: kind, Unit: unit, cap: cap, stride: 1}
}

// merge folds sample v into the running accumulator per the kind rule.
func (t *Track) merge(accum float64, n int, v float64) float64 {
	if t.Kind == KindQuantile {
		if n == 0 || v > accum {
			return v
		}
		return accum
	}
	return accum + v
}

// finish converts the accumulator into the stored value.
func (t *Track) finish(accum float64, n int) float64 {
	if t.Kind == KindQuantile || n <= 1 {
		return accum
	}
	return accum / float64(n)
}

// Add appends one raw sample taken at virtual time at.
func (t *Track) Add(at vtime.Time, v float64) {
	if t == nil {
		return
	}
	t.acc = t.merge(t.acc, t.nacc, v)
	t.nacc++
	if t.nacc < t.stride {
		return
	}
	t.pts = append(t.pts, Point{T: at, V: t.finish(t.acc, t.nacc)})
	t.acc, t.nacc = 0, 0
	if len(t.pts) >= t.cap {
		t.downsample()
	}
}

// downsample merges adjacent pairs in place and doubles the stride.
func (t *Track) downsample() {
	half := len(t.pts) / 2
	for i := 0; i < half; i++ {
		a, b := t.pts[2*i], t.pts[2*i+1]
		v := t.merge(t.merge(0, 0, a.V), 1, b.V)
		t.pts[i] = Point{T: b.T, V: t.finish(v, 2)}
	}
	// An odd leftover (possible only with an odd cap rounded down)
	// cannot happen: cap is even and downsample fires exactly at cap.
	t.pts = t.pts[:half]
	t.stride *= 2
}

// Points returns the stored points (shared slice — do not mutate).
func (t *Track) Points() []Point { return t.pts }

// Stride returns how many raw samples each stored point covers.
func (t *Track) Stride() int { return t.stride }

// Last returns the most recent stored value (0 on an empty track).
func (t *Track) Last() float64 {
	if len(t.pts) == 0 {
		return 0
	}
	return t.pts[len(t.pts)-1].V
}

// MinMax returns the stored value extremes (0,0 on an empty track).
func (t *Track) MinMax() (lo, hi float64) {
	for i, p := range t.pts {
		if i == 0 || p.V < lo {
			lo = p.V
		}
		if i == 0 || p.V > hi {
			hi = p.V
		}
	}
	return lo, hi
}

// Set is a collection of tracks sampled on one cadence.
type Set struct {
	Interval vtime.Duration
	cap      int
	tracks   map[string]*Track
}

// New builds an empty set; cap <= 0 selects DefaultCap.
func New(interval vtime.Duration, cap int) *Set {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Set{Interval: interval, cap: cap, tracks: make(map[string]*Track)}
}

// Track returns the named track, creating it with the given kind and
// unit on first use. Nil-safe: a nil set returns nil, and a nil track
// ignores Add.
func (s *Set) Track(name, kind, unit string) *Track {
	if s == nil {
		return nil
	}
	t := s.tracks[name]
	if t == nil {
		t = newTrack(name, kind, unit, s.cap)
		s.tracks[name] = t
	}
	return t
}

// Get returns the named track or nil.
func (s *Set) Get(name string) *Track {
	if s == nil {
		return nil
	}
	return s.tracks[name]
}

// Add is shorthand for Track(...).Add(...) on a possibly-nil set.
func (s *Set) Add(name, kind, unit string, at vtime.Time, v float64) {
	if s == nil {
		return
	}
	s.Track(name, kind, unit).Add(at, v)
}

// Tracks returns every track sorted by name — the deterministic
// iteration order of both encoders.
func (s *Set) Tracks() []*Track {
	if s == nil {
		return nil
	}
	out := make([]*Track, 0, len(s.tracks))
	for _, t := range s.tracks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the track count.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.tracks)
}

// fmtF renders a float in its shortest exact form — the bit-identical
// formatting every pinned artifact of this codebase uses.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSON emits the set as deterministic JSON: tracks sorted by
// name, points as [t_ns, value] pairs, floats in shortest round-trip
// form. Two identical runs serialize byte-identically, so the output
// is pinned in determinism tests like any bench table.
func (s *Set) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "{\"interval_ns\":0,\"series\":[]}\n")
		return err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "{\"interval_ns\":%d,\"series\":[", int64(s.Interval))
	for i, t := range s.Tracks() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"name\":%q,\"kind\":%q,\"unit\":%q,\"stride\":%d,\"points\":[",
			t.Name, t.Kind, t.Unit, t.stride)
		for j, p := range t.pts {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('[')
			b.WriteString(strconv.FormatInt(int64(p.T), 10))
			b.WriteByte(',')
			b.WriteString(fmtF(p.V))
			b.WriteByte(']')
		}
		b.WriteString("]}")
	}
	b.WriteString("\n]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// JSON renders the set to a byte slice.
func (s *Set) JSON() []byte {
	var b bytes.Buffer
	s.WriteJSON(&b) // (*bytes.Buffer).Write cannot fail
	return b.Bytes()
}
