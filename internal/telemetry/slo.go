// SLO monitoring in virtual time: declarative objectives over the
// metrics the layers already publish, evaluated by a kernel daemon with
// multi-window burn rates (the Google-SRE alerting shape: a breach
// needs every window hot, so a brief spike does not page; recovery
// follows the short window, so alerts clear promptly).
//
// Two objective shapes cover the stack:
//
//   - Latency: of the observations in a histogram, the fraction
//     completing within Threshold must stay >= Target ("p99 of
//     datagrid transfers <= 500ms" is Target 0.99, Threshold 500ms).
//     Good events are counted with Histogram.CountAtMost, so the
//     threshold is effectively a bucket boundary of the 1-2-5 ladder.
//   - Availability: of the events counted by Total (counter names,
//     summed), the fraction NOT counted by Bad must stay >= Target
//     ("probe availability" is Bad = probe_failures over Total =
//     pings + bandwidth_probes).
//
// The burn rate of a window is badFraction/errorBudget where the
// error budget is 1-Target: burn 1 consumes the budget exactly at the
// allowed pace, burn >= MaxBurn on every window raises the alert.
// Breaches and clears emit telemetry instants (visible in the trace),
// flight-recorder notes, and — on breach — a flight dump, so the
// control-plane history leading into the violation is the post-mortem.
//
// Evaluation runs on the virtual clock and reads deterministic
// counters, so the monitor's full history — burns, breach and clear
// instants — is bit-identical across runs and pinned by the
// determinism tests.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"padico/internal/vtime"
)

// Objective is one declarative SLO.
type Objective struct {
	Name   string
	Target float64 // required fraction of good events, e.g. 0.99

	// Latency mode: set Hist + Threshold.
	Hist      string
	Threshold vtime.Duration

	// Availability mode: set Bad + Total (counter names; Total summed).
	Bad   string
	Total []string

	// Windows are the burn-rate look-backs, shortest first. The alert
	// fires when every window burns at >= MaxBurn and clears when the
	// shortest drops below. Defaults: 2s and 10s, MaxBurn 2.
	Windows []vtime.Duration
	MaxBurn float64
}

func (o *Objective) windows() []vtime.Duration {
	if len(o.Windows) == 0 {
		return []vtime.Duration{2e9, 10e9}
	}
	return o.Windows
}

func (o *Objective) maxBurn() float64 {
	if o.MaxBurn <= 0 {
		return 2
	}
	return o.MaxBurn
}

// sloSample is one cumulative (good, total) reading.
type sloSample struct {
	at          vtime.Time
	good, total int64
}

// sloState is one objective's evaluation state.
type sloState struct {
	obj      Objective
	samples  []sloSample
	burns    []float64 // last tick's burn per window
	breached bool
	breaches int64
	clears   int64
}

// SLOStatus is one objective's externally visible state.
type SLOStatus struct {
	Name             string
	Breached         bool
	Breaches, Clears int64
	Burns            []float64
}

// SLOMonitor evaluates a set of objectives on a fixed virtual-time
// cadence. Create with NewSLOMonitor, start with Start.
type SLOMonitor struct {
	h        *Hub
	interval vtime.Duration
	states   []*sloState
}

// NewSLOMonitor builds a monitor over the hub's registry. interval <= 0
// defaults to 250ms of virtual time. Returns nil on a nil hub.
func NewSLOMonitor(h *Hub, interval vtime.Duration, objs ...Objective) *SLOMonitor {
	if h == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250e6
	}
	m := &SLOMonitor{h: h, interval: interval}
	for _, o := range objs {
		m.states = append(m.states, &sloState{obj: o, burns: make([]float64, len(o.windows()))})
	}
	return m
}

// Start spawns the evaluation daemon. Safe on a nil monitor.
func (m *SLOMonitor) Start() {
	if m == nil {
		return
	}
	m.h.k.GoDaemon("slo-monitor", func(p *vtime.Proc) {
		for {
			p.Sleep(m.interval)
			m.tick()
		}
	})
}

// read returns the objective's cumulative good and total event counts.
func (st *sloState) read(reg *Registry) (good, total int64) {
	o := &st.obj
	if o.Hist != "" {
		h := reg.Histogram(o.Hist)
		return h.CountAtMost(o.Threshold), h.Count()
	}
	for _, name := range o.Total {
		total += reg.Value(name)
	}
	bad := reg.Value(o.Bad)
	if bad > total {
		bad = total
	}
	return total - bad, total
}

// tick takes one reading per objective and re-evaluates the windows.
func (m *SLOMonitor) tick() {
	now := m.h.k.Now()
	for _, st := range m.states {
		good, total := st.read(m.h.reg)
		st.samples = append(st.samples, sloSample{at: now, good: good, total: total})
		windows := st.obj.windows()
		longest := windows[len(windows)-1]
		// Prune anything older than the longest look-back (keep one
		// sample beyond the horizon as the baseline).
		cutoff := now.Add(-longest)
		keep := 0
		for keep+1 < len(st.samples) && st.samples[keep+1].at <= cutoff {
			keep++
		}
		if keep > 0 {
			st.samples = append(st.samples[:0], st.samples[keep:]...)
		}
		budget := 1 - st.obj.Target
		if budget <= 0 {
			budget = 1e-9 // a 100% target burns instantly on any bad event
		}
		hot := true
		for i, w := range windows {
			base := st.samples[0]
			for _, s := range st.samples {
				if s.at <= now.Add(-w) {
					base = s
				} else {
					break
				}
			}
			cur := st.samples[len(st.samples)-1]
			dTotal := cur.total - base.total
			dBad := dTotal - (cur.good - base.good)
			burn := 0.0
			if dTotal > 0 {
				burn = (float64(dBad) / float64(dTotal)) / budget
			}
			st.burns[i] = burn
			if burn < st.obj.maxBurn() {
				hot = false
			}
		}
		switch {
		case hot && !st.breached:
			st.breached = true
			st.breaches++
			m.h.Note("slo", "breach", -1, st.breaches, int64(st.burns[0]*100))
			if m.h.Tracing() {
				m.h.Instant("slo", "breach", -1).
					Str("objective", st.obj.Name).
					I64("burn_pct", int64(st.burns[0]*100)).End()
			}
			m.h.DumpFlight("slo breach: " + st.obj.Name)
		case !hot && st.breached && st.burns[0] < st.obj.maxBurn():
			st.breached = false
			st.clears++
			m.h.Note("slo", "clear", -1, st.clears, int64(st.burns[0]*100))
			if m.h.Tracing() {
				m.h.Instant("slo", "clear", -1).
					Str("objective", st.obj.Name).
					I64("burn_pct", int64(st.burns[0]*100)).End()
			}
		}
	}
}

// Status returns the objectives' current state, in declaration order.
func (m *SLOMonitor) Status() []SLOStatus {
	if m == nil {
		return nil
	}
	out := make([]SLOStatus, len(m.states))
	for i, st := range m.states {
		out[i] = SLOStatus{
			Name: st.obj.Name, Breached: st.breached,
			Breaches: st.breaches, Clears: st.clears,
			Burns: append([]float64(nil), st.burns...),
		}
	}
	return out
}

// FormatSLO renders the monitor's state as an aligned table, sorted by
// objective name — deterministic, pinned by the determinism tests.
func (m *SLOMonitor) FormatSLO() string {
	if m == nil {
		return ""
	}
	sts := m.Status()
	sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
	width := len("objective")
	for _, s := range sts {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %8s  %8s  %6s  %s\n", width, "objective", "breaches", "clears", "state", "burn")
	for _, s := range sts {
		state := "ok"
		if s.Breached {
			state = "BREACH"
		}
		burns := make([]string, len(s.Burns))
		for i, x := range s.Burns {
			burns[i] = fmt.Sprintf("%.2f", x)
		}
		fmt.Fprintf(&b, "%-*s  %8d  %8d  %6s  %s\n",
			width, s.Name, s.Breaches, s.Clears, state, strings.Join(burns, "/"))
	}
	return b.String()
}
