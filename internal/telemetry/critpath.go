// Critical-path analysis over a finished trace: for each request (a
// root span and the tree hanging off it) extract the blocking chain
// that determined its virtual-time makespan, and attribute that time
// per layer/span-kind/node.
//
// The algorithm is a backward decomposition. Starting from the root's
// completion, repeatedly ask "what was the last piece of work to
// finish before this point?": the child span with the latest end not
// after the current frontier. The gap between that child's end and the
// frontier is the enclosing span's own time (it was the one running);
// the child's extent is decomposed recursively; then the frontier jumps
// to the child's start and the scan continues with earlier-finishing
// children. What remains below the earliest child is the enclosing
// span's ramp-up. The result is a disjoint cover of [start, end) of
// the root by the spans that were causally last — the critical path.
// Siblings that finished earlier than the frontier ever reaches were
// hidden behind the blocking chain and contribute nothing, which is
// exactly the point.
//
// Everything here is integer math over virtual times in a fixed span
// order, so the output is bit-identical across runs — the determinism
// tests pin it like any bench table.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"padico/internal/vtime"
)

// CritSeg is one stretch of the critical path, attributed to the span
// that was the blocking work during [Start, Start+Dur).
type CritSeg struct {
	Cat, Name string
	Tid       int
	SpanID    int64
	Start     vtime.Time
	Dur       vtime.Duration
}

// CritRow is the aggregate of the path's segments for one
// (layer, span-kind, node) triple.
type CritRow struct {
	Cat, Name string
	Tid       int
	Total     vtime.Duration
	Count     int
}

// CriticalPath is the analysis of one request tree.
type CriticalPath struct {
	RootID            int64
	RootCat, RootName string
	RootTid           int
	Start             vtime.Time
	Makespan          vtime.Duration
	Segs              []CritSeg // chronological, disjoint, covering the makespan
	Rows              []CritRow // aggregated, largest share first
}

func (r spanRec) end() vtime.Time { return r.start.Add(r.dur) }

// CriticalPath analyzes the trace rooted at span id root. It returns
// nil when the root is unknown or still open at export time.
func (h *Hub) CriticalPath(root int64) *CriticalPath {
	if h == nil {
		return nil
	}
	var rootRec *spanRec
	children := make(map[int64][]spanRec)
	for i := range h.spans {
		r := &h.spans[i]
		if r.id == root {
			rootRec = r
		}
		// Instants carry no duration: they cannot block, so they are
		// annotations on the path, not parts of it.
		if r.parent != 0 && r.trace != 0 && !r.inst {
			children[r.parent] = append(children[r.parent], *r)
		}
	}
	if rootRec == nil {
		return nil
	}
	// Blocking-chain scan order: latest end first; ties broken by span
	// id descending (the later-begun span was causally last).
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].end() != cs[j].end() {
				return cs[i].end() > cs[j].end()
			}
			return cs[i].id > cs[j].id
		})
	}

	cp := &CriticalPath{
		RootID: rootRec.id, RootCat: rootRec.cat, RootName: rootRec.name,
		RootTid: rootRec.tid, Start: rootRec.start, Makespan: rootRec.dur,
	}
	var walk func(s spanRec, until vtime.Time)
	walk = func(s spanRec, until vtime.Time) {
		t := until
		for _, c := range children[s.id] {
			if t <= s.start {
				break
			}
			if c.end() > t {
				continue // hidden behind a later-finishing sibling
			}
			if c.end() < t {
				cp.Segs = append(cp.Segs, CritSeg{Cat: s.cat, Name: s.name,
					Tid: s.tid, SpanID: s.id, Start: c.end(), Dur: t.Sub(c.end())})
			}
			walk(c, c.end())
			t = c.start
			if t < s.start {
				t = s.start
			}
		}
		if t > s.start {
			cp.Segs = append(cp.Segs, CritSeg{Cat: s.cat, Name: s.name,
				Tid: s.tid, SpanID: s.id, Start: s.start, Dur: t.Sub(s.start)})
		}
	}
	walk(*rootRec, rootRec.end())
	// The walk emits backward in time; present chronological.
	for i, j := 0, len(cp.Segs)-1; i < j; i, j = i+1, j-1 {
		cp.Segs[i], cp.Segs[j] = cp.Segs[j], cp.Segs[i]
	}

	agg := make(map[CritRow]*CritRow)
	for _, sg := range cp.Segs {
		key := CritRow{Cat: sg.Cat, Name: sg.Name, Tid: sg.Tid}
		row := agg[key]
		if row == nil {
			row = &CritRow{Cat: sg.Cat, Name: sg.Name, Tid: sg.Tid}
			agg[key] = row
		}
		row.Total += sg.Dur
		row.Count++
	}
	for _, row := range agg {
		cp.Rows = append(cp.Rows, *row)
	}
	sort.Slice(cp.Rows, func(i, j int) bool {
		a, b := cp.Rows[i], cp.Rows[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Tid < b.Tid
	})
	return cp
}

// CriticalPaths analyzes every request in the trace: spans that are
// roots of their own trace (nothing above them) and actually span time.
// Ordered by makespan descending, root id ascending on ties.
func (h *Hub) CriticalPaths() []*CriticalPath {
	if h == nil {
		return nil
	}
	var out []*CriticalPath
	for i := range h.spans {
		r := &h.spans[i]
		if r.inst || r.trace != r.id || r.dur == 0 {
			continue
		}
		if cp := h.CriticalPath(r.id); cp != nil {
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Makespan != out[j].Makespan {
			return out[i].Makespan > out[j].Makespan
		}
		return out[i].RootID < out[j].RootID
	})
	return out
}

// FormatCriticalPath renders one request's attribution table.
func FormatCriticalPath(cp *CriticalPath) string {
	if cp == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path of %s/%s (span %d, node %d): start %v, makespan %v, %d segments\n",
		cp.RootCat, cp.RootName, cp.RootID, cp.RootTid, cp.Start, cp.Makespan, len(cp.Segs))
	fmt.Fprintf(&b, "  %-10s %-14s %5s %6s %14s %6s\n", "layer", "span", "node", "segs", "time", "share")
	for _, row := range cp.Rows {
		share := int64(0)
		if cp.Makespan > 0 {
			share = int64(row.Total) * 100 / int64(cp.Makespan)
		}
		fmt.Fprintf(&b, "  %-10s %-14s %5d %6d %14v %5d%%\n",
			row.Cat, row.Name, row.Tid, row.Count, row.Total, share)
	}
	return b.String()
}

// FormatCriticalPaths renders the top slowest requests of the trace,
// one attribution table each.
func FormatCriticalPaths(paths []*CriticalPath, top int) string {
	if top > 0 && len(paths) > top {
		paths = paths[:top]
	}
	var b strings.Builder
	for i, cp := range paths {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(FormatCriticalPath(cp))
	}
	return b.String()
}
