// Flight recorder: a bounded ring of recent structured events per hub,
// dumped automatically when something goes wrong — a transfer exhausts
// its retries, an adaptive-send watchdog fires, the kernel deadlocks or
// a proc panics. Chaos and failure-scenario work gets a post-mortem of
// the control-plane events leading up to the fault for free.
//
// Events are value types holding only literal strings and small
// integers, so noting costs no allocation once the ring exists (the
// ring itself is allocated lazily on the first Note).
package telemetry

import (
	"fmt"
	"io"
	"os"

	"padico/internal/vtime"
)

// flightRing is the ring capacity: enough to span the interesting
// recent past without holding a whole run.
const flightRing = 256

// defaultDumpLimit bounds stderr noise when many faults trip in one run
// (fault-injection tests): later dumps are counted but suppressed.
// Raise per hub with SetDumpLimit — a long SLO-alerting run wants every
// breach's post-mortem, not just the first two.
const defaultDumpLimit = 2

// FlightEvent is one recorded control-plane event.
type FlightEvent struct {
	At       vtime.Time
	Cat, Msg string // literal strings only — no formatting at Note time
	Node     int
	V1, V2   int64
}

// Note records an event in the flight ring. Safe on a nil hub.
func (h *Hub) Note(cat, msg string, node int, v1, v2 int64) {
	if h == nil {
		return
	}
	if h.flight == nil {
		h.flight = make([]FlightEvent, flightRing)
	}
	h.flight[h.flightIdx] = FlightEvent{At: h.k.Now(), Cat: cat, Msg: msg, Node: node, V1: v1, V2: v2}
	h.flightIdx = (h.flightIdx + 1) % flightRing
	if h.flightLen < flightRing {
		h.flightLen++
	}
}

// Flight returns the recorded events, oldest first.
func (h *Hub) Flight() []FlightEvent {
	if h == nil || h.flightLen == 0 {
		return nil
	}
	out := make([]FlightEvent, 0, h.flightLen)
	start := (h.flightIdx - h.flightLen + flightRing) % flightRing
	for i := 0; i < h.flightLen; i++ {
		out = append(out, h.flight[(start+i)%flightRing])
	}
	return out
}

// SetFlightSink redirects dumps (default os.Stderr).
func (h *Hub) SetFlightSink(w io.Writer) {
	if h != nil {
		h.flightSink = w
	}
}

// SetDumpLimit sets how many full flight dumps this hub emits per run
// (default 2); past the limit, dumps print a one-line notice. n <= 0
// removes the cap entirely.
func (h *Hub) SetDumpLimit(n int) {
	if h == nil {
		return
	}
	if n <= 0 {
		n = -1 // unlimited; 0 is the "unset, use the default" state
	}
	h.dumpLimit = n
}

// dumpLimitOf resolves the effective cap: 0 means "unset", i.e. the
// default; negative means unlimited.
func (h *Hub) dumpLimitOf() int {
	switch {
	case h.dumpLimit == 0:
		return defaultDumpLimit
	case h.dumpLimit < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	default:
		return h.dumpLimit
	}
}

// DumpFlight writes the ring, oldest first, to the flight sink. Called
// automatically on failure triggers; callable manually. Past the hub's
// dump limit (SetDumpLimit, default 2), dumps print a one-line notice.
func (h *Hub) DumpFlight(reason string) {
	if h == nil {
		return
	}
	w := h.flightSink
	if w == nil {
		w = os.Stderr
	}
	h.dumps++
	if h.dumps > h.dumpLimitOf() {
		fmt.Fprintf(w, "telemetry: flight dump suppressed (%d so far): %s\n", h.dumps, reason)
		return
	}
	fmt.Fprintf(w, "=== flight recorder dump @ %v: %s ===\n", h.k.Now(), reason)
	for _, e := range h.Flight() {
		fmt.Fprintf(w, "  %12v  %-10s node=%-3d %s (%d, %d)\n", e.At, e.Cat, e.Node, e.Msg, e.V1, e.V2)
	}
	fmt.Fprintf(w, "=== end flight dump (%d events) ===\n", h.flightLen)
}
