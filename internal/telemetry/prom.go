// Prometheus-style text exposition of a registry snapshot — the
// third export surface beside the deterministic series JSON and the
// HTML dashboard. The format is the plain text scrape format
// (`# TYPE` headers, snake_case sample lines, histogram rows as a
// summary with quantile labels); durations are rendered in seconds,
// per Prometheus base-unit convention. Output is deterministic: it
// walks the sorted snapshot and formats floats in shortest exact
// form.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// promName sanitizes a dotted metric name into the Prometheus
// identifier charset: "netsim.hop.core:vthd:site0+site1.queued_bytes"
// → "padico_netsim_hop_core_vthd_site0_site1_queued_bytes".
func promName(name string) string {
	b := make([]byte, 0, len(name)+7)
	b = append(b, "padico_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promFloat renders a float in shortest exact form.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm writes the registry's current snapshot in the Prometheus
// text exposition format. Counters and gauges are single samples;
// histograms are summaries (quantile-labelled samples plus _sum and
// _count) with durations in seconds. Volatile metrics are included —
// exposition is a live view, not a pinned artifact. Nil-safe: a nil
// registry writes nothing.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	var b bytes.Buffer
	for _, m := range r.Snapshot() {
		name := promName(m.Name)
		switch m.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		case KindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, m.Value)
		case KindHistogram:
			fmt.Fprintf(&b, "# TYPE %s summary\n", name)
			fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", name, promFloat(float64(m.P50)/1e9))
			fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", name, promFloat(float64(m.P99)/1e9))
			fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(float64(m.Sum)/1e9))
			fmt.Fprintf(&b, "%s_count %d\n", name, m.Count)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// WriteProm exposes the hub's registry (no-op on a nil hub).
func (h *Hub) WriteProm(w io.Writer) error { return WriteProm(w, h.Registry()) }
