package vlink

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"padico/internal/iovec"
	"padico/internal/ipstack"
	"padico/internal/madapi"
	"padico/internal/netaccess"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// ---------------------------------------------------------------------
// SysIO driver: the straight incarnation of VLink on distributed
// hardware — TCP sockets arbitrated by SysIO.

// SysIODriver implements Driver over the node's TCP stack via SysIO.
type SysIODriver struct {
	k    *vtime.Kernel
	host *ipstack.Host
	sys  *netaccess.SysIO
	nw   string // named network outgoing dials ride ("" = default route)
}

// NewSysIODriver builds the sysio driver for one node.
func NewSysIODriver(k *vtime.Kernel, host *ipstack.Host, sys *netaccess.SysIO) *SysIODriver {
	return &SysIODriver{k: k, host: host, sys: sys}
}

// WithNetwork returns a view of the driver whose dials are pinned to
// the named network (the selector's Decision.Network threaded down to
// the wire). Listeners and accepted connections are unaffected: the
// server side answers on whatever wire the SYN arrived on.
func (d *SysIODriver) WithNetwork(name string) *SysIODriver {
	if name == "" || name == d.nw {
		return d
	}
	nd := *d
	nd.nw = name
	return &nd
}

// Name implements Driver.
func (d *SysIODriver) Name() string { return "sysio" }

// Listen implements Driver.
func (d *SysIODriver) Listen(port int) (Listener, error) {
	ln, err := d.host.Listen(port)
	if err != nil {
		return nil, err
	}
	sl := &sysListener{d: d, ln: ln}
	d.sys.RegisterListener(ln, func(p *vtime.Proc) {
		for {
			c, ok := ln.AcceptTimeout(p, 0)
			if !ok {
				return
			}
			sc := newSysConn(d, c)
			if sl.accept != nil {
				sl.accept(sc)
			}
		}
	})
	return sl, nil
}

type sysListener struct {
	d      *SysIODriver
	ln     *ipstack.Listener
	accept func(Conn)
}

func (l *sysListener) SetAcceptHandler(fn func(Conn)) { l.accept = fn }
func (l *sysListener) Close()                         { l.ln.Close() }

// Dial implements Driver. The TCP handshake runs on a short-lived
// helper process; completion is posted back in kernel context.
func (d *SysIODriver) Dial(addr Addr, cb func(Conn, error)) {
	d.k.Go(fmt.Sprintf("vlink-dial:%d", addr.Node), func(p *vtime.Proc) {
		c, err := d.host.DialVia(p, addr.Node, addr.Port, d.nw)
		if err != nil {
			cb(nil, err)
			return
		}
		cb(newSysConn(d, c), nil)
	})
}

// sysConn adapts an ipstack.TCPConn to the async Conn interface using
// SysIO readiness callbacks.
type sysConn struct {
	d    *SysIODriver
	c    *ipstack.TCPConn
	rbuf []byte
	rcb  func(int, error)
	wq   []pendingWrite
}

type pendingWrite struct {
	vec  iovec.Vec // borrowed until cb fires
	done int
	cb   func(int, error)
}

func newSysConn(d *SysIODriver, c *ipstack.TCPConn) *sysConn {
	sc := &sysConn{d: d, c: c}
	d.sys.RegisterConn(c, sc.onReadable)
	c.SetWritableHandler(sc.onWritable)
	return sc
}

// Kernel lets VLink charge costs on the right kernel.
func (sc *sysConn) Kernel() *vtime.Kernel { return sc.d.k }

// Peer implements Conn.
func (sc *sysConn) Peer() topology.NodeID { return sc.c.Remote() }

// SetBuffers tunes the underlying socket buffers (pstreams uses this to
// size per-stripe windows).
func (sc *sysConn) SetBuffers(snd, rcv int) { sc.c.SetBuffers(snd, rcv) }

func (sc *sysConn) onReadable(p *vtime.Proc) {
	if sc.rcb == nil || !sc.c.Readable() {
		return
	}
	n, err := sc.c.Read(p, sc.rbuf) // readable: returns without blocking
	cb := sc.rcb
	sc.rcb = nil
	sc.rbuf = nil
	cb(n, err)
}

func (sc *sysConn) onWritable() {
	if sc.c.Failed() {
		// A crashed peer never opens window again: complete every queued
		// write with the error so senders fail fast instead of stalling.
		for len(sc.wq) > 0 {
			w := sc.wq[0]
			sc.wq = sc.wq[1:]
			w.cb(w.done, ipstack.ErrClosed)
		}
		return
	}
	for len(sc.wq) > 0 {
		w := &sc.wq[0]
		w.done += sc.c.TryWriteVec(w.vec, w.done)
		if w.done < w.vec.Len() {
			return // buffer full again; wait for next writable event
		}
		cb, n := w.cb, w.done
		sc.wq = sc.wq[1:]
		cb(n, nil)
	}
}

// PostRead implements Conn. If data is already queued, the readiness
// event is re-fired so the receipt loop performs the read on the I/O
// manager process.
func (sc *sysConn) PostRead(buf []byte, cb func(int, error)) {
	if sc.rcb != nil {
		panic("vlink/sysio: overlapping PostRead")
	}
	sc.rbuf, sc.rcb = buf, cb
	sc.c.PokeReady()
}

// PostWrite implements Conn.
func (sc *sysConn) PostWrite(data []byte, cb func(int, error)) {
	sc.PostWritev(iovec.Make(data), cb)
}

// PostWritev implements VecConn: the vector's bytes are copied exactly
// once, into the TCP socket's pooled send queue, as space opens up —
// the stack's single pack point on the distributed path.
func (sc *sysConn) PostWritev(v iovec.Vec, cb func(int, error)) {
	sc.wq = append(sc.wq, pendingWrite{vec: v, cb: cb})
	if len(sc.wq) == 1 {
		sc.onWritable()
	}
}

// Close implements Conn.
func (sc *sysConn) Close() { sc.c.Close() }

// Fail implements Failer: the TCP teardown fires the readiness
// callbacks, which complete the pending read and drain queued writes
// with the error.
func (sc *sysConn) Fail(error) { sc.c.Fail() }

// ---------------------------------------------------------------------
// MadIO driver: the cross-paradigm incarnation — a distributed
// (client/server, streaming) interface on parallel SAN hardware.
// Logical connections are multiplexed on one MadIO logical channel.

// Control message kinds.
const (
	madConnect byte = iota
	madAccept
	madRefuse
	madData
	madClose
)

// MadIODriver implements Driver over a MadIO logical channel. All
// MadIODriver instances of a fabric share logical channel `logical`.
type MadIODriver struct {
	k       *vtime.Kernel
	node    topology.NodeID
	mio     *netaccess.MadIO
	logical uint16
	rankOf  func(topology.NodeID) (int, bool) // node -> madeleine rank
	nodeOf  func(int) topology.NodeID
	ports   map[int]*madListener
	conns   map[uint32]*madConn
	dials   map[uint32]func(Conn, error)
	nextCID uint32
}

// NewMadIODriver builds the madio VLink driver for one node. rankOf
// and nodeOf translate between grid nodes and Madeleine ranks on this
// fabric.
func NewMadIODriver(k *vtime.Kernel, node topology.NodeID, mio *netaccess.MadIO, logical uint16,
	rankOf func(topology.NodeID) (int, bool), nodeOf func(int) topology.NodeID) *MadIODriver {
	d := &MadIODriver{
		k: k, node: node, mio: mio, logical: logical, rankOf: rankOf, nodeOf: nodeOf,
		ports: make(map[int]*madListener),
		conns: make(map[uint32]*madConn),
		dials: make(map[uint32]func(Conn, error)),
	}
	mio.Register(logical, d.onMessage)
	return d
}

// Name implements Driver.
func (d *MadIODriver) Name() string { return "madio" }

// Listen implements Driver.
func (d *MadIODriver) Listen(port int) (Listener, error) {
	if _, dup := d.ports[port]; dup {
		return nil, ipstack.ErrPortInUse
	}
	l := &madListener{d: d, port: port}
	d.ports[port] = l
	return l, nil
}

type madListener struct {
	d      *MadIODriver
	port   int
	accept func(Conn)
}

func (l *madListener) SetAcceptHandler(fn func(Conn)) { l.accept = fn }
func (l *madListener) Close()                         { delete(l.d.ports, l.port) }

// Dial implements Driver.
func (d *MadIODriver) Dial(addr Addr, cb func(Conn, error)) {
	rank, ok := d.rankOf(addr.Node)
	if !ok {
		cb(nil, fmt.Errorf("vlink/madio: node %d not on this fabric", addr.Node))
		return
	}
	d.nextCID++
	cid := d.nextCID
	d.dials[cid] = cb
	var hdr [10]byte
	hdr[0] = madConnect
	binary.BigEndian.PutUint32(hdr[1:], cid)
	binary.BigEndian.PutUint32(hdr[5:], uint32(addr.Port))
	d.mio.Send(rank, d.logical, hdr[:])
}

// onMessage demultiplexes one MadIO message for this driver.
func (d *MadIODriver) onMessage(p *vtime.Proc, src int, in madapi.InMessage) {
	hdr := in.Unpack(10, madapi.ReceiveExpress)
	kind := hdr[0]
	cid := binary.BigEndian.Uint32(hdr[1:])
	arg := binary.BigEndian.Uint32(hdr[5:])
	switch kind {
	case madConnect:
		in.EndUnpacking()
		l, ok := d.ports[int(arg)]
		var reply [10]byte
		binary.BigEndian.PutUint32(reply[1:], cid)
		if !ok || l.accept == nil {
			reply[0] = madRefuse
			d.mio.Send(src, d.logical, reply[:])
			return
		}
		c := d.newConn(connKeyOf(src, cid), src)
		reply[0] = madAccept
		d.mio.Send(src, d.logical, reply[:])
		l.accept(c)
	case madAccept:
		in.EndUnpacking()
		cb := d.dials[cid]
		delete(d.dials, cid)
		c := d.newConn(connKeyOf(src, cid)|dialerBit, src)
		cb(c, nil)
	case madRefuse:
		in.EndUnpacking()
		cb := d.dials[cid]
		delete(d.dials, cid)
		cb(nil, ErrRefused)
	case madData:
		data := in.Unpack(int(arg), madapi.ReceiveCheaper)
		in.EndUnpacking()
		// hdr[9] flags "sender is the dialer"; our matching link is then
		// the accepted one (and vice versa), which disambiguates colliding
		// connection ids from symmetric dials.
		key := connKeyOf(src, cid)
		if hdr[9] == 0 {
			key |= dialerBit
		}
		if c, ok := d.conns[key]; ok {
			c.deliver(data)
		}
	case madClose:
		in.EndUnpacking()
		key := connKeyOf(src, cid)
		if hdr[9] == 0 {
			key |= dialerBit
		}
		if c, ok := d.conns[key]; ok {
			c.deliverEOF()
		}
	}
}

const dialerBit = uint32(1) << 31

func connKeyOf(src int, cid uint32) uint32 { return uint32(src)<<16 | (cid & 0xFFFF) }

func (d *MadIODriver) newConn(key uint32, peerRank int) *madConn {
	c := &madConn{d: d, key: key, peer: peerRank}
	d.conns[key] = c
	return c
}

type madConn struct {
	d      *MadIODriver
	key    uint32
	peer   int
	rx     []byte
	eof    bool
	rbuf   []byte
	rcb    func(int, error)
	closed bool
}

// Kernel lets VLink charge costs on the right kernel.
func (c *madConn) Kernel() *vtime.Kernel { return c.d.k }

// Peer implements Conn.
func (c *madConn) Peer() topology.NodeID { return c.d.nodeOf(c.peer) }

func (c *madConn) cid() uint32 { return c.key & 0xFFFF }

func (c *madConn) isDialer() byte {
	if c.key&dialerBit != 0 {
		return 1
	}
	return 0
}

func (c *madConn) deliver(data []byte) {
	c.rx = append(c.rx, data...)
	c.tryComplete()
}

func (c *madConn) deliverEOF() {
	c.eof = true
	c.tryComplete()
}

func (c *madConn) tryComplete() {
	if c.rcb == nil {
		return
	}
	if len(c.rx) == 0 && !c.eof {
		return
	}
	n := copy(c.rbuf, c.rx)
	c.rx = c.rx[n:]
	cb := c.rcb
	c.rcb, c.rbuf = nil, nil
	var err error
	if n == 0 && c.eof {
		err = io.EOF
	}
	cb(n, err)
}

// PostRead implements Conn.
func (c *madConn) PostRead(buf []byte, cb func(int, error)) {
	if c.rcb != nil {
		panic("vlink/madio: overlapping PostRead")
	}
	c.rbuf, c.rcb = buf, cb
	c.tryComplete()
}

// Fail implements Failer: a crashed peer's pending read completes with
// the error at once (a dead SAN NIC never delivers the close message).
func (c *madConn) Fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	delete(c.d.conns, c.key)
	if cb := c.rcb; cb != nil {
		c.rcb, c.rbuf = nil, nil
		cb(0, err)
	}
}

// PostWritev implements VecConn. MadIO's Madeleine packing aliases the
// message until the send-side cost event fires, after the caller's
// borrow ended — so the vector is flattened here, once, into a fresh
// buffer the message can own (exactly the copy the session layer used
// to make above this driver).
func (c *madConn) PostWritev(v iovec.Vec, cb func(int, error)) {
	data := make([]byte, v.Len())
	v.CopyTo(data)
	c.PostWrite(data, cb)
}

// PostWrite implements Conn: data rides one MadIO message. SAN links
// are far faster than any producer here, so the driver accepts
// immediately (no flow control, as on a well-provisioned SAN).
func (c *madConn) PostWrite(data []byte, cb func(int, error)) {
	if c.closed {
		cb(0, ErrClosed)
		return
	}
	var hdr [10]byte
	hdr[0] = madData
	binary.BigEndian.PutUint32(hdr[1:], c.cid())
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(data)))
	hdr[9] = c.isDialer()
	c.d.mio.Send(c.peer, c.d.logical, hdr[:], data)
	cb(len(data), nil)
}

// Close implements Conn.
func (c *madConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	var hdr [10]byte
	hdr[0] = madClose
	binary.BigEndian.PutUint32(hdr[1:], c.cid())
	hdr[9] = c.isDialer()
	c.d.mio.Send(c.peer, c.d.logical, hdr[:])
	delete(c.d.conns, c.key)
}

// ---------------------------------------------------------------------
// Loopback driver: intra-node links (§4.2 lists loopback among the
// VLink drivers).

// LoopbackDriver implements Driver inside one node.
type LoopbackDriver struct {
	k     *vtime.Kernel
	node  topology.NodeID
	ports map[int]*loopListener
}

// NewLoopbackDriver builds the loopback driver for one node.
func NewLoopbackDriver(k *vtime.Kernel, node topology.NodeID) *LoopbackDriver {
	return &LoopbackDriver{k: k, node: node, ports: make(map[int]*loopListener)}
}

// Name implements Driver.
func (d *LoopbackDriver) Name() string { return "loopback" }

// Listen implements Driver.
func (d *LoopbackDriver) Listen(port int) (Listener, error) {
	if _, dup := d.ports[port]; dup {
		return nil, ipstack.ErrPortInUse
	}
	l := &loopListener{d: d, port: port}
	d.ports[port] = l
	return l, nil
}

type loopListener struct {
	d      *LoopbackDriver
	port   int
	accept func(Conn)
}

func (l *loopListener) SetAcceptHandler(fn func(Conn)) { l.accept = fn }
func (l *loopListener) Close()                         { delete(l.d.ports, l.port) }

// Dial implements Driver.
func (d *LoopbackDriver) Dial(addr Addr, cb func(Conn, error)) {
	if addr.Node != d.node {
		cb(nil, fmt.Errorf("vlink/loopback: %v is not the local node", addr.Node))
		return
	}
	l, ok := d.ports[addr.Port]
	if !ok || l.accept == nil {
		cb(nil, ErrRefused)
		return
	}
	a, b := newLoopPair(d)
	d.k.Schedule(500*time.Nanosecond, func() {
		l.accept(b)
		cb(a, nil)
	})
}

// loopConn is one end of an in-memory pipe.
type loopConn struct {
	d    *LoopbackDriver
	peer *loopConn
	rx   []byte
	eof  bool
	rbuf []byte
	rcb  func(int, error)
}

func newLoopPair(d *LoopbackDriver) (*loopConn, *loopConn) {
	a := &loopConn{d: d}
	b := &loopConn{d: d}
	a.peer, b.peer = b, a
	return a, b
}

// Kernel lets VLink charge costs on the right kernel.
func (c *loopConn) Kernel() *vtime.Kernel { return c.d.k }

// Peer implements Conn.
func (c *loopConn) Peer() topology.NodeID { return c.d.node }

// PostRead implements Conn.
func (c *loopConn) PostRead(buf []byte, cb func(int, error)) {
	if c.rcb != nil {
		panic("vlink/loopback: overlapping PostRead")
	}
	c.rbuf, c.rcb = buf, cb
	c.tryComplete()
}

// Fail implements Failer: crash injection on an in-memory pipe simply
// completes the pending read with the error.
func (c *loopConn) Fail(err error) {
	if cb := c.rcb; cb != nil {
		c.rcb, c.rbuf = nil, nil
		cb(0, err)
	}
}

func (c *loopConn) tryComplete() {
	if c.rcb == nil || (len(c.rx) == 0 && !c.eof) {
		return
	}
	n := copy(c.rbuf, c.rx)
	c.rx = c.rx[n:]
	cb := c.rcb
	c.rcb, c.rbuf = nil, nil
	var err error
	if n == 0 && c.eof {
		err = io.EOF
	}
	cb(n, err)
}

// PostWrite implements Conn.
func (c *loopConn) PostWrite(data []byte, cb func(int, error)) {
	c.PostWritev(iovec.Make(data), cb)
}

// PostWritev implements VecConn: the bytes are captured into a pooled
// buffer at post time (the borrow ends when cb fires, which is
// immediately here) and delivered after the memcpy-scale latency.
func (c *loopConn) PostWritev(v iovec.Vec, cb func(int, error)) {
	peer := c.peer
	buf := v.Flatten()
	c.d.k.Schedule(200*time.Nanosecond, func() { // memcpy-scale latency
		peer.rx = append(peer.rx, buf.Bytes()...)
		buf.Release()
		peer.tryComplete()
	})
	cb(v.Len(), nil)
}

// Close implements Conn.
func (c *loopConn) Close() {
	peer := c.peer
	c.d.k.Schedule(200*time.Nanosecond, func() {
		peer.eof = true
		peer.tryComplete()
	})
}
