// Package vlink implements the distributed-paradigm abstract interface
// of the paper's abstraction layer (§4.2): client/server-oriented,
// dynamic connections, streaming, and a flexible asynchronous API of
// five primitive operations — connect, accept, read, write, close —
// whose completion can be polled, awaited, or hooked with a handler.
//
// A set of such primitives is a VLink driver. Drivers exist over SysIO
// (straight: distributed interface on distributed hardware), over MadIO
// (cross-paradigm: distributed interface on SAN hardware), loopback,
// and the WAN methods (parallel streams, AdOC compression, VRP) in
// their own packages. The abstraction is fully transparent: the VLink
// API is identical whatever the driver underneath (§3.3).
package vlink

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"padico/internal/iovec"
	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrNoDriver = errors.New("vlink: no such driver")
	ErrClosed   = errors.New("vlink: link closed")
	ErrRefused  = errors.New("vlink: connection refused")
)

// Addr names a VLink rendezvous point.
type Addr struct {
	Node topology.NodeID
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("vlink://%d:%d", a.Node, a.Port) }

// Op is an asynchronous operation descriptor. N carries the byte count
// for read/write operations.
type Op struct {
	f *vtime.Future[int]
}

func newOp(name string) *Op { return &Op{f: vtime.NewFuture[int](name)} }

// Done reports completion (poll interface).
func (o *Op) Done() bool { return o.f.Done() }

// Wait blocks until completion and returns (n, err).
func (o *Op) Wait(p *vtime.Proc) (int, error) { return o.f.Wait(p) }

// Result returns (n, err); it panics if the operation is not complete.
func (o *Op) Result() (int, error) { return o.f.Value() }

// SetHandler installs a completion callback (kernel context). If the
// operation already completed the handler runs immediately.
func (o *Op) SetHandler(fn func(n int, err error)) {
	if o.f.Done() {
		fn(o.f.Value())
		return
	}
	o.f.Handler = fn
}

func (o *Op) complete(n int, err error) { o.f.Complete(n, err) }

// Driver is one incarnation of the VLink abstract interface.
type Driver interface {
	// Name identifies the driver ("sysio", "madio", "pstreams", ...).
	Name() string
	// Listen binds a passive endpoint on the driver's node.
	Listen(port int) (Listener, error)
	// Dial initiates a connection; cb runs in kernel context on
	// completion.
	Dial(addr Addr, cb func(Conn, error))
}

// Conn is a driver-level bidirectional byte stream. All methods are
// asynchronous and callable from kernel context.
type Conn interface {
	// PostRead delivers the next available bytes (up to len(buf)) into
	// buf and calls cb(n, err). At most one read may be outstanding.
	PostRead(buf []byte, cb func(n int, err error))
	// PostWrite queues data and calls cb(n, err) when the driver has
	// accepted it (not necessarily delivered).
	PostWrite(data []byte, cb func(n int, err error))
	// Close initiates an orderly shutdown; the peer's pending read
	// completes with io.EOF after draining.
	Close()
	// Peer returns the remote node.
	Peer() topology.NodeID
}

// Failer is the optional crash extension of Conn: drivers that can
// fail an established connection from outside (peer-death injection)
// implement it so a pending read completes promptly with the error
// instead of waiting for wire silence to time out.
type Failer interface {
	Fail(err error)
}

// VecConn is the vectored-write extension of Conn: drivers that can
// move a segment vector without flattening it implement PostWritev.
// The vector is borrowed until cb fires — the caller keeps every
// segment's bytes valid and immutable until then, and the driver takes
// its own references (iovec retain) for anything it must hold longer.
// Byte-stream semantics are identical to PostWrite of the flattened
// vector.
type VecConn interface {
	Conn
	PostWritev(v iovec.Vec, cb func(n int, err error))
}

// Listener is a driver-level passive endpoint.
type Listener interface {
	// SetAcceptHandler installs the inbound-connection callback.
	SetAcceptHandler(fn func(Conn))
	// Close unbinds the endpoint.
	Close()
}

// ---------------------------------------------------------------------
// Endpoint: the per-node VLink service, multiplexing drivers.

// Endpoint is the per-node VLink service. Middleware obtains VLinks
// from it either directly or through the selector.
type Endpoint struct {
	node    topology.NodeID
	drivers map[string]Driver

	Connects int64
	Accepts  int64
}

// NewEndpoint builds the VLink service for one node.
func NewEndpoint(node topology.NodeID) *Endpoint {
	return &Endpoint{node: node, drivers: make(map[string]Driver)}
}

// Node returns the endpoint's node.
func (ep *Endpoint) Node() topology.NodeID { return ep.node }

// AddDriver registers a driver incarnation.
func (ep *Endpoint) AddDriver(d Driver) { ep.drivers[d.Name()] = d }

// Driver returns a registered driver by name.
func (ep *Endpoint) Driver(name string) (Driver, error) {
	d, ok := ep.drivers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDriver, name)
	}
	return d, nil
}

// Drivers lists registered driver names, sorted — map iteration order
// must never leak into observable output (repo determinism rule).
func (ep *Endpoint) Drivers() []string {
	out := make([]string, 0, len(ep.drivers))
	for n := range ep.drivers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Connect posts an asynchronous connect through the named driver. The
// returned Op's N is meaningless; the VLink is usable when it completes
// without error.
func (ep *Endpoint) Connect(driver string, addr Addr) (*VLink, *Op) {
	d, err := ep.Driver(driver)
	if err != nil {
		op := newOp("vlink:connect")
		op.complete(0, err)
		return &VLink{}, op
	}
	return ep.ConnectDriver(d, addr)
}

// ConnectDriver is Connect on an explicit driver instance (used when a
// per-link driver stack was composed outside the registry, e.g. by the
// selector).
func (ep *Endpoint) ConnectDriver(d Driver, addr Addr) (*VLink, *Op) {
	op := newOp("vlink:connect")
	vl := &VLink{}
	ep.Connects++
	d.Dial(addr, func(c Conn, err error) {
		if err != nil {
			op.complete(0, err)
			return
		}
		vl.attach(c)
		op.complete(0, nil)
	})
	return vl, op
}

// ConnectWait is Connect + Wait, for proc-context callers.
func (ep *Endpoint) ConnectWait(p *vtime.Proc, driver string, addr Addr) (*VLink, error) {
	vl, op := ep.Connect(driver, addr)
	if _, err := op.Wait(p); err != nil {
		return nil, err
	}
	return vl, nil
}

// VListener accepts inbound VLinks.
type VListener struct {
	ep      *Endpoint
	dl      Listener
	backlog *vtime.Queue[*VLink]
}

// Listen binds a passive endpoint on the named driver.
func (ep *Endpoint) Listen(driver string, port int) (*VListener, error) {
	d, err := ep.Driver(driver)
	if err != nil {
		return nil, err
	}
	return ep.ListenDriver(d, port)
}

// ListenDriver is Listen on an explicit driver instance.
func (ep *Endpoint) ListenDriver(d Driver, port int) (*VListener, error) {
	dl, err := d.Listen(port)
	if err != nil {
		return nil, err
	}
	vl := &VListener{ep: ep, dl: dl,
		backlog: vtime.NewQueue[*VLink](fmt.Sprintf("vlisten:%d:%d", ep.node, port))}
	dl.SetAcceptHandler(func(c Conn) {
		ep.Accepts++
		v := &VLink{}
		v.attach(c)
		vl.backlog.Push(v)
	})
	return vl, nil
}

// Accept blocks until an inbound VLink arrives.
func (vl *VListener) Accept(p *vtime.Proc) *VLink { return vl.backlog.Pop(p) }

// SetAcceptHandler replaces the backlog with a direct callback.
func (vl *VListener) SetAcceptHandler(fn func(*VLink)) {
	vl.backlog.OnPush = func() {
		if v, ok := vl.backlog.TryPop(); ok {
			fn(v)
		}
	}
	// Drain anything already queued.
	for {
		v, ok := vl.backlog.TryPop()
		if !ok {
			break
		}
		fn(v)
	}
}

// Close unbinds the listener.
func (vl *VListener) Close() { vl.dl.Close() }

// ---------------------------------------------------------------------
// VLink: one established link.

// VLink is one established distributed-paradigm link. Its five
// operations mirror the paper's asynchronous VLink API; per-operation
// and per-byte abstraction costs are charged here, uniformly across
// drivers.
type VLink struct {
	c      Conn
	closed bool

	Reads, Writes int64
	BytesIn       int64
	BytesOut      int64
}

func (v *VLink) attach(c Conn) { v.c = c }

// Peer returns the remote node.
func (v *VLink) Peer() topology.NodeID { return v.c.Peer() }

// PostRead posts an asynchronous read into buf.
func (v *VLink) PostRead(buf []byte) *Op {
	op := newOp("vlink:read")
	if v.closed {
		op.complete(0, ErrClosed)
		return op
	}
	v.Reads++
	v.c.PostRead(buf, func(n int, err error) {
		v.BytesIn += int64(n)
		// Abstraction-layer cost: per op + per byte.
		cost := model.VLinkCost + model.VLinkPerByte.Cost(n)
		kernelOf(v).Schedule(cost, func() { op.complete(n, err) })
	})
	return op
}

// PostWrite posts an asynchronous write of data.
func (v *VLink) PostWrite(data []byte) *Op {
	op := newOp("vlink:write")
	if v.closed {
		op.complete(0, ErrClosed)
		return op
	}
	v.Writes++
	n0 := len(data)
	cost := model.VLinkCost + model.VLinkPerByte.Cost(n0)
	kernelOf(v).Schedule(cost, func() {
		v.c.PostWrite(data, func(n int, err error) {
			v.BytesOut += int64(n)
			op.complete(n, err)
		})
	})
	return op
}

// PostWritev posts an asynchronous gather-write of a segment vector:
// the same abstraction cost and byte-stream effect as PostWrite of the
// flattened vector, without materializing it when the driver stack
// supports vectors. The vector is borrowed until the Op completes.
func (v *VLink) PostWritev(vec iovec.Vec) *Op {
	op := newOp("vlink:writev")
	if v.closed {
		op.complete(0, ErrClosed)
		return op
	}
	v.Writes++
	n0 := vec.Len()
	cost := model.VLinkCost + model.VLinkPerByte.Cost(n0)
	kernelOf(v).Schedule(cost, func() {
		done := func(n int, err error) {
			v.BytesOut += int64(n)
			op.complete(n, err)
		}
		if vc, ok := v.c.(VecConn); ok {
			vc.PostWritev(vec, done)
			return
		}
		// Driver without vector support: flatten once into a pooled
		// buffer for the duration of the inner write.
		buf := vec.Flatten()
		v.c.PostWrite(buf.Bytes(), func(n int, err error) {
			buf.Release()
			done(n, err)
		})
	})
	return op
}

// WriteVec blocks p until the whole vector is accepted by the driver
// stack (the synchronous convenience over PostWritev). In practice one
// PostWritev accepts everything (drivers complete whole writes); the
// resume loop only slices on a partial acceptance.
func (v *VLink) WriteVec(p *vtime.Proc, vec iovec.Vec) (int, error) {
	total := 0
	size := vec.Len()
	for total < size {
		part, retained := vec, false
		if total > 0 {
			part, retained = vec.Slice(total, size-total), true
		}
		n, err := v.PostWritev(part).Wait(p)
		if retained {
			part.Release()
		}
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close initiates an orderly shutdown.
func (v *VLink) Close() {
	if v.closed {
		return
	}
	v.closed = true
	v.c.Close()
}

// Fail tears the link down after a peer crash: future operations
// complete with ErrClosed immediately, and a pending read completes
// with the error when the driver supports crash injection (otherwise
// the link falls back to an orderly close).
func (v *VLink) Fail() {
	if v.closed {
		return
	}
	v.closed = true
	if f, ok := v.c.(Failer); ok {
		f.Fail(ErrClosed)
		return
	}
	v.c.Close()
}

// --- synchronous conveniences (used by personalities) ---

// Read blocks p for the next chunk of stream data.
func (v *VLink) Read(p *vtime.Proc, buf []byte) (int, error) {
	return v.PostRead(buf).Wait(p)
}

// ReadFull blocks p until len(buf) bytes arrived (or EOF).
func (v *VLink) ReadFull(p *vtime.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := v.Read(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, io.EOF
		}
	}
	return total, nil
}

// Write blocks p until data is fully accepted.
func (v *VLink) Write(p *vtime.Proc, data []byte) (int, error) {
	total := 0
	for total < len(data) {
		n, err := v.PostWrite(data[total:]).Wait(p)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// kernelOf recovers the kernel through the driver conn; every driver
// conn embeds a kernel reference via the Kerneled interface.
func kernelOf(v *VLink) *vtime.Kernel {
	return v.c.(interface{ Kernel() *vtime.Kernel }).Kernel()
}
