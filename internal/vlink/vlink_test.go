package vlink_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"padico/internal/drivers/gm"
	"padico/internal/ipstack"
	"padico/internal/madeleine"
	"padico/internal/model"
	"padico/internal/netaccess"
	"padico/internal/netsim"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// testbed builds two nodes with VLink endpoints carrying the sysio,
// madio and loopback drivers.
type testbed struct {
	k  *vtime.Kernel
	ep [2]*vlink.Endpoint
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	k := vtime.NewKernel()
	tb := &testbed{k: k}
	xb := netsim.NewCrossbar(k, topology.Myrinet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
	lan := netsim.NewSwitchedLAN(k, model.EthernetRate, model.EthernetFrameOH, model.EthernetWireLat, 0, 1)
	st := ipstack.New(k)
	st.ConnectLAN(lan, 0, 0, 1, 1, model.EthernetMTU)
	group := []int{0, 1}
	nodeOf := func(r int) topology.NodeID { return topology.NodeID(r) }
	rankOf := func(n topology.NodeID) (int, bool) { return int(n), int(n) < 2 }
	for i := 0; i < 2; i++ {
		na := netaccess.New(k, string(rune('a'+i)))
		sys := netaccess.NewSysIO(na)
		ad := madeleine.New(k, madeleine.NewGM(gm.OpenNIC(k, xb, i), group), i, 2)
		ch, err := ad.Open(0)
		if err != nil {
			t.Fatal(err)
		}
		mio := netaccess.NewMadIO(na, ch, "myri", true)
		node := topology.NodeID(i)
		ep := vlink.NewEndpoint(node)
		ep.AddDriver(vlink.NewSysIODriver(k, st.Host(node), sys))
		ep.AddDriver(vlink.NewMadIODriver(k, node, mio, 100, rankOf, nodeOf))
		ep.AddDriver(vlink.NewLoopbackDriver(k, node))
		tb.ep[i] = ep
	}
	return tb
}

var vlinkDrivers = []string{"sysio", "madio", "loopback"}

func (tb *testbed) echoServer(t *testing.T, driver string, port int) {
	ln, err := tb.ep[1].Listen(driver, port)
	if err != nil {
		t.Fatal(err)
	}
	srvEp := tb.ep[1]
	if driver == "loopback" {
		// loopback is intra-node: server lives on node 0's endpoint.
		ln.Close()
		ln, err = tb.ep[0].Listen(driver, port)
		if err != nil {
			t.Fatal(err)
		}
		srvEp = tb.ep[0]
	}
	_ = srvEp
	tb.k.GoDaemon("echo:"+driver, func(p *vtime.Proc) {
		for {
			v := ln.Accept(p)
			tb.k.GoDaemon("echo-conn", func(q *vtime.Proc) {
				buf := make([]byte, 64<<10)
				for {
					n, err := v.Read(q, buf)
					if n > 0 {
						if _, werr := v.Write(q, buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						v.Close()
						return
					}
				}
			})
		}
	})
}

func (tb *testbed) dialTarget(driver string) vlink.Addr {
	if driver == "loopback" {
		return vlink.Addr{Node: 0, Port: 9000}
	}
	return vlink.Addr{Node: 1, Port: 9000}
}

func TestEchoAcrossAllDrivers(t *testing.T) {
	for _, drv := range vlinkDrivers {
		drv := drv
		t.Run(drv, func(t *testing.T) {
			tb := newTestbed(t)
			tb.echoServer(t, drv, 9000)
			msg := make([]byte, 50000)
			rand.New(rand.NewSource(7)).Read(msg)
			if err := tb.k.Run(func(p *vtime.Proc) {
				v, err := tb.ep[0].ConnectWait(p, drv, tb.dialTarget(drv))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := v.Write(p, msg); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, len(msg))
				if _, err := v.ReadFull(p, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatal("echo corrupted")
				}
				v.Close()
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAsyncCompletionHandler(t *testing.T) {
	tb := newTestbed(t)
	tb.echoServer(t, "madio", 9000)
	if err := tb.k.Run(func(p *vtime.Proc) {
		v, err := tb.ep[0].ConnectWait(p, "madio", vlink.Addr{Node: 1, Port: 9000})
		if err != nil {
			t.Fatal(err)
		}
		done := vtime.NewQueue[int]("handlers")
		v.PostWrite([]byte("ping")).SetHandler(func(n int, err error) {
			done.Push(n)
		})
		buf := make([]byte, 16)
		v.PostRead(buf).SetHandler(func(n int, err error) {
			done.Push(100 + n)
		})
		if w := done.Pop(p); w != 4 {
			t.Errorf("write handler n = %d", w)
		}
		if r := done.Pop(p); r != 104 {
			t.Errorf("read handler n = %d", r-100)
		}
		if string(buf[:4]) != "ping" {
			t.Errorf("buf = %q", buf[:4])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPollingCompletion(t *testing.T) {
	tb := newTestbed(t)
	tb.echoServer(t, "sysio", 9000)
	if err := tb.k.Run(func(p *vtime.Proc) {
		v, err := tb.ep[0].ConnectWait(p, "sysio", vlink.Addr{Node: 1, Port: 9000})
		if err != nil {
			t.Fatal(err)
		}
		op := v.PostWrite([]byte("x"))
		buf := make([]byte, 1)
		rop := v.PostRead(buf)
		// Poll until both complete (paper: "completion may be tested by
		// polling the VLink descriptor").
		for !op.Done() || !rop.Done() {
			p.Sleep(10 * time.Microsecond)
		}
		if n, err := rop.Result(); n != 1 || err != nil {
			t.Errorf("read result = %d,%v", n, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectRefused(t *testing.T) {
	tb := newTestbed(t)
	if err := tb.k.Run(func(p *vtime.Proc) {
		for _, drv := range []string{"madio", "loopback"} {
			if _, err := tb.ep[0].ConnectWait(p, drv, tb.dialTarget(drv)); err == nil {
				t.Errorf("%s: dial with no listener succeeded", drv)
			}
		}
		// sysio returns its own refusal error.
		if _, err := tb.ep[0].ConnectWait(p, "sysio", vlink.Addr{Node: 1, Port: 9000}); err == nil {
			t.Error("sysio: dial with no listener succeeded")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownDriver(t *testing.T) {
	tb := newTestbed(t)
	if err := tb.k.Run(func(p *vtime.Proc) {
		_, err := tb.ep[0].ConnectWait(p, "nonesuch", vlink.Addr{Node: 1, Port: 1})
		if !errors.Is(err, vlink.ErrNoDriver) {
			t.Errorf("err = %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	for _, drv := range vlinkDrivers {
		drv := drv
		t.Run(drv, func(t *testing.T) {
			tb := newTestbed(t)
			epIdx := 1
			if drv == "loopback" {
				epIdx = 0
			}
			ln, err := tb.ep[epIdx].Listen(drv, 9000)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.k.Run(func(p *vtime.Proc) {
				got := vtime.NewQueue[error]("eof")
				tb.k.GoDaemon("server", func(q *vtime.Proc) {
					v := ln.Accept(q)
					buf := make([]byte, 16)
					for {
						n, err := v.Read(q, buf)
						if err != nil {
							got.Push(err)
							return
						}
						_ = n
					}
				})
				v, err := tb.ep[0].ConnectWait(p, drv, tb.dialTarget(drv))
				if err != nil {
					t.Fatal(err)
				}
				v.Write(p, []byte("bye"))
				v.Close()
				if e := got.Pop(p); e != io.EOF {
					t.Errorf("server got %v, want EOF", e)
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Table 1: VLink one-way latency over Myrinet = 10.2 µs.
func TestVLinkLatencyOverMyrinet(t *testing.T) {
	tb := newTestbed(t)
	tb.echoServer(t, "madio", 9000)
	var oneway time.Duration
	if err := tb.k.Run(func(p *vtime.Proc) {
		v, err := tb.ep[0].ConnectWait(p, "madio", vlink.Addr{Node: 1, Port: 9000})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		const rounds = 200
		start := p.Now()
		for i := 0; i < rounds; i++ {
			v.Write(p, buf)
			v.ReadFull(p, buf)
		}
		oneway = p.Now().Sub(start) / (2 * rounds)
	}); err != nil {
		t.Fatal(err)
	}
	want := 10200 * time.Nanosecond
	if oneway < want-1500*time.Nanosecond || oneway > want+1500*time.Nanosecond {
		t.Fatalf("VLink one-way = %v, want ~%v (Table 1)", oneway, want)
	}
}

// Property: arbitrary write chunkings arrive intact over the madio
// driver (stream semantics on a message fabric).
func TestQuickStreamChunking(t *testing.T) {
	f := func(chunks []uint16) bool {
		if len(chunks) == 0 || len(chunks) > 10 {
			return true
		}
		tb := newTestbed(&testing.T{})
		ln, err := tb.ep[1].Listen("madio", 9000)
		if err != nil {
			return false
		}
		var msg []byte
		rnd := rand.New(rand.NewSource(11))
		sizes := make([]int, len(chunks))
		for i, c := range chunks {
			sizes[i] = int(c)%8000 + 1
			b := make([]byte, sizes[i])
			rnd.Read(b)
			msg = append(msg, b...)
		}
		var got []byte
		err = tb.k.Run(func(p *vtime.Proc) {
			done := vtime.NewWaitGroup("done")
			done.Add(1)
			tb.k.GoDaemon("sink", func(q *vtime.Proc) {
				v := ln.Accept(q)
				buf := make([]byte, 4096)
				for {
					n, err := v.Read(q, buf)
					got = append(got, buf[:n]...)
					if err != nil {
						done.Done()
						return
					}
				}
			})
			v, err := tb.ep[0].ConnectWait(p, "madio", vlink.Addr{Node: 1, Port: 9000})
			if err != nil {
				return
			}
			off := 0
			for _, n := range sizes {
				v.Write(p, msg[off:off+n])
				off += n
			}
			v.Close()
			done.Wait(p)
		})
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDriversListedSorted pins the determinism rule: Drivers() must not
// leak map iteration order into observable output, whatever order the
// drivers were registered in.
func TestDriversListedSorted(t *testing.T) {
	tb := newTestbed(t)
	want := []string{"loopback", "madio", "sysio"}
	for i := 0; i < 2; i++ {
		got := tb.ep[i].Drivers()
		if len(got) != len(want) {
			t.Fatalf("endpoint %d: drivers = %v", i, got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("endpoint %d: drivers = %v, want sorted %v", i, got, want)
			}
		}
	}
}
