// Package faults is the failure-injection layer of the testbed: node
// crashes, whole-site power loss, and WAN partitions with later heals,
// all as deterministic virtual-time kernel events. The injector is the
// ground truth of what is broken; the detector is the observer that
// turns that ground truth into *detected* transitions after a
// configurable sweep interval — the gap between the two is exactly the
// detection latency the recovery benchmarks report.
//
// The injector only pulls levers the stack already has: a node crash is
// ipstack.Stack.KillHost (every TCP conn on both ends errors out
// promptly) plus session.Manager.KillNode (message channels — local
// pipes, SAN circuits — fail with ErrPeerDown); a partition is
// netsim.Hop.SetDown on the named core hops, which the weather service
// observes through its probes and the selector heals around. Layers
// that keep membership (group trees, the datagrid ring) subscribe to
// the detector, not the injector, so their reaction pays the same
// detection delay a real deployment would.
package faults

import (
	"slices"
	"time"

	"padico/internal/grid"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Listener observes liveness transitions: down=true when the node
// became unreachable (crash or partition), down=false when a partition
// healed. Crashed nodes never come back.
type Listener func(n topology.NodeID, down bool)

// Injector schedules and applies failures on one testbed. All methods
// run to completion in kernel context and are deterministic; ordering
// inside multi-node events (site blackouts) is node-id order.
type Injector struct {
	g   *grid.Grid
	tel *telemetry.Hub
	// down is the ground truth of unreachable nodes; crashed marks the
	// subset whose hosts are dead for good (power loss, not partition).
	down    map[topology.NodeID]bool
	crashed map[topology.NodeID]bool
	subs    []Listener
}

// NewInjector binds an injector to a testbed. Attach telemetry
// (grid.Telemetry) before constructing it if fault instants should
// land in the flight ring and trace.
func NewInjector(g *grid.Grid) *Injector {
	return &Injector{
		g:       g,
		tel:     telemetry.For(g.K),
		down:    make(map[topology.NodeID]bool),
		crashed: make(map[topology.NodeID]bool),
	}
}

// Subscribe registers a listener for liveness transitions; listeners
// fire in registration order, at the instant the fault is injected
// (the oracle view — use a Detector for the delayed, realistic view).
func (in *Injector) Subscribe(fn Listener) { in.subs = append(in.subs, fn) }

// Down reports whether a node is currently unreachable.
func (in *Injector) Down(n topology.NodeID) bool { return in.down[n] }

// DownNodes returns the currently unreachable nodes, sorted.
func (in *Injector) DownNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(in.down))
	for n := range in.down {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// transition flips one node's liveness and notifies subscribers.
func (in *Injector) transition(n topology.NodeID, down bool) {
	if in.down[n] == down {
		return
	}
	if down {
		in.down[n] = true
	} else {
		delete(in.down, n)
	}
	for _, fn := range in.subs {
		fn(n, down)
	}
}

// CrashNode kills one node for good: its host drops all traffic, every
// TCP connection touching it errors out on both ends, and every
// session channel to or from it fails with session.ErrPeerDown. A
// crashed node never heals.
func (in *Injector) CrashNode(n topology.NodeID) {
	if in.crashed[n] {
		return
	}
	in.crashed[n] = true
	in.tel.Note("faults", "node crash", int(n), 0, 0)
	if in.tel.Tracing() {
		in.tel.Instant("faults", "node_crash", int(n)).End()
	}
	in.g.Stack.KillHost(n)
	in.g.Session().KillNode(n)
	in.transition(n, true)
}

// siteNodes returns a site's node ids, sorted.
func (in *Injector) siteNodes(site string) []topology.NodeID {
	var out []topology.NodeID
	for _, nd := range in.g.Topo.Nodes() {
		if nd.Site == site {
			out = append(out, nd.ID)
		}
	}
	slices.Sort(out)
	return out
}

// CrashSite is a site power loss: every node of the site crashes, in
// id order. It returns the nodes killed.
func (in *Injector) CrashSite(site string) []topology.NodeID {
	ns := in.siteNodes(site)
	in.tel.Note("faults", "site blackout: "+site, -1, int64(len(ns)), 0)
	if in.tel.Tracing() {
		in.tel.Instant("faults", "site_blackout", -1).Str("site", site).End()
	}
	for _, n := range ns {
		in.CrashNode(n)
	}
	return ns
}

// setCores flips the named core hops (grid.CoreHops keys) down or up.
// Unknown names panic: a typo silently partitioning nothing would make
// the whole scenario vacuous.
func (in *Injector) setCores(down bool, cores []string) {
	for _, name := range cores {
		hop := in.g.CoreHop(name)
		if hop == nil {
			panic("faults: unknown core hop " + name)
		}
		hop.SetDown(down)
		state := int64(0)
		if down {
			state = 1
		}
		in.tel.Note("faults", "core "+name+" set", -1, state, 0)
	}
}

// PartitionCores takes the named WAN core hops down: every packet
// queued onto them is dropped until HealCores. Nodes stay alive — a
// pure network partition, visible to TCP as loss and to the weather
// service as probe failures.
func (in *Injector) PartitionCores(cores ...string) {
	if in.tel.Tracing() {
		in.tel.Instant("faults", "partition", -1).End()
	}
	in.setCores(true, cores)
}

// HealCores restores previously partitioned core hops.
func (in *Injector) HealCores(cores ...string) {
	if in.tel.Tracing() {
		in.tel.Instant("faults", "heal", -1).End()
	}
	in.setCores(false, cores)
}

// PartitionSite cuts a whole site off: its WAN cores (named by the
// caller, e.g. "core:vthd:site0+site1") go down and its nodes are
// declared unreachable to subscribers. HealSite reverses it — unlike a
// crash, the site's hosts and their stored state survive.
func (in *Injector) PartitionSite(site string, cores ...string) {
	in.tel.Note("faults", "site partitioned: "+site, -1, int64(len(cores)), 0)
	in.setCores(true, cores)
	for _, n := range in.siteNodes(site) {
		in.transition(n, true)
	}
}

// HealSite restores a partitioned site: cores up, nodes reachable
// again (crashed nodes stay down — power loss does not heal).
func (in *Injector) HealSite(site string, cores ...string) {
	in.tel.Note("faults", "site healed: "+site, -1, int64(len(cores)), 0)
	in.setCores(false, cores)
	for _, n := range in.siteNodes(site) {
		if !in.crashed[n] {
			in.transition(n, false)
		}
	}
}

// ScheduleCrash arms a node crash at an absolute virtual time.
func (in *Injector) ScheduleCrash(at vtime.Time, n topology.NodeID) {
	in.g.K.At(at, func() { in.CrashNode(n) })
}

// ScheduleSiteBlackout arms a whole-site power loss.
func (in *Injector) ScheduleSiteBlackout(at vtime.Time, site string) {
	in.g.K.At(at, func() { in.CrashSite(site) })
}

// SchedulePartition arms a partition of the named cores at `at`,
// healing at `heal` (zero heal time means the partition is permanent).
func (in *Injector) SchedulePartition(at, heal vtime.Time, cores ...string) {
	in.g.K.At(at, func() { in.PartitionCores(cores...) })
	if heal > at {
		in.g.K.At(heal, func() { in.HealCores(cores...) })
	}
}

// ---------------------------------------------------------------------
// Detector: the observer side.

// Detector turns the injector's ground truth into detected transitions
// after a sweep interval — the failure-detection latency. Membership
// layers (datagrid ring, group trees) subscribe here so their healing
// starts when a real monitor would have noticed, not at the fault
// instant itself. Sweeps and transition callbacks run on one daemon
// proc in node-id order, so reactions are deterministic.
type Detector struct {
	in       *Injector
	interval time.Duration
	fn       Listener
	seen     map[topology.NodeID]bool
	started  bool
}

// NewDetector builds a detector sweeping every interval (default
// 500 ms of virtual time).
func NewDetector(in *Injector, interval time.Duration, fn Listener) *Detector {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Detector{in: in, interval: interval, fn: fn, seen: make(map[topology.NodeID]bool)}
}

// Start launches the sweep daemon (idempotent). Daemons do not hold
// the kernel alive: a run with no other work still terminates.
func (d *Detector) Start() {
	if d.started {
		return
	}
	d.started = true
	d.in.g.K.GoDaemon("fault-detector", func(p *vtime.Proc) {
		for {
			p.Sleep(d.interval)
			d.sweep()
		}
	})
}

// sweep fires the callback for every liveness transition since the
// last sweep, in node-id order.
func (d *Detector) sweep() {
	set := make(map[topology.NodeID]bool, len(d.seen))
	for n := range d.seen {
		set[n] = true
	}
	for _, n := range d.in.DownNodes() {
		set[n] = true
	}
	ids := make([]topology.NodeID, 0, len(set))
	for n := range set {
		ids = append(ids, n)
	}
	slices.Sort(ids)
	for _, n := range ids {
		cur := d.in.Down(n)
		if cur == d.seen[n] {
			continue
		}
		if cur {
			d.seen[n] = true
		} else {
			delete(d.seen, n)
		}
		state := int64(0)
		if cur {
			state = 1
		}
		d.in.tel.Note("faults", "detected transition", int(n), state, 0)
		if d.fn != nil {
			d.fn(n, cur)
		}
	}
}
