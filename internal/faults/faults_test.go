package faults_test

import (
	"testing"
	"time"

	"padico/internal/faults"
	"padico/internal/grid"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// TestDetectorBoundedLatency partitions a site and heals it, checking
// that the detector reports every transition within one sweep interval
// of the ground-truth event — the deterministic model of failure
// detection latency.
func TestDetectorBoundedLatency(t *testing.T) {
	g := grid.MultiSiteLoss(2, 2, 0) // site0 {0,1}, site1 {2,3}
	inj := faults.NewInjector(g)
	type ev struct {
		n    topology.NodeID
		down bool
		at   vtime.Time
	}
	var seen []ev
	det := faults.NewDetector(inj, 500*time.Millisecond, func(n topology.NodeID, down bool) {
		seen = append(seen, ev{n, down, g.K.Now()})
	})
	det.Start()
	var cut, heal vtime.Time
	if err := g.K.Run(func(p *vtime.Proc) {
		p.Sleep(time.Second)
		cut = g.K.Now()
		inj.PartitionSite("site1", "core:vthd")
		if got := inj.DownNodes(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
			t.Fatalf("DownNodes after partition = %v", got)
		}
		p.Sleep(2 * time.Second)
		heal = g.K.Now()
		inj.HealSite("site1", "core:vthd")
		if got := inj.DownNodes(); len(got) != 0 {
			t.Fatalf("DownNodes after heal = %v", got)
		}
		p.Sleep(time.Second)
	}); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if len(seen) != 4 {
		t.Fatalf("detector saw %d transitions, want 4: %+v", len(seen), seen)
	}
	sweep := vtime.Time(0).Add(500 * time.Millisecond).Sub(vtime.Time(0))
	for i, e := range seen {
		ref, down := cut, true
		if i >= 2 {
			ref, down = heal, false
		}
		if e.down != down {
			t.Fatalf("transition %d = %+v, want down=%v", i, e, down)
		}
		if lag := e.at.Sub(ref); lag < 0 || lag > sweep {
			t.Fatalf("transition %d detected %v after the event, want [0, %v]", i, lag, sweep)
		}
	}
	if seen[0].n != 2 || seen[1].n != 3 {
		t.Fatalf("down transitions out of id order: %+v", seen[:2])
	}
}

// TestCrashIsPermanent checks that HealSite does not resurrect a
// crashed node, and that CrashNode is idempotent.
func TestCrashIsPermanent(t *testing.T) {
	g := grid.MultiSiteLoss(2, 2, 0)
	inj := faults.NewInjector(g)
	if err := g.K.Run(func(p *vtime.Proc) {
		inj.CrashNode(2)
		inj.CrashNode(2) // idempotent
		inj.PartitionSite("site1", "core:vthd")
		inj.HealSite("site1", "core:vthd")
		if !inj.Down(2) {
			t.Fatal("HealSite resurrected a crashed node")
		}
		if inj.Down(3) {
			t.Fatal("partitioned (not crashed) node still down after heal")
		}
	}); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}
