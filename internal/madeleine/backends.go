package madeleine

import (
	"encoding/binary"
	"fmt"

	"padico/internal/drivers/bip"
	"padico/internal/drivers/gm"
	"padico/internal/drivers/sisci"
	"padico/internal/drivers/via"
	"padico/internal/model"
)

// Each backend maps channel group ranks to fabric addresses through the
// group slice (group[rank] = fabric address).

// ---------------------------------------------------------------------
// GM backend: 2 hardware channels = 2 GM ports.

type gmBackend struct {
	nic   *gm.NIC
	group []int
	rank  map[int]int // fabric addr -> rank
}

// NewGM builds the Madeleine GM backend for one node.
func NewGM(nic *gm.NIC, group []int) Backend {
	return &gmBackend{nic: nic, group: group, rank: rankIndex(group)}
}

func (b *gmBackend) Name() string     { return "gm" }
func (b *gmBackend) MaxChannels() int { return model.MyrinetHWChannels }

func (b *gmBackend) OpenChannel(id int, deliver func(src int, segs [][]byte)) (BackendChannel, error) {
	port, err := b.nic.OpenPort(id)
	if err != nil {
		return nil, err
	}
	port.SetHandler(func(ev gm.RecvEvent) {
		deliver(b.rank[ev.SrcAddr], splitSegs(ev.Data))
	})
	return &gmChannel{b: b, port: port, id: id}, nil
}

type gmChannel struct {
	b    *gmBackend
	port *gm.Port
	id   int
}

func (c *gmChannel) Send(dst int, segs [][]byte) {
	// Boundary framing rides in GM's scatter-gather vector.
	c.port.Send(c.b.group[dst], c.id, flattenFramed(segs))
}

// ---------------------------------------------------------------------
// BIP backend: 1 hardware channel; receive credits are kept topped up so
// rendezvous never stalls (Madeleine posts receives eagerly).

type bipBackend struct {
	ep    *bip.Endpoint
	group []int
	rank  map[int]int
}

// NewBIP builds the Madeleine BIP backend for one node.
func NewBIP(ep *bip.Endpoint, group []int) Backend {
	return &bipBackend{ep: ep, group: group, rank: rankIndex(group)}
}

func (b *bipBackend) Name() string     { return "bip" }
func (b *bipBackend) MaxChannels() int { return 1 }

func (b *bipBackend) OpenChannel(id int, deliver func(src int, segs [][]byte)) (BackendChannel, error) {
	for i := 0; i < 64; i++ {
		b.ep.PostRecv()
	}
	b.ep.SetHandler(func(ev bip.RecvEvent) {
		b.ep.PostRecv() // keep the credit pool full
		deliver(b.rank[ev.SrcAddr], splitSegs(ev.Data))
	})
	return &bipChannel{b: b}, nil
}

type bipChannel struct{ b *bipBackend }

func (c *bipChannel) Send(dst int, segs [][]byte) {
	c.b.ep.Send(c.b.group[dst], flattenFramed(segs))
}

// ---------------------------------------------------------------------
// SISCI backend: 1 channel; messaging is a ring buffer in a remote
// segment plus an interrupt per message — the classic SCI pattern.

const (
	sciRingSize = 4 << 20
	sciSegBase  = 1000       // segment id = sciSegBase + writerRank
	sciWrapMark = 0xFFFFFFFF // length sentinel: "message restarts at offset 0"
)

type sciBackend struct {
	node   *sisci.Node
	group  []int
	rank   map[int]int
	inSegs map[int]*sisci.Segment // writer rank -> local segment they write into
}

// NewSISCI builds the Madeleine SCI backend for one node. Every node
// exports one inbound ring segment per peer; rings are connected lazily.
func NewSISCI(node *sisci.Node, group []int) Backend {
	b := &sciBackend{node: node, group: group, rank: rankIndex(group),
		inSegs: make(map[int]*sisci.Segment)}
	for r := range group {
		if group[r] != node.Addr() {
			b.inSegs[r] = node.CreateSegment(sciSegBase+r, sciRingSize)
		}
	}
	return b
}

func (b *sciBackend) Name() string     { return "sisci" }
func (b *sciBackend) MaxChannels() int { return model.SCIHWChannels }

func (b *sciBackend) OpenChannel(id int, deliver func(src int, segs [][]byte)) (BackendChannel, error) {
	c := &sciChannel{b: b, wcur: make(map[int]int), rcur: make(map[int]int),
		rings: make(map[int]*sisci.RemoteSegment)}
	// One interrupt number per sender rank.
	for r := range b.group {
		if b.group[r] == b.node.Addr() {
			continue
		}
		r := r
		b.node.RegisterInterrupt(r, func(src int) {
			c.consume(r, deliver)
		})
	}
	return c, nil
}

type sciChannel struct {
	b     *sciBackend
	rings map[int]*sisci.RemoteSegment // dst rank -> my outbound ring on dst
	wcur  map[int]int                  // write cursor per dst
	rcur  map[int]int                  // read cursor per src
}

func (c *sciChannel) ring(dst int) *sisci.RemoteSegment {
	rs, ok := c.rings[dst]
	if !ok {
		self := c.b.rank[c.b.node.Addr()]
		rs = c.b.node.Connect(c.b.group[dst], sciSegBase+self, sciRingSize)
		c.rings[dst] = rs
	}
	return rs
}

// Send frames the segment vector into the remote ring and raises the
// per-sender interrupt. Writer and reader advance cursors with the same
// deterministic rules, so no cursor exchange is needed; the ring is
// sized to hold any in-flight window of this simulation.
func (c *sciChannel) Send(dst int, segs [][]byte) {
	data := flattenFramed(segs)
	if 4+len(data) > sciRingSize {
		panic("madeleine/sisci: message larger than ring")
	}
	msg := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(msg, uint32(len(data)))
	copy(msg[4:], data)
	rs := c.ring(dst)
	cur := c.wcur[dst]
	if cur+len(msg) > sciRingSize { // wrap, leaving a sentinel if it fits
		if cur+4 <= sciRingSize {
			var mark [4]byte
			binary.BigEndian.PutUint32(mark[:], sciWrapMark)
			if err := rs.Write(cur, mark[:]); err != nil {
				panic(fmt.Sprintf("madeleine/sisci: sentinel write: %v", err))
			}
		}
		cur = 0
	}
	if err := rs.Write(cur, msg); err != nil {
		panic(fmt.Sprintf("madeleine/sisci: ring write: %v", err))
	}
	c.wcur[dst] = cur + len(msg)
	self := c.b.rank[c.b.node.Addr()]
	rs.TriggerInterrupt(self)
}

// consume reads one framed message from the inbound ring of src. The
// reader mirrors the writer's deterministic cursor rules, so no cursor
// exchange is needed.
func (c *sciChannel) consume(src int, deliver func(src int, segs [][]byte)) {
	seg := c.b.inSegs[src]
	cur := c.rcur[src]
	if cur+4 > sciRingSize {
		cur = 0
	} else if binary.BigEndian.Uint32(seg.Mem[cur:]) == sciWrapMark {
		cur = 0
	}
	n := int(binary.BigEndian.Uint32(seg.Mem[cur:]))
	data := append([]byte(nil), seg.Mem[cur+4:cur+4+n]...)
	c.rcur[src] = cur + 4 + n
	deliver(src, splitSegs(data))
}

// ---------------------------------------------------------------------
// VIA backend: 1 channel; receives are re-posted in the completion
// handler, so the initial descriptor pool never drains (the simulated
// fabric delivers sequentially).

const viaBufSize = 64 << 10

type viaBackend struct {
	nic   *via.NIC
	group []int
	rank  map[int]int
}

// NewVIA builds the Madeleine VIA backend for one node.
func NewVIA(nic *via.NIC, group []int) Backend {
	return &viaBackend{nic: nic, group: group, rank: rankIndex(group)}
}

func (b *viaBackend) Name() string     { return "via" }
func (b *viaBackend) MaxChannels() int { return 1 }

func (b *viaBackend) OpenChannel(id int, deliver func(src int, segs [][]byte)) (BackendChannel, error) {
	vi := b.nic.CreateVI(id)
	for i := 0; i < 64; i++ {
		vi.PostRecv(make([]byte, viaBufSize))
	}
	asm := make(map[int][]byte) // src rank -> partial message
	vi.SetHandler(func(comp via.Completion) {
		vi.PostRecv(make([]byte, viaBufSize))
		src := b.rank[comp.SrcAddr]
		// First byte flags the final sub-message of a Madeleine message.
		last := comp.Data[0] == 1
		asm[src] = append(asm[src], comp.Data[1:]...)
		if last {
			data := asm[src]
			delete(asm, src)
			deliver(src, splitSegs(data))
		}
	})
	return &viaChannel{b: b, vi: vi, id: id}, nil
}

type viaChannel struct {
	b  *viaBackend
	vi *via.VI
	id int
}

func (c *viaChannel) Send(dst int, segs [][]byte) {
	data := flattenFramed(segs)
	for off := 0; off < len(data) || off == 0; off += viaBufSize - 1 {
		end := off + viaBufSize - 1
		if end > len(data) {
			end = len(data)
		}
		sub := make([]byte, 1+end-off)
		if end == len(data) {
			sub[0] = 1
		}
		copy(sub[1:], data[off:end])
		c.vi.PostSend(c.b.group[dst], c.id, sub)
		if end == len(data) {
			break
		}
	}
}

// ---------------------------------------------------------------------
// Shared helpers: segment vectors travel as a framed byte stream
// [count][len0][seg0][len1][seg1]... so every backend preserves segment
// boundaries for Unpack.

func flattenFramed(segs [][]byte) []byte {
	total := 4
	for _, s := range segs {
		total += 4 + len(s)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(segs)))
	out = append(out, hdr[:]...)
	for _, s := range segs {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(s)))
		out = append(out, hdr[:]...)
		out = append(out, s...)
	}
	return out
}

func splitSegs(data []byte) [][]byte {
	n := int(binary.BigEndian.Uint32(data))
	segs := make([][]byte, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		l := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		segs = append(segs, data[off:off+l])
		off += l
	}
	return segs
}

func rankIndex(group []int) map[int]int {
	m := make(map[int]int, len(group))
	for r, addr := range group {
		m[addr] = r
	}
	return m
}
