package madeleine_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"padico/internal/drivers/bip"
	"padico/internal/drivers/gm"
	"padico/internal/drivers/sisci"
	"padico/internal/drivers/via"
	"padico/internal/madapi"
	"padico/internal/madeleine"
	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// pair builds two Madeleine adapters over the named backend on a fresh
// kernel and returns open channel 0 on both.
func pair(t *testing.T, k *vtime.Kernel, backend string) (a, b madapi.Channel) {
	t.Helper()
	group := []int{0, 1}
	var ba, bb madeleine.Backend
	switch backend {
	case "gm":
		xb := netsim.NewCrossbar(k, topology.Myrinet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
		ba = madeleine.NewGM(gm.OpenNIC(k, xb, 0), group)
		bb = madeleine.NewGM(gm.OpenNIC(k, xb, 1), group)
	case "bip":
		xb := netsim.NewCrossbar(k, topology.Myrinet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
		ba = madeleine.NewBIP(bip.Open(k, xb, 0), group)
		bb = madeleine.NewBIP(bip.Open(k, xb, 1), group)
	case "sisci":
		xb := netsim.NewCrossbar(k, topology.SCI, model.SCIRate, 300*time.Nanosecond, model.SCIWireLat)
		ba = madeleine.NewSISCI(sisci.Open(k, xb, 0), group)
		bb = madeleine.NewSISCI(sisci.Open(k, xb, 1), group)
	case "via":
		xb := netsim.NewCrossbar(k, topology.VIANet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
		ba = madeleine.NewVIA(via.Open(k, xb, 0), group)
		bb = madeleine.NewVIA(via.Open(k, xb, 1), group)
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	ada := madeleine.New(k, ba, 0, 2)
	adb := madeleine.New(k, bb, 1, 2)
	cha, err := ada.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	chb, err := adb.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	return cha, chb
}

var allBackends = []string{"gm", "bip", "sisci", "via"}

func TestPackUnpackRoundTripAllBackends(t *testing.T) {
	for _, be := range allBackends {
		be := be
		t.Run(be, func(t *testing.T) {
			k := vtime.NewKernel()
			cha, chb := pair(t, k, be)
			if err := k.Run(func(p *vtime.Proc) {
				out := cha.BeginPacking(1)
				out.Pack([]byte("hdr"), madapi.SendSafer)
				out.Pack([]byte("payload-data"), madapi.SendCheaper)
				out.EndPacking()

				in := chb.BeginUnpacking(p)
				if in.Src() != 0 {
					t.Errorf("src = %d", in.Src())
				}
				hdr := in.Unpack(3, madapi.ReceiveExpress)
				body := in.Unpack(12, madapi.ReceiveCheaper)
				in.EndUnpacking()
				if string(hdr) != "hdr" || string(body) != "payload-data" {
					t.Errorf("got %q %q", hdr, body)
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLargeMessagesAllBackends(t *testing.T) {
	for _, be := range allBackends {
		be := be
		t.Run(be, func(t *testing.T) {
			k := vtime.NewKernel()
			cha, chb := pair(t, k, be)
			msg := make([]byte, 1<<20)
			rand.New(rand.NewSource(1)).Read(msg)
			if err := k.Run(func(p *vtime.Proc) {
				for i := 0; i < 3; i++ {
					out := cha.BeginPacking(1)
					out.Pack(msg, madapi.SendLater)
					out.EndPacking()
				}
				for i := 0; i < 3; i++ {
					in := chb.BeginUnpacking(p)
					got := in.Unpack(len(msg), madapi.ReceiveCheaper)
					in.EndUnpacking()
					if !bytes.Equal(got, msg) {
						t.Fatalf("iteration %d corrupted", i)
					}
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendSaferAllowsBufferReuse(t *testing.T) {
	k := vtime.NewKernel()
	cha, chb := pair(t, k, "gm")
	if err := k.Run(func(p *vtime.Proc) {
		buf := []byte("original")
		out := cha.BeginPacking(1)
		out.Pack(buf, madapi.SendSafer)
		copy(buf, "CLOBBER!") // reuse immediately: SendSafer must have copied
		out.EndPacking()
		in := chb.BeginUnpacking(p)
		got := in.Unpack(8, madapi.ReceiveExpress)
		in.EndUnpacking()
		if string(got) != "original" {
			t.Errorf("SendSafer did not copy: %q", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExpressAfterCheaperPanics(t *testing.T) {
	k := vtime.NewKernel()
	cha, chb := pair(t, k, "gm")
	err := k.Run(func(p *vtime.Proc) {
		out := cha.BeginPacking(1)
		out.Pack([]byte("a"), madapi.SendCheaper)
		out.Pack([]byte("b"), madapi.SendCheaper)
		out.EndPacking()
		in := chb.BeginUnpacking(p)
		in.Unpack(1, madapi.ReceiveCheaper)
		in.Unpack(1, madapi.ReceiveExpress) // protocol violation
	})
	if err == nil {
		t.Fatal("ReceiveExpress after ReceiveCheaper did not panic")
	}
}

func TestUnpackSizeMismatchPanics(t *testing.T) {
	k := vtime.NewKernel()
	cha, chb := pair(t, k, "gm")
	err := k.Run(func(p *vtime.Proc) {
		out := cha.BeginPacking(1)
		out.Pack([]byte("four"), madapi.SendSafer)
		out.EndPacking()
		in := chb.BeginUnpacking(p)
		in.Unpack(5, madapi.ReceiveExpress)
	})
	if err == nil {
		t.Fatal("size mismatch did not panic")
	}
}

func TestChannelLimitsMatchHardware(t *testing.T) {
	k := vtime.NewKernel()
	xb := netsim.NewCrossbar(k, topology.Myrinet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
	sci := netsim.NewCrossbar(k, topology.SCI, model.SCIRate, 300*time.Nanosecond, model.SCIWireLat)
	gmAd := madeleine.New(k, madeleine.NewGM(gm.OpenNIC(k, xb, 0), []int{0, 1}), 0, 2)
	sciAd := madeleine.New(k, madeleine.NewSISCI(sisci.Open(k, sci, 0), []int{0, 1}), 0, 2)

	if gmAd.MaxChannels() != 2 {
		t.Errorf("gm channels = %d, want 2 (paper §4.1)", gmAd.MaxChannels())
	}
	if sciAd.MaxChannels() != 1 {
		t.Errorf("sci channels = %d, want 1 (paper §4.1)", sciAd.MaxChannels())
	}
	if _, err := gmAd.Open(0); err != nil {
		t.Fatal(err)
	}
	if _, err := gmAd.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := gmAd.Open(2); err == nil {
		t.Error("3rd gm channel opened")
	}
	if _, err := sciAd.Open(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sciAd.Open(1); err == nil {
		t.Error("2nd sci channel opened")
	}
}

func TestMadeleineLatencyOverGM(t *testing.T) {
	k := vtime.NewKernel()
	cha, chb := pair(t, k, "gm")
	var oneway time.Duration
	if err := k.Run(func(p *vtime.Proc) {
		done := vtime.NewWaitGroup("echo")
		done.Add(1)
		k.GoDaemon("echo", func(q *vtime.Proc) {
			for {
				in := chb.BeginUnpacking(q)
				data := in.Unpack(1, madapi.ReceiveExpress)
				in.EndUnpacking()
				out := chb.BeginPacking(in.Src())
				out.Pack(data, madapi.SendSafer)
				out.EndPacking()
			}
		})
		const rounds = 200
		start := p.Now()
		for i := 0; i < rounds; i++ {
			out := cha.BeginPacking(1)
			out.Pack([]byte{byte(i)}, madapi.SendSafer)
			out.EndPacking()
			in := cha.BeginUnpacking(p)
			in.Unpack(1, madapi.ReceiveExpress)
			in.EndUnpacking()
		}
		oneway = p.Now().Sub(start) / (2 * rounds)
		done.Done()
	}); err != nil {
		t.Fatal(err)
	}
	// GM (~5.7 µs incl. framing wire) + Madeleine 2×1.25 µs ≈ 8.2 µs.
	if oneway < 7*time.Microsecond || oneway > 9*time.Microsecond {
		t.Fatalf("Madeleine/GM one-way = %v, want ~8 µs", oneway)
	}
}

func TestSCIRingWrapsManyLaps(t *testing.T) {
	k := vtime.NewKernel()
	cha, chb := pair(t, k, "sisci")
	msg := make([]byte, 900<<10) // ~1 MB framed: several laps over a 4 MB ring
	rand.New(rand.NewSource(2)).Read(msg)
	if err := k.Run(func(p *vtime.Proc) {
		for i := 0; i < 12; i++ {
			out := cha.BeginPacking(1)
			out.Pack(msg, madapi.SendLater)
			out.EndPacking()
			in := chb.BeginUnpacking(p)
			got := in.Unpack(len(msg), madapi.ReceiveCheaper)
			in.EndUnpacking()
			if !bytes.Equal(got, msg) {
				t.Fatalf("lap %d corrupted", i)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: segment structure (count and sizes) survives all backends.
func TestQuickSegmentStructure(t *testing.T) {
	f := func(sizes []uint16, pick uint8) bool {
		if len(sizes) == 0 || len(sizes) > 8 {
			return true
		}
		be := allBackends[int(pick)%len(allBackends)]
		k := vtime.NewKernel()
		var cha, chb madapi.Channel
		tt := &testing.T{}
		cha, chb = pair(tt, k, be)
		segs := make([][]byte, len(sizes))
		rnd := rand.New(rand.NewSource(int64(pick)))
		for i, s := range sizes {
			segs[i] = make([]byte, int(s)%5000+1)
			rnd.Read(segs[i])
		}
		ok := true
		err := k.Run(func(p *vtime.Proc) {
			out := cha.BeginPacking(1)
			for _, s := range segs {
				out.Pack(s, madapi.SendSafer)
			}
			out.EndPacking()
			in := chb.BeginUnpacking(p)
			for _, s := range segs {
				got := in.Unpack(len(s), madapi.ReceiveCheaper)
				if !bytes.Equal(got, s) {
					ok = false
				}
			}
			in.EndUnpacking()
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
