// Package madeleine reimplements the Madeleine portability layer
// (Aumage et al., CLUSTER 2000) that PadicoTM builds MadIO on: channels
// over a static group, incremental pack/unpack with explicit semantics,
// and per-driver backends (GM, BIP, SISCI, VIA). A channel provides at
// most what the hardware offers — 2 channels on Myrinet, 1 on SCI —
// which is precisely why MadIO adds logical multiplexing above it
// (paper §4.1).
package madeleine

import (
	"errors"
	"fmt"

	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrNoChannel = errors.New("madeleine: no hardware channel left")
	ErrChanOpen  = errors.New("madeleine: channel id already open")
)

// Backend is a driver adapter bound to one node's NIC on one fabric.
// Ranks index the group the adapter was built with.
type Backend interface {
	// Name identifies the driver ("gm", "bip", "sisci", "via").
	Name() string
	// MaxChannels is the hardware channel limit.
	MaxChannels() int
	// OpenChannel binds hardware channel id and returns a sender; incoming
	// messages (concatenated segment payloads plus boundary list) are
	// passed to deliver in kernel context.
	OpenChannel(id int, deliver func(src int, segs [][]byte)) (BackendChannel, error)
}

// BackendChannel sends segment vectors to group ranks.
type BackendChannel interface {
	Send(dst int, segs [][]byte)
}

// Adapter is the per-node Madeleine instance over one backend.
type Adapter struct {
	k       *vtime.Kernel
	backend Backend
	self    int
	size    int
	open    map[int]*Channel
}

// New builds an adapter for a node with rank self in a group of size
// nodes, over the given backend.
func New(k *vtime.Kernel, backend Backend, self, size int) *Adapter {
	return &Adapter{k: k, backend: backend, self: self, size: size, open: make(map[int]*Channel)}
}

// Backend returns the underlying driver adapter.
func (a *Adapter) Backend() Backend { return a.backend }

// MaxChannels returns the hardware channel limit of the backend.
func (a *Adapter) MaxChannels() int { return a.backend.MaxChannels() }

// Open binds hardware channel id and returns the Madeleine channel.
func (a *Adapter) Open(id int) (*Channel, error) {
	if id < 0 || id >= a.backend.MaxChannels() {
		return nil, ErrNoChannel
	}
	if _, dup := a.open[id]; dup {
		return nil, ErrChanOpen
	}
	ch := &Channel{
		a: a, id: id,
		rx: vtime.NewQueue[*incoming](fmt.Sprintf("mad:%s:%d:rx", a.backend.Name(), id)),
	}
	bc, err := a.backend.OpenChannel(id, ch.deliver)
	if err != nil {
		return nil, err
	}
	ch.bc = bc
	a.open[id] = ch
	return ch, nil
}

// incoming is one received message.
type incoming struct {
	src  int
	segs [][]byte
}

// Channel is one Madeleine channel. It implements madapi.Channel.
type Channel struct {
	a  *Adapter
	id int
	bc BackendChannel
	rx *vtime.Queue[*incoming]

	MsgsSent int64
	MsgsRecv int64
}

var _ madapi.Channel = (*Channel)(nil)

// Self implements madapi.Channel.
func (ch *Channel) Self() int { return ch.a.self }

// Size implements madapi.Channel.
func (ch *Channel) Size() int { return ch.a.size }

// ID returns the hardware channel id.
func (ch *Channel) ID() int { return ch.id }

// SetRxNotify installs a callback fired in kernel context whenever a
// message is queued (used by the NetAccess core poll loop).
func (ch *Channel) SetRxNotify(fn func()) { ch.rx.OnPush = fn }

// Pending returns the number of undelivered messages.
func (ch *Channel) Pending() int { return ch.rx.Len() }

// deliver runs in kernel context when the backend completes a message;
// the receive-side per-message cost is charged here.
func (ch *Channel) deliver(src int, segs [][]byte) {
	ch.a.k.Schedule(model.MadeleineCost, func() {
		ch.MsgsRecv++
		ch.rx.Push(&incoming{src: src, segs: segs})
	})
}

// BeginPacking implements madapi.Channel.
func (ch *Channel) BeginPacking(dst int) madapi.OutMessage {
	if dst < 0 || dst >= ch.a.size {
		panic(fmt.Sprintf("madeleine: pack to rank %d outside group of %d", dst, ch.a.size))
	}
	return &outMessage{ch: ch, dst: dst}
}

// BeginUnpacking implements madapi.Channel.
func (ch *Channel) BeginUnpacking(p *vtime.Proc) madapi.InMessage {
	in := ch.rx.Pop(p)
	return &inMessage{ch: ch, msg: in}
}

// TryBeginUnpacking implements madapi.Channel.
func (ch *Channel) TryBeginUnpacking() (madapi.InMessage, bool) {
	in, ok := ch.rx.TryPop()
	if !ok {
		return nil, false
	}
	return &inMessage{ch: ch, msg: in}, true
}

// outMessage accumulates segments until EndPacking.
type outMessage struct {
	ch    *Channel
	dst   int
	segs  [][]byte
	ended bool
}

// Pack implements madapi.OutMessage. SendSafer copies the buffer so the
// caller may reuse it; the other modes alias it until EndPacking.
func (m *outMessage) Pack(data []byte, mode madapi.PackMode) {
	if m.ended {
		panic("madeleine: Pack after EndPacking")
	}
	if mode == madapi.SendSafer {
		data = append([]byte(nil), data...)
	}
	m.segs = append(m.segs, data)
}

// EndPacking implements madapi.OutMessage: the message leaves after the
// send-side per-message cost.
func (m *outMessage) EndPacking() {
	if m.ended {
		panic("madeleine: EndPacking twice")
	}
	m.ended = true
	m.ch.MsgsSent++
	segs := m.segs
	dst := m.dst
	ch := m.ch
	ch.a.k.Schedule(model.MadeleineCost, func() { ch.bc.Send(dst, segs) })
}

// inMessage walks the received segment list.
type inMessage struct {
	ch      *Channel
	msg     *incoming
	next    int
	cheaper bool
	ended   bool
}

// Src implements madapi.InMessage.
func (m *inMessage) Src() int { return m.msg.src }

// Unpack implements madapi.InMessage. Segment sizes must match the
// packing exactly; ReceiveExpress after ReceiveCheaper violates
// Madeleine's protocol and panics.
func (m *inMessage) Unpack(n int, mode madapi.UnpackMode) []byte {
	if m.ended {
		panic("madeleine: Unpack after EndUnpacking")
	}
	if mode == madapi.ReceiveExpress && m.cheaper {
		panic("madeleine: ReceiveExpress after ReceiveCheaper")
	}
	if mode == madapi.ReceiveCheaper {
		m.cheaper = true
	}
	if m.next >= len(m.msg.segs) {
		panic(fmt.Sprintf("madeleine: Unpack #%d beyond %d packed segments", m.next, len(m.msg.segs)))
	}
	seg := m.msg.segs[m.next]
	if len(seg) != n {
		panic(fmt.Sprintf("madeleine: Unpack size %d does not match packed segment size %d", n, len(seg)))
	}
	m.next++
	return seg
}

// EndUnpacking implements madapi.InMessage.
func (m *inMessage) EndUnpacking() {
	if m.next != len(m.msg.segs) {
		panic(fmt.Sprintf("madeleine: EndUnpacking with %d of %d segments unpacked",
			m.next, len(m.msg.segs)))
	}
	m.ended = true
}

// Discard implements madapi.InMessage.
func (m *inMessage) Discard() {
	m.next = len(m.msg.segs)
	m.ended = true
}
