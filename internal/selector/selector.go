// Package selector implements the paper's Selector (§4.2): "VLink and
// Circuit automatically choose which protocol to use according to a
// knowledge base of the network topology managed by PadicoTM and
// user-defined preferences."
//
// The primary entry point is Select: given a Request — a node pair plus
// the per-channel QoS the caller wants — and the grid description, it
// returns a Decision: which shared network to use, which method
// (driver/adapter) on it, and which optional protocol adapters
// (compression, security, parallel streams, loss tolerance) to stack —
// compromises only where required (§3.1), e.g. ciphering only on
// insecure links ("if the network is secure, it is useless to cipher
// data", §2.1). QoS is per-request: two channels between the same pair
// may legitimately demand different trade-offs (a latency-sensitive
// control channel next to a striped bulk channel). A deployment-wide
// QoS (the old global Preferences) is just the default the session
// layer applies when a caller does not override it.
package selector

import (
	"fmt"
	"time"

	"padico/internal/topology"
)

// ---------------------------------------------------------------------
// Network weather. The knowledge base of the paper's Selector is a
// *static* topology description; a weather oracle layers *measured*
// conditions on top (NWS-style monitoring: internal/weather). Select
// stays a pure function — the oracle is part of the request, and a nil
// oracle reproduces the static behaviour bit for bit.

// Forecast is the measured/predicted condition of one network between
// two nodes, as published by a weather service.
type Forecast struct {
	// BandwidthBps is the forecast achievable bandwidth (bytes/s).
	BandwidthBps float64
	// Latency is the forecast one-way latency.
	Latency time.Duration
	// Loss is the forecast packet-loss fraction.
	Loss float64
	// Down marks a link in outage (probes failing outright).
	Down bool
}

// Oracle supplies forecasts per (pair, network). Implementations must
// be deterministic reads (no virtual-time side effects): Select calls
// them inline.
type Oracle interface {
	Forecast(a, b topology.NodeID, nw *topology.Network) (Forecast, bool)
}

// DefaultHysteresis is the factor by which an alternative network's
// forecast bandwidth must beat the incumbent's before Select abandons
// the incumbent. Below it, a flapping link would thrash channels
// between networks; QoS.Hysteresis overrides it per channel.
const DefaultHysteresis = 1.5

// CipherPolicy selects when links are wrapped with authentication and
// encryption. The zero value is CipherNever; policies outside the
// declared range are rejected by Select (no silent fallthrough).
type CipherPolicy int

const (
	// CipherNever disables the security wrapper everywhere.
	CipherNever CipherPolicy = iota
	// CipherAuto ciphers insecure networks only (the paper's default:
	// machine-room SANs are physically secure, the wide area is not).
	CipherAuto
	// CipherAlways ciphers every link, secure or not.
	CipherAlways
)

var cipherNames = [...]string{"never", "auto", "always"}

func (c CipherPolicy) String() string {
	if c.Valid() {
		return cipherNames[c]
	}
	return fmt.Sprintf("CipherPolicy(%d)", int(c))
}

// Valid reports whether c is one of the declared policies.
func (c CipherPolicy) Valid() bool { return c >= CipherNever && c <= CipherAlways }

// ParseCipherPolicy converts the configuration-file spelling of a
// policy ("never", "auto", "always") to the typed value.
func ParseCipherPolicy(s string) (CipherPolicy, error) {
	for i, n := range cipherNames {
		if n == s {
			return CipherPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("selector: unknown cipher policy %q", s)
}

// QoS is the per-channel quality-of-service request consulted by the
// knowledge base.
type QoS struct {
	// Streams is the number of parallel sockets per logical link on
	// high-bandwidth high-latency WANs (0 or 1 disables striping).
	Streams int
	// Compress enables AdOC adaptive compression on links slower than
	// CompressBelowBps.
	Compress         bool
	CompressBelowBps float64
	// LossTolerance enables VRP with the given tolerated loss fraction
	// (0 disables; only applies to lossy links).
	LossTolerance float64
	// Cipher selects when to wrap links with authentication/encryption.
	Cipher CipherPolicy
	// LatencySensitive marks channels that refuse adapters trading
	// latency for bandwidth: no stripe reordering, no compression CPU
	// in the critical path.
	LatencySensitive bool
	// Collective marks channels that form edges of a group-communication
	// spanning tree (hierarchical multicast/reduce). Payload crossing
	// such an edge is forwarded verbatim to the next tier, so per-hop
	// compression is pure wasted CPU: the selector never stacks AdOC on
	// a collective edge. Striping and ciphering still apply per link.
	Collective bool
	// Hysteresis overrides DefaultHysteresis for forecast-driven network
	// switches (0 keeps the default; values in (0,1) are invalid — a
	// factor below 1 would prefer a *worse* alternative).
	Hysteresis float64
}

// Preferences is the legacy name for a deployment-wide QoS; the session
// layer uses one as its default and Select treats them identically.
type Preferences = QoS

// Validate rejects malformed QoS values; Select calls it so an invalid
// request fails loudly instead of silently selecting a weaker stack.
func (q QoS) Validate() error {
	if !q.Cipher.Valid() {
		return fmt.Errorf("selector: invalid cipher policy %d", int(q.Cipher))
	}
	if q.Streams < 0 {
		return fmt.Errorf("selector: negative stream count %d", q.Streams)
	}
	if q.LossTolerance < 0 || q.LossTolerance > 1 {
		return fmt.Errorf("selector: loss tolerance %g outside [0,1]", q.LossTolerance)
	}
	if q.CompressBelowBps < 0 {
		return fmt.Errorf("selector: negative compression threshold %g", q.CompressBelowBps)
	}
	if q.Hysteresis != 0 && q.Hysteresis < 1 {
		return fmt.Errorf("selector: hysteresis factor %g below 1", q.Hysteresis)
	}
	return nil
}

// hysteresis returns the effective switch factor.
func (q QoS) hysteresis() float64 {
	if q.Hysteresis == 0 {
		return DefaultHysteresis
	}
	return q.Hysteresis
}

// DefaultQoS mirrors the paper's deployment choices.
func DefaultQoS() QoS {
	return QoS{
		Streams:          4,
		Compress:         true,
		CompressBelowBps: 1e6,
		LossTolerance:    0,
		Cipher:           CipherAuto,
	}
}

// DefaultPreferences is DefaultQoS under the legacy name.
func DefaultPreferences() Preferences { return DefaultQoS() }

// Request is one selection query: a node pair and the QoS the channel
// between them must honour, optionally under measured network weather.
type Request struct {
	Src, Dst topology.NodeID
	QoS      QoS
	// Oracle, when non-nil, overlays measured conditions on the static
	// topology: candidate networks are compared by forecast bandwidth,
	// down links are avoided, and the compression / loss-tolerance
	// wrappers are decided from forecast figures instead of nameplate
	// ones. A nil Oracle (or an oracle with no forecast for the pair)
	// reproduces the static classification exactly.
	Oracle Oracle
	// Current is the incumbent decision when re-evaluating a live
	// channel: Select abandons it only for an alternative whose
	// forecast bandwidth is at least hysteresis() times better (or when
	// the incumbent is down), so flapping links do not thrash.
	Current *Decision
}

// Decision is the selector's verdict for one node pair.
type Decision struct {
	Network *topology.Network
	// Method is the VLink driver / Circuit adapter on that network:
	// "madio" (SAN), "sysio" (TCP), "pstreams", "vrp", "loopback".
	Method string
	// Streams > 1 requests parallel-stream striping (Method pstreams).
	Streams int
	// Compress requests the AdOC wrapper.
	Compress bool
	// Secure requests the authentication/encryption wrapper.
	Secure bool
}

func (d Decision) String() string {
	s := fmt.Sprintf("%s via %s", d.Network.Name, d.Method)
	if d.Streams > 1 {
		s += fmt.Sprintf(" x%d", d.Streams)
	}
	if d.Compress {
		s += "+adoc"
	}
	if d.Secure {
		s += "+gsec"
	}
	return s
}

// sanOrder ranks SAN technologies by preference.
var sanOrder = []topology.NetworkKind{topology.Myrinet, topology.SCI, topology.VIANet}

// PathClass is the coarse classification of the best path between two
// nodes. Consumers that pick a communication paradigm rather than a
// concrete driver (the session layer's substrate choice) branch on it:
// parallel transfers (Circuit/Madeleine) within a SAN, striped
// distributed transfers (VLink/pstreams) across the WAN.
type PathClass int

const (
	// PathLocal: both endpoints are the same node.
	PathLocal PathClass = iota
	// PathSAN: the pair shares a parallel-oriented SAN (same cluster).
	PathSAN
	// PathLAN: the pair shares an Ethernet segment (same site).
	PathLAN
	// PathWAN: the pair is joined by a high-bandwidth high-latency WAN.
	PathWAN
	// PathLossy: only a lossy Internet link joins the pair.
	PathLossy
)

var classNames = map[PathClass]string{
	PathLocal: "local", PathSAN: "san", PathLAN: "lan",
	PathWAN: "wan", PathLossy: "lossy",
}

func (c PathClass) String() string { return classNames[c] }

// Classify reports which class of path connects a and b, following the
// same preference order as Select (SAN over LAN over WAN over lossy
// Internet). It errors when the pair shares no network.
func Classify(g *topology.Grid, a, b topology.NodeID) (PathClass, error) {
	if a == b {
		return PathLocal, nil
	}
	common := g.Common(a, b)
	if len(common) == 0 {
		return 0, fmt.Errorf("selector: no common network between %d and %d", a, b)
	}
	best := PathLossy + 1
	for _, nw := range common {
		var c PathClass
		switch {
		case nw.Kind.Parallel():
			c = PathSAN
		case nw.Kind == topology.Ethernet:
			c = PathLAN
		case nw.Kind == topology.WAN:
			c = PathWAN
		case nw.Kind == topology.Internet:
			c = PathLossy
		default:
			continue
		}
		if c < best {
			best = c
		}
	}
	if best > PathLossy {
		return 0, fmt.Errorf("selector: no classifiable network between %d and %d", a, b)
	}
	return best, nil
}

// Select picks the network, method and wrappers for one request. The
// request's QoS is validated first: an out-of-range CipherPolicy or
// malformed knob is an error, never a silent fallthrough.
func Select(g *topology.Grid, req Request) (Decision, error) {
	if err := req.QoS.Validate(); err != nil {
		return Decision{}, err
	}
	qos := req.QoS
	a, b := req.Src, req.Dst
	if a == b {
		return Decision{Method: "loopback"}, nil
	}
	common := g.Common(a, b)
	if len(common) == 0 {
		return Decision{}, fmt.Errorf("selector: no common network between %d and %d", a, b)
	}
	// 1. Prefer parallel-oriented SANs, in technology order. Machine-room
	// SANs are physically secure; only an explicit always policy
	// ciphers them.
	for _, kind := range sanOrder {
		for _, nw := range common {
			if nw.Kind == kind {
				return Decision{Network: nw, Method: "madio",
					Secure: qos.Cipher == CipherAlways}, nil
			}
		}
	}
	// 2. Prefer LAN over WAN over lossy Internet.
	best := common[0]
	rank := func(nw *topology.Network) int {
		switch nw.Kind {
		case topology.Ethernet:
			return 0
		case topology.WAN:
			return 1
		case topology.Internet:
			return 2
		default:
			return 3
		}
	}
	for _, nw := range common[1:] {
		if rank(nw) < rank(best) {
			best = nw
		}
	}
	// Effective figures: nameplate by default, forecast under weather.
	effBW, effLoss := best.RateBps, best.Loss
	if req.Oracle != nil {
		best, effBW, effLoss = applyWeather(req, common, best)
	}
	d := Decision{Network: best, Method: "sysio", Streams: 1}
	switch best.Kind {
	case topology.WAN:
		// Striping raises bandwidth at the price of per-chunk
		// reordering; a latency-sensitive channel keeps one stream.
		if qos.Streams > 1 && !qos.LatencySensitive {
			d.Method = "pstreams"
			d.Streams = qos.Streams
		}
	case topology.Internet:
		if qos.LossTolerance > 0 && effLoss > 0 {
			d.Method = "vrp"
		}
	}
	if qos.Compress && !qos.LatencySensitive && !qos.Collective {
		d.Compress = effBW < qos.CompressBelowBps
		// Sticky around the boundary when re-evaluating a live channel:
		// a link hovering near the threshold must not thrash the AdOC
		// wrapper on and off — leaving compression requires the
		// effective bandwidth to clear the threshold by the hysteresis
		// factor.
		if !d.Compress && req.Current != nil && req.Current.Network == best &&
			req.Current.Compress && effBW < qos.CompressBelowBps*qos.hysteresis() {
			d.Compress = true
		}
	}
	switch qos.Cipher {
	case CipherAlways:
		d.Secure = true
	case CipherAuto:
		d.Secure = !best.Secure || !g.SameSite(a, b)
	}
	return d, nil
}

// applyWeather overlays measured conditions on the distributed-network
// choice: among the pair's non-parallel candidates it keeps the
// incumbent (req.Current's network, else the static best) unless an
// alternative's forecast bandwidth beats the incumbent's by the QoS's
// hysteresis factor — or the incumbent is in outage, in which case any
// live alternative wins. It returns the chosen network plus the
// effective bandwidth and loss figures the wrapper decisions should
// use. With no forecast for any candidate, the static choice and
// nameplate figures come back untouched (forecast-missing fallback).
func applyWeather(req Request, common []*topology.Network, static *topology.Network) (*topology.Network, float64, float64) {
	type cand struct {
		nw       *topology.Network
		eff      float64 // forecast (or nameplate) bandwidth; 0 when down
		loss     float64
		forecast bool
	}
	var cands []cand
	anyForecast := false
	for _, nw := range common {
		if nw.Kind.Parallel() || nw.Kind == topology.Loopback {
			continue
		}
		c := cand{nw: nw, eff: nw.RateBps, loss: nw.Loss}
		if f, ok := req.Oracle.Forecast(req.Src, req.Dst, nw); ok {
			anyForecast = true
			c.forecast = true
			c.loss = f.Loss
			switch {
			case f.Down:
				c.eff = 0
			case f.BandwidthBps > 0:
				c.eff = f.BandwidthBps
			}
		}
		cands = append(cands, c)
	}
	if !anyForecast || len(cands) == 0 {
		return static, static.RateBps, static.Loss
	}
	// Incumbent: the live channel's network when re-evaluating, else the
	// static classification's pick.
	incNW := static
	if req.Current != nil && req.Current.Network != nil {
		for _, c := range cands {
			if c.nw == req.Current.Network {
				incNW = c.nw
				break
			}
		}
	}
	inc := cands[0]
	for _, c := range cands {
		if c.nw == incNW {
			inc = c
			break
		}
	}
	// Best alternative by forecast bandwidth, declaration order breaking
	// ties (deterministic).
	alt := cands[0]
	for _, c := range cands[1:] {
		if c.eff > alt.eff {
			alt = c
		}
	}
	chosen := inc
	switch {
	case inc.eff <= 0 && alt.eff > 0:
		chosen = alt // incumbent down, any live link beats it
	case alt.eff > inc.eff*req.QoS.hysteresis():
		chosen = alt
	}
	if chosen.eff <= 0 {
		// Everything is down; keep the choice but decide wrappers from
		// nameplate figures so an unusable forecast does not stack
		// pointless adapters on top of a stalled link.
		return chosen.nw, chosen.nw.RateBps, chosen.nw.Loss
	}
	return chosen.nw, chosen.eff, chosen.loss
}

// Choose is Select with the pair spelled as two arguments — the
// pre-session API, kept for callers that carry a deployment-wide
// Preferences around.
func Choose(g *topology.Grid, prefs Preferences, a, b topology.NodeID) (Decision, error) {
	return Select(g, Request{Src: a, Dst: b, QoS: prefs})
}
