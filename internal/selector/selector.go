// Package selector implements the paper's Selector (§4.2): "VLink and
// Circuit automatically choose which protocol to use according to a
// knowledge base of the network topology managed by PadicoTM and
// user-defined preferences."
//
// Given two nodes and the grid description, Choose returns a Decision:
// which shared network to use, which method (driver/adapter) on it, and
// which optional protocol adapters (compression, security, parallel
// streams, loss tolerance) to stack — compromises only where required
// (§3.1), e.g. ciphering only on insecure links ("if the network is
// secure, it is useless to cipher data", §2.1).
package selector

import (
	"fmt"

	"padico/internal/topology"
)

// Preferences are the user-tunable knobs of the knowledge base.
type Preferences struct {
	// Streams is the number of parallel sockets per logical link on
	// high-bandwidth high-latency WANs (1 disables striping).
	Streams int
	// Compress enables AdOC adaptive compression on links slower than
	// CompressBelowBps.
	Compress         bool
	CompressBelowBps float64
	// LossTolerance enables VRP with the given tolerated loss fraction
	// (0 disables; only applies to lossy links).
	LossTolerance float64
	// Cipher selects when to wrap links with authentication/encryption:
	// "never", "auto" (insecure networks only), "always".
	Cipher string
}

// DefaultPreferences mirror the paper's deployment choices.
func DefaultPreferences() Preferences {
	return Preferences{
		Streams:          4,
		Compress:         true,
		CompressBelowBps: 1e6,
		LossTolerance:    0,
		Cipher:           "auto",
	}
}

// Decision is the selector's verdict for one node pair.
type Decision struct {
	Network *topology.Network
	// Method is the VLink driver / Circuit adapter on that network:
	// "madio" (SAN), "sysio" (TCP), "pstreams", "vrp", "loopback".
	Method string
	// Streams > 1 requests parallel-stream striping (Method pstreams).
	Streams int
	// Compress requests the AdOC wrapper.
	Compress bool
	// Secure requests the authentication/encryption wrapper.
	Secure bool
}

func (d Decision) String() string {
	s := fmt.Sprintf("%s via %s", d.Network.Name, d.Method)
	if d.Streams > 1 {
		s += fmt.Sprintf(" x%d", d.Streams)
	}
	if d.Compress {
		s += "+adoc"
	}
	if d.Secure {
		s += "+gsec"
	}
	return s
}

// sanOrder ranks SAN technologies by preference.
var sanOrder = []topology.NetworkKind{topology.Myrinet, topology.SCI, topology.VIANet}

// PathClass is the coarse classification of the best path between two
// nodes. Consumers that pick a communication paradigm rather than a
// concrete driver (internal/datagrid's transfer engine) branch on it:
// parallel transfers (Circuit/Madeleine) within a SAN, striped
// distributed transfers (VLink/pstreams) across the WAN.
type PathClass int

const (
	// PathLocal: both endpoints are the same node.
	PathLocal PathClass = iota
	// PathSAN: the pair shares a parallel-oriented SAN (same cluster).
	PathSAN
	// PathLAN: the pair shares an Ethernet segment (same site).
	PathLAN
	// PathWAN: the pair is joined by a high-bandwidth high-latency WAN.
	PathWAN
	// PathLossy: only a lossy Internet link joins the pair.
	PathLossy
)

var classNames = map[PathClass]string{
	PathLocal: "local", PathSAN: "san", PathLAN: "lan",
	PathWAN: "wan", PathLossy: "lossy",
}

func (c PathClass) String() string { return classNames[c] }

// Classify reports which class of path connects a and b, following the
// same preference order as Choose (SAN over LAN over WAN over lossy
// Internet). It errors when the pair shares no network.
func Classify(g *topology.Grid, a, b topology.NodeID) (PathClass, error) {
	if a == b {
		return PathLocal, nil
	}
	common := g.Common(a, b)
	if len(common) == 0 {
		return 0, fmt.Errorf("selector: no common network between %d and %d", a, b)
	}
	best := PathLossy + 1
	for _, nw := range common {
		var c PathClass
		switch {
		case nw.Kind.Parallel():
			c = PathSAN
		case nw.Kind == topology.Ethernet:
			c = PathLAN
		case nw.Kind == topology.WAN:
			c = PathWAN
		case nw.Kind == topology.Internet:
			c = PathLossy
		default:
			continue
		}
		if c < best {
			best = c
		}
	}
	if best > PathLossy {
		return 0, fmt.Errorf("selector: no classifiable network between %d and %d", a, b)
	}
	return best, nil
}

// Choose picks the network and method for the pair (a, b).
func Choose(g *topology.Grid, prefs Preferences, a, b topology.NodeID) (Decision, error) {
	if a == b {
		return Decision{Method: "loopback"}, nil
	}
	common := g.Common(a, b)
	if len(common) == 0 {
		return Decision{}, fmt.Errorf("selector: no common network between %d and %d", a, b)
	}
	// 1. Prefer parallel-oriented SANs, in technology order. Machine-room
	// SANs are physically secure; only an explicit "always" policy
	// ciphers them.
	for _, kind := range sanOrder {
		for _, nw := range common {
			if nw.Kind == kind {
				return Decision{Network: nw, Method: "madio",
					Secure: prefs.Cipher == "always"}, nil
			}
		}
	}
	// 2. Prefer LAN over WAN over lossy Internet.
	best := common[0]
	rank := func(nw *topology.Network) int {
		switch nw.Kind {
		case topology.Ethernet:
			return 0
		case topology.WAN:
			return 1
		case topology.Internet:
			return 2
		default:
			return 3
		}
	}
	for _, nw := range common[1:] {
		if rank(nw) < rank(best) {
			best = nw
		}
	}
	d := Decision{Network: best, Method: "sysio", Streams: 1}
	switch best.Kind {
	case topology.WAN:
		if prefs.Streams > 1 {
			d.Method = "pstreams"
			d.Streams = prefs.Streams
		}
	case topology.Internet:
		if prefs.LossTolerance > 0 && best.Loss > 0 {
			d.Method = "vrp"
		}
	}
	if prefs.Compress && best.RateBps < prefs.CompressBelowBps {
		d.Compress = true
	}
	switch prefs.Cipher {
	case "always":
		d.Secure = true
	case "auto":
		d.Secure = !best.Secure || !g.SameSite(a, b)
	}
	return d, nil
}
