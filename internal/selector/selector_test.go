package selector

import (
	"testing"
	"time"

	"padico/internal/topology"
)

// testGrid builds: site A {n0,n1} with myrinet+sci+ethernet; site B
// {n2} reachable via WAN; n3 isolated on a lossy internet link with n2.
func testGrid() *topology.Grid {
	g := topology.New()
	myri := g.AddNetwork("myri", topology.Myrinet, true, 250e6, 2*time.Microsecond, 0, 0)
	sci := g.AddNetwork("sci", topology.SCI, true, 180e6, time.Microsecond, 0, 0)
	eth := g.AddNetwork("eth", topology.Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	wan := g.AddNetwork("wan", topology.WAN, false, 12.2e6, 8*time.Millisecond, 0, 1500)
	inet := g.AddNetwork("inet", topology.Internet, false, 600e3, 25*time.Millisecond, 0.05, 1500)

	n0 := g.AddNode("n0", "A")
	n1 := g.AddNode("n1", "A")
	n2 := g.AddNode("n2", "B")
	n3 := g.AddNode("n3", "C")
	for _, n := range []*topology.Node{n0, n1} {
		g.Attach(n, myri)
		g.Attach(n, sci)
		g.Attach(n, eth)
		g.Attach(n, wan)
	}
	g.Attach(n2, wan)
	g.Attach(n2, inet)
	g.Attach(n3, inet)
	return g
}

func TestSANPreferenceOrder(t *testing.T) {
	g := testGrid()
	d, err := Choose(g, DefaultPreferences(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Network.Kind != topology.Myrinet || d.Method != "madio" {
		t.Fatalf("want Myrinet/madio, got %v", d)
	}
	if d.Secure || d.Compress {
		t.Fatalf("no wrappers expected on a secure fast SAN: %v", d)
	}
}

func TestWANGetsStreamsAndCipher(t *testing.T) {
	g := testGrid()
	d, err := Choose(g, DefaultPreferences(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "pstreams" || d.Streams != 4 || !d.Secure {
		t.Fatalf("want pstreams x4 + gsec, got %v", d)
	}
}

func TestLossyLinkPolicies(t *testing.T) {
	g := testGrid()
	prefs := DefaultPreferences()
	d, _ := Choose(g, prefs, 2, 3)
	if d.Method != "sysio" || !d.Compress || !d.Secure {
		t.Fatalf("default lossy decision = %v", d)
	}
	prefs.LossTolerance = 0.1
	d, _ = Choose(g, prefs, 2, 3)
	if d.Method != "vrp" {
		t.Fatalf("loss-tolerant decision = %v", d)
	}
	prefs.Cipher = CipherNever
	prefs.Compress = false
	d, _ = Choose(g, prefs, 2, 3)
	if d.Secure || d.Compress {
		t.Fatalf("disabled wrappers still chosen: %v", d)
	}
}

func TestCipherAlways(t *testing.T) {
	g := testGrid()
	prefs := DefaultPreferences()
	prefs.Cipher = CipherAlways
	d, _ := Choose(g, prefs, 0, 1)
	if !d.Secure {
		t.Fatal("cipher=always ignored on SAN")
	}
}

func TestNoCommonNetwork(t *testing.T) {
	g := testGrid()
	if _, err := Choose(g, DefaultPreferences(), 0, 3); err == nil {
		t.Fatal("disconnected pair got a decision")
	}
}

func TestSelfIsLoopback(t *testing.T) {
	g := testGrid()
	d, err := Choose(g, DefaultPreferences(), 1, 1)
	if err != nil || d.Method != "loopback" {
		t.Fatalf("self decision = %v, %v", d, err)
	}
}

func TestDecisionString(t *testing.T) {
	g := testGrid()
	d, _ := Choose(g, DefaultPreferences(), 0, 2)
	s := d.String()
	if s == "" {
		t.Fatal("empty decision string")
	}
	for _, want := range []string{"pstreams", "x4", "+gsec"} {
		if !contains(s, want) {
			t.Fatalf("decision string %q missing %q", s, want)
		}
	}
}

func TestClassify(t *testing.T) {
	g := testGrid()
	cases := []struct {
		a, b topology.NodeID
		want PathClass
	}{
		{0, 0, PathLocal}, // same node
		{1, 1, PathLocal}, // same node, non-zero id
		{0, 1, PathSAN},   // same-cluster SAN (myrinet beats sci and eth)
		{0, 2, PathWAN},   // cross-cluster WAN
		{2, 0, PathWAN},   // classification is symmetric
		{2, 3, PathLossy}, // lossy internet only
	}
	for _, c := range cases {
		got, err := Classify(g, c.a, c.b)
		if err != nil {
			t.Fatalf("Classify(%d,%d): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := Classify(g, 0, 3); err == nil {
		t.Fatal("disconnected pair classified")
	}
}

// TestClassifyLANPreferredOverWAN pins the same-site non-SAN case: two
// nodes sharing ethernet and wan classify as LAN.
func TestClassifyLANPreferredOverWAN(t *testing.T) {
	g := topology.New()
	eth := g.AddNetwork("eth", topology.Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	wan := g.AddNetwork("wan", topology.WAN, false, 12.2e6, 8*time.Millisecond, 0, 1500)
	a := g.AddNode("a", "A")
	b := g.AddNode("b", "A")
	for _, n := range []*topology.Node{a, b} {
		g.Attach(n, eth)
		g.Attach(n, wan)
	}
	got, err := Classify(g, a.ID, b.ID)
	if err != nil || got != PathLAN {
		t.Fatalf("Classify = %v, %v; want lan", got, err)
	}
	if got.String() != "lan" {
		t.Fatalf("String() = %q", got.String())
	}
}

// TestClassifyAgreesWithChoose ensures the paradigm classification and
// the concrete driver decision never diverge on the canonical cases
// datagrid relies on.
func TestClassifyAgreesWithChoose(t *testing.T) {
	g := testGrid()
	pairs := [][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}, {1, 1}}
	for _, pr := range pairs {
		cls, err := Classify(g, pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Choose(g, DefaultPreferences(), pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		switch cls {
		case PathSAN:
			if dec.Method != "madio" {
				t.Errorf("pair %v: class san but method %q", pr, dec.Method)
			}
		case PathLocal:
			if dec.Method != "loopback" {
				t.Errorf("pair %v: class local but method %q", pr, dec.Method)
			}
		case PathWAN:
			if dec.Method != "pstreams" && dec.Method != "sysio" {
				t.Errorf("pair %v: class wan but method %q", pr, dec.Method)
			}
		}
	}
}

// TestSelectMatchesChoose pins the new per-request API against the
// legacy two-argument spelling: same knowledge base, same verdicts.
func TestSelectMatchesChoose(t *testing.T) {
	g := testGrid()
	for _, pr := range [][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}, {1, 1}} {
		want, err1 := Choose(g, DefaultPreferences(), pr[0], pr[1])
		got, err2 := Select(g, Request{Src: pr[0], Dst: pr[1], QoS: DefaultQoS()})
		if (err1 == nil) != (err2 == nil) || got != want {
			t.Fatalf("pair %v: Select = %v (%v), Choose = %v (%v)", pr, got, err2, want, err1)
		}
	}
}

// TestSelectValidatesQoS: malformed QoS is an error at selection time,
// never a silent fallthrough to a weaker stack.
func TestSelectValidatesQoS(t *testing.T) {
	g := testGrid()
	bad := []QoS{
		func() QoS { q := DefaultQoS(); q.Cipher = CipherPolicy(7); return q }(),
		func() QoS { q := DefaultQoS(); q.Cipher = CipherPolicy(-1); return q }(),
		func() QoS { q := DefaultQoS(); q.Streams = -2; return q }(),
		func() QoS { q := DefaultQoS(); q.LossTolerance = 1.5; return q }(),
		func() QoS { q := DefaultQoS(); q.CompressBelowBps = -1; return q }(),
	}
	for i, q := range bad {
		if _, err := Select(g, Request{Src: 0, Dst: 2, QoS: q}); err == nil {
			t.Errorf("case %d: invalid QoS %+v selected without error", i, q)
		}
	}
	if _, err := Select(g, Request{Src: 0, Dst: 2, QoS: DefaultQoS()}); err != nil {
		t.Fatalf("valid QoS rejected: %v", err)
	}
}

func TestCipherPolicyStringAndParse(t *testing.T) {
	for _, c := range []CipherPolicy{CipherNever, CipherAuto, CipherAlways} {
		got, err := ParseCipherPolicy(c.String())
		if err != nil || got != c {
			t.Fatalf("round-trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseCipherPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy parsed")
	}
	if s := CipherPolicy(9).String(); s != "CipherPolicy(9)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

// TestLatencySensitiveSkipsBandwidthAdapters: a latency-sensitive
// channel refuses striping (reordering) and compression (CPU in the
// critical path) but keeps security, which is a correctness property.
func TestLatencySensitiveSkipsBandwidthAdapters(t *testing.T) {
	g := testGrid()
	q := DefaultQoS()
	q.LatencySensitive = true
	d, err := Select(g, Request{Src: 0, Dst: 2, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "sysio" || d.Streams != 1 {
		t.Fatalf("latency-sensitive WAN channel still striped: %v", d)
	}
	if !d.Secure {
		t.Fatalf("latency sensitivity must not drop ciphering: %v", d)
	}
	d, err = Select(g, Request{Src: 2, Dst: 3, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Compress {
		t.Fatalf("latency-sensitive slow link still compressed: %v", d)
	}
}

// TestCollectiveEdgeSkipsCompression pins the collective QoS hint: a
// spanning-tree edge forwards its payload verbatim to the next tier, so
// the selector must not stack AdOC on it even on a link slow enough to
// otherwise warrant compression — while keeping striping and ciphering.
func TestCollectiveEdgeSkipsCompression(t *testing.T) {
	g := testGrid()
	q := DefaultQoS()
	q.CompressBelowBps = 1e9 // every link qualifies for AdOC
	q.Collective = true
	d, err := Select(g, Request{Src: 2, Dst: 3, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Compress {
		t.Fatalf("collective edge on a slow link still compressed: %v", d)
	}
	d, err = Select(g, Request{Src: 0, Dst: 2, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "pstreams" || d.Streams != 4 || !d.Secure {
		t.Fatalf("collective hint must not drop striping/ciphering: %v", d)
	}
	if d.Compress {
		t.Fatalf("collective WAN edge still compressed: %v", d)
	}
}

// ---------------------------------------------------------------------
// Weather-aware selection.

// fakeOracle forecasts by network name, for every pair.
type fakeOracle map[string]Forecast

func (o fakeOracle) Forecast(a, b topology.NodeID, nw *topology.Network) (Forecast, bool) {
	f, ok := o[nw.Name]
	return f, ok
}

// weatherGrid builds two cross-site nodes joined by a primary WAN
// (nameplate 12.2 MB/s, declared first) and a slower backup WAN (5 MB/s).
func weatherGrid() *topology.Grid {
	g := topology.New()
	primary := g.AddNetwork("primary", topology.WAN, false, 12.2e6, 8*time.Millisecond, 0, 1500)
	backup := g.AddNetwork("backup", topology.WAN, false, 5e6, 12*time.Millisecond, 0, 1500)
	a := g.AddNode("a", "A")
	b := g.AddNode("b", "B")
	for _, n := range []*topology.Node{a, b} {
		g.Attach(n, primary)
		g.Attach(n, backup)
	}
	return g
}

// TestOracleMissingForecastFallsBackToStatic: an oracle with no
// forecast for the pair must reproduce the static decision exactly.
func TestOracleMissingForecastFallsBackToStatic(t *testing.T) {
	g := testGrid()
	for _, pr := range [][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}, {1, 1}} {
		want, err1 := Select(g, Request{Src: pr[0], Dst: pr[1], QoS: DefaultQoS()})
		got, err2 := Select(g, Request{Src: pr[0], Dst: pr[1], QoS: DefaultQoS(), Oracle: fakeOracle{}})
		if (err1 == nil) != (err2 == nil) || got != want {
			t.Fatalf("pair %v: with empty oracle %v (%v), static %v (%v)", pr, got, err2, want, err1)
		}
	}
}

// TestOracleHysteresisBoundaries pins the switch threshold: the backup
// network wins only when its forecast bandwidth strictly exceeds the
// incumbent's times the hysteresis factor.
func TestOracleHysteresisBoundaries(t *testing.T) {
	g := weatherGrid()
	q := DefaultQoS() // hysteresis defaults to 1.5
	sel := func(o Oracle, cur *Decision) Decision {
		d, err := Select(g, Request{Src: 0, Dst: 1, QoS: q, Oracle: o, Current: cur})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Healthy primary: stays primary whatever the backup nameplate says.
	d := sel(fakeOracle{"primary": {BandwidthBps: 12e6}, "backup": {BandwidthBps: 5e6}}, nil)
	if d.Network.Name != "primary" {
		t.Fatalf("healthy primary abandoned: %v", d)
	}
	// Degraded primary, backup exactly at the boundary (eff == inc*1.5):
	// not strictly above, so the incumbent survives (no thrash at the
	// threshold itself).
	d = sel(fakeOracle{"primary": {BandwidthBps: 2e6}, "backup": {BandwidthBps: 3e6}}, nil)
	if d.Network.Name != "primary" {
		t.Fatalf("boundary case switched: %v", d)
	}
	// Just above the boundary: switch.
	d = sel(fakeOracle{"primary": {BandwidthBps: 2e6}, "backup": {BandwidthBps: 3e6 + 1}}, nil)
	if d.Network.Name != "backup" {
		t.Fatalf("degraded primary kept: %v", d)
	}
	// Hysteresis respects the incumbent from Current: once on backup, a
	// recovering primary must beat backup*1.5 to win the channel back.
	cur := Decision{Network: g.Networks()[1], Method: "pstreams", Streams: 4}
	d = sel(fakeOracle{"primary": {BandwidthBps: 7e6}, "backup": {BandwidthBps: 5e6}}, &cur)
	if d.Network.Name != "backup" {
		t.Fatalf("flapped back below hysteresis: %v", d)
	}
	d = sel(fakeOracle{"primary": {BandwidthBps: 7.6e6}, "backup": {BandwidthBps: 5e6}}, &cur)
	if d.Network.Name != "primary" {
		t.Fatalf("recovered primary not retaken: %v", d)
	}
}

// TestOracleDownAndPartition: an incumbent in outage loses to any live
// alternative regardless of hysteresis; with every candidate down the
// static choice stands (nothing better exists) and nameplate figures
// drive the wrappers.
func TestOracleDownAndPartition(t *testing.T) {
	g := weatherGrid()
	q := DefaultQoS()
	d, err := Select(g, Request{Src: 0, Dst: 1, QoS: q,
		Oracle: fakeOracle{"primary": {Down: true}, "backup": {BandwidthBps: 1e5}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Network.Name != "backup" {
		t.Fatalf("down incumbent kept: %v", d)
	}
	d, err = Select(g, Request{Src: 0, Dst: 1, QoS: q,
		Oracle: fakeOracle{"primary": {Down: true}, "backup": {Down: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Network.Name != "primary" {
		t.Fatalf("full partition should keep the static choice: %v", d)
	}
	if d.Compress {
		t.Fatalf("partition decision stacked wrappers from zeroed forecasts: %v", d)
	}
}

// TestOracleDrivesCompressionAndLoss: forecast bandwidth (not the
// nameplate rate) decides AdOC, and forecast loss decides VRP.
func TestOracleDrivesCompressionAndLoss(t *testing.T) {
	g := testGrid()
	q := DefaultQoS() // CompressBelowBps = 1e6
	// Degraded WAN below the compression threshold: AdOC turns on even
	// though the nameplate 12.2 MB/s would never qualify.
	d, err := Select(g, Request{Src: 0, Dst: 2, QoS: q,
		Oracle: fakeOracle{"wan": {BandwidthBps: 0.8e6}}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Compress {
		t.Fatalf("degraded WAN not compressed: %v", d)
	}
	// Lossy link measured clean: VRP not selected despite tolerance.
	q.LossTolerance = 0.1
	d, err = Select(g, Request{Src: 2, Dst: 3, QoS: q,
		Oracle: fakeOracle{"inet": {BandwidthBps: 600e3, Loss: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "sysio" {
		t.Fatalf("clean forecast still picked vrp: %v", d)
	}
	// Measured loss present: VRP selected.
	d, err = Select(g, Request{Src: 2, Dst: 3, QoS: q,
		Oracle: fakeOracle{"inet": {BandwidthBps: 400e3, Loss: 0.08}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "vrp" {
		t.Fatalf("measured loss ignored: %v", d)
	}
}

// TestOracleInvalidQoSStillErrors: weather never rescues a malformed
// request, and a sub-1 hysteresis factor is malformed.
func TestOracleInvalidQoSStillErrors(t *testing.T) {
	g := weatherGrid()
	o := fakeOracle{"primary": {BandwidthBps: 1e6}}
	q := DefaultQoS()
	q.Cipher = CipherPolicy(9)
	if _, err := Select(g, Request{Src: 0, Dst: 1, QoS: q, Oracle: o}); err == nil {
		t.Fatal("invalid cipher policy selected under weather")
	}
	q = DefaultQoS()
	q.Hysteresis = 0.5
	if _, err := Select(g, Request{Src: 0, Dst: 1, QoS: q, Oracle: o}); err == nil {
		t.Fatal("hysteresis below 1 accepted")
	}
	q.Hysteresis = 1.0
	if _, err := Select(g, Request{Src: 0, Dst: 1, QoS: q, Oracle: o}); err != nil {
		t.Fatal("hysteresis of exactly 1 rejected")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
