package selector

import (
	"testing"
	"time"

	"padico/internal/topology"
)

// testGrid builds: site A {n0,n1} with myrinet+sci+ethernet; site B
// {n2} reachable via WAN; n3 isolated on a lossy internet link with n2.
func testGrid() *topology.Grid {
	g := topology.New()
	myri := g.AddNetwork("myri", topology.Myrinet, true, 250e6, 2*time.Microsecond, 0, 0)
	sci := g.AddNetwork("sci", topology.SCI, true, 180e6, time.Microsecond, 0, 0)
	eth := g.AddNetwork("eth", topology.Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	wan := g.AddNetwork("wan", topology.WAN, false, 12.2e6, 8*time.Millisecond, 0, 1500)
	inet := g.AddNetwork("inet", topology.Internet, false, 600e3, 25*time.Millisecond, 0.05, 1500)

	n0 := g.AddNode("n0", "A")
	n1 := g.AddNode("n1", "A")
	n2 := g.AddNode("n2", "B")
	n3 := g.AddNode("n3", "C")
	for _, n := range []*topology.Node{n0, n1} {
		g.Attach(n, myri)
		g.Attach(n, sci)
		g.Attach(n, eth)
		g.Attach(n, wan)
	}
	g.Attach(n2, wan)
	g.Attach(n2, inet)
	g.Attach(n3, inet)
	return g
}

func TestSANPreferenceOrder(t *testing.T) {
	g := testGrid()
	d, err := Choose(g, DefaultPreferences(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Network.Kind != topology.Myrinet || d.Method != "madio" {
		t.Fatalf("want Myrinet/madio, got %v", d)
	}
	if d.Secure || d.Compress {
		t.Fatalf("no wrappers expected on a secure fast SAN: %v", d)
	}
}

func TestWANGetsStreamsAndCipher(t *testing.T) {
	g := testGrid()
	d, err := Choose(g, DefaultPreferences(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "pstreams" || d.Streams != 4 || !d.Secure {
		t.Fatalf("want pstreams x4 + gsec, got %v", d)
	}
}

func TestLossyLinkPolicies(t *testing.T) {
	g := testGrid()
	prefs := DefaultPreferences()
	d, _ := Choose(g, prefs, 2, 3)
	if d.Method != "sysio" || !d.Compress || !d.Secure {
		t.Fatalf("default lossy decision = %v", d)
	}
	prefs.LossTolerance = 0.1
	d, _ = Choose(g, prefs, 2, 3)
	if d.Method != "vrp" {
		t.Fatalf("loss-tolerant decision = %v", d)
	}
	prefs.Cipher = CipherNever
	prefs.Compress = false
	d, _ = Choose(g, prefs, 2, 3)
	if d.Secure || d.Compress {
		t.Fatalf("disabled wrappers still chosen: %v", d)
	}
}

func TestCipherAlways(t *testing.T) {
	g := testGrid()
	prefs := DefaultPreferences()
	prefs.Cipher = CipherAlways
	d, _ := Choose(g, prefs, 0, 1)
	if !d.Secure {
		t.Fatal("cipher=always ignored on SAN")
	}
}

func TestNoCommonNetwork(t *testing.T) {
	g := testGrid()
	if _, err := Choose(g, DefaultPreferences(), 0, 3); err == nil {
		t.Fatal("disconnected pair got a decision")
	}
}

func TestSelfIsLoopback(t *testing.T) {
	g := testGrid()
	d, err := Choose(g, DefaultPreferences(), 1, 1)
	if err != nil || d.Method != "loopback" {
		t.Fatalf("self decision = %v, %v", d, err)
	}
}

func TestDecisionString(t *testing.T) {
	g := testGrid()
	d, _ := Choose(g, DefaultPreferences(), 0, 2)
	s := d.String()
	if s == "" {
		t.Fatal("empty decision string")
	}
	for _, want := range []string{"pstreams", "x4", "+gsec"} {
		if !contains(s, want) {
			t.Fatalf("decision string %q missing %q", s, want)
		}
	}
}

func TestClassify(t *testing.T) {
	g := testGrid()
	cases := []struct {
		a, b topology.NodeID
		want PathClass
	}{
		{0, 0, PathLocal}, // same node
		{1, 1, PathLocal}, // same node, non-zero id
		{0, 1, PathSAN},   // same-cluster SAN (myrinet beats sci and eth)
		{0, 2, PathWAN},   // cross-cluster WAN
		{2, 0, PathWAN},   // classification is symmetric
		{2, 3, PathLossy}, // lossy internet only
	}
	for _, c := range cases {
		got, err := Classify(g, c.a, c.b)
		if err != nil {
			t.Fatalf("Classify(%d,%d): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := Classify(g, 0, 3); err == nil {
		t.Fatal("disconnected pair classified")
	}
}

// TestClassifyLANPreferredOverWAN pins the same-site non-SAN case: two
// nodes sharing ethernet and wan classify as LAN.
func TestClassifyLANPreferredOverWAN(t *testing.T) {
	g := topology.New()
	eth := g.AddNetwork("eth", topology.Ethernet, true, 12.5e6, 30*time.Microsecond, 0, 1500)
	wan := g.AddNetwork("wan", topology.WAN, false, 12.2e6, 8*time.Millisecond, 0, 1500)
	a := g.AddNode("a", "A")
	b := g.AddNode("b", "A")
	for _, n := range []*topology.Node{a, b} {
		g.Attach(n, eth)
		g.Attach(n, wan)
	}
	got, err := Classify(g, a.ID, b.ID)
	if err != nil || got != PathLAN {
		t.Fatalf("Classify = %v, %v; want lan", got, err)
	}
	if got.String() != "lan" {
		t.Fatalf("String() = %q", got.String())
	}
}

// TestClassifyAgreesWithChoose ensures the paradigm classification and
// the concrete driver decision never diverge on the canonical cases
// datagrid relies on.
func TestClassifyAgreesWithChoose(t *testing.T) {
	g := testGrid()
	pairs := [][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}, {1, 1}}
	for _, pr := range pairs {
		cls, err := Classify(g, pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Choose(g, DefaultPreferences(), pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		switch cls {
		case PathSAN:
			if dec.Method != "madio" {
				t.Errorf("pair %v: class san but method %q", pr, dec.Method)
			}
		case PathLocal:
			if dec.Method != "loopback" {
				t.Errorf("pair %v: class local but method %q", pr, dec.Method)
			}
		case PathWAN:
			if dec.Method != "pstreams" && dec.Method != "sysio" {
				t.Errorf("pair %v: class wan but method %q", pr, dec.Method)
			}
		}
	}
}

// TestSelectMatchesChoose pins the new per-request API against the
// legacy two-argument spelling: same knowledge base, same verdicts.
func TestSelectMatchesChoose(t *testing.T) {
	g := testGrid()
	for _, pr := range [][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}, {1, 1}} {
		want, err1 := Choose(g, DefaultPreferences(), pr[0], pr[1])
		got, err2 := Select(g, Request{Src: pr[0], Dst: pr[1], QoS: DefaultQoS()})
		if (err1 == nil) != (err2 == nil) || got != want {
			t.Fatalf("pair %v: Select = %v (%v), Choose = %v (%v)", pr, got, err2, want, err1)
		}
	}
}

// TestSelectValidatesQoS: malformed QoS is an error at selection time,
// never a silent fallthrough to a weaker stack.
func TestSelectValidatesQoS(t *testing.T) {
	g := testGrid()
	bad := []QoS{
		func() QoS { q := DefaultQoS(); q.Cipher = CipherPolicy(7); return q }(),
		func() QoS { q := DefaultQoS(); q.Cipher = CipherPolicy(-1); return q }(),
		func() QoS { q := DefaultQoS(); q.Streams = -2; return q }(),
		func() QoS { q := DefaultQoS(); q.LossTolerance = 1.5; return q }(),
		func() QoS { q := DefaultQoS(); q.CompressBelowBps = -1; return q }(),
	}
	for i, q := range bad {
		if _, err := Select(g, Request{Src: 0, Dst: 2, QoS: q}); err == nil {
			t.Errorf("case %d: invalid QoS %+v selected without error", i, q)
		}
	}
	if _, err := Select(g, Request{Src: 0, Dst: 2, QoS: DefaultQoS()}); err != nil {
		t.Fatalf("valid QoS rejected: %v", err)
	}
}

func TestCipherPolicyStringAndParse(t *testing.T) {
	for _, c := range []CipherPolicy{CipherNever, CipherAuto, CipherAlways} {
		got, err := ParseCipherPolicy(c.String())
		if err != nil || got != c {
			t.Fatalf("round-trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseCipherPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy parsed")
	}
	if s := CipherPolicy(9).String(); s != "CipherPolicy(9)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

// TestLatencySensitiveSkipsBandwidthAdapters: a latency-sensitive
// channel refuses striping (reordering) and compression (CPU in the
// critical path) but keeps security, which is a correctness property.
func TestLatencySensitiveSkipsBandwidthAdapters(t *testing.T) {
	g := testGrid()
	q := DefaultQoS()
	q.LatencySensitive = true
	d, err := Select(g, Request{Src: 0, Dst: 2, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "sysio" || d.Streams != 1 {
		t.Fatalf("latency-sensitive WAN channel still striped: %v", d)
	}
	if !d.Secure {
		t.Fatalf("latency sensitivity must not drop ciphering: %v", d)
	}
	d, err = Select(g, Request{Src: 2, Dst: 3, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Compress {
		t.Fatalf("latency-sensitive slow link still compressed: %v", d)
	}
}

// TestCollectiveEdgeSkipsCompression pins the collective QoS hint: a
// spanning-tree edge forwards its payload verbatim to the next tier, so
// the selector must not stack AdOC on it even on a link slow enough to
// otherwise warrant compression — while keeping striping and ciphering.
func TestCollectiveEdgeSkipsCompression(t *testing.T) {
	g := testGrid()
	q := DefaultQoS()
	q.CompressBelowBps = 1e9 // every link qualifies for AdOC
	q.Collective = true
	d, err := Select(g, Request{Src: 2, Dst: 3, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Compress {
		t.Fatalf("collective edge on a slow link still compressed: %v", d)
	}
	d, err = Select(g, Request{Src: 0, Dst: 2, QoS: q})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "pstreams" || d.Streams != 4 || !d.Secure {
		t.Fatalf("collective hint must not drop striping/ciphering: %v", d)
	}
	if d.Compress {
		t.Fatalf("collective WAN edge still compressed: %v", d)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
