package grid_test

import (
	"bytes"
	"testing"

	"padico/internal/grid"
	"padico/internal/selector"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// TestMultiSiteTopology pins the star-of-clusters shape: each site has
// its own SAN + LAN, every cross-site pair is WAN-class, and the site
// list is the declared one.
func TestMultiSiteTopology(t *testing.T) {
	g := grid.MultiSite(3, 2)
	if n := len(g.Topo.Nodes()); n != 6 {
		t.Fatalf("nodes = %d, want 6", n)
	}
	sites := g.Topo.Sites()
	want := []string{"site0", "site1", "site2"}
	if len(sites) != len(want) {
		t.Fatalf("sites = %v", sites)
	}
	for i, s := range want {
		if sites[i] != s {
			t.Fatalf("sites = %v, want %v", sites, want)
		}
	}
	for a := topology.NodeID(0); a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			cls, err := selector.Classify(g.Topo, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if g.Topo.SameSite(a, b) && cls != selector.PathSAN {
				t.Fatalf("same-site pair %d-%d classified %v", a, b, cls)
			}
			if !g.Topo.SameSite(a, b) && cls != selector.PathWAN {
				t.Fatalf("cross-site pair %d-%d classified %v", a, b, cls)
			}
		}
	}
}

// TestMultiSiteSessionsSpanSites drives one SAN and one WAN session on
// a three-site testbed: the selector must pick the parallel paradigm
// inside a cluster and striped streams across the star.
func TestMultiSiteSessionsSpanSites(t *testing.T) {
	g := grid.MultiSite(3, 2)
	if err := g.K.Run(func(p *vtime.Proc) {
		san, err := g.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if san.Info().Class != selector.PathSAN {
			t.Fatalf("intra-site session class = %v", san.Info().Class)
		}
		wan, err := g.Open(p, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if wan.Info().Class != selector.PathWAN || wan.Info().Decision.Method != "pstreams" {
			t.Fatalf("cross-site session = %+v", wan.Info())
		}
		payload := []byte("across the star")
		done := vtime.NewWaitGroup("recv")
		done.Add(1)
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, len(payload))
			if _, err := wan.Remote().ReadFull(q, buf); err != nil {
				t.Error(err)
			}
			if !bytes.Equal(buf, payload) {
				t.Errorf("got %q", buf)
			}
		})
		if _, err := wan.Write(p, payload); err != nil {
			t.Fatal(err)
		}
		done.Wait(p)
		san.Close()
		wan.Close()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiSiteSingleSiteDegenerates: one site is just a cluster — no
// cross-site pairs, the WAN stays unused.
func TestMultiSiteSingleSiteDegenerates(t *testing.T) {
	g := grid.MultiSite(1, 3)
	if n := len(g.Topo.Sites()); n != 1 {
		t.Fatalf("sites = %d", n)
	}
	cls, err := selector.Classify(g.Topo, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cls != selector.PathSAN {
		t.Fatalf("class = %v, want san", cls)
	}
}

// TestMultiSiteRejectsEmptyShape pins the constructor's validation.
func TestMultiSiteRejectsEmptyShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MultiSite(0, 2) did not panic")
		}
	}()
	grid.MultiSite(0, 2)
}
