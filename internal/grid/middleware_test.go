package grid_test

import (
	"fmt"
	"testing"
	"time"

	"padico/internal/dsm"
	"padico/internal/grid"
	"padico/internal/hla"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/personality"
	"padico/internal/pvm"
	"padico/internal/rmi"
	"padico/internal/soapx"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// mpiPair builds a 2-node cluster with MPI over vmad/Circuit on both.
func mpiPair(t *testing.T) (*grid.Grid, func(p *vtime.Proc) (*mpi.Comm, *mpi.Comm)) {
	g := grid.Cluster(2)
	return g, func(p *vtime.Proc) (*mpi.Comm, *mpi.Comm) {
		circs, err := g.NewCircuits(p, "mpi", []topology.NodeID{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		return mpi.New(g.K, personality.NewVMad(g.K, circs[0])),
			mpi.New(g.K, personality.NewVMad(g.K, circs[1]))
	}
}

// Table 1: MPICH one-way latency 12.06 µs over Myrinet.
func TestMPILatencyMatchesTable1(t *testing.T) {
	g, build := mpiPair(t)
	var oneway time.Duration
	if err := g.K.Run(func(p *vtime.Proc) {
		c0, c1 := build(p)
		g.K.GoDaemon("echo", func(q *vtime.Proc) {
			buf := make([]byte, 1)
			for {
				st := c1.Recv(q, mpi.AnySource, 7, buf)
				c1.Send(q, st.Source, 8, buf[:st.Count])
			}
		})
		buf := make([]byte, 1)
		const rounds = 200
		start := p.Now()
		for i := 0; i < rounds; i++ {
			c0.Send(p, 1, 7, buf)
			c0.Recv(p, 1, 8, buf)
		}
		oneway = p.Now().Sub(start) / (2 * rounds)
	}); err != nil {
		t.Fatal(err)
	}
	want := 12060 * time.Nanosecond
	if oneway < want-2*time.Microsecond || oneway > want+2*time.Microsecond {
		t.Fatalf("MPI one-way = %v, want ~%v (Table 1)", oneway, want)
	}
}

func TestMPICollectivesAndWildcards(t *testing.T) {
	g := grid.Cluster(4)
	if err := g.K.Run(func(p *vtime.Proc) {
		circs, err := g.NewCircuits(p, "mpi4", []topology.NodeID{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		comms := make([]*mpi.Comm, 4)
		for r := range comms {
			comms[r] = mpi.New(g.K, personality.NewVMad(g.K, circs[r]))
		}
		wg := vtime.NewWaitGroup("ranks")
		run := func(r int, q *vtime.Proc) {
			defer wg.Done()
			c := comms[r]
			c.Barrier(q)
			got := c.Bcast(q, 0, pick(r == 0, []byte("payload"), nil))
			if string(got) != "payload" {
				t.Errorf("rank %d bcast got %q", r, got)
			}
			sum := c.Allreduce(q, []float64{float64(r)}, mpi.Sum)
			if sum[0] != 6 {
				t.Errorf("rank %d allreduce = %v", r, sum)
			}
			parts := c.Gather(q, 0, []byte{byte('a' + r)})
			if r == 0 {
				joined := ""
				for _, pt := range parts {
					joined += string(pt)
				}
				if joined != "abcd" {
					t.Errorf("gather = %q", joined)
				}
			}
			all := c.Allgather(q, []byte{byte('0' + r)})
			if len(all) != 4 || string(all[3]) != "3" {
				t.Errorf("rank %d allgather = %v", r, all)
			}
			mine := c.Alltoall(q, [][]byte{{byte(r)}, {byte(r)}, {byte(r)}, {byte(r)}})
			for src, m := range mine {
				if len(m) != 1 || m[0] != byte(src) {
					t.Errorf("rank %d alltoall[%d] = %v", r, src, m)
				}
			}
			c.Barrier(q)
		}
		for r := 1; r < 4; r++ {
			r := r
			wg.Add(1)
			g.K.Go(fmt.Sprintf("rank%d", r), func(q *vtime.Proc) { run(r, q) })
		}
		wg.Add(1)
		run(0, p)
		wg.Wait(p)

		// Wildcard receive.
		done := vtime.NewWaitGroup("wc")
		done.Add(1)
		g.K.Go("wc", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 16)
			st := comms[3].Recv(q, mpi.AnySource, mpi.AnyTag, buf)
			if st.Source != 1 || st.Tag != 42 || string(buf[:st.Count]) != "wild" {
				t.Errorf("wildcard recv = %+v %q", st, buf[:st.Count])
			}
		})
		comms[1].Send(p, 3, 42, []byte("wild"))
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

func pick(cond bool, a, b []byte) []byte {
	if cond {
		return a
	}
	return b
}

// Table 1 / Fig. 3: omniORB4 ≈ 18.4 µs; Mico's copies crush bandwidth.
func TestORBProfilesMatchPaper(t *testing.T) {
	lat := func(profile orb.Profile) time.Duration {
		g := grid.Cluster(2)
		var oneway time.Duration
		if err := g.K.Run(func(p *vtime.Proc) {
			server := orb.New(g.K, g.RT[1].VLink, profile, "madio", 5000)
			server.RegisterServant("o", orb.Servant{
				"echo": func(q *vtime.Proc, args *orb.Decoder, reply *orb.Encoder) error {
					reply.PutBytes(args.Bytes())
					return nil
				},
			})
			if err := server.Activate(); err != nil {
				t.Fatal(err)
			}
			client := orb.New(g.K, g.RT[0].VLink, profile, "madio", 5001)
			ref, err := client.Resolve(server.IOR("o"))
			if err != nil {
				t.Fatal(err)
			}
			args := orb.NewEncoder()
			args.PutBytes([]byte{1})
			ref.Invoke(p, "echo", args) // warm-up: connection setup
			const rounds = 100
			start := p.Now()
			for i := 0; i < rounds; i++ {
				a := orb.NewEncoder()
				a.PutBytes([]byte{1})
				if _, err := ref.Invoke(p, "echo", a); err != nil {
					t.Fatal(err)
				}
			}
			oneway = p.Now().Sub(start) / (2 * rounds)
		}); err != nil {
			t.Fatal(err)
		}
		return oneway
	}
	o4 := lat(orb.OmniORB4)
	if o4 < 16*time.Microsecond || o4 > 21*time.Microsecond {
		t.Fatalf("omniORB4 one-way = %v, want ~18.4 µs", o4)
	}
	o3 := lat(orb.OmniORB3)
	if o3 <= o4 {
		t.Fatalf("omniORB3 (%v) should be slower than omniORB4 (%v)", o3, o4)
	}
	mico := lat(orb.Mico)
	if mico < 55*time.Microsecond || mico > 75*time.Microsecond {
		t.Fatalf("Mico one-way = %v, want ~63 µs", mico)
	}
}

func TestORBExceptionPath(t *testing.T) {
	g := grid.Cluster(2)
	if err := g.K.Run(func(p *vtime.Proc) {
		server := orb.New(g.K, g.RT[1].VLink, orb.OmniORB4, "madio", 5000)
		server.RegisterServant("o", orb.Servant{})
		server.Activate()
		client := orb.New(g.K, g.RT[0].VLink, orb.OmniORB4, "madio", 5001)
		ref, _ := client.Resolve(server.IOR("o"))
		if _, err := ref.Invoke(p, "nope", nil); err == nil {
			t.Fatal("missing operation did not raise")
		}
		badRef, _ := client.Resolve("IOR:1:5000/ghost")
		if _, err := badRef.Invoke(p, "x", nil); err == nil {
			t.Fatal("missing servant did not raise")
		}
		if _, _, _, err := orb.ParseIOR("garbage"); err == nil {
			t.Fatal("garbage IOR parsed")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// The paper's core demonstration: a parallel middleware (MPI) and a
// distributed one (CORBA) share the same Myrinet at the same time.
func TestMPIAndCORBASimultaneously(t *testing.T) {
	g := grid.Cluster(2)
	if err := g.K.Run(func(p *vtime.Proc) {
		circs, err := g.NewCircuits(p, "mix", []topology.NodeID{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		c0 := mpi.New(g.K, personality.NewVMad(g.K, circs[0]))
		c1 := mpi.New(g.K, personality.NewVMad(g.K, circs[1]))
		server := orb.New(g.K, g.RT[1].VLink, orb.OmniORB4, "madio", 5000)
		hits := 0
		server.RegisterServant("monitor", orb.Servant{
			"progress": func(q *vtime.Proc, args *orb.Decoder, reply *orb.Encoder) error {
				hits++
				reply.PutU32(uint32(hits))
				return nil
			},
		})
		server.Activate()
		client := orb.New(g.K, g.RT[0].VLink, orb.OmniORB4, "madio", 5001)
		ref, _ := client.Resolve(server.IOR("monitor"))

		done := vtime.NewWaitGroup("mpi")
		done.Add(1)
		g.K.Go("mpi-peer", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 32<<10)
			for i := 0; i < 20; i++ {
				c1.Recv(q, 0, 1, buf)
				c1.Send(q, 0, 2, buf[:1])
			}
		})
		blob := make([]byte, 32<<10)
		for i := 0; i < 20; i++ {
			c0.Send(p, 1, 1, blob)
			c0.Recv(p, 1, 2, make([]byte, 1))
			if i%5 == 0 {
				if _, err := ref.Invoke(p, "progress", nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		done.Wait(p)
		if hits != 4 {
			t.Fatalf("CORBA monitor hits = %d, want 4", hits)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestJavaSocketLatencyMatchesTable1(t *testing.T) {
	g := grid.Cluster(2)
	var oneway time.Duration
	if err := g.K.Run(func(p *vtime.Proc) {
		ln, err := g.RT[1].VLink.Listen("madio", 5000)
		if err != nil {
			t.Fatal(err)
		}
		acc := vtime.NewQueue[*vlink.VLink]("acc")
		ln.SetAcceptHandler(func(v *vlink.VLink) { acc.Push(v) })
		va, err := g.RT[0].VLink.ConnectWait(p, "madio", vlink.Addr{Node: 1, Port: 5000})
		if err != nil {
			t.Fatal(err)
		}
		ja := rmi.NewJavaSocket(g.K, va)
		jb := rmi.NewJavaSocket(g.K, acc.Pop(p))
		g.K.GoDaemon("echo", func(q *vtime.Proc) {
			buf := make([]byte, 1)
			for {
				if _, err := jb.ReadFull(q, buf); err != nil {
					return
				}
				jb.Write(q, buf)
			}
		})
		buf := make([]byte, 1)
		const rounds = 100
		start := p.Now()
		for i := 0; i < rounds; i++ {
			ja.Write(p, buf)
			ja.ReadFull(p, buf)
		}
		oneway = p.Now().Sub(start) / (2 * rounds)
	}); err != nil {
		t.Fatal(err)
	}
	want := 40 * time.Microsecond
	if oneway < want-3*time.Microsecond || oneway > want+3*time.Microsecond {
		t.Fatalf("Java socket one-way = %v, want ~%v (Table 1)", oneway, want)
	}
}

func TestRMICall(t *testing.T) {
	g := grid.Cluster(2)
	if err := g.K.Run(func(p *vtime.Proc) {
		reg, err := rmi.NewRegistry(g.K, g.RT[1].VLink, "sysio", 1099)
		if err != nil {
			t.Fatal(err)
		}
		reg.Bind("Adder", rmi.RemoteObject{
			"add": func(q *vtime.Proc, args []byte) ([]byte, error) {
				return []byte{args[0] + args[1]}, nil
			},
		})
		stub, err := rmi.Lookup(p, g.RT[0].VLink, "sysio", 1, 1099, "Adder")
		if err != nil {
			t.Fatal(err)
		}
		out, err := stub.Call(p, "add", []byte{20, 22})
		if err != nil || out[0] != 42 {
			t.Fatalf("rmi add = %v, %v", out, err)
		}
		if _, err := stub.Call(p, "mul", nil); err == nil {
			t.Fatal("missing method did not raise")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSOAPMonitoring(t *testing.T) {
	g := grid.Cluster(2)
	if err := g.K.Run(func(p *vtime.Proc) {
		srv, err := soapx.NewServer(g.K, g.RT[1].VLink, "sysio", 8080)
		if err != nil {
			t.Fatal(err)
		}
		srv.Handle("GetStatus", func(q *vtime.Proc, params map[string]string) (map[string]string, error) {
			return map[string]string{"step": "128", "node": params["node"]}, nil
		})
		cl, err := soapx.Dial(p, g.RT[0].VLink, "sysio", 1, 8080)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cl.Call(p, "GetStatus", map[string]string{"node": "n0"})
		if err != nil || out["step"] != "128" || out["node"] != "n0" {
			t.Fatalf("soap call = %v, %v", out, err)
		}
		if _, err := cl.Call(p, "Nope", nil); err == nil {
			t.Fatal("missing operation did not fault")
		}
		cl.Close()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHLAFederationPubSubAndTime(t *testing.T) {
	g := grid.Cluster(3)
	if err := g.K.Run(func(p *vtime.Proc) {
		if _, err := hla.CreateFederation(g.K, g.RT[0].VLink, "fed", "sysio", 9100); err != nil {
			t.Fatal(err)
		}
		f1, err := hla.Join(p, g.RT[1].VLink, "sysio", 0, 9100, "sim1")
		if err != nil {
			t.Fatal(err)
		}
		f2, err := hla.Join(p, g.RT[2].VLink, "sysio", 0, 9100, "viz")
		if err != nil {
			t.Fatal(err)
		}
		f2.Subscribe(p, "Aircraft")
		p.Sleep(10 * time.Millisecond) // subscription propagates
		f1.UpdateAttributes(p, "Aircraft", []byte("pos=1,2"), 1.0)
		refl := f2.NextReflection(p)
		if refl.Class != "Aircraft" || string(refl.Value) != "pos=1,2" || refl.Time != 1.0 {
			t.Fatalf("reflection = %+v", refl)
		}
		// Conservative time management: both must request before grant.
		done := vtime.NewWaitGroup("t")
		done.Add(1)
		var t2 float64
		g.K.Go("f2", func(q *vtime.Proc) {
			defer done.Done()
			t2 = f2.TimeAdvanceRequest(q, 2.0)
		})
		if got := f1.TimeAdvanceRequest(p, 2.0); got != 2.0 {
			t.Fatalf("f1 grant = %v", got)
		}
		done.Wait(p)
		if t2 != 2.0 {
			t.Fatalf("f2 grant = %v", t2)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDSMCoherence(t *testing.T) {
	g := grid.Cluster(3)
	if err := g.K.Run(func(p *vtime.Proc) {
		circs, err := g.NewCircuits(p, "dsm", []topology.NodeID{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]*dsm.DSM, 3)
		for r := range ds {
			ds[r] = dsm.New(g.K, circs[r], 8)
		}
		// Rank 1 writes page 3 (home = rank 0); every rank must observe
		// the write after completion.
		done := vtime.NewWaitGroup("w")
		done.Add(1)
		g.K.Go("writer", func(q *vtime.Proc) {
			defer done.Done()
			ds[1].Acquire(q, 0)
			ds[1].Write(q, 3, 100, []byte("shared-state"))
			ds[1].Release(q, 0)
		})
		done.Wait(p)
		readers := vtime.NewWaitGroup("readers")
		readers.Add(1)
		g.K.Go("reader1", func(q *vtime.Proc) {
			defer readers.Done()
			// Rank 1 reads and caches the page (it is not the home).
			if page := ds[1].Read(q, 3); string(page[100:112]) != "shared-state" {
				t.Errorf("rank 1 sees %q", page[100:112])
			}
		})
		readers.Wait(p)
		if page := ds[0].Read(p, 3); string(page[100:112]) != "shared-state" {
			t.Fatalf("home sees %q", page[100:112])
		}
		// Overwrite from rank 2: rank 1's cached copy must be invalidated
		// before the write completes.
		done2 := vtime.NewWaitGroup("w2")
		done2.Add(1)
		g.K.Go("writer2", func(q *vtime.Proc) {
			defer done2.Done()
			ds[2].Acquire(q, 0)
			ds[2].Write(q, 3, 100, []byte("NEWER-STATE!"))
			ds[2].Release(q, 0)
		})
		done2.Wait(p)
		fresh := vtime.NewWaitGroup("fresh")
		fresh.Add(1)
		g.K.Go("reader1b", func(q *vtime.Proc) {
			defer fresh.Done()
			if got := ds[1].Read(q, 3); string(got[100:112]) != "NEWER-STATE!" {
				t.Errorf("stale read after invalidation: %q", got[100:112])
			}
		})
		fresh.Wait(p)
		if ds[1].Invalidates == 0 {
			t.Fatal("no invalidations recorded at the cached reader")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPVMPackSendRecv(t *testing.T) {
	g := grid.Cluster(2)
	if err := g.K.Run(func(p *vtime.Proc) {
		circs, err := g.NewCircuits(p, "pvm", []topology.NodeID{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		t0 := pvm.New(g.K, circs[0])
		t1 := pvm.New(g.K, circs[1])
		if t0.MyTID() != 0 || t1.NTasks() != 2 {
			t.Fatal("enrollment wrong")
		}
		buf := pvm.NewBuffer().PkInt(42).PkDouble(3.5).PkString("pvm msg")
		t0.Send(1, 9, buf)
		done := vtime.NewWaitGroup("r")
		done.Add(1)
		g.K.Go("recv", func(q *vtime.Proc) {
			defer done.Done()
			in, src, tag := t1.Recv(q, pvm.AnyTID, 9)
			if src != 0 || tag != 9 {
				t.Errorf("src/tag = %d/%d", src, tag)
			}
			if in.UpkInt() != 42 || in.UpkDouble() != 3.5 || in.UpkString() != "pvm msg" {
				t.Error("pvm buffer corrupted")
			}
		})
		done.Wait(p)
		if t1.Probe(pvm.AnyTID, pvm.AnyTag) {
			t.Fatal("queue should be empty")
		}
	}); err != nil {
		t.Fatal(err)
	}
}
