package grid_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"padico/internal/grid"
	"padico/internal/madapi"
	"padico/internal/selector"
	"padico/internal/topology"
	"padico/internal/vrp"
	"padico/internal/vtime"
)

func TestSelectorDecisions(t *testing.T) {
	g := grid.TwoClusterWAN(2, 2)
	prefs := g.Prefs

	// Same cluster: straight parallel path on Myrinet.
	d, err := selector.Choose(g.Topo, prefs, 0, 1)
	if err != nil || d.Method != "madio" || d.Network.Kind != topology.Myrinet {
		t.Fatalf("intra-cluster decision = %+v, %v", d, err)
	}
	if d.Secure {
		t.Fatal("ciphering chosen on a secure machine-room network")
	}
	// Cross-site: parallel streams on the WAN, ciphered.
	d, err = selector.Choose(g.Topo, prefs, 0, 2)
	if err != nil || d.Method != "pstreams" || d.Network.Kind != topology.WAN {
		t.Fatalf("cross-site decision = %+v, %v", d, err)
	}
	if !d.Secure {
		t.Fatal("inter-site link not ciphered under auto policy")
	}
	// Loopback.
	d, _ = selector.Choose(g.Topo, prefs, 1, 1)
	if d.Method != "loopback" {
		t.Fatalf("self decision = %+v", d)
	}

	// Lossy pair with loss tolerance: VRP; slow link: compression.
	lg := grid.LossyPair()
	lp := lg.Prefs
	lp.LossTolerance = 0.1
	d, err = selector.Choose(lg.Topo, lp, 0, 1)
	if err != nil || d.Method != "vrp" {
		t.Fatalf("lossy decision = %+v, %v", d, err)
	}
	if !d.Compress {
		t.Fatal("600 KB/s link should trigger compression preference")
	}
}

func TestCircuitOverCluster(t *testing.T) {
	g := grid.Cluster(4)
	if err := g.K.Run(func(p *vtime.Proc) {
		nodes := []topology.NodeID{0, 1, 2, 3}
		circs, err := g.NewCircuits(p, "test", nodes)
		if err != nil {
			t.Fatal(err)
		}
		// Point-to-point with the packing API (rank 0 -> rank 3).
		done := vtime.NewWaitGroup("recv")
		done.Add(1)
		g.K.Go("rank3", func(q *vtime.Proc) {
			defer done.Done()
			in := circs[3].BeginUnpacking(q)
			if in.Src() != 0 {
				t.Errorf("src = %d", in.Src())
			}
			hdr := in.Unpack(4, madapi.ReceiveExpress)
			body := in.Unpack(11, madapi.ReceiveCheaper)
			in.EndUnpacking()
			if string(hdr) != "HEAD" || string(body) != "hello rank3" {
				t.Errorf("got %q %q", hdr, body)
			}
		})
		out := circs[0].BeginPacking(3)
		out.Pack([]byte("HEAD"), madapi.SendSafer)
		out.Pack([]byte("hello rank3"), madapi.SendCheaper)
		out.EndPacking()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitCollectives(t *testing.T) {
	for _, n := range []int{3, 4} { // ring and recursive-doubling paths
		n := n
		g := grid.Cluster(n)
		if err := g.K.Run(func(p *vtime.Proc) {
			nodes := make([]topology.NodeID, n)
			for i := range nodes {
				nodes[i] = topology.NodeID(i)
			}
			circs, err := g.NewCircuits(p, "coll", nodes)
			if err != nil {
				t.Fatal(err)
			}
			wg := vtime.NewWaitGroup("ranks")
			for r := 1; r < n; r++ {
				r := r
				wg.Add(1)
				g.K.Go("rank", func(q *vtime.Proc) {
					defer wg.Done()
					circs[r].Barrier(q)
					data := circs[r].Bcast(q, 0, nil)
					if string(data) != "broadcast!" {
						t.Errorf("rank %d bcast got %q", r, data)
					}
					sum := circs[r].AllReduce(q, []float64{float64(r), 1}, circuitOpSum())
					want := float64(n*(n-1)) / 2
					if sum[0] != want || sum[1] != float64(n) {
						t.Errorf("rank %d allreduce = %v", r, sum)
					}
				})
			}
			circs[0].Barrier(p)
			circs[0].Bcast(p, 0, []byte("broadcast!"))
			sum := circs[0].AllReduce(p, []float64{0, 1}, circuitOpSum())
			if sum[1] != float64(n) {
				t.Errorf("root allreduce = %v", sum)
			}
			wg.Wait(p)
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func circuitOpSum() func(a, b float64) float64 {
	return func(a, b float64) float64 { return a + b }
}

func TestCircuitSpansSites(t *testing.T) {
	g := grid.TwoClusterWAN(2, 2)
	g.Prefs.Cipher = selector.CipherNever // keep this test focused on adapters
	if err := g.K.Run(func(p *vtime.Proc) {
		nodes := []topology.NodeID{0, 1, 2, 3} // 0,1 rennes; 2,3 grenoble
		circs, err := g.NewCircuits(p, "span", nodes)
		if err != nil {
			t.Fatal(err)
		}
		// Intra-site link uses madio, inter-site uses a vlink adapter.
		if name := circs[0].Link(1).Name(); name != "madio" {
			t.Errorf("intra-site adapter = %s", name)
		}
		if name := circs[0].Link(2).Name(); name != "vlink" {
			t.Errorf("inter-site adapter = %s", name)
		}
		// Message across the WAN through the circuit.
		done := vtime.NewWaitGroup("recv")
		done.Add(1)
		g.K.Go("rank2", func(q *vtime.Proc) {
			defer done.Done()
			in := circs[2].BeginUnpacking(q)
			body := in.Unpack(9, madapi.ReceiveCheaper)
			in.EndUnpacking()
			if string(body) != "over wan!" || in.Src() != 0 {
				t.Errorf("got %q from %d", body, in.Src())
			}
		})
		out := circs[0].BeginPacking(2)
		out.Pack([]byte("over wan!"), madapi.SendSafer)
		out.EndPacking()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

// wanThroughput transfers size bytes over a VLink built per decision
// and returns the receiver-observed rate.
func wanThroughput(t *testing.T, dec *selector.Decision, size int) float64 {
	g := grid.TwoClusterWAN(1, 1)
	var rate float64
	if err := g.K.Run(func(p *vtime.Proc) {
		d := selector.Decision{}
		if dec == nil {
			dd, err := selector.Choose(g.Topo, g.Prefs, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			d = dd
		} else {
			d = *dec
		}
		la, lb, err := g.DialVLinkWith(p, 0, 1, d)
		if err != nil {
			t.Fatal(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var end vtime.Time
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 64<<10)
			total := 0
			for total < size {
				n, err := lb.Read(q, buf)
				total += n
				if err != nil {
					if err != io.EOF {
						t.Error(err)
					}
					break
				}
			}
			end = q.Now()
		})
		start := p.Now()
		chunk := make([]byte, 256<<10)
		rand.New(rand.NewSource(99)).Read(chunk) // incompressible
		sent := 0
		for sent < size {
			n := size - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			if _, err := la.Write(p, chunk[:n]); err != nil {
				t.Fatal(err)
			}
			sent += n
		}
		done.Wait(p)
		rate = float64(size) / end.Sub(start).Seconds()
	}); err != nil {
		t.Fatal(err)
	}
	return rate
}

// The paper's VTHD experiment: one TCP stream ~9 MB/s; parallel streams
// reach the 12 MB/s access-link cap.
func TestParallelStreamsBeatSingleStreamOnWAN(t *testing.T) {
	single := wanThroughput(t, &selector.Decision{Method: "sysio", Streams: 1}, 8<<20)
	striped := wanThroughput(t, &selector.Decision{Method: "pstreams", Streams: 4}, 16<<20)
	if single < 7.5e6 || single > 10.5e6 {
		t.Fatalf("single stream = %.3g MB/s, want ~9", single/1e6)
	}
	if striped < 10.8e6 || striped > 12.6e6 {
		t.Fatalf("parallel streams = %.3g MB/s, want ~12 (access-link cap)", striped/1e6)
	}
	if striped <= single {
		t.Fatal("striping did not help")
	}
}

func TestSecureLinkRoundTripAndOverhead(t *testing.T) {
	g := grid.TwoClusterWAN(1, 1)
	if err := g.K.Run(func(p *vtime.Proc) {
		dec := selector.Decision{Method: "sysio", Streams: 1, Secure: true}
		la, lb, err := g.DialVLinkWith(p, 0, 1, dec)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 100000)
		rand.New(rand.NewSource(3)).Read(msg)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var got []byte
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 32<<10)
			for len(got) < len(msg) {
				n, err := lb.Read(q, buf)
				got = append(got, buf[:n]...)
				if err != nil {
					return
				}
			}
		})
		la.Write(p, msg)
		done.Wait(p)
		if !bytes.Equal(got, msg) {
			t.Fatal("ciphered stream corrupted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionHelpsOnSlowLink(t *testing.T) {
	// Compressible data over the lossy 600 KB/s link: AdOC should beat
	// the raw link capacity in goodput terms.
	run := func(compress bool) float64 {
		g := grid.LossyPair()
		size := 600 << 10
		var rate float64
		if err := g.K.Run(func(p *vtime.Proc) {
			dec := selector.Decision{Method: "sysio", Streams: 1, Compress: compress}
			la, lb, err := g.DialVLinkWith(p, 0, 1, dec)
			if err != nil {
				t.Fatal(err)
			}
			done := vtime.NewWaitGroup("done")
			done.Add(1)
			var end vtime.Time
			g.K.Go("sink", func(q *vtime.Proc) {
				defer done.Done()
				buf := make([]byte, 64<<10)
				total := 0
				for total < size {
					n, err := lb.Read(q, buf)
					total += n
					if err != nil {
						break
					}
				}
				end = q.Now()
			})
			start := p.Now()
			// Highly compressible payload (text-like repetition).
			block := bytes.Repeat([]byte("padico grid computing stream "), 1024)
			sent := 0
			for sent < size {
				n := size - sent
				if n > len(block) {
					n = len(block)
				}
				la.Write(p, block[:n])
				sent += n
			}
			done.Wait(p)
			rate = float64(size) / end.Sub(start).Seconds()
		}); err != nil {
			t.Fatal(err)
		}
		return rate
	}
	raw := run(false)
	compressed := run(true)
	if compressed < 2*raw {
		t.Fatalf("adoc rate %.3g KB/s not >2x raw %.3g KB/s on compressible data",
			compressed/1e3, raw/1e3)
	}
}

// The paper's VRP experiment: TCP ~150 KB/s on the lossy link; VRP with
// 10% tolerance ~500 KB/s, about 3x.
func TestVRPBeatsTCPOnLossyLink(t *testing.T) {
	// TCP side.
	g := grid.LossyPair()
	size := 512 << 10
	var tcpRate float64
	if err := g.K.Run(func(p *vtime.Proc) {
		dec := selector.Decision{Method: "sysio", Streams: 1}
		la, lb, err := g.DialVLinkWith(p, 0, 1, dec)
		if err != nil {
			t.Fatal(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var end vtime.Time
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 64<<10)
			total := 0
			for total < size {
				n, err := lb.Read(q, buf)
				total += n
				if err != nil {
					break
				}
			}
			end = q.Now()
		})
		start := p.Now()
		payload := make([]byte, size)
		rand.New(rand.NewSource(1)).Read(payload)
		la.Write(p, payload)
		done.Wait(p)
		tcpRate = float64(size) / end.Sub(start).Seconds()
	}); err != nil {
		t.Fatal(err)
	}

	// VRP side: paced datagrams with 10% tolerance.
	g2 := grid.LossyPair()
	var vrpRate float64
	var skipFrac float64
	if err := g2.K.Run(func(p *vtime.Proc) {
		ua, _ := g2.Stack.Host(0).ListenUDP(7000)
		ub, _ := g2.Stack.Host(1).ListenUDP(7001)
		sender := vrp.New(g2.K, ua, 1, 7001, 0.10, 600e3)
		recv := vrp.New(g2.K, ub, 0, 7000, 0.10, 600e3)
		payload := make([]byte, 1200)
		rand.New(rand.NewSource(2)).Read(payload)
		nmsgs := size / len(payload)
		start := p.Now()
		for i := 0; i < nmsgs; i++ {
			sender.Send(payload)
		}
		// Drain deliveries until the stream goes quiet.
		received := 0
		for {
			if _, ok := recv.RecvTimeout(p, 2*time.Second); !ok {
				break
			}
			received++
		}
		elapsed := p.Now().Sub(start).Seconds() - 2 // minus the quiet timeout
		vrpRate = float64(received*len(payload)) / elapsed
		skipFrac = float64(sender.Stats().Skipped) / float64(nmsgs)
	}); err != nil {
		t.Fatal(err)
	}

	if tcpRate < 90e3 || tcpRate > 260e3 {
		t.Fatalf("TCP on lossy link = %.3g KB/s, want ~150", tcpRate/1e3)
	}
	if vrpRate < 400e3 || vrpRate > 620e3 {
		t.Fatalf("VRP on lossy link = %.3g KB/s, want ~500", vrpRate/1e3)
	}
	if ratio := vrpRate / tcpRate; ratio < 2 {
		t.Fatalf("VRP/TCP = %.2f, paper reports ~3x", ratio)
	}
	if skipFrac > 0.11 {
		t.Fatalf("VRP skipped %.1f%%, above the 10%% tolerance", skipFrac*100)
	}
}
