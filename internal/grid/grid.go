// Package grid assembles complete simulated testbeds: topology, fabrics,
// protocol stacks, and one PadicoTM runtime (internal/core) per node.
// The canned deployments mirror the paper's evaluation platforms:
//
//   - Cluster:        dual-network cluster (Myrinet-2000 + Ethernet-100)
//   - TwoClusterWAN:  two such clusters joined by a VTHD-like WAN
//   - LossyPair:      two hosts over the lossy trans-continental link
//
// The builder also wires Circuits and VLinks between nodes following
// the selector's per-link decisions, which is exactly the role the
// PadicoTM bootstrap plays.
package grid

import (
	"fmt"
	"sort"
	"time"

	"padico/internal/adoc"
	"padico/internal/circuit"
	"padico/internal/core"
	"padico/internal/datagrid"
	"padico/internal/drivers/gm"
	"padico/internal/group"
	"padico/internal/gsec"
	"padico/internal/ipstack"
	"padico/internal/madeleine"
	"padico/internal/model"
	"padico/internal/netaccess"
	"padico/internal/netsim"
	"padico/internal/pstreams"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/store"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
	"padico/internal/weather"
)

// Grid is a fully wired testbed.
type Grid struct {
	K     *vtime.Kernel
	Topo  *topology.Grid
	Stack *ipstack.Stack
	RT    []*core.Runtime
	// Prefs is the deployment-wide default QoS; per-channel overrides
	// go through Session().Open options.
	Prefs selector.Preferences
	// CoreHops indexes the wide-area core hops by name ("core:<wan>"
	// or "core:<wan>:<siteA>+<siteB>") — the handles condition
	// schedules and per-link byte accounting hang off.
	CoreHops map[string]*netsim.Hop

	sess *session.Manager
	wsvc *weather.Service

	nextPort    int
	nextLogical uint16
	nextCirc    int

	madAdapters map[topology.NodeID]*madeleine.Adapter // per node, first SAN
}

// Session returns the testbed's session manager — the front door
// middleware calls instead of wiring VLinks and Circuits by hand. The
// manager reads Prefs lazily, so retuning the testbed's default QoS
// affects later Opens.
func (g *Grid) Session() *session.Manager {
	if g.sess == nil {
		g.sess = session.NewManager(g.K, g.Topo, func() selector.QoS { return g.Prefs }, g)
	}
	return g.sess
}

// Open is Session().Open: one paradigm-agnostic channel from src to
// dst, substrate chosen by the selector.
func (g *Grid) Open(p *vtime.Proc, src, dst topology.NodeID, opts ...session.Option) (session.Channel, error) {
	return g.Session().Open(p, src, dst, opts...)
}

// EnableWeather attaches (and starts) a network-weather service to the
// testbed: the session manager consults its forecasts on every Open,
// closed channels feed its passive tap, and adaptive channels
// subscribe to its transitions. Idempotent; returns the service.
func (g *Grid) EnableWeather(cfg weather.Config) *weather.Service {
	if g.wsvc == nil {
		g.wsvc = weather.New(g.K, g.Topo, g.Session(), g.Stack, cfg)
		g.Session().SetWeather(g.wsvc)
		g.wsvc.Start()
	}
	return g.wsvc
}

// Weather returns the attached weather service (nil without one).
func (g *Grid) Weather() *weather.Service { return g.wsvc }

// Telemetry attaches (and returns) the testbed's observability hub: a
// unified metrics registry, the virtual-time span tracer, and the
// flight recorder (see internal/telemetry). Idempotent. The session
// manager and IP stack are wired here; layers built by their own
// constructors (DataGrid, groups, weather, VRP) discover the hub at
// construction time — attach before building them to observe them.
func (g *Grid) Telemetry() *telemetry.Hub {
	h := telemetry.Attach(g.K)
	g.Stack.SetTelemetry(h)
	g.Session().SetTelemetry(h)
	// Core hops exist before the hub does; bind their utilization and
	// queue-depth instruments now (idempotent per hop).
	names := make([]string, 0, len(g.CoreHops))
	for name := range g.CoreHops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		netsim.RegisterHopMetrics(h.Registry(), g.CoreHops[name])
	}
	return h
}

// CoreHop returns a named wide-area core hop (nil if absent).
func (g *Grid) CoreHop(name string) *netsim.Hop { return g.CoreHops[name] }

// vlinkMadIOChannel is the logical channel the VLink madio driver uses
// on every MadIO instance.
const vlinkMadIOChannel = 100

// Cluster builds an n-node single-site cluster with Myrinet-2000 and
// Ethernet-100, GM as the Myrinet driver, and full runtimes.
func Cluster(n int) *Grid {
	g := newGrid()
	site := "rennes"
	myri := g.Topo.AddNetwork("myri0", topology.Myrinet, true, model.MyrinetRate, model.MyrinetWireLat, 0, 0)
	eth := g.Topo.AddNetwork("eth0", topology.Ethernet, true, model.EthernetRate, model.EthernetWireLat, 0, model.EthernetMTU)
	var nodes []*topology.Node
	for i := 0; i < n; i++ {
		node := g.Topo.AddNode(fmt.Sprintf("n%d", i), site)
		g.Topo.Attach(node, myri)
		g.Topo.Attach(node, eth)
		nodes = append(nodes, node)
	}
	g.wireEthernet(eth, 1)
	g.buildRuntimes()
	g.wireMyrinetGM(myri)
	return g
}

// TwoClusterWAN builds two clusters (n1 and n2 nodes) in different
// sites, each with its own Myrinet and Ethernet, joined by a VTHD-like
// WAN reached through each node's Ethernet access link.
func TwoClusterWAN(n1, n2 int) *Grid { return TwoClusterWANLoss(n1, n2, 0) }

// TwoClusterWANLoss is TwoClusterWAN with uniform random loss on the
// WAN core — the data-grid scenario, where isolated losses across the
// wide area are exactly what striped parallel transfers amortize.
func TwoClusterWANLoss(n1, n2 int, loss float64) *Grid {
	return multiSite([]string{"rennes", "grenoble"}, []string{"r", "g"}, []int{n1, n2}, loss)
}

// MultiSite builds a star of clusters: `sites` clusters of nodesPerSite
// nodes each (own Myrinet + Ethernet per site, like TwoClusterWAN's),
// every node reaching remote sites through its own WAN access link into
// one shared VTHD-like core. It is the group-communication testbed:
// hierarchical experiments are not limited to two clusters.
func MultiSite(sites, nodesPerSite int) *Grid { return MultiSiteLoss(sites, nodesPerSite, 0) }

// MultiSiteLoss is MultiSite with uniform random loss on the WAN core.
func MultiSiteLoss(sites, nodesPerSite int, loss float64) *Grid {
	if sites < 1 || nodesPerSite < 1 {
		panic(fmt.Sprintf("grid: MultiSite needs at least one site and one node, got %d x %d", sites, nodesPerSite))
	}
	names := make([]string, sites)
	prefixes := make([]string, sites)
	counts := make([]int, sites)
	for s := range names {
		names[s] = fmt.Sprintf("site%d", s)
		prefixes[s] = fmt.Sprintf("s%d-", s)
		counts[s] = nodesPerSite
	}
	return multiSite(names, prefixes, counts, loss)
}

// multiSite assembles any star-of-clusters deployment: one Myrinet and
// one Ethernet per named site, counts[s] nodes with prefixes[s] names,
// a shared lossy WAN joining the sites.
func multiSite(sites, prefixes []string, counts []int, loss float64) *Grid {
	g := newGrid()
	var myris []*topology.Network
	var eths []*topology.Network
	for s := range sites {
		myri := g.Topo.AddNetwork(fmt.Sprintf("myri%d", s), topology.Myrinet, true, model.MyrinetRate, model.MyrinetWireLat, 0, 0)
		eth := g.Topo.AddNetwork(fmt.Sprintf("eth%d", s), topology.Ethernet, true, model.EthernetRate, model.EthernetWireLat, 0, model.EthernetMTU)
		myris = append(myris, myri)
		eths = append(eths, eth)
		for i := 0; i < counts[s]; i++ {
			node := g.Topo.AddNode(fmt.Sprintf("%s%d", prefixes[s], i), sites[s])
			g.Topo.Attach(node, myri)
			g.Topo.Attach(node, eth)
		}
	}
	wan := g.Topo.AddNetwork("vthd", topology.WAN, false, 12.2e6, model.VTHDWireLat, loss, model.EthernetMTU)
	for _, node := range g.Topo.Nodes() {
		g.Topo.Attach(node, wan)
	}
	for s := range sites {
		g.wireEthernet(eths[s], int64(s+1))
	}
	g.wireWAN(wan)
	g.buildRuntimes()
	for _, myri := range myris {
		g.wireMyrinetGM(myri)
	}
	return g
}

// DegradingWAN schedule: at DegradeAt the wide-area core between
// site0 and site1 collapses to 1/DegradeFactor of its rate — the VTHD
// suddenly behaving like a congested commodity path between exactly
// one site pair, while site2 stays pristine.
const (
	DegradeAt     = 6 * time.Second
	DegradeFactor = 16
	// DegradedCore names the site0–site1 core hop in CoreHops.
	DegradedCore = "core:vthd:site0+site1"
)

// DegradingWAN builds the dynamic-fabric testbed: three sites of
// nodesPerSite nodes (own Myrinet + Ethernet each, like MultiSite's),
// joined by a VTHD-like WAN with a *separate* core hop per site pair —
// so conditions can diverge per pair — and per-node access hops. The
// degrade schedule above is pre-armed on the kernel: it is part of the
// testbed description and fires in every run, weather or not, which is
// what makes static-vs-adaptive comparisons apples-to-apples.
func DegradingWAN(nodesPerSite int) *Grid {
	if nodesPerSite < 1 {
		panic(fmt.Sprintf("grid: DegradingWAN needs at least one node per site, got %d", nodesPerSite))
	}
	g := newGrid()
	sites := []string{"site0", "site1", "site2"}
	var myris []*topology.Network
	var eths []*topology.Network
	for s, site := range sites {
		myri := g.Topo.AddNetwork(fmt.Sprintf("myri%d", s), topology.Myrinet, true, model.MyrinetRate, model.MyrinetWireLat, 0, 0)
		eth := g.Topo.AddNetwork(fmt.Sprintf("eth%d", s), topology.Ethernet, true, model.EthernetRate, model.EthernetWireLat, 0, model.EthernetMTU)
		myris = append(myris, myri)
		eths = append(eths, eth)
		for i := 0; i < nodesPerSite; i++ {
			node := g.Topo.AddNode(fmt.Sprintf("s%d-%d", s, i), site)
			g.Topo.Attach(node, myri)
			g.Topo.Attach(node, eth)
		}
	}
	wan := g.Topo.AddNetwork("vthd", topology.WAN, false, 12.2e6, model.VTHDWireLat, 0, model.EthernetMTU)
	for _, node := range g.Topo.Nodes() {
		g.Topo.Attach(node, wan)
	}
	for s := range sites {
		g.wireEthernet(eths[s], int64(s+1))
	}
	g.wireWANPairCores(wan)
	g.buildRuntimes()
	for _, myri := range myris {
		g.wireMyrinetGM(myri)
	}
	degraded := g.CoreHops[DegradedCore]
	netsim.ScheduleRate(g.K, vtime.Time(0).Add(DegradeAt), degraded, wan.RateBps/DegradeFactor)
	return g
}

// wireWANPairCores is wireWAN with one core hop per site pair instead
// of a single shared core: per-node access hops feed pair-specific
// cores, so a condition schedule can degrade exactly one site pair.
func (g *Grid) wireWANPairCores(wan *topology.Network) {
	up := make(map[topology.NodeID]*netsim.Hop)
	down := make(map[topology.NodeID]*netsim.Hop)
	for _, n := range wan.Members() {
		up[n] = &netsim.Hop{Name: fmt.Sprintf("up%d", n), Rate: wan.RateBps,
			Latency: 50 * time.Microsecond, QueueCap: 256}
		down[n] = &netsim.Hop{Name: fmt.Sprintf("down%d", n), Rate: wan.RateBps,
			Latency: 50 * time.Microsecond, QueueCap: 256}
	}
	coreFor := func(a, b topology.NodeID) *netsim.Hop {
		s1, s2 := g.Topo.Node(a).Site, g.Topo.Node(b).Site
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		name := fmt.Sprintf("core:%s:%s+%s", wan.Name, s1, s2)
		core, ok := g.CoreHops[name]
		if !ok {
			// A pair core carries one site pair, not the whole star:
			// 256 packets (~370 KB) holds the healthy bandwidth-delay
			// product with room to spare, while bounding the queueing
			// delay a degraded core can inflict (tail drops push TCP
			// back instead of growing seconds of bufferbloat).
			core = &netsim.Hop{Name: name, Rate: model.VTHDCoreRate,
				Latency: model.VTHDWireLat, Loss: wan.Loss, QueueCap: 256}
			g.CoreHops[name] = core
		}
		return core
	}
	members := wan.Members()
	seed := int64(100)
	for i, a := range members {
		for _, b := range members[i+1:] {
			if g.Topo.SameSite(a, b) {
				continue
			}
			core := coreFor(a, b)
			seed++
			ab := netsim.NewPath(g.K, fmt.Sprintf("wan:%d->%d", a, b), seed, up[a], core, down[b])
			seed++
			ba := netsim.NewPath(g.K, fmt.Sprintf("wan:%d->%d", b, a), seed, up[b], core, down[a])
			g.Stack.ConnectPathVia(wan.Name, a, b, ab, ba, model.EthernetMTU)
		}
	}
}

// DualWAN builds the multi-homed failover testbed: two sites of
// nodesPerSite nodes (own Myrinet + Ethernet each), whose cross-site
// pairs ride *two* independent wide-area networks — the primary
// VTHD-like WAN plus a slower commodity-Internet backup, each behind
// its own core hop ("core:vthd", "core:backup"). Partitioning the
// primary core leaves the backup wire alive, so weather-driven
// re-selection has a different physical network to move traffic to.
func DualWAN(nodesPerSite int) *Grid {
	if nodesPerSite < 1 {
		panic(fmt.Sprintf("grid: DualWAN needs at least one node per site, got %d", nodesPerSite))
	}
	g := newGrid()
	sites := []string{"site0", "site1"}
	var myris []*topology.Network
	var eths []*topology.Network
	for s, site := range sites {
		myri := g.Topo.AddNetwork(fmt.Sprintf("myri%d", s), topology.Myrinet, true, model.MyrinetRate, model.MyrinetWireLat, 0, 0)
		eth := g.Topo.AddNetwork(fmt.Sprintf("eth%d", s), topology.Ethernet, true, model.EthernetRate, model.EthernetWireLat, 0, model.EthernetMTU)
		myris = append(myris, myri)
		eths = append(eths, eth)
		for i := 0; i < nodesPerSite; i++ {
			node := g.Topo.AddNode(fmt.Sprintf("s%d-%d", s, i), site)
			g.Topo.Attach(node, myri)
			g.Topo.Attach(node, eth)
		}
	}
	wan := g.Topo.AddNetwork("vthd", topology.WAN, false, 12.2e6, model.VTHDWireLat, 0, model.EthernetMTU)
	backup := g.Topo.AddNetwork("backup", topology.Internet, false, 4e6, 12*time.Millisecond, 0, model.EthernetMTU)
	for _, node := range g.Topo.Nodes() {
		g.Topo.Attach(node, wan)
		g.Topo.Attach(node, backup)
	}
	for s := range sites {
		g.wireEthernet(eths[s], int64(s+1))
	}
	g.wireWAN(wan) // wired first: the primary claims the pair defaults
	g.wireExtraWAN(backup, 40e6, 500)
	g.buildRuntimes()
	for _, myri := range myris {
		g.wireMyrinetGM(myri)
	}
	return g
}

// wireExtraWAN wires an additional wide-area network between the
// cross-site pairs of an already-wired testbed: its own per-node access
// hops and a shared core hop registered as "core:<name>". Routes land
// under the network's name only when a default already exists, so the
// primary WAN (wired first) keeps carrying un-pinned traffic.
func (g *Grid) wireExtraWAN(wan *topology.Network, coreRate float64, seed int64) {
	up := make(map[topology.NodeID]*netsim.Hop)
	down := make(map[topology.NodeID]*netsim.Hop)
	for _, n := range wan.Members() {
		up[n] = &netsim.Hop{Name: fmt.Sprintf("up:%s:%d", wan.Name, n), Rate: wan.RateBps,
			Latency: 50 * time.Microsecond, QueueCap: 256}
		down[n] = &netsim.Hop{Name: fmt.Sprintf("down:%s:%d", wan.Name, n), Rate: wan.RateBps,
			Latency: 50 * time.Microsecond, QueueCap: 256}
	}
	core := &netsim.Hop{Name: wan.Name + "-core", Rate: coreRate,
		Latency: wan.Latency, Loss: wan.Loss, QueueCap: 1024}
	g.CoreHops["core:"+wan.Name] = core
	members := wan.Members()
	for i, a := range members {
		for _, b := range members[i+1:] {
			if g.Topo.SameSite(a, b) {
				continue
			}
			seed++
			ab := netsim.NewPath(g.K, fmt.Sprintf("%s:%d->%d", wan.Name, a, b), seed, up[a], core, down[b])
			seed++
			ba := netsim.NewPath(g.K, fmt.Sprintf("%s:%d->%d", wan.Name, b, a), seed, up[b], core, down[a])
			g.Stack.ConnectPathVia(wan.Name, a, b, ab, ba, model.EthernetMTU)
		}
	}
}

// LossyPair builds two hosts in different sites joined only by the
// lossy trans-continental Internet link.
func LossyPair() *Grid {
	g := newGrid()
	inet := g.Topo.AddNetwork("transcont", topology.Internet, false, model.LossyRate, model.LossyWireLat, model.LossyLossPct, model.EthernetMTU)
	a := g.Topo.AddNode("paris", "paris")
	b := g.Topo.AddNode("tsukuba", "tsukuba")
	g.Topo.Attach(a, inet)
	g.Topo.Attach(b, inet)
	mk := func(seed int64) *netsim.Path {
		return netsim.NewPath(g.K, "transcont", seed,
			&netsim.Hop{Name: "transcont", Rate: model.LossyRate,
				Latency: model.LossyWireLat, Loss: model.LossyLossPct, QueueCap: 256})
	}
	g.Stack.ConnectPath(a.ID, b.ID, mk(31), mk(32), model.EthernetMTU)
	g.buildRuntimes()
	return g
}

func newGrid() *Grid {
	k := vtime.NewKernel()
	return &Grid{
		K: k, Topo: topology.New(), Stack: ipstack.New(k),
		Prefs:    selector.DefaultPreferences(),
		CoreHops: make(map[string]*netsim.Hop),
		nextPort: 20000, nextLogical: 2000,
	}
}

// wireEthernet connects every pair of a LAN's members through a shared
// switched fabric.
func (g *Grid) wireEthernet(eth *topology.Network, seed int64) {
	lan := netsim.NewSwitchedLAN(g.K, model.EthernetRate, model.EthernetFrameOH, model.EthernetWireLat, eth.Loss, seed)
	members := eth.Members()
	for i, a := range members {
		for _, b := range members[i+1:] {
			aAddr, _ := eth.Addr(a)
			bAddr, _ := eth.Addr(b)
			g.Stack.ConnectLANVia(eth.Name, lan, a, aAddr, b, bAddr, model.EthernetMTU)
		}
	}
}

// wireWAN connects every cross-site pair through shared per-node access
// hops and a shared core, so parallel streams contend for the same
// access link (the paper's 12 MB/s cap).
func (g *Grid) wireWAN(wan *topology.Network) {
	up := make(map[topology.NodeID]*netsim.Hop)
	down := make(map[topology.NodeID]*netsim.Hop)
	for _, n := range wan.Members() {
		up[n] = &netsim.Hop{Name: fmt.Sprintf("up%d", n), Rate: wan.RateBps,
			Latency: 50 * time.Microsecond, QueueCap: 256}
		down[n] = &netsim.Hop{Name: fmt.Sprintf("down%d", n), Rate: wan.RateBps,
			Latency: 50 * time.Microsecond, QueueCap: 256}
	}
	core := &netsim.Hop{Name: "vthd-core", Rate: model.VTHDCoreRate,
		Latency: model.VTHDWireLat, Loss: wan.Loss, QueueCap: 4096}
	g.CoreHops["core:"+wan.Name] = core
	members := wan.Members()
	seed := int64(100)
	for i, a := range members {
		for _, b := range members[i+1:] {
			if g.Topo.SameSite(a, b) {
				continue // same-site pairs use their LAN
			}
			seed++
			ab := netsim.NewPath(g.K, fmt.Sprintf("wan:%d->%d", a, b), seed, up[a], core, down[b])
			seed++
			ba := netsim.NewPath(g.K, fmt.Sprintf("wan:%d->%d", b, a), seed, up[b], core, down[a])
			g.Stack.ConnectPathVia(wan.Name, a, b, ab, ba, model.EthernetMTU)
		}
	}
}

// buildRuntimes creates a core.Runtime per node with SysIO and the
// standard VLink drivers (sysio, loopback; madio is added per SAN).
func (g *Grid) buildRuntimes() {
	for _, node := range g.Topo.Nodes() {
		rt := core.NewRuntime(g.K, node, g.Stack.Host(node.ID))
		rt.VLink.AddDriver(vlink.NewSysIODriver(g.K, rt.Host, rt.Sys))
		rt.VLink.AddDriver(vlink.NewLoopbackDriver(g.K, node.ID))
		g.RT = append(g.RT, rt)
	}
}

// wireMyrinetGM attaches a Myrinet crossbar with GM NICs, Madeleine,
// MadIO and the VLink madio driver to every member runtime.
func (g *Grid) wireMyrinetGM(myri *topology.Network) {
	xb := netsim.NewCrossbar(g.K, topology.Myrinet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
	members := myri.Members()
	addrs := make([]int, len(members))
	for r, n := range members {
		addrs[r], _ = myri.Addr(n)
	}
	for r, n := range members {
		rt := g.RT[n]
		nic := gm.OpenNIC(g.K, xb, addrs[r])
		ad := madeleine.New(g.K, madeleine.NewGM(nic, addrs), r, len(members))
		if g.madAdapters == nil {
			g.madAdapters = make(map[topology.NodeID]*madeleine.Adapter)
		}
		if _, dup := g.madAdapters[n]; !dup {
			g.madAdapters[n] = ad
		}
		ch, err := ad.Open(0)
		if err != nil {
			panic(err)
		}
		mio := netaccess.NewMadIO(rt.NA, ch, myri.Name, true)
		rt.AttachMadIO(myri, mio, members)
		rankOf := func(id topology.NodeID) (int, bool) { return rt.MadRank(myri, id) }
		nodeOf := func(rank int) topology.NodeID { return members[rank] }
		rt.VLink.AddDriver(vlink.NewMadIODriver(g.K, n, mio, vlinkMadIOChannel, rankOf, nodeOf))
	}
}

// Runtime returns node id's runtime.
func (g *Grid) Runtime(id topology.NodeID) *core.Runtime { return g.RT[id] }

// NewDataGrid layers a replicated data-grid (ring placement, replica
// catalog, bulk transfers) over this testbed. Its transfers open
// session channels, so they ride the same selector decisions — and the
// same per-pair circuit cache — as every other middleware.
func (g *Grid) NewDataGrid(cfg datagrid.Config) *datagrid.DataGrid {
	if cfg.Weather == nil && g.wsvc != nil {
		cfg.Weather = g.wsvc
	}
	return datagrid.New(g.K, g.Topo, g.Session(), cfg)
}

// NewPackDataGrid is NewDataGrid with the durable pack store: every
// node persists its replicas as needles in bundle files under
// dir/node-<id>. A later testbed over the same directory resumes from
// the bundles (Close the datagrid first so appends are flushed).
func (g *Grid) NewPackDataGrid(dir string, pcfg store.PackConfig, cfg datagrid.Config) *datagrid.DataGrid {
	cfg.Engine = store.PackFactory(dir, pcfg)
	return g.NewDataGrid(cfg)
}

// NewGroup forms a hierarchical communication group over this
// testbed's session manager: a two-tier spanning tree (site leaders
// across the WAN, binomial fan-out inside each cluster) carrying
// Multicast/Reduce/Barrier/Gather.
func (g *Grid) NewGroup(members []topology.NodeID, cfg group.Config) (*group.Group, error) {
	return group.New(g.K, g.Topo, g.Session(), members, cfg)
}

// allocPort hands out distinct rendezvous ports for builder wiring.
func (g *Grid) allocPort() int {
	g.nextPort++
	return g.nextPort
}

// ---------------------------------------------------------------------
// VLink wiring via the selector. These are the session Manager's
// substrate primitives (and the ablation API for benchmarks that need
// an explicit Decision); middleware should open channels through
// Session() instead.

// DialVLink opens a VLink from a to b choosing driver and wrappers per
// the selector; the listener side is set up transparently. It blocks p
// until established. Both runtimes must exist.
func (g *Grid) DialVLink(p *vtime.Proc, a, b topology.NodeID) (*vlink.VLink, *vlink.VLink, error) {
	dec, err := selector.Select(g.Topo, selector.Request{Src: a, Dst: b, QoS: g.Prefs})
	if err != nil {
		return nil, nil, err
	}
	return g.DialVLinkWith(p, a, b, dec)
}

// DialVLinkWith is DialVLink with an explicit decision (for ablations).
// It returns the two ends (dialer side, acceptor side).
func (g *Grid) DialVLinkWith(p *vtime.Proc, a, b topology.NodeID, dec selector.Decision) (*vlink.VLink, *vlink.VLink, error) {
	port := g.allocPort()
	da, err := g.buildDriverStack(g.RT[a], dec)
	if err != nil {
		return nil, nil, err
	}
	db, err := g.buildDriverStack(g.RT[b], dec)
	if err != nil {
		return nil, nil, err
	}
	ln, err := g.RT[b].VLink.ListenDriver(db, port)
	if err != nil {
		return nil, nil, err
	}
	accepted := vtime.NewQueue[*vlink.VLink]("accepted")
	ln.SetAcceptHandler(func(v *vlink.VLink) { accepted.Push(v) })
	va, op := g.RT[a].VLink.ConnectDriver(da, vlink.Addr{Node: b, Port: port})
	if _, err := op.Wait(p); err != nil {
		return nil, nil, err
	}
	vb, ok := accepted.PopTimeout(p, 10*time.Second)
	if !ok {
		return nil, nil, fmt.Errorf("grid: accept timeout %d->%d", a, b)
	}
	return va, vb, nil
}

// buildDriverStack composes the method driver with optional adoc and
// gsec wrappers per the decision.
func (g *Grid) buildDriverStack(rt *core.Runtime, dec selector.Decision) (vlink.Driver, error) {
	var d vlink.Driver
	var err error
	switch dec.Method {
	case "madio":
		d, err = rt.VLink.Driver("madio")
	case "sysio", "vrp": // vrp has a message API; its stream adapter uses sysio for now
		d, err = rt.VLink.Driver("sysio")
		d = pinNetwork(d, dec)
	case "loopback":
		d, err = rt.VLink.Driver("loopback")
	case "pstreams":
		var inner vlink.Driver
		inner, err = rt.VLink.Driver("sysio")
		if err == nil {
			d = pstreams.New(g.K, rt.Node().ID, pinNetwork(inner, dec), dec.Streams)
		}
	default:
		err = fmt.Errorf("grid: unknown method %q", dec.Method)
	}
	if err != nil {
		return nil, err
	}
	// Cipher inside, compression outside: the application's writes must
	// reach AdOC as plaintext (ciphertext has no redundancy left to
	// compress), and the wire then carries the encrypted form of the
	// compressed stream.
	if dec.Secure {
		d = gsec.New(g.K, d, gsec.Credential{ID: "grid-ca", Key: []byte("padico-psk-0001")})
	}
	if dec.Compress {
		d = adoc.New(g.K, d)
	}
	return d, nil
}

// pinNetwork threads the selector's Decision.Network down to the sysio
// driver: a multi-homed pair dials on the decided wire, so a weather
// re-selection after a partition actually moves traffic to a different
// physical network instead of re-dialing the same dead one.
func pinNetwork(d vlink.Driver, dec selector.Decision) vlink.Driver {
	if dec.Network == nil {
		return d
	}
	if sd, ok := d.(*vlink.SysIODriver); ok {
		return sd.WithNetwork(dec.Network.Name)
	}
	return d
}

// ---------------------------------------------------------------------
// Circuit wiring via the selector.

// NewCircuits builds one Circuit per member node over the given node
// set, with per-link adapters chosen by the selector, and returns them
// indexed by rank. Must run inside a proc (stream links handshake).
func (g *Grid) NewCircuits(p *vtime.Proc, name string, nodes []topology.NodeID) ([]*circuit.Circuit, error) {
	g.nextCirc++
	circs := make([]*circuit.Circuit, len(nodes))
	for r := range nodes {
		circs[r] = circuit.New(g.K, name, r, nodes)
	}
	// madio ports are shared per (circuit, network, node); allocate the
	// logical channel once per network so every member uses the same id.
	g.nextLogical++
	logical := g.nextLogical
	ports := make(map[string]*circuit.MadIOPort) // key: network/node
	for i := range nodes {
		for j := range nodes {
			if i == j {
				circs[i].SetLink(i, circuit.NewLoopbackLink(g.K, circs[i], i))
				continue
			}
			if i > j {
				continue // links are wired pairwise below
			}
			if err := g.wireCircuitLink(p, name, logical, ports, circs, nodes, i, j); err != nil {
				return nil, err
			}
		}
	}
	return circs, nil
}

// wireCircuitLink connects ranks i<j of the circuit per the selector.
func (g *Grid) wireCircuitLink(p *vtime.Proc, name string, logical uint16,
	ports map[string]*circuit.MadIOPort, circs []*circuit.Circuit,
	nodes []topology.NodeID, i, j int) error {
	a, b := nodes[i], nodes[j]
	dec, err := selector.Select(g.Topo, selector.Request{Src: a, Dst: b, QoS: g.Prefs})
	if err != nil {
		return err
	}
	if dec.Method == "madio" {
		for _, pair := range [2][2]int{{i, j}, {j, i}} {
			self, other := pair[0], pair[1]
			rt := g.RT[nodes[self]]
			key := fmt.Sprintf("%s/%d", dec.Network.Name, nodes[self])
			port, ok := ports[key]
			if !ok {
				mio := rt.MadIO[dec.Network]
				if mio == nil {
					return fmt.Errorf("grid: no MadIO on %s for node %d", dec.Network.Name, nodes[self])
				}
				members := rt.Members(dec.Network)
				circRankOf := make(map[topology.NodeID]int, len(nodes))
				for r, nd := range nodes {
					circRankOf[nd] = r
				}
				madRank := func(cr int) int {
					r, _ := rt.MadRank(dec.Network, nodes[cr])
					return r
				}
				circRank := func(mr int) int { return circRankOf[members[mr]] }
				port = circuit.NewMadIOPort(mio, logical, circs[self], madRank, circRank)
				ports[key] = port
			}
			circs[self].SetLink(other, port.Link(other))
		}
		return nil
	}
	// Stream link: one VLink per direction pair over the chosen method.
	va, vb, err := g.DialVLinkWith(p, a, b, dec)
	if err != nil {
		return err
	}
	circs[i].SetLink(j, &vlinkLinkAdapter{circuit.NewVLinkLink(va, circs[i], j)})
	circs[j].SetLink(i, &vlinkLinkAdapter{circuit.NewVLinkLink(vb, circs[j], i)})
	return nil
}

// vlinkLinkAdapter just fixes the adapter name reported to callers.
type vlinkLinkAdapter struct{ *circuit.VLinkLink }

// RewireMadIONoCombining opens the second Myrinet hardware channel on
// nodes a and b with MadIO header combining disabled — the §4.1
// ablation comparator.
func RewireMadIONoCombining(g *Grid, a, b topology.NodeID) (*netaccess.MadIO, *netaccess.MadIO) {
	mk := func(n topology.NodeID) *netaccess.MadIO {
		ad := g.madAdapters[n]
		ch, err := ad.Open(1) // Myrinet's second (and last) hardware channel
		if err != nil {
			panic(err)
		}
		return netaccess.NewMadIO(g.RT[n].NA, ch, "myri-nocombine", false)
	}
	return mk(a), mk(b)
}
