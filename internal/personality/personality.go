// Package personality implements the paper's personality layer (§3.3,
// §4.3): thin wrappers that adapt the abstract interfaces' generic APIs
// to look like standard APIs — "they do no protocol adaptation nor
// paradigm translation; they only adapt the syntax".
//
//   - Vio:     explicit socket-like synchronous API over VLink
//   - SysWrap: a 100% net.Conn-shaped API over VLink, so legacy code
//     written against the standard socket interface runs unchanged
//     (the C PadicoTM wraps at link stage; Go's equivalent is
//     satisfying the standard interface shape)
//   - Aio:     POSIX.2 asynchronous I/O API (aio_read/aio_write/
//     aio_error/aio_return/aio_suspend) over VLink
//   - FM:      FastMessage 2.0-style API over Circuit
//   - VMad:    a virtual Madeleine API over Circuit, through which the
//     unmodified MPICH/Madeleine (internal/mpi) runs inside PadicoTM
package personality

import (
	"errors"
	"io"

	"padico/internal/circuit"
	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ---------------------------------------------------------------------
// Vio: synchronous socket-like calls.

// Vio wraps a VLink with explicit blocking send/recv, the "explicit use
// through a socket-like API" of §4.3.
type Vio struct {
	V *vlink.VLink
	k *vtime.Kernel
}

// NewVio wraps an established VLink.
func NewVio(k *vtime.Kernel, v *vlink.VLink) *Vio { return &Vio{V: v, k: k} }

// Send writes all of data (cost: syntax adaptation only).
func (s *Vio) Send(p *vtime.Proc, data []byte) (int, error) {
	p.Consume(model.VioCost)
	return s.V.Write(p, data)
}

// Recv reads available bytes into buf.
func (s *Vio) Recv(p *vtime.Proc, buf []byte) (int, error) {
	p.Consume(model.VioCost)
	return s.V.Read(p, buf)
}

// RecvFull reads exactly len(buf) bytes.
func (s *Vio) RecvFull(p *vtime.Proc, buf []byte) (int, error) {
	p.Consume(model.VioCost)
	return s.V.ReadFull(p, buf)
}

// Close shuts the link down.
func (s *Vio) Close() { s.V.Close() }

// ---------------------------------------------------------------------
// SysWrap: the standard-interface-compliant wrapper. Legacy Go code
// that works with Reader/Writer/Closer streams runs on it unchanged —
// the analogue of wrapping libc's socket calls at link stage.

// SysWrapConn presents a VLink as an io.ReadWriteCloser bound to a
// process, so unmodified stream-oriented code can use it.
type SysWrapConn struct {
	v *vlink.VLink
	p *vtime.Proc
}

// WrapConn binds an established VLink to the calling process.
func WrapConn(p *vtime.Proc, v *vlink.VLink) *SysWrapConn { return &SysWrapConn{v: v, p: p} }

var _ io.ReadWriteCloser = (*SysWrapConn)(nil)

// Read implements io.Reader.
func (c *SysWrapConn) Read(buf []byte) (int, error) {
	c.p.Consume(model.SysWrap)
	return c.v.Read(c.p, buf)
}

// Write implements io.Writer.
func (c *SysWrapConn) Write(data []byte) (int, error) {
	c.p.Consume(model.SysWrap)
	return c.v.Write(c.p, data)
}

// Close implements io.Closer.
func (c *SysWrapConn) Close() error {
	c.v.Close()
	return nil
}

// ---------------------------------------------------------------------
// Aio: POSIX.2 asynchronous I/O.

// AioOp mirrors POSIX aio error states.
var (
	ErrInProgress = errors.New("aio: operation in progress") // EINPROGRESS
)

// Aiocb is an asynchronous I/O control block (struct aiocb).
type Aiocb struct {
	Buf []byte
	op  *vlink.Op
}

// Aio is the POSIX.2-style AIO personality over one VLink.
type Aio struct {
	V *vlink.VLink
	k *vtime.Kernel
}

// NewAio wraps an established VLink.
func NewAio(k *vtime.Kernel, v *vlink.VLink) *Aio { return &Aio{V: v, k: k} }

// Read posts an asynchronous read (aio_read).
func (a *Aio) Read(cb *Aiocb) { cb.op = a.V.PostRead(cb.Buf) }

// Write posts an asynchronous write (aio_write).
func (a *Aio) Write(cb *Aiocb) { cb.op = a.V.PostWrite(cb.Buf) }

// Error polls the operation state (aio_error): nil when complete,
// ErrInProgress otherwise.
func (a *Aio) Error(cb *Aiocb) error {
	if cb.op == nil || !cb.op.Done() {
		return ErrInProgress
	}
	_, err := cb.op.Result()
	return err
}

// Return yields the operation's result (aio_return); it panics if the
// operation is still in progress, as POSIX leaves it undefined.
func (a *Aio) Return(cb *Aiocb) (int, error) { return cb.op.Result() }

// Suspend blocks until one of the control blocks completes
// (aio_suspend).
func (a *Aio) Suspend(p *vtime.Proc, cbs ...*Aiocb) {
	for {
		for _, cb := range cbs {
			if cb.op != nil && cb.op.Done() {
				return
			}
		}
		p.Sleep(model.AioCost)
	}
}

// ---------------------------------------------------------------------
// FM: FastMessage 2.0-style API over Circuit.

// FMHandler consumes an extracted message.
type FMHandler func(p *vtime.Proc, src int, data []byte)

// FM is the FastMessage personality: numbered handlers, active-message
// style sends, and an explicit extract step that drives dispatch.
type FM struct {
	c        *circuit.Circuit
	handlers map[int]FMHandler
}

// NewFM builds the FastMessage personality over a circuit.
func NewFM(c *circuit.Circuit) *FM { return &FM{c: c, handlers: make(map[int]FMHandler)} }

// RegisterHandler binds handler number h.
func (f *FM) RegisterHandler(h int, fn FMHandler) { f.handlers[h] = fn }

// Send sends data to handler h on rank dst (FM_send).
func (f *FM) Send(dst, h int, data []byte) {
	out := f.c.BeginPacking(dst)
	out.Pack([]byte{byte(h)}, madapi.SendSafer)
	out.Pack(data, madapi.SendSafer)
	out.EndPacking()
}

// Extract processes up to max pending messages (FM_extract); it returns
// the number dispatched.
func (f *FM) Extract(p *vtime.Proc, max int) int {
	n := 0
	for n < max {
		in, ok := f.c.TryBeginUnpacking()
		if !ok {
			break
		}
		p.Consume(model.FMCost)
		h := in.Unpack(1, madapi.ReceiveExpress)
		data := in.Unpack(f.peekLen(in), madapi.ReceiveCheaper)
		in.EndUnpacking()
		if fn, ok := f.handlers[int(h[0])]; ok {
			fn(p, in.Src(), data)
			n++
		}
	}
	return n
}

// peekLen returns the payload segment size of the fixed two-segment FM
// format; circuit in-messages expose their segment sizes.
func (f *FM) peekLen(in madapi.InMessage) int {
	type segLener interface{ NextSegLen() int }
	if sl, ok := in.(segLener); ok {
		return sl.NextSegLen()
	}
	panic("personality/fm: transport does not expose segment lengths")
}

// ---------------------------------------------------------------------
// VMad: virtual Madeleine over Circuit.

// VMad exposes a Circuit as a madapi.Channel, charging only the thin
// personality cost — this is how MPICH/Madeleine runs unchanged inside
// PadicoTM: same Madeleine API, Circuit underneath (§4.3).
type VMad struct {
	c *circuit.Circuit
	k *vtime.Kernel
}

// NewVMad builds the virtual Madeleine personality.
func NewVMad(k *vtime.Kernel, c *circuit.Circuit) *VMad { return &VMad{c: c, k: k} }

var _ madapi.Channel = (*VMad)(nil)

// Self implements madapi.Channel.
func (v *VMad) Self() int { return v.c.Self() }

// Size implements madapi.Channel.
func (v *VMad) Size() int { return v.c.Size() }

// BeginPacking implements madapi.Channel. Personalities adapt syntax
// only (§3.3); their cost is absorbed in the middleware constants.
func (v *VMad) BeginPacking(dst int) madapi.OutMessage {
	return v.c.BeginPacking(dst)
}

// BeginUnpacking implements madapi.Channel.
func (v *VMad) BeginUnpacking(p *vtime.Proc) madapi.InMessage {
	return v.c.BeginUnpacking(p)
}

// TryBeginUnpacking implements madapi.Channel.
func (v *VMad) TryBeginUnpacking() (madapi.InMessage, bool) {
	return v.c.TryBeginUnpacking()
}

// Circuit returns the underlying circuit (for collectives).
func (v *VMad) Circuit() *circuit.Circuit { return v.c }
