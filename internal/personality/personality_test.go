package personality_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"padico/internal/circuit"
	"padico/internal/madapi"
	"padico/internal/personality"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// loopLink builds a connected VLink pair over the loopback driver.
func loopLink(t *testing.T, k *vtime.Kernel, p *vtime.Proc) (*vlink.VLink, *vlink.VLink) {
	t.Helper()
	ep := vlink.NewEndpoint(topology.NodeID(0))
	ep.AddDriver(vlink.NewLoopbackDriver(k, 0))
	ln, err := ep.Listen("loopback", 1)
	if err != nil {
		t.Fatal(err)
	}
	acc := vtime.NewQueue[*vlink.VLink]("acc")
	ln.SetAcceptHandler(func(v *vlink.VLink) { acc.Push(v) })
	va, err := ep.ConnectWait(p, "loopback", vlink.Addr{Node: 0, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	return va, acc.Pop(p)
}

func TestVioSendRecv(t *testing.T) {
	k := vtime.NewKernel()
	if err := k.Run(func(p *vtime.Proc) {
		va, vb := loopLink(t, k, p)
		a := personality.NewVio(k, va)
		b := personality.NewVio(k, vb)
		done := vtime.NewWaitGroup("d")
		done.Add(1)
		k.Go("peer", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, 5)
			if _, err := b.RecvFull(q, buf); err != nil || string(buf) != "hello" {
				t.Errorf("recv %q %v", buf, err)
			}
			b.Send(q, []byte("world"))
		})
		a.Send(p, []byte("hello"))
		buf := make([]byte, 5)
		a.RecvFull(p, buf)
		if string(buf) != "world" {
			t.Errorf("got %q", buf)
		}
		a.Close()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSysWrapIsAStandardStream(t *testing.T) {
	k := vtime.NewKernel()
	if err := k.Run(func(p *vtime.Proc) {
		va, vb := loopLink(t, k, p)
		done := vtime.NewWaitGroup("d")
		done.Add(1)
		k.Go("peer", func(q *vtime.Proc) {
			defer done.Done()
			// "Legacy" code sees only io.ReadWriteCloser.
			var rw io.ReadWriteCloser = personality.WrapConn(q, vb)
			data, err := io.ReadAll(rw)
			if err != nil || string(data) != "legacy payload" {
				t.Errorf("ReadAll = %q, %v", data, err)
			}
		})
		var rw io.ReadWriteCloser = personality.WrapConn(p, va)
		io.Copy(rw, bytes.NewReader([]byte("legacy payload")))
		rw.Close()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAioPostPollSuspend(t *testing.T) {
	k := vtime.NewKernel()
	if err := k.Run(func(p *vtime.Proc) {
		va, vb := loopLink(t, k, p)
		a := personality.NewAio(k, va)
		b := personality.NewAio(k, vb)

		wcb := &personality.Aiocb{Buf: []byte("async!")}
		a.Write(wcb)
		rcb := &personality.Aiocb{Buf: make([]byte, 6)}
		b.Read(rcb)
		if err := a.Error(rcb); err == nil {
			// may or may not be complete yet; both are legal, just exercise
			_ = err
		}
		b.Suspend(p, rcb)
		if err := b.Error(rcb); err != nil {
			t.Fatalf("aio_error after suspend = %v", err)
		}
		n, err := b.Return(rcb)
		if err != nil || n != 6 || string(rcb.Buf) != "async!" {
			t.Fatalf("aio_return = %d, %v, %q", n, err, rcb.Buf)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// fmPair builds two circuits joined by loopback-ish stream links.
func TestFMHandlersAndVMad(t *testing.T) {
	k := vtime.NewKernel()
	group := []topology.NodeID{0}
	c := circuit.New(k, "fm", 0, group)
	c.SetLink(0, circuit.NewLoopbackLink(k, c, 0))
	if err := k.Run(func(p *vtime.Proc) {
		fm := personality.NewFM(c)
		var got []byte
		fm.RegisterHandler(3, func(q *vtime.Proc, src int, data []byte) {
			got = append([]byte(nil), data...)
		})
		fm.Send(0, 3, []byte("fast message"))
		p.Sleep(time.Millisecond)
		if n := fm.Extract(p, 10); n != 1 {
			t.Fatalf("extract = %d", n)
		}
		if string(got) != "fast message" {
			t.Fatalf("got %q", got)
		}

		// VMad exposes the same circuit through the madapi.Channel shape.
		vm := personality.NewVMad(k, c)
		if vm.Self() != 0 || vm.Size() != 1 {
			t.Fatal("vmad identity wrong")
		}
		out := vm.BeginPacking(0)
		out.Pack([]byte("via vmad"), madapi.SendSafer)
		out.EndPacking()
		in := vm.BeginUnpacking(p)
		if string(in.Unpack(8, madapi.ReceiveCheaper)) != "via vmad" {
			t.Fatal("vmad payload corrupted")
		}
		in.EndUnpacking()
	}); err != nil {
		t.Fatal(err)
	}
}
