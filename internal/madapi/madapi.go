// Package madapi defines the Madeleine programming interface: channels
// over a static group of nodes, incremental message packing with
// explicit semantics (paper §2.3, §4.2). Two implementations exist:
// the real portability layer (internal/madeleine) directly over SAN
// drivers, and the "virtual Madeleine" personality
// (internal/personality/vmad) over Circuit — which is how the existing
// MPICH/Madeleine runs unchanged inside PadicoTM (paper §4.3).
package madapi

import "padico/internal/vtime"

// PackMode expresses the sender-side constraint of a packed segment.
type PackMode int

const (
	// SendSafer: the buffer may be reused by the caller immediately
	// (the layer copies it).
	SendSafer PackMode = iota
	// SendLater: the buffer must remain valid until EndPacking.
	SendLater
	// SendCheaper: the layer chooses the cheapest strategy; the buffer
	// must remain valid until EndPacking.
	SendCheaper
)

// UnpackMode expresses the receiver-side constraint of a segment.
type UnpackMode int

const (
	// ReceiveExpress: the data is needed immediately to make progress
	// (typically headers); it must be available when Unpack returns.
	ReceiveExpress UnpackMode = iota
	// ReceiveCheaper: the data may arrive as late as EndUnpacking.
	// After a ReceiveCheaper unpack, no ReceiveExpress may follow
	// (Madeleine's incremental-packing rule).
	ReceiveCheaper
)

// Channel is a Madeleine communication channel over a definite group of
// nodes. Ranks index the group.
type Channel interface {
	// Self returns this node's rank in the channel's group.
	Self() int
	// Size returns the group size.
	Size() int
	// BeginPacking starts an outgoing message to dst (a rank).
	BeginPacking(dst int) OutMessage
	// BeginUnpacking blocks until a message is available and starts
	// unpacking it.
	BeginUnpacking(p *vtime.Proc) InMessage
	// TryBeginUnpacking is the non-blocking variant.
	TryBeginUnpacking() (InMessage, bool)
}

// OutMessage is an outgoing message being packed.
type OutMessage interface {
	// Pack appends one segment with the given semantics.
	Pack(data []byte, mode PackMode)
	// EndPacking flushes the message to the network.
	EndPacking()
}

// InMessage is an incoming message being unpacked.
type InMessage interface {
	// Src returns the sender's rank.
	Src() int
	// Unpack extracts the next segment, which must have exactly n bytes
	// (segment boundaries are part of the protocol contract).
	Unpack(n int, mode UnpackMode) []byte
	// EndUnpacking finishes the message; every packed segment must have
	// been unpacked.
	EndUnpacking()
	// Discard consumes whatever segments remain and finishes the
	// message without inspecting them — for receivers that released the
	// endpoint the message was addressed to (failure recovery drops
	// late traffic instead of violating the unpack protocol).
	Discard()
}
