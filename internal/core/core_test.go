package core_test

import (
	"errors"
	"testing"
	"time"

	"padico/internal/core"
	"padico/internal/ipstack"
	"padico/internal/topology"
	"padico/internal/vtime"
)

type fakeModule string

func (m fakeModule) ModuleName() string { return string(m) }

func newRT(k *vtime.Kernel) *core.Runtime {
	g := topology.New()
	node := g.AddNode("n0", "site")
	st := ipstack.New(k)
	return core.NewRuntime(k, node, st.Host(node.ID))
}

func TestModuleRegistry(t *testing.T) {
	k := vtime.NewKernel()
	rt := newRT(k)
	if err := rt.RegisterModule(fakeModule("mpi")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterModule(fakeModule("omniorb4")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterModule(fakeModule("mpi")); !errors.Is(err, core.ErrDupModule) {
		t.Fatalf("dup register err = %v", err)
	}
	if m, err := rt.ModuleByName("mpi"); err != nil || m.ModuleName() != "mpi" {
		t.Fatalf("lookup = %v, %v", m, err)
	}
	if _, err := rt.ModuleByName("ghost"); !errors.Is(err, core.ErrNoModule) {
		t.Fatalf("missing lookup err = %v", err)
	}
	if n := len(rt.Modules()); n != 2 {
		t.Fatalf("modules = %d", n)
	}
	// Drain the runtime's I/O manager daemon cleanly.
	if err := k.Run(func(p *vtime.Proc) { p.Sleep(time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalChannelAllocationIsSequential(t *testing.T) {
	k := vtime.NewKernel()
	rt := newRT(k)
	a := rt.AllocLogical()
	b := rt.AllocLogical()
	if b != a+1 {
		t.Fatalf("allocation not sequential: %d then %d", a, b)
	}
	if err := k.Run(func(p *vtime.Proc) {}); err != nil {
		t.Fatal(err)
	}
}

func TestMadRankLookup(t *testing.T) {
	k := vtime.NewKernel()
	g := topology.New()
	nw := g.AddNetwork("myri", topology.Myrinet, true, 250e6, time.Microsecond, 0, 0)
	n0 := g.AddNode("n0", "s")
	n1 := g.AddNode("n1", "s")
	g.Attach(n0, nw)
	g.Attach(n1, nw)
	st := ipstack.New(k)
	rt := core.NewRuntime(k, n0, st.Host(n0.ID))
	rt.AttachMadIO(nw, nil, []topology.NodeID{n0.ID, n1.ID})
	if r, ok := rt.MadRank(nw, n1.ID); !ok || r != 1 {
		t.Fatalf("MadRank = %d, %v", r, ok)
	}
	if _, ok := rt.MadRank(nw, topology.NodeID(99)); ok {
		t.Fatal("unknown node resolved")
	}
	if ms := rt.Members(nw); len(ms) != 2 {
		t.Fatalf("members = %v", ms)
	}
	if err := k.Run(func(p *vtime.Proc) {}); err != nil {
		t.Fatal(err)
	}
}
