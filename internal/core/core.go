// Package core assembles the PadicoTM runtime of one grid node: the
// arbitration layer (NetAccess with MadIO instances per SAN fabric and
// one SysIO), the abstraction layer endpoints (VLink; Circuits are
// created on demand), and a module registry through which middleware
// systems are loaded into the process — the paper's "middleware systems
// are dynamically loadable into PadicoTM, arbitration guarantees that
// any combination of them may be used at the same time" (§4.3).
//
// The paper's other runtime concerns (dynamic code loading, threading,
// Unix signals) are host-language issues that Go's runtime subsumes;
// the registry keeps the same lifecycle shape (init/start/stop).
package core

import (
	"errors"
	"fmt"
	"sort"

	"padico/internal/ipstack"
	"padico/internal/netaccess"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrDupModule = errors.New("core: module already registered")
	ErrNoModule  = errors.New("core: no such module")
)

// Module is a middleware system (or service) loaded into a node's
// runtime.
type Module interface {
	// ModuleName identifies the module ("mpi", "omniorb4", "gsoap"...).
	ModuleName() string
}

// Runtime is one node's PadicoTM process.
type Runtime struct {
	k    *vtime.Kernel
	node *topology.Node

	NA    *netaccess.NetAccess
	Sys   *netaccess.SysIO
	MadIO map[*topology.Network]*netaccess.MadIO
	VLink *vlink.Endpoint
	Host  *ipstack.Host

	// ranks maps each SAN network to this node's Madeleine group
	// (ordered fabric addresses of all members).
	groups map[*topology.Network][]topology.NodeID

	modules     map[string]Module
	nextLogical uint16
}

// NewRuntime builds the runtime skeleton for a node; fabrics and
// drivers are attached by the grid builder.
func NewRuntime(k *vtime.Kernel, node *topology.Node, host *ipstack.Host) *Runtime {
	na := netaccess.New(k, node.Name)
	rt := &Runtime{
		k: k, node: node,
		NA:          na,
		Sys:         netaccess.NewSysIO(na),
		MadIO:       make(map[*topology.Network]*netaccess.MadIO),
		VLink:       vlink.NewEndpoint(node.ID),
		Host:        host,
		groups:      make(map[*topology.Network][]topology.NodeID),
		modules:     make(map[string]Module),
		nextLogical: 1000,
	}
	return rt
}

// Kernel returns the simulation kernel.
func (rt *Runtime) Kernel() *vtime.Kernel { return rt.k }

// Node returns the topology node.
func (rt *Runtime) Node() *topology.Node { return rt.node }

// AttachMadIO records a MadIO instance for a SAN network along with the
// member list (rank order).
func (rt *Runtime) AttachMadIO(nw *topology.Network, mio *netaccess.MadIO, members []topology.NodeID) {
	rt.MadIO[nw] = mio
	rt.groups[nw] = members
}

// MadRank returns this node's or another node's Madeleine rank on a SAN
// network.
func (rt *Runtime) MadRank(nw *topology.Network, n topology.NodeID) (int, bool) {
	for r, m := range rt.groups[nw] {
		if m == n {
			return r, true
		}
	}
	return 0, false
}

// Members returns the rank-ordered members of a SAN network.
func (rt *Runtime) Members(nw *topology.Network) []topology.NodeID { return rt.groups[nw] }

// AllocLogical allocates a fresh MadIO logical channel id. Allocation
// is deterministic and must be performed in the same order on every
// node that shares the channel (the builder guarantees this).
func (rt *Runtime) AllocLogical() uint16 {
	rt.nextLogical++
	return rt.nextLogical
}

// RegisterModule loads a middleware module into the runtime.
func (rt *Runtime) RegisterModule(m Module) error {
	name := m.ModuleName()
	if _, dup := rt.modules[name]; dup {
		return fmt.Errorf("%w: %s", ErrDupModule, name)
	}
	rt.modules[name] = m
	return nil
}

// ModuleByName retrieves a loaded module.
func (rt *Runtime) ModuleByName(name string) (Module, error) {
	m, ok := rt.modules[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoModule, name)
	}
	return m, nil
}

// Modules lists loaded module names, sorted — map iteration order must
// never leak into observable output (repo determinism rule; padico-demo
// prints this list).
func (rt *Runtime) Modules() []string {
	out := make([]string, 0, len(rt.modules))
	for n := range rt.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var _ = vtime.Time(0)
