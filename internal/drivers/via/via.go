// Package via emulates the Virtual Interface Architecture: VI endpoints
// with descriptor-based send and receive queues and completion
// notification. A send consumes a pre-posted receive descriptor on the
// remote VI — if none is posted the message is dropped (VIA's
// "reliability level" Unreliable Delivery; the layer above manages
// credits, as Madeleine's VIA backend does here).
package via

import (
	"errors"
	"fmt"

	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/vtime"
)

// ErrQueueEmpty is returned by a completion poll with no completions.
var ErrQueueEmpty = errors.New("via: completion queue empty")

// Completion describes a finished receive.
type Completion struct {
	SrcAddr int
	SrcVI   int
	Data    []byte // filled receive buffer, trimmed to message length
}

type header struct {
	dstVI int
	srcVI int
	last  bool // final chunk of the message
}

const headerWire = 12

// NIC is the per-node VIA instance.
type NIC struct {
	k    *vtime.Kernel
	xb   *netsim.Crossbar
	addr int
	vis  map[int]*VI

	MsgsSent int64
	MsgsRecv int64
	Dropped  int64 // messages that found no posted receive descriptor
}

// Open attaches a VIA NIC to a crossbar address.
func Open(k *vtime.Kernel, xb *netsim.Crossbar, addr int) *NIC {
	n := &NIC{k: k, xb: xb, addr: addr, vis: make(map[int]*VI)}
	xb.Attach(addr, n.deliver)
	return n
}

// Addr returns the NIC's address.
func (n *NIC) Addr() int { return n.addr }

func (n *NIC) deliver(pkt *netsim.Packet) {
	h := pkt.Meta.(*header)
	vi, ok := n.vis[h.dstVI]
	if !ok {
		n.Dropped++
		return
	}
	vi.receive(pkt.Src, h.srcVI, pkt.Payload, h.last)
}

// VI is one virtual interface (endpoint) with its descriptor queues.
type VI struct {
	nic     *NIC
	id      int
	recvQ   []([]byte) // posted receive buffers, FIFO
	handler func(Completion)
	cq      []Completion
	pending *pendingMsg // chunks of the in-flight message (per-source FIFO)
}

// CreateVI creates virtual interface id on the NIC.
func (n *NIC) CreateVI(id int) *VI {
	if _, dup := n.vis[id]; dup {
		panic(fmt.Sprintf("via: VI %d created twice on %d", id, n.addr))
	}
	vi := &VI{nic: n, id: id}
	n.vis[id] = vi
	return vi
}

// ID returns the VI number.
func (vi *VI) ID() int { return vi.id }

// PostRecv posts a receive buffer descriptor. Buffers complete in FIFO
// order; an arriving message larger than the posted buffer is truncated
// (as VIA specifies).
func (vi *VI) PostRecv(buf []byte) { vi.recvQ = append(vi.recvQ, buf) }

// PostedRecvs returns the number of posted, unconsumed receive buffers.
func (vi *VI) PostedRecvs() int { return len(vi.recvQ) }

// SetHandler installs a completion callback (kernel context); without
// one, completions accumulate on the completion queue for PollCQ.
func (vi *VI) SetHandler(fn func(Completion)) { vi.handler = fn }

// PollCQ pops one completion, or ErrQueueEmpty.
func (vi *VI) PollCQ() (Completion, error) {
	if len(vi.cq) == 0 {
		return Completion{}, ErrQueueEmpty
	}
	c := vi.cq[0]
	vi.cq = vi.cq[1:]
	return c, nil
}

// PostSend transmits data to (dstAddr, dstVI). The descriptor is
// processed after the host cost; delivery consumes one remote posted
// receive.
func (vi *VI) PostSend(dstAddr, dstVI int, data []byte) {
	vi.nic.MsgsSent++
	n := vi.nic
	n.k.Schedule(model.VIAHostCost, func() {
		for off := 0; off < len(data) || off == 0; off += model.MyrinetPacket {
			end := off + model.MyrinetPacket
			if end > len(data) {
				end = len(data)
			}
			chunk := data[off:end]
			n.xb.Send(&netsim.Packet{
				Src: n.addr, Dst: dstAddr,
				Payload: chunk, Wire: len(chunk) + headerWire,
				Meta: &header{dstVI: dstVI, srcVI: vi.id, last: end == len(data)},
			})
			if end == len(data) {
				break
			}
		}
	})
}

// receive gathers chunks (the crossbar preserves per-source FIFO order)
// and, on the final chunk, consumes the head posted receive descriptor.
func (vi *VI) receive(src, srcVI int, chunk []byte, last bool) {
	if len(vi.recvQ) == 0 && vi.pending == nil {
		vi.nic.Dropped++
		return
	}
	cur := vi.pending
	if cur == nil {
		cur = &pendingMsg{src: src, srcVI: srcVI}
		vi.pending = cur
	}
	cur.data = append(cur.data, chunk...)
	if !last {
		return
	}
	vi.pending = nil
	if len(vi.recvQ) == 0 {
		vi.nic.Dropped++
		return
	}
	buf := vi.recvQ[0]
	vi.recvQ = vi.recvQ[1:]
	data := cur.data
	if len(data) > len(buf) {
		data = data[:len(buf)] // truncate to posted buffer
	}
	n := copy(buf, data)
	vi.nic.MsgsRecv++
	comp := Completion{SrcAddr: cur.src, SrcVI: cur.srcVI, Data: buf[:n]}
	vi.nic.k.Schedule(model.VIAHostCost, func() {
		if vi.handler != nil {
			vi.handler(comp)
			return
		}
		vi.cq = append(vi.cq, comp)
	})
}

type pendingMsg struct {
	src, srcVI int
	data       []byte
}
