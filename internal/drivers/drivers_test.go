// Package drivers_test exercises the four vendor-style SAN drivers
// against the crossbar fabrics.
package drivers_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"padico/internal/drivers/bip"
	"padico/internal/drivers/gm"
	"padico/internal/drivers/sisci"
	"padico/internal/drivers/via"
	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func myrinet(k *vtime.Kernel) *netsim.Crossbar {
	return netsim.NewCrossbar(k, topology.Myrinet, model.MyrinetRate,
		model.MyrinetPktOverhd, model.MyrinetWireLat)
}

func sciFabric(k *vtime.Kernel) *netsim.Crossbar {
	return netsim.NewCrossbar(k, topology.SCI, model.SCIRate, 300*time.Nanosecond, model.SCIWireLat)
}

// --- GM ---------------------------------------------------------------

func TestGMRoundTripLatency(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := gm.OpenNIC(k, xb, 0)
	n1 := gm.OpenNIC(k, xb, 1)
	p0, _ := n0.OpenPort(0)
	p1, _ := n1.OpenPort(0)
	var oneway time.Duration
	if err := k.Run(func(p *vtime.Proc) {
		got := vtime.NewQueue[gm.RecvEvent]("rx0")
		p0.SetHandler(func(ev gm.RecvEvent) { got.Push(ev) })
		p1.SetHandler(func(ev gm.RecvEvent) { p1.Send(ev.SrcAddr, ev.SrcPort, ev.Data) })
		const rounds = 100
		start := p.Now()
		for i := 0; i < rounds; i++ {
			p0.Send(1, 0, []byte{1})
			got.Pop(p)
		}
		oneway = p.Now().Sub(start) / (2 * rounds)
	}); err != nil {
		t.Fatal(err)
	}
	// GM one-way for tiny messages: 2×1.5 µs host + 2 µs wire + packet
	// overhead ≈ 5.7 µs.
	if oneway < 4500*time.Nanosecond || oneway > 7*time.Microsecond {
		t.Fatalf("GM one-way latency = %v, want ~5-6 µs", oneway)
	}
}

func TestGMBandwidthNearWireRate(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := gm.OpenNIC(k, xb, 0)
	n1 := gm.OpenNIC(k, xb, 1)
	p0, _ := n0.OpenPort(0)
	p1, _ := n1.OpenPort(0)
	var rate float64
	if err := k.Run(func(p *vtime.Proc) {
		acks := vtime.NewQueue[struct{}]("acks")
		p0.SetHandler(func(gm.RecvEvent) { acks.Push(struct{}{}) })
		p1.SetHandler(func(ev gm.RecvEvent) { p1.Send(0, 0, []byte{1}) })
		const msgs, size = 32, 1 << 20
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < msgs; i++ {
			p0.Send(1, 0, buf)
			acks.Pop(p)
		}
		rate = float64(msgs*size) / p.Now().Sub(start).Seconds()
	}); err != nil {
		t.Fatal(err)
	}
	// Effective wire rate with per-packet overhead is ~240 MB/s.
	if rate < 230e6 || rate > 245e6 {
		t.Fatalf("GM bandwidth = %.4g MB/s, want ~240", rate/1e6)
	}
}

func TestGMPortLimitIsHardwareLimit(t *testing.T) {
	k := vtime.NewKernel()
	n := gm.OpenNIC(k, myrinet(k), 0)
	if _, err := n.OpenPort(0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenPort(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenPort(2); err == nil {
		t.Fatal("port beyond MyrinetHWChannels opened")
	}
	if _, err := n.OpenPort(0); err == nil {
		t.Fatal("duplicate port opened")
	}
}

func TestGMScatterGatherSend(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := gm.OpenNIC(k, xb, 0)
	n1 := gm.OpenNIC(k, xb, 1)
	p0, _ := n0.OpenPort(0)
	p1, _ := n1.OpenPort(1)
	var got []byte
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[[]byte]("rx")
		p1.SetHandler(func(ev gm.RecvEvent) { q.Push(ev.Data) })
		p0.Send(1, 1, []byte("head|"), []byte("body|"), []byte("tail"))
		got = q.Pop(p)
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "head|body|tail" {
		t.Fatalf("got %q", got)
	}
}

// Property: GM delivers any mix of message sizes intact and in order.
func TestQuickGMIntegrity(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		rnd := rand.New(rand.NewSource(seed))
		msgs := make([][]byte, len(sizes))
		for i, s := range sizes {
			msgs[i] = make([]byte, int(s)%20000+1)
			rnd.Read(msgs[i])
		}
		k := vtime.NewKernel()
		xb := myrinet(k)
		n0 := gm.OpenNIC(k, xb, 0)
		n1 := gm.OpenNIC(k, xb, 1)
		p0, _ := n0.OpenPort(0)
		p1, _ := n1.OpenPort(0)
		ok := true
		err := k.Run(func(p *vtime.Proc) {
			q := vtime.NewQueue[[]byte]("rx")
			p1.SetHandler(func(ev gm.RecvEvent) { q.Push(ev.Data) })
			for _, m := range msgs {
				p0.Send(1, 0, m)
			}
			for _, want := range msgs {
				if !bytes.Equal(q.Pop(p), want) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- BIP --------------------------------------------------------------

func TestBIPEagerShortMessages(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	e0 := bip.Open(k, xb, 0)
	e1 := bip.Open(k, xb, 1)
	var got []byte
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[[]byte]("rx")
		e1.SetHandler(func(ev bip.RecvEvent) { q.Push(ev.Data) })
		e0.Send(1, []byte("short")) // below eager limit: no PostRecv needed
		got = q.Pop(p)
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "short" || e0.Rendezvous != 0 {
		t.Fatalf("got %q, rendezvous=%d", got, e0.Rendezvous)
	}
}

func TestBIPRendezvousWaitsForPostedRecv(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	e0 := bip.Open(k, xb, 0)
	e1 := bip.Open(k, xb, 1)
	long := make([]byte, 100000)
	rand.New(rand.NewSource(5)).Read(long)
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[[]byte]("rx")
		e1.SetHandler(func(ev bip.RecvEvent) { q.Push(ev.Data) })
		e0.Send(1, long)
		// Without a posted receive the payload must not arrive.
		if _, ok := q.PopTimeout(p, 10*time.Millisecond); ok {
			t.Error("rendezvous payload arrived before PostRecv")
		}
		e1.PostRecv()
		got := q.Pop(p)
		if !bytes.Equal(got, long) {
			t.Error("payload corrupted")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if e0.Rendezvous != 1 {
		t.Fatalf("rendezvous count = %d", e0.Rendezvous)
	}
}

func TestBIPManyLongMessagesFIFO(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	e0 := bip.Open(k, xb, 0)
	e1 := bip.Open(k, xb, 1)
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[[]byte]("rx")
		e1.SetHandler(func(ev bip.RecvEvent) { q.Push(ev.Data) })
		for i := 0; i < 5; i++ {
			e1.PostRecv()
			msg := make([]byte, 5000)
			msg[0] = byte(i)
			e0.Send(1, msg)
		}
		for i := 0; i < 5; i++ {
			got := q.Pop(p)
			if got[0] != byte(i) || len(got) != 5000 {
				t.Errorf("message %d out of order or truncated", i)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// --- SISCI ------------------------------------------------------------

func TestSISCIRemoteWriteAndInterrupt(t *testing.T) {
	k := vtime.NewKernel()
	xb := sciFabric(k)
	n0 := sisci.Open(k, xb, 0)
	n1 := sisci.Open(k, xb, 1)
	seg := n1.CreateSegment(7, 4096)
	if err := k.Run(func(p *vtime.Proc) {
		intr := vtime.NewQueue[int]("intr")
		n1.RegisterInterrupt(3, func(src int) { intr.Push(src) })
		rs := n0.Connect(1, 7, 4096)
		if err := rs.Write(100, []byte("sci remote store")); err != nil {
			t.Fatal(err)
		}
		rs.TriggerInterrupt(3)
		src := intr.Pop(p)
		if src != 0 {
			t.Errorf("interrupt src = %d", src)
		}
		// FIFO ordering: by interrupt time the store is visible.
		if string(seg.Mem[100:116]) != "sci remote store" {
			t.Errorf("segment = %q", seg.Mem[100:116])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSISCIBoundsChecked(t *testing.T) {
	k := vtime.NewKernel()
	xb := sciFabric(k)
	n0 := sisci.Open(k, xb, 0)
	n1 := sisci.Open(k, xb, 1)
	n1.CreateSegment(1, 128)
	if err := k.Run(func(p *vtime.Proc) {
		rs := n0.Connect(1, 1, 128)
		if err := rs.Write(120, make([]byte, 16)); err == nil {
			t.Error("out-of-bounds write accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// --- VIA --------------------------------------------------------------

func TestVIADescriptorFlow(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := via.Open(k, xb, 0)
	n1 := via.Open(k, xb, 1)
	v0 := n0.CreateVI(0)
	v1 := n1.CreateVI(0)
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[via.Completion]("cq")
		v1.SetHandler(func(c via.Completion) { q.Push(c) })
		v1.PostRecv(make([]byte, 8192))
		v0.PostSend(1, 0, []byte("via message"))
		c := q.Pop(p)
		if string(c.Data) != "via message" || c.SrcAddr != 0 {
			t.Errorf("completion = %+v", c)
		}
		if v1.PostedRecvs() != 0 {
			t.Errorf("descriptor not consumed")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVIADropWithoutDescriptor(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := via.Open(k, xb, 0)
	n1 := via.Open(k, xb, 1)
	v0 := n0.CreateVI(0)
	n1.CreateVI(0)
	if err := k.Run(func(p *vtime.Proc) {
		v0.PostSend(1, 0, []byte("doomed"))
		p.Sleep(time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if n1.Dropped == 0 {
		t.Fatal("message without posted receive was not dropped")
	}
}

func TestVIAMultiPacketMessage(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := via.Open(k, xb, 0)
	n1 := via.Open(k, xb, 1)
	v0 := n0.CreateVI(0)
	v1 := n1.CreateVI(0)
	msg := make([]byte, model.MyrinetPacket*3) // exact multiple: boundary case
	rand.New(rand.NewSource(9)).Read(msg)
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[via.Completion]("cq")
		v1.SetHandler(func(c via.Completion) { q.Push(c) })
		v1.PostRecv(make([]byte, len(msg)))
		v0.PostSend(1, 0, msg)
		c := q.Pop(p)
		if !bytes.Equal(c.Data, msg) {
			t.Error("multi-packet message corrupted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVIATruncationToPostedBuffer(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := via.Open(k, xb, 0)
	n1 := via.Open(k, xb, 1)
	v0 := n0.CreateVI(0)
	v1 := n1.CreateVI(0)
	if err := k.Run(func(p *vtime.Proc) {
		q := vtime.NewQueue[via.Completion]("cq")
		v1.SetHandler(func(c via.Completion) { q.Push(c) })
		v1.PostRecv(make([]byte, 4))
		v0.PostSend(1, 0, []byte("longer than four"))
		c := q.Pop(p)
		if string(c.Data) != "long" {
			t.Errorf("truncated data = %q", c.Data)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVIAPollCQWithoutHandler(t *testing.T) {
	k := vtime.NewKernel()
	xb := myrinet(k)
	n0 := via.Open(k, xb, 0)
	n1 := via.Open(k, xb, 1)
	v0 := n0.CreateVI(0)
	v1 := n1.CreateVI(0)
	if err := k.Run(func(p *vtime.Proc) {
		if _, err := v1.PollCQ(); err == nil {
			t.Error("PollCQ on empty queue succeeded")
		}
		v1.PostRecv(make([]byte, 64))
		v0.PostSend(1, 0, []byte("polled"))
		p.Sleep(time.Millisecond)
		c, err := v1.PollCQ()
		if err != nil || string(c.Data) != "polled" {
			t.Errorf("PollCQ = %v, %v", c, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
