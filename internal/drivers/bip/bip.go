// Package bip emulates the BIP protocol for Myrinet (Prylli &
// Tourancheau, PC-NOW'98): an eager path for short messages and a
// rendezvous (RTS/CTS) path for long ones, where the payload leaves the
// sender only once the receiver has posted a matching receive buffer.
// BIP is the alternative Myrinet system-level driver next to GM in the
// paper's inventory (§7).
package bip

import (
	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/vtime"
)

// RecvEvent is one received message.
type RecvEvent struct {
	SrcAddr int
	Data    []byte
}

// Handler consumes receive events in kernel context.
type Handler func(ev RecvEvent)

type kind int

const (
	kEager kind = iota
	kRTS
	kCTS
	kData
)

type header struct {
	kind  kind
	msgID int64
	size  int
}

const headerWire = 12

// Endpoint is the per-node BIP instance: a single logical channel per
// NIC (BIP has no port multiplexing — another reason arbitration is
// needed above it).
type Endpoint struct {
	k       *vtime.Kernel
	xb      *netsim.Crossbar
	addr    int
	handler Handler
	nextMsg int64

	credits  int                         // posted receive slots
	pendingR map[int64]pendingRendezvous // msgID -> deferred long send (sender side)
	waitCTS  []int64                     // FIFO of msgIDs awaiting credits (receiver side)
	rtsSrcs  map[int64]int               // msgID -> source addr of pending RTS (receiver side)
	longBufs map[int64]*longAsm          // msgID -> reassembly (receiver side)

	MsgsSent   int64
	MsgsRecv   int64
	Rendezvous int64
}

type pendingRendezvous struct {
	dst  int
	data []byte
}

// Open attaches a BIP endpoint to a crossbar address.
func Open(k *vtime.Kernel, xb *netsim.Crossbar, addr int) *Endpoint {
	e := &Endpoint{
		k: k, xb: xb, addr: addr,
		pendingR: make(map[int64]pendingRendezvous),
	}
	xb.Attach(addr, e.deliver)
	return e
}

// Addr returns the endpoint's crossbar address.
func (e *Endpoint) Addr() int { return e.addr }

// SetHandler installs the receive callback.
func (e *Endpoint) SetHandler(h Handler) { e.handler = h }

// PostRecv grants one receive credit: a long (rendezvous) message can
// complete only against a posted receive. Short messages are eager and
// bypass credits (BIP's implicit small-message buffers).
func (e *Endpoint) PostRecv() {
	e.credits++
	if len(e.waitCTS) > 0 {
		msgID := e.waitCTS[0]
		e.waitCTS = e.waitCTS[1:]
		e.grantCTS(msgID)
	}
}

// Send transmits data to dstAddr: eagerly below model.BIPEagerLimit,
// through RTS/CTS rendezvous above it.
func (e *Endpoint) Send(dstAddr int, data []byte) {
	e.MsgsSent++
	msgID := e.nextMsg
	e.nextMsg++
	if len(data) < model.BIPEagerLimit {
		e.k.Schedule(model.BIPHostCost, func() {
			e.send(dstAddr, &header{kind: kEager, msgID: msgID, size: len(data)}, data)
		})
		return
	}
	e.Rendezvous++
	e.pendingR[msgID] = pendingRendezvous{dst: dstAddr, data: data}
	e.k.Schedule(model.BIPHostCost+model.BIPRendezvousCost, func() {
		e.send(dstAddr, &header{kind: kRTS, msgID: msgID, size: len(data)}, nil)
	})
}

func (e *Endpoint) send(dst int, h *header, payload []byte) {
	e.xb.Send(&netsim.Packet{
		Src: e.addr, Dst: dst,
		Payload: payload, Wire: len(payload) + headerWire,
		Meta: h,
	})
}

func (e *Endpoint) deliver(pkt *netsim.Packet) {
	h := pkt.Meta.(*header)
	switch h.kind {
	case kEager:
		e.complete(pkt.Src, pkt.Payload)
	case kRTS:
		e.rtsFrom(pkt.Src, h.msgID)
	case kCTS:
		p, ok := e.pendingR[h.msgID]
		if !ok {
			return
		}
		delete(e.pendingR, h.msgID)
		// Long payload leaves now, segmented by the crossbar model as one
		// wire unit per hardware packet.
		data := p.data
		for off := 0; off < len(data); off += model.MyrinetPacket {
			end := off + model.MyrinetPacket
			if end > len(data) {
				end = len(data)
			}
			last := end == len(data)
			hk := kData
			seg := data[off:end]
			if last {
				e.send(p.dst, &header{kind: hk, msgID: h.msgID, size: len(data)}, seg)
			} else {
				e.send(p.dst, &header{kind: hk, msgID: h.msgID, size: -1}, seg)
			}
		}
	case kData:
		e.longChunk(pkt.Src, h, pkt.Payload)
	}
}

// longAsm reassembles one rendezvous payload on the receiver.
type longAsm struct {
	buf []byte
}

func (e *Endpoint) rtsFrom(src int, msgID int64) {
	if e.rtsSrcs == nil {
		e.rtsSrcs = make(map[int64]int)
	}
	e.rtsSrcs[msgID] = src
	if e.credits > 0 {
		e.grantCTS(msgID)
		return
	}
	e.waitCTS = append(e.waitCTS, msgID)
}

func (e *Endpoint) grantCTS(msgID int64) {
	e.credits--
	src := e.rtsSrcs[msgID]
	e.k.Schedule(model.BIPRendezvousCost, func() {
		e.send(src, &header{kind: kCTS, msgID: msgID}, nil)
	})
}

func (e *Endpoint) longChunk(src int, h *header, chunk []byte) {
	if e.longBufs == nil {
		e.longBufs = make(map[int64]*longAsm)
	}
	a, ok := e.longBufs[h.msgID]
	if !ok {
		a = &longAsm{}
		e.longBufs[h.msgID] = a
	}
	a.buf = append(a.buf, chunk...)
	if h.size >= 0 && len(a.buf) == h.size { // final chunk carries the size
		delete(e.longBufs, h.msgID)
		delete(e.rtsSrcs, h.msgID)
		e.complete(src, a.buf)
	}
}

func (e *Endpoint) complete(src int, data []byte) {
	e.MsgsRecv++
	ev := RecvEvent{SrcAddr: src, Data: data}
	e.k.Schedule(model.BIPHostCost, func() {
		if e.handler != nil {
			e.handler(ev)
		}
	})
}
