// Package sisci emulates the SISCI API for SCI (IEEE 1596) networks:
// exported memory segments that remote nodes map and write into with
// remote stores, plus remote interrupts for notification. There is no
// message abstraction at this level — messaging (Madeleine's SCI
// backend) is built as a ring buffer in a shared segment, exactly as on
// real SCI hardware.
//
// SCI exposes a single hardware channel (model.SCIHWChannels = 1): one
// more reason the paper's arbitration layer must multiplex.
package sisci

import (
	"errors"
	"fmt"

	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrNoSegment = errors.New("sisci: no such remote segment")
	ErrBounds    = errors.New("sisci: write outside segment bounds")
)

type opKind int

const (
	opWrite opKind = iota
	opInterrupt
)

type op struct {
	kind   opKind
	segID  int
	offset int
	intrNo int
}

const writeHeaderWire = 8

// Node is the per-node SISCI instance on the SCI crossbar.
type Node struct {
	k        *vtime.Kernel
	xb       *netsim.Crossbar
	addr     int
	segments map[int]*Segment
	intrs    map[int]func(src int)

	RemoteWrites int64
	Interrupts   int64
}

// Open attaches a SISCI node to the SCI fabric.
func Open(k *vtime.Kernel, xb *netsim.Crossbar, addr int) *Node {
	n := &Node{
		k: k, xb: xb, addr: addr,
		segments: make(map[int]*Segment),
		intrs:    make(map[int]func(src int)),
	}
	xb.Attach(addr, n.deliver)
	return n
}

// Addr returns the node's SCI address.
func (n *Node) Addr() int { return n.addr }

// Segment is a locally exported memory region remote nodes can write.
type Segment struct {
	ID  int
	Mem []byte
}

// CreateSegment exports a local segment of the given size.
func (n *Node) CreateSegment(id, size int) *Segment {
	if _, dup := n.segments[id]; dup {
		panic(fmt.Sprintf("sisci: segment %d exported twice on node %d", id, n.addr))
	}
	s := &Segment{ID: id, Mem: make([]byte, size)}
	n.segments[id] = s
	return s
}

// RegisterInterrupt installs a handler for remote interrupt intrNo; the
// handler runs in kernel context with the triggering node's address.
func (n *Node) RegisterInterrupt(intrNo int, fn func(src int)) {
	n.intrs[intrNo] = fn
}

func (n *Node) deliver(pkt *netsim.Packet) {
	o := pkt.Meta.(*op)
	switch o.kind {
	case opWrite:
		seg, ok := n.segments[o.segID]
		if !ok {
			return // writes to unknown segments vanish (bus error on real hw)
		}
		if o.offset+len(pkt.Payload) > len(seg.Mem) {
			return
		}
		copy(seg.Mem[o.offset:], pkt.Payload)
		n.RemoteWrites++
	case opInterrupt:
		n.Interrupts++
		if fn, ok := n.intrs[o.intrNo]; ok {
			// Interrupt dispatch costs host CPU.
			src := pkt.Src
			n.k.Schedule(model.SISCIHostCost, func() { fn(src) })
		}
	}
}

// RemoteSegment is a mapped view of a segment exported by another node.
type RemoteSegment struct {
	node   *Node
	dst    int
	segID  int
	size   int
	synced vtime.Time // completion horizon of issued stores
}

// Connect maps remote segment segID on node dst. size must match the
// exporter's (checked by the caller's protocol; SISCI itself trusts it).
func (n *Node) Connect(dst, segID, size int) *RemoteSegment {
	return &RemoteSegment{node: n, dst: dst, segID: segID, size: size}
}

// Write issues remote stores of data at offset. Stores are posted
// (asynchronous); use TriggerInterrupt for notification — SCI orders
// stores and interrupts point-to-point, which the crossbar's per-source
// FIFO guarantees.
func (rs *RemoteSegment) Write(offset int, data []byte) error {
	if offset+len(data) > rs.size {
		return ErrBounds
	}
	// Remote stores stream in PIO chunks.
	const chunk = 512
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		rs.node.xb.Send(&netsim.Packet{
			Src: rs.node.addr, Dst: rs.dst,
			Payload: append([]byte(nil), data[off:end]...),
			Wire:    (end - off) + writeHeaderWire,
			Meta:    &op{kind: opWrite, segID: rs.segID, offset: offset + off},
		})
	}
	return nil
}

// TriggerInterrupt raises remote interrupt intrNo on the mapped node,
// after all previously issued writes (FIFO ordering).
func (rs *RemoteSegment) TriggerInterrupt(intrNo int) {
	rs.node.xb.Send(&netsim.Packet{
		Src: rs.node.addr, Dst: rs.dst,
		Wire: writeHeaderWire,
		Meta: &op{kind: opInterrupt, intrNo: intrNo},
	})
}
