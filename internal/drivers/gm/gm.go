// Package gm emulates Myricom's GM message-passing API for Myrinet:
// ports opened on a NIC, asynchronous sends of arbitrary-size messages
// (segmented into hardware packets), and receive events delivered to a
// registered handler. GM is the primary system-level driver behind
// Madeleine's Myrinet backend (paper §4.1).
//
// Hardware constraints reproduced: a NIC exposes a small fixed number of
// ports (model.MyrinetHWChannels = 2 — this is why MadIO's logical
// multiplexing exists), messages are segmented into 4 KiB packets that
// serialize on the source link, and each message costs host CPU on both
// sides.
package gm

import (
	"errors"
	"fmt"

	"padico/internal/model"
	"padico/internal/netsim"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrNoPort   = errors.New("gm: no free port on NIC (hardware limit)")
	ErrPortBusy = errors.New("gm: port id already open")
)

// RecvEvent is one received message.
type RecvEvent struct {
	SrcAddr int
	SrcPort int
	Data    []byte
}

// Handler consumes receive events in kernel context; it must not block.
type Handler func(ev RecvEvent)

// NIC is the per-node GM instance bound to one crossbar address.
type NIC struct {
	k     *vtime.Kernel
	xb    *netsim.Crossbar
	addr  int
	ports map[int]*Port

	// Stats
	MsgsSent int64
	MsgsRecv int64
}

// packet header modelled structurally (16 bytes charged on the wire).
type pktHeader struct {
	port    int // destination port
	srcPort int
	msgID   int64
	offset  int
	total   int
}

const pktHeaderWire = 16

// OpenNIC attaches GM to a crossbar address. The returned NIC can open
// up to model.MyrinetHWChannels ports.
func OpenNIC(k *vtime.Kernel, xb *netsim.Crossbar, addr int) *NIC {
	n := &NIC{k: k, xb: xb, addr: addr, ports: make(map[int]*Port)}
	xb.Attach(addr, n.deliver)
	return n
}

// Addr returns the NIC's crossbar address.
func (n *NIC) Addr() int { return n.addr }

func (n *NIC) deliver(pkt *netsim.Packet) {
	h := pkt.Meta.(*pktHeader)
	p, ok := n.ports[h.port]
	if !ok {
		return // no such port: hardware drops silently
	}
	p.packet(pkt.Src, h, pkt.Payload)
}

// Port is one hardware communication channel.
type Port struct {
	nic     *NIC
	id      int
	handler Handler
	nextMsg int64
	asm     map[asmKey]*assembly
}

type asmKey struct {
	src   int
	port  int
	msgID int64
}

type assembly struct {
	data []byte
	got  int
}

// OpenPort opens hardware port id (0 <= id < MyrinetHWChannels).
func (n *NIC) OpenPort(id int) (*Port, error) {
	if id < 0 || id >= model.MyrinetHWChannels {
		return nil, ErrNoPort
	}
	if _, dup := n.ports[id]; dup {
		return nil, ErrPortBusy
	}
	p := &Port{nic: n, id: id, asm: make(map[asmKey]*assembly)}
	n.ports[id] = p
	return p, nil
}

// ID returns the port number.
func (p *Port) ID() int { return p.id }

// SetHandler installs the receive callback.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// Close releases the port.
func (p *Port) Close() { delete(p.nic.ports, p.id) }

// Send transmits segments as one message to (dstAddr, dstPort). The
// call is asynchronous: it queues the packets (which serialize on the
// source link) and returns. Host-side CPU cost is modelled as a fixed
// delay before the first packet leaves. Like real GM, the send "DMAs
// from pinned buffers": a single segment is transmitted in place, so
// it must stay untouched until delivery (Madeleine's backends hand
// over freshly framed messages and never reuse them).
func (p *Port) Send(dstAddr, dstPort int, segments ...[]byte) {
	total := 0
	for _, s := range segments {
		total += len(s)
	}
	var data []byte
	if len(segments) == 1 {
		data = segments[0]
	} else {
		data = make([]byte, 0, total)
		for _, s := range segments {
			data = append(data, s...)
		}
	}
	p.nic.MsgsSent++
	msgID := p.nextMsg
	p.nextMsg++
	k := p.nic.k
	// Host injection cost, then packets serialize on the crossbar.
	k.Schedule(model.GMHostCost, func() {
		if total == 0 {
			p.sendPkt(dstAddr, dstPort, msgID, 0, total, nil)
			return
		}
		for off := 0; off < total; off += model.MyrinetPacket {
			end := off + model.MyrinetPacket
			if end > total {
				end = total
			}
			p.sendPkt(dstAddr, dstPort, msgID, off, total, data[off:end])
		}
	})
}

func (p *Port) sendPkt(dstAddr, dstPort int, msgID int64, off, total int, chunk []byte) {
	p.nic.xb.Send(&netsim.Packet{
		Src: p.nic.addr, Dst: dstAddr,
		Payload: chunk, Wire: len(chunk) + pktHeaderWire,
		Meta: &pktHeader{port: dstPort, srcPort: p.id, msgID: msgID, offset: off, total: total},
	})
}

// packet reassembles and, on completion, schedules the receive event
// after the receive-side host cost.
func (p *Port) packet(src int, h *pktHeader, chunk []byte) {
	key := asmKey{src: src, port: h.srcPort, msgID: h.msgID}
	a, ok := p.asm[key]
	if !ok {
		a = &assembly{data: make([]byte, h.total)}
		p.asm[key] = a
	}
	copy(a.data[h.offset:], chunk)
	a.got += len(chunk)
	if a.got < h.total {
		return
	}
	delete(p.asm, key)
	p.nic.MsgsRecv++
	ev := RecvEvent{SrcAddr: src, SrcPort: h.srcPort, Data: a.data}
	p.nic.k.Schedule(model.GMHostCost, func() {
		if p.handler == nil {
			panic(fmt.Sprintf("gm: message arrived on port %d/%d with no handler", p.nic.addr, p.id))
		}
		p.handler(ev)
	})
}
