package mpi

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: float64 vector codecs round-trip.
func TestQuickF64Codec(t *testing.T) {
	f := func(v []float64) bool {
		got := BytesF64(F64Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(v[i] != v[i] && got[i] != got[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: part-list codec (allgather transport) round-trips.
func TestQuickPartsCodec(t *testing.T) {
	f := func(parts [][]byte) bool {
		if len(parts) > 64 {
			return true
		}
		got := decodeParts(encodeParts(parts))
		if len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollTagsDisambiguate(t *testing.T) {
	c := &Comm{}
	seen := make(map[int]bool)
	for op := 0; op < 6; op++ {
		for i := 0; i < 10; i++ {
			tag := c.collTag(op)
			if tag < collTagBase {
				t.Fatalf("collective tag %d below reserved base", tag)
			}
			if seen[tag] {
				t.Fatalf("tag %d minted twice", tag)
			}
			seen[tag] = true
		}
	}
}

func TestOpsCombine(t *testing.T) {
	a := []float64{1, 5, 3}
	Sum(a, []float64{2, 2, 2})
	if a[0] != 3 || a[1] != 7 || a[2] != 5 {
		t.Fatalf("sum = %v", a)
	}
	b := []float64{1, 5, 3}
	Max(b, []float64{2, 2, 2})
	if b[0] != 2 || b[1] != 5 || b[2] != 3 {
		t.Fatalf("max = %v", b)
	}
	c := []float64{1, 5, 3}
	Min(c, []float64{2, 2, 2})
	if c[0] != 1 || c[1] != 2 || c[2] != 2 {
		t.Fatalf("min = %v", c)
	}
}
