// Package mpi implements an MPI subset — the parallel-paradigm
// middleware of the paper's evaluation (MPICH/Madeleine). It is written
// against the Madeleine programming interface (internal/madapi), so the
// same code runs in two configurations, exactly like the original:
//
//   - standalone: directly over a real Madeleine channel;
//   - inside PadicoTM: over the virtual-Madeleine personality on a
//     Circuit (§4.3: "Thanks to the Madeleine personality, the existing
//     MPICH/Madeleine implementation can run in PadicoTM").
//
// Features: blocking and nonblocking point-to-point with tag/source
// matching (wildcards included), unexpected-message queue, and the
// usual collectives (barrier, bcast, reduce, allreduce, gather,
// scatter, allgather, alltoall) built on point-to-point.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/vtime"
)

// Wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved internal tag base for collectives.
const collTagBase = 1 << 20

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a nonblocking operation handle.
type Request struct {
	f *vtime.Future[Status]
}

// Test polls for completion.
func (r *Request) Test() bool { return r.f.Done() }

// Wait blocks until completion.
func (r *Request) Wait(p *vtime.Proc) Status {
	st, _ := r.f.Wait(p)
	return st
}

// envelope is one received, unmatched message.
type envelope struct {
	src  int
	tag  int
	data []byte
}

// pending is one posted receive.
type pending struct {
	src, tag int
	buf      []byte
	req      *Request
}

// Comm is a communicator: one madapi channel = one context.
type Comm struct {
	k    *vtime.Kernel
	ch   madapi.Channel
	rank int
	size int

	posted     []*pending
	unexpected []*envelope

	MsgsSent int64
	MsgsRecv int64
	BytesIn  int64
	BytesOut int64

	collSeq [6]int // per-collective invocation counters (tag disambiguation)
}

// New builds a communicator over a Madeleine-interface channel and
// starts its progress engine. Call once per node per channel.
func New(k *vtime.Kernel, ch madapi.Channel) *Comm {
	c := &Comm{k: k, ch: ch, rank: ch.Self(), size: ch.Size()}
	k.GoDaemon(fmt.Sprintf("mpi-progress:%d", c.rank), c.progress)
	return c
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// progress pulls messages off the channel and matches them.
func (c *Comm) progress(p *vtime.Proc) {
	for {
		in := c.ch.BeginUnpacking(p)
		hdr := in.Unpack(8, madapi.ReceiveExpress)
		tag := int(int32(binary.BigEndian.Uint32(hdr)))
		n := int(binary.BigEndian.Uint32(hdr[4:]))
		var data []byte
		if n > 0 {
			data = in.Unpack(n, madapi.ReceiveCheaper)
		}
		in.EndUnpacking()
		// Receive-side middleware cost.
		p.Consume(model.MPICost + model.MPIPerByte.Cost(n))
		c.MsgsRecv++
		c.BytesIn += int64(n)
		c.match(&envelope{src: in.Src(), tag: tag, data: data})
	}
}

// match delivers an envelope to the first matching posted receive, or
// queues it as unexpected.
func (c *Comm) match(env *envelope) {
	for i, pr := range c.posted {
		if (pr.src == AnySource || pr.src == env.src) && (pr.tag == AnyTag || pr.tag == env.tag) {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			complete(pr, env)
			return
		}
	}
	c.unexpected = append(c.unexpected, env)
}

func complete(pr *pending, env *envelope) {
	n := copy(pr.buf, env.data)
	if len(env.data) > len(pr.buf) {
		panic(fmt.Sprintf("mpi: truncation: message of %d bytes into %d-byte buffer",
			len(env.data), len(pr.buf)))
	}
	pr.req.f.Complete(Status{Source: env.src, Tag: env.tag, Count: n}, nil)
}

// Isend starts a nonblocking send. Completion means the message was
// handed to the transport (buffered semantics).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: rank %d out of range", dst))
	}
	req := &Request{f: vtime.NewFuture[Status]("mpi:isend")}
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr, uint32(int32(tag)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(data)))
	c.MsgsSent++
	c.BytesOut += int64(len(data))
	cost := model.MPICost + model.MPIPerByte.Cost(len(data))
	c.k.Schedule(cost, func() {
		out := c.ch.BeginPacking(dst)
		out.Pack(hdr, madapi.SendSafer)
		if len(data) > 0 {
			out.Pack(data, madapi.SendSafer)
		}
		out.EndPacking()
		req.f.Complete(Status{Source: c.rank, Tag: tag, Count: len(data)}, nil)
	})
	return req
}

// Send is the blocking send.
func (c *Comm) Send(p *vtime.Proc, dst, tag int, data []byte) {
	c.Isend(dst, tag, data).Wait(p)
}

// Irecv posts a nonblocking receive into buf.
func (c *Comm) Irecv(src, tag int, buf []byte) *Request {
	req := &Request{f: vtime.NewFuture[Status]("mpi:irecv")}
	pr := &pending{src: src, tag: tag, buf: buf, req: req}
	// Check the unexpected queue first (FIFO per matching order).
	for i, env := range c.unexpected {
		if (src == AnySource || src == env.src) && (tag == AnyTag || tag == env.tag) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			complete(pr, env)
			return req
		}
	}
	c.posted = append(c.posted, pr)
	return req
}

// Recv is the blocking receive; it returns the completion status.
func (c *Comm) Recv(p *vtime.Proc, src, tag int, buf []byte) Status {
	return c.Irecv(src, tag, buf).Wait(p)
}

// Sendrecv exchanges messages with two peers in one step.
func (c *Comm) Sendrecv(p *vtime.Proc, dst, stag int, sdata []byte,
	src, rtag int, rbuf []byte) Status {
	r := c.Irecv(src, rtag, rbuf)
	c.Isend(dst, stag, sdata)
	return r.Wait(p)
}

// ---------------------------------------------------------------------
// Collectives. Every invocation gets its own tag from a per-type
// sequence counter: MPI requires collectives to be issued in the same
// order on every rank, so the counters agree across ranks and
// concurrent collectives cannot cross-match.

// collTag mints the tag for one collective invocation of type op.
func (c *Comm) collTag(op int) int {
	c.collSeq[op]++
	return collTagBase + op<<12 + (c.collSeq[op] & 0xFFF)
}

// Barrier blocks until all ranks arrive (dissemination).
func (c *Comm) Barrier(p *vtime.Proc) {
	tag := c.collTag(0)
	buf := make([]byte, 1)
	for dist := 1; dist < c.size; dist *= 2 {
		to := (c.rank + dist) % c.size
		from := (c.rank - dist + c.size) % c.size
		c.Sendrecv(p, to, tag, nil, from, tag, buf[:0])
	}
}

// Bcast distributes root's data; every rank returns the payload.
// Non-roots pass nil (buffers are allocated on receipt).
func (c *Comm) Bcast(p *vtime.Proc, root int, data []byte) []byte {
	tag := c.collTag(1)
	vrank := (c.rank - root + c.size) % c.size
	// mask ends at the lowest set bit of vrank, or at the first power of
	// two >= size for the root (which then fans out to all subtrees).
	mask := 1
	for ; mask < c.size; mask <<= 1 {
		if vrank&mask != 0 {
			break
		}
	}
	if vrank != 0 {
		parent := ((vrank &^ mask) + root) % c.size
		// Length is bcast first (fixed 4-byte), then the payload.
		var lenb [4]byte
		c.Recv(p, parent, tag, lenb[:])
		n := int(binary.BigEndian.Uint32(lenb[:]))
		data = make([]byte, n)
		if n > 0 {
			c.Recv(p, parent, tag, data)
		}
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		child := vrank | m
		if child < c.size && child != vrank {
			dst := (child + root) % c.size
			var lenb [4]byte
			binary.BigEndian.PutUint32(lenb[:], uint32(len(data)))
			c.Send(p, dst, tag, lenb[:])
			if len(data) > 0 {
				c.Send(p, dst, tag, data)
			}
		}
	}
	return data
}

// Op combines two equal-length float64 vectors element-wise.
type Op func(into, from []float64)

// Standard reduction operations.
var (
	Sum Op = func(into, from []float64) {
		for i := range into {
			into[i] += from[i]
		}
	}
	Max Op = func(into, from []float64) {
		for i := range into {
			into[i] = math.Max(into[i], from[i])
		}
	}
	Min Op = func(into, from []float64) {
		for i := range into {
			into[i] = math.Min(into[i], from[i])
		}
	}
)

// Reduce combines vec across ranks onto root (binomial tree); only root
// receives the result.
func (c *Comm) Reduce(p *vtime.Proc, root int, vec []float64, op Op) []float64 {
	tag := c.collTag(2)
	acc := append([]float64(nil), vec...)
	vrank := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if vrank&mask != 0 {
			dst := ((vrank &^ mask) + root) % c.size
			c.Send(p, dst, tag, F64Bytes(acc))
			return nil
		}
		peer := vrank | mask
		if peer < c.size {
			buf := make([]byte, 8*len(acc))
			c.Recv(p, (peer+root)%c.size, tag, buf)
			op(acc, BytesF64(buf))
		}
	}
	return acc
}

// Allreduce combines vec across all ranks and returns the result
// everywhere (reduce to 0 + bcast).
func (c *Comm) Allreduce(p *vtime.Proc, vec []float64, op Op) []float64 {
	acc := c.Reduce(p, 0, vec, op)
	out := c.Bcast(p, 0, F64Bytes(acc))
	return BytesF64(out)
}

// Gather collects each rank's data at root in rank order; only root
// receives the slices.
func (c *Comm) Gather(p *vtime.Proc, root int, data []byte) [][]byte {
	tag := c.collTag(3)
	if c.rank != root {
		c.Send(p, root, tag, data)
		return nil
	}
	out := make([][]byte, c.size)
	out[root] = append([]byte(nil), data...)
	for i := 0; i < c.size-1; i++ {
		buf := make([]byte, 1<<20)
		st := c.Recv(p, AnySource, tag, buf)
		out[st.Source] = append([]byte(nil), buf[:st.Count]...)
	}
	return out
}

// Scatter distributes root's per-rank slices; each rank returns its
// share.
func (c *Comm) Scatter(p *vtime.Proc, root int, parts [][]byte) []byte {
	tag := c.collTag(4)
	if c.rank == root {
		for r, part := range parts {
			if r == root {
				continue
			}
			c.Send(p, r, tag, part)
		}
		return append([]byte(nil), parts[root]...)
	}
	buf := make([]byte, 1<<20)
	st := c.Recv(p, root, tag, buf)
	return append([]byte(nil), buf[:st.Count]...)
}

// Allgather collects every rank's data everywhere.
func (c *Comm) Allgather(p *vtime.Proc, data []byte) [][]byte {
	parts := c.Gather(p, 0, data)
	blob := c.Bcast(p, 0, encodeParts(parts))
	return decodeParts(blob)
}

// Alltoall exchanges parts[i] with rank i; returns what each rank sent
// here, in rank order.
func (c *Comm) Alltoall(p *vtime.Proc, parts [][]byte) [][]byte {
	tag := c.collTag(5)
	out := make([][]byte, c.size)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	reqs := make([]*Request, 0, c.size-1)
	bufs := make(map[int][]byte)
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		buf := make([]byte, 1<<20)
		bufs[r] = buf
		reqs = append(reqs, c.Irecv(r, tag, buf))
		c.Isend(r, tag, parts[r])
	}
	for _, r := range reqs {
		st := r.Wait(p)
		out[st.Source] = append([]byte(nil), bufs[st.Source][:st.Count]...)
	}
	return out
}

// ---------------------------------------------------------------------
// Typed helpers.

// F64Bytes encodes a float64 vector.
func F64Bytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// BytesF64 decodes a float64 vector.
func BytesF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeParts(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 4, total)
	binary.BigEndian.PutUint32(out, uint32(len(parts)))
	var lenb [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(lenb[:], uint32(len(p)))
		out = append(out, lenb[:]...)
		out = append(out, p...)
	}
	return out
}

func decodeParts(blob []byte) [][]byte {
	n := int(binary.BigEndian.Uint32(blob))
	out := make([][]byte, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		l := int(binary.BigEndian.Uint32(blob[off:]))
		off += 4
		out = append(out, append([]byte(nil), blob[off:off+l]...))
		off += l
	}
	return out
}

// ModuleName implements core.Module.
func (c *Comm) ModuleName() string { return "mpi" }
