package session

import (
	"encoding/binary"
	"fmt"
	"io"

	"padico/internal/iovec"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ---------------------------------------------------------------------
// msgChannel: a Channel end over a message-oriented substrate (Circuit
// packing or the local pipe). Incoming seg vectors are delivered in
// kernel context; Recv consumes them segment by segment (one message
// may satisfy several Recvs), the stream view frames each Write as one
// self-describing {len, data} message.

type msgChannel struct {
	info    Info
	mgr     *Manager            // for the weather passive tap (may be nil in tests)
	observe bool                // selector-driven channel: report at close
	opened  vtime.Time          // when the channel was provisioned
	sendf   func(segs [][]byte) // substrate transmit (kernel-context safe)
	// closef releases the substrate once, when this end closes (nil for
	// the pipe, the session release hook for circuits).
	closef func()
	peer   *msgChannel

	inbox  [][][]byte // delivered, unconsumed messages
	segs   [][]byte   // partially consumed message (Recv granularity)
	stream []byte     // partially consumed data segment (Read granularity)
	rx     *vtime.Cond

	sent      int // messages handed to the substrate by this end
	delivered int // messages delivered into this end's inbox
	closed    bool
	regID     int64 // live-registry id (0 when unmanaged, e.g. in tests)
	// failErr is set when the peer (or own) node crashed: blocked and
	// future operations return it promptly instead of stalling.
	failErr error
	// peerClosed + eofAfter implement orderly shutdown without wire
	// traffic: the peer's Close records how many messages it had sent;
	// this end reads EOF only once that many were delivered and
	// drained, so in-flight messages are never truncated.
	peerClosed bool
	eofAfter   int
}

func newMsgChannel(info Info) *msgChannel {
	return &msgChannel{info: info,
		rx: vtime.NewCond(fmt.Sprintf("session:%d->%d", info.Src, info.Dst))}
}

// deliver hands one incoming message to the end (kernel context).
func (c *msgChannel) deliver(segs [][]byte) {
	c.delivered++
	c.inbox = append(c.inbox, segs)
	c.rx.Broadcast()
}

// fail marks the end dead after a node crash (kernel context): blocked
// waiters wake with err, in-flight messages are considered lost.
func (c *msgChannel) fail(err error) {
	if c.closed || c.failErr != nil {
		return
	}
	c.failErr = err
	c.rx.Broadcast()
}

// waitMessage blocks until a whole message is available, the peer
// closed (io.EOF once everything it sent was drained) or this end
// closed.
func (c *msgChannel) waitMessage(p *vtime.Proc) ([][]byte, error) {
	for {
		if c.closed {
			return nil, ErrClosed
		}
		if c.failErr != nil {
			return nil, c.failErr
		}
		if len(c.inbox) > 0 {
			msg := c.inbox[0]
			c.inbox = c.inbox[1:]
			return msg, nil
		}
		if c.peerClosed && c.delivered >= c.eofAfter {
			return nil, io.EOF
		}
		c.rx.Wait(p)
	}
}

// Send implements Channel: one packed message (or pipe delivery).
func (c *msgChannel) Send(p *vtime.Proc, segs ...[]byte) error {
	if c.failErr != nil {
		return c.failErr
	}
	if c.closed || c.peerClosed {
		return ErrClosed
	}
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	c.info.Sends++
	c.info.BytesOut += int64(n)
	c.sent++
	c.sendf(segs)
	return nil
}

// SendVec implements Channel: the vector's segments become the packed
// message's segments — iovec views and Circuit incremental packing are
// the same shape, so no flattening happens. The substrate copies
// (SendSafer / pipe clone), which ends the borrow before return.
func (c *msgChannel) SendVec(p *vtime.Proc, v iovec.Vec) error {
	segs := make([][]byte, len(v.Segs))
	for i, s := range v.Segs {
		segs[i] = s.B
	}
	return c.Send(p, segs...)
}

// RecvVec implements Channel: borrowed views of the delivered message
// (Release is a no-op).
func (c *msgChannel) RecvVec(p *vtime.Proc, sizes ...int) (iovec.Vec, error) {
	segs, err := c.Recv(p, sizes...)
	if err != nil {
		return iovec.Vec{}, err
	}
	return iovec.Make(segs...), nil
}

// Recv implements Channel: segment-granular consumption with exact
// sizes, buffered across calls within one message.
func (c *msgChannel) Recv(p *vtime.Proc, sizes ...int) ([][]byte, error) {
	out := make([][]byte, 0, len(sizes))
	for _, n := range sizes {
		if len(c.segs) == 0 {
			msg, err := c.waitMessage(p)
			if err != nil {
				return nil, err
			}
			c.segs = msg
		}
		s := c.segs[0]
		if len(s) != n {
			return nil, fmt.Errorf("%w: segment is %d bytes, caller expects %d", ErrProtocol, len(s), n)
		}
		c.segs = c.segs[1:]
		c.info.BytesIn += int64(len(s))
		out = append(out, s)
	}
	c.info.Recvs++
	return out, nil
}

// streamFrame is the stream view's on-message format: {4-byte length,
// payload} — the same shape the pre-session datagrid packed, so the
// refactor moves identical bytes.
const streamLenSeg = 4

// Write implements Channel: one self-describing message per call.
func (c *msgChannel) Write(p *vtime.Proc, data []byte) (int, error) {
	if c.failErr != nil {
		return 0, c.failErr
	}
	if c.closed || c.peerClosed {
		return 0, ErrClosed
	}
	var lenSeg [streamLenSeg]byte
	binary.BigEndian.PutUint32(lenSeg[:], uint32(len(data)))
	c.info.Sends++
	c.info.BytesOut += int64(len(data))
	c.sent++
	c.sendf([][]byte{lenSeg[:], data})
	return len(data), nil
}

// Read implements Channel: next payload bytes from the stream framing.
func (c *msgChannel) Read(p *vtime.Proc, buf []byte) (int, error) {
	if len(c.stream) == 0 {
		if len(c.segs) > 0 {
			return 0, fmt.Errorf("%w: stream read inside a partially consumed message", ErrProtocol)
		}
		msg, err := c.waitMessage(p)
		if err != nil {
			return 0, err
		}
		if len(msg) != 2 || len(msg[0]) != streamLenSeg {
			return 0, fmt.Errorf("%w: stream read on a %d-segment message", ErrProtocol, len(msg))
		}
		if n := int(binary.BigEndian.Uint32(msg[0])); n != len(msg[1]) {
			return 0, fmt.Errorf("%w: framed length %d != payload %d", ErrProtocol, n, len(msg[1]))
		}
		c.stream = msg[1]
	}
	n := copy(buf, c.stream)
	c.stream = c.stream[n:]
	c.info.Recvs++
	c.info.BytesIn += int64(n)
	return n, nil
}

// ReadFull implements Channel.
func (c *msgChannel) ReadFull(p *vtime.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Remote implements Channel.
func (c *msgChannel) Remote() Channel { return c.peer }

// Info implements Channel.
func (c *msgChannel) Info() Info { return c.info }

// Close implements Channel. The peer keeps draining what was already
// delivered, then reads EOF. Substrate release (refcounts, logical
// channels) happens through closef.
func (c *msgChannel) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.rx.Broadcast()
	if c.peer != nil {
		c.peer.peerClosed = true
		c.peer.eofAfter = c.sent
		c.peer.rx.Broadcast()
	}
	if c.closef != nil {
		c.closef()
	}
	if c.mgr != nil {
		c.mgr.deregister(c.regID)
		if c.observe {
			c.mgr.observeClose(c.info, c.opened)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// vlinkChannel: a Channel end over an established VLink (the
// distributed paradigm — sysio, pstreams, adoc, gsec stacks). The
// stream view delegates; the message view gather-writes and
// size-driven-reads, adding no framing of its own.

type vlinkChannel struct {
	info    Info
	mgr     *Manager   // for the weather passive tap (may be nil in tests)
	observe bool       // selector-driven channel: report at close
	opened  vtime.Time // when the channel was provisioned
	v       *vlink.VLink
	remote  Channel
	closed  bool
	regID   int64 // live-registry id (0 when unmanaged)
}

// Send implements Channel: one gather-write, no added framing. The
// segments ride the driver stack's vectored path by reference; a
// non-vector driver flattens once into a pooled buffer inside VLink.
func (c *vlinkChannel) Send(p *vtime.Proc, segs ...[]byte) error {
	return c.SendVec(p, iovec.Make(segs...))
}

// SendVec implements Channel.
func (c *vlinkChannel) SendVec(p *vtime.Proc, v iovec.Vec) error {
	c.info.Sends++
	n, err := c.v.WriteVec(p, v)
	c.info.BytesOut += int64(n)
	return err
}

// Recv implements Channel: one ReadFull of the total, sliced into the
// requested segments.
func (c *vlinkChannel) Recv(p *vtime.Proc, sizes ...int) ([][]byte, error) {
	total := 0
	for _, n := range sizes {
		total += n
	}
	buf := make([]byte, total)
	n, err := c.v.ReadFull(p, buf)
	c.info.Recvs++
	c.info.BytesIn += int64(n)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(sizes))
	off := 0
	for _, n := range sizes {
		out = append(out, buf[off:off+n])
		off += n
	}
	return out, nil
}

// RecvVec implements Channel: one ReadFull of the total into a pooled
// buffer, handed out as one owned segment per requested size (the
// caller's Release returns the buffer to the pool).
func (c *vlinkChannel) RecvVec(p *vtime.Proc, sizes ...int) (iovec.Vec, error) {
	total := 0
	for _, n := range sizes {
		total += n
	}
	if len(sizes) == 0 {
		return iovec.Vec{}, nil
	}
	buf := iovec.Get(total)
	n, err := c.v.ReadFull(p, buf.Bytes())
	c.info.Recvs++
	c.info.BytesIn += int64(n)
	if err != nil {
		buf.Release()
		return iovec.Vec{}, err
	}
	out := iovec.Vec{Segs: make([]iovec.Seg, 0, len(sizes))}
	off := 0
	for i, n := range sizes {
		if i > 0 {
			buf.Retain() // one reference per handed-out segment
		}
		out.Append(buf, buf.Bytes()[off:off+n])
		off += n
	}
	return out, nil
}

// Read implements Channel.
func (c *vlinkChannel) Read(p *vtime.Proc, buf []byte) (int, error) {
	n, err := c.v.Read(p, buf)
	c.info.Recvs++
	c.info.BytesIn += int64(n)
	return n, err
}

// ReadFull implements Channel.
func (c *vlinkChannel) ReadFull(p *vtime.Proc, buf []byte) (int, error) {
	n, err := c.v.ReadFull(p, buf)
	c.info.Recvs++
	c.info.BytesIn += int64(n)
	return n, err
}

// Write implements Channel.
func (c *vlinkChannel) Write(p *vtime.Proc, data []byte) (int, error) {
	c.info.Sends++
	n, err := c.v.Write(p, data)
	c.info.BytesOut += int64(n)
	return n, err
}

// Remote implements Channel.
func (c *vlinkChannel) Remote() Channel { return c.remote }

// Info implements Channel.
func (c *vlinkChannel) Info() Info { return c.info }

// Close implements Channel: orderly VLink shutdown (peer reads EOF
// after draining, per the VLink contract).
func (c *vlinkChannel) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.v.Close()
	if c.mgr != nil {
		c.mgr.deregister(c.regID)
		if c.observe {
			c.mgr.observeClose(c.info, c.opened)
		}
	}
	return nil
}
