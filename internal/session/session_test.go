package session_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"padico/internal/grid"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// payload returns deterministic pseudo-random bytes.
func payload(seed int64, size int) []byte {
	b := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// echoOnce runs one request/response exchange over a channel: the
// remote end receives a message and a stream chunk, then answers with a
// frame. It exercises both views on both ends.
func echoOnce(t *testing.T, p *vtime.Proc, k *vtime.Kernel, ch session.Channel, size int) {
	t.Helper()
	data := payload(7, size)
	done := vtime.NewWaitGroup("echo")
	done.Add(1)
	k.Go("peer", func(q *vtime.Proc) {
		defer done.Done()
		rc := ch.Remote()
		segs, err := rc.Recv(q, 4, 3)
		if err != nil {
			t.Error(err)
			return
		}
		if string(segs[0]) != "HEAD" || string(segs[1]) != "obj" {
			t.Errorf("message view got %q %q", segs[0], segs[1])
		}
		buf := make([]byte, size)
		if _, err := rc.ReadFull(q, buf); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("stream view corrupted the payload")
		}
		if err := rc.Send(q, []byte{1}, []byte{0, 0, 0, 0, 0, 0, 0, 42}); err != nil {
			t.Error(err)
		}
	})
	if err := ch.Send(p, []byte("HEAD"), []byte("obj")); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Write(p, data); err != nil {
		t.Fatal(err)
	}
	segs, err := ch.Recv(p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0][0] != 1 || segs[1][7] != 42 {
		t.Fatalf("reverse frame = %v %v", segs[0], segs[1])
	}
	done.Wait(p)
}

// TestChannelViewsPerSubstrate runs the same protocol over all three
// substrates the manager provisions — local pipe, SAN circuit, WAN
// VLink stack — which is the whole point of the session layer.
func TestChannelViewsPerSubstrate(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *grid.Grid
		src, dst int
		class    selector.PathClass
		method   string
	}{
		{"local", func() *grid.Grid { return grid.Cluster(2) }, 0, 0, selector.PathLocal, "loopback"},
		{"san", func() *grid.Grid { return grid.Cluster(2) }, 0, 1, selector.PathSAN, "madio"},
		{"wan", func() *grid.Grid { return grid.TwoClusterWAN(1, 1) }, 0, 1, selector.PathWAN, "pstreams"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			if err := g.K.Run(func(p *vtime.Proc) {
				ch, err := g.Open(p, topoID(c.src), topoID(c.dst))
				if err != nil {
					t.Fatal(err)
				}
				info := ch.Info()
				if info.Class != c.class || info.Decision.Method != c.method {
					t.Fatalf("info = class %v method %q, want %v %q",
						info.Class, info.Decision.Method, c.class, c.method)
				}
				echoOnce(t, p, g.K, ch, 64<<10)
				if got := ch.Info(); got.BytesOut == 0 || got.BytesIn == 0 || got.Sends == 0 || got.Recvs == 0 {
					t.Fatalf("counters not maintained: %+v", got)
				}
				ch.Remote().Close()
				ch.Close()
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func topoID(i int) topology.NodeID { return topology.NodeID(i) }

// TestCircuitRefcountAndRelease pins the per-pair circuit cache
// semantics: overlapping sessions on one SAN pair share a single
// circuit (refcount up), and the circuit is torn down when the last
// session releases it — MadIO logical channels are a finite per-node
// resource.
func TestCircuitRefcountAndRelease(t *testing.T) {
	g := grid.Cluster(2)
	m := g.Session()
	if err := g.K.Run(func(p *vtime.Proc) {
		ch1, err := m.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// A second overlapping session reuses the cached circuit; it
		// queues on the pair's semaphore until ch1 closes.
		opened := vtime.NewQueue[session.Channel]("opened")
		g.K.Go("second", func(q *vtime.Proc) {
			ch2, err := m.Open(q, 1, 0) // same pair, either direction
			if err != nil {
				t.Error(err)
				return
			}
			opened.Push(ch2)
		})
		p.Yield()
		if m.Stats().CircuitsBuilt != 1 || m.Stats().CircuitReuses != 1 {
			t.Fatalf("cache stats after overlapping opens: %+v", m.Stats())
		}
		if m.Stats().CircuitsClosed != 0 {
			t.Fatalf("circuit closed while sessions were live: %+v", m.Stats())
		}
		echoOnce(t, p, g.K, ch1, 8<<10)
		ch1.Remote().Close()
		ch1.Close()
		// First release: the second session holds the circuit open.
		ch2 := opened.Pop(p)
		if m.Stats().CircuitsClosed != 0 {
			t.Fatalf("circuit closed on first release: %+v", m.Stats())
		}
		echoOnce(t, p, g.K, ch2, 8<<10)
		ch2.Remote().Close()
		ch2.Close()
		// Last release tears the circuit down.
		if m.Stats().CircuitsClosed != 1 {
			t.Fatalf("circuit not closed on last release: %+v", m.Stats())
		}
		// A later open rebuilds from scratch.
		ch3, err := m.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Stats().CircuitsBuilt != 2 {
			t.Fatalf("open after last release did not rebuild: %+v", m.Stats())
		}
		echoOnce(t, p, g.K, ch3, 8<<10)
		ch3.Remote().Close()
		ch3.Close()
		if m.Stats().CircuitsClosed != 2 {
			t.Fatalf("rebuilt circuit not closed: %+v", m.Stats())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedOpenDeterministic: the same program on a fresh testbed
// produces bit-identical virtual-time behaviour and counters — repeated
// Open under identical QoS is byte-for-bit deterministic.
func TestRepeatedOpenDeterministic(t *testing.T) {
	run := func(build func() *grid.Grid, src, dst int) (vtime.Duration, session.Info) {
		g := build()
		var elapsed vtime.Duration
		var info session.Info
		if err := g.K.Run(func(p *vtime.Proc) {
			start := p.Now()
			ch, err := g.Open(p, topoID(src), topoID(dst))
			if err != nil {
				t.Fatal(err)
			}
			echoOnce(t, p, g.K, ch, 256<<10)
			ch.Remote().Close()
			ch.Close()
			elapsed = p.Now().Sub(start)
			info = ch.Info()
		}); err != nil {
			t.Fatal(err)
		}
		return elapsed, info
	}
	for _, c := range []struct {
		name     string
		build    func() *grid.Grid
		src, dst int
	}{
		{"san", func() *grid.Grid { return grid.Cluster(2) }, 0, 1},
		{"wan", func() *grid.Grid { return grid.TwoClusterWAN(1, 1) }, 0, 1},
	} {
		e1, i1 := run(c.build, c.src, c.dst)
		e2, i2 := run(c.build, c.src, c.dst)
		if e1 != e2 {
			t.Fatalf("%s: elapsed %v vs %v across identical runs", c.name, e1, e2)
		}
		// The Decision carries a *Network into the run's own topology;
		// compare its name, and everything else by value.
		if i1.Decision.Network.Name != i2.Decision.Network.Name {
			t.Fatalf("%s: networks %q vs %q", c.name, i1.Decision.Network.Name, i2.Decision.Network.Name)
		}
		i1.Decision.Network, i2.Decision.Network = nil, nil
		if i1 != i2 {
			t.Fatalf("%s: info %+v vs %+v across identical runs", c.name, i1, i2)
		}
	}
}

// TestQoSOptionsSteerTheSelector: per-channel functional options
// override the manager's default QoS for that open only.
func TestQoSOptionsSteerTheSelector(t *testing.T) {
	g := grid.TwoClusterWAN(1, 1)
	if err := g.K.Run(func(p *vtime.Proc) {
		ch, err := g.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := ch.Info().Decision; d.Method != "pstreams" || d.Streams != 4 || !d.Secure {
			t.Fatalf("default WAN decision = %v", d)
		}
		ch.Close()

		ch, err = g.Open(p, 0, 1, session.WithStreams(1), session.WithCipher(selector.CipherNever))
		if err != nil {
			t.Fatal(err)
		}
		if d := ch.Info().Decision; d.Method != "sysio" || d.Secure {
			t.Fatalf("overridden decision = %v", d)
		}
		ch.Close()

		ch, err = g.Open(p, 0, 1, session.WithLatencySensitive())
		if err != nil {
			t.Fatal(err)
		}
		if d := ch.Info().Decision; d.Method == "pstreams" || d.Streams != 1 {
			t.Fatalf("latency-sensitive decision still striped: %v", d)
		}
		ch.Close()

		// The next optionless open is back on the defaults.
		ch, err = g.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := ch.Info().Decision; d.Method != "pstreams" {
			t.Fatalf("per-channel override leaked into defaults: %v", d)
		}
		ch.Close()

		// Invalid QoS surfaces as an Open error, not a fallthrough.
		if _, err := g.Open(p, 0, 1, session.WithCipher(selector.CipherPolicy(9))); err == nil {
			t.Fatal("invalid cipher policy accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSecureSANChannelIsActuallyCiphered: a CipherAlways channel inside
// a SAN must not ride the bare madio circuit (which cannot cipher) —
// the manager honours the QoS by provisioning the VLink madio driver
// stack with gsec, so Info's Secure=true is true of the wire too.
func TestSecureSANChannelIsActuallyCiphered(t *testing.T) {
	g := grid.Cluster(2)
	m := g.Session()
	if err := g.K.Run(func(p *vtime.Proc) {
		ch, err := m.Open(p, 0, 1, session.WithCipher(selector.CipherAlways))
		if err != nil {
			t.Fatal(err)
		}
		info := ch.Info()
		if info.Class != selector.PathSAN || !info.Decision.Secure {
			t.Fatalf("info = %+v, want secure SAN decision", info)
		}
		if m.Stats().CircuitOpens != 0 || m.Stats().VLinkOpens != 1 {
			t.Fatalf("secure SAN open rode the bare circuit: %+v", m.Stats())
		}
		echoOnce(t, p, g.K, ch, 32<<10)
		ch.Remote().Close()
		ch.Close()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPeerCloseGivesEOF: after one end closes, the peer drains what was
// delivered and then reads EOF — on the message substrate too, where
// there is no underlying byte stream to signal it.
func TestPeerCloseGivesEOF(t *testing.T) {
	g := grid.Cluster(2)
	if err := g.K.Run(func(p *vtime.Proc) {
		ch, err := g.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ch.Write(p, []byte("tail")); err != nil {
			t.Fatal(err)
		}
		ch.Close()
		rc := ch.Remote()
		buf := make([]byte, 4)
		if _, err := rc.ReadFull(p, buf); err != nil || string(buf) != "tail" {
			t.Fatalf("drain after close: %q, %v", buf, err)
		}
		if n, err := rc.Read(p, buf); err == nil {
			t.Fatalf("read past close returned %d bytes", n)
		}
		rc.Close()
	}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Adaptive sessions.

// fakeWeather is a scriptable session.Weather: forecasts keyed by
// network name, mutated by the test between operations.
type fakeWeather struct {
	forecasts map[string]selector.Forecast
	subs      []func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast)
}

func newFakeWeather() *fakeWeather {
	return &fakeWeather{forecasts: make(map[string]selector.Forecast)}
}

func (w *fakeWeather) Forecast(a, b topology.NodeID, nw *topology.Network) (selector.Forecast, bool) {
	f, ok := w.forecasts[nw.Name]
	return f, ok
}

func (w *fakeWeather) ObserveTransfer(a, b topology.NodeID, network string, bytes int64, elapsed vtime.Duration, live bool) {
}

func (w *fakeWeather) Subscribe(fn func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast)) func() {
	w.subs = append(w.subs, fn)
	return func() {}
}

// set updates a forecast and notifies subscribers (kernel context).
func (w *fakeWeather) set(nw *topology.Network, f selector.Forecast) {
	w.forecasts[nw.Name] = f
	for _, fn := range w.subs {
		fn(0, 1, nw, f)
	}
}

// TestAdaptiveChannelViews: without a weather service an adaptive
// channel is just a framed channel — both views work on every
// substrate and the peer reads EOF after close.
func TestAdaptiveChannelViews(t *testing.T) {
	for _, c := range []struct {
		name     string
		build    func() *grid.Grid
		src, dst int
	}{
		{"local", func() *grid.Grid { return grid.Cluster(2) }, 0, 0},
		{"san", func() *grid.Grid { return grid.Cluster(2) }, 0, 1},
		{"wan", func() *grid.Grid { return grid.TwoClusterWAN(1, 1) }, 0, 1},
	} {
		g := c.build()
		if err := g.K.Run(func(p *vtime.Proc) {
			ch, err := g.Open(p, topoID(c.src), topoID(c.dst), session.WithAdaptive())
			if err != nil {
				t.Fatal(err)
			}
			echoOnce(t, p, g.K, ch, 64<<10)
			if _, err := ch.Write(p, []byte("tail")); err != nil {
				t.Fatal(err)
			}
			ch.Close()
			rc := ch.Remote()
			buf := make([]byte, 4)
			if _, err := rc.ReadFull(p, buf); err != nil || string(buf) != "tail" {
				t.Fatalf("%s: drain after close: %q, %v", c.name, buf, err)
			}
			if _, err := rc.Read(p, buf); err == nil {
				t.Fatalf("%s: read past close succeeded", c.name)
			}
			rc.Close()
		}); err != nil {
			t.Fatal(err)
		}
		if g.Session().Stats().AdaptiveOpens != 1 {
			t.Fatalf("%s: AdaptiveOpens = %d", c.name, g.Session().Stats().AdaptiveOpens)
		}
	}
}

// TestAdaptiveReselectsOnDegradedForecast: a mid-stream forecast drop
// below the compression threshold changes the decision; the channel
// re-opens with a resume handshake and every byte still arrives, in
// order, exactly once.
func TestAdaptiveReselectsOnDegradedForecast(t *testing.T) {
	g := grid.TwoClusterWAN(1, 1)
	fw := newFakeWeather()
	g.Session().SetWeather(fw)
	wan := g.Topo.Networks()[4] // vthd (2x myri + 2x eth declared first)
	if wan.Name != "vthd" {
		t.Fatalf("topology layout changed: network[4] = %s", wan.Name)
	}
	fw.forecasts[wan.Name] = selector.Forecast{BandwidthBps: 12e6}
	const chunk = 64 << 10
	const chunks = 12
	data := payload(3, chunk*chunks)
	if err := g.K.Run(func(p *vtime.Proc) {
		ch, err := g.Open(p, 0, 1, session.WithAdaptive())
		if err != nil {
			t.Fatal(err)
		}
		if ch.Info().Decision.Compress {
			t.Fatalf("healthy forecast selected compression: %v", ch.Info().Decision)
		}
		got := make([]byte, len(data))
		done := vtime.NewWaitGroup("sink")
		done.Add(1)
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			if _, err := ch.Remote().ReadFull(q, got); err != nil {
				t.Error(err)
			}
		})
		for i := 0; i < chunks; i++ {
			if i == chunks/2 {
				// The WAN degrades below CompressBelowBps: the next
				// boundary check must flip AdOC on and resume.
				fw.set(wan, selector.Forecast{BandwidthBps: 0.5e6})
			}
			if _, err := ch.Write(p, data[i*chunk:(i+1)*chunk]); err != nil {
				t.Fatal(err)
			}
		}
		done.Wait(p)
		if !bytes.Equal(got, data) {
			t.Fatal("payload corrupted across re-selection")
		}
		info := ch.Info()
		if info.Reselects != 1 || info.Resumes != 1 {
			t.Fatalf("Reselects=%d Resumes=%d, want 1/1", info.Reselects, info.Resumes)
		}
		if !info.Decision.Compress {
			t.Fatalf("post-degrade decision lacks compression: %v", info.Decision)
		}
		ch.Close()
		ch.Remote().Close()
	}); err != nil {
		t.Fatal(err)
	}
	if s := g.Session().Stats(); s.Reselects != 1 || s.Resumes != 1 {
		t.Fatalf("manager stats Reselects=%d Resumes=%d", s.Reselects, s.Resumes)
	}
}

// TestAdaptiveSurvivesOutageNotification: the weather declares the
// session's network down mid-stream; the subscription closes the
// substrate under the blocked operations, the session re-opens (the
// selector keeps the only network), replays the gap and completes.
func TestAdaptiveSurvivesOutageNotification(t *testing.T) {
	g := grid.TwoClusterWAN(1, 1)
	fw := newFakeWeather()
	g.Session().SetWeather(fw)
	wan := g.Topo.Networks()[4]
	fw.forecasts[wan.Name] = selector.Forecast{BandwidthBps: 9e6}
	const chunk = 64 << 10
	const chunks = 10
	data := payload(5, chunk*chunks)
	if err := g.K.Run(func(p *vtime.Proc) {
		ch, err := g.Open(p, 0, 1, session.WithAdaptive())
		if err != nil {
			t.Fatal(err)
		}
		// Mid-transfer, the link is declared down, then recovers.
		g.K.After(40*time.Millisecond, func() {
			fw.set(wan, selector.Forecast{Down: true})
		})
		g.K.After(60*time.Millisecond, func() {
			fw.forecasts[wan.Name] = selector.Forecast{BandwidthBps: 9e6}
		})
		got := make([]byte, len(data))
		done := vtime.NewWaitGroup("sink")
		done.Add(1)
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			if _, err := ch.Remote().ReadFull(q, got); err != nil {
				t.Error(err)
			}
		})
		for i := 0; i < chunks; i++ {
			if _, err := ch.Write(p, data[i*chunk:(i+1)*chunk]); err != nil {
				t.Fatal(err)
			}
		}
		done.Wait(p)
		if !bytes.Equal(got, data) {
			t.Fatal("payload corrupted across outage resume")
		}
		if info := ch.Info(); info.Resumes < 1 {
			t.Fatalf("no resume recorded: %+v", info)
		}
		ch.Close()
		ch.Remote().Close()
	}); err != nil {
		t.Fatal(err)
	}
}
