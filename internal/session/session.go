// Package session is the paradigm-agnostic front door of the
// communication stack: one Open call per node pair, one Channel
// interface whatever substrate the Selector picks underneath.
//
// The paper's central claim (§4.2) is that middleware must never
// hand-pick its transport — the Selector chooses network, method and
// wrappers per pair from the topology knowledge base. Before this
// layer existed every consumer re-implemented that dispatch by hand
// (datagrid's paradigm switch, each example's driver wiring). The
// session Manager hoists it: Open consults selector.Select and
// transparently provisions
//
//   - a zero-cost local pipe when both endpoints are the same node,
//   - a cached, refcounted 2-rank Circuit moving segments with
//     Madeleine incremental packing inside a SAN (the parallel
//     paradigm),
//   - a VLink driver stack — sysio, striped pstreams, AdOC, gsec, the
//     VRP-class lossy methods — across LAN/WAN (the distributed
//     paradigm),
//
// behind one Channel exposing a message view (Send/Recv) and a stream
// view (Read/Write/ReadFull), plus Info reporting the Decision taken
// and transfer counters.
//
// QoS is per-channel: functional options on Open (WithStreams,
// WithCipher, WithCompression, WithLossTolerance, WithLatencySensitive)
// override the Manager's default QoS — the deployment-wide Preferences
// of old — for that channel only.
package session

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync/atomic"

	"padico/internal/circuit"
	"padico/internal/iovec"
	"padico/internal/madapi"
	"padico/internal/selector"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Exported errors.
var (
	// ErrClosed reports an operation on a closed channel end.
	ErrClosed = errors.New("session: channel closed")
	// ErrProtocol reports a message whose shape does not match what the
	// receiver asked for (segment sizes, stream framing).
	ErrProtocol = errors.New("session: protocol violation")
	// ErrPeerDown reports an operation on a channel whose peer (or own)
	// node crashed: the fault injector killed it via Manager.KillNode.
	ErrPeerDown = errors.New("session: peer node crashed")
)

// Channel is one end of an established session. Both ends expose the
// same two views, whatever the substrate:
//
// The message view (Send/Recv) preserves segment boundaries on
// message-oriented substrates (Circuit packing, the local pipe) and
// gather-writes with no added framing on stream substrates (VLink) —
// message delimiting on a stream is the caller's protocol concern,
// which is why Recv takes the expected segment sizes.
//
// The stream view (Read/Write/ReadFull) is a plain byte stream; on
// message substrates each Write travels as one self-describing message
// and Read returns payload bytes in order.
//
// All methods must run in proc context except Close, which is also
// callable from kernel context.
type Channel interface {
	// Send transmits one logical message as a vector of segments: one
	// packed message on a Circuit, one gather-write on a stream.
	Send(p *vtime.Proc, segs ...[]byte) error
	// SendVec is Send over an iovec segment vector — the shared
	// representation of Circuit incremental packing and the stream
	// view's gather-write. The vector is borrowed until SendVec
	// returns; on a vector-capable VLink stack the payload travels by
	// reference down to the socket send queue (zero copies in
	// non-transforming wrappers).
	SendVec(p *vtime.Proc, v iovec.Vec) error
	// Recv receives segments of exactly the given sizes, in order. On a
	// message substrate the sizes must match the packed segment
	// boundaries (buffered across calls, so one message may satisfy
	// several Recvs); on a stream substrate the total is read in one
	// ReadFull and sliced.
	Recv(p *vtime.Proc, sizes ...int) ([][]byte, error)
	// RecvVec is Recv returning the segments as one vector. The caller
	// must Release it (a no-op on message substrates, which hand out
	// borrowed views; an actual pool return on stream substrates, which
	// read into a pooled buffer).
	RecvVec(p *vtime.Proc, sizes ...int) (iovec.Vec, error)
	// Read delivers the next available payload bytes (up to len(buf)).
	Read(p *vtime.Proc, buf []byte) (int, error)
	// ReadFull blocks until len(buf) bytes arrived (or EOF).
	ReadFull(p *vtime.Proc, buf []byte) (int, error)
	// Write blocks until data is fully accepted by the substrate.
	Write(p *vtime.Proc, data []byte) (int, error)
	// Remote returns the peer end of the session. In this simulated
	// single-process world the opener hands it to the destination
	// node's proc — the rendezvous the PadicoTM bootstrap would do.
	Remote() Channel
	// Info reports how the channel was provisioned and what it moved.
	Info() Info
	// Close releases this end; the session's substrate is released when
	// both ends are closed. The peer's pending reads complete with EOF
	// after draining. Closing twice is harmless.
	Close() error
}

// Info describes one channel end.
type Info struct {
	// Src is the end's own node, Dst its peer.
	Src, Dst topology.NodeID
	// Class is the selector's path classification for the pair.
	Class selector.PathClass
	// Decision is the concrete verdict the channel was built from. For
	// an adaptive channel it is the *current* decision — re-selection
	// updates it.
	Decision selector.Decision
	// Transfer counters, from this end's perspective.
	Sends, Recvs      int64
	BytesIn, BytesOut int64
	// Adaptive-channel counters (zero on static channels): decisions
	// changed under the session, and successful resume handshakes.
	Reselects, Resumes int64
}

// Substrate is what the Manager needs from the testbed builder to
// provision concrete transports: VLink driver stacks with an explicit
// decision, and Circuits over a node group. *grid.Grid satisfies it;
// session stays below grid in the import order.
type Substrate interface {
	DialVLinkWith(p *vtime.Proc, a, b topology.NodeID, dec selector.Decision) (*vlink.VLink, *vlink.VLink, error)
	NewCircuits(p *vtime.Proc, name string, nodes []topology.NodeID) ([]*circuit.Circuit, error)
}

// openConfig is what the functional options adjust: the channel's QoS
// plus session-level behaviour knobs that are not selector inputs.
type openConfig struct {
	qos      selector.QoS
	adaptive bool
}

// Option adjusts one Open.
type Option func(*openConfig)

// WithQoS replaces the channel's QoS wholesale.
func WithQoS(q selector.QoS) Option { return func(c *openConfig) { c.qos = q } }

// WithStreams sets the parallel-stream stripe count (1 disables).
func WithStreams(n int) Option { return func(c *openConfig) { c.qos.Streams = n } }

// WithCipher sets the channel's ciphering policy.
func WithCipher(p selector.CipherPolicy) Option { return func(c *openConfig) { c.qos.Cipher = p } }

// WithCompression enables or disables the AdOC wrapper preference.
func WithCompression(on bool) Option { return func(c *openConfig) { c.qos.Compress = on } }

// WithLossTolerance tolerates losing the given fraction on lossy links.
func WithLossTolerance(frac float64) Option {
	return func(c *openConfig) { c.qos.LossTolerance = frac }
}

// WithLatencySensitive refuses adapters that trade latency for
// bandwidth (striping, compression).
func WithLatencySensitive() Option { return func(c *openConfig) { c.qos.LatencySensitive = true } }

// WithCollective marks the channel as one edge of a group-communication
// spanning tree: the payload is forwarded verbatim to the next tier, so
// the selector skips per-hop compression (see selector.QoS.Collective).
func WithCollective() Option { return func(c *openConfig) { c.qos.Collective = true } }

// WithAdaptive opens a self-healing channel: the session watches the
// weather (Manager.SetWeather) and, when the decision for the pair
// degrades past the hysteresis threshold — or the link goes down
// outright — transparently re-opens the substrate on the new best
// decision, preserving stream position through a sequence-numbered
// resume handshake. Without a weather service the channel behaves like
// a static one (framing aside).
func WithAdaptive() Option { return func(c *openConfig) { c.adaptive = true } }

// WithHysteresis overrides the re-selection hysteresis factor for this
// channel (values below 1 are rejected by QoS validation).
func WithHysteresis(f float64) Option { return func(c *openConfig) { c.qos.Hysteresis = f } }

// Weather is what the session layer needs from a network-weather
// service (internal/weather implements it): forecasts for the
// selector, a passive tap fed from channel transfer counters, and a
// subscription for forecast transitions (degraded-threshold crossings,
// outages) so adaptive channels can react to links that die under a
// blocked operation.
type Weather interface {
	selector.Oracle
	// ObserveTransfer folds one transfer-counter sample into the
	// passive bandwidth estimate for (src, dst) on the named network.
	// live marks a saturated-window measurement (the rate is the
	// link's); a non-live sample is a lifetime average that may
	// include idle time, i.e. only a lower bound on capacity.
	// Implementations must not incur virtual time.
	ObserveTransfer(src, dst topology.NodeID, network string, bytesOut int64, elapsed vtime.Duration, live bool)
	// Subscribe registers fn to run (in kernel context) whenever a
	// pair's forecast crosses a significance threshold. Callbacks fire
	// in subscription order (deterministic). The returned cancel
	// removes the subscription — short-lived subscribers (adaptive
	// channels) must call it or the service accumulates dead closures.
	Subscribe(fn func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast)) (cancel func())
}

// Stats counts Manager activity (for reporting and tests). Fields are
// bumped with atomic adds from kernel procs and read race-free through
// Manager.Stats; with telemetry attached they also appear in the
// unified registry under the "session." prefix.
type Stats struct {
	Opens                    int64
	LocalOpens, CircuitOpens int64
	VLinkOpens               int64 `metric:"vlink_opens"`
	// CircuitsBuilt / CircuitReuses / CircuitsClosed trace the per-pair
	// circuit cache: a build wires a fresh 2-rank circuit, a reuse
	// shares a live one, a close tears the circuit down after its last
	// session released it.
	CircuitsBuilt, CircuitReuses, CircuitsClosed int64
	// Adaptive-channel activity: sessions opened with WithAdaptive,
	// decision changes applied to live sessions, and successful resume
	// handshakes (every re-open that replayed and continued).
	AdaptiveOpens, Reselects, Resumes int64
}

// Manager is the per-grid session service. Middleware calls Open; the
// Manager consults the selector and owns the arbitration-adjacent
// caching (per-pair circuit reuse with refcounts — MadIO logical
// channels are a finite per-node resource, so overlapping SAN sessions
// share one circuit and the last release returns it).
type Manager struct {
	k        *vtime.Kernel
	topo     *topology.Grid
	sub      Substrate
	defaults func() selector.QoS
	weather  Weather

	pairs   map[[2]topology.NodeID]*pairCircuit
	circSeq int

	// Live channel-end registry, keyed by a monotonic id so KillNode can
	// walk the ends in provisioning order (map iteration must never leak
	// into event order). Pure bookkeeping: register/deregister cost no
	// kernel events, so fault-free runs are byte-identical with it.
	liveSeq int64
	live    map[int64]Channel

	stats Stats

	// Telemetry handles, nil (free no-ops) until SetTelemetry.
	tel   *telemetry.Hub
	hOpen *telemetry.Histogram
}

// pairCircuit is one cached parallel-paradigm substrate: the 2-rank
// circuit pair, a semaphore serializing sessions on it (one message
// protocol at a time per pair), and the live-session refcount.
type pairCircuit struct {
	key   [2]topology.NodeID
	circs []*circuit.Circuit
	sem   *vtime.Semaphore
	refs  int
}

// NewManager builds the session service. defaults supplies the QoS
// applied when Open gets no overriding options — it is read per Open so
// a testbed may retune its Preferences after construction.
func NewManager(k *vtime.Kernel, topo *topology.Grid, defaults func() selector.QoS, sub Substrate) *Manager {
	return &Manager{
		k: k, topo: topo, sub: sub, defaults: defaults,
		pairs: make(map[[2]topology.NodeID]*pairCircuit),
		live:  make(map[int64]Channel),
	}
}

// register tracks a live channel end and returns its registry id.
func (m *Manager) register(ch Channel) int64 {
	m.liveSeq++
	m.live[m.liveSeq] = ch
	return m.liveSeq
}

// deregister forgets a closed channel end (idempotent).
func (m *Manager) deregister(id int64) {
	delete(m.live, id)
}

// KillNode fails every live channel end touching the crashed node: a
// blocked Recv/Read on either side returns ErrPeerDown promptly instead
// of stalling, and later operations fail fast. The ipstack teardown
// (Stack.KillHost) covers TCP substrates on its own; this covers the
// message substrates (local pipes, SAN circuits) and closes the books
// on everything else. Ends are failed in provisioning order.
func (m *Manager) KillNode(n topology.NodeID) {
	ids := make([]int64, 0, len(m.live))
	for id := range m.live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		ch, ok := m.live[id]
		if !ok {
			continue // failed as the peer of an earlier end
		}
		info := ch.Info()
		if info.Src != n && info.Dst != n {
			continue
		}
		switch c := ch.(type) {
		case *msgChannel:
			c.fail(ErrPeerDown)
		case *vlinkChannel:
			c.v.Fail()
		}
	}
	m.tel.Note("session", "node killed", int(n), 0, 0)
}

// Default returns the QoS an optionless Open would use.
func (m *Manager) Default() selector.QoS { return m.defaults() }

// Stats returns a consistent copy of the manager's counters (each
// field loaded atomically).
func (m *Manager) Stats() Stats {
	return Stats{
		Opens:          atomic.LoadInt64(&m.stats.Opens),
		LocalOpens:     atomic.LoadInt64(&m.stats.LocalOpens),
		CircuitOpens:   atomic.LoadInt64(&m.stats.CircuitOpens),
		VLinkOpens:     atomic.LoadInt64(&m.stats.VLinkOpens),
		CircuitsBuilt:  atomic.LoadInt64(&m.stats.CircuitsBuilt),
		CircuitReuses:  atomic.LoadInt64(&m.stats.CircuitReuses),
		CircuitsClosed: atomic.LoadInt64(&m.stats.CircuitsClosed),
		AdaptiveOpens:  atomic.LoadInt64(&m.stats.AdaptiveOpens),
		Reselects:      atomic.LoadInt64(&m.stats.Reselects),
		Resumes:        atomic.LoadInt64(&m.stats.Resumes),
	}
}

// SetTelemetry wires the manager into a telemetry hub: the Stats
// counters join the unified registry under "session.", open latencies
// feed a histogram, and opens/decisions emit spans when tracing is on.
func (m *Manager) SetTelemetry(h *telemetry.Hub) {
	if h == nil || m.tel != nil {
		return // idempotent: a second bind would double-count the stats
	}
	m.tel = h
	h.Registry().BindStruct("session", &m.stats)
	m.hOpen = h.Registry().Histogram("session.open_latency")
	// Backpressure gauges over the live-channel table: channel count,
	// receive backlog (messages delivered but not yet consumed), and
	// send backlog (messages handed to the substrate, not yet delivered
	// at the peer). Read at scrape time in kernel context — the same
	// sequential discipline as every other channel access.
	h.Registry().GaugeFunc("session.live_channels", func() int64 {
		return int64(len(m.live))
	})
	h.Registry().GaugeFunc("session.recv_backlog_msgs", func() int64 {
		var n int64
		for _, ch := range m.live {
			if c, ok := ch.(*msgChannel); ok {
				n += int64(len(c.inbox))
			}
		}
		return n
	})
	h.Registry().GaugeFunc("session.send_inflight_msgs", func() int64 {
		var n int64
		for _, ch := range m.live {
			if c, ok := ch.(*msgChannel); ok && c.peer != nil {
				if d := c.sent - c.peer.delivered; d > 0 {
					n += int64(d)
				}
			}
		}
		return n
	})
}

// SetWeather attaches a network-weather service: from then on Open
// consults its forecasts, closed channels feed the passive bandwidth
// tap, and adaptive channels subscribe to its transitions. Call before
// traffic starts; detaching is not supported.
func (m *Manager) SetWeather(w Weather) { m.weather = w }

// Weather returns the attached weather service (nil without one).
func (m *Manager) Weather() Weather { return m.weather }

// Oracle returns the selector oracle consumers should pass to their own
// Select/ranking calls — nil when no weather service is attached, which
// callers must treat as "static knowledge base only".
func (m *Manager) Oracle() selector.Oracle {
	if m.weather == nil {
		return nil
	}
	return m.weather
}

// decide runs one oracle-aware selection for a pair (current is the
// incumbent decision when re-evaluating a live adaptive channel).
// Every verdict emits a selector trace instant carrying the chosen
// decision and the rejected alternative networks.
func (m *Manager) decide(src, dst topology.NodeID, qos selector.QoS, current *selector.Decision) (selector.Decision, error) {
	dec, err := selector.Select(m.topo, selector.Request{
		Src: src, Dst: dst, QoS: qos, Oracle: m.Oracle(), Current: current,
	})
	if err == nil && m.tel.Tracing() {
		chose := dec.Method // a local decision carries no network
		if dec.Network != nil {
			chose = dec.String()
		}
		sp := m.tel.Instant("selector", "decide", int(src)).
			I64("dst", int64(dst)).Str("chose", chose)
		if rej := m.rejectedAlternatives(src, dst, dec); rej != "" {
			sp.Str("rejected", rej)
		}
		sp.End()
	}
	return dec, err
}

// rejectedAlternatives lists the pair's common networks the selector
// did not pick — the "why this one" context a trace reader wants.
func (m *Manager) rejectedAlternatives(src, dst topology.NodeID, dec selector.Decision) string {
	var b strings.Builder
	for _, nw := range m.topo.Common(src, dst) {
		if dec.Network != nil && nw.Name == dec.Network.Name {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(nw.Name)
	}
	return b.String()
}

// Open establishes a channel from src to dst under the manager's
// default QoS adjusted by opts, provisioning whatever substrate the
// selector picks. It blocks p until the channel is usable. The caller
// owns the returned end; Remote() is the dst-side end.
func (m *Manager) Open(p *vtime.Proc, src, dst topology.NodeID, opts ...Option) (Channel, error) {
	cfg := openConfig{qos: m.defaults()}
	for _, o := range opts {
		o(&cfg)
	}
	dec, err := m.decide(src, dst, cfg.qos, nil)
	if err != nil {
		return nil, err
	}
	if cfg.adaptive {
		return m.openAdaptive(p, src, dst, cfg.qos, dec)
	}
	ch, err := m.provision(p, src, dst, dec)
	if err != nil {
		return nil, err
	}
	// Only selector-driven channels feed the passive tap at close:
	// pinned channels (weather probes measure themselves; adaptive
	// inner substrates report live windows spanning one decision) would
	// fold lifetime averages that mix conditions.
	m.markObservable(ch)
	m.markObservable(ch.Remote())
	return ch, nil
}

// markObservable arms the weather passive tap on one channel end.
func (m *Manager) markObservable(ch Channel) {
	switch c := ch.(type) {
	case *msgChannel:
		c.observe = true
	case *vlinkChannel:
		c.observe = true
	}
}

// OpenWith establishes a channel with an explicit decision, bypassing
// the selector. It is the pinned-path API: weather probes use it to
// measure one concrete network, and adaptive re-opens use it to
// provision the decision they already took.
func (m *Manager) OpenWith(p *vtime.Proc, src, dst topology.NodeID, dec selector.Decision) (Channel, error) {
	return m.provision(p, src, dst, dec)
}

// provision builds the substrate for one decision, under a
// "session.open" span and the open-latency histogram.
func (m *Manager) provision(p *vtime.Proc, src, dst topology.NodeID, dec selector.Decision) (Channel, error) {
	cls := classOf(dec)
	atomic.AddInt64(&m.stats.Opens, 1)
	sp := m.tel.Begin("session", "open", int(src))
	if sp != nil {
		sp.I64("dst", int64(dst)).Str("method", dec.Method)
		if dec.Network != nil {
			sp.Str("network", dec.Network.Name)
		}
	}
	m.tel.Note("session", "open", int(src), int64(dst), int64(cls))
	t0 := m.k.Now()
	var ch Channel
	var err error
	switch {
	case cls == selector.PathLocal:
		atomic.AddInt64(&m.stats.LocalOpens, 1)
		ch = m.openLocal(src, dst, cls, dec)
	case cls == selector.PathSAN && !dec.Secure && !dec.Compress:
		atomic.AddInt64(&m.stats.CircuitOpens, 1)
		ch, err = m.openCircuit(p, src, dst, cls, dec)
	default:
		// Distributed substrate — also taken for SAN decisions that
		// demand protocol wrappers (CipherAlways, compression): the
		// bare madio circuit cannot cipher, but the VLink madio driver
		// composes with gsec/adoc, so the QoS is honoured rather than
		// silently dropped.
		atomic.AddInt64(&m.stats.VLinkOpens, 1)
		ch, err = m.openVLink(p, src, dst, cls, dec)
	}
	m.hOpen.Observe(m.k.Now().Sub(t0))
	sp.End()
	if err == nil {
		m.track(ch)
		m.track(ch.Remote())
	}
	return ch, err
}

// track enrols one provisioned end in the live registry (its Close
// deregisters it).
func (m *Manager) track(ch Channel) {
	switch c := ch.(type) {
	case *msgChannel:
		c.regID = m.register(ch)
	case *vlinkChannel:
		c.regID = m.register(ch)
	}
}

// classOf derives the path class from the decision the selector
// already took — one dispatch source, no second topology scan, no way
// for substrate choice and decision to diverge.
func classOf(dec selector.Decision) selector.PathClass {
	switch dec.Method {
	case "loopback":
		return selector.PathLocal
	case "madio":
		return selector.PathSAN
	}
	switch dec.Network.Kind {
	case topology.Ethernet:
		return selector.PathLAN
	case topology.WAN:
		return selector.PathWAN
	default:
		return selector.PathLossy
	}
}

// observeClose feeds one closed channel's transfer counters to the
// weather service's passive tap (no-op without weather or network).
func (m *Manager) observeClose(info Info, opened vtime.Time) {
	if m.weather == nil || info.Decision.Network == nil {
		return
	}
	m.weather.ObserveTransfer(info.Src, info.Dst, info.Decision.Network.Name,
		info.BytesOut, m.k.Now().Sub(opened), false)
}

// openLocal provisions an in-memory pipe: same node, no network, no
// virtual-time cost beyond what the caller's own protocol charges.
func (m *Manager) openLocal(src, dst topology.NodeID, cls selector.PathClass, dec selector.Decision) Channel {
	a := newMsgChannel(Info{Src: src, Dst: dst, Class: cls, Decision: dec})
	b := newMsgChannel(Info{Src: dst, Dst: src, Class: cls, Decision: dec})
	a.mgr, b.mgr = m, m
	a.opened, b.opened = m.k.Now(), m.k.Now()
	a.peer, b.peer = b, a
	a.sendf = func(segs [][]byte) { b.deliver(copySegs(segs)) }
	b.sendf = func(segs [][]byte) { a.deliver(copySegs(segs)) }
	return a
}

// openCircuit provisions (or shares) the pair's cached 2-rank circuit.
func (m *Manager) openCircuit(p *vtime.Proc, src, dst topology.NodeID, cls selector.PathClass, dec selector.Decision) (Channel, error) {
	key := [2]topology.NodeID{src, dst}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	pc, ok := m.pairs[key]
	if !ok {
		// Wiring a SAN-only circuit never blocks (madio + loopback
		// links), so this check-then-build cannot interleave with
		// another proc's.
		m.circSeq++
		circs, err := m.sub.NewCircuits(p,
			fmt.Sprintf("session:%d-%d.%d", key[0], key[1], m.circSeq), key[:])
		if err != nil {
			return nil, err
		}
		pc = &pairCircuit{key: key, circs: circs,
			sem: vtime.NewSemaphore(fmt.Sprintf("session:pair:%d-%d", key[0], key[1]), 1)}
		m.pairs[key] = pc
		atomic.AddInt64(&m.stats.CircuitsBuilt, 1)
	} else {
		atomic.AddInt64(&m.stats.CircuitReuses, 1)
	}
	// Count the session before queueing on the semaphore so an earlier
	// session's release cannot tear the circuit down under us.
	pc.refs++
	pc.sem.Acquire(p)

	rank := func(n topology.NodeID) int {
		if key[0] == n {
			return 0
		}
		return 1
	}
	cs, cr := pc.circs[rank(src)], pc.circs[rank(dst)]
	a := newMsgChannel(Info{Src: src, Dst: dst, Class: cls, Decision: dec})
	b := newMsgChannel(Info{Src: dst, Dst: src, Class: cls, Decision: dec})
	a.mgr, b.mgr = m, m
	a.opened, b.opened = m.k.Now(), m.k.Now()
	a.peer, b.peer = b, a
	a.sendf = circuitSend(cs, rank(dst))
	b.sendf = circuitSend(cr, rank(src))
	attachCircuitRx(cs, a)
	attachCircuitRx(cr, b)
	// The session ends when both ends closed: release the pair, and
	// tear the circuit down when no other session holds it.
	open := 2
	release := func() {
		open--
		if open > 0 {
			return
		}
		pc.sem.Release()
		pc.refs--
		if pc.refs == 0 {
			for _, c := range pc.circs {
				c.Close()
			}
			delete(m.pairs, pc.key)
			atomic.AddInt64(&m.stats.CircuitsClosed, 1)
		}
	}
	a.closef, b.closef = release, release
	return a, nil
}

// circuitSend packs one message to the fixed peer rank. The circuit
// charges the abstraction cost; segments are copied (SendSafer) so
// callers may reuse their buffers.
func circuitSend(c *circuit.Circuit, dst int) func([][]byte) {
	return func(segs [][]byte) {
		out := c.BeginPacking(dst)
		for _, s := range segs {
			out.Pack(s, madapi.SendSafer)
		}
		out.EndPacking()
	}
}

// attachCircuitRx pumps the circuit's delivered messages into the
// channel end. Runs in kernel context on arrival; no virtual-time cost
// beyond what Circuit.Deliver already charged.
func attachCircuitRx(c *circuit.Circuit, end *msgChannel) {
	drain := func() {
		for {
			in, ok := c.TryBeginUnpacking()
			if !ok {
				return
			}
			shaped := in.(interface {
				NumSegs() int
				NextSegLen() int
			})
			segs := make([][]byte, shaped.NumSegs())
			for i := range segs {
				segs[i] = in.Unpack(shaped.NextSegLen(), madapi.ReceiveCheaper)
			}
			in.EndUnpacking()
			end.deliver(segs)
		}
	}
	c.SetRxNotify(drain)
	drain() // anything delivered before the notify hook was installed
}

// openVLink provisions a per-session VLink driver stack (the
// distributed paradigm, alternate methods included).
func (m *Manager) openVLink(p *vtime.Proc, src, dst topology.NodeID, cls selector.PathClass, dec selector.Decision) (Channel, error) {
	va, vb, err := m.sub.DialVLinkWith(p, src, dst, dec)
	if err != nil {
		return nil, err
	}
	a := &vlinkChannel{v: va, info: Info{Src: src, Dst: dst, Class: cls, Decision: dec}}
	b := &vlinkChannel{v: vb, info: Info{Src: dst, Dst: src, Class: cls, Decision: dec}}
	a.mgr, b.mgr = m, m
	a.opened, b.opened = m.k.Now(), m.k.Now()
	a.remote, b.remote = b, a
	return a, nil
}

func copySegs(segs [][]byte) [][]byte {
	out := make([][]byte, len(segs))
	for i, s := range segs {
		out[i] = append([]byte(nil), s...)
	}
	return out
}
