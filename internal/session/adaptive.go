package session

// Adaptive sessions: the WithAdaptive channel is a record-framed
// wrapper over whatever inner channel the selector provisions. Every
// logical operation (a Send or a Write) becomes one sequence-numbered
// record; both ends keep a replay buffer of records the peer has not
// received yet. When the pair's decision changes — the weather oracle
// reports the path degraded past the hysteresis threshold, or the link
// goes down outright — the wrapper closes the inner substrate, opens a
// fresh one on the new decision, runs a sequence-numbered resume
// handshake (each side tells the other which record it expects next),
// replays the gap, and continues. Applications see one uninterrupted
// channel; only Info().Decision and the Reselects/Resumes counters
// betray that the ground moved underneath.
//
// Record wire format (one inner Send per record):
//
//	segment 0: [1B kind][8B seq][2B nsegs]   fixed header
//	segment 1: [4B len] x nsegs              segment sizes
//	segment 2..: the record's payload segments
//
// Resume wire format (first message each way on a re-opened substrate):
//
//	segment 0: [8B epoch][8B sendNext][8B recvNext]
//
// Payload segments are cloned into the record at send time: resilience
// costs one copy — the replay buffer must survive the caller reusing
// its buffers, so the zero-copy borrow contract of the static path
// cannot hold here.

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"padico/internal/iovec"
	"padico/internal/selector"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

const (
	recKindMsg    = 1 // a Send: segment boundaries are meaningful
	recKindStream = 2 // a Write: one payload segment of stream bytes

	recHdrLen    = 1 + 8 + 2
	resumeLen    = 8 + 8 + 8
	maxRecordLen = 256 << 10 // stream records are split at this size

	// adaptiveStall bounds one record send attempt: a send that makes
	// no progress for this long (virtual) is declared stalled and the
	// epoch is re-opened. Large enough that a merely degraded link
	// finishes a max-size record with margin.
	adaptiveStall = 5 * time.Second
	// adaptiveRetry is the pause between failed re-open attempts
	// (outage: the re-dial itself fails until the link is restored).
	adaptiveRetry = 500 * time.Millisecond

	// Live passive tap: a saturating adaptive sender measures its own
	// substrate-acceptance rate and feeds it to the weather service as
	// a bandwidth observation — a degrading link is detected within a
	// window of records instead of a probe cycle. Both thresholds must
	// be met before folding: the byte floor keeps tiny exchanges out,
	// the blocked-time floor keeps a sparse sender (whose records are
	// absorbed instantly by buffers, measuring nothing) from reporting
	// fantasy bandwidth.
	liveWindowBytes = 512 << 10
	liveWindowMin   = 200 * time.Millisecond

	// rxWindowBytes bounds the receive-side inbox: once this many
	// payload bytes sit undelivered, the pump stops draining the
	// substrate, so the sender feels backpressure through the inner
	// transport's own flow control just as it would on a static
	// channel.
	rxWindowBytes = 1 << 20
)

// record is one framed operation in flight between the ends.
type record struct {
	kind byte
	seq  uint64
	segs [][]byte
	// ctx is the sender's trace context at framing time. The live send
	// path inherits it ambiently (the tx helper proc is spawned by the
	// caller), but a replay runs in whichever proc re-opened the epoch —
	// the stored context keeps replayed records attributed to their
	// originating requests. When tracing, it also rides the wire so the
	// receive pump adopts the request identity across the node boundary.
	ctx vtime.TraceCtx
}

// dirState is one direction's sequencing: seq numbers assigned by the
// sender, the receiver's expectation, and the replay buffer in between.
type dirState struct {
	sendNext uint64
	recvNext uint64
	buf      []record // records with seq in [recvNext, sendNext)
	// eofAfter, once >= 0, is the sender's sendNext at close time: the
	// receiver reads EOF after delivering that many records.
	eofAfter int64
}

func newDirState() *dirState { return &dirState{eofAfter: -1} }

// prune drops replay entries the receiver has confirmed (recvNext
// advanced past them).
func (d *dirState) prune() {
	i := 0
	for i < len(d.buf) && d.buf[i].seq < d.recvNext {
		i++
	}
	if i > 0 {
		d.buf = append(d.buf[:0], d.buf[i:]...)
	}
}

// adaptiveState is shared by the two ends of one adaptive session.
type adaptiveState struct {
	mgr      *Manager
	src, dst topology.NodeID
	qos      selector.QoS

	dec   selector.Decision
	cls   selector.PathClass
	inner Channel // current epoch's substrate (src-side end)
	epoch int

	reopening bool
	epochCond *vtime.Cond // broadcast when a re-open completes
	done      bool        // both ends closed; inner released
	unsub     func()      // weather-subscription cancel (nil without weather)

	a2b, b2a *dirState
	ends     [2]*adaptiveEnd // owner end first

	// Live passive-tap window (see liveWindowBytes).
	winBytes   int64
	winElapsed vtime.Duration

	reselects, resumes int64
}

// observeLive accumulates one accepted record into the passive-tap
// window and reports the window when it is measurable. Compressed
// decisions are skipped: the wrapper sees application bytes, and the
// wire moves fewer — folding that ratio in as link bandwidth would
// poison the forecast. A record the substrate absorbed without
// blocking measured nothing — it *resets* the window rather than
// merely not reporting it, so a sparse sender's buffered bytes can
// never be divided by a later saturated stretch's blocked time.
func (st *adaptiveState) observeLive(n int, blocked vtime.Duration) {
	if st.mgr.weather == nil || st.dec.Network == nil || st.dec.Compress {
		return
	}
	if blocked < time.Millisecond {
		st.winBytes, st.winElapsed = 0, 0
		return
	}
	st.winBytes += int64(n)
	st.winElapsed += blocked
	if st.winBytes >= liveWindowBytes && st.winElapsed >= liveWindowMin {
		st.mgr.weather.ObserveTransfer(st.src, st.dst, st.dec.Network.Name,
			st.winBytes, st.winElapsed, true)
		st.winBytes, st.winElapsed = 0, 0
	}
}

// adaptiveEnd is one application-facing end.
type adaptiveEnd struct {
	st    *adaptiveState
	peer  *adaptiveEnd
	owner bool // the src-side end (its inner end is st.inner itself)

	tx *dirState // direction this end sends on
	rx *dirState // direction this end receives on

	txSem      *vtime.Semaphore // per-direction record FIFO
	inbox      []record
	inboxBytes int
	rxCond     *vtime.Cond
	rxSpace    *vtime.Cond // pump waits here while the inbox is full

	segs   [][]byte // partially consumed message record
	stream []byte   // partially consumed stream record

	info   Info
	closed bool
}

// openAdaptive provisions the initial substrate and wraps it.
func (m *Manager) openAdaptive(p *vtime.Proc, src, dst topology.NodeID, qos selector.QoS, dec selector.Decision) (Channel, error) {
	inner, err := m.provision(p, src, dst, dec)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&m.stats.AdaptiveOpens, 1)
	st := &adaptiveState{
		mgr: m, src: src, dst: dst, qos: qos,
		dec: dec, cls: classOf(dec), inner: inner,
		epochCond: vtime.NewCond(fmt.Sprintf("adaptive:%d-%d", src, dst)),
		a2b:       newDirState(), b2a: newDirState(),
	}
	a := &adaptiveEnd{st: st, owner: true, tx: st.a2b, rx: st.b2a,
		txSem:   vtime.NewSemaphore(fmt.Sprintf("adaptive:tx:%d->%d", src, dst), 1),
		rxCond:  vtime.NewCond(fmt.Sprintf("adaptive:rx:%d<-%d", src, dst)),
		rxSpace: vtime.NewCond(fmt.Sprintf("adaptive:rxspace:%d<-%d", src, dst)),
		info:    Info{Src: src, Dst: dst, Class: st.cls, Decision: dec}}
	b := &adaptiveEnd{st: st, owner: false, tx: st.b2a, rx: st.a2b,
		txSem:   vtime.NewSemaphore(fmt.Sprintf("adaptive:tx:%d->%d", dst, src), 1),
		rxCond:  vtime.NewCond(fmt.Sprintf("adaptive:rx:%d<-%d", dst, src)),
		rxSpace: vtime.NewCond(fmt.Sprintf("adaptive:rxspace:%d<-%d", dst, src)),
		info:    Info{Src: dst, Dst: src, Class: st.cls, Decision: dec}}
	a.peer, b.peer = b, a
	st.ends = [2]*adaptiveEnd{a, b}
	st.spawnPumps(a, b)
	// Outage watch: when the weather declares the session's current
	// network down, close the inner substrate so blocked operations
	// error out and re-open instead of waiting on a dead link.
	if m.weather != nil {
		st.unsub = m.weather.Subscribe(func(x, y topology.NodeID, nw *topology.Network, f selector.Forecast) {
			if st.done || !f.Down || nw != st.dec.Network {
				return
			}
			// Forecasts are published for site-representative pairs:
			// match on the session pair's sites, not exact node ids.
			if (m.topo.SameSite(x, src) && m.topo.SameSite(y, dst)) ||
				(m.topo.SameSite(x, dst) && m.topo.SameSite(y, src)) {
				st.inner.Close()
				st.inner.Remote().Close()
			}
		})
	}
	return a, nil
}

// innerEnd returns this end's side of the current substrate.
func (e *adaptiveEnd) innerEnd() Channel {
	if e.owner {
		return e.st.inner
	}
	return e.st.inner.Remote()
}

// spawnPumps starts one receive pump per end for the current epoch.
func (st *adaptiveState) spawnPumps(a, b *adaptiveEnd) {
	ep := st.epoch
	st.mgr.k.GoDaemon(fmt.Sprintf("adaptive:rx:%d->%d.%d", st.src, st.dst, ep),
		func(q *vtime.Proc) { st.pump(q, ep, b) })
	st.mgr.k.GoDaemon(fmt.Sprintf("adaptive:rx:%d->%d.%d", st.dst, st.src, ep),
		func(q *vtime.Proc) { st.pump(q, ep, a) })
}

// pump reads records from end's side of epoch ep's substrate and
// delivers them in sequence. A pump outlived by its epoch discards
// whatever it still reads — the resume protocol replays anything the
// handshake did not account for.
func (st *adaptiveState) pump(q *vtime.Proc, ep int, end *adaptiveEnd) {
	for {
		if st.done || st.epoch != ep {
			return
		}
		inner := end.innerEnd()
		rec, err := readRecord(q, inner, st.mgr.tel.Tracing())
		if err != nil {
			return
		}
		if !rec.ctx.Zero() {
			// Adopt the wire-carried request context: delivery and the
			// substrate reads for the next record attribute to the request
			// whose bytes they move.
			st.mgr.k.SetTraceCtx(rec.ctx)
		}
		if st.done || st.epoch != ep {
			return // stale epoch: the resume handshake governs now
		}
		if rec.seq < end.rx.recvNext {
			continue // duplicate of a record the old epoch delivered
		}
		if rec.seq > end.rx.recvNext {
			// A hole means the epoch is poisoned: stop delivering; the
			// sender's stall watchdog will re-open and replay the gap.
			return
		}
		// Receiver backpressure: stop draining the substrate while the
		// application is behind — the inner transport's flow control
		// then pushes back on the sender. recvNext is only advanced
		// when the record is actually delivered, so a record dropped
		// here by an epoch change is replayed by the resume.
		for end.inboxBytes >= rxWindowBytes && !st.done && st.epoch == ep {
			end.rxSpace.Wait(q)
		}
		if st.done || st.epoch != ep {
			return
		}
		end.rx.recvNext++
		end.rx.prune()
		end.inbox = append(end.inbox, rec)
		end.inboxBytes += recPayloadLen(rec)
		end.rxCond.Broadcast()
	}
}

// recPayloadLen sums one record's payload bytes.
func recPayloadLen(rec record) int {
	n := 0
	for _, s := range rec.segs {
		n += len(s)
	}
	return n
}

// ---------------------------------------------------------------------
// Record wire helpers.

// traced appends one fixed trace-context segment to every record (and
// expects one back): both ends share the manager's hub, so the flag is
// consistent by construction and the untraced wire stays byte-identical.
func writeRecord(q *vtime.Proc, ch Channel, rec record, traced bool) error {
	hdr := make([]byte, recHdrLen)
	hdr[0] = rec.kind
	binary.BigEndian.PutUint64(hdr[1:], rec.seq)
	binary.BigEndian.PutUint16(hdr[9:], uint16(len(rec.segs)))
	sizes := make([]byte, 4*len(rec.segs))
	segs := make([][]byte, 0, 3+len(rec.segs))
	segs = append(segs, hdr, sizes)
	for i, s := range rec.segs {
		binary.BigEndian.PutUint32(sizes[4*i:], uint32(len(s)))
		segs = append(segs, s)
	}
	if traced {
		segs = append(segs, telemetry.EncodeCtx(rec.ctx))
	}
	return ch.Send(q, segs...)
}

func readRecord(q *vtime.Proc, ch Channel, traced bool) (record, error) {
	hdrSeg, err := ch.Recv(q, recHdrLen)
	if err != nil {
		return record{}, err
	}
	hdr := hdrSeg[0]
	rec := record{kind: hdr[0], seq: binary.BigEndian.Uint64(hdr[1:])}
	n := int(binary.BigEndian.Uint16(hdr[9:]))
	sizesSeg, err := ch.Recv(q, 4*n)
	if err != nil {
		return record{}, err
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = int(binary.BigEndian.Uint32(sizesSeg[0][4*i:]))
	}
	rec.segs, err = ch.Recv(q, sizes...)
	if err != nil {
		return record{}, err
	}
	if traced {
		ctxSeg, err := ch.Recv(q, telemetry.CtxWireLen)
		if err != nil {
			return record{}, err
		}
		rec.ctx = telemetry.DecodeCtx(ctxSeg[0])
	}
	return rec, nil
}

// sendAttempt runs one guarded record write: the write happens in a
// helper proc so a link that dies (or stalls) under it cannot wedge the
// caller — after adaptiveStall the attempt is abandoned and the epoch
// re-opened. An abandoned write that later completes is harmless: its
// record is replayed and the pump drops the duplicate.
func (st *adaptiveState) sendAttempt(p *vtime.Proc, ch Channel, rec record) bool {
	done := vtime.NewQueue[error]("adaptive:send")
	st.mgr.k.GoDaemon("adaptive:tx", func(q *vtime.Proc) {
		done.Push(writeRecord(q, ch, rec, st.mgr.tel.Tracing()))
	})
	err, ok := done.PopTimeout(p, adaptiveStall)
	return ok && err == nil
}

// ---------------------------------------------------------------------
// Re-selection and resume.

// maybeReselect re-evaluates the pair's decision at an operation
// boundary and re-opens when it changed. It also parks the caller
// while another proc's re-open is in flight.
func (e *adaptiveEnd) maybeReselect(p *vtime.Proc) {
	st := e.st
	for st.reopening {
		st.epochCond.Wait(p)
	}
	if st.done || st.mgr.weather == nil {
		return
	}
	if st.cls == selector.PathLocal || st.cls == selector.PathSAN {
		return // nothing to re-select inside the machine room
	}
	dec, err := st.mgr.decide(st.src, st.dst, st.qos, &st.dec)
	if err != nil || dec == st.dec {
		return
	}
	st.reopen(p, dec)
}

// ensureReopen is called after a failed send attempt on epoch seen: if
// nobody advanced the epoch yet, this proc re-opens (re-evaluating the
// decision first); otherwise it waits out the re-open in flight. Either
// way the failed record is covered by the resume replay.
func (e *adaptiveEnd) ensureReopen(p *vtime.Proc, seen int) {
	st := e.st
	for st.reopening {
		st.epochCond.Wait(p)
	}
	if st.done || st.epoch != seen {
		return
	}
	dec := st.dec
	if next, err := st.mgr.decide(st.src, st.dst, st.qos, &st.dec); err == nil {
		dec = next
	}
	st.reopen(p, dec)
}

// reopen tears down the current substrate, provisions dec, runs the
// resume handshake and replays both directions' gaps. It retries (with
// a fresh decision) until it succeeds or the session is closed. A
// successful re-open whose decision differs from the incumbent counts
// as a re-selection; every one counts as a resume.
func (st *adaptiveState) reopen(p *vtime.Proc, dec selector.Decision) {
	st.reopening = true
	sp := st.mgr.tel.Begin("session", "reselect", int(st.src))
	if sp != nil {
		sp.I64("dst", int64(st.dst)).Str("from", st.dec.String()).Str("to", dec.String())
	}
	defer func() {
		st.reopening = false
		st.epochCond.Broadcast()
		sp.End()
	}()
	st.mgr.tel.Note("session", "reselect: reopening epoch", int(st.src), int64(st.dst), int64(st.epoch))
	st.inner.Close()
	st.inner.Remote().Close()
	for !st.done {
		inner, err := st.mgr.OpenWith(p, st.src, st.dst, dec)
		if err == nil {
			// The session may have been closed while the open blocked:
			// release the fresh substrate instead of adopting it.
			if st.done {
				inner.Close()
				inner.Remote().Close()
				return
			}
			if res, ok := st.handshake(p, inner); ok && !st.done {
				st.inner = inner
				st.epoch++
				// Stale pumps parked on a full inbox re-check the epoch.
				st.ends[0].rxSpace.Broadcast()
				st.ends[1].rxSpace.Broadcast()
				// New pumps first, then the replay: the pumps drain what
				// the replay writes, so a large gap cannot wedge on
				// substrate backpressure.
				st.spawnPumps(st.ends[0], st.ends[1])
				if st.replay(p, res) {
					// Only a re-open that replayed and continued counts.
					if dec != st.dec {
						st.reselects++
						atomic.AddInt64(&st.mgr.stats.Reselects, 1)
					}
					st.dec = dec
					st.cls = classOf(dec)
					st.winBytes, st.winElapsed = 0, 0 // new decision, fresh window
					st.resumes++
					atomic.AddInt64(&st.mgr.stats.Resumes, 1)
					if st.mgr.tel.Tracing() {
						st.mgr.tel.Instant("session", "resume", int(st.src)).
							I64("epoch", int64(st.epoch)).Str("on", dec.String()).End()
					}
					st.mgr.tel.Note("session", "resume: replay complete", int(st.src), int64(st.dst), int64(st.epoch))
					return
				}
				// Replay died (the new link failed too): close and retry.
				st.inner.Close()
				st.inner.Remote().Close()
			} else {
				inner.Close()
				inner.Remote().Close()
				if st.done {
					return
				}
			}
		}
		p.Sleep(adaptiveRetry)
		// The world may have changed while we slept.
		if next, derr := st.mgr.decide(st.src, st.dst, st.qos, &st.dec); derr == nil {
			dec = next
		}
	}
}

// resumePoint carries the wire-agreed replay start of each direction:
// the seq number the respective receiver said it expects next.
type resumePoint struct {
	a2bStart, b2aStart uint64
	err                error
}

// handshake runs the sequence-numbered resume exchange on a candidate
// substrate, both sides driven by the re-opening proc (the rendezvous
// the PadicoTM bootstrap would arbitrate). Each side announces its
// epoch, what it has sent and what it expects next; the replay starts
// from the wire-carried expectations. The exchange is guarded by the
// stall timeout like any send.
func (st *adaptiveState) handshake(p *vtime.Proc, inner Channel) (resumePoint, bool) {
	done := vtime.NewQueue[resumePoint]("adaptive:resume")
	epoch := uint64(st.epoch + 1)
	st.mgr.k.GoDaemon("adaptive:resume", func(q *vtime.Proc) {
		done.Push(func() resumePoint {
			a, b := inner, inner.Remote()
			// A -> B: my epoch, what I have sent, what I expect next.
			if err := a.Send(q, resumeFrame(epoch, st.a2b.sendNext, st.b2a.recvNext)); err != nil {
				return resumePoint{err: err}
			}
			gotE, _, b2aStart, err := readResume(q, b)
			if err != nil {
				return resumePoint{err: err}
			}
			if gotE != epoch {
				return resumePoint{err: fmt.Errorf("session: resume epoch %d, want %d", gotE, epoch)}
			}
			// B -> A: the mirror image.
			if err := b.Send(q, resumeFrame(epoch, st.b2a.sendNext, st.a2b.recvNext)); err != nil {
				return resumePoint{err: err}
			}
			gotE, _, a2bStart, err := readResume(q, a)
			if err != nil {
				return resumePoint{err: err}
			}
			if gotE != epoch {
				return resumePoint{err: fmt.Errorf("session: resume epoch %d, want %d", gotE, epoch)}
			}
			return resumePoint{a2bStart: a2bStart, b2aStart: b2aStart}
		}())
	})
	res, ok := done.PopTimeout(p, adaptiveStall)
	return res, ok && res.err == nil
}

func resumeFrame(epoch, sendNext, recvNext uint64) []byte {
	f := make([]byte, resumeLen)
	binary.BigEndian.PutUint64(f, epoch)
	binary.BigEndian.PutUint64(f[8:], sendNext)
	binary.BigEndian.PutUint64(f[16:], recvNext)
	return f
}

func readResume(q *vtime.Proc, ch Channel) (epoch, sendNext, recvNext uint64, err error) {
	segs, err := ch.Recv(q, resumeLen)
	if err != nil {
		return 0, 0, 0, err
	}
	return binary.BigEndian.Uint64(segs[0]),
		binary.BigEndian.Uint64(segs[0][8:]),
		binary.BigEndian.Uint64(segs[0][16:]), nil
}

// replay resends both directions' gaps on the fresh substrate, oldest
// first, starting from the wire-agreed resume points. It reports
// success.
func (st *adaptiveState) replay(p *vtime.Proc, res resumePoint) bool {
	for _, pair := range []struct {
		d     *dirState
		start uint64
		ch    Channel
	}{{st.a2b, res.a2bStart, st.inner}, {st.b2a, res.b2aStart, st.inner.Remote()}} {
		pair.d.prune()
		for _, rec := range append([]record(nil), pair.d.buf...) {
			if rec.seq < pair.start || rec.seq < pair.d.recvNext {
				continue // the receiver already has it
			}
			// Replay under the record's own context, not the re-opening
			// proc's: the resent bytes belong to the original request.
			prev := st.mgr.k.SetTraceCtx(rec.ctx)
			ok := st.sendAttempt(p, pair.ch, rec)
			st.mgr.k.SetTraceCtx(prev)
			if !ok {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------
// The Channel implementation.

// sendRecord frames one operation and delivers it (or arranges for the
// resume replay to). It returns once the record is accepted by the
// current substrate or covered by a re-open's replay buffer.
func (e *adaptiveEnd) sendRecord(p *vtime.Proc, kind byte, segs [][]byte) error {
	st := e.st
	if e.closed || st.done {
		return ErrClosed
	}
	if e.peer.closed {
		return ErrClosed
	}
	e.txSem.Acquire(p)
	defer e.txSem.Release()
	e.maybeReselect(p)
	if e.closed || st.done {
		return ErrClosed
	}
	rec := record{kind: kind, seq: e.tx.sendNext, segs: copySegs(segs),
		ctx: st.mgr.k.TraceCtx()}
	recBytes := 0
	for _, s := range rec.segs {
		recBytes += len(s)
	}
	e.tx.sendNext++
	e.tx.buf = append(e.tx.buf, rec)
	for {
		ep := st.epoch
		t0 := p.Now()
		if st.sendAttempt(p, e.innerEnd(), rec) {
			st.observeLive(recBytes, p.Now().Sub(t0))
			return nil
		}
		// The stall watchdog fired: record it and dump the flight ring —
		// the control-plane history leading here is the post-mortem.
		st.mgr.tel.Note("session", "watchdog: send stalled", int(e.info.Src), int64(e.info.Dst), int64(ep))
		st.mgr.tel.DumpFlight("session watchdog: send stalled")
		e.ensureReopen(p, ep)
		if st.done {
			return ErrClosed
		}
		if st.epoch != ep {
			// A re-open happened (ours or another proc's): its replay
			// covered this record.
			return nil
		}
	}
}

// waitRecord blocks until a record is deliverable, the peer closed
// (EOF once drained) or this end closed. When records are known to be
// outstanding (the sender's replay buffer is non-empty, or the peer
// closed with undelivered records) a silent stall triggers recovery —
// the receiver must not wait forever on an epoch that died under the
// last records in flight.
func (e *adaptiveEnd) waitRecord(p *vtime.Proc) (record, error) {
	for {
		if e.closed || e.st.done {
			return record{}, ErrClosed
		}
		if len(e.inbox) > 0 {
			rec := e.inbox[0]
			e.inbox = e.inbox[1:]
			e.inboxBytes -= recPayloadLen(rec)
			e.rxSpace.Signal()
			return rec, nil
		}
		if e.rx.eofAfter >= 0 && e.rx.recvNext >= uint64(e.rx.eofAfter) {
			return record{}, io.EOF
		}
		if len(e.rx.buf) > 0 || e.rx.eofAfter >= 0 {
			if !e.rxCond.WaitTimeout(p, adaptiveStall) {
				e.ensureReopen(p, e.st.epoch)
			}
		} else {
			e.rxCond.Wait(p)
		}
	}
}

// Send implements Channel.
func (e *adaptiveEnd) Send(p *vtime.Proc, segs ...[]byte) error {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	if err := e.sendRecord(p, recKindMsg, segs); err != nil {
		return err
	}
	e.info.Sends++
	e.info.BytesOut += int64(n)
	return nil
}

// SendVec implements Channel (the vector is borrowed only until the
// record clone is taken).
func (e *adaptiveEnd) SendVec(p *vtime.Proc, v iovec.Vec) error {
	segs := make([][]byte, len(v.Segs))
	for i, s := range v.Segs {
		segs[i] = s.B
	}
	return e.Send(p, segs...)
}

// Recv implements Channel: segment-granular consumption with exact
// sizes, buffered across calls within one record.
func (e *adaptiveEnd) Recv(p *vtime.Proc, sizes ...int) ([][]byte, error) {
	out := make([][]byte, 0, len(sizes))
	for _, n := range sizes {
		if len(e.segs) == 0 {
			rec, err := e.waitRecord(p)
			if err != nil {
				return nil, err
			}
			if rec.kind != recKindMsg {
				return nil, fmt.Errorf("%w: message read on a stream record", ErrProtocol)
			}
			e.segs = rec.segs
		}
		s := e.segs[0]
		if len(s) != n {
			return nil, fmt.Errorf("%w: segment is %d bytes, caller expects %d", ErrProtocol, len(s), n)
		}
		e.segs = e.segs[1:]
		e.info.BytesIn += int64(len(s))
		out = append(out, s)
	}
	e.info.Recvs++
	return out, nil
}

// RecvVec implements Channel (borrowed views; Release is a no-op).
func (e *adaptiveEnd) RecvVec(p *vtime.Proc, sizes ...int) (iovec.Vec, error) {
	segs, err := e.Recv(p, sizes...)
	if err != nil {
		return iovec.Vec{}, err
	}
	return iovec.Make(segs...), nil
}

// Write implements Channel: stream bytes travel as one or more
// bounded records (splitting keeps any single send attempt finite on a
// degraded link; stream framing carries no boundaries anyway).
func (e *adaptiveEnd) Write(p *vtime.Proc, data []byte) (int, error) {
	if len(data) == 0 {
		if err := e.sendRecord(p, recKindStream, [][]byte{{}}); err != nil {
			return 0, err
		}
		e.info.Sends++
		return 0, nil
	}
	total := 0
	for off := 0; off < len(data); {
		end := off + maxRecordLen
		if end > len(data) {
			end = len(data)
		}
		if err := e.sendRecord(p, recKindStream, [][]byte{data[off:end]}); err != nil {
			return total, err
		}
		e.info.Sends++
		e.info.BytesOut += int64(end - off)
		total += end - off
		off = end
	}
	return total, nil
}

// Read implements Channel: next stream bytes, record by record.
func (e *adaptiveEnd) Read(p *vtime.Proc, buf []byte) (int, error) {
	if len(e.stream) == 0 {
		if len(e.segs) > 0 {
			return 0, fmt.Errorf("%w: stream read inside a partially consumed message", ErrProtocol)
		}
		rec, err := e.waitRecord(p)
		if err != nil {
			return 0, err
		}
		if rec.kind != recKindStream || len(rec.segs) != 1 {
			return 0, fmt.Errorf("%w: stream read on a message record", ErrProtocol)
		}
		e.stream = rec.segs[0]
	}
	n := copy(buf, e.stream)
	e.stream = e.stream[n:]
	e.info.Recvs++
	e.info.BytesIn += int64(n)
	return n, nil
}

// ReadFull implements Channel.
func (e *adaptiveEnd) ReadFull(p *vtime.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := e.Read(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Remote implements Channel.
func (e *adaptiveEnd) Remote() Channel { return e.peer }

// Info implements Channel: the *current* decision plus this end's
// counters and the session's adaptation history.
func (e *adaptiveEnd) Info() Info {
	info := e.info
	info.Class = e.st.cls
	info.Decision = e.st.dec
	info.Reselects = e.st.reselects
	info.Resumes = e.st.resumes
	return info
}

// Close implements Channel: the peer drains what was already sent and
// then reads EOF; the substrate is released when both ends closed.
func (e *adaptiveEnd) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.tx.eofAfter = int64(e.tx.sendNext)
	e.rxCond.Broadcast()
	e.peer.rxCond.Broadcast()
	if e.peer.closed {
		e.st.done = true
		e.st.inner.Close()
		e.st.inner.Remote().Close()
		e.st.epochCond.Broadcast()
		e.rxSpace.Broadcast()
		e.peer.rxSpace.Broadcast()
		if e.st.unsub != nil {
			e.st.unsub()
			e.st.unsub = nil
		}
	}
	return nil
}
