package circuit

import (
	"testing"
	"time"

	"padico/internal/topology"
	"padico/internal/vtime"
)

// pipeLink is an in-memory LinkAdapter for collective edge-case tests:
// it delivers into the peer circuit after a small fixed latency, with
// deep-copied segments (the wire would copy too).
type pipeLink struct {
	k   *vtime.Kernel
	dst *Circuit
	src int // our rank, as seen by dst
}

func (l *pipeLink) Name() string { return "pipe" }

func (l *pipeLink) Send(plane Plane, segs [][]byte) {
	copied := make([][]byte, len(segs))
	for i, s := range segs {
		copied[i] = append([]byte(nil), s...)
	}
	l.k.After(time.Microsecond, func() { l.dst.Deliver(l.src, plane, copied) })
}

// wireGroup builds n fully connected circuits over pipe links.
func wireGroup(k *vtime.Kernel, n int) []*Circuit {
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	circs := make([]*Circuit, n)
	for r := range circs {
		circs[r] = New(k, "coll-test", r, nodes)
	}
	for i := range circs {
		for j := range circs {
			if i == j {
				circs[i].SetLink(i, NewLoopbackLink(k, circs[i], i))
			} else {
				circs[i].SetLink(j, &pipeLink{k: k, dst: circs[j], src: i})
			}
		}
	}
	return circs
}

// runRanks runs fn on every rank (rank 0 in the root proc) and waits.
func runRanks(t *testing.T, k *vtime.Kernel, n int, fn func(q *vtime.Proc, rank int)) {
	t.Helper()
	if err := k.Run(func(p *vtime.Proc) {
		wg := vtime.NewWaitGroup("ranks")
		for r := 1; r < n; r++ {
			wg.Add(1)
			k.Go("rank", func(q *vtime.Proc) {
				defer wg.Done()
				fn(q, r)
			})
		}
		fn(p, 0)
		wg.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBcastTwoRanksEveryRoot pins the smallest non-trivial broadcast:
// two ranks, each as root.
func TestBcastTwoRanksEveryRoot(t *testing.T) {
	for root := 0; root < 2; root++ {
		k := vtime.NewKernel()
		circs := wireGroup(k, 2)
		runRanks(t, k, 2, func(q *vtime.Proc, rank int) {
			var in []byte
			if rank == root {
				in = []byte("two-rank")
			}
			out := circs[rank].Bcast(q, root, in)
			if string(out) != "two-rank" {
				t.Errorf("root %d rank %d got %q", root, rank, out)
			}
		})
	}
}

// TestBcastNonZeroRootOddGroup pins root rotation on a non-power-of-two
// group with a non-zero root.
func TestBcastNonZeroRootOddGroup(t *testing.T) {
	const n, root = 5, 3
	k := vtime.NewKernel()
	circs := wireGroup(k, n)
	runRanks(t, k, n, func(q *vtime.Proc, rank int) {
		var in []byte
		if rank == root {
			in = []byte("rotated")
		}
		if out := circs[rank].Bcast(q, root, in); string(out) != "rotated" {
			t.Errorf("rank %d got %q", rank, out)
		}
	})
}

// TestCollectivesSingleRank: a one-rank group must complete every
// collective without touching any link.
func TestCollectivesSingleRank(t *testing.T) {
	k := vtime.NewKernel()
	circs := wireGroup(k, 1)
	if err := k.Run(func(p *vtime.Proc) {
		circs[0].Barrier(p)
		if out := circs[0].Bcast(p, 0, []byte("solo")); string(out) != "solo" {
			t.Errorf("bcast got %q", out)
		}
		sum := circs[0].AllReduce(p, []float64{3, 4}, OpSum)
		if sum[0] != 3 || sum[1] != 4 {
			t.Errorf("allreduce = %v", sum)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if circs[0].MsgsSent != 0 {
		t.Fatalf("single-rank collectives sent %d messages", circs[0].MsgsSent)
	}
}

// TestBarrierRepeatedReuse runs several barriers back to back on a
// three-rank group (ring sizes exercise the stash path in collRecv):
// round tags are reused across barriers, so a fast rank's next-barrier
// message must not satisfy a slow rank's current wait.
func TestBarrierRepeatedReuse(t *testing.T) {
	const n, rounds = 3, 4
	k := vtime.NewKernel()
	circs := wireGroup(k, n)
	arrivals := make([]int, n)
	runRanks(t, k, n, func(q *vtime.Proc, rank int) {
		for i := 0; i < rounds; i++ {
			// Skew the ranks so barrier generations overlap in flight.
			q.Sleep(time.Duration(rank) * 5 * time.Microsecond)
			circs[rank].Barrier(q)
			arrivals[rank]++
			if arrivals[rank] != i+1 {
				t.Errorf("rank %d finished barrier %d out of order", rank, i)
			}
		}
	})
	for r, a := range arrivals {
		if a != rounds {
			t.Fatalf("rank %d completed %d barriers, want %d", r, a, rounds)
		}
	}
}

// TestAllReduceBothTopologies pins the recursive-doubling (power of
// two) and ring (otherwise) paths including max/min ops.
func TestAllReduceBothTopologies(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		k := vtime.NewKernel()
		circs := wireGroup(k, n)
		runRanks(t, k, n, func(q *vtime.Proc, rank int) {
			got := circs[rank].AllReduce(q, []float64{float64(rank), float64(-rank)}, OpMax)
			if got[0] != float64(n-1) || got[1] != 0 {
				t.Errorf("n=%d rank %d max = %v", n, rank, got)
			}
		})
	}
}
