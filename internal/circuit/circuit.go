// Package circuit implements the parallel-paradigm abstract interface
// of the paper's abstraction layer (§4.2): communication on a definite
// set of nodes (a group — a cluster, a subset, or spanning several
// sites), an interface optimized for parallel runtimes with incremental
// packing and explicit semantics, and per-link adapters: a given
// Circuit instance can use different adapters for different links —
// MadIO (straight), SysIO / VLink (cross-paradigm, including the
// alternate WAN methods), and loopback.
//
// Collective operations — which the paper lists as future work
// ("Collective operations in Circuit still needs to be investigated") —
// are implemented here as an extension: dissemination barrier, binomial
// broadcast and recursive-doubling allreduce on a control plane
// separate from point-to-point traffic.
package circuit

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Plane separates point-to-point traffic from collective traffic.
type Plane byte

const (
	PlaneData Plane = iota
	PlaneColl
)

// LinkAdapter carries segment vectors to one fixed remote rank.
type LinkAdapter interface {
	// Name identifies the adapter kind ("madio", "sysio", "vlink",
	// "loopback").
	Name() string
	// Send transmits one message on the given plane.
	Send(plane Plane, segs [][]byte)
}

// incoming is one received message.
type incoming struct {
	src  int
	segs [][]byte
}

// Circuit is one instance of the parallel abstract interface.
type Circuit struct {
	k     *vtime.Kernel
	name  string
	self  int
	group []topology.NodeID
	links map[int]LinkAdapter
	rx    *vtime.Queue[*incoming]
	coll  *vtime.Queue[*incoming]

	MsgsSent int64
	MsgsRecv int64
}

// New creates a circuit for rank self within group. Links are attached
// afterwards with SetLink (the selector/builder decides adapters).
func New(k *vtime.Kernel, name string, self int, group []topology.NodeID) *Circuit {
	return &Circuit{
		k: k, name: name, self: self, group: group,
		links: make(map[int]LinkAdapter),
		rx:    vtime.NewQueue[*incoming](fmt.Sprintf("circuit:%s:%d:rx", name, self)),
		coll:  vtime.NewQueue[*incoming](fmt.Sprintf("circuit:%s:%d:coll", name, self)),
	}
}

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.name }

// Self implements madapi.Channel.
func (c *Circuit) Self() int { return c.self }

// Size implements madapi.Channel.
func (c *Circuit) Size() int { return len(c.group) }

// Group returns the member nodes, indexed by rank.
func (c *Circuit) Group() []topology.NodeID { return c.group }

// SetLink installs the adapter used to reach rank dst.
func (c *Circuit) SetLink(dst int, a LinkAdapter) { c.links[dst] = a }

// Link returns the adapter for rank dst (nil if unset).
func (c *Circuit) Link(dst int) LinkAdapter { return c.links[dst] }

// Close releases every link adapter that holds a closable resource
// (MadIO logical channels, VLinks), in rank order so teardown event
// sequences stay deterministic. The session layer calls it when the
// last channel over a cached circuit is released; closing twice is
// harmless.
func (c *Circuit) Close() {
	ranks := make([]int, 0, len(c.links))
	for r := range c.links {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if cl, ok := c.links[r].(interface{ Close() }); ok {
			cl.Close()
		}
	}
}

// SetRxNotify installs a data-plane arrival callback (kernel context).
func (c *Circuit) SetRxNotify(fn func()) { c.rx.OnPush = fn }

// Deliver is called by adapters when a message arrives (kernel
// context). The receive-side abstraction cost is charged here.
func (c *Circuit) Deliver(src int, plane Plane, segs [][]byte) {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	cost := model.CircuitCost + model.CircuitPerByte.Cost(n)
	c.k.Schedule(cost, func() {
		c.MsgsRecv++
		if plane == PlaneColl {
			c.coll.Push(&incoming{src: src, segs: segs})
			return
		}
		c.rx.Push(&incoming{src: src, segs: segs})
	})
}

// send transmits on a plane, charging the send-side abstraction cost.
func (c *Circuit) send(dst int, plane Plane, segs [][]byte) {
	link, ok := c.links[dst]
	if !ok {
		panic(fmt.Sprintf("circuit %s: no link from rank %d to rank %d", c.name, c.self, dst))
	}
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	c.MsgsSent++
	cost := model.CircuitCost + model.CircuitPerByte.Cost(n)
	c.k.Schedule(cost, func() { link.Send(plane, segs) })
}

// ---------------------------------------------------------------------
// madapi.Channel: incremental packing interface.

var _ madapi.Channel = (*Circuit)(nil)

// BeginPacking implements madapi.Channel.
func (c *Circuit) BeginPacking(dst int) madapi.OutMessage {
	return &outMessage{c: c, dst: dst}
}

// BeginUnpacking implements madapi.Channel.
func (c *Circuit) BeginUnpacking(p *vtime.Proc) madapi.InMessage {
	in := c.rx.Pop(p)
	return &inMessage{msg: in}
}

// TryBeginUnpacking implements madapi.Channel.
func (c *Circuit) TryBeginUnpacking() (madapi.InMessage, bool) {
	in, ok := c.rx.TryPop()
	if !ok {
		return nil, false
	}
	return &inMessage{msg: in}, true
}

type outMessage struct {
	c     *Circuit
	dst   int
	segs  [][]byte
	ended bool
}

// Pack implements madapi.OutMessage.
func (m *outMessage) Pack(data []byte, mode madapi.PackMode) {
	if m.ended {
		panic("circuit: Pack after EndPacking")
	}
	if mode == madapi.SendSafer {
		data = append([]byte(nil), data...)
	}
	m.segs = append(m.segs, data)
}

// EndPacking implements madapi.OutMessage.
func (m *outMessage) EndPacking() {
	if m.ended {
		panic("circuit: EndPacking twice")
	}
	m.ended = true
	m.c.send(m.dst, PlaneData, m.segs)
}

type inMessage struct {
	msg     *incoming
	next    int
	cheaper bool
}

// Src implements madapi.InMessage.
func (m *inMessage) Src() int { return m.msg.src }

// NextSegLen returns the size of the next segment to unpack; consumers
// with self-describing formats (the FastMessage personality) use it.
func (m *inMessage) NextSegLen() int { return len(m.msg.segs[m.next]) }

// NumSegs returns how many segments the message was packed with;
// paradigm-agnostic consumers (the session layer) use it to unpack a
// message whose shape they did not dictate.
func (m *inMessage) NumSegs() int { return len(m.msg.segs) }

// Unpack implements madapi.InMessage.
func (m *inMessage) Unpack(n int, mode madapi.UnpackMode) []byte {
	if mode == madapi.ReceiveExpress && m.cheaper {
		panic("circuit: ReceiveExpress after ReceiveCheaper")
	}
	if mode == madapi.ReceiveCheaper {
		m.cheaper = true
	}
	if m.next >= len(m.msg.segs) {
		panic("circuit: Unpack beyond packed segments")
	}
	seg := m.msg.segs[m.next]
	if len(seg) != n {
		panic(fmt.Sprintf("circuit: Unpack size %d != packed %d", n, len(seg)))
	}
	m.next++
	return seg
}

// EndUnpacking implements madapi.InMessage.
func (m *inMessage) EndUnpacking() {
	if m.next != len(m.msg.segs) {
		panic("circuit: EndUnpacking with segments left")
	}
}

// Discard implements madapi.InMessage.
func (m *inMessage) Discard() { m.next = len(m.msg.segs) }

// ---------------------------------------------------------------------
// Collectives (extension; see package comment).

// collRecv blocks for the next control-plane message from src with the
// given 1-byte tag (messages from other sources queue).
func (c *Circuit) collRecv(p *vtime.Proc, src int, tag byte) []byte {
	var stash []*incoming
	defer func() {
		for _, s := range stash {
			c.coll.Push(s)
		}
	}()
	for {
		in := c.coll.Pop(p)
		if in.src == src && in.segs[0][0] == tag {
			return in.segs[1]
		}
		stash = append(stash, in)
	}
}

func (c *Circuit) collSend(dst int, tag byte, payload []byte) {
	c.send(dst, PlaneColl, [][]byte{{tag}, payload})
}

// Barrier blocks p until every rank reached the barrier (dissemination
// algorithm, ⌈log2 n⌉ rounds).
func (c *Circuit) Barrier(p *vtime.Proc) {
	n := len(c.group)
	for dist, round := 1, byte(0); dist < n; dist, round = dist*2, round+1 {
		to := (c.self + dist) % n
		from := (c.self - dist + n) % n
		c.collSend(to, 0x10+round, nil)
		c.collRecv(p, from, 0x10+round)
	}
}

// Bcast distributes root's data to every rank (binomial tree) and
// returns the data on all ranks.
func (c *Circuit) Bcast(p *vtime.Proc, root int, data []byte) []byte {
	n := len(c.group)
	vrank := (c.self - root + n) % n
	if vrank != 0 {
		// Receive from parent.
		mask := 1
		for ; mask < n; mask <<= 1 {
			if vrank&mask != 0 {
				break
			}
		}
		parent := ((vrank &^ mask) + root) % n
		data = c.collRecv(p, parent, 0x20)
	}
	// Forward to children.
	mask := 1
	for ; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			break
		}
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		child := vrank | m
		if child < n && child != vrank {
			c.collSend((child+root)%n, 0x20, data)
		}
	}
	return data
}

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// Common reduce operations.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin ReduceOp = func(a, b float64) float64 { return math.Min(a, b) }
)

// AllReduce combines vec element-wise across all ranks with op and
// returns the result on every rank (recursive doubling when the group
// is a power of two, ring fallback otherwise).
func (c *Circuit) AllReduce(p *vtime.Proc, vec []float64, op ReduceOp) []float64 {
	n := len(c.group)
	acc := append([]float64(nil), vec...)
	if n&(n-1) == 0 {
		for dist, round := 1, byte(0); dist < n; dist, round = dist*2, round+1 {
			peer := c.self ^ dist
			c.collSend(peer, 0x30+round, EncodeF64(acc))
			remote := DecodeF64(c.collRecv(p, peer, 0x30+round))
			for i := range acc {
				acc[i] = op(acc[i], remote[i])
			}
		}
		return acc
	}
	// Ring: n-1 steps of pass-and-accumulate, then broadcast from rank 0.
	next := (c.self + 1) % n
	prev := (c.self - 1 + n) % n
	if c.self == 0 {
		c.collSend(next, 0x40, EncodeF64(acc))
		final := DecodeF64(c.collRecv(p, prev, 0x40))
		return c.bcastF64(p, final)
	}
	partial := DecodeF64(c.collRecv(p, prev, 0x40))
	for i := range partial {
		partial[i] = op(partial[i], acc[i])
	}
	c.collSend(next, 0x40, EncodeF64(partial))
	return c.bcastF64(p, nil)
}

func (c *Circuit) bcastF64(p *vtime.Proc, data []float64) []float64 {
	var raw []byte
	if c.self == 0 {
		raw = EncodeF64(data)
	}
	return DecodeF64(c.Bcast(p, 0, raw))
}

// EncodeF64 is the collectives' float64 vector wire format (big-endian
// IEEE 754); the group layer's Reduce shares it.
func EncodeF64(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// DecodeF64 inverts EncodeF64.
func DecodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
	}
	return out
}
