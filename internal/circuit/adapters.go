package circuit

import (
	"encoding/binary"
	"time"

	"padico/internal/madapi"
	"padico/internal/netaccess"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ---------------------------------------------------------------------
// MadIO adapter: the straight parallel path. One MadIOPort per
// (circuit, fabric, node) owns a logical channel; per-link adapters are
// thin views on it.

// MadIOPort binds a circuit to a logical channel of a MadIO instance.
type MadIOPort struct {
	mio      *netaccess.MadIO
	logical  uint16
	circ     *Circuit
	madRank  func(circuitRank int) int // circuit rank -> madeleine rank
	circRank func(madRank int) int
	closed   bool
}

// Close releases the port's MadIO logical channel — logical ids are a
// finite per-node resource, so cached circuits return theirs when the
// last session over them closes. Idempotent (a 2-rank circuit closes
// each per-link view of the port).
func (p *MadIOPort) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.mio.Unregister(p.logical)
}

// NewMadIOPort registers the circuit on the MadIO logical channel and
// returns a port from which per-link adapters are derived. The two rank
// translators map between circuit ranks and Madeleine ranks on this
// fabric.
func NewMadIOPort(mio *netaccess.MadIO, logical uint16, circ *Circuit,
	madRank func(int) int, circRank func(int) int) *MadIOPort {
	p := &MadIOPort{mio: mio, logical: logical, circ: circ, madRank: madRank, circRank: circRank}
	mio.Register(logical, func(_ *vtime.Proc, src int, in madapi.InMessage) {
		// Express header first (plane + count), then all lengths in one
		// express segment, then the payload segments — express never
		// follows cheaper, per the Madeleine protocol.
		hdr := in.Unpack(5, madapi.ReceiveExpress)
		plane := Plane(hdr[0])
		nsegs := int(binary.BigEndian.Uint32(hdr[1:]))
		lens := in.Unpack(4*nsegs, madapi.ReceiveExpress)
		segs := make([][]byte, 0, nsegs)
		for i := 0; i < nsegs; i++ {
			n := int(binary.BigEndian.Uint32(lens[4*i:]))
			segs = append(segs, in.Unpack(n, madapi.ReceiveCheaper))
		}
		in.EndUnpacking()
		circ.Deliver(circRank(src), plane, segs)
	})
	return p
}

// Link returns the adapter for reaching circuit rank dst through this
// port.
func (p *MadIOPort) Link(dst int) LinkAdapter { return &madioLink{p: p, dst: dst} }

type madioLink struct {
	p   *MadIOPort
	dst int
}

// Name implements LinkAdapter.
func (l *madioLink) Name() string { return "madio" }

// Close releases the underlying port's logical channel.
func (l *madioLink) Close() { l.p.Close() }

// Send implements LinkAdapter: header combining packs the plane, the
// segment count and all segment lengths as express segments of the same
// hardware message.
func (l *madioLink) Send(plane Plane, segs [][]byte) {
	hdr := make([]byte, 5)
	hdr[0] = byte(plane)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(segs)))
	lens := make([]byte, 4*len(segs))
	out := make([][]byte, 0, 2+len(segs))
	out = append(out, hdr, lens)
	for i, s := range segs {
		binary.BigEndian.PutUint32(lens[4*i:], uint32(len(s)))
		out = append(out, s)
	}
	l.p.mio.Send(l.p.madRank(l.dst), l.p.logical, out...)
}

// ---------------------------------------------------------------------
// Stream adapters: frame messages over a byte stream. Two flavours
// share the framing: StreamLink runs on a driver-level conn (the
// "sysio" straight-distributed path), VLinkLink runs on a full VLink
// (so the alternate adapters — parallel streams, AdOC, VRP, security —
// are usable under Circuit, per §4.2 "Circuit adapters have been
// implemented on top of ... VLink (to use the alternates VLink
// adapters)").

// frame layout: [1B plane][4B nsegs] then per segment [4B len][bytes].

type streamSender interface {
	PostWrite(data []byte, cb func(int, error))
}

func frameMessage(plane Plane, segs [][]byte) []byte {
	total := 5
	for _, s := range segs {
		total += 4 + len(s)
	}
	out := make([]byte, 5, total)
	out[0] = byte(plane)
	binary.BigEndian.PutUint32(out[1:], uint32(len(segs)))
	var lenb [4]byte
	for _, s := range segs {
		binary.BigEndian.PutUint32(lenb[:], uint32(len(s)))
		out = append(out, lenb[:]...)
		out = append(out, s...)
	}
	return out
}

// frameParser incrementally decodes frames from stream chunks.
type frameParser struct {
	buf []byte
}

// feed appends stream data and returns every complete frame.
func (fp *frameParser) feed(data []byte, emit func(plane Plane, segs [][]byte)) {
	fp.buf = append(fp.buf, data...)
	for {
		if len(fp.buf) < 5 {
			return
		}
		plane := Plane(fp.buf[0])
		nsegs := int(binary.BigEndian.Uint32(fp.buf[1:]))
		off := 5
		segs := make([][]byte, 0, nsegs)
		ok := true
		for i := 0; i < nsegs; i++ {
			if len(fp.buf) < off+4 {
				ok = false
				break
			}
			n := int(binary.BigEndian.Uint32(fp.buf[off:]))
			off += 4
			if len(fp.buf) < off+n {
				ok = false
				break
			}
			segs = append(segs, append([]byte(nil), fp.buf[off:off+n]...))
			off += n
		}
		if !ok {
			return
		}
		fp.buf = fp.buf[off:]
		emit(plane, segs)
	}
}

// StreamLink is a per-link adapter over a driver-level connection.
type StreamLink struct {
	name string
	conn vlink.Conn
}

// NewStreamLink wires a driver conn to the circuit as the link to rank
// src (the remote end's rank). It starts the read pump immediately.
func NewStreamLink(name string, conn vlink.Conn, circ *Circuit, src int) *StreamLink {
	l := &StreamLink{name: name, conn: conn}
	fp := &frameParser{}
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		if n > 0 {
			fp.feed(buf[:n], func(plane Plane, segs [][]byte) {
				circ.Deliver(src, plane, segs)
			})
		}
		if err != nil {
			return
		}
		conn.PostRead(buf, pump)
	}
	conn.PostRead(buf, pump)
	return l
}

// Name implements LinkAdapter.
func (l *StreamLink) Name() string { return l.name }

// Close shuts the underlying driver connection down.
func (l *StreamLink) Close() { l.conn.Close() }

// Send implements LinkAdapter.
func (l *StreamLink) Send(plane Plane, segs [][]byte) {
	l.conn.PostWrite(frameMessage(plane, segs), func(int, error) {})
}

// VLinkLink is a per-link adapter over a full VLink (alternate methods
// included).
type VLinkLink struct {
	v *vlink.VLink
}

// NewVLinkLink wires an established VLink to the circuit as the link to
// rank src.
func NewVLinkLink(v *vlink.VLink, circ *Circuit, src int) *VLinkLink {
	l := &VLinkLink{v: v}
	fp := &frameParser{}
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		if n > 0 {
			fp.feed(buf[:n], func(plane Plane, segs [][]byte) {
				circ.Deliver(src, plane, segs)
			})
		}
		if err != nil {
			return
		}
		v.PostRead(buf).SetHandler(pump)
	}
	v.PostRead(buf).SetHandler(pump)
	return l
}

// Name implements LinkAdapter.
func (l *VLinkLink) Name() string { return "vlink" }

// Close shuts the underlying VLink down.
func (l *VLinkLink) Close() { l.v.Close() }

// Send implements LinkAdapter.
func (l *VLinkLink) Send(plane Plane, segs [][]byte) {
	l.v.PostWrite(frameMessage(plane, segs))
}

// ---------------------------------------------------------------------
// Loopback adapter: rank talks to itself.

// LoopbackLink delivers back into the same circuit.
type LoopbackLink struct {
	k    *vtime.Kernel
	circ *Circuit
	self int
}

// NewLoopbackLink builds the self-link for a circuit.
func NewLoopbackLink(k *vtime.Kernel, circ *Circuit, self int) *LoopbackLink {
	return &LoopbackLink{k: k, circ: circ, self: self}
}

// Name implements LinkAdapter.
func (l *LoopbackLink) Name() string { return "loopback" }

// Send implements LinkAdapter.
func (l *LoopbackLink) Send(plane Plane, segs [][]byte) {
	l.k.Schedule(500*time.Nanosecond, func() { l.circ.Deliver(l.self, plane, segs) })
}
