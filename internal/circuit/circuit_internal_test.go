package circuit

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: stream framing reassembles any segment vectors across any
// chunk boundaries.
func TestQuickFrameParser(t *testing.T) {
	f := func(msgs [][][]byte, cuts []uint8) bool {
		if len(msgs) == 0 || len(msgs) > 6 {
			return true
		}
		var wire []byte
		var wantPlanes []Plane
		for i, segs := range msgs {
			if len(segs) > 8 {
				return true
			}
			plane := Plane(i % 2)
			wantPlanes = append(wantPlanes, plane)
			wire = append(wire, frameMessage(plane, segs)...)
		}
		fp := &frameParser{}
		var gotSegs [][][]byte
		var gotPlanes []Plane
		emit := func(plane Plane, segs [][]byte) {
			gotPlanes = append(gotPlanes, plane)
			gotSegs = append(gotSegs, segs)
		}
		off, ci := 0, 0
		for off < len(wire) {
			n := 1
			if len(cuts) > 0 {
				n = int(cuts[ci%len(cuts)])%61 + 1
				ci++
			}
			if off+n > len(wire) {
				n = len(wire) - off
			}
			fp.feed(wire[off:off+n], emit)
			off += n
		}
		if len(gotSegs) != len(msgs) {
			return false
		}
		for i, segs := range msgs {
			if gotPlanes[i] != wantPlanes[i] || len(gotSegs[i]) != len(segs) {
				return false
			}
			for j := range segs {
				if !bytes.Equal(gotSegs[i][j], segs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	if OpSum(2, 3) != 5 || OpMax(2, 3) != 3 || OpMin(2, 3) != 2 {
		t.Fatal("reduce ops wrong")
	}
}

// Property: float64 codec round-trips.
func TestQuickF64Codec(t *testing.T) {
	f := func(v []float64) bool {
		got := DecodeF64(EncodeF64(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(v[i] != v[i] && got[i] != got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
