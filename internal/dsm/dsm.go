// Package dsm implements a home-based page Distributed Shared Memory —
// the DSM the paper counts among the parallel-paradigm middleware
// systems PadicoTM hosts (§2.2, §7).
//
// Protocol: every page has a home rank holding the authoritative copy
// (write-through home). Readers cache shared copies and are recorded in
// the home's copyset. A write is sent to the home, which applies it,
// invalidates every cached copy, and acknowledges the writer only after
// all invalidation acks — writes are serialized per page at the home
// and no stale copy survives a completed write (sequential consistency
// at page grain). Global locks are home-based with FIFO queueing.
// The protocol engine never blocks, so one daemon per rank serves both
// home duties and cache maintenance. Transport: Circuit data plane.
package dsm

import (
	"encoding/binary"
	"fmt"

	"padico/internal/circuit"
	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/vtime"
)

// PageSize is the sharing grain.
const PageSize = 4096

type msgKind byte

const (
	mReadReq msgKind = iota
	mReadReply
	mWriteReq
	mWriteReply
	mInvalidate
	mInvalidateAck
	mLockReq
	mLockGrant
	mUnlock
)

// DSM is one rank's view of the shared space.
type DSM struct {
	k     *vtime.Kernel
	c     *circuit.Circuit
	rank  int
	size  int
	pages int

	mem     map[int][]byte       // home pages + cached copies
	cached  map[int]bool         // non-home pages currently cached
	copyset map[int]map[int]bool // home side: page -> readers
	writeQ  map[int][]*writeTask // home side: serialized writers per page
	locks   map[int]*lockState   // home side: lock id -> state

	readReplies  *vtime.Queue[reply]
	writeReplies *vtime.Queue[int]
	grants       *vtime.Queue[int]

	Faults      int64
	Invalidates int64
}

type reply struct {
	page int
	data []byte
}

type writeTask struct {
	src    int
	offset int
	data   []byte
	need   int // invalidation acks outstanding
}

type lockState struct {
	held  bool
	queue []int
}

// New builds the DSM over a circuit; every rank calls it with the same
// page count. A protocol daemon is spawned per rank.
func New(k *vtime.Kernel, c *circuit.Circuit, pages int) *DSM {
	d := &DSM{
		k: k, c: c, rank: c.Self(), size: c.Size(), pages: pages,
		mem: make(map[int][]byte), cached: make(map[int]bool),
		copyset:      make(map[int]map[int]bool),
		writeQ:       make(map[int][]*writeTask),
		locks:        make(map[int]*lockState),
		readReplies:  vtime.NewQueue[reply](fmt.Sprintf("dsm-rr:%d", c.Self())),
		writeReplies: vtime.NewQueue[int](fmt.Sprintf("dsm-wr:%d", c.Self())),
		grants:       vtime.NewQueue[int](fmt.Sprintf("dsm-gr:%d", c.Self())),
	}
	for pg := 0; pg < pages; pg++ {
		if d.home(pg) == d.rank {
			d.mem[pg] = make([]byte, PageSize)
		}
	}
	k.GoDaemon(fmt.Sprintf("dsm:%d", d.rank), d.serve)
	return d
}

// ModuleName implements core.Module.
func (d *DSM) ModuleName() string { return "dsm" }

// Pages returns the page count.
func (d *DSM) Pages() int { return d.pages }

// home returns the home rank of a page (block-cyclic distribution).
func (d *DSM) home(pg int) int { return pg % d.size }

func (d *DSM) send(dst int, kind msgKind, pg int, data []byte) {
	hdr := make([]byte, 9)
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint32(hdr[1:], uint32(pg))
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(data)))
	out := d.c.BeginPacking(dst)
	out.Pack(hdr, madapi.SendSafer)
	out.Pack(data, madapi.SendSafer)
	out.EndPacking()
}

// serve is the non-blocking protocol engine.
func (d *DSM) serve(p *vtime.Proc) {
	for {
		in := d.c.BeginUnpacking(p)
		hdr := in.Unpack(9, madapi.ReceiveExpress)
		kind := msgKind(hdr[0])
		pg := int(binary.BigEndian.Uint32(hdr[1:]))
		n := int(binary.BigEndian.Uint32(hdr[5:]))
		data := in.Unpack(n, madapi.ReceiveCheaper)
		in.EndUnpacking()
		src := in.Src()
		p.Consume(model.DSMRequestCost)
		switch kind {
		case mReadReq:
			if d.copyset[pg] == nil {
				d.copyset[pg] = make(map[int]bool)
			}
			d.copyset[pg][src] = true
			d.send(src, mReadReply, pg, d.mem[pg])
		case mReadReply:
			d.readReplies.Push(reply{page: pg, data: append([]byte(nil), data...)})
		case mWriteReq:
			offset := int(binary.BigEndian.Uint32(data[:4]))
			d.enqueueWrite(pg, &writeTask{src: src, offset: offset, data: append([]byte(nil), data[4:]...)})
		case mWriteReply:
			d.writeReplies.Push(pg)
		case mInvalidate:
			d.Invalidates++
			delete(d.mem, pg)
			delete(d.cached, pg)
			d.send(src, mInvalidateAck, pg, nil)
		case mInvalidateAck:
			d.ackWrite(pg)
		case mLockReq:
			d.lockReq(pg, src)
		case mLockGrant:
			d.grants.Push(pg)
		case mUnlock:
			d.unlock(pg)
		}
	}
}

// enqueueWrite serializes writers per page at the home.
func (d *DSM) enqueueWrite(pg int, t *writeTask) {
	d.writeQ[pg] = append(d.writeQ[pg], t)
	if len(d.writeQ[pg]) == 1 {
		d.startWrite(pg)
	}
}

// startWrite applies the head write and launches invalidations.
func (d *DSM) startWrite(pg int) {
	t := d.writeQ[pg][0]
	copy(d.mem[pg][t.offset:], t.data)
	for r := range d.copyset[pg] {
		if r == t.src {
			continue
		}
		t.need++
		d.send(r, mInvalidate, pg, nil)
	}
	// The writer's own cached copy is now stale unless it is the home.
	delete(d.copyset, pg)
	if t.need == 0 {
		d.finishWrite(pg)
	}
}

func (d *DSM) ackWrite(pg int) {
	q := d.writeQ[pg]
	if len(q) == 0 {
		return
	}
	q[0].need--
	if q[0].need == 0 {
		d.finishWrite(pg)
	}
}

func (d *DSM) finishWrite(pg int) {
	t := d.writeQ[pg][0]
	d.writeQ[pg] = d.writeQ[pg][1:]
	if t.src == d.rank {
		d.writeReplies.Push(pg)
	} else {
		d.send(t.src, mWriteReply, pg, nil)
	}
	if len(d.writeQ[pg]) > 0 {
		d.startWrite(pg)
	}
}

func (d *DSM) lockReq(lid, src int) {
	st := d.locks[lid]
	if st == nil {
		st = &lockState{}
		d.locks[lid] = st
	}
	if !st.held {
		st.held = true
		d.grantLock(lid, src)
		return
	}
	st.queue = append(st.queue, src)
}

func (d *DSM) unlock(lid int) {
	st := d.locks[lid]
	if st == nil {
		return
	}
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		d.grantLock(lid, next)
		return
	}
	st.held = false
}

func (d *DSM) grantLock(lid, dst int) {
	if dst == d.rank {
		d.grants.Push(lid)
		return
	}
	d.send(dst, mLockGrant, lid, nil)
}

// ---------------------------------------------------------------------
// Application API (call from the rank's application process).

// Read returns a snapshot of a page, faulting it in if needed.
func (d *DSM) Read(p *vtime.Proc, pg int) []byte {
	if d.home(pg) == d.rank || d.cached[pg] {
		return append([]byte(nil), d.mem[pg]...)
	}
	d.Faults++
	d.send(d.home(pg), mReadReq, pg, nil)
	for {
		r := d.readReplies.Pop(p)
		if r.page == pg {
			d.mem[pg] = r.data
			d.cached[pg] = true
			return append([]byte(nil), r.data...)
		}
		d.readReplies.Push(r)
		p.Yield()
	}
}

// Write stores data at offset within a page; it returns once every
// cached copy has been invalidated (write completion, SC order).
func (d *DSM) Write(p *vtime.Proc, pg, offset int, data []byte) {
	if offset+len(data) > PageSize {
		panic("dsm: write beyond page")
	}
	payload := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(payload, uint32(offset))
	copy(payload[4:], data)
	home := d.home(pg)
	// The writer's own cache is stale the moment the write is issued.
	if home != d.rank {
		delete(d.mem, pg)
		delete(d.cached, pg)
		d.send(home, mWriteReq, pg, payload)
	} else {
		d.enqueueWrite(pg, &writeTask{src: d.rank, offset: offset, data: append([]byte(nil), data...)})
	}
	for {
		got := d.writeReplies.Pop(p)
		if got == pg {
			return
		}
		d.writeReplies.Push(got)
		p.Yield()
	}
}

// Acquire takes a global lock.
func (d *DSM) Acquire(p *vtime.Proc, lid int) {
	home := lid % d.size
	if home == d.rank {
		d.lockReq(lid, d.rank)
	} else {
		d.send(home, mLockReq, lid, nil)
	}
	for {
		got := d.grants.Pop(p)
		if got == lid {
			return
		}
		d.grants.Push(got)
		p.Yield()
	}
}

// Release frees a global lock.
func (d *DSM) Release(p *vtime.Proc, lid int) {
	home := lid % d.size
	if home == d.rank {
		d.unlock(lid)
		return
	}
	d.send(home, mUnlock, lid, nil)
}
