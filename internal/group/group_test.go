package group_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"padico/internal/circuit"
	"padico/internal/grid"
	"padico/internal/group"
	"padico/internal/selector"
	"padico/internal/topology"
	"padico/internal/vtime"
	"padico/internal/weather"
)

func allNodes(g *grid.Grid) []topology.NodeID {
	out := make([]topology.NodeID, len(g.Topo.Nodes()))
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// TestTreeIsTwoTier pins the tree shape on a three-site star: exactly
// one WAN crossing per remote site (leader edges from the root), every
// member present exactly once, intra-site edges SAN-class.
func TestTreeIsTwoTier(t *testing.T) {
	g := grid.MultiSite(3, 2) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := grp.Tree(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.WANCrossings() != 2 {
		t.Fatalf("WAN crossings = %d, want 2 (one per remote site)\n%s",
			tr.WANCrossings(), tr.String(g.Topo))
	}
	if len(tr.Edges()) != 5 {
		t.Fatalf("edges = %d, want n-1 = 5", len(tr.Edges()))
	}
	seen := map[topology.NodeID]bool{0: true}
	for _, e := range tr.Edges() {
		if seen[e.Child] {
			t.Fatalf("node %d reached twice", e.Child)
		}
		seen[e.Child] = true
		sameSite := g.Topo.SameSite(e.Parent, e.Child)
		if sameSite && e.Class != selector.PathSAN {
			t.Fatalf("intra-site edge %d->%d class %v", e.Parent, e.Child, e.Class)
		}
		if !sameSite && e.Class != selector.PathWAN {
			t.Fatalf("cross-site edge %d->%d class %v", e.Parent, e.Child, e.Class)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("tree spans %d members, want 6", len(seen))
	}
	// Cross-site edges connect leaders: root on one end, the remote
	// site's lowest member on the other.
	for _, e := range tr.Edges() {
		if e.Class != selector.PathWAN {
			continue
		}
		if e.Parent != 0 {
			t.Fatalf("leader edge %d->%d does not originate at the root tier", e.Parent, e.Child)
		}
		if l, _ := tr.Leader(g.Topo.Node(e.Child).Site); l != e.Child {
			t.Fatalf("leader edge targets %d, site leader is %d", e.Child, l)
		}
	}
	if tr.SubtreeSize(0) != 6 {
		t.Fatalf("root subtree = %d", tr.SubtreeSize(0))
	}
}

// TestTreeRootedAtNonLeader: the operation root acts as its own site's
// leader, so no intra-site hop precedes the WAN edges.
func TestTreeRootedAtNonLeader(t *testing.T) {
	g := grid.MultiSite(2, 3)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := grp.Tree(2) // highest id of site0 — not the elected leader
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := tr.Leader("site0"); l != 2 {
		t.Fatalf("root-site leader = %d, want the root itself", l)
	}
	if _, ok := tr.Parent(2); ok {
		t.Fatal("root has a parent")
	}
	kids := tr.Children(2)
	if len(kids) == 0 || kids[0] != 3 {
		t.Fatalf("root children = %v, want the remote leader (3) first", kids)
	}
}

// TestMulticastDeliversEverywhere moves 2 MiB from node 0 to five other
// members across three sites and checks the byte-identical copies plus
// the headline economics: ~2 WAN payload crossings instead of 4.
func TestMulticastDeliversEverywhere(t *testing.T) {
	g := grid.MultiSite(3, 2)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	size := 2 << 20
	data := make([]byte, size)
	rand.New(rand.NewSource(5)).Read(data)
	if err := g.K.Run(func(p *vtime.Proc) {
		got, err := grp.Multicast(p, 0, "obj", data, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Fatalf("delivered to %d members, want 5", len(got))
		}
		for n, b := range got {
			if !bytes.Equal(b, data) {
				t.Fatalf("member %d got %d bytes, corrupt or short", n, len(b))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	wan := grp.WANBytes()
	if wan < 2*int64(size) {
		t.Fatalf("WAN bytes = %d, want at least 2 payloads (%d)", wan, 2*size)
	}
	if wan > 2*int64(size)+(1<<16) {
		t.Fatalf("WAN bytes = %d — more than 2 payload crossings plus protocol slack", wan)
	}
	if grp.Stats().Multicasts != 1 {
		t.Fatalf("stats: %+v", grp.Stats())
	}
}

// TestMulticastInsideOneCluster: a single-site group never touches the
// WAN and still delivers.
func TestMulticastInsideOneCluster(t *testing.T) {
	g := grid.Cluster(4)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("intra-cluster payload")
	if err := g.K.Run(func(p *vtime.Proc) {
		got, err := grp.Multicast(p, 1, "x", data, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("delivered = %d", len(got))
		}
		for _, b := range got {
			if !bytes.Equal(b, data) {
				t.Fatal("corrupt copy")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if grp.WANBytes() != 0 {
		t.Fatalf("WAN bytes = %d on a single-site group", grp.WANBytes())
	}
}

// TestSANEdgesReleasedBetweenOps pins the per-operation lifetime of
// SAN tree edges: the session layer's per-pair circuit is a serialized
// shared resource, so a completed multicast must leave it free for
// ordinary point-to-point sessions on the same pair.
func TestSANEdgesReleasedBetweenOps(t *testing.T) {
	g := grid.Cluster(3)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.K.Run(func(p *vtime.Proc) {
		if _, err := grp.Multicast(p, 0, "a", []byte("payload"), 1); err != nil {
			t.Fatal(err)
		}
		// A pair the tree used (0->1) must be immediately openable.
		ch, err := g.Open(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Send(p, []byte("direct")); err != nil {
			t.Fatal(err)
		}
		if _, err := ch.Remote().Recv(p, 6); err != nil {
			t.Fatal(err)
		}
		ch.Close()
		ch.Remote().Close()
		// And a second multicast reuses the tree just as well.
		if _, err := grp.Multicast(p, 0, "b", []byte("payload2"), 1); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMulticastFaultAndRetry: an injected fault at one member fails
// only that member's subtree leaf; the retry (next attempt) over the
// surviving members converges.
func TestMulticastFaultAndRetry(t *testing.T) {
	g := grid.MultiSite(2, 2)
	victim := topology.NodeID(3)
	grp, err := g.NewGroup(allNodes(g), group.Config{
		InjectFault: func(tag string, member topology.NodeID, attempt int) bool {
			return member == victim && attempt == 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(9)).Read(data)
	if err := g.K.Run(func(p *vtime.Proc) {
		got, err := grp.Multicast(p, 0, "obj", data, 1)
		var merr *group.MulticastError
		if !errors.As(err, &merr) {
			t.Fatalf("want MulticastError, got %v", err)
		}
		if len(merr.Failed) != 1 || merr.Failed[0] != victim {
			t.Fatalf("failed = %v", merr.Failed)
		}
		if len(got) != 2 {
			t.Fatalf("partial delivery = %d members, want 2", len(got))
		}
		if _, ok := got[victim]; ok {
			t.Fatal("victim present in delivered set")
		}
		// Retry to the failed member only (as a replication scheduler
		// would): a fresh group over {root, victim}.
		rg, err := g.NewGroup([]topology.NodeID{0, victim}, group.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got2, err := rg.Multicast(p, 0, "obj", data, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2[victim], data) {
			t.Fatal("retry did not deliver")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReduceMatchesSerialFold checks the tree reduction against a
// serial fold, on sum and max.
func TestReduceMatchesSerialFold(t *testing.T) {
	g := grid.MultiSite(3, 2)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	contrib := func(n topology.NodeID) []float64 {
		return []float64{float64(n), 1, float64(10 - n)}
	}
	if err := g.K.Run(func(p *vtime.Proc) {
		sum, err := grp.Reduce(p, 0, contrib, circuit.OpSum)
		if err != nil {
			t.Fatal(err)
		}
		if sum[0] != 15 || sum[1] != 6 || sum[2] != 45 {
			t.Fatalf("sum = %v", sum)
		}
		max, err := grp.Reduce(p, 2, contrib, circuit.OpMax)
		if err != nil {
			t.Fatal(err)
		}
		if max[0] != 5 || max[1] != 1 || max[2] != 10 {
			t.Fatalf("max = %v", max)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if grp.Stats().Reduces != 2 {
		t.Fatalf("stats: %+v", grp.Stats())
	}
}

// TestBarrierReuse runs three barriers back to back on the same group;
// each must complete and cost wide-area time (two tree traversals).
func TestBarrierReuse(t *testing.T) {
	g := grid.MultiSite(2, 2)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.K.Run(func(p *vtime.Proc) {
		var last vtime.Time
		for i := 0; i < 3; i++ {
			if err := grp.Barrier(p); err != nil {
				t.Fatal(err)
			}
			now := p.Now()
			if now <= last {
				t.Fatalf("barrier %d cost no virtual time", i)
			}
			last = now
		}
	}); err != nil {
		t.Fatal(err)
	}
	if grp.Stats().Barriers != 3 {
		t.Fatalf("stats: %+v", grp.Stats())
	}
}

// TestGatherCollectsEveryMember gathers distinct payloads (including
// empty ones) from six members across three sites.
func TestGatherCollectsEveryMember(t *testing.T) {
	g := grid.MultiSite(3, 2)
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	contrib := func(n topology.NodeID) []byte {
		if n == 4 {
			return nil // empty contribution must survive the framing
		}
		return bytes.Repeat([]byte{byte(n)}, int(n)+1)
	}
	if err := g.K.Run(func(p *vtime.Proc) {
		got, err := grp.Gather(p, 1, contrib)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 6 {
			t.Fatalf("gathered %d members", len(got))
		}
		for n := topology.NodeID(0); n < 6; n++ {
			if !bytes.Equal(got[n], contrib(n)) {
				t.Fatalf("member %d payload = %v", n, got[n])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupNeedsMembers pins constructor validation and dedup.
func TestGroupNeedsMembers(t *testing.T) {
	g := grid.Cluster(2)
	if _, err := g.NewGroup(nil, group.Config{}); !errors.Is(err, group.ErrNoMembers) {
		t.Fatalf("err = %v", err)
	}
	grp, err := g.NewGroup([]topology.NodeID{1, 0, 1, 0}, group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if grp.Size() != 2 {
		t.Fatalf("members = %v", grp.Members())
	}
	if _, err := grp.Tree(5); !errors.Is(err, group.ErrNotMember) {
		t.Fatalf("tree at non-member: %v", err)
	}
}

// TestMulticastRepeatRunBitIdentity pins the subsystem's determinism
// contract the same way netsim's tests do: the same multicast scenario
// on a fresh grid produces bit-identical virtual makespans and WAN
// byte counts on every run.
func TestMulticastRepeatRunBitIdentity(t *testing.T) {
	run := func() (vtime.Duration, int64) {
		g := grid.MultiSiteLoss(3, 2, 0.01)
		grp, err := g.NewGroup(allNodes(g), group.Config{})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 1<<20)
		rand.New(rand.NewSource(11)).Read(data)
		var makespan vtime.Duration
		if err := g.K.Run(func(p *vtime.Proc) {
			start := p.Now()
			if _, err := grp.Multicast(p, 0, "det", data, 1); err != nil {
				t.Fatal(err)
			}
			makespan = p.Now().Sub(start)
		}); err != nil {
			t.Fatal(err)
		}
		return makespan, grp.WANBytes()
	}
	m1, w1 := run()
	m2, w2 := run()
	if m1 != m2 || w1 != w2 {
		t.Fatalf("repeat run diverged: makespan %v vs %v, WAN bytes %d vs %d", m1, m2, w1, w2)
	}
	if m1 <= 0 || w1 <= 0 {
		t.Fatalf("degenerate run: makespan %v, WAN bytes %d", m1, w1)
	}
}

// TestWeatherRebuildsDegradedTree: a multicast caches its tree and WAN
// edges; when the weather publishes a degraded crossing on a leader
// edge's site pair, the next operation rebuilds the tree and
// re-provisions its edges under fresh decisions.
func TestWeatherRebuildsDegradedTree(t *testing.T) {
	g := grid.DegradingWAN(2) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	g.EnableWeather(weather.Config{})
	grp, err := g.NewGroup(allNodes(g), group.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := payloadBytes(9, 256<<10)
	if err := g.K.Run(func(p *vtime.Proc) {
		if _, err := grp.Multicast(p, 0, "pre", data, 1); err != nil {
			t.Fatal(err)
		}
		opened := grp.Stats().EdgesOpened
		if grp.Stats().TreeRebuilds != 0 {
			t.Fatalf("tree rebuilt before any weather event: %+v", grp.Stats())
		}
		// Reuse while healthy: cached WAN edges, no rebuild.
		if _, err := grp.Multicast(p, 0, "pre2", data, 1); err != nil {
			t.Fatal(err)
		}
		if grp.Stats().EdgeReuses == 0 {
			t.Fatalf("no cached-edge reuse while healthy: %+v", grp.Stats())
		}
		// Ride past the degrade instant and its publication.
		p.Sleep(grid.DegradeAt + 2*time.Second - p.Now().Sub(0))
		if _, err := grp.Multicast(p, 0, "post", data, 1); err != nil {
			t.Fatal(err)
		}
		if grp.Stats().TreeRebuilds != 1 {
			t.Fatalf("TreeRebuilds = %d, want 1 (%+v)", grp.Stats().TreeRebuilds, grp.Stats())
		}
		if grp.Stats().EdgesOpened <= opened {
			t.Fatalf("degraded tree edges not re-provisioned: %+v", grp.Stats())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// payloadBytes returns deterministic pseudo-random bytes (local copy:
// the file's other helpers build payloads inline).
func payloadBytes(seed int64, size int) []byte {
	b := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}
