package group

import (
	"fmt"
	"sort"
	"strings"

	"padico/internal/selector"
	"padico/internal/topology"
)

// Tree is the deterministic two-tier spanning tree one collective
// operation runs on: one elected leader per site, binomial inter-leader
// edges across the wide area, binomial intra-site fan-out below each
// leader. The same (members, root) pair always yields the same tree —
// construction sorts sites and members before iterating, never a map.
type Tree struct {
	root topology.NodeID
	// sites lists the member sites, operation root's site first, the
	// rest in ascending name order — the inter-leader binomial ranks.
	sites   []string
	leaders map[string]topology.NodeID

	parent   map[topology.NodeID]topology.NodeID
	children map[topology.NodeID][]topology.NodeID
	subtree  map[topology.NodeID]int // members in the subtree rooted at n (incl. n)

	// edges is the preorder edge list; class[i] is the selector's path
	// classification of edges[i]. WAN-crossing edges of a node come
	// before its SAN edges, so long-latency hops start first.
	edges []Edge
}

// Edge is one parent -> child link of the tree.
type Edge struct {
	Parent, Child topology.NodeID
	Class         selector.PathClass
}

// buildTree constructs the two-tier tree for the given sorted member
// list rooted at root. The root acts as its own site's leader (no extra
// intra-site hop before the payload leaves the root site); every other
// site elects its lowest-id member.
func buildTree(topo *topology.Grid, members []topology.NodeID, root topology.NodeID) (*Tree, error) {
	bySite := make(map[string][]topology.NodeID)
	var siteNames []string
	for _, m := range members { // members are sorted, so site lists are too
		s := topo.Node(m).Site
		if _, seen := bySite[s]; !seen {
			siteNames = append(siteNames, s)
		}
		bySite[s] = append(bySite[s], m)
	}
	sort.Strings(siteNames)
	rootSite := topo.Node(root).Site

	t := &Tree{
		root:     root,
		leaders:  make(map[string]topology.NodeID, len(siteNames)),
		parent:   make(map[topology.NodeID]topology.NodeID, len(members)),
		children: make(map[topology.NodeID][]topology.NodeID, len(members)),
		subtree:  make(map[topology.NodeID]int, len(members)),
	}
	t.sites = append(t.sites, rootSite)
	for _, s := range siteNames {
		if s != rootSite {
			t.sites = append(t.sites, s)
		}
	}
	for _, s := range t.sites {
		t.leaders[s] = bySite[s][0]
	}
	t.leaders[rootSite] = root

	link := func(parent, child topology.NodeID) error {
		cls, err := selector.Classify(topo, parent, child)
		if err != nil {
			return fmt.Errorf("group: tree edge %d->%d: %w", parent, child, err)
		}
		t.parent[child] = parent
		t.children[parent] = append(t.children[parent], child)
		t.edges = append(t.edges, Edge{Parent: parent, Child: child, Class: cls})
		return nil
	}

	// Tier 1: binomial tree over the site leaders, in t.sites order.
	// Leader edges are linked before any intra-site edge so each node's
	// child list starts with its WAN hops.
	for v := 1; v < len(t.sites); v++ {
		pv := v &^ (v & -v) // clear the lowest set bit
		if err := link(t.leaders[t.sites[pv]], t.leaders[t.sites[v]]); err != nil {
			return nil, err
		}
	}
	// Tier 2: binomial fan-out inside each site, leader first then the
	// remaining members in ascending id order.
	for _, s := range t.sites {
		order := append([]topology.NodeID{t.leaders[s]}, withoutNode(bySite[s], t.leaders[s])...)
		for v := 1; v < len(order); v++ {
			pv := v &^ (v & -v)
			if err := link(order[pv], order[v]); err != nil {
				return nil, err
			}
		}
	}
	// Subtree sizes, children-before-parent (walk the preorder edge
	// list backwards).
	for _, m := range members {
		t.subtree[m] = 1
	}
	for i := len(t.edges) - 1; i >= 0; i-- {
		t.subtree[t.edges[i].Parent] += t.subtree[t.edges[i].Child]
	}
	return t, nil
}

func withoutNode(sorted []topology.NodeID, drop topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(sorted)-1)
	for _, n := range sorted {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

// Root returns the node the tree is rooted at.
func (t *Tree) Root() topology.NodeID { return t.root }

// Leader returns the elected leader of a site (the operation root for
// the root's own site).
func (t *Tree) Leader(site string) (topology.NodeID, bool) {
	l, ok := t.leaders[site]
	return l, ok
}

// Children returns n's children, WAN hops first.
func (t *Tree) Children(n topology.NodeID) []topology.NodeID { return t.children[n] }

// Parent returns n's parent; ok is false for the root.
func (t *Tree) Parent(n topology.NodeID) (topology.NodeID, bool) {
	p, ok := t.parent[n]
	return p, ok
}

// Edges returns the preorder edge list with path classes.
func (t *Tree) Edges() []Edge { return t.edges }

// SubtreeSize returns the number of members in n's subtree, n included.
func (t *Tree) SubtreeSize(n topology.NodeID) int { return t.subtree[n] }

// WANCrossings counts edges that leave the machine room — the number of
// wide-area transfers one multicast over this tree costs. A flat
// fan-out from the root would instead pay one crossing per remote
// member.
func (t *Tree) WANCrossings() int {
	n := 0
	for _, e := range t.edges {
		if e.Class >= selector.PathWAN {
			n++
		}
	}
	return n
}

// String renders the tree, one node per line with box-drawing guides:
//
//	n0 [rennes]
//	├─wan→ g0 [grenoble]
//	│      └─san→ g1
//	└─san→ n1
func (t *Tree) String(topo *topology.Grid) string {
	var b strings.Builder
	node := topo.Node(t.root)
	fmt.Fprintf(&b, "%s [%s]\n", node.Name, node.Site)
	t.render(&b, topo, t.root, "")
	return b.String()
}

func (t *Tree) render(b *strings.Builder, topo *topology.Grid, n topology.NodeID, indent string) {
	kids := t.children[n]
	for i, c := range kids {
		guide, next := "├", indent+"│      "
		if i == len(kids)-1 {
			guide, next = "└", indent+"       "
		}
		var cls selector.PathClass
		for _, e := range t.edges {
			if e.Parent == n && e.Child == c {
				cls = e.Class
				break
			}
		}
		cn := topo.Node(c)
		fmt.Fprintf(b, "%s%s─%s→ %s", indent, guide, cls, cn.Name)
		if cn.Site != topo.Node(n).Site {
			fmt.Fprintf(b, " [%s]", cn.Site)
		}
		b.WriteByte('\n')
		t.render(b, topo, c, next)
	}
}
