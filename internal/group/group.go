// Package group is grid-wide hierarchical group communication: the
// collective patterns of the parallel world (multicast, reduce,
// barrier, gather) stretched across the distributed world's sites.
//
// The paper places grid middleware at a crossroads — collectives are
// native inside a SAN but nothing composes them *across* clusters, so
// a k-replica WAN fan-out pays k full wide-area transfers. A Group is
// formed from a member list and consults the topology to build a
// deterministic two-tier spanning tree: one elected leader per site,
// binomial inter-leader edges across the WAN, binomial intra-site
// fan-out below each leader. Every tree edge is an ordinary session
// channel, so the selector still picks the substrate per hop — striped
// pstreams + gsec on WAN leader edges, the cached 2-rank Circuit
// inside a machine room — and large payloads pipeline chunk by chunk:
// a chunk is forwarded downstream while the next is still arriving.
// The result is ~1 WAN crossing per remote site instead of one per
// remote member.
//
// Edge lifetime follows the substrate: WAN/LAN/local edges are opened
// once and cached on the Group, but SAN edges are opened per operation
// — the session layer's SAN substrate is a per-pair circuit serialized
// by a semaphore, and holding it between operations would starve every
// other session on that pair.
package group

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"padico/internal/circuit"
	"padico/internal/model"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Exported errors.
var (
	// ErrNoMembers reports a group built from an empty member list.
	ErrNoMembers = errors.New("group: no members")
	// ErrNotMember reports an operation rooted outside the group.
	ErrNotMember = errors.New("group: root is not a member")
	// ErrEdgeFailed reports a tree edge that died or timed out
	// mid-operation; cached edges are reset, so a retry re-provisions.
	ErrEdgeFailed = errors.New("group: tree edge failed or timed out")
	// ErrMemberDown reports an operation rooted at a member the failure
	// detector declared crashed.
	ErrMemberDown = errors.New("group: member is down")
)

// MulticastError reports members whose delivery failed end-to-end
// verification (or was discarded by the fault hook). The remaining
// members received and verified their copy.
type MulticastError struct {
	Tag     string
	Attempt int
	Failed  []topology.NodeID // sorted
}

func (e *MulticastError) Error() string {
	return fmt.Sprintf("group: multicast %q attempt %d: %d member(s) failed verification: %v",
		e.Tag, e.Attempt, len(e.Failed), e.Failed)
}

// Config tunes a Group. Zero values select defaults.
type Config struct {
	// ChunkBytes is the multicast pipelining unit (default 256 KiB).
	ChunkBytes int
	// Streams overrides the per-edge WAN stripe count for tree edges
	// (0 keeps the testbed preference; 1 disables striping).
	Streams int
	// StatusTimeout bounds the root's wait for subtree delivery
	// statuses before the multicast is declared lost (default 120 s of
	// virtual time).
	StatusTimeout time.Duration
	// InjectFault, when set, is consulted at each member after a
	// checksum-clean delivery (chaos hook for retry testing): returning
	// true discards that member's copy and reports it failed.
	InjectFault func(tag string, member topology.NodeID, attempt int) bool
}

func (c Config) withDefaults() Config {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.StatusTimeout <= 0 {
		c.StatusTimeout = 120 * time.Second
	}
	return c
}

// Stats counts group activity (for reporting and tests). Counters
// are bumped with atomic adds and read race-free through Group.Stats;
// with telemetry attached they also surface in the shared registry
// under the "group." prefix (aggregated across all live groups).
type Stats struct {
	Multicasts, Reduces, Barriers, Gathers int64
	// EdgesOpened / EdgeReuses trace edge provisioning: cached WAN/LAN
	// edges are opened once and reused; SAN edges reopen per operation.
	EdgesOpened, EdgeReuses int64
	// Failures counts operations that returned an error.
	Failures int64
	// TreeRebuilds counts cached trees dropped because the weather
	// declared one of their wide-area edges degraded (or down): the
	// next operation rebuilds the tree and re-provisions its edges
	// under fresh selector decisions.
	TreeRebuilds int64
}

// Group is one membership: a sorted node list plus the per-root
// spanning trees and the cached tree-edge channels. Operations on the
// same tree (same root) serialize — one protocol run per tree at a
// time; operations rooted at different members use disjoint channel
// sets and overlap, contending only for genuinely shared substrate
// (SAN pair circuits, WAN access links).
type Group struct {
	k    *vtime.Kernel
	topo *topology.Grid
	mgr  *session.Manager
	cfg  Config

	members []topology.NodeID
	trees   map[topology.NodeID]*Tree
	// edges caches non-SAN channels per (root, parent, child): each
	// tree owns its edges outright, so concurrent operations on
	// different trees never interleave on one channel.
	edges map[[3]topology.NodeID]session.Channel

	closedWAN int64                                // WAN bytes of edges already reset
	sems      map[topology.NodeID]*vtime.Semaphore // per-tree serialization
	// dirty marks tree roots whose cached tree must be rebuilt (a
	// wide-area edge's forecast crossed the degraded threshold, or the
	// membership changed). The flag is consumed lazily at the next Tree
	// call — never while an operation is running on that tree.
	dirty map[topology.NodeID]bool
	// dead marks members the failure detector declared crashed: trees
	// are built over the survivors only, so the next operation re-elects
	// site leaders and routes around the body.
	dead map[topology.NodeID]bool

	stats Stats
	tel   *telemetry.Hub
	hOp   *telemetry.Histogram
}

// Stats returns a consistent copy of the group's counters.
func (g *Group) Stats() Stats {
	return Stats{
		Multicasts:   atomic.LoadInt64(&g.stats.Multicasts),
		Reduces:      atomic.LoadInt64(&g.stats.Reduces),
		Barriers:     atomic.LoadInt64(&g.stats.Barriers),
		Gathers:      atomic.LoadInt64(&g.stats.Gathers),
		EdgesOpened:  atomic.LoadInt64(&g.stats.EdgesOpened),
		EdgeReuses:   atomic.LoadInt64(&g.stats.EdgeReuses),
		Failures:     atomic.LoadInt64(&g.stats.Failures),
		TreeRebuilds: atomic.LoadInt64(&g.stats.TreeRebuilds),
	}
}

// New forms a group over the given members (deduplicated and sorted;
// order does not matter). Tree construction and channel provisioning
// happen lazily, per operation root.
func New(k *vtime.Kernel, topo *topology.Grid, mgr *session.Manager, members []topology.NodeID, cfg Config) (*Group, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	sorted := append([]topology.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dedup := sorted[:1]
	for _, m := range sorted[1:] {
		if m != dedup[len(dedup)-1] {
			dedup = append(dedup, m)
		}
	}
	g := &Group{
		k: k, topo: topo, mgr: mgr, cfg: cfg.withDefaults(),
		members: dedup,
		trees:   make(map[topology.NodeID]*Tree),
		edges:   make(map[[3]topology.NodeID]session.Channel),
		sems:    make(map[topology.NodeID]*vtime.Semaphore),
		dirty:   make(map[topology.NodeID]bool),
		dead:    make(map[topology.NodeID]bool),
	}
	if h := telemetry.For(k); h != nil {
		g.tel = h
		h.Registry().BindStruct("group", &g.stats)
		g.hOp = h.Registry().Histogram("group.op_latency")
	}
	// Under weather, a degraded-threshold crossing on a wide-area edge
	// of a cached tree marks it dirty: the next operation rebuilds it
	// and re-opens its edges under fresh selector decisions.
	if w := mgr.Weather(); w != nil {
		w.Subscribe(func(a, b topology.NodeID, nw *topology.Network, f selector.Forecast) {
			g.noteWeather(a, b)
		})
	}
	return g, nil
}

// noteWeather marks every cached tree owning a wide-area edge between
// the two nodes' sites. It only sets flags (kernel-context safe, no
// virtual-time side effects); resetTree happens at the next Tree call,
// never under a running operation.
func (g *Group) noteWeather(a, b topology.NodeID) {
	s1, s2 := g.topo.Node(a).Site, g.topo.Node(b).Site
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	for root, t := range g.trees {
		if g.dirty[root] {
			continue
		}
		for _, e := range t.Edges() {
			if e.Class < selector.PathWAN {
				continue
			}
			e1, e2 := g.topo.Node(e.Parent).Site, g.topo.Node(e.Child).Site
			if e1 > e2 {
				e1, e2 = e2, e1
			}
			if e1 == s1 && e2 == s2 {
				g.dirty[root] = true
				break
			}
		}
	}
}

// MarkDead records that a member crashed (kernel-context safe: flags
// only, no virtual-time side effects). Every cached tree is marked for
// rebuild — the dead node may sit anywhere in a tree, including a
// site-leader slot — so the next operation re-elects leaders among the
// survivors. An operation already in flight fails fast through its
// edges' peer-death errors and succeeds on retry over the new tree.
func (g *Group) MarkDead(n topology.NodeID) {
	if !g.isMember(n) || g.dead[n] {
		return
	}
	g.dead[n] = true
	g.dirtyAll()
	g.tel.Note("group", "member dead", int(n), int64(len(g.Alive())), 0)
	if g.tel.Tracing() {
		g.tel.Instant("group", "member_dead", int(n)).End()
	}
}

// MarkAlive re-admits a recovered member (a heal after a partition, a
// rebooted node); cached trees rebuild to include it again.
func (g *Group) MarkAlive(n topology.NodeID) {
	if !g.dead[n] {
		return
	}
	delete(g.dead, n)
	g.dirtyAll()
	g.tel.Note("group", "member alive", int(n), int64(len(g.Alive())), 0)
	if g.tel.Tracing() {
		g.tel.Instant("group", "member_alive", int(n)).End()
	}
}

// dirtyAll flags every cached tree for lazy rebuild.
func (g *Group) dirtyAll() {
	for root := range g.trees {
		g.dirty[root] = true
	}
}

// Alive returns the members not marked dead — the full (shared) member
// slice when none are, so fault-free runs take the exact same path.
func (g *Group) Alive() []topology.NodeID {
	if len(g.dead) == 0 {
		return g.members
	}
	out := make([]topology.NodeID, 0, len(g.members))
	for _, m := range g.members {
		if !g.dead[m] {
			out = append(out, m)
		}
	}
	return out
}

// lockTree serializes operations per tree root; the semaphore is the
// only lock an operation holds while it queues on the session layer's
// SAN pair circuits, and it is always taken first.
func (g *Group) lockTree(p *vtime.Proc, root topology.NodeID) func() {
	sem, ok := g.sems[root]
	if !ok {
		sem = vtime.NewSemaphore(fmt.Sprintf("group:tree:%d", root), 1)
		g.sems[root] = sem
	}
	sem.Acquire(p)
	return sem.Release
}

// Members returns the sorted member list.
func (g *Group) Members() []topology.NodeID { return g.members }

// Size returns the member count.
func (g *Group) Size() int { return len(g.members) }

// Config returns the effective configuration.
func (g *Group) Config() Config { return g.cfg }

func (g *Group) isMember(n topology.NodeID) bool {
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i] >= n })
	return i < len(g.members) && g.members[i] == n
}

// Tree returns (building and caching on first use) the spanning tree
// for operations rooted at root. A tree marked dirty by the weather is
// dropped first — edges closed, so the rebuild re-selects per hop —
// unless an operation is running on it, in which case the rebuild
// waits for the next call.
func (g *Group) Tree(root topology.NodeID) (*Tree, error) {
	if !g.isMember(root) {
		return nil, fmt.Errorf("%w: node %d", ErrNotMember, root)
	}
	if g.dead[root] {
		return nil, fmt.Errorf("%w: node %d", ErrMemberDown, root)
	}
	if g.dirty[root] {
		sem, held := g.sems[root], false
		if sem != nil && !sem.TryAcquire() {
			held = true // operation in flight; rebuild later
		}
		if !held {
			g.resetTree(root)
			delete(g.trees, root)
			delete(g.dirty, root)
			atomic.AddInt64(&g.stats.TreeRebuilds, 1)
			g.tel.Note("group", "tree rebuild", int(root), 0, 0)
			if g.tel.Tracing() {
				g.tel.Instant("group", "tree_rebuild", int(root)).End()
			}
			if sem != nil {
				sem.Release()
			}
		}
	}
	if t, ok := g.trees[root]; ok {
		return t, nil
	}
	t, err := buildTree(g.topo, g.Alive(), root)
	if err != nil {
		return nil, err
	}
	g.trees[root] = t
	return t, nil
}

// WANBytes returns the cumulative bytes this group moved across
// wide-area edges, both directions (payload down, statuses up),
// including edges already reset.
func (g *Group) WANBytes() int64 {
	total := g.closedWAN
	for _, key := range g.edgeKeys() {
		ch := g.edges[key]
		if ch.Info().Class >= selector.PathWAN {
			total += ch.Info().BytesOut + ch.Remote().Info().BytesOut
		}
	}
	return total
}

// edgeKeys returns the cached edge keys in sorted order (no map-order
// leaks into event sequences).
func (g *Group) edgeKeys() [][3]topology.NodeID {
	keys := make([][3]topology.NodeID, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		for x := 0; x < 3; x++ {
			if keys[i][x] != keys[j][x] {
				return keys[i][x] < keys[j][x]
			}
		}
		return false
	})
	return keys
}

// resetTree tears down the cached edges of one root's tree
// (accumulating their WAN byte counts first). Called after a failed
// operation: a died or timed-out protocol may leave a cached channel
// mid-message, so the next operation on this tree re-provisions from
// scratch, and any relay daemon still parked on an old channel
// unblocks (its Recv returns ErrClosed). Other roots' trees own
// disjoint channels and are untouched — a concurrent operation on a
// sibling tree keeps running.
func (g *Group) resetTree(root topology.NodeID) {
	g.closeEdges(func(key [3]topology.NodeID) bool { return key[0] == root })
}

// Close tears down every cached edge, folding their WAN byte counts
// into the cumulative total WANBytes reports. A closed group is still
// usable — edges re-provision on demand — so Close is the release
// valve for transient groups (retry subsets), not a terminal state.
// Do not call it while an operation is in flight on the group.
func (g *Group) Close() {
	g.closeEdges(func([3]topology.NodeID) bool { return true })
}

func (g *Group) closeEdges(match func([3]topology.NodeID) bool) {
	for _, key := range g.edgeKeys() {
		if !match(key) {
			continue
		}
		ch := g.edges[key]
		if ch.Info().Class >= selector.PathWAN {
			g.closedWAN += ch.Info().BytesOut + ch.Remote().Info().BytesOut
		}
		ch.Close()
		ch.Remote().Close()
		delete(g.edges, key)
	}
}

// openEdges provisions the channels of every tree edge: cached ones
// are reused, missing non-SAN ones are opened and cached under the
// tree's root, SAN ones are opened fresh and closed by the returned
// release func. SAN edges are acquired in ascending undirected-pair
// order — a global canonical order, so concurrent operations (this
// group or any other) queueing on the session layer's exclusive pair
// circuits can never deadlock in a hold-and-wait cycle.
func (g *Group) openEdges(p *vtime.Proc, t *Tree) (map[[2]topology.NodeID]session.Channel, func(), error) {
	chans := make(map[[2]topology.NodeID]session.Channel, len(t.Edges()))
	var perOp [][2]topology.NodeID
	release := func() {
		for _, key := range perOp {
			chans[key].Close()
			chans[key].Remote().Close()
		}
	}
	open := func(e Edge) (session.Channel, error) {
		opts := []session.Option{session.WithCollective()}
		if g.cfg.Streams > 0 {
			opts = append(opts, session.WithStreams(g.cfg.Streams))
		}
		return g.mgr.Open(p, e.Parent, e.Child, opts...)
	}
	var sanEdges []Edge
	for _, e := range t.Edges() {
		if e.Class == selector.PathSAN {
			sanEdges = append(sanEdges, e)
			continue
		}
		key := [3]topology.NodeID{t.Root(), e.Parent, e.Child}
		if ch, ok := g.edges[key]; ok {
			chans[[2]topology.NodeID{e.Parent, e.Child}] = ch
			atomic.AddInt64(&g.stats.EdgeReuses, 1)
			continue
		}
		ch, err := open(e)
		if err != nil {
			release()
			return nil, nil, fmt.Errorf("group: edge %d->%d: %w", e.Parent, e.Child, err)
		}
		chans[[2]topology.NodeID{e.Parent, e.Child}] = ch
		g.edges[key] = ch
		atomic.AddInt64(&g.stats.EdgesOpened, 1)
	}
	sort.Slice(sanEdges, func(i, j int) bool {
		return pairKey(sanEdges[i]) < pairKey(sanEdges[j])
	})
	for _, e := range sanEdges {
		ch, err := open(e)
		if err != nil {
			release()
			return nil, nil, fmt.Errorf("group: edge %d->%d: %w", e.Parent, e.Child, err)
		}
		key := [2]topology.NodeID{e.Parent, e.Child}
		chans[key] = ch
		perOp = append(perOp, key)
		atomic.AddInt64(&g.stats.EdgesOpened, 1)
	}
	return chans, release, nil
}

// pairKey orders edges by their undirected node pair.
func pairKey(e Edge) int64 {
	lo, hi := e.Parent, e.Child
	if lo > hi {
		lo, hi = hi, lo
	}
	return int64(lo)<<32 | int64(hi)
}

// downChannels returns n's child-edge channels in child order (WAN
// hops first, the order the tree linked them).
func downChannels(t *Tree, chans map[[2]topology.NodeID]session.Channel, n topology.NodeID) []session.Channel {
	kids := t.Children(n)
	out := make([]session.Channel, len(kids))
	for i, c := range kids {
		out[i] = chans[[2]topology.NodeID{n, c}]
	}
	return out
}

// ---------------------------------------------------------------------
// Wire protocol. Downstream on each edge: a header message — a fixed
// segment [2B taglen][8B size][32B sha256][2B attempt] plus a tag
// segment — then the payload in chunks through the channel's stream
// view (forwarded downstream as they arrive). Upstream: one status
// message per operation — [1B ok][2B nFailed] segments plus, when
// nFailed > 0, a [4B×nFailed] member-id segment covering the whole
// subtree. The shapes travel packed on a Circuit and size-delimited on
// a VLink, exactly like the datagrid's transfer protocol.

const mcastHdrLen = 2 + 8 + 32 + 2

func encodeMcastHeader(tag string, size int, sum [32]byte, attempt int) []byte {
	hdr := make([]byte, mcastHdrLen)
	binary.BigEndian.PutUint16(hdr, uint16(len(tag)))
	binary.BigEndian.PutUint64(hdr[2:], uint64(size))
	copy(hdr[10:], sum[:])
	binary.BigEndian.PutUint16(hdr[42:], uint16(attempt))
	return hdr
}

func sendStatus(q *vtime.Proc, ch session.Channel, failed []topology.NodeID) error {
	okb := byte(1)
	if len(failed) > 0 {
		okb = 0
	}
	var nbuf [2]byte
	binary.BigEndian.PutUint16(nbuf[:], uint16(len(failed)))
	if len(failed) == 0 {
		return ch.Send(q, []byte{okb}, nbuf[:])
	}
	ids := make([]byte, 4*len(failed))
	for i, n := range failed {
		binary.BigEndian.PutUint32(ids[4*i:], uint32(n))
	}
	return ch.Send(q, []byte{okb}, nbuf[:], ids)
}

func recvStatus(q *vtime.Proc, ch session.Channel) (ok bool, failed []topology.NodeID, err error) {
	segs, err := ch.Recv(q, 1, 2)
	if err != nil {
		return false, nil, err
	}
	n := int(binary.BigEndian.Uint16(segs[1]))
	if n > 0 {
		ids, err := ch.Recv(q, 4*n)
		if err != nil {
			return false, nil, err
		}
		failed = make([]topology.NodeID, n)
		for i := range failed {
			failed[i] = topology.NodeID(binary.BigEndian.Uint32(ids[0][4*i:]))
		}
	}
	return segs[0][0] == 1, failed, nil
}

// ---------------------------------------------------------------------
// Multicast.

// Multicast distributes data from root to every other member through
// the spanning tree, with chunked pipelining and sha256 end-to-end
// verification at each member. It returns the verified copy received
// by each non-root member. attempt is 1-based and tags the operation
// for the fault-injection hook and retry diagnostics; pass 1 unless
// retrying. On partial failure the returned map holds the members that
// did verify and the error is a *MulticastError listing those that did
// not. On ErrEdgeFailed (a died or timed-out edge) the map is nil: a
// straggler relay may still be consuming its delivery virtual time, so
// no delivery set can be handed out safely.
func (g *Group) Multicast(p *vtime.Proc, root topology.NodeID, tag string, data []byte, attempt int) (map[topology.NodeID][]byte, error) {
	sp := g.tel.Begin("group", "multicast", int(root))
	if sp != nil {
		sp.Str("tag", tag).I64("bytes", int64(len(data))).
			I64("attempt", int64(attempt)).I64("members", int64(len(g.members)))
	}
	t0 := g.k.Now()
	defer func() { g.hOp.Observe(g.k.Now().Sub(t0)); sp.End() }()
	// Relays, waves and their TCP segments on every member node attach
	// under this operation (which itself joins any enclosing request).
	defer sp.Exit(sp.Enter())
	t, err := g.Tree(root)
	if err != nil {
		return nil, err
	}
	defer g.lockTree(p, root)()
	chans, release, err := g.openEdges(p, t)
	if err != nil {
		atomic.AddInt64(&g.stats.Failures, 1)
		return nil, err
	}
	results := make(map[topology.NodeID][]byte, len(g.members)-1)

	// One relay daemon per non-root member: receive from the parent
	// edge, forward chunks downstream as they arrive, verify, aggregate
	// subtree statuses upward.
	for _, e := range t.Edges() {
		child := e.Child
		up := chans[[2]topology.NodeID{e.Parent, child}].Remote()
		down := downChannels(t, chans, child)
		g.k.GoDaemon(fmt.Sprintf("group:relay:%d", child), func(q *vtime.Proc) {
			g.relayMulticast(q, child, up, down, results)
		})
	}

	// Root: header then chunks to each child, long-latency hops first.
	kids := downChannels(t, chans, root)
	sum := sha256.Sum256(data)
	hdr := encodeMcastHeader(tag, len(data), sum, attempt)
	hdrSegs := [][]byte{hdr, []byte(tag)}
	if g.tel.Tracing() {
		// The operation's trace context rides the header so every relay
		// adopts the request identity from the wire.
		hdrSegs = append(hdrSegs, telemetry.EncodeCtx(g.tel.Cur()))
	}
	var sendErr error
	for _, ch := range kids {
		if err := ch.Send(p, hdrSegs...); err != nil {
			sendErr = err
			break
		}
	}
	for off := 0; off < len(data) && sendErr == nil; {
		end := off + g.cfg.ChunkBytes
		if end > len(data) {
			end = len(data)
		}
		for _, ch := range kids {
			if _, err := ch.Write(p, data[off:end]); err != nil {
				sendErr = err
				break
			}
		}
		off = end
	}

	// Statuses: one reader daemon per child so a dead subtree cannot
	// block the root past the timeout.
	type status struct {
		failed []topology.NodeID
		err    error
	}
	stq := vtime.NewQueue[status]("group:status")
	for _, ch := range kids {
		ch := ch
		g.k.GoDaemon("group:status", func(q *vtime.Proc) {
			_, failed, err := recvStatus(q, ch)
			stq.Push(status{failed: failed, err: err})
		})
	}
	var failed []topology.NodeID
	bad := sendErr != nil
	// A dead edge can never deliver a status: when the send already
	// failed, drain briefly instead of burning the full timeout on a
	// known-failed attempt.
	tmo := g.cfg.StatusTimeout
	if sendErr != nil {
		tmo = 100 * time.Millisecond
	}
	for range kids {
		st, ok := stq.PopTimeout(p, tmo)
		if !ok || st.err != nil {
			bad = true
			break
		}
		failed = append(failed, st.failed...)
	}
	release()
	if bad {
		// A poisoned protocol may sit mid-message on a cached channel:
		// drop this tree's so a retry re-provisions (and stale daemons
		// unblock with ErrClosed). The results map stays here — a
		// straggler relay that was mid-delivery when the timeout fired
		// may still insert into it, so handing it to the caller would
		// hand out a map another proc writes.
		g.resetTree(t.Root())
		atomic.AddInt64(&g.stats.Failures, 1)
		return nil, fmt.Errorf("%w: multicast %q attempt %d", ErrEdgeFailed, tag, attempt)
	}
	atomic.AddInt64(&g.stats.Multicasts, 1)
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
		atomic.AddInt64(&g.stats.Failures, 1)
		return results, &MulticastError{Tag: tag, Attempt: attempt, Failed: failed}
	}
	return results, nil
}

// relayMulticast is one member's side of a multicast: pipeline chunks
// downstream, verify the whole payload, fold the subtree status.
func (g *Group) relayMulticast(q *vtime.Proc, self topology.NodeID,
	up session.Channel, down []session.Channel, results map[topology.NodeID][]byte) {
	hdr, err := up.Recv(q, mcastHdrLen)
	if err != nil {
		return
	}
	fixed := hdr[0]
	taglen := int(binary.BigEndian.Uint16(fixed))
	size := int(binary.BigEndian.Uint64(fixed[2:]))
	var want [32]byte
	copy(want[:], fixed[10:])
	attempt := int(binary.BigEndian.Uint16(fixed[42:]))
	tagSeg, err := up.Recv(q, taglen)
	if err != nil {
		return
	}
	fwd := [][]byte{fixed, tagSeg[0]}
	if g.tel.Tracing() {
		ctxSeg, err := up.Recv(q, telemetry.CtxWireLen)
		if err != nil {
			return
		}
		// Adopt the wire-carried request context before relaying: chunk
		// forwards, verification and the status fold attribute to it.
		g.tel.SetCur(telemetry.DecodeCtx(ctxSeg[0]))
		fwd = append(fwd, ctxSeg[0])
	}
	for _, ch := range down {
		if err := ch.Send(q, fwd...); err != nil {
			return
		}
	}
	buf := make([]byte, size)
	received := 0
	for received < size {
		n, err := up.Read(q, buf[received:])
		if n > 0 {
			// Relay = retain + forward: the received bytes are written
			// downstream verbatim as views of this member's single
			// materialization — no re-framing, and the vectored driver
			// stacks below add no further copies.
			for _, ch := range down {
				if _, werr := ch.Write(q, buf[received:received+n]); werr != nil {
					return
				}
			}
		}
		received += n
		if err != nil {
			return // upstream died; no status, the root times out
		}
	}
	q.Consume(model.MemcpyPerByte.Cost(size)) // hand the copy to the consumer
	ok := sha256.Sum256(buf) == want
	if ok && g.cfg.InjectFault != nil && g.cfg.InjectFault(string(tagSeg[0]), self, attempt) {
		ok = false
	}
	var failed []topology.NodeID
	if ok {
		results[self] = buf
	} else {
		failed = append(failed, self)
	}
	for _, ch := range down {
		_, cf, err := recvStatus(q, ch)
		if err != nil {
			return
		}
		failed = append(failed, cf...)
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	sendStatus(q, up, failed)
}

// ---------------------------------------------------------------------
// Reduce.

// Reduce combines per-member float64 vectors up the tree with op and
// returns the result at root. contrib supplies each member's vector —
// every member MUST return the same width as root's (violations
// surface as a kernel deadlock diagnostic or a protocol error, not a
// graceful return: unlike Multicast, the bottom-up collectives carry
// no status wave to time out on). The combine order is fixed — self,
// then children in tree order — so floating-point results are
// reproducible.
func (g *Group) Reduce(p *vtime.Proc, root topology.NodeID, contrib func(topology.NodeID) []float64, op circuit.ReduceOp) ([]float64, error) {
	sp := g.tel.Begin("group", "reduce", int(root)).I64("members", int64(len(g.members)))
	t0 := g.k.Now()
	defer func() { g.hOp.Observe(g.k.Now().Sub(t0)); sp.End() }()
	// Relays, waves and their TCP segments on every member node attach
	// under this operation (which itself joins any enclosing request).
	defer sp.Exit(sp.Enter())
	t, err := g.Tree(root)
	if err != nil {
		return nil, err
	}
	defer g.lockTree(p, root)()
	chans, release, err := g.openEdges(p, t)
	if err != nil {
		atomic.AddInt64(&g.stats.Failures, 1)
		return nil, err
	}
	defer release()

	for _, e := range t.Edges() {
		child := e.Child
		up := chans[[2]topology.NodeID{e.Parent, child}].Remote()
		down := downChannels(t, chans, child)
		g.k.GoDaemon(fmt.Sprintf("group:reduce:%d", child), func(q *vtime.Proc) {
			acc := append([]float64(nil), contrib(child)...)
			for _, ch := range down {
				seg, err := ch.Recv(q, 8*len(acc))
				if err != nil {
					return
				}
				fold(acc, circuit.DecodeF64(seg[0]), op)
			}
			up.Send(q, circuit.EncodeF64(acc))
		})
	}
	acc := append([]float64(nil), contrib(root)...)
	for _, ch := range downChannels(t, chans, root) {
		seg, err := ch.Recv(p, 8*len(acc))
		if err != nil {
			g.resetTree(t.Root())
			atomic.AddInt64(&g.stats.Failures, 1)
			return nil, fmt.Errorf("%w: reduce", ErrEdgeFailed)
		}
		fold(acc, circuit.DecodeF64(seg[0]), op)
	}
	atomic.AddInt64(&g.stats.Reduces, 1)
	return acc, nil
}

func fold(acc, v []float64, op circuit.ReduceOp) {
	for i := range acc {
		acc[i] = op(acc[i], v[i])
	}
}

// ---------------------------------------------------------------------
// Barrier.

const (
	barrierArrive  = 0xA1
	barrierRelease = 0xA2
	barrierDone    = 0xA3
)

// Barrier blocks p until every member's relay reached the barrier:
// arrivals fold up the tree (rooted at the lowest-id member), a
// release wave fans back down, and a final done wave folds up again —
// the third traversal guarantees no message is still in flight when
// the per-operation SAN circuits are torn down.
func (g *Group) Barrier(p *vtime.Proc) error {
	alive := g.Alive()
	if len(alive) == 0 {
		return ErrNoMembers
	}
	root := alive[0]
	sp := g.tel.Begin("group", "barrier", int(root)).I64("members", int64(len(g.members)))
	t0 := g.k.Now()
	defer func() { g.hOp.Observe(g.k.Now().Sub(t0)); sp.End() }()
	defer sp.Exit(sp.Enter())
	t, err := g.Tree(root)
	if err != nil {
		return err
	}
	defer g.lockTree(p, root)()
	chans, release, err := g.openEdges(p, t)
	if err != nil {
		atomic.AddInt64(&g.stats.Failures, 1)
		return err
	}
	defer release()

	for _, e := range t.Edges() {
		child := e.Child
		up := chans[[2]topology.NodeID{e.Parent, child}].Remote()
		down := downChannels(t, chans, child)
		g.k.GoDaemon(fmt.Sprintf("group:barrier:%d", child), func(q *vtime.Proc) {
			for _, ch := range down { // subtree arrivals
				if _, err := ch.Recv(q, 1); err != nil {
					return
				}
			}
			if err := up.Send(q, []byte{barrierArrive}); err != nil {
				return
			}
			if _, err := up.Recv(q, 1); err != nil { // release
				return
			}
			for _, ch := range down {
				if err := ch.Send(q, []byte{barrierRelease}); err != nil {
					return
				}
			}
			for _, ch := range down { // subtree done
				if _, err := ch.Recv(q, 1); err != nil {
					return
				}
			}
			up.Send(q, []byte{barrierDone})
		})
	}
	kids := downChannels(t, chans, root)
	fail := func() error {
		g.resetTree(t.Root())
		atomic.AddInt64(&g.stats.Failures, 1)
		return fmt.Errorf("%w: barrier", ErrEdgeFailed)
	}
	wave := func(name string) *telemetry.Span {
		return g.tel.Begin("group", name, int(root)).Parent(sp)
	}
	w := wave("wave.arrive")
	for _, ch := range kids {
		if _, err := ch.Recv(p, 1); err != nil {
			w.End()
			return fail()
		}
	}
	w.End()
	w = wave("wave.release")
	for _, ch := range kids {
		if err := ch.Send(p, []byte{barrierRelease}); err != nil {
			w.End()
			return fail()
		}
	}
	w.End()
	w = wave("wave.done")
	for _, ch := range kids {
		if _, err := ch.Recv(p, 1); err != nil {
			w.End()
			return fail()
		}
	}
	w.End()
	atomic.AddInt64(&g.stats.Barriers, 1)
	return nil
}

// ---------------------------------------------------------------------
// Gather.

// Gather collects one byte payload per member at root: each relay
// sends its own frame up, then forwards its descendants' frames — the
// inverse tree traffic pattern of Multicast. The returned map includes
// root's own contribution.
func (g *Group) Gather(p *vtime.Proc, root topology.NodeID, contrib func(topology.NodeID) []byte) (map[topology.NodeID][]byte, error) {
	sp := g.tel.Begin("group", "gather", int(root)).I64("members", int64(len(g.members)))
	t0 := g.k.Now()
	defer func() { g.hOp.Observe(g.k.Now().Sub(t0)); sp.End() }()
	// Relays, waves and their TCP segments on every member node attach
	// under this operation (which itself joins any enclosing request).
	defer sp.Exit(sp.Enter())
	t, err := g.Tree(root)
	if err != nil {
		return nil, err
	}
	defer g.lockTree(p, root)()
	chans, release, err := g.openEdges(p, t)
	if err != nil {
		atomic.AddInt64(&g.stats.Failures, 1)
		return nil, err
	}
	defer release()

	for _, e := range t.Edges() {
		child := e.Child
		up := chans[[2]topology.NodeID{e.Parent, child}].Remote()
		down := downChannels(t, chans, child)
		kids := t.Children(child)
		g.k.GoDaemon(fmt.Sprintf("group:gather:%d", child), func(q *vtime.Proc) {
			own := contrib(child)
			if err := up.Send(q, gatherFrameHdr(child, len(own)), own); err != nil {
				return
			}
			for i, ch := range down {
				for j := 0; j < t.SubtreeSize(kids[i]); j++ {
					id, payload, err := recvGatherFrame(q, ch)
					if err != nil {
						return
					}
					if err := up.Send(q, gatherFrameHdr(id, len(payload)), payload); err != nil {
						return
					}
				}
			}
		})
	}
	out := make(map[topology.NodeID][]byte, len(g.members))
	out[root] = contrib(root)
	kids := t.Children(root)
	for i, ch := range downChannels(t, chans, root) {
		for j := 0; j < t.SubtreeSize(kids[i]); j++ {
			id, payload, err := recvGatherFrame(p, ch)
			if err != nil {
				g.resetTree(t.Root())
				atomic.AddInt64(&g.stats.Failures, 1)
				return nil, fmt.Errorf("%w: gather", ErrEdgeFailed)
			}
			out[id] = payload
		}
	}
	atomic.AddInt64(&g.stats.Gathers, 1)
	return out, nil
}

// gather frame: one message of two segments, [4B id][4B len] + payload.
func gatherFrameHdr(n topology.NodeID, size int) []byte {
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr, uint32(n))
	binary.BigEndian.PutUint32(hdr[4:], uint32(size))
	return hdr
}

func recvGatherFrame(q *vtime.Proc, ch session.Channel) (topology.NodeID, []byte, error) {
	hdr, err := ch.Recv(q, 8)
	if err != nil {
		return 0, nil, err
	}
	id := topology.NodeID(binary.BigEndian.Uint32(hdr[0]))
	size := int(binary.BigEndian.Uint32(hdr[0][4:]))
	payload, err := ch.Recv(q, size)
	if err != nil {
		return 0, nil, err
	}
	return id, payload[0], nil
}
