package datagrid_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"padico/internal/datagrid"
	"padico/internal/grid"
	"padico/internal/store"
	"padico/internal/topology"
	"padico/internal/vtime"
	weatherpkg "padico/internal/weather"
)

// payload returns size deterministic pseudo-random (incompressible)
// bytes.
func payload(seed int64, size int) []byte {
	b := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestPutGetOnCluster exercises the SAN path: every transfer inside a
// Myrinet cluster rides a Circuit, and reads come back byte-identical.
func TestPutGetOnCluster(t *testing.T) {
	withEngines(t, func(t *testing.T, engine store.Factory) {
		g := grid.Cluster(4)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Engine: engine})
		data := payload(1, 1<<20)
		if err := g.K.Run(func(p *vtime.Proc) {
			if err := dg.Put(p, 0, "alpha", data); err != nil {
				t.Fatal(err)
			}
			dg.WaitSettled(p)
			if err := dg.VerifyReplicas("alpha"); err != nil {
				t.Fatal(err)
			}
			got, err := dg.Get(p, 3, "alpha")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("GET returned different bytes")
			}
		}); err != nil {
			t.Fatal(err)
		}
		if dg.Stats().CircuitTransfers == 0 {
			t.Fatalf("no circuit transfers on a SAN cluster: %+v", dg.Stats())
		}
		if dg.Stats().VLinkTransfers != 0 {
			t.Fatalf("vlink transfers inside a single cluster: %+v", dg.Stats())
		}
		if len(dg.Holders("alpha")) != 2 {
			t.Fatalf("holders = %v", dg.Holders("alpha"))
		}
	})
}

// TestReplicasSpanSites checks zone-aware placement end to end: with
// replica factor 2 on a two-site grid, the copies land in different
// sites and cross-site replication uses the distributed paradigm.
func TestReplicasSpanSites(t *testing.T) {
	withEngines(t, func(t *testing.T, engine store.Factory) {
		g := grid.TwoClusterWAN(2, 2)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Engine: engine})
		if err := g.K.Run(func(p *vtime.Proc) {
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("obj-%d", i)
				if err := dg.Put(p, 0, name, payload(int64(i), 256<<10)); err != nil {
					t.Fatal(err)
				}
			}
			dg.WaitSettled(p)
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("obj-%d", i)
				if err := dg.VerifyReplicas(name); err != nil {
					t.Fatal(err)
				}
				meta, _ := dg.Meta(name)
				if g.Topo.SameSite(meta.Targets[0], meta.Targets[1]) {
					t.Fatalf("%s: both replicas in one site: %v", name, meta.Targets)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if dg.Stats().VLinkTransfers == 0 {
			t.Fatalf("no cross-site vlink transfers: %+v", dg.Stats())
		}
	})
}

// wanPutThroughput PUTs one size-byte object from a rennes client to a
// grenoble-only ring over the lossy WAN and returns bytes per second
// of virtual time.
func wanPutThroughput(t *testing.T, streams, size int, loss float64) float64 {
	g := grid.TwoClusterWANLoss(1, 1, loss)
	dg := g.NewDataGrid(datagrid.Config{Replicas: 1, Streams: streams})
	ring := datagrid.NewRing(0)
	ring.Add(1, "grenoble") // force a cross-WAN ingest path
	dg.SetRing(ring)
	data := payload(7, size)
	var rate float64
	if err := g.K.Run(func(p *vtime.Proc) {
		start := p.Now()
		if err := dg.Put(p, 0, "bulk", data); err != nil {
			t.Fatal(err)
		}
		rate = float64(size) / p.Now().Sub(start).Seconds()
		got, ok := dg.ObjectOn(1, "bulk")
		if !ok || !bytes.Equal(got, data) {
			t.Fatal("replica differs from the original")
		}
	}); err != nil {
		t.Fatal(err)
	}
	return rate
}

// TestStripedPutBeatsSingleStream is the acceptance experiment: a
// 64 MiB PUT across the WAN with 4 stripes must at least double the
// single-stream virtual-time throughput. With isolated loss on the
// wide area, each drop stalls only one stripe — the paper's parallel
// streams argument applied to bulk data.
func TestStripedPutBeatsSingleStream(t *testing.T) {
	const size = 64 << 20
	const loss = 0.01
	single := wanPutThroughput(t, 1, size, loss)
	striped := wanPutThroughput(t, 4, size, loss)
	if striped < 2*single {
		t.Fatalf("striped %.2f MB/s < 2x single %.2f MB/s", striped/1e6, single/1e6)
	}
	if striped > 12.6e6 {
		t.Fatalf("striped %.2f MB/s exceeds the access-link cap", striped/1e6)
	}
	t.Logf("single %.2f MB/s, striped x4 %.2f MB/s (%.1fx)",
		single/1e6, striped/1e6, striped/single)
}

// TestReplicationConvergesUnderLoss is the other acceptance
// experiment: with loss configured on the WAN, replication still
// converges and every replica is byte-identical (checksummed end to
// end).
func TestReplicationConvergesUnderLoss(t *testing.T) {
	withEngines(t, func(t *testing.T, engine store.Factory) {
		g := grid.TwoClusterWANLoss(2, 2, 0.02)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 3, Engine: engine})
		objects := map[string][]byte{}
		if err := g.K.Run(func(p *vtime.Proc) {
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("lossy-%d", i)
				data := payload(int64(100+i), 2<<20)
				objects[name] = data
				if err := dg.Put(p, topology.NodeID(i%4), name, data); err != nil {
					t.Fatal(err)
				}
			}
			dg.WaitSettled(p)
		}); err != nil {
			t.Fatal(err)
		}
		for name, data := range objects {
			if err := dg.VerifyReplicas(name); err != nil {
				t.Fatal(err)
			}
			meta, _ := dg.Meta(name)
			if len(meta.Targets) != 3 {
				t.Fatalf("%s: %d targets", name, len(meta.Targets))
			}
			for _, tgt := range meta.Targets {
				got, _ := dg.ObjectOn(tgt, name)
				if !bytes.Equal(got, data) {
					t.Fatalf("%s: replica on %d differs", name, tgt)
				}
			}
		}
		if dg.Stats().Failures != 0 {
			t.Fatalf("failures under loss: %+v", dg.Stats())
		}
		if errs := dg.JobErrors(); len(errs) != 0 {
			t.Fatalf("background job errors: %v", errs)
		}
	})
}

// TestRetryOnInjectedFault proves the retry path on both paradigms: a
// receiver-side fault on the first attempt forces a second, successful
// attempt.
func TestRetryOnInjectedFault(t *testing.T) {
	cases := []struct {
		name  string
		build func() *grid.Grid
	}{
		{"circuit", func() *grid.Grid { return grid.Cluster(3) }},
		{"vlink", func() *grid.Grid { return grid.TwoClusterWAN(1, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			withEngines(t, func(t *testing.T, engine store.Factory) {
				g := c.build()
				dg := g.NewDataGrid(datagrid.Config{
					Replicas: 2,
					Engine:   engine,
					InjectFault: func(name string, attempt int) bool {
						return attempt == 1 // every transfer fails once
					},
				})
				data := payload(5, 512<<10)
				if err := g.K.Run(func(p *vtime.Proc) {
					if err := dg.Put(p, 0, "flaky", data); err != nil {
						t.Fatal(err)
					}
					dg.WaitSettled(p)
					if err := dg.VerifyReplicas("flaky"); err != nil {
						t.Fatal(err)
					}
				}); err != nil {
					t.Fatal(err)
				}
				if dg.Stats().Retries == 0 {
					t.Fatalf("fault injected but no retries recorded: %+v", dg.Stats())
				}
				if dg.Stats().Failures != 0 {
					t.Fatalf("retries did not recover: %+v", dg.Stats())
				}
			})
		})
	}
}

// TestFaultExhaustsRetries pins the failure path: a permanent fault
// surfaces as ErrJobFailed from Put.
func TestFaultExhaustsRetries(t *testing.T) {
	g := grid.Cluster(2)
	dg := g.NewDataGrid(datagrid.Config{
		Replicas:    1,
		MaxRetries:  2,
		InjectFault: func(string, int) bool { return true },
	})
	ring := datagrid.NewRing(0)
	ring.Add(1, "rennes") // force a real (non-local) transfer
	dg.SetRing(ring)
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "doomed", payload(9, 64<<10)); err == nil {
			t.Fatal("Put succeeded under a permanent fault")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if dg.Stats().Failures != 1 {
		t.Fatalf("failures = %d", dg.Stats().Failures)
	}
}

// TestManyTransfersReuseCircuits runs far more same-pair SAN
// transfers than leaked circuits could sustain (MadIO logical channels
// are a finite per-node resource): the session manager must either
// share the pair's live circuit (overlapping jobs) or tear it down and
// return its logical channel on last release (sequential jobs) — never
// strand one per transfer.
func TestManyTransfersReuseCircuits(t *testing.T) {
	withEngines(t, func(t *testing.T, engine store.Factory) {
		g := grid.Cluster(2)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 1, Engine: engine})
		ring := datagrid.NewRing(0)
		ring.Add(1, "rennes")
		dg.SetRing(ring)
		if err := g.K.Run(func(p *vtime.Proc) {
			for i := 0; i < 64; i++ {
				name := fmt.Sprintf("many-%d", i)
				if err := dg.Put(p, 0, name, payload(int64(i), 8<<10)); err != nil {
					t.Fatal(err)
				}
				if _, err := dg.Get(p, 0, name); err != nil {
					t.Fatal(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if dg.Stats().CircuitTransfers != 128 {
			t.Fatalf("circuit transfers = %d", dg.Stats().CircuitTransfers)
		}
	})
}

// TestRebalanceAfterMembershipChange grows the ring by one node and
// checks the catalog converges to the new placement with old copies
// trimmed.
func TestRebalanceAfterMembershipChange(t *testing.T) {
	withEngines(t, func(t *testing.T, engine store.Factory) {
		g := grid.Cluster(4)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Engine: engine})
		ring := datagrid.NewRing(0)
		for i := 0; i < 3; i++ { // node 3 joins later
			ring.Add(topology.NodeID(i), "rennes")
		}
		dg.SetRing(ring)
		const objects = 16
		if err := g.K.Run(func(p *vtime.Proc) {
			for i := 0; i < objects; i++ {
				if err := dg.Put(p, 0, fmt.Sprintf("o%d", i), payload(int64(i), 64<<10)); err != nil {
					t.Fatal(err)
				}
			}
			dg.WaitSettled(p)
			moved := dg.AddMember(3, "rennes")
			if moved == 0 {
				t.Fatal("no placements moved when a member joined")
			}
			if moved > objects {
				t.Fatalf("rebalance moved %d placements for %d objects", moved, objects)
			}
			dg.WaitSettled(p)
			if n := dg.TrimExcess(p); n == 0 {
				t.Fatal("nothing trimmed after rebalance")
			}
			for i := 0; i < objects; i++ {
				name := fmt.Sprintf("o%d", i)
				if err := dg.VerifyReplicas(name); err != nil {
					t.Fatal(err)
				}
				meta, _ := dg.Meta(name)
				if got := dg.Holders(name); len(got) != len(meta.Targets) {
					t.Fatalf("%s: holders %v vs targets %v", name, got, meta.Targets)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestGetPrefersNearReplica: with one replica in each site, a client
// reads from its own site — no WAN transfer happens for the read.
func TestGetPrefersNearReplica(t *testing.T) {
	g := grid.TwoClusterWAN(2, 2)
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2})
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "near", payload(11, 128<<10)); err != nil {
			t.Fatal(err)
		}
		dg.WaitSettled(p)
		before := dg.Stats().VLinkTransfers
		meta, _ := dg.Meta("near")
		// Read from a non-holder node co-sited with a replica.
		client := topology.NodeID(-1)
		for _, tgt := range meta.Targets {
			for _, n := range g.Topo.Nodes() {
				if n.ID != tgt && g.Topo.SameSite(n.ID, tgt) {
					client = n.ID
				}
			}
		}
		if client < 0 {
			t.Fatalf("no node co-sited with any replica of %v", meta.Targets)
		}
		if _, err := dg.Get(p, client, "near"); err != nil {
			t.Fatal(err)
		}
		// The read must not have crossed the WAN: any new transfer is
		// circuit (SAN) or local.
		if dg.Stats().VLinkTransfers != before {
			t.Fatalf("read crossed the WAN: %+v", dg.Stats())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParadigmMatchesPathClass pins that datagrid-over-session picks
// exactly the paradigm the old inline dispatch chose per path class:
// local copies on-node, Circuit transfers inside a SAN, VLink transfers
// across the wide area — now decided by the session manager, with the
// per-transfer counts agreeing with selector.Classify on every
// (src, dst) pair the run touched.
func TestParadigmMatchesPathClass(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *grid.Grid
		ring    func() *datagrid.Ring // nil keeps the full-topology ring
		client  topology.NodeID
		local   bool // expect local transfers
		circuit bool // expect circuit transfers
		vlink   bool // expect vlink transfers
	}{
		{
			// Client is its own (only) placement target: pure local.
			name:  "local",
			build: func() *grid.Grid { return grid.Cluster(2) },
			ring: func() *datagrid.Ring {
				r := datagrid.NewRing(0)
				r.Add(0, "rennes")
				return r
			},
			client: 0,
			local:  true,
		},
		{
			// Same-SAN pair: parallel paradigm only.
			name:  "san",
			build: func() *grid.Grid { return grid.Cluster(2) },
			ring: func() *datagrid.Ring {
				r := datagrid.NewRing(0)
				r.Add(1, "rennes")
				return r
			},
			client:  0,
			circuit: true,
		},
		{
			// Cross-site pair: distributed paradigm only.
			name:  "wan",
			build: func() *grid.Grid { return grid.TwoClusterWAN(1, 1) },
			ring: func() *datagrid.Ring {
				r := datagrid.NewRing(0)
				r.Add(1, "grenoble")
				return r
			},
			client: 0,
			vlink:  true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			dg := g.NewDataGrid(datagrid.Config{Replicas: 1})
			if c.ring != nil {
				dg.SetRing(c.ring())
			}
			if err := g.K.Run(func(p *vtime.Proc) {
				if err := dg.Put(p, c.client, "probe", payload(3, 128<<10)); err != nil {
					t.Fatal(err)
				}
				dg.WaitSettled(p)
			}); err != nil {
				t.Fatal(err)
			}
			st := dg.Stats()
			if c.local != (st.LocalTransfers > 0) ||
				c.circuit != (st.CircuitTransfers > 0) ||
				c.vlink != (st.VLinkTransfers > 0) {
				t.Fatalf("paradigm mix = %+v, want local=%v circuit=%v vlink=%v",
					st, c.local, c.circuit, c.vlink)
			}
		})
	}
}

// hierRun drives one replica-3 bulk workload (the bench's regime: two
// remote replicas per object land in one remote site) on the
// two-cluster WAN testbed and reports WAN bytes and the fan-out
// (converge) virtual time.
func hierRun(t *testing.T, hierarchical bool) (int64, vtime.Duration) {
	t.Helper()
	g := grid.TwoClusterWANLoss(2, 2, 0.01)
	dg := g.NewDataGrid(datagrid.Config{Replicas: 3, Streams: 4, Hierarchical: hierarchical})
	data := payload(42, 4<<20)
	var converge vtime.Duration
	if err := g.K.Run(func(p *vtime.Proc) {
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, topology.NodeID(i%4), fmt.Sprintf("bench-%d", i), data); err != nil {
				t.Fatal(err)
			}
		}
		putDone := p.Now()
		dg.WaitSettled(p)
		converge = p.Now().Sub(putDone)
		for i := 0; i < 4; i++ {
			if err := dg.VerifyReplicas(fmt.Sprintf("bench-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if hierarchical && dg.Stats().GroupFanouts == 0 {
		t.Fatalf("hierarchical run never used the group: %+v", dg.Stats())
	}
	if !hierarchical && dg.Stats().GroupFanouts != 0 {
		t.Fatalf("flat run used the group: %+v", dg.Stats())
	}
	return dg.Stats().WANBytes, converge
}

// TestHierarchicalFanoutBeatsFlat is the tentpole claim: with replica
// factor 3 on the two-cluster WAN, routing Put fan-out through
// group.Multicast moves strictly fewer WAN bytes and settles in
// strictly less virtual time than the point-to-point fan-out — while
// every replica still verifies end to end. Both modes are repeatable
// bit-for-bit.
func TestHierarchicalFanoutBeatsFlat(t *testing.T) {
	flatWAN, flatConverge := hierRun(t, false)
	hierWAN, hierConverge := hierRun(t, true)
	if hierWAN >= flatWAN {
		t.Fatalf("hierarchical WAN bytes %d >= flat %d", hierWAN, flatWAN)
	}
	if hierConverge >= flatConverge {
		t.Fatalf("hierarchical converge %v >= flat %v", hierConverge, flatConverge)
	}
	// Determinism: repeat runs are bit-identical.
	w2, c2 := hierRun(t, true)
	if w2 != hierWAN || c2 != hierConverge {
		t.Fatalf("hierarchical repeat diverged: %d/%v vs %d/%v", w2, c2, hierWAN, hierConverge)
	}
}

// TestHierarchicalFallsBackWhenTreeCannotSave pins the routing policy:
// with replica factor 2 every fan-out has at most one replica per
// remote site, a tree saves nothing over flat, and hierarchical mode
// must keep the point-to-point path — byte-identical WAN traffic.
func TestHierarchicalFallsBackWhenTreeCannotSave(t *testing.T) {
	run := func(hierarchical bool) (*datagrid.Stats, error) {
		g := grid.TwoClusterWAN(2, 2)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Hierarchical: hierarchical})
		err := g.K.Run(func(p *vtime.Proc) {
			for i := 0; i < 2; i++ {
				if err := dg.Put(p, 0, fmt.Sprintf("pair-%d", i), payload(3, 512<<10)); err != nil {
					t.Fatal(err)
				}
			}
			dg.WaitSettled(p)
		})
		st := dg.Stats()
		return &st, err
	}
	flat, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if hier.GroupFanouts != 0 {
		t.Fatalf("replica-2 fan-out went through the group: %+v", hier)
	}
	if hier.WANBytes != flat.WANBytes {
		t.Fatalf("fallback WAN bytes %d != flat %d", hier.WANBytes, flat.WANBytes)
	}
}

// TestHierarchicalFaultRetryConverges: the chaos hook fails every
// member's first delivery; the multicast retries over the shrinking
// failed set and still converges with verified replicas.
func TestHierarchicalFaultRetryConverges(t *testing.T) {
	g := grid.TwoClusterWAN(2, 2)
	dg := g.NewDataGrid(datagrid.Config{
		Replicas:     3,
		Hierarchical: true,
		InjectFault: func(name string, attempt int) bool {
			return attempt == 1
		},
	})
	data := payload(7, 256<<10)
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "flaky-tree", data); err != nil {
			t.Fatal(err)
		}
		dg.WaitSettled(p)
		if err := dg.VerifyReplicas("flaky-tree"); err != nil {
			t.Fatal(err)
		}
		// The cache release valve drops the settled groups without
		// touching the WAN accounting; the next fan-out re-provisions
		// transparently.
		wanBefore := dg.Stats().WANBytes
		if n := dg.ReleaseGroups(); n == 0 {
			t.Fatal("no cached groups to release")
		}
		if dg.Stats().WANBytes != wanBefore {
			t.Fatalf("releasing groups changed WAN accounting: %d -> %d", wanBefore, dg.Stats().WANBytes)
		}
		if err := dg.Put(p, 0, "flaky-tree-2", data); err != nil {
			t.Fatal(err)
		}
		dg.WaitSettled(p)
		if err := dg.VerifyReplicas("flaky-tree-2"); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(dg.JobErrors()) != 0 {
		t.Fatalf("job errors: %v", dg.JobErrors())
	}
	if dg.Stats().Retries == 0 || dg.Stats().Failures != 0 {
		t.Fatalf("stats: %+v", dg.Stats())
	}
	if dg.Stats().GroupFanouts == 0 {
		t.Fatalf("fan-out never went through the group: %+v", dg.Stats())
	}
}

// TestGetSwitchesSourceUnderWeather: a client GETs an object whose two
// replicas sit in different remote sites; once the link to the
// statically preferred holder degrades, the forecast ranking serves
// the GET from the healthy site instead (Stats.SourceSwitches), while
// the pre-degrade ranking matches the static one.
func TestGetSwitchesSourceUnderWeather(t *testing.T) {
	g := grid.DegradingWAN(1) // node 0 = site0, 1 = site1, 2 = site2
	g.EnableWeather(weatherpkg.Config{})
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2})
	ring := datagrid.NewRing(0)
	ring.Add(1, "site1")
	ring.Add(2, "site2")
	dg.SetRing(ring)
	data := payload(11, 1<<20)
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "obj", data); err != nil {
			t.Fatal(err)
		}
		dg.WaitSettled(p)
		if hs := dg.Holders("obj"); len(hs) != 2 || hs[0] != 1 || hs[1] != 2 {
			t.Fatalf("holders = %v, want [1 2]", hs)
		}
		// Healthy: both remote sites forecast alike; no switch.
		if _, err := dg.Get(p, 0, "obj"); err != nil {
			t.Fatal(err)
		}
		if dg.Stats().SourceSwitches != 0 {
			t.Fatalf("healthy GET switched sources: %+v", dg.Stats())
		}
		// Past the degrade instant plus a probe cycle: site0-site1 is
		// degraded, site0-site2 is not.
		if now := p.Now(); vtime.Time(0).Add(grid.DegradeAt+2*time.Second) > now {
			p.Sleep(vtime.Time(0).Add(grid.DegradeAt + 2*time.Second).Sub(now))
		}
		if _, err := dg.Get(p, 0, "obj"); err != nil {
			t.Fatal(err)
		}
		if dg.Stats().SourceSwitches != 1 {
			t.Fatalf("degraded GET did not switch: %+v", dg.Stats())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveTransfersConfig: Config.Adaptive routes every transfer
// over adaptive session channels; the workload still settles and
// verifies.
func TestAdaptiveTransfersConfig(t *testing.T) {
	g := grid.TwoClusterWAN(2, 2)
	dg := g.NewDataGrid(datagrid.Config{Replicas: 3, Adaptive: true})
	data := payload(13, 2<<20)
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "obj", data); err != nil {
			t.Fatal(err)
		}
		dg.WaitSettled(p)
		if err := dg.VerifyReplicas("obj"); err != nil {
			t.Fatal(err)
		}
		got, err := dg.Get(p, 3, "obj")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("adaptive GET corrupted the payload")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if g.Session().Stats().AdaptiveOpens == 0 {
		t.Fatal("no adaptive opens despite Config.Adaptive")
	}
}
