package datagrid

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"padico/internal/circuit"
	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/selector"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Fabric is what the transfer engine needs from the testbed builder:
// VLinks with an explicit selector decision (distributed paradigm) and
// Circuits over a node group (parallel paradigm). *grid.Grid satisfies
// it; datagrid stays below grid in the import order.
type Fabric interface {
	DialVLinkWith(p *vtime.Proc, a, b topology.NodeID, dec selector.Decision) (*vlink.VLink, *vlink.VLink, error)
	NewCircuits(p *vtime.Proc, name string, nodes []topology.NodeID) ([]*circuit.Circuit, error)
}

// Transfer wire protocol. Forward direction: a fixed header
// [2B namelen][8B size][32B sha256] + name, then the payload in chunks.
// Reverse direction: 9-byte frames [1B type][8B value] — type 0 grants
// cumulative credit (flow control), type 1 reports final status
// (value 0 = checksum verified, 1 = mismatch).
const (
	hdrFixedLen = 2 + 8 + 32
	frameLen    = 1 + 8

	frameCredit = 0
	frameStatus = 1

	statusOK  = 0
	statusBad = 1
)

func encodeHeader(name string, size int, sum [32]byte) []byte {
	hdr := make([]byte, hdrFixedLen, hdrFixedLen+len(name))
	binary.BigEndian.PutUint16(hdr, uint16(len(name)))
	binary.BigEndian.PutUint64(hdr[2:], uint64(size))
	copy(hdr[10:], sum[:])
	return append(hdr, name...)
}

func encodeFrame(typ byte, val uint64) []byte {
	f := make([]byte, frameLen)
	f[0] = typ
	binary.BigEndian.PutUint64(f[1:], val)
	return f
}

// errTransfer wraps per-attempt failures so the scheduler can retry.
type errTransfer struct {
	src, dst topology.NodeID
	attempt  int
	cause    string
}

func (e *errTransfer) Error() string {
	return fmt.Sprintf("datagrid: transfer %d->%d attempt %d: %s", e.src, e.dst, e.attempt, e.cause)
}

// transferOnce moves data from src to dst over the paradigm the path
// classification dictates and returns the bytes as received (and
// verified) on the dst side. attempt is 1-based and feeds the fault
// hook.
func (dg *DataGrid) transferOnce(p *vtime.Proc, src, dst topology.NodeID,
	name string, data []byte, attempt int) ([]byte, error) {
	cls, err := selector.Classify(dg.topo, src, dst)
	if err != nil {
		return nil, err
	}
	switch cls {
	case selector.PathLocal:
		dg.Stats.LocalTransfers++
		p.Consume(model.MemcpyPerByte.Cost(len(data)))
		return append([]byte(nil), data...), nil
	case selector.PathSAN:
		dg.Stats.CircuitTransfers++
		return dg.circuitTransfer(p, src, dst, name, data, attempt)
	default:
		dg.Stats.VLinkTransfers++
		return dg.vlinkTransfer(p, src, dst, name, data, attempt)
	}
}

// ---------------------------------------------------------------------
// Distributed paradigm: VLink (sysio / striped pstreams per selector).

func (dg *DataGrid) vlinkTransfer(p *vtime.Proc, src, dst topology.NodeID,
	name string, data []byte, attempt int) ([]byte, error) {
	prefs := dg.prefs
	if dg.cfg.Streams > 0 {
		prefs.Streams = dg.cfg.Streams
	}
	dec, err := selector.Choose(dg.topo, prefs, src, dst)
	if err != nil {
		return nil, err
	}
	va, vb, err := dg.fab.DialVLinkWith(p, src, dst, dec)
	if err != nil {
		return nil, err
	}

	result := vtime.NewQueue[[]byte]("dg:result")
	status := vtime.NewQueue[byte]("dg:status")
	sum := sha256.Sum256(data)

	// Receiver side (dst).
	dg.k.GoDaemon(fmt.Sprintf("dg-recv:%s", name), func(q *vtime.Proc) {
		dg.recvVLink(q, vb, attempt, result)
	})

	// Ack reader (src side): turns reverse frames into credit and the
	// final status. failed flips when the reverse channel dies early.
	acked := 0
	failed := false
	credit := vtime.NewCond("dg:credit")
	dg.k.GoDaemon(fmt.Sprintf("dg-ack:%s", name), func(q *vtime.Proc) {
		fb := make([]byte, frameLen)
		for {
			if _, err := va.ReadFull(q, fb); err != nil {
				failed = true
				credit.Broadcast()
				return
			}
			val := binary.BigEndian.Uint64(fb[1:])
			switch fb[0] {
			case frameCredit:
				acked = int(val)
				credit.Broadcast()
			case frameStatus:
				status.Push(byte(val))
				return
			}
		}
	})

	// Sender (runs in the worker proc).
	if _, err := va.Write(p, encodeHeader(name, len(data), sum)); err != nil {
		va.Close()
		return nil, &errTransfer{src, dst, attempt, "header: " + err.Error()}
	}
	chunk := dg.cfg.ChunkBytes
	window := dg.cfg.WindowBytes
	for off := 0; off < len(data) && !failed; {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		for off-acked > window-chunk && !failed {
			credit.Wait(p)
		}
		if failed {
			break
		}
		if _, err := va.Write(p, data[off:end]); err != nil {
			failed = true
			break
		}
		off = end
	}
	// A dead reverse channel can never deliver a status: drain briefly
	// instead of burning the full timeout on a known-failed attempt.
	tmo := dg.cfg.RetryTimeout
	if failed {
		tmo = 100 * time.Millisecond
	}
	st, ok := status.PopTimeout(p, tmo)
	va.Close() // receiver unblocks on EOF if it is still draining
	if !ok {
		return nil, &errTransfer{src, dst, attempt, "status timeout"}
	}
	if st != statusOK {
		return nil, &errTransfer{src, dst, attempt, "checksum rejected by receiver"}
	}
	out, ok := result.TryPop()
	if !ok {
		return nil, &errTransfer{src, dst, attempt, "receiver reported ok without data"}
	}
	return out, nil
}

// recvVLink is the dst side of a VLink transfer: reassemble, grant
// credit, verify the checksum, report status, drain to EOF.
func (dg *DataGrid) recvVLink(q *vtime.Proc, vb *vlink.VLink, attempt int, result *vtime.Queue[[]byte]) {
	defer vb.Close()
	fixed := make([]byte, hdrFixedLen)
	if _, err := vb.ReadFull(q, fixed); err != nil {
		return
	}
	nameLen := int(binary.BigEndian.Uint16(fixed))
	size := int(binary.BigEndian.Uint64(fixed[2:]))
	var want [32]byte
	copy(want[:], fixed[10:])
	nameBuf := make([]byte, nameLen)
	if _, err := vb.ReadFull(q, nameBuf); err != nil {
		return
	}
	buf := make([]byte, size)
	received := 0
	for received < size {
		n, err := vb.Read(q, buf[received:])
		received += n
		if err != nil {
			return // sender gave up; no status to send
		}
		if _, err := vb.Write(q, encodeFrame(frameCredit, uint64(received))); err != nil {
			return
		}
	}
	q.Consume(model.MemcpyPerByte.Cost(size)) // store write
	ok := sha256.Sum256(buf) == want
	if ok && dg.cfg.InjectFault != nil && dg.cfg.InjectFault(string(nameBuf), attempt) {
		ok = false
	}
	st := byte(statusBad)
	if ok {
		result.Push(buf)
		st = statusOK
	}
	if _, err := vb.Write(q, encodeFrame(frameStatus, uint64(st))); err != nil {
		return
	}
	// Hold the link open until the sender has read the status and
	// closed; closing first could truncate the reverse stream.
	small := make([]byte, 16)
	for {
		if _, err := vb.Read(q, small); err != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------
// Parallel paradigm: a 2-rank Circuit (MadIO/Madeleine links inside
// the SAN) per node pair, moving chunks with the incremental-packing
// API. The pair's circuit is built once and reused — MadIO logical
// channels are finite — so concurrent same-pair transfers serialize
// on its semaphore.

// pairCircuit is the cached parallel path between two nodes.
type pairCircuit struct {
	nodes [2]topology.NodeID // group order: nodes[i] is rank i
	circs []*circuit.Circuit
	sem   *vtime.Semaphore
}

// pairFor returns (building on first use) the circuit pair for a<->b.
func (dg *DataGrid) pairFor(p *vtime.Proc, a, b topology.NodeID) (*pairCircuit, error) {
	key := [2]topology.NodeID{a, b}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	pc, ok := dg.circuits[key]
	if !ok {
		circs, err := dg.fab.NewCircuits(p, fmt.Sprintf("dg:%d-%d", key[0], key[1]), key[:])
		if err != nil {
			return nil, err
		}
		pc = &pairCircuit{nodes: key, circs: circs,
			sem: vtime.NewSemaphore(fmt.Sprintf("dg:pair:%d-%d", key[0], key[1]), 1)}
		dg.circuits[key] = pc
	}
	return pc, nil
}

func (pc *pairCircuit) rank(n topology.NodeID) int {
	if pc.nodes[0] == n {
		return 0
	}
	return 1
}

func (dg *DataGrid) circuitTransfer(p *vtime.Proc, src, dst topology.NodeID,
	name string, data []byte, attempt int) ([]byte, error) {
	pc, err := dg.pairFor(p, src, dst)
	if err != nil {
		return nil, err
	}
	pc.sem.Acquire(p)
	defer pc.sem.Release()
	sRank, rRank := pc.rank(src), pc.rank(dst)
	cs, cr := pc.circs[sRank], pc.circs[rRank]
	result := vtime.NewQueue[[]byte]("dg:cresult")
	status := vtime.NewQueue[byte]("dg:cstatus")
	sum := sha256.Sum256(data)

	// Receiver side (dst).
	dg.k.GoDaemon(fmt.Sprintf("dg-crecv:%s", name), func(q *vtime.Proc) {
		dg.recvCircuit(q, cr, sRank, attempt, result)
	})

	// Ack reader: reverse messages are {type, value} segment pairs.
	acked := 0
	credit := vtime.NewCond("dg:ccredit")
	dg.k.GoDaemon(fmt.Sprintf("dg-cack:%s", name), func(q *vtime.Proc) {
		for {
			in := cs.BeginUnpacking(q)
			typ := in.Unpack(1, madapi.ReceiveExpress)[0]
			val := binary.BigEndian.Uint64(in.Unpack(8, madapi.ReceiveCheaper))
			in.EndUnpacking()
			switch typ {
			case frameCredit:
				acked = int(val)
				credit.Broadcast()
			case frameStatus:
				status.Push(byte(val))
				return
			}
		}
	})

	// Sender: header message, then one message per chunk.
	out := cs.BeginPacking(rRank)
	out.Pack(encodeHeader(name, len(data), sum)[:hdrFixedLen], madapi.SendSafer)
	out.Pack([]byte(name), madapi.SendSafer)
	out.EndPacking()
	chunk := dg.cfg.ChunkBytes
	window := dg.cfg.WindowBytes
	lenSeg := make([]byte, 4)
	for off := 0; off < len(data); {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		for off-acked > window-chunk {
			credit.Wait(p)
		}
		binary.BigEndian.PutUint32(lenSeg, uint32(end-off))
		out := cs.BeginPacking(rRank)
		out.Pack(lenSeg, madapi.SendSafer)
		out.Pack(data[off:end], madapi.SendSafer)
		out.EndPacking()
		off = end
	}
	st, ok := status.PopTimeout(p, dg.cfg.RetryTimeout)
	if !ok {
		return nil, &errTransfer{src, dst, attempt, "circuit status timeout"}
	}
	if st != statusOK {
		return nil, &errTransfer{src, dst, attempt, "checksum rejected by receiver"}
	}
	res, ok := result.TryPop()
	if !ok {
		return nil, &errTransfer{src, dst, attempt, "receiver reported ok without data"}
	}
	return res, nil
}

// recvCircuit is the dst side of a Circuit transfer; acks go back to
// the sender's rank.
func (dg *DataGrid) recvCircuit(q *vtime.Proc, c *circuit.Circuit, sRank, attempt int, result *vtime.Queue[[]byte]) {
	in := c.BeginUnpacking(q)
	fixed := in.Unpack(hdrFixedLen, madapi.ReceiveExpress)
	nameLen := int(binary.BigEndian.Uint16(fixed))
	size := int(binary.BigEndian.Uint64(fixed[2:]))
	var want [32]byte
	copy(want[:], fixed[10:])
	name := string(in.Unpack(nameLen, madapi.ReceiveCheaper))
	in.EndUnpacking()

	buf := make([]byte, size)
	received := 0
	for received < size {
		in := c.BeginUnpacking(q)
		n := int(binary.BigEndian.Uint32(in.Unpack(4, madapi.ReceiveExpress)))
		copy(buf[received:], in.Unpack(n, madapi.ReceiveCheaper))
		in.EndUnpacking()
		received += n
		ack := c.BeginPacking(sRank)
		ack.Pack([]byte{frameCredit}, madapi.SendSafer)
		ack.Pack(encodeFrame(frameCredit, uint64(received))[1:], madapi.SendSafer)
		ack.EndPacking()
	}
	q.Consume(model.MemcpyPerByte.Cost(size)) // store write
	ok := sha256.Sum256(buf) == want
	if ok && dg.cfg.InjectFault != nil && dg.cfg.InjectFault(name, attempt) {
		ok = false
	}
	st := byte(statusBad)
	if ok {
		result.Push(buf)
		st = statusOK
	}
	fin := c.BeginPacking(sRank)
	fin.Pack([]byte{frameStatus}, madapi.SendSafer)
	fin.Pack(encodeFrame(frameStatus, uint64(st))[1:], madapi.SendSafer)
	fin.EndPacking()
}
