package datagrid

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"padico/internal/model"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Transfer wire protocol, identical whatever substrate the session
// layer provisioned. Forward direction: a header message — a fixed
// segment [2B namelen][8B size][32B sha256] plus a name segment — then
// the payload in chunks through the channel's stream view. Reverse
// direction: 9-byte frames sent as {type, value} segment pairs — type 0
// grants cumulative credit (flow control), type 1 reports final status
// (value 0 = checksum verified, 1 = mismatch).
//
// On a Circuit these shapes travel as packed segment vectors with
// incremental (Madeleine) packing; on a VLink they are gather-written
// raw, and the receiver delimits by size — exactly the bytes the
// pre-session paradigm-specific engines moved, which is what keeps the
// bench's virtual-time results bit-identical across the refactor.
const (
	hdrFixedLen = 2 + 8 + 32
	frameLen    = 1 + 8

	frameCredit = 0
	frameStatus = 1

	statusOK  = 0
	statusBad = 1
)

func encodeHeader(name string, size int, sum [32]byte) []byte {
	hdr := make([]byte, hdrFixedLen)
	binary.BigEndian.PutUint16(hdr, uint16(len(name)))
	binary.BigEndian.PutUint64(hdr[2:], uint64(size))
	copy(hdr[10:], sum[:])
	return hdr
}

func encodeFrame(typ byte, val uint64) []byte {
	f := make([]byte, frameLen)
	f[0] = typ
	binary.BigEndian.PutUint64(f[1:], val)
	return f
}

// errTransfer wraps per-attempt failures so the scheduler can retry.
type errTransfer struct {
	src, dst topology.NodeID
	attempt  int
	cause    string
}

func (e *errTransfer) Error() string {
	return fmt.Sprintf("datagrid: transfer %d->%d attempt %d: %s", e.src, e.dst, e.attempt, e.cause)
}

// transferOnce moves data from src to dst over one session channel and
// returns the bytes as received (and verified) on the dst side. The
// session manager picks the substrate — local pipe, SAN circuit,
// (striped) VLink — so this engine is a pure chunk pump: header, chunks
// under a credit window, status. attempt is 1-based and feeds the
// fault hook.
func (dg *DataGrid) transferOnce(p *vtime.Proc, src, dst topology.NodeID,
	name string, data []byte, attempt int) ([]byte, error) {
	var opts []session.Option
	if dg.cfg.Streams > 0 {
		opts = append(opts, session.WithStreams(dg.cfg.Streams))
	}
	if dg.cfg.Adaptive {
		opts = append(opts, session.WithAdaptive())
	}
	ch, err := dg.mgr.Open(p, src, dst, opts...)
	if err != nil {
		return nil, err
	}
	sp := dg.tel.Begin("datagrid", "transfer", int(src))
	if sp != nil {
		sp.Str("obj", name).I64("dst", int64(dst)).
			I64("bytes", int64(len(data))).I64("attempt", int64(attempt))
	}
	defer sp.End()
	// Chunks, credits and the TCP segments they generate attach under
	// the transfer, which itself hangs off the request root.
	defer sp.Exit(sp.Enter())
	dg.stats.countTransfer(ch.Info().Class)
	if ch.Info().Class >= selector.PathWAN {
		// Count what this attempt moved across the wide area, both
		// directions (payload down, credits/status back), success or
		// not — the read happens after both ends went quiet.
		defer func() {
			atomic.AddInt64(&dg.stats.WANBytes, ch.Info().BytesOut+ch.Remote().Info().BytesOut)
		}()
	}

	result := vtime.NewQueue[[]byte]("dg:result")
	status := vtime.NewQueue[byte]("dg:status")
	sum := sha256.Sum256(data)

	// Receiver side (dst) drives the remote end.
	dg.k.GoDaemon(fmt.Sprintf("dg-recv:%s", name), func(q *vtime.Proc) {
		dg.recvTransfer(q, ch.Remote(), attempt, result)
	})

	// Ack reader (src side): turns reverse frames into credit and the
	// final status. failed flips when the reverse channel dies early.
	// RecvVec keeps the 9-byte frames on pooled buffers — the reverse
	// channel delivers one frame per chunk, so this loop is per-chunk
	// hot path.
	acked := 0
	failed := false
	credit := vtime.NewCond("dg:credit")
	dg.k.GoDaemon(fmt.Sprintf("dg-ack:%s", name), func(q *vtime.Proc) {
		for {
			v, err := ch.RecvVec(q, 1, frameLen-1)
			if err != nil {
				failed = true
				credit.Broadcast()
				return
			}
			typ := v.Segs[0].B[0]
			val := binary.BigEndian.Uint64(v.Segs[1].B)
			v.Release()
			if typ == frameCredit {
				acked = int(val)
				credit.Broadcast()
			} else {
				status.Push(byte(val))
				return
			}
		}
	})

	// Sender (runs in the worker proc). The chunk pump below writes
	// views of the caller's data verbatim: on a vectored VLink stack
	// the bytes are packed exactly once (into the TCP send queue), on a
	// Circuit they ride incremental packing — no datagrid-level copy in
	// either paradigm.
	// When tracing, the header carries the transfer's trace context so
	// the destination adopts the request's identity from the wire — the
	// cross-node link is in the bytes, not just in spawn ancestry.
	hdrSegs := [][]byte{encodeHeader(name, len(data), sum), []byte(name)}
	if dg.tel.Tracing() {
		hdrSegs = append(hdrSegs, telemetry.EncodeCtx(dg.tel.Cur()))
	}
	if err := ch.Send(p, hdrSegs...); err != nil {
		ch.Close()
		return nil, &errTransfer{src, dst, attempt, "header: " + err.Error()}
	}
	chunk := dg.cfg.ChunkBytes
	window := dg.cfg.WindowBytes
	for off := 0; off < len(data) && !failed; {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		for off-acked > window-chunk && !failed {
			credit.Wait(p)
		}
		if failed {
			break
		}
		csp := dg.tel.Begin("datagrid", "chunk", int(src)).Parent(sp).I64("off", int64(off))
		_, werr := ch.Write(p, data[off:end])
		csp.End()
		if werr != nil {
			failed = true
			break
		}
		off = end
	}
	// A dead reverse channel can never deliver a status: drain briefly
	// instead of burning the full timeout on a known-failed attempt.
	tmo := dg.cfg.RetryTimeout
	if failed {
		tmo = 100 * time.Millisecond
	}
	st, ok := status.PopTimeout(p, tmo)
	ch.Close() // receiver unblocks on EOF if it is still draining
	if !ok {
		return nil, &errTransfer{src, dst, attempt, "status timeout"}
	}
	if st != statusOK {
		return nil, &errTransfer{src, dst, attempt, "checksum rejected by receiver"}
	}
	out, ok := result.TryPop()
	if !ok {
		return nil, &errTransfer{src, dst, attempt, "receiver reported ok without data"}
	}
	return out, nil
}

// recvTransfer is the dst side of a transfer: reassemble, grant credit,
// verify the checksum, report status, drain to EOF.
func (dg *DataGrid) recvTransfer(q *vtime.Proc, ch session.Channel, attempt int, result *vtime.Queue[[]byte]) {
	defer ch.Close()
	hdr, err := ch.Recv(q, hdrFixedLen)
	if err != nil {
		return
	}
	fixed := hdr[0]
	nameLen := int(binary.BigEndian.Uint16(fixed))
	size := int(binary.BigEndian.Uint64(fixed[2:]))
	var want [32]byte
	copy(want[:], fixed[10:])
	nameSeg, err := ch.Recv(q, nameLen)
	if err != nil {
		return
	}
	name := string(nameSeg[0])
	if dg.tel.Tracing() {
		ctxSeg, err := ch.Recv(q, telemetry.CtxWireLen)
		if err != nil {
			return
		}
		// Adopt the wire-carried request context: credit frames and the
		// status this side sends attribute to the originating request.
		dg.tel.SetCur(telemetry.DecodeCtx(ctxSeg[0]))
	}
	buf := make([]byte, size)
	received := 0
	for received < size {
		n, err := ch.Read(q, buf[received:])
		received += n
		if err != nil {
			return // sender gave up; no status to send
		}
		f := encodeFrame(frameCredit, uint64(received))
		if err := ch.Send(q, f[:1], f[1:]); err != nil {
			return
		}
	}
	q.Consume(model.MemcpyPerByte.Cost(size)) // store write
	ok := sha256.Sum256(buf) == want
	if ok && dg.cfg.InjectFault != nil && dg.cfg.InjectFault(name, attempt) {
		ok = false
	}
	st := byte(statusBad)
	if ok {
		result.Push(buf)
		st = statusOK
	}
	f := encodeFrame(frameStatus, uint64(st))
	if err := ch.Send(q, f[:1], f[1:]); err != nil {
		return
	}
	// Hold the channel open until the sender has read the status and
	// closed; closing first could truncate the reverse stream.
	small := make([]byte, 16)
	for {
		if _, err := ch.Read(q, small); err != nil {
			return
		}
	}
}
