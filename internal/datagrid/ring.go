// Package datagrid implements a replicated object store and
// bulk-transfer engine on top of the dual-abstraction stack — the
// canonical heavy-traffic grid workload (GridFTP-style striped
// transfers plus replica management) that exercises both of the
// paper's worlds at once. Placement follows the consistent-hash ring
// design of production object stores (Swift/auklet): virtual nodes on
// a 64-bit ring, with sites acting as zones so replicas spread across
// clusters. Transfers pick their paradigm per path through the
// selector: Madeleine/Circuit packing inside a SAN cluster, striped
// parallel VLink streams (pstreams) across the WAN.
package datagrid

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"padico/internal/topology"
)

// Ring places replicas of named objects on grid nodes by consistent
// hashing. Each member node projects VNodes points onto a 64-bit ring;
// an object lands on the first distinct members clockwise from its
// hash, preferring members in distinct zones (sites) first, so a
// replica factor ≥ 2 survives the loss of a whole cluster. Adding or
// removing one member moves only ~1/n of the placements.
type Ring struct {
	vnodes int
	points []point
	zones  map[topology.NodeID]string
}

type point struct {
	h    uint64
	node topology.NodeID
}

// DefaultVNodes is the per-member virtual-node count: enough that the
// moved fraction on membership change concentrates near 1/n.
const DefaultVNodes = 64

// NewRing returns an empty ring with the given virtual-node count per
// member (0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, zones: make(map[topology.NodeID]string)}
}

// RingFromTopology builds a ring holding every node of the grid, with
// each node's site as its zone.
func RingFromTopology(g *topology.Grid, vnodes int) *Ring {
	r := NewRing(vnodes)
	for _, n := range g.Nodes() {
		r.Add(n.ID, n.Site)
	}
	return r
}

// ringHash maps a key onto the ring. A cryptographic hash (à la
// Swift's md5 rings) is required: sequential names and vnode labels
// must land uniformly, which weak string hashes do not deliver.
func ringHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// hashName hashes an object name onto the ring.
func hashName(name string) uint64 { return ringHash(name) }

// hashVNode hashes one virtual node of a member.
func hashVNode(n topology.NodeID, i int) uint64 {
	return ringHash(fmt.Sprintf("member-%d/vnode-%d", n, i))
}

// Add inserts a member with its zone; adding an existing member panics
// (membership changes must be deliberate, they move data).
func (r *Ring) Add(n topology.NodeID, zone string) {
	if _, dup := r.zones[n]; dup {
		panic(fmt.Sprintf("datagrid: ring member %d added twice", n))
	}
	r.zones[n] = zone
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{h: hashVNode(n, i), node: n})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a member and its points.
func (r *Ring) Remove(n topology.NodeID) {
	if _, ok := r.zones[n]; !ok {
		return
	}
	delete(r.zones, n)
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.node != n {
			kept = append(kept, pt)
		}
	}
	r.points = kept
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.zones) }

// Zone returns a member's zone.
func (r *Ring) Zone(n topology.NodeID) (string, bool) {
	z, ok := r.zones[n]
	return z, ok
}

// Place returns the replica nodes for an object name, in preference
// order (the first is the primary). Walking clockwise from the name's
// hash, it first accepts members in zones not yet represented, then —
// once every zone holds a replica — any member not yet chosen. The
// result is deterministic and has min(replicas, Size()) entries.
func (r *Ring) Place(name string, replicas int) []topology.NodeID {
	if replicas <= 0 || len(r.points) == 0 {
		return nil
	}
	if replicas > len(r.zones) {
		replicas = len(r.zones)
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].h >= hashName(name)
	})
	nzones := make(map[string]bool, len(r.zones))
	for _, z := range r.zones {
		nzones[z] = true
	}
	chosen := make([]topology.NodeID, 0, replicas)
	usedNode := make(map[topology.NodeID]bool, replicas)
	usedZone := make(map[string]bool, replicas)
	// Pass 1: distinct zones. Pass 2: distinct nodes.
	for pass := 0; pass < 2 && len(chosen) < replicas; pass++ {
		for i := 0; i < len(r.points) && len(chosen) < replicas; i++ {
			pt := r.points[(start+i)%len(r.points)]
			if usedNode[pt.node] {
				continue
			}
			z := r.zones[pt.node]
			if pass == 0 && (usedZone[z] && len(usedZone) < len(nzones)) {
				continue
			}
			usedNode[pt.node] = true
			usedZone[z] = true
			chosen = append(chosen, pt.node)
		}
	}
	return chosen
}
