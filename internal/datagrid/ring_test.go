package datagrid

import (
	"fmt"
	"testing"

	"padico/internal/topology"
)

// twoZoneRing builds a ring with n members split between zones A and B.
func twoZoneRing(n int) *Ring {
	r := NewRing(0)
	for i := 0; i < n; i++ {
		zone := "A"
		if i >= (n+1)/2 {
			zone = "B"
		}
		r.Add(topology.NodeID(i), zone)
	}
	return r
}

func TestPlaceDeterministicAndDistinct(t *testing.T) {
	r := twoZoneRing(6)
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("obj-%d", i)
		a := r.Place(name, 3)
		b := r.Place(name, 3)
		if len(a) != 3 {
			t.Fatalf("%s: %d replicas", name, len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: placement not deterministic: %v vs %v", name, a, b)
			}
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range a {
			if seen[n] {
				t.Fatalf("%s: duplicate replica node in %v", name, a)
			}
			seen[n] = true
		}
	}
}

func TestPlaceSpansZones(t *testing.T) {
	r := twoZoneRing(8)
	for i := 0; i < 200; i++ {
		repl := r.Place(fmt.Sprintf("obj-%d", i), 2)
		za, _ := r.Zone(repl[0])
		zb, _ := r.Zone(repl[1])
		if za == zb {
			t.Fatalf("obj-%d: both replicas in zone %s (%v)", i, za, repl)
		}
	}
}

func TestPlaceCapsAtMembership(t *testing.T) {
	r := twoZoneRing(3)
	if got := r.Place("x", 5); len(got) != 3 {
		t.Fatalf("want 3 replicas on a 3-node ring, got %v", got)
	}
	if got := r.Place("x", 0); got != nil {
		t.Fatalf("0 replicas: %v", got)
	}
	if got := NewRing(0).Place("x", 2); got != nil {
		t.Fatalf("empty ring placed: %v", got)
	}
}

// TestRebalanceMovesOneNth is the acceptance property: adding one
// member to an n-node ring relocates only ~1/(n+1) of the primary
// placements, not a wholesale reshuffle.
func TestRebalanceMovesOneNth(t *testing.T) {
	const n, objects = 8, 4000
	r := twoZoneRing(n)
	before := make(map[string]topology.NodeID, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("obj-%d", i)
		before[name] = r.Place(name, 3)[0]
	}
	r.Add(topology.NodeID(n), "A")
	moved := 0
	movedElsewhere := 0
	for name, prev := range before {
		now := r.Place(name, 3)[0]
		if now != prev {
			moved++
			if now != topology.NodeID(n) {
				movedElsewhere++
			}
		}
	}
	frac := float64(moved) / objects
	ideal := 1.0 / (n + 1)
	if frac < ideal/3 || frac > ideal*2 {
		t.Fatalf("moved fraction %.3f, want ~%.3f", frac, ideal)
	}
	// Movement should flow to the new member, not shuffle among the old.
	if float64(movedElsewhere) > 0.1*float64(moved) {
		t.Fatalf("%d of %d moved placements went to an old member", movedElsewhere, moved)
	}
}

func TestRemoveMember(t *testing.T) {
	r := twoZoneRing(5)
	victim := topology.NodeID(2)
	r.Remove(victim)
	if r.Size() != 4 {
		t.Fatalf("size = %d", r.Size())
	}
	for i := 0; i < 200; i++ {
		for _, n := range r.Place(fmt.Sprintf("obj-%d", i), 3) {
			if n == victim {
				t.Fatalf("removed member still placed for obj-%d", i)
			}
		}
	}
	r.Remove(victim) // idempotent
}

func TestRingFromTopology(t *testing.T) {
	g := topology.New()
	g.AddNode("a", "rennes")
	g.AddNode("b", "rennes")
	g.AddNode("c", "grenoble")
	r := RingFromTopology(g, 16)
	if r.Size() != 3 {
		t.Fatalf("size = %d", r.Size())
	}
	if z, _ := r.Zone(2); z != "grenoble" {
		t.Fatalf("zone of node 2 = %q", z)
	}
}
