package datagrid

import (
	"fmt"
	"testing"

	"padico/internal/topology"
)

// twoZoneRing builds a ring with n members split between zones A and B.
func twoZoneRing(n int) *Ring {
	r := NewRing(0)
	for i := 0; i < n; i++ {
		zone := "A"
		if i >= (n+1)/2 {
			zone = "B"
		}
		r.Add(topology.NodeID(i), zone)
	}
	return r
}

func TestPlaceDeterministicAndDistinct(t *testing.T) {
	r := twoZoneRing(6)
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("obj-%d", i)
		a := r.Place(name, 3)
		b := r.Place(name, 3)
		if len(a) != 3 {
			t.Fatalf("%s: %d replicas", name, len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: placement not deterministic: %v vs %v", name, a, b)
			}
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range a {
			if seen[n] {
				t.Fatalf("%s: duplicate replica node in %v", name, a)
			}
			seen[n] = true
		}
	}
}

func TestPlaceSpansZones(t *testing.T) {
	r := twoZoneRing(8)
	for i := 0; i < 200; i++ {
		repl := r.Place(fmt.Sprintf("obj-%d", i), 2)
		za, _ := r.Zone(repl[0])
		zb, _ := r.Zone(repl[1])
		if za == zb {
			t.Fatalf("obj-%d: both replicas in zone %s (%v)", i, za, repl)
		}
	}
}

func TestPlaceCapsAtMembership(t *testing.T) {
	r := twoZoneRing(3)
	if got := r.Place("x", 5); len(got) != 3 {
		t.Fatalf("want 3 replicas on a 3-node ring, got %v", got)
	}
	if got := r.Place("x", 0); got != nil {
		t.Fatalf("0 replicas: %v", got)
	}
	if got := NewRing(0).Place("x", 2); got != nil {
		t.Fatalf("empty ring placed: %v", got)
	}
}

// TestRebalanceMovesOneNth is the acceptance property: adding one
// member to an n-node ring relocates only ~1/(n+1) of the primary
// placements, not a wholesale reshuffle.
func TestRebalanceMovesOneNth(t *testing.T) {
	const n, objects = 8, 4000
	r := twoZoneRing(n)
	before := make(map[string]topology.NodeID, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("obj-%d", i)
		before[name] = r.Place(name, 3)[0]
	}
	r.Add(topology.NodeID(n), "A")
	moved := 0
	movedElsewhere := 0
	for name, prev := range before {
		now := r.Place(name, 3)[0]
		if now != prev {
			moved++
			if now != topology.NodeID(n) {
				movedElsewhere++
			}
		}
	}
	frac := float64(moved) / objects
	ideal := 1.0 / (n + 1)
	if frac < ideal/3 || frac > ideal*2 {
		t.Fatalf("moved fraction %.3f, want ~%.3f", frac, ideal)
	}
	// Movement should flow to the new member, not shuffle among the old.
	if float64(movedElsewhere) > 0.1*float64(moved) {
		t.Fatalf("%d of %d moved placements went to an old member", movedElsewhere, moved)
	}
}

func TestRemoveMember(t *testing.T) {
	r := twoZoneRing(5)
	victim := topology.NodeID(2)
	r.Remove(victim)
	if r.Size() != 4 {
		t.Fatalf("size = %d", r.Size())
	}
	for i := 0; i < 200; i++ {
		for _, n := range r.Place(fmt.Sprintf("obj-%d", i), 3) {
			if n == victim {
				t.Fatalf("removed member still placed for obj-%d", i)
			}
		}
	}
	r.Remove(victim) // idempotent
}

// placementEqual reports whether two placements agree exactly,
// including preference order.
func placementEqual(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRemoveMinimalMovement is the membership-change property the
// failure detector relies on: removing one member must leave every
// placement that did not include it bit-identical, must never move a
// surviving primary, and may only shuffle the tail replicas of
// placements the victim was actually part of — so the repair loop
// re-replicates a bounded slice of the catalogue, not the world.
func TestRemoveMinimalMovement(t *testing.T) {
	const objects = 500
	r := twoZoneRing(6)
	victim := topology.NodeID(2)
	before := make(map[string][]topology.NodeID, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("obj-%d", i)
		before[name] = r.Place(name, 3)
	}
	r.Remove(victim)
	held, changedSlots := 0, 0
	for name, prev := range before {
		now := r.Place(name, 3)
		had := false
		for _, n := range prev {
			if n == victim {
				had = true
			}
		}
		if !had {
			if !placementEqual(prev, now) {
				t.Fatalf("%s: placement without the victim moved: %v -> %v", name, prev, now)
			}
			continue
		}
		held++
		if len(now) != len(prev) {
			t.Fatalf("%s: replica count changed: %v -> %v", name, prev, now)
		}
		for i, n := range now {
			if n == victim {
				t.Fatalf("%s: removed member still placed: %v", name, now)
			}
			if n != prev[i] {
				changedSlots++
			}
		}
		// Removing a non-primary member never moves the primary: the walk
		// accepts the first live member it meets, and deleting points that
		// came later cannot change what comes first.
		if prev[0] != victim && now[0] != prev[0] {
			t.Fatalf("%s: surviving primary moved: %v -> %v", name, prev, now)
		}
	}
	if held == 0 {
		t.Fatal("no sampled object ever placed on the victim")
	}
	// The zone-balancing walk may reshuffle the tail of an affected
	// placement, but movement must stay within the victim's share: no
	// more than the affected placements' non-primary slots.
	if max := 2 * held; changedSlots > max {
		t.Fatalf("removal churned %d replica slots across %d affected objects (cap %d)",
			changedSlots, held, max)
	}
}

// TestAddRemoveRoundTrip checks that membership changes are exactly
// reversible: removing a member and re-adding it with the same zone —
// or adding a new member and removing it again — restores every
// placement bit for bit. This is what lets a healed node rejoin the
// ring and reclaim precisely its old placements.
func TestAddRemoveRoundTrip(t *testing.T) {
	const objects = 300
	r := twoZoneRing(6)
	before := make(map[string][]topology.NodeID, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("obj-%d", i)
		before[name] = r.Place(name, 3)
	}
	check := func(stage string) {
		t.Helper()
		for name, prev := range before {
			if now := r.Place(name, 3); !placementEqual(prev, now) {
				t.Fatalf("%s: %s placement drifted: %v -> %v", stage, name, prev, now)
			}
		}
	}
	r.Remove(topology.NodeID(2))
	r.Add(topology.NodeID(2), "A") // same zone it had in twoZoneRing(6)
	check("remove+re-add")
	r.Add(topology.NodeID(6), "B")
	r.Remove(topology.NodeID(6))
	check("add+remove")
}

func TestRingFromTopology(t *testing.T) {
	g := topology.New()
	g.AddNode("a", "rennes")
	g.AddNode("b", "rennes")
	g.AddNode("c", "grenoble")
	r := RingFromTopology(g, 16)
	if r.Size() != 3 {
		t.Fatalf("size = %d", r.Size())
	}
	if z, _ := r.Zone(2); z != "grenoble" {
		t.Fatalf("zone of node 2 = %q", z)
	}
}
