package datagrid

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"padico/internal/group"
	"padico/internal/model"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/store"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrNoObject   = errors.New("datagrid: no such object")
	ErrNoReplica  = errors.New("datagrid: no reachable replica")
	ErrJobFailed  = errors.New("datagrid: transfer failed after retries")
	ErrEmptyRing  = errors.New("datagrid: ring has no members")
	ErrBadPayload = errors.New("datagrid: replica checksum mismatch")
)

// Config tunes a DataGrid instance. Zero values select defaults.
type Config struct {
	// Replicas is the replica factor per object (default 2).
	Replicas int
	// VNodes is the ring's virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// Streams overrides the selector's WAN stripe count for bulk
	// transfers (0 keeps the testbed preference; 1 disables striping).
	Streams int
	// ChunkBytes is the transfer unit (default 256 KiB).
	ChunkBytes int
	// WindowBytes bounds unacknowledged in-flight bytes per transfer —
	// the per-transfer flow-control window (default 1 MiB).
	WindowBytes int
	// Workers is the replication scheduler's concurrency (default 4).
	Workers int
	// MaxRetries bounds attempts per transfer job (default 3).
	MaxRetries int
	// Hierarchical routes Put replication fan-out through
	// group.Multicast over a site-aware spanning tree — one WAN
	// crossing per remote site instead of one per remote replica. The
	// sha256 end-to-end verification is unchanged; failed members are
	// retried with a smaller group. Fan-outs the tree cannot improve
	// (at most one replica per remote site) keep the point-to-point
	// path: a tree with as many WAN edges as a flat fan-out saves no
	// bytes and would only serialize on shared substrate.
	Hierarchical bool
	// RetryTimeout bounds the wait for a transfer status before the
	// attempt is declared lost (default 120 s of virtual time).
	RetryTimeout time.Duration
	// Adaptive opens every transfer channel with session.WithAdaptive:
	// a transfer whose path degrades (or dies) mid-flight re-selects
	// and resumes instead of burning a retry.
	Adaptive bool
	// Weather, when set, refines GET source selection: within a
	// proximity class, replicas are served from the holder with the
	// best forecast bandwidth (Stats.SourceSwitches counts GETs whose
	// source differed from the static ranking). grid.NewDataGrid wires
	// the testbed's weather service automatically.
	Weather PairOracle
	// InjectFault, when set, is consulted on the receiver side after a
	// successful reception (chaos hook for retry testing): returning
	// true discards the copy and reports a failure to the sender.
	InjectFault func(name string, attempt int) bool
	// Engine selects the per-node storage backend (default
	// store.MemoryFactory, the in-memory map — byte-identical to the
	// pre-store datagrid). grid.NewPackDataGrid wires the durable pack
	// engine.
	Engine store.Factory
	// AuditInterval, when positive, runs a background auditor per node
	// engine: every interval of virtual time the node's needles are
	// scrubbed against their checksums and corrupt ones quarantined
	// (which kicks the repair loop). Zero starts no daemons; AuditNow
	// still scrubs synchronously.
	AuditInterval time.Duration
	// AuditRate caps scrub throughput in payload bytes per second of
	// virtual time (0 = the auditor's default).
	AuditRate float64
	// RepairInterval, when positive, runs the anti-entropy repair
	// daemon: every interval — or immediately after an audit
	// quarantine — the catalog is scanned for under-replicated objects
	// and repair transfers are scheduled over the normal data path.
	// Zero starts no daemon; RepairNow still repairs synchronously.
	RepairInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.WindowBytes < c.ChunkBytes {
		c.WindowBytes = 1 << 20
		if c.WindowBytes < c.ChunkBytes {
			c.WindowBytes = 2 * c.ChunkBytes
		}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 120 * time.Second
	}
	return c
}

// PairOracle is the slice of the weather service the datagrid
// consults: the best forecast bandwidth between two nodes, whatever
// network it rides (internal/weather's Service implements it).
type PairOracle interface {
	PairBandwidth(a, b topology.NodeID) (float64, bool)
}

// ObjectMeta is one replica-catalog entry.
type ObjectMeta struct {
	Name    string
	Size    int
	Sum     [32]byte
	Version int
	// Targets is the ring placement, primary first.
	Targets []topology.NodeID
}

// Stats counts datagrid activity (virtual-time side effects are charged
// where they happen; these are for reporting). Fields are bumped with
// atomic adds and read race-free through DataGrid.Stats; with telemetry
// attached they join the unified registry under "datagrid.".
type Stats struct {
	Puts, Gets       int64
	Jobs, Retries    int64
	Failures         int64
	BytesMoved       int64
	CircuitTransfers int64
	VLinkTransfers   int64 `metric:"vlink_transfers"`
	LocalTransfers   int64
	// GroupFanouts counts replication jobs served by one hierarchical
	// multicast instead of per-target transfers.
	GroupFanouts int64
	// WANBytes counts every byte this datagrid moved across wide-area
	// links, both directions (payload plus credits/statuses), whatever
	// the fan-out strategy — the currency hierarchical fan-out saves.
	WANBytes int64
	// SourceSwitches counts GETs whose replica source was switched
	// away from the static proximity ranking by forecast bandwidth.
	SourceSwitches int64
	// Deletes counts DataGrid.Delete operations (each fans out to
	// every holder's engine).
	Deletes int64
	// Quarantines counts needles the audit path took out of service.
	Quarantines int64
	// Repairs counts completed anti-entropy repair transfers — copies
	// restored after a quarantine or injected fault.
	Repairs int64
	// NodesDown gauges ring nodes currently marked unreachable by the
	// failure detector (MarkDown/MarkUp).
	NodesDown int64
	// LostObjects counts repair passes that found an object with no
	// reachable fresh replica — one bump per pass per object, so
	// availability SLOs burn for the whole duration of the outage, not
	// just its first detection.
	LostObjects int64
}

// countTransfer attributes one transfer to the paradigm the session
// layer provisioned for it.
func (s *Stats) countTransfer(cls selector.PathClass) {
	if cls == selector.PathLocal {
		atomic.AddInt64(&s.LocalTransfers, 1)
	} else if cls == selector.PathSAN {
		atomic.AddInt64(&s.CircuitTransfers, 1)
	} else {
		atomic.AddInt64(&s.VLinkTransfers, 1)
	}
}

// DataGrid is the replicated object store of one testbed: a placement
// ring, a replica catalog, per-node object stores, and a scheduler
// running transfer jobs on the virtual-time kernel. Every transfer
// opens a channel through the session manager — the datagrid never
// touches drivers, circuits or the selector's dispatch itself.
type DataGrid struct {
	k    *vtime.Kernel
	topo *topology.Grid
	mgr  *session.Manager
	cfg  Config

	ring    *Ring
	catalog map[string]*ObjectMeta
	// downNodes is the failure detector's view (MarkDown/MarkUp): nodes
	// here are skipped as sources, entry points and repair destinations.
	// Empty in fault-free runs — every filter short-circuits.
	downNodes map[topology.NodeID]bool
	// lost dedups the object-lost flight dump per outage: set on the
	// first repair pass that finds no reachable fresh replica, cleared
	// when one reappears.
	lost map[string]bool
	// engines holds each node's storage backend, created lazily by the
	// configured Factory on the first byte stored there; auditors
	// shadow it one-to-one (scrub daemons only when AuditInterval > 0).
	engines  map[topology.NodeID]store.Engine
	auditors map[topology.NodeID]*store.Auditor
	// repairKick wakes the anti-entropy daemon early (audit quarantines
	// signal it instead of waiting out RepairInterval).
	repairKick *vtime.Cond
	sched      *scheduler
	// groups caches hierarchical fan-out groups by member set, so
	// repeated placements reuse their spanning trees and cached WAN
	// edges. groupWAN is the per-group WAN byte count already folded
	// into Stats.WANBytes — concurrent multicasts on one group
	// serialize inside it, so a local before/after delta would double
	// count the earlier operation's bytes.
	groups   map[string]*group.Group
	groupWAN map[*group.Group]int64

	stats Stats

	// Telemetry handles, nil (free no-ops) unless a hub was attached to
	// the kernel before New.
	tel       *telemetry.Hub
	hTransfer *telemetry.Histogram
	hAudit    *telemetry.Histogram
	hRepair   *telemetry.Histogram
}

// New builds a DataGrid over an existing testbed's session manager.
// The ring initially holds every node of the topology, zoned by site;
// use a custom ring via SetRing before the first Put to restrict
// membership.
func New(k *vtime.Kernel, topo *topology.Grid, mgr *session.Manager, cfg Config) *DataGrid {
	cfg = cfg.withDefaults()
	dg := &DataGrid{
		k: k, topo: topo, mgr: mgr, cfg: cfg,
		ring:       RingFromTopology(topo, cfg.VNodes),
		catalog:    make(map[string]*ObjectMeta),
		downNodes:  make(map[topology.NodeID]bool),
		lost:       make(map[string]bool),
		engines:    make(map[topology.NodeID]store.Engine),
		auditors:   make(map[topology.NodeID]*store.Auditor),
		repairKick: vtime.NewCond("datagrid:repair"),
		groups:     make(map[string]*group.Group),
		groupWAN:   make(map[*group.Group]int64),
	}
	if h := telemetry.For(k); h != nil {
		dg.tel = h
		h.Registry().BindStruct("datagrid", &dg.stats)
		dg.hTransfer = h.Registry().Histogram("datagrid.transfer_latency")
		dg.hAudit = h.Registry().Histogram("store.audit_latency")
		dg.hRepair = h.Registry().Histogram("store.repair_latency")
	}
	dg.sched = newScheduler(dg, cfg.Workers)
	if dg.tel != nil {
		// Scheduler backpressure: jobs submitted but not finished
		// (queued + running) and distinct in-flight object transfers.
		reg := dg.tel.Registry()
		reg.GaugeFunc("datagrid.sched_pending", func() int64 {
			return int64(dg.sched.pending)
		})
		reg.GaugeFunc("datagrid.sched_inflight_transfers", func() int64 {
			return int64(len(dg.sched.inflight))
		})
	}
	if cfg.RepairInterval > 0 {
		k.GoDaemon("dg-repair", dg.repairLoop)
	}
	return dg
}

// Stats returns a consistent copy of the datagrid's counters (each
// field loaded atomically).
func (dg *DataGrid) Stats() Stats {
	return Stats{
		Puts:             atomic.LoadInt64(&dg.stats.Puts),
		Gets:             atomic.LoadInt64(&dg.stats.Gets),
		Jobs:             atomic.LoadInt64(&dg.stats.Jobs),
		Retries:          atomic.LoadInt64(&dg.stats.Retries),
		Failures:         atomic.LoadInt64(&dg.stats.Failures),
		BytesMoved:       atomic.LoadInt64(&dg.stats.BytesMoved),
		CircuitTransfers: atomic.LoadInt64(&dg.stats.CircuitTransfers),
		VLinkTransfers:   atomic.LoadInt64(&dg.stats.VLinkTransfers),
		LocalTransfers:   atomic.LoadInt64(&dg.stats.LocalTransfers),
		GroupFanouts:     atomic.LoadInt64(&dg.stats.GroupFanouts),
		WANBytes:         atomic.LoadInt64(&dg.stats.WANBytes),
		SourceSwitches:   atomic.LoadInt64(&dg.stats.SourceSwitches),
		Deletes:          atomic.LoadInt64(&dg.stats.Deletes),
		Quarantines:      atomic.LoadInt64(&dg.stats.Quarantines),
		Repairs:          atomic.LoadInt64(&dg.stats.Repairs),
		NodesDown:        atomic.LoadInt64(&dg.stats.NodesDown),
		LostObjects:      atomic.LoadInt64(&dg.stats.LostObjects),
	}
}

// MarkDown declares a node unreachable: it stops serving as a GET or
// repair source, entry point, or replication destination. Called by the
// failure detector (internal/faults) on a detected crash or partition;
// the repair daemon is kicked so re-replication of copies the node held
// starts on the next pass, not after a full RepairInterval.
func (dg *DataGrid) MarkDown(n topology.NodeID) {
	if dg.downNodes[n] {
		return
	}
	dg.downNodes[n] = true
	atomic.AddInt64(&dg.stats.NodesDown, 1)
	dg.tel.Note("datagrid", "node marked down", int(n), 0, 0)
	dg.repairKick.Broadcast()
}

// MarkUp reverses MarkDown after a partition heals. The node's stored
// copies (still byte-fresh — a partition loses reachability, not data)
// immediately count again; the kicked repair pass tops up whatever the
// outage left under-replicated.
func (dg *DataGrid) MarkUp(n topology.NodeID) {
	if !dg.downNodes[n] {
		return
	}
	delete(dg.downNodes, n)
	atomic.AddInt64(&dg.stats.NodesDown, -1)
	dg.tel.Note("datagrid", "node marked up", int(n), 0, 0)
	dg.repairKick.Broadcast()
}

// NodeDown reports the failure detector's current view of a node.
func (dg *DataGrid) NodeDown(n topology.NodeID) bool { return dg.downNodes[n] }

// reachable filters down nodes out of a candidate list. With no
// failures marked it returns the input slice unchanged — fault-free
// runs pay nothing.
func (dg *DataGrid) reachable(nodes []topology.NodeID) []topology.NodeID {
	if len(dg.downNodes) == 0 {
		return nodes
	}
	out := make([]topology.NodeID, 0, len(nodes))
	for _, n := range nodes {
		if !dg.downNodes[n] {
			out = append(out, n)
		}
	}
	return out
}

// Ring exposes the placement ring (membership changes go through
// AddMember/RemoveMember so rebalancing stays coherent).
func (dg *DataGrid) Ring() *Ring { return dg.ring }

// SetRing replaces the placement ring (call before the first Put).
func (dg *DataGrid) SetRing(r *Ring) { dg.ring = r }

// Config returns the effective configuration.
func (dg *DataGrid) Config() Config { return dg.cfg }

// Meta returns the catalog entry for an object.
func (dg *DataGrid) Meta(name string) (*ObjectMeta, bool) {
	m, ok := dg.catalog[name]
	return m, ok
}

// Objects lists catalogued object names, sorted.
func (dg *DataGrid) Objects() []string {
	out := make([]string, 0, len(dg.catalog))
	for n := range dg.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Holders returns the nodes currently holding a copy, sorted by id.
// Presence is answered from each engine's index (no payload load).
func (dg *DataGrid) Holders(name string) []topology.NodeID {
	var out []topology.NodeID
	for n, eng := range dg.engines {
		if _, ok := eng.Size(name); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ObjectOn returns the bytes of a replica as held by one node (an
// uncharged peek — the transfer paths go through Engine.Read).
func (dg *DataGrid) ObjectOn(n topology.NodeID, name string) ([]byte, bool) {
	eng, ok := dg.engines[n]
	if !ok {
		return nil, false
	}
	return eng.Get(name)
}

// EngineOn returns node n's storage engine, creating it (and its
// auditor) on first use via the configured factory. The auditor's
// scrub daemon starts only when AuditInterval > 0; its quarantines
// feed the repair loop through onQuarantine.
func (dg *DataGrid) EngineOn(n topology.NodeID) store.Engine {
	if eng, ok := dg.engines[n]; ok {
		return eng
	}
	factory := dg.cfg.Engine
	if factory == nil {
		factory = store.MemoryFactory
	}
	eng, err := factory(dg.k, n)
	if err != nil {
		panic(fmt.Sprintf("datagrid: engine for node %d: %v", n, err))
	}
	dg.engines[n] = eng
	if dg.cfg.AuditInterval > 0 {
		dg.auditorOn(n).Start()
	}
	return eng
}

// auditorOn returns node n's auditor, creating it on first use — only
// background-audit configs or an explicit AuditNow pay for one.
func (dg *DataGrid) auditorOn(n topology.NodeID) *store.Auditor {
	if a, ok := dg.auditors[n]; ok {
		return a
	}
	a := store.NewAuditor(dg.k, n, dg.EngineOn(n), store.AuditConfig{
		Interval:  dg.cfg.AuditInterval,
		RateBytes: dg.cfg.AuditRate,
		OnCorrupt: func(p *vtime.Proc, key string) { dg.onQuarantine(p, n, key) },
	})
	dg.auditors[n] = a
	return a
}

// onQuarantine is the audit → repair hinge: the auditor already
// dumped the flight ring and took the needle out of service; here the
// grid counts it and wakes the repair daemon instead of letting the
// object sit under-replicated until the next interval.
func (dg *DataGrid) onQuarantine(_ *vtime.Proc, n topology.NodeID, key string) {
	atomic.AddInt64(&dg.stats.Quarantines, 1)
	dg.tel.Note("datagrid", "replica quarantined: "+key, int(n), 0, 0)
	dg.repairKick.Broadcast()
}

func (dg *DataGrid) storePut(p *vtime.Proc, n topology.NodeID, name string, data []byte, sum [32]byte) {
	if err := dg.EngineOn(n).Put(p, name, data, sum); err != nil {
		panic(fmt.Sprintf("datagrid: store put %q on node %d: %v", name, n, err))
	}
}

// Put writes an object from a client node: the payload travels to the
// nearest placement target first (one durable copy before Put
// returns), then replication jobs fan out to the remaining targets in
// the background. WaitSettled blocks until the object is fully
// replicated.
func (dg *DataGrid) Put(p *vtime.Proc, client topology.NodeID, name string, data []byte) error {
	targets := dg.ring.Place(name, dg.cfg.Replicas)
	if len(targets) == 0 {
		return ErrEmptyRing
	}
	live := dg.reachable(targets)
	if len(live) == 0 {
		return fmt.Errorf("%w: every placement target of %s is down", ErrNoReplica, name)
	}
	// Weather-aware placement of the entry copy: among the live targets,
	// prefer the one behind the healthiest forecast link (static
	// proximity order without a weather service — identical to nearest).
	entry := dg.rankSources(client, live, false)[0]
	meta := &ObjectMeta{
		Name: name, Size: len(data), Sum: sha256.Sum256(data),
		Targets: targets,
	}
	if old, ok := dg.catalog[name]; ok {
		meta.Version = old.Version + 1
	}
	atomic.AddInt64(&dg.stats.Puts, 1)
	sp := dg.tel.Begin("datagrid", "put", int(client))
	if sp != nil {
		sp.Str("obj", name).I64("bytes", int64(len(data))).I64("entry", int64(entry))
	}
	defer sp.End()
	// The put is a request root: everything downstream — the ingest
	// transfer, the scheduler fan-out, TCP segments on the replicas —
	// attaches to this span through the ambient trace context.
	defer sp.Exit(sp.Enter())
	// Ingest: client -> entry, synchronously in the caller's proc.
	got, err := dg.runTransfer(p, client, entry, name, data)
	if err != nil {
		return err
	}
	dg.storePut(p, entry, name, got, meta.Sum)
	dg.catalog[name] = meta
	// Fan out: entry -> remaining reachable targets, via the scheduler —
	// one point-to-point job per target, or a single hierarchical
	// multicast job over all of them. Down targets are left to the
	// repair loop, which restores them once they are marked up again.
	var rest []topology.NodeID
	for _, t := range live {
		if t != entry {
			rest = append(rest, t)
		}
	}
	if dg.cfg.Hierarchical && dg.treeSavesCrossings(entry, rest) {
		dg.sched.submit(&job{name: name, src: entry, dsts: rest})
	} else {
		for _, t := range rest {
			dg.sched.submit(&job{name: name, src: entry, dst: t})
		}
	}
	return nil
}

// treeSavesCrossings reports whether a spanning tree rooted at src
// strictly beats a flat fan-out to dsts on wide-area crossings. The
// flat cost is one crossing per WAN-classified target; the tree's cost
// comes from the tree itself (Tree.WANCrossings), so policy and
// mechanism cannot disagree — e.g. two named sites joined by a LAN
// count as zero crossings on both sides.
func (dg *DataGrid) treeSavesCrossings(src topology.NodeID, dsts []topology.NodeID) bool {
	flat := 0
	for _, t := range dsts {
		if cls, err := selector.Classify(dg.topo, src, t); err == nil && cls >= selector.PathWAN {
			flat++
		}
	}
	if flat < 2 {
		return false // a tree can at best match a flat fan-out
	}
	grp, err := dg.groupFor(append([]topology.NodeID{src}, dsts...))
	if err != nil {
		return false
	}
	tr, err := grp.Tree(src)
	if err != nil {
		return false
	}
	return tr.WANCrossings() < flat
}

// groupFor returns (building and caching on first use) the fan-out
// group over the given member set.
func (dg *DataGrid) groupFor(members []topology.NodeID) (*group.Group, error) {
	sorted := append([]topology.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	key := fmt.Sprint(sorted)
	if g, ok := dg.groups[key]; ok {
		return g, nil
	}
	g, err := dg.newGroup(sorted)
	if err != nil {
		return nil, err
	}
	dg.groups[key] = g
	return g, nil
}

// newGroup builds an uncached fan-out group; transient retry groups go
// through dropGroup when superseded so their channels don't accumulate.
func (dg *DataGrid) newGroup(members []topology.NodeID) (*group.Group, error) {
	var fault func(tag string, member topology.NodeID, attempt int) bool
	if dg.cfg.InjectFault != nil {
		fault = func(tag string, _ topology.NodeID, attempt int) bool {
			return dg.cfg.InjectFault(tag, attempt)
		}
	}
	return group.New(dg.k, dg.topo, dg.mgr, members, group.Config{
		ChunkBytes:    dg.cfg.ChunkBytes,
		Streams:       dg.cfg.Streams,
		StatusTimeout: dg.cfg.RetryTimeout,
		InjectFault:   fault,
	})
}

// dropGroup folds a transient group's WAN bytes into Stats and closes
// its cached channels.
func (dg *DataGrid) dropGroup(g *group.Group) {
	dg.syncGroupWAN(g)
	g.Close() // moves live edge counts into the group's closed total; WANBytes() is unchanged
	delete(dg.groupWAN, g)
}

// ReleaseGroups closes every cached fan-out group and empties the
// cache — the release valve for long-running workloads whose object
// churn accumulates one group (with open WAN channels) per distinct
// placement set. Accounting is folded into Stats first; later fan-outs
// re-provision on demand. Do not call it while replication jobs are in
// flight (WaitSettled first).
func (dg *DataGrid) ReleaseGroups() int {
	keys := make([]string, 0, len(dg.groups))
	for k := range dg.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dg.dropGroup(dg.groups[k])
		delete(dg.groups, k)
	}
	return len(keys)
}

// syncGroupWAN folds a group's WAN bytes into Stats.WANBytes exactly
// once (runs to completion in kernel context — no blocking between the
// read and the update).
func (dg *DataGrid) syncGroupWAN(g *group.Group) {
	cur := g.WANBytes()
	atomic.AddInt64(&dg.stats.WANBytes, cur-dg.groupWAN[g])
	dg.groupWAN[g] = cur
}

// Get reads an object back to a client node from the best-placed
// replica (local copy, then SAN neighbour, then LAN, then WAN), with
// checksum verification; corrupt or unreachable replicas are skipped.
func (dg *DataGrid) Get(p *vtime.Proc, client topology.NodeID, name string) ([]byte, error) {
	meta, ok := dg.catalog[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoObject, name)
	}
	holders := dg.reachable(dg.Holders(name))
	if len(holders) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoReplica, name)
	}
	atomic.AddInt64(&dg.stats.Gets, 1)
	sp := dg.tel.Begin("datagrid", "get", int(client))
	if sp != nil {
		sp.Str("obj", name).I64("bytes", int64(meta.Size))
	}
	defer sp.End()
	defer sp.Exit(sp.Enter())
	for _, h := range dg.rankForGet(client, holders) {
		data, ok := dg.EngineOn(h).Read(p, name)
		if !ok {
			continue
		}
		got, err := dg.runTransfer(p, h, client, name, data)
		if err != nil {
			continue
		}
		if sha256.Sum256(got) != meta.Sum {
			continue
		}
		return got, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNoReplica, name)
}

// Replicate (re)schedules copies of an object to every placement
// target that lacks one; it reports how many jobs were submitted.
func (dg *DataGrid) Replicate(name string) int {
	meta, ok := dg.catalog[name]
	if !ok {
		return 0
	}
	holders := dg.reachable(dg.Holders(name))
	if len(holders) == 0 {
		return 0
	}
	has := make(map[topology.NodeID]bool, len(holders))
	for _, h := range holders {
		has[h] = true
	}
	n := 0
	for _, t := range meta.Targets {
		if !has[t] && !dg.NodeDown(t) {
			src := dg.rankSources(t, holders, false)[0]
			dg.sched.submit(&job{name: name, src: src, dst: t})
			n++
		}
	}
	return n
}

// AddMember grows the ring by one node and reschedules replication for
// every object whose placement changed; it reports the number of
// transfer jobs submitted. Copies left on nodes that fell out of a
// placement are removed by TrimExcess after the moves settle.
func (dg *DataGrid) AddMember(n topology.NodeID, zone string) int {
	dg.ring.Add(n, zone)
	return dg.rebalance()
}

// RemoveMember shrinks the ring (the node's stored copies survive as
// sources until TrimExcess) and reschedules replication.
func (dg *DataGrid) RemoveMember(n topology.NodeID) int {
	dg.ring.Remove(n)
	return dg.rebalance()
}

// rebalance recomputes every object's placement against the current
// ring and routes the resulting moves through the repair path — the
// same weather-ranked source selection, in-flight dedup and
// Stats.Repairs/store.repair_latency bookkeeping that heals quarantined
// replicas, so a membership change is just another under-replication
// event. It reports the number of transfer targets scheduled.
func (dg *DataGrid) rebalance() int {
	n := 0
	for _, name := range dg.Objects() {
		meta := dg.catalog[name]
		meta.Targets = dg.ring.Place(name, dg.cfg.Replicas)
		n += dg.repairObject(meta)
	}
	return n
}

// TrimExcess drops copies held by nodes outside an object's current
// placement (run after WaitSettled to finish a rebalance). Durable
// engines tombstone the dropped needles, charging their write cost to
// the calling proc.
func (dg *DataGrid) TrimExcess(p *vtime.Proc) int {
	n := 0
	for _, name := range dg.Objects() {
		meta := dg.catalog[name]
		target := make(map[topology.NodeID]bool, len(meta.Targets))
		for _, t := range meta.Targets {
			target[t] = true
		}
		for _, h := range dg.Holders(name) {
			// An unreachable holder can't serve the delete; its stale
			// copy is trimmed on a later pass, after it is marked up.
			if !target[h] && !dg.NodeDown(h) {
				dg.engines[h].Delete(p, name)
				n++
			}
		}
	}
	return n
}

// WaitSettled blocks until every scheduled replication job finished.
// Background failures do not unblock it early: check JobErrors (or
// Stats.Failures) afterwards to learn whether an object is still
// under-replicated.
func (dg *DataGrid) WaitSettled(p *vtime.Proc) { dg.sched.waitSettled(p) }

// JobErrors returns the errors of background replication jobs that
// exhausted their retries (in completion order).
func (dg *DataGrid) JobErrors() []error { return dg.sched.errs }

// freshCopy returns node n's copy of an object if it matches the
// catalogued checksum.
func (dg *DataGrid) freshCopy(meta *ObjectMeta, n topology.NodeID) ([]byte, bool) {
	data, ok := dg.ObjectOn(n, meta.Name)
	if !ok || len(data) != meta.Size || sha256.Sum256(data) != meta.Sum {
		return nil, false
	}
	return data, true
}

// freshHolder picks the up-to-date holder nearest to dst, excluding
// dst itself.
func (dg *DataGrid) freshHolder(meta *ObjectMeta, dst topology.NodeID) (topology.NodeID, bool) {
	var fresh []topology.NodeID
	for _, h := range dg.Holders(meta.Name) {
		if h == dst || dg.NodeDown(h) {
			continue
		}
		if _, ok := dg.freshCopy(meta, h); ok {
			fresh = append(fresh, h)
		}
	}
	if len(fresh) == 0 {
		return 0, false
	}
	return dg.nearest(dst, fresh), true
}

// VerifyReplicas checks that every placement target holds a copy and
// that all copies are byte-identical to the catalogued checksum.
func (dg *DataGrid) VerifyReplicas(name string) error {
	meta, ok := dg.catalog[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoObject, name)
	}
	for _, t := range meta.Targets {
		data, ok := dg.ObjectOn(t, name)
		if !ok {
			return fmt.Errorf("%w: %s missing on node %d", ErrNoReplica, name, t)
		}
		if len(data) != meta.Size || sha256.Sum256(data) != meta.Sum {
			return fmt.Errorf("%w: %s on node %d", ErrBadPayload, name, t)
		}
	}
	return nil
}

// runTransfer performs one logical transfer with retries, charging
// checksum CPU on the sender side.
func (dg *DataGrid) runTransfer(p *vtime.Proc, src, dst topology.NodeID, name string, data []byte) ([]byte, error) {
	atomic.AddInt64(&dg.stats.Jobs, 1)
	t0 := dg.k.Now()
	p.Consume(model.MemcpyPerByte.Cost(len(data))) // checksum pass over the payload
	var lastErr error
	for attempt := 1; attempt <= dg.cfg.MaxRetries; attempt++ {
		got, err := dg.transferOnce(p, src, dst, name, data, attempt)
		if err == nil {
			atomic.AddInt64(&dg.stats.BytesMoved, int64(len(got)))
			dg.hTransfer.Observe(dg.k.Now().Sub(t0))
			return got, nil
		}
		lastErr = err
		atomic.AddInt64(&dg.stats.Retries, 1)
		dg.tel.Note("datagrid", "transfer retry", int(src), int64(dst), int64(attempt))
	}
	atomic.AddInt64(&dg.stats.Retries, -1) // the final attempt was a failure, not a retry
	atomic.AddInt64(&dg.stats.Failures, 1)
	dg.hTransfer.Observe(dg.k.Now().Sub(t0))
	// Retries exhausted: dump the flight ring — the post-mortem of a
	// failed transfer is the control-plane history that led here.
	dg.tel.Note("datagrid", "transfer failed", int(src), int64(dst), 0)
	dg.tel.DumpFlight("datagrid transfer failed: " + name)
	return nil, fmt.Errorf("%w: %v", ErrJobFailed, lastErr)
}

// nearest returns the candidate with the cheapest path class from n
// (ties broken by candidate order, which is placement order).
func (dg *DataGrid) nearest(n topology.NodeID, cands []topology.NodeID) topology.NodeID {
	best := cands[0]
	bestCls := selector.PathLossy + 1
	for _, c := range cands {
		cls, err := selector.Classify(dg.topo, n, c)
		if err != nil {
			continue
		}
		if cls < bestCls {
			bestCls = cls
			best = c
		}
	}
	return best
}

// rankByProximity orders candidates by path class from n, stable in
// node-id order within a class.
func (dg *DataGrid) rankByProximity(n topology.NodeID, cands []topology.NodeID) []topology.NodeID {
	out := append([]topology.NodeID(nil), cands...)
	cls := dg.classes(n, out)
	sort.SliceStable(out, func(i, j int) bool { return cls[out[i]] < cls[out[j]] })
	return out
}

func (dg *DataGrid) classes(n topology.NodeID, cands []topology.NodeID) map[topology.NodeID]selector.PathClass {
	cls := make(map[topology.NodeID]selector.PathClass, len(cands))
	for _, c := range cands {
		k, err := selector.Classify(dg.topo, n, c)
		if err != nil {
			k = selector.PathLossy + 1
		}
		cls[c] = k
	}
	return cls
}

// rankForGet is the GET source ranking: rankSources with the source
// switch counted against the GET adaptation stats.
func (dg *DataGrid) rankForGet(client topology.NodeID, holders []topology.NodeID) []topology.NodeID {
	return dg.rankSources(client, holders, true)
}

// rankSources orders replica sources for a reader at client: proximity
// class first (a local or machine-room copy always beats the wide
// area), then — under weather — the holder with the best forecast
// bandwidth leads its class, but only on a material
// (hysteresis-factor) advantage over the class's static head, so
// near-equal forecasts do not flap sources between calls. The rest of
// the class keeps the static retry order. Falls back to the static
// ranking without forecasts. countSwitch attributes a weather
// promotion to Stats.SourceSwitches (GET path); the repair loop ranks
// with the same policy but books nothing — a repair is not a client
// adaptation event.
func (dg *DataGrid) rankSources(client topology.NodeID, holders []topology.NodeID, countSwitch bool) []topology.NodeID {
	out := append([]topology.NodeID(nil), holders...)
	cls := dg.classes(client, out)
	sort.SliceStable(out, func(i, j int) bool { return cls[out[i]] < cls[out[j]] })
	if dg.cfg.Weather == nil || len(out) < 2 {
		return out
	}
	staticFirst := out[0]
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && cls[out[hi]] == cls[out[lo]] {
			hi++
		}
		// Promote the class's best-forecast holder to its head when it
		// clearly beats the static head's forecast.
		headBW, headOK := dg.cfg.Weather.PairBandwidth(client, out[lo])
		best, bestBW := lo, 0.0
		for i := lo; i < hi; i++ {
			if bw, ok := dg.cfg.Weather.PairBandwidth(client, out[i]); ok && bw > bestBW {
				best, bestBW = i, bw
			}
		}
		if best != lo && headOK && bestBW > headBW*selector.DefaultHysteresis {
			promoted := out[best]
			copy(out[lo+1:best+1], out[lo:best])
			out[lo] = promoted
		}
		lo = hi
	}
	if out[0] != staticFirst && countSwitch {
		atomic.AddInt64(&dg.stats.SourceSwitches, 1)
		if dg.tel.Tracing() {
			dg.tel.Instant("datagrid", "source_switch", int(client)).
				I64("to", int64(out[0])).I64("from", int64(staticFirst)).End()
		}
		dg.tel.Note("datagrid", "get source switched", int(client), int64(out[0]), int64(staticFirst))
	}
	return out
}
