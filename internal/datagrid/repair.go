package datagrid

import (
	"fmt"
	"sort"
	"sync/atomic"

	"padico/internal/topology"
	"padico/internal/vtime"
)

// Anti-entropy: the datagrid half of the store subsystem. The auditor
// (internal/store) finds rot on one node and quarantines it; the code
// here notices the grid-level consequence — an object below its
// replication factor — and schedules repair transfers over the normal
// data path: same scheduler, same wire protocol, same checksum
// verification, with the source picked by the weather-aware ranking
// and a hierarchical fan-out when one multicast saves WAN crossings.
// Repair is therefore indistinguishable from replication on the wire;
// only the bookkeeping (Stats.Repairs, store.repair_latency) differs.

// engineNodes returns the nodes with instantiated engines, sorted —
// the deterministic iteration order for grid-wide store sweeps.
func (dg *DataGrid) engineNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(dg.engines))
	for n := range dg.engines {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Delete removes an object grid-wide: every holder's engine drops its
// copy (a durable tombstone on pack engines, so reopening the bundles
// does not resurrect the key), then the catalog entry goes away.
func (dg *DataGrid) Delete(p *vtime.Proc, name string) error {
	if _, ok := dg.catalog[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoObject, name)
	}
	sp := dg.tel.Begin("datagrid", "delete", 0).Str("obj", name)
	defer sp.End()
	defer sp.Exit(sp.Enter())
	for _, h := range dg.Holders(name) {
		dg.engines[h].Delete(p, name)
	}
	delete(dg.catalog, name)
	atomic.AddInt64(&dg.stats.Deletes, 1)
	dg.tel.Note("datagrid", "deleted: "+name, 0, 0, 0)
	return nil
}

// AuditNow synchronously scrubs every node's engine once (in node
// order) and returns how many needles were quarantined grid-wide.
// Corrupt needles feed the repair loop exactly as the background
// auditors do.
func (dg *DataGrid) AuditNow(p *vtime.Proc) int {
	n := 0
	for _, node := range dg.engineNodes() {
		n += dg.auditorOn(node).Pass(p)
	}
	return n
}

// RepairNow synchronously scans the whole catalog for objects below
// their replication factor and schedules repair transfers; it returns
// the number of repair jobs' targets submitted. WaitSettled blocks
// until the transfers land.
func (dg *DataGrid) RepairNow(p *vtime.Proc) int {
	n := 0
	for _, name := range dg.Objects() {
		n += dg.repairObject(dg.catalog[name])
	}
	return n
}

// repairObject schedules transfers restoring one object's replication
// factor: fresh copies are located, every placement target lacking one
// becomes a repair destination, and each destination is served from
// its weather-ranked best source — or all of them from one
// hierarchical multicast when the tree saves WAN crossings.
func (dg *DataGrid) repairObject(meta *ObjectMeta) int {
	var fresh []topology.NodeID
	freshAt := make(map[topology.NodeID]bool)
	for _, h := range dg.Holders(meta.Name) {
		if dg.NodeDown(h) {
			continue // an unreachable copy cannot serve as a source
		}
		if _, ok := dg.freshCopy(meta, h); ok {
			fresh = append(fresh, h)
			freshAt[h] = true
		}
	}
	if len(fresh) == 0 {
		// No reachable fresh copy anywhere: the object is lost — or cut
		// off behind a partition. Scream — this is the condition the
		// whole subsystem exists to prevent. The counter bumps on every
		// pass so availability SLOs burn for the outage's duration; the
		// flight dump fires once per outage (dg.lost dedup).
		atomic.AddInt64(&dg.stats.LostObjects, 1)
		dg.tel.Note("datagrid", "object lost: "+meta.Name, 0, int64(len(meta.Targets)), 0)
		if !dg.lost[meta.Name] {
			dg.lost[meta.Name] = true
			dg.tel.DumpFlight("datagrid: object lost beyond repair: " + meta.Name)
		}
		return 0
	}
	delete(dg.lost, meta.Name)
	var missing []topology.NodeID
	for _, t := range meta.Targets {
		// An unreachable target can't take a copy; a target already
		// being served — put replication still in flight, or a repair
		// from an earlier pass — is not missing: re-submitting would
		// move the same bytes twice.
		if dg.NodeDown(t) {
			continue
		}
		if !freshAt[t] && !dg.sched.inflightTo(meta.Name, t) {
			missing = append(missing, t)
		}
	}
	if len(missing) == 0 {
		return 0
	}
	t0 := dg.k.Now()
	if dg.cfg.Hierarchical && len(missing) > 1 {
		src := dg.rankSources(missing[0], fresh, false)[0]
		if dg.treeSavesCrossings(src, missing) {
			dg.sched.submit(&job{name: meta.Name, src: src, dsts: missing, repair: true, t0: t0})
			return len(missing)
		}
	}
	for _, t := range missing {
		src := dg.rankSources(t, fresh, false)[0]
		dg.sched.submit(&job{name: meta.Name, src: src, dst: t, repair: true, t0: t0})
	}
	return len(missing)
}

// LostObjects returns catalogued objects with no reachable fresh
// replica — damage repair cannot undo, or data cut off behind a live
// partition (the recovery benches assert this drains back to empty
// after the heal).
func (dg *DataGrid) LostObjects() []string {
	var out []string
	for _, name := range dg.Objects() {
		meta := dg.catalog[name]
		lost := true
		for _, h := range dg.Holders(name) {
			if dg.NodeDown(h) {
				continue
			}
			if _, ok := dg.freshCopy(meta, h); ok {
				lost = false
				break
			}
		}
		if lost {
			out = append(out, name)
		}
	}
	return out
}

// repairLoop is the anti-entropy daemon: wake every RepairInterval —
// or immediately when an audit quarantine kicks the cond — and
// schedule whatever repairs the catalog scan finds.
func (dg *DataGrid) repairLoop(p *vtime.Proc) {
	for {
		dg.repairKick.WaitTimeout(p, dg.cfg.RepairInterval)
		sp := dg.tel.Begin("datagrid", "repair-pass", 0)
		prev := sp.Enter()
		n := dg.RepairNow(p)
		sp.Exit(prev)
		sp.I64("jobs", int64(n)).End()
	}
}

// Close closes every node engine, flushing durable state. A new
// DataGrid opened over the same pack directories resumes from the
// bundles.
func (dg *DataGrid) Close() error {
	var first error
	for _, n := range dg.engineNodes() {
		if err := dg.engines[n].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
