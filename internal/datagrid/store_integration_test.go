package datagrid_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"padico/internal/datagrid"
	"padico/internal/grid"
	"padico/internal/store"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// withEngines runs the scenario once per storage backend: nil (the
// in-memory map default) and the durable pack engine rooted in a
// per-subtest temp dir. Core datagrid behavior must be identical on
// both; only the virtual time charged differs.
func withEngines(t *testing.T, fn func(t *testing.T, engine store.Factory)) {
	t.Run("memory", func(t *testing.T) { fn(t, nil) })
	t.Run("pack", func(t *testing.T) {
		fn(t, store.PackFactory(t.TempDir(), store.PackConfig{}))
	})
}

// TestDeleteRemovesEveryReplica: a grid-wide Delete leaves no copy on
// any node, drops the catalog entry, and counts once — on both
// backends.
func TestDeleteRemovesEveryReplica(t *testing.T) {
	withEngines(t, func(t *testing.T, engine store.Factory) {
		g := grid.Cluster(4)
		dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Engine: engine})
		if err := g.K.Run(func(p *vtime.Proc) {
			for i := 0; i < 3; i++ {
				if err := dg.Put(p, 0, fmt.Sprintf("d%d", i), payload(int64(i), 128<<10)); err != nil {
					t.Fatal(err)
				}
			}
			dg.WaitSettled(p)
			holders := dg.Holders("d1")
			if len(holders) != 2 {
				t.Fatalf("holders before delete = %v", holders)
			}
			if err := dg.Delete(p, "d1"); err != nil {
				t.Fatal(err)
			}
			if hs := dg.Holders("d1"); len(hs) != 0 {
				t.Fatalf("holders after delete = %v", hs)
			}
			for _, h := range holders {
				if _, ok := dg.ObjectOn(h, "d1"); ok {
					t.Fatalf("node %d still serves the deleted object", h)
				}
			}
			if _, err := dg.Get(p, 0, "d1"); err == nil {
				t.Fatal("GET of a deleted object succeeded")
			}
			if err := dg.Delete(p, "d1"); err == nil {
				t.Fatal("double delete succeeded")
			}
			// The neighbors are untouched.
			for _, name := range []string{"d0", "d2"} {
				if err := dg.VerifyReplicas(name); err != nil {
					t.Fatal(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if dg.Stats().Deletes != 1 {
			t.Fatalf("deletes = %d", dg.Stats().Deletes)
		}
	})
}

// TestDeleteSurvivesPackReopen: the tombstone is durable. Reopening
// every node's bundles on a fresh kernel must replay the delete — the
// key stays gone — while the surviving object's bytes are intact.
func TestDeleteSurvivesPackReopen(t *testing.T) {
	root := t.TempDir()
	g := grid.Cluster(4)
	dg := g.NewPackDataGrid(root, store.PackConfig{}, datagrid.Config{Replicas: 2})
	keep := payload(21, 128<<10)
	var keepHolders []int
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "keep", keep); err != nil {
			t.Fatal(err)
		}
		if err := dg.Put(p, 0, "gone", payload(22, 128<<10)); err != nil {
			t.Fatal(err)
		}
		dg.WaitSettled(p)
		for _, h := range dg.Holders("keep") {
			keepHolders = append(keepHolders, int(h))
		}
		if err := dg.Delete(p, "gone"); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := dg.Close(); err != nil {
		t.Fatal(err)
	}

	// A second testbed over the same directory: open every node's pack
	// directly and check what the bundles replay to.
	k2 := vtime.NewKernel()
	factory := store.PackFactory(root, store.PackConfig{})
	present := map[int]bool{}
	for n := 0; n < 4; n++ {
		eng, err := factory(k2, topology.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := eng.Size("gone"); ok {
			t.Fatalf("node %d resurrected the deleted object after reopen", n)
		}
		if got, ok := eng.Get("keep"); ok {
			if !bytes.Equal(got, keep) {
				t.Fatalf("node %d: surviving object differs after reopen", n)
			}
			present[n] = true
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range keepHolders {
		if !present[h] {
			t.Fatalf("holder %d lost the surviving object across reopen (present on %v)", h, present)
		}
	}
}

// TestAuditRepairRestoresReplication is the full anti-entropy loop,
// end to end on the wires: corrupt a needle on disk, the background
// auditor quarantines it (flight-recorder dump included), the kicked
// repair loop re-replicates over the normal transfer path, and the
// object is back at full replication with every copy verifying.
func TestAuditRepairRestoresReplication(t *testing.T) {
	root := t.TempDir()
	g := grid.TwoClusterWAN(2, 2)
	var flight bytes.Buffer
	g.Telemetry().SetFlightSink(&flight) // attach the hub before the datagrid binds
	dg := g.NewPackDataGrid(root, store.PackConfig{}, datagrid.Config{
		Replicas:       2,
		AuditInterval:  500 * time.Millisecond,
		RepairInterval: 500 * time.Millisecond,
	})
	if err := g.K.Run(func(p *vtime.Proc) {
		for i := 0; i < 3; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("ae-%d", i), payload(int64(30+i), 256<<10)); err != nil {
				t.Fatal(err)
			}
		}
		dg.WaitSettled(p)
		victim := dg.Holders("ae-1")[0]
		if !dg.EngineOn(victim).Corrupt("ae-1") {
			t.Fatalf("could not corrupt ae-1 on node %d", victim)
		}
		// Rot is invisible until scrubbed: the copy still counts as a
		// holder and the catalog is unchanged.
		if len(dg.Holders("ae-1")) != 2 {
			t.Fatal("corruption alone changed the holder set")
		}
		p.Sleep(2 * time.Second) // a few audit + repair cycles
		dg.WaitSettled(p)
		if q := dg.Stats().Quarantines; q != 1 {
			t.Fatalf("quarantines = %d, want 1", q)
		}
		if r := dg.Stats().Repairs; r < 1 {
			t.Fatalf("repairs = %d, want >= 1", r)
		}
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("ae-%d", i)
			if err := dg.VerifyReplicas(name); err != nil {
				t.Fatalf("after repair: %v", err)
			}
			if hs := dg.Holders(name); len(hs) != 2 {
				t.Fatalf("%s below replication factor after repair: %v", name, hs)
			}
		}
		if lost := dg.LostObjects(); len(lost) != 0 {
			t.Fatalf("lost objects: %v", lost)
		}
	}); err != nil {
		t.Fatal(err)
	}
	dump := flight.String()
	if !strings.Contains(dump, "flight recorder dump") ||
		!strings.Contains(dump, "corrupt needle quarantined: ae-1") {
		t.Fatalf("auditor quarantine did not dump the flight recorder:\n%s", dump)
	}
	// The dump fires at quarantine time; the repair's own trail lands in
	// the ring afterwards.
	repaired := false
	for _, e := range g.Telemetry().Flight() {
		if e.Msg == "repair complete: ae-1" {
			repaired = true
		}
	}
	if !repaired {
		t.Fatal("flight ring missing the repair-complete note for ae-1")
	}
	if err := dg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditNowRepairNowSynchronous drives the same loop without the
// daemons: AuditNow finds the rot, RepairNow schedules the transfers,
// WaitSettled lands them. This is the path the bench and the examples
// use.
func TestAuditNowRepairNowSynchronous(t *testing.T) {
	root := t.TempDir()
	g := grid.Cluster(4)
	dg := g.NewPackDataGrid(root, store.PackConfig{}, datagrid.Config{Replicas: 2})
	if err := g.K.Run(func(p *vtime.Proc) {
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, 0, fmt.Sprintf("s%d", i), payload(int64(40+i), 128<<10)); err != nil {
				t.Fatal(err)
			}
		}
		dg.WaitSettled(p)
		for _, name := range []string{"s0", "s3"} {
			if !dg.EngineOn(dg.Holders(name)[1]).Corrupt(name) {
				t.Fatalf("could not corrupt %s", name)
			}
		}
		if n := dg.AuditNow(p); n != 2 {
			t.Fatalf("AuditNow quarantined %d, want 2", n)
		}
		if n := dg.RepairNow(p); n != 2 {
			t.Fatalf("RepairNow scheduled %d targets, want 2", n)
		}
		dg.WaitSettled(p)
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("s%d", i)
			if err := dg.VerifyReplicas(name); err != nil {
				t.Fatal(err)
			}
			if hs := dg.Holders(name); len(hs) != 2 {
				t.Fatalf("%s holders = %v", name, hs)
			}
		}
		// A second synchronous sweep finds nothing left to do.
		if n := dg.AuditNow(p); n != 0 {
			t.Fatalf("clean audit quarantined %d", n)
		}
		if n := dg.RepairNow(p); n != 0 {
			t.Fatalf("clean repair scheduled %d", n)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if dg.Stats().Repairs != 2 {
		t.Fatalf("repairs = %d", dg.Stats().Repairs)
	}
}
