package datagrid

import (
	"fmt"
	"sync/atomic"

	"padico/internal/group"
	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// job is one replication task: copy name from src's store to dst
// (point-to-point), or — when dsts is set — to every listed target at
// once through one hierarchical multicast.
type job struct {
	name     string
	src, dst topology.NodeID
	dsts     []topology.NodeID
}

// scheduler runs replication jobs on a fixed pool of worker Procs, so
// many PUT/GET/replication transfers proceed concurrently while the
// per-transfer windows keep each one flow-controlled.
type scheduler struct {
	dg      *DataGrid
	queue   *vtime.Queue[*job]
	pending int
	idle    *vtime.Cond
	errs    []error
}

func newScheduler(dg *DataGrid, workers int) *scheduler {
	s := &scheduler{
		dg:    dg,
		queue: vtime.NewQueue[*job]("datagrid:jobs"),
		idle:  vtime.NewCond("datagrid:idle"),
	}
	for i := 0; i < workers; i++ {
		dg.k.GoDaemon(fmt.Sprintf("dg-worker%d", i), s.work)
	}
	return s
}

func (s *scheduler) submit(j *job) {
	s.pending++
	s.queue.Push(j)
}

func (s *scheduler) work(p *vtime.Proc) {
	for {
		j := s.queue.Pop(p)
		s.run(p, j)
		s.pending--
		if s.pending == 0 {
			s.idle.Broadcast()
		}
	}
}

func (s *scheduler) run(p *vtime.Proc, j *job) {
	dg := s.dg
	meta, ok := dg.catalog[j.name]
	if !ok {
		s.fail(fmt.Errorf("%w: %s dropped from the catalog", ErrNoObject, j.name))
		atomic.AddInt64(&dg.stats.Failures, 1)
		return
	}
	if len(j.dsts) > 0 {
		s.runGroup(p, j, meta)
		return
	}
	if _, ok := dg.freshCopy(meta, j.dst); ok {
		return // destination already converged (duplicate submission)
	}
	// The job may have queued behind a membership change or a newer
	// version: replicate only from a source whose bytes match the
	// catalogued checksum (a stale copy would transfer "successfully"
	// — the wire verifies the sender's own checksum, not the
	// catalog's).
	data, ok := dg.freshCopy(meta, j.src)
	if !ok {
		src, found := dg.freshHolder(meta, j.dst)
		if !found {
			s.fail(fmt.Errorf("%w: %s has no up-to-date source", ErrNoReplica, j.name))
			atomic.AddInt64(&dg.stats.Failures, 1)
			return
		}
		j.src = src
		data, _ = dg.freshCopy(meta, src)
	}
	got, err := dg.runTransfer(p, j.src, j.dst, j.name, data)
	if err != nil {
		s.fail(fmt.Errorf("%s -> node %d: %w", j.name, j.dst, err))
		return
	}
	dg.storePut(j.dst, j.name, got)
}

// runGroup serves one multi-target replication job with hierarchical
// multicasts: the whole remaining target set per attempt, shrinking to
// the members that failed verification. Delivered copies are stored as
// they verify, so a partially failed attempt still makes progress.
func (s *scheduler) runGroup(p *vtime.Proc, j *job, meta *ObjectMeta) {
	dg := s.dg
	remaining := make([]topology.NodeID, 0, len(j.dsts))
	for _, t := range j.dsts {
		if _, ok := dg.freshCopy(meta, t); !ok {
			remaining = append(remaining, t)
		}
	}
	if len(remaining) == 0 {
		return // every destination already converged
	}
	data, ok := dg.freshCopy(meta, j.src)
	if !ok {
		src, found := dg.freshHolder(meta, remaining[0])
		if !found {
			s.fail(fmt.Errorf("%w: %s has no up-to-date source", ErrNoReplica, j.name))
			atomic.AddInt64(&dg.stats.Failures, 1)
			return
		}
		j.src = src
		data, _ = dg.freshCopy(meta, src)
	}
	// Only the submitted full placement set lives in the long-lived
	// group cache; a fan-out some other worker already partially
	// converged, and every shrunken retry set, runs on a transient
	// group released when done — no cache entry (each with its own open
	// WAN channels) per convergence pattern.
	var transient *group.Group
	defer func() {
		if transient != nil {
			dg.dropGroup(transient)
		}
	}()
	var grp *group.Group
	var gerr error
	if len(remaining) == len(j.dsts) {
		grp, gerr = dg.groupFor(append([]topology.NodeID{j.src}, remaining...))
	} else {
		grp, gerr = dg.newGroup(append([]topology.NodeID{j.src}, remaining...))
		transient = grp
	}
	if gerr != nil {
		s.fail(gerr)
		atomic.AddInt64(&dg.stats.Failures, 1)
		return
	}
	atomic.AddInt64(&dg.stats.Jobs, 1)
	p.Consume(model.MemcpyPerByte.Cost(len(data))) // checksum pass over the payload
	var lastErr error
	for attempt := 1; attempt <= dg.cfg.MaxRetries; attempt++ {
		got, err := grp.Multicast(p, j.src, j.name, data, attempt)
		dg.syncGroupWAN(grp)
		for _, t := range remaining {
			if copyBytes, ok := got[t]; ok {
				dg.storePut(t, j.name, copyBytes)
				atomic.AddInt64(&dg.stats.BytesMoved, int64(len(copyBytes)))
			}
		}
		if err == nil {
			atomic.AddInt64(&dg.stats.GroupFanouts, 1)
			return
		}
		lastErr = err
		atomic.AddInt64(&dg.stats.Retries, 1)
		next := remaining[:0]
		for _, t := range remaining {
			if _, ok := dg.freshCopy(meta, t); !ok {
				next = append(next, t)
			}
		}
		remaining = next
		if len(remaining) == 0 { // partial error but everyone converged
			atomic.AddInt64(&dg.stats.Retries, -1)
			atomic.AddInt64(&dg.stats.GroupFanouts, 1)
			return
		}
		if attempt == dg.cfg.MaxRetries {
			break
		}
		retryGrp, gerr := dg.newGroup(append([]topology.NodeID{j.src}, remaining...))
		if gerr != nil {
			s.fail(gerr)
			atomic.AddInt64(&dg.stats.Failures, 1)
			return
		}
		if transient != nil {
			dg.dropGroup(transient)
		}
		transient, grp = retryGrp, retryGrp
	}
	atomic.AddInt64(&dg.stats.Retries, -1) // the final attempt was a failure, not a retry
	atomic.AddInt64(&dg.stats.Failures, 1)
	dg.tel.DumpFlight("datagrid fan-out failed: " + j.name)
	s.fail(fmt.Errorf("%w: %s fan-out to %v: %v", ErrJobFailed, j.name, remaining, lastErr))
}

func (s *scheduler) fail(err error) {
	s.dg.tel.Note("datagrid", "job failed", 0, int64(len(s.errs)+1), 0)
	s.errs = append(s.errs, err)
}

func (s *scheduler) waitSettled(p *vtime.Proc) {
	for s.pending > 0 {
		s.idle.Wait(p)
	}
}
