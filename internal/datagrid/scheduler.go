package datagrid

import (
	"fmt"

	"padico/internal/topology"
	"padico/internal/vtime"
)

// job is one replication transfer: copy name from src's store to dst.
type job struct {
	name     string
	src, dst topology.NodeID
}

// scheduler runs replication jobs on a fixed pool of worker Procs, so
// many PUT/GET/replication transfers proceed concurrently while the
// per-transfer windows keep each one flow-controlled.
type scheduler struct {
	dg      *DataGrid
	queue   *vtime.Queue[*job]
	pending int
	idle    *vtime.Cond
	errs    []error
}

func newScheduler(dg *DataGrid, workers int) *scheduler {
	s := &scheduler{
		dg:    dg,
		queue: vtime.NewQueue[*job]("datagrid:jobs"),
		idle:  vtime.NewCond("datagrid:idle"),
	}
	for i := 0; i < workers; i++ {
		dg.k.GoDaemon(fmt.Sprintf("dg-worker%d", i), s.work)
	}
	return s
}

func (s *scheduler) submit(j *job) {
	s.pending++
	s.queue.Push(j)
}

func (s *scheduler) work(p *vtime.Proc) {
	for {
		j := s.queue.Pop(p)
		s.run(p, j)
		s.pending--
		if s.pending == 0 {
			s.idle.Broadcast()
		}
	}
}

func (s *scheduler) run(p *vtime.Proc, j *job) {
	dg := s.dg
	meta, ok := dg.catalog[j.name]
	if !ok {
		s.fail(fmt.Errorf("%w: %s dropped from the catalog", ErrNoObject, j.name))
		dg.Stats.Failures++
		return
	}
	if _, ok := dg.freshCopy(meta, j.dst); ok {
		return // destination already converged (duplicate submission)
	}
	// The job may have queued behind a membership change or a newer
	// version: replicate only from a source whose bytes match the
	// catalogued checksum (a stale copy would transfer "successfully"
	// — the wire verifies the sender's own checksum, not the
	// catalog's).
	data, ok := dg.freshCopy(meta, j.src)
	if !ok {
		src, found := dg.freshHolder(meta, j.dst)
		if !found {
			s.fail(fmt.Errorf("%w: %s has no up-to-date source", ErrNoReplica, j.name))
			dg.Stats.Failures++
			return
		}
		j.src = src
		data, _ = dg.freshCopy(meta, src)
	}
	got, err := dg.runTransfer(p, j.src, j.dst, j.name, data)
	if err != nil {
		s.fail(fmt.Errorf("%s -> node %d: %w", j.name, j.dst, err))
		return
	}
	dg.storePut(j.dst, j.name, got)
}

func (s *scheduler) fail(err error) { s.errs = append(s.errs, err) }

func (s *scheduler) waitSettled(p *vtime.Proc) {
	for s.pending > 0 {
		s.idle.Wait(p)
	}
}
