package datagrid

import (
	"fmt"
	"sync/atomic"

	"padico/internal/group"
	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// job is one replication task: copy name from src's store to dst
// (point-to-point), or — when dsts is set — to every listed target at
// once through one hierarchical multicast. Repair jobs (submitted by
// the anti-entropy loop) are the same transfers with extra
// bookkeeping: Stats.Repairs and the store.repair_latency histogram,
// measured from t0 (detection) to the copy landing.
type job struct {
	name     string
	src, dst topology.NodeID
	dsts     []topology.NodeID
	repair   bool
	t0       vtime.Time
	ctx      vtime.TraceCtx // submitter's trace context, installed by the worker
}

// finishRepair books one restored copy.
func (s *scheduler) finishRepair(j *job, dst topology.NodeID) {
	if !j.repair {
		return
	}
	dg := s.dg
	atomic.AddInt64(&dg.stats.Repairs, 1)
	dg.hRepair.Observe(dg.k.Now().Sub(j.t0))
	dg.tel.Note("datagrid", "repair complete: "+j.name, int(dst), int64(j.src), 0)
}

// scheduler runs replication jobs on a fixed pool of worker Procs, so
// many PUT/GET/replication transfers proceed concurrently while the
// per-transfer windows keep each one flow-controlled.
// flightKey identifies one queued-or-running copy: this object toward
// this destination.
type flightKey struct {
	name string
	dst  topology.NodeID
}

type scheduler struct {
	dg       *DataGrid
	queue    *vtime.Queue[*job]
	pending  int
	inflight map[flightKey]int
	idle     *vtime.Cond
	errs     []error
}

func newScheduler(dg *DataGrid, workers int) *scheduler {
	s := &scheduler{
		dg:       dg,
		queue:    vtime.NewQueue[*job]("datagrid:jobs"),
		inflight: make(map[flightKey]int),
		idle:     vtime.NewCond("datagrid:idle"),
	}
	for i := 0; i < workers; i++ {
		dg.k.GoDaemon(fmt.Sprintf("dg-worker%d", i), s.work)
	}
	return s
}

func (s *scheduler) submit(j *job) {
	// The worker pool is long-lived: a job crossing the queue would lose
	// its causal ancestry, so the submitter's context rides on the job
	// and the worker reinstates it for the transfer's duration.
	j.ctx = s.dg.k.TraceCtx()
	s.pending++
	for _, k := range j.keys() {
		s.inflight[k]++
	}
	s.queue.Push(j)
}

// keys lists the (object, destination) pairs the job will deliver.
func (j *job) keys() []flightKey {
	if len(j.dsts) == 0 {
		return []flightKey{{j.name, j.dst}}
	}
	out := make([]flightKey, len(j.dsts))
	for i, d := range j.dsts {
		out[i] = flightKey{j.name, d}
	}
	return out
}

// inflightTo reports whether a queued or running job is already
// carrying the object to dst. The anti-entropy scan skips such
// targets: re-submitting would transfer the same bytes twice and
// double-count the repair.
func (s *scheduler) inflightTo(name string, dst topology.NodeID) bool {
	return s.inflight[flightKey{name, dst}] > 0
}

func (s *scheduler) work(p *vtime.Proc) {
	for {
		j := s.queue.Pop(p)
		prev := s.dg.k.SetTraceCtx(j.ctx)
		s.run(p, j)
		s.dg.k.SetTraceCtx(prev)
		for _, k := range j.keys() {
			if s.inflight[k]--; s.inflight[k] == 0 {
				delete(s.inflight, k)
			}
		}
		s.pending--
		if s.pending == 0 {
			s.idle.Broadcast()
		}
	}
}

func (s *scheduler) run(p *vtime.Proc, j *job) {
	dg := s.dg
	meta, ok := dg.catalog[j.name]
	if !ok {
		s.fail(fmt.Errorf("%w: %s dropped from the catalog", ErrNoObject, j.name))
		atomic.AddInt64(&dg.stats.Failures, 1)
		return
	}
	if len(j.dsts) > 0 {
		s.runGroup(p, j, meta)
		return
	}
	if dg.NodeDown(j.dst) {
		// The destination died while the job sat in the queue. Not a
		// failure: the repair loop restores the copy once the node is
		// marked up again (or the placement moves off it).
		dg.tel.Note("datagrid", "job dropped: destination down", int(j.dst), 0, 0)
		return
	}
	if _, ok := dg.freshCopy(meta, j.dst); ok {
		return // destination already converged (duplicate submission)
	}
	// The job may have queued behind a membership change, a newer
	// version, or a source crash: replicate only from a reachable
	// source whose bytes match the catalogued checksum (a stale copy
	// would transfer "successfully" — the wire verifies the sender's
	// own checksum, not the catalog's).
	data, ok := dg.freshCopy(meta, j.src)
	if !ok || dg.NodeDown(j.src) {
		src, found := dg.freshHolder(meta, j.dst)
		if !found {
			s.fail(fmt.Errorf("%w: %s has no up-to-date source", ErrNoReplica, j.name))
			atomic.AddInt64(&dg.stats.Failures, 1)
			return
		}
		j.src = src
		data, _ = dg.freshCopy(meta, src)
	}
	dg.EngineOn(j.src).Read(p, j.name) // charge the source engine's read
	got, err := dg.runTransfer(p, j.src, j.dst, j.name, data)
	if err != nil {
		s.fail(fmt.Errorf("%s -> node %d: %w", j.name, j.dst, err))
		return
	}
	dg.storePut(p, j.dst, j.name, got, meta.Sum)
	s.finishRepair(j, j.dst)
}

// runGroup serves one multi-target replication job with hierarchical
// multicasts: the whole remaining target set per attempt, shrinking to
// the members that failed verification. Delivered copies are stored as
// they verify, so a partially failed attempt still makes progress.
func (s *scheduler) runGroup(p *vtime.Proc, j *job, meta *ObjectMeta) {
	dg := s.dg
	remaining := make([]topology.NodeID, 0, len(j.dsts))
	for _, t := range j.dsts {
		if dg.NodeDown(t) {
			continue // left to the repair loop, like any down destination
		}
		if _, ok := dg.freshCopy(meta, t); !ok {
			remaining = append(remaining, t)
		}
	}
	if len(remaining) == 0 {
		return // every destination already converged (or died in queue)
	}
	data, ok := dg.freshCopy(meta, j.src)
	if !ok || dg.NodeDown(j.src) {
		src, found := dg.freshHolder(meta, remaining[0])
		if !found {
			s.fail(fmt.Errorf("%w: %s has no up-to-date source", ErrNoReplica, j.name))
			atomic.AddInt64(&dg.stats.Failures, 1)
			return
		}
		j.src = src
		data, _ = dg.freshCopy(meta, src)
	}
	// Only the submitted full placement set lives in the long-lived
	// group cache; a fan-out some other worker already partially
	// converged, and every shrunken retry set, runs on a transient
	// group released when done — no cache entry (each with its own open
	// WAN channels) per convergence pattern.
	var transient *group.Group
	defer func() {
		if transient != nil {
			dg.dropGroup(transient)
		}
	}()
	var grp *group.Group
	var gerr error
	if len(remaining) == len(j.dsts) {
		grp, gerr = dg.groupFor(append([]topology.NodeID{j.src}, remaining...))
	} else {
		grp, gerr = dg.newGroup(append([]topology.NodeID{j.src}, remaining...))
		transient = grp
	}
	if gerr != nil {
		s.fail(gerr)
		atomic.AddInt64(&dg.stats.Failures, 1)
		return
	}
	atomic.AddInt64(&dg.stats.Jobs, 1)
	dg.EngineOn(j.src).Read(p, j.name)             // charge the source engine's read
	p.Consume(model.MemcpyPerByte.Cost(len(data))) // checksum pass over the payload
	var lastErr error
	for attempt := 1; attempt <= dg.cfg.MaxRetries; attempt++ {
		got, err := grp.Multicast(p, j.src, j.name, data, attempt)
		dg.syncGroupWAN(grp)
		for _, t := range remaining {
			if copyBytes, ok := got[t]; ok {
				dg.storePut(p, t, j.name, copyBytes, meta.Sum)
				atomic.AddInt64(&dg.stats.BytesMoved, int64(len(copyBytes)))
				s.finishRepair(j, t)
			}
		}
		if err == nil {
			atomic.AddInt64(&dg.stats.GroupFanouts, 1)
			return
		}
		lastErr = err
		atomic.AddInt64(&dg.stats.Retries, 1)
		next := remaining[:0]
		for _, t := range remaining {
			if _, ok := dg.freshCopy(meta, t); !ok {
				next = append(next, t)
			}
		}
		remaining = next
		if len(remaining) == 0 { // partial error but everyone converged
			atomic.AddInt64(&dg.stats.Retries, -1)
			atomic.AddInt64(&dg.stats.GroupFanouts, 1)
			return
		}
		if attempt == dg.cfg.MaxRetries {
			break
		}
		retryGrp, gerr := dg.newGroup(append([]topology.NodeID{j.src}, remaining...))
		if gerr != nil {
			s.fail(gerr)
			atomic.AddInt64(&dg.stats.Failures, 1)
			return
		}
		if transient != nil {
			dg.dropGroup(transient)
		}
		transient, grp = retryGrp, retryGrp
	}
	atomic.AddInt64(&dg.stats.Retries, -1) // the final attempt was a failure, not a retry
	atomic.AddInt64(&dg.stats.Failures, 1)
	dg.tel.DumpFlight("datagrid fan-out failed: " + j.name)
	s.fail(fmt.Errorf("%w: %s fan-out to %v: %v", ErrJobFailed, j.name, remaining, lastErr))
}

func (s *scheduler) fail(err error) {
	s.dg.tel.Note("datagrid", "job failed", 0, int64(len(s.errs)+1), 0)
	s.errs = append(s.errs, err)
}

func (s *scheduler) waitSettled(p *vtime.Proc) {
	for s.pending > 0 {
		s.idle.Wait(p)
	}
}
