package netaccess_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"padico/internal/drivers/gm"
	"padico/internal/ipstack"
	"padico/internal/madapi"
	"padico/internal/madeleine"
	"padico/internal/model"
	"padico/internal/netaccess"
	"padico/internal/netsim"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// rig is a two-node Myrinet + Ethernet testbed with NetAccess on each.
type rig struct {
	k        *vtime.Kernel
	na       [2]*netaccess.NetAccess
	mio      [2]*netaccess.MadIO
	sys      [2]*netaccess.SysIO
	hosts    [2]*ipstack.Host
	combined bool
}

func newRig(t *testing.T, combining bool) *rig {
	t.Helper()
	k := vtime.NewKernel()
	r := &rig{k: k, combined: combining}
	xb := netsim.NewCrossbar(k, topology.Myrinet, model.MyrinetRate, model.MyrinetPktOverhd, model.MyrinetWireLat)
	lan := netsim.NewSwitchedLAN(k, model.EthernetRate, model.EthernetFrameOH, model.EthernetWireLat, 0, 1)
	st := ipstack.New(k)
	st.ConnectLAN(lan, 0, 0, 1, 1, model.EthernetMTU)
	group := []int{0, 1}
	for i := 0; i < 2; i++ {
		r.na[i] = netaccess.New(k, string(rune('a'+i)))
		ad := madeleine.New(k, madeleine.NewGM(gm.OpenNIC(k, xb, i), group), i, 2)
		ch, err := ad.Open(0)
		if err != nil {
			t.Fatal(err)
		}
		r.mio[i] = netaccess.NewMadIO(r.na[i], ch, "myri", combining)
		r.sys[i] = netaccess.NewSysIO(r.na[i])
		r.hosts[i] = st.Host(topology.NodeID(i))
	}
	return r
}

func TestMadIOMultiplexesLogicalChannels(t *testing.T) {
	r := newRig(t, true)
	if err := r.k.Run(func(p *vtime.Proc) {
		got := vtime.NewQueue[string]("got")
		for _, id := range []uint16{10, 20, 30} {
			id := id
			r.mio[1].Register(id, func(q *vtime.Proc, src int, in madapi.InMessage) {
				data := in.Unpack(5, madapi.ReceiveCheaper)
				in.EndUnpacking()
				got.Push(string(rune('0'+id/10)) + string(data))
			})
		}
		r.mio[0].Send(1, 20, []byte("hello"))
		r.mio[0].Send(1, 10, []byte("world"))
		r.mio[0].Send(1, 30, []byte("third"))
		want := []string{"2hello", "1world", "3third"}
		for _, w := range want {
			if g := got.Pop(p); g != w {
				t.Errorf("got %q, want %q", g, w)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMadIOSeparateHeaderMode(t *testing.T) {
	r := newRig(t, false)
	if err := r.k.Run(func(p *vtime.Proc) {
		got := vtime.NewQueue[[]byte]("got")
		r.mio[1].Register(7, func(q *vtime.Proc, src int, in madapi.InMessage) {
			got.Push(in.Unpack(4, madapi.ReceiveCheaper))
			in.EndUnpacking()
		})
		r.mio[0].Send(1, 7, []byte("data"))
		if g := got.Pop(p); string(g) != "data" {
			t.Errorf("got %q", g)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// The core claim of §4.1: header combining makes multiplexing nearly
// free. Measure MadIO ping-pong latency both ways; the difference must
// exceed the separate-header penalty and combined overhead must be tiny.
func TestHeaderCombiningOverhead(t *testing.T) {
	lat := func(combining bool) time.Duration {
		r := newRig(t, combining)
		var oneway time.Duration
		if err := r.k.Run(func(p *vtime.Proc) {
			pong := vtime.NewQueue[struct{}]("pong")
			r.mio[1].Register(1, func(q *vtime.Proc, src int, in madapi.InMessage) {
				in.Unpack(1, madapi.ReceiveCheaper)
				in.EndUnpacking()
				r.mio[1].Send(src, 1, []byte{1})
			})
			r.mio[0].Register(1, func(q *vtime.Proc, src int, in madapi.InMessage) {
				in.Unpack(1, madapi.ReceiveCheaper)
				in.EndUnpacking()
				pong.Push(struct{}{})
			})
			const rounds = 100
			start := p.Now()
			for i := 0; i < rounds; i++ {
				r.mio[0].Send(1, 1, []byte{1})
				pong.Pop(p)
			}
			oneway = p.Now().Sub(start) / (2 * rounds)
		}); err != nil {
			t.Fatal(err)
		}
		return oneway
	}
	with := lat(true)
	without := lat(false)
	overhead := with - 8200*time.Nanosecond // Madeleine/GM baseline ~8.2 µs
	if overhead > 300*time.Nanosecond {
		t.Errorf("combined-mode MadIO overhead = %v, want < 0.3 µs", overhead)
	}
	if without-with < 500*time.Nanosecond {
		t.Errorf("separate headers should cost much more: with=%v without=%v", with, without)
	}
}

func TestSysIOCallbackDriven(t *testing.T) {
	r := newRig(t, true)
	if err := r.k.Run(func(p *vtime.Proc) {
		lnReady := vtime.NewQueue[*ipstack.TCPConn]("accepted")
		ln, _ := r.hosts[1].Listen(80)
		r.sys[1].RegisterListener(ln, func(q *vtime.Proc) {
			c, _ := ln.AcceptTimeout(q, 0)
			if c != nil {
				lnReady.Push(c)
			}
		})
		conn, err := r.hosts[0].Dial(p, 1, 80)
		if err != nil {
			t.Fatal(err)
		}
		srv := lnReady.Pop(p)

		var rx bytes.Buffer
		r.sys[1].RegisterConn(srv, func(q *vtime.Proc) {
			buf := make([]byte, 4096)
			for srv.Readable() {
				n, err := srv.Read(q, buf)
				rx.Write(buf[:n])
				if err != nil {
					return
				}
			}
		})
		msg := make([]byte, 20000)
		rand.New(rand.NewSource(4)).Read(msg)
		conn.Write(p, msg)
		p.Sleep(100 * time.Millisecond)
		if !bytes.Equal(rx.Bytes(), msg) {
			t.Fatalf("SysIO delivered %d bytes, want %d", rx.Len(), len(msg))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Two middleware systems (one per paradigm) share the node: MadIO and
// SysIO traffic must both make progress — the arbitration claim.
func TestConcurrentParadigmsBothProgress(t *testing.T) {
	r := newRig(t, true)
	if err := r.k.Run(func(p *vtime.Proc) {
		madCount, sysCount := 0, 0
		r.mio[1].Register(2, func(q *vtime.Proc, src int, in madapi.InMessage) {
			in.Unpack(1024, madapi.ReceiveCheaper)
			in.EndUnpacking()
			madCount++
		})
		ln, _ := r.hosts[1].Listen(80)
		acc := vtime.NewQueue[*ipstack.TCPConn]("acc")
		r.sys[1].RegisterListener(ln, func(q *vtime.Proc) {
			if c, ok := ln.AcceptTimeout(q, 0); ok {
				acc.Push(c)
			}
		})
		conn, err := r.hosts[0].Dial(p, 1, 80)
		if err != nil {
			t.Fatal(err)
		}
		srv := acc.Pop(p)
		r.sys[1].RegisterConn(srv, func(q *vtime.Proc) {
			buf := make([]byte, 4096)
			for srv.Readable() {
				n, _ := srv.Read(q, buf)
				sysCount += n
			}
		})
		// Interleave both kinds of traffic.
		blob := make([]byte, 1024)
		for i := 0; i < 50; i++ {
			r.mio[0].Send(1, 2, blob)
			conn.Write(p, blob)
		}
		p.Sleep(200 * time.Millisecond)
		if madCount != 50 {
			t.Errorf("MadIO messages = %d, want 50", madCount)
		}
		if sysCount != 50*1024 {
			t.Errorf("SysIO bytes = %d, want %d", sysCount, 50*1024)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityPolicyIsTunable(t *testing.T) {
	r := newRig(t, true)
	r.na[1].SetPriority(4, 1)
	if err := r.k.Run(func(p *vtime.Proc) {
		n := 0
		r.mio[1].Register(3, func(q *vtime.Proc, src int, in madapi.InMessage) {
			in.Unpack(1, madapi.ReceiveCheaper)
			in.EndUnpacking()
			n++
		})
		for i := 0; i < 10; i++ {
			r.mio[0].Send(1, 3, []byte{0})
		}
		p.Sleep(10 * time.Millisecond)
		if n != 10 {
			t.Errorf("delivered %d of 10 under skewed priority", n)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateLogicalChannelPanics(t *testing.T) {
	r := newRig(t, true)
	err := r.k.Run(func(p *vtime.Proc) {
		h := func(q *vtime.Proc, src int, in madapi.InMessage) {}
		r.mio[0].Register(5, h)
		r.mio[0].Register(5, h)
	})
	if err == nil {
		t.Fatal("duplicate Register did not panic")
	}
}
