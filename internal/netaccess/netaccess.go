// Package netaccess implements the paper's arbitration layer (§3.3,
// §4.1): the only client of system-level networking resources, giving
// every layer above a consistent, reentrant and multiplexed view.
//
// Three pieces, as in PadicoTM:
//
//   - MadIO: logical multiplexing over Madeleine channels. The hardware
//     allows 2 channels on Myrinet and 1 on SCI; MadIO multiplexes an
//     arbitrary number of logical channels over one of them, with
//     *header combining*: the demultiplexing header travels as one more
//     segment of the same hardware message, so multiplexing costs
//     almost nothing (paper: "less than 0.1 µs"). The combining can be
//     disabled to measure the alternative (a separate header message).
//
//   - SysIO: a unique receipt loop over system sockets. Registered
//     sockets signal readiness; the loop invokes user callbacks, which
//     removes the reentrance and starvation problems of mixing
//     blocking I/O, signals and active polling (paper §4.1).
//
//   - Core: one I/O manager that interleaves MadIO and SysIO
//     dispatching under a user-tunable fairness policy
//     (SetPriority), and parks when idle.
//
// All callbacks run on the node's I/O manager process; they must not
// block (they may Consume CPU time).
package netaccess

import (
	"encoding/binary"
	"fmt"

	"padico/internal/ipstack"
	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/vtime"
)

// Source is anything the core can poll for one dispatchable event.
type Source interface {
	// DispatchOne handles at most one pending event; it reports whether
	// it did any work. p is the I/O manager process (for Consume).
	DispatchOne(p *vtime.Proc) bool
	// Name identifies the source in diagnostics.
	Name() string
	// Parallel reports whether this source feeds the parallel-paradigm
	// side (MadIO) or the distributed side (SysIO) of the fairness policy.
	Parallel() bool
}

// NetAccess is the per-node arbitration instance.
type NetAccess struct {
	k       *vtime.Kernel
	name    string
	sources []Source
	work    *vtime.Cond
	madPrio int
	sysPrio int

	Dispatches int64
}

// New creates the arbitration layer for one node and starts its I/O
// manager daemon.
func New(k *vtime.Kernel, name string) *NetAccess {
	na := &NetAccess{
		k: k, name: name,
		work:    vtime.NewCond("netaccess:" + name),
		madPrio: 1, sysPrio: 1,
	}
	k.GoDaemon("ioman:"+name, na.loop)
	return na
}

// SetPriority tunes the interleaving policy: up to mad MadIO events are
// dispatched for every sys SysIO events (paper §4.1: "dynamically
// user-tunable through a configuration API").
func (na *NetAccess) SetPriority(mad, sys int) {
	if mad < 1 {
		mad = 1
	}
	if sys < 1 {
		sys = 1
	}
	na.madPrio, na.sysPrio = mad, sys
}

// AddSource registers a pollable source (a MadIO instance or the SysIO
// singleton register it themselves on construction).
func (na *NetAccess) AddSource(s Source) {
	na.sources = append(na.sources, s)
	na.kick()
}

// kick wakes the I/O manager; callable from kernel context.
func (na *NetAccess) kick() { na.work.Signal() }

// loop is the I/O manager: interleave parallel- and distributed-side
// dispatching according to the priority policy; park when idle.
func (na *NetAccess) loop(p *vtime.Proc) {
	for {
		worked := false
		// Parallel-side burst.
		for i := 0; i < na.madPrio; i++ {
			if !na.dispatchSide(p, true) {
				break
			}
			worked = true
		}
		// Distributed-side burst.
		for i := 0; i < na.sysPrio; i++ {
			if !na.dispatchSide(p, false) {
				break
			}
			worked = true
		}
		if !worked {
			na.work.Wait(p)
		}
	}
}

// dispatchSide dispatches one event from any source of the given side.
func (na *NetAccess) dispatchSide(p *vtime.Proc, parallel bool) bool {
	for _, s := range na.sources {
		if s.Parallel() != parallel {
			continue
		}
		if s.DispatchOne(p) {
			na.Dispatches++
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// MadIO

// Handler consumes one demultiplexed incoming message. It runs on the
// I/O manager process and must unpack the remaining segments and call
// EndUnpacking. It must not block.
type Handler func(p *vtime.Proc, src int, in madapi.InMessage)

// MadIO multiplexes logical channels over one Madeleine channel.
type MadIO struct {
	na        *NetAccess
	ch        madapi.Channel
	name      string
	combining bool
	handlers  map[uint16]Handler
	pendingID map[int]uint16 // src -> logical id of separated header already seen
	pendingOK map[int]bool
	// released remembers ids whose binding was removed: late messages
	// for them (a peer's sends in flight across a close — routine
	// during failure recovery) are dropped, not a protocol violation.
	released map[uint16]bool

	MsgsSent    int64
	MsgsRecv    int64
	MsgsDropped int64
}

// NewMadIO builds a MadIO over a Madeleine channel and registers it
// with the arbitration core. combining selects header combining (the
// paper's design) or the separate-header ablation.
func NewMadIO(na *NetAccess, ch madapi.Channel, name string, combining bool) *MadIO {
	m := &MadIO{
		na: na, ch: ch, name: name, combining: combining,
		handlers:  make(map[uint16]Handler),
		pendingID: make(map[int]uint16),
		pendingOK: make(map[int]bool),
		released:  make(map[uint16]bool),
	}
	type notifiable interface{ SetRxNotify(func()) }
	if n, ok := ch.(notifiable); ok {
		n.SetRxNotify(na.kick)
	}
	na.AddSource(m)
	return m
}

// Name implements Source.
func (m *MadIO) Name() string { return "madio:" + m.name }

// Parallel implements Source.
func (m *MadIO) Parallel() bool { return true }

// Channel returns the underlying Madeleine channel (rank addressing).
func (m *MadIO) Channel() madapi.Channel { return m.ch }

// Register binds a logical channel id to a handler. Ids are allocated
// by convention by the layers above (VLink, Circuit, middleware).
func (m *MadIO) Register(logical uint16, h Handler) {
	if _, dup := m.handlers[logical]; dup {
		panic(fmt.Sprintf("netaccess: logical channel %d registered twice on %s", logical, m.name))
	}
	delete(m.released, logical) // a recycled id is live again
	m.handlers[logical] = h
}

// Unregister removes a logical channel binding. Messages still in
// flight toward the id are dropped on arrival (see dispatch).
func (m *MadIO) Unregister(logical uint16) {
	delete(m.handlers, logical)
	m.released[logical] = true
}

// Send transmits segments on a logical channel to dst (a Madeleine
// rank). With combining, the 2-byte demux header is one more segment of
// the same hardware message; without, it is a separate message.
func (m *MadIO) Send(dst int, logical uint16, segs ...[]byte) {
	m.MsgsSent++
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], logical)
	cost := model.MadIOCombinedCost
	if !m.combining {
		cost = model.MadIOSeparateCost
	}
	m.na.k.Schedule(cost, func() {
		if m.combining {
			out := m.ch.BeginPacking(dst)
			out.Pack(hdr[:], madapi.SendSafer)
			for _, s := range segs {
				out.Pack(s, madapi.SendLater)
			}
			out.EndPacking()
			return
		}
		// Ablation: header as its own hardware message, then the payload.
		oh := m.ch.BeginPacking(dst)
		oh.Pack(hdr[:], madapi.SendSafer)
		oh.EndPacking()
		op := m.ch.BeginPacking(dst)
		for _, s := range segs {
			op.Pack(s, madapi.SendLater)
		}
		op.EndPacking()
	})
}

// DispatchOne implements Source: demultiplex one hardware message.
func (m *MadIO) DispatchOne(p *vtime.Proc) bool {
	in, ok := m.ch.TryBeginUnpacking()
	if !ok {
		return false
	}
	cost := model.MadIOCombinedCost
	if !m.combining {
		cost = model.MadIOSeparateCost
	}
	p.Consume(cost)
	src := in.Src()
	if m.combining {
		hdr := in.Unpack(2, madapi.ReceiveExpress)
		logical := binary.BigEndian.Uint16(hdr)
		m.dispatch(p, logical, src, in)
		return true
	}
	// Separate-header mode: header and payload messages alternate per
	// source (MadIO controls both sides of the protocol).
	if !m.pendingOK[src] {
		hdr := in.Unpack(2, madapi.ReceiveExpress)
		in.EndUnpacking()
		m.pendingID[src] = binary.BigEndian.Uint16(hdr)
		m.pendingOK[src] = true
		return true
	}
	logical := m.pendingID[src]
	m.pendingOK[src] = false
	m.dispatch(p, logical, src, in)
	return true
}

func (m *MadIO) dispatch(p *vtime.Proc, logical uint16, src int, in madapi.InMessage) {
	h, ok := m.handlers[logical]
	if !ok {
		if m.released[logical] {
			// The endpoint closed while this message was on the wire —
			// a normal race when a node crash tears channels down. The
			// bytes have nowhere to go; drop them.
			m.MsgsDropped++
			in.Discard()
			return
		}
		panic(fmt.Sprintf("netaccess: message for unregistered logical channel %d on %s", logical, m.name))
	}
	m.MsgsRecv++
	h(p, src, in)
}

// ---------------------------------------------------------------------
// SysIO

// SockHandler runs when a registered socket becomes ready; it must
// drain what it needs without blocking.
type SockHandler func(p *vtime.Proc)

// SysIO is the unique receipt loop over system sockets.
type SysIO struct {
	na    *NetAccess
	ready *vtime.Queue[*regEntry]

	Callbacks int64
}

type regEntry struct {
	cb       SockHandler
	queued   bool
	readable func() bool
}

// NewSysIO builds the SysIO subsystem and registers it with the core.
func NewSysIO(na *NetAccess) *SysIO {
	s := &SysIO{na: na, ready: vtime.NewQueue[*regEntry]("sysio:" + na.name)}
	s.ready.OnPush = na.kick
	na.AddSource(s)
	return s
}

// Name implements Source.
func (s *SysIO) Name() string { return "sysio" }

// Parallel implements Source.
func (s *SysIO) Parallel() bool { return false }

// DispatchOne implements Source: run one ready callback. A callback
// that deliberately leaves data unread re-arms itself through the
// socket's PokeReady (as the VLink sysio driver does on its next
// PostRead); unconditional requeueing would spin the manager.
func (s *SysIO) DispatchOne(p *vtime.Proc) bool {
	e, ok := s.ready.TryPop()
	if !ok {
		return false
	}
	e.queued = false
	s.Callbacks++
	e.cb(p)
	return true
}

// register wires an entry's readiness signal into the ready queue.
func (s *SysIO) register(setReady func(func()), readable func() bool, cb SockHandler) *regEntry {
	e := &regEntry{cb: cb, readable: readable}
	setReady(func() {
		if !e.queued {
			e.queued = true
			s.ready.Push(e)
		}
	})
	return e
}

// RegisterConn arranges for cb to run whenever conn has readable data
// (or EOF).
func (s *SysIO) RegisterConn(conn *ipstack.TCPConn, cb SockHandler) {
	s.register(conn.SetReadyHandler, conn.Readable, cb)
}

// RegisterListener arranges for cb to run whenever a connection is
// waiting to be accepted.
func (s *SysIO) RegisterListener(ln *ipstack.Listener, cb SockHandler) {
	s.register(ln.SetReadyHandler, func() bool { return ln.Pending() > 0 }, cb)
}

// RegisterUDP arranges for cb to run whenever a datagram is queued.
func (s *SysIO) RegisterUDP(u *ipstack.UDPConn, cb SockHandler) {
	s.register(u.SetReadyHandler, func() bool { return u.Pending() > 0 }, cb)
}
