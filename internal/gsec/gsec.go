// Package gsec implements the security communication method of §3.2
// ("Encryption and authentication ... through the use of a protocol
// plug-in", in the spirit of GSI): a VLink wrapper driver that performs
// mutual authentication with pre-shared-key certificates at connect
// time, then protects the stream with AES-CTR encryption and
// HMAC-SHA256 integrity per record.
//
// The selector applies it per-link: ciphering is pointless on secure
// machine-room networks and mandated on inter-site links (§2.1).
package gsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"padico/internal/iovec"
	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ErrAuth is returned when the peer fails the handshake.
var ErrAuth = errors.New("gsec: authentication failed")

const (
	nonceLen  = 16
	macLen    = 16 // truncated HMAC-SHA256
	recHdrLen = 4
)

// Credential is a pre-shared-key "certificate" (the paper leaves full
// GSI certificate chains and delegation as future work).
type Credential struct {
	ID  string
	Key []byte
}

// Driver decorates an inner VLink driver with authentication and
// encryption.
type Driver struct {
	k     *vtime.Kernel
	inner vlink.Driver
	cred  Credential
	seq   uint64

	Handshakes int64
	AuthFails  int64
}

// New builds a gsec driver over inner with the given credential. Both
// ends must hold the same key.
func New(k *vtime.Kernel, inner vlink.Driver, cred Credential) *Driver {
	return &Driver{k: k, inner: inner, cred: cred}
}

// Name implements vlink.Driver.
func (d *Driver) Name() string { return "gsec" }

// Listen implements vlink.Driver.
func (d *Driver) Listen(port int) (vlink.Listener, error) {
	il, err := d.inner.Listen(port)
	if err != nil {
		return nil, err
	}
	l := &listener{d: d, il: il}
	il.SetAcceptHandler(func(c vlink.Conn) {
		d.handshake(c, false, func(sc vlink.Conn, err error) {
			if err != nil {
				c.Close()
				return
			}
			if l.accept != nil {
				l.accept(sc)
			}
		})
	})
	return l, nil
}

type listener struct {
	d      *Driver
	il     vlink.Listener
	accept func(vlink.Conn)
}

func (l *listener) SetAcceptHandler(fn func(vlink.Conn)) { l.accept = fn }
func (l *listener) Close()                               { l.il.Close() }

// Dial implements vlink.Driver.
func (d *Driver) Dial(addr vlink.Addr, cb func(vlink.Conn, error)) {
	d.inner.Dial(addr, func(c vlink.Conn, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		d.handshake(c, true, cb)
	})
}

// handshake: both sides send [idLen][id][nonce][HMAC(key, id||nonce)],
// verify the peer's proof, and derive the session key
// HMAC(key, dialerNonce || acceptorNonce).
func (d *Driver) handshake(c vlink.Conn, dialer bool, cb func(vlink.Conn, error)) {
	d.Handshakes++
	d.seq++
	var myNonce [nonceLen]byte
	// Deterministic nonce: derived from the driver identity and a
	// sequence number (the simulation has no entropy source).
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%v", d.cred.ID, d.seq, dialer)))
	copy(myNonce[:], sum[:nonceLen])

	hello := buildHello(d.cred, myNonce[:])
	c.PostWrite(hello, func(int, error) {})

	// Read the peer hello (variable length: read header then rest).
	hdr := make([]byte, 2)
	readFull(c, hdr, func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		idLen := int(binary.BigEndian.Uint16(hdr))
		rest := make([]byte, idLen+nonceLen+macLen)
		readFull(c, rest, func(err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			peerID := string(rest[:idLen])
			peerNonce := rest[idLen : idLen+nonceLen]
			proof := rest[idLen+nonceLen:]
			if !verifyHello(d.cred, peerID, peerNonce, proof) {
				d.AuthFails++
				cb(nil, ErrAuth)
				return
			}
			var a, b []byte
			if dialer {
				a, b = myNonce[:], peerNonce
			} else {
				a, b = peerNonce, myNonce[:]
			}
			mac := hmac.New(sha256.New, d.cred.Key)
			mac.Write(a)
			mac.Write(b)
			session := mac.Sum(nil) // 32 bytes: 16 for AES key, 16 for IV base
			sc, err := newSecConn(d, c, session)
			cb(sc, err)
		})
	})
}

func buildHello(cred Credential, nonce []byte) []byte {
	mac := hmac.New(sha256.New, cred.Key)
	mac.Write([]byte(cred.ID))
	mac.Write(nonce)
	proof := mac.Sum(nil)[:macLen]
	out := make([]byte, 2+len(cred.ID)+nonceLen+macLen)
	binary.BigEndian.PutUint16(out, uint16(len(cred.ID)))
	copy(out[2:], cred.ID)
	copy(out[2+len(cred.ID):], nonce)
	copy(out[2+len(cred.ID)+nonceLen:], proof)
	return out
}

func verifyHello(cred Credential, id string, nonce, proof []byte) bool {
	mac := hmac.New(sha256.New, cred.Key)
	mac.Write([]byte(id))
	mac.Write(nonce)
	want := mac.Sum(nil)[:macLen]
	return hmac.Equal(want, proof)
}

// readFull reads exactly len(buf) bytes through chained PostReads.
func readFull(c vlink.Conn, buf []byte, done func(error)) {
	got := 0
	var pump func(n int, err error)
	pump = func(n int, err error) {
		got += n
		if err != nil {
			done(err)
			return
		}
		if got < len(buf) {
			c.PostRead(buf[got:], pump)
			return
		}
		done(nil)
	}
	c.PostRead(buf, pump)
}

// secConn is the record layer: AES-CTR with a per-record IV counter per
// direction, HMAC-SHA256 (truncated) per record. Records are strictly
// ordered per direction, so counters need no negotiation.
type secConn struct {
	d      *Driver
	inner  vlink.Conn
	encKey []byte
	macKey []byte
	block  cipher.Block // cached AES block (stateless, reused per record)
	wIV    uint64
	rIV    uint64
	// wHorizon serializes record hand-off to the inner driver on one
	// virtual encryption CPU: records carry strictly ordered counters,
	// so a small record's (cheaper) cost event must never overtake a
	// large one's when an upper wrapper pipelines writes.
	wHorizon vtime.Time

	fp   iovec.Fifo
	rx   iovec.Fifo
	eof  bool
	rbuf []byte
	rcb  func(int, error)
}

func newSecConn(d *Driver, inner vlink.Conn, session []byte) (*secConn, error) {
	c := &secConn{d: d, inner: inner, encKey: session[:16], macKey: session[16:]}
	block, err := aes.NewCipher(c.encKey)
	if err != nil {
		return nil, err
	}
	c.block = block
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		c.feed(buf[:n])
		if err != nil {
			c.eof = true
			c.tryComplete()
			return
		}
		inner.PostRead(buf, pump)
	}
	inner.PostRead(buf, pump)
	return c, nil
}

// Kernel lets VLink charge costs on the right kernel.
func (c *secConn) Kernel() *vtime.Kernel { return c.d.k }

// Peer implements vlink.Conn.
func (c *secConn) Peer() topology.NodeID { return c.inner.Peer() }

// ctrStream builds the AES-CTR keystream for one record (IV derived
// from the record counter).
func (c *secConn) ctrStream(ctr uint64) cipher.Stream {
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[8:], ctr)
	return cipher.NewCTR(c.block, iv[:])
}

func (c *secConn) mac(ctr uint64, ct []byte) []byte {
	m := hmac.New(sha256.New, c.macKey)
	var ctrb [8]byte
	binary.BigEndian.PutUint64(ctrb[:], ctr)
	m.Write(ctrb[:])
	m.Write(ct)
	return m.Sum(nil)[:macLen]
}

// PostWrite implements vlink.Conn: record = [4B len][ciphertext][mac].
func (c *secConn) PostWrite(data []byte, cb func(int, error)) {
	c.PostWritev(iovec.Make(data), cb)
}

// PostWritev implements vlink.VecConn. Encryption transforms bytes, so
// this wrapper copies exactly once: AES-CTR runs segment by segment
// (the keystream is positional, so the ciphertext equals that of the
// flattened plaintext) straight into the pooled record buffer, which
// is released once the inner driver accepted it.
func (c *secConn) PostWritev(v iovec.Vec, cb func(int, error)) {
	ctr := c.wIV
	c.wIV++
	total := v.Len()
	rec := iovec.Get(recHdrLen + total + macLen)
	rb := rec.Bytes()
	binary.BigEndian.PutUint32(rb, uint32(total))
	stream := c.ctrStream(ctr)
	off := recHdrLen
	for _, s := range v.Segs {
		stream.XORKeyStream(rb[off:off+len(s.B)], s.B)
		off += len(s.B)
	}
	ct := rb[recHdrLen : recHdrLen+total]
	copy(rb[recHdrLen+total:], c.mac(ctr, ct))
	cost := model.EncryptPerByte.Cost(total)
	now := c.d.k.Now()
	if c.wHorizon < now {
		c.wHorizon = now
	}
	c.wHorizon = c.wHorizon.Add(cost)
	c.d.k.ScheduleAt(c.wHorizon, func() {
		c.inner.PostWrite(rec.Bytes(), func(int, error) {
			rec.Release()
			cb(total, nil)
		})
	})
}

func (c *secConn) feed(data []byte) {
	c.fp.Write(data)
	for c.fp.Len() >= recHdrLen {
		fb := c.fp.Bytes()
		n := int(binary.BigEndian.Uint32(fb))
		if c.fp.Len() < recHdrLen+n+macLen {
			break
		}
		ct := fb[recHdrLen : recHdrLen+n]
		mac := fb[recHdrLen+n : recHdrLen+n+macLen]
		ctr := c.rIV
		c.rIV++
		if !hmac.Equal(mac, c.mac(ctr, ct)) {
			panic("gsec: record integrity failure")
		}
		// Decrypt straight into the reassembly buffer (single copy).
		c.ctrStream(ctr).XORKeyStream(c.rx.Grow(len(ct)), ct)
		c.fp.Consume(recHdrLen + n + macLen)
	}
	c.tryComplete()
}

func (c *secConn) tryComplete() {
	if c.rcb == nil || (c.rx.Len() == 0 && !c.eof) {
		return
	}
	n := copy(c.rbuf, c.rx.Bytes())
	c.rx.Consume(n)
	cb := c.rcb
	c.rcb, c.rbuf = nil, nil
	var err error
	if n == 0 && c.eof {
		err = io.EOF
	}
	cb(n, err)
}

// PostRead implements vlink.Conn.
func (c *secConn) PostRead(buf []byte, cb func(int, error)) {
	if c.rcb != nil {
		panic("gsec: overlapping PostRead")
	}
	c.rbuf, c.rcb = buf, cb
	c.tryComplete()
}

// Close implements vlink.Conn.
func (c *secConn) Close() { c.inner.Close() }
