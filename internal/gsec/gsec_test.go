package gsec_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"padico/internal/gsec"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

func endpoint(k *vtime.Kernel, key string) *vlink.Endpoint {
	ep := vlink.NewEndpoint(topology.NodeID(0))
	ep.AddDriver(gsec.New(k, vlink.NewLoopbackDriver(k, 0),
		gsec.Credential{ID: "test-ca", Key: []byte(key)}))
	return ep
}

func TestAuthenticatedEncryptedRoundTrip(t *testing.T) {
	k := vtime.NewKernel()
	ep := endpoint(k, "shared-secret")
	payload := make([]byte, 60000)
	rand.New(rand.NewSource(2)).Read(payload)
	var got []byte
	if err := k.Run(func(p *vtime.Proc) {
		ln, err := ep.Listen("gsec", 1)
		if err != nil {
			t.Fatal(err)
		}
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		k.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			v := ln.Accept(q)
			buf := make([]byte, 16<<10)
			for {
				n, err := v.Read(q, buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		})
		v, err := ep.ConnectWait(p, "gsec", vlink.Addr{Node: 0, Port: 1})
		if err != nil {
			t.Fatal(err)
		}
		v.Write(p, payload)
		v.Close()
		done.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ciphered stream corrupted")
	}
}

func TestWrongKeyRefused(t *testing.T) {
	k := vtime.NewKernel()
	// Two drivers with different PSKs on the same node: the dialer must
	// be rejected by the acceptor's verification.
	good := vlink.NewEndpoint(topology.NodeID(0))
	inner := vlink.NewLoopbackDriver(k, 0)
	good.AddDriver(gsec.New(k, inner, gsec.Credential{ID: "ca", Key: []byte("right-key")}))
	evilDrv := gsec.New(k, inner, gsec.Credential{ID: "ca", Key: []byte("wrong-key")})
	evil := vlink.NewEndpoint(topology.NodeID(0))
	evil.AddDriver(evilDrv)

	if err := k.Run(func(p *vtime.Proc) {
		ln, err := good.Listen("gsec", 1)
		if err != nil {
			t.Fatal(err)
		}
		accepted := false
		ln.SetAcceptHandler(func(*vlink.VLink) { accepted = true })
		_, err = evil.ConnectWait(p, "gsec", vlink.Addr{Node: 0, Port: 1})
		if !errors.Is(err, gsec.ErrAuth) {
			t.Fatalf("dial with wrong key: err = %v, want ErrAuth", err)
		}
		if accepted {
			t.Fatal("acceptor produced a link for a failed handshake")
		}
		if evilDrv.AuthFails == 0 {
			t.Fatal("no auth failure recorded")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary chunkings cross the record layer intact.
func TestQuickRecordLayer(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		k := vtime.NewKernel()
		ep := endpoint(k, "k")
		rnd := rand.New(rand.NewSource(int64(trial)))
		var msg []byte
		sizes := make([]int, rnd.Intn(6)+1)
		for i := range sizes {
			sizes[i] = rnd.Intn(9000) + 1
			b := make([]byte, sizes[i])
			rnd.Read(b)
			msg = append(msg, b...)
		}
		var got []byte
		if err := k.Run(func(p *vtime.Proc) {
			ln, _ := ep.Listen("gsec", 1)
			done := vtime.NewWaitGroup("done")
			done.Add(1)
			k.Go("sink", func(q *vtime.Proc) {
				defer done.Done()
				v := ln.Accept(q)
				buf := make([]byte, 4096)
				for {
					n, err := v.Read(q, buf)
					got = append(got, buf[:n]...)
					if err != nil {
						return
					}
				}
			})
			v, err := ep.ConnectWait(p, "gsec", vlink.Addr{Node: 0, Port: 1})
			if err != nil {
				t.Fatal(err)
			}
			off := 0
			for _, n := range sizes {
				v.Write(p, msg[off:off+n])
				off += n
			}
			v.Close()
			done.Wait(p)
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d corrupted", trial)
		}
	}
}
