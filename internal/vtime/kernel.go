// Package vtime implements a deterministic, cooperative discrete-event
// simulation kernel. It is the substrate every other package in this
// repository runs on: simulated network links, protocol stacks,
// middleware systems and benchmark drivers all execute as Procs on a
// Kernel and observe a virtual clock instead of the wall clock.
//
// The execution model is strictly sequential: exactly one Proc (or one
// event handler) runs at any instant, and control is handed over
// explicitly when a Proc blocks, sleeps or exits. Runnable Procs are
// resumed in FIFO order and events fire in (time, sequence) order, so a
// simulation is fully deterministic: the same program produces the same
// virtual trace on every run, regardless of GOMAXPROCS.
//
// Procs are real goroutines, but the kernel guarantees mutual exclusion
// by construction, so simulation state shared between Procs needs no
// locking. Do not share kernel objects with goroutines that are not
// Procs of the same Kernel.
package vtime

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration: virtual durations use the same unit
// and literals (time.Microsecond etc.) as wall-clock durations.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return Duration(t).String() }

// ErrKilled is the panic value used to unwind Procs when the kernel
// shuts down. User code must not recover it; the kernel does.
var errKilled = errors.New("vtime: kernel shut down")

// DeadlockError is returned by Run when every live Proc is blocked and
// no event is pending, i.e. virtual time can no longer advance.
type DeadlockError struct {
	Now     Time
	Blocked []string // "name (reason)" for each parked Proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at t=%v: %d proc(s) blocked: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// PanicError is returned by Run when a Proc or event handler panicked.
type PanicError struct {
	ProcName string
	Value    any
	Stack    []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("vtime: panic in %q: %v\n%s", e.ProcName, e.Value, e.Stack)
}

// TraceCtx is a compact trace context: the identity of the request
// (Trace) and of the span that is causally current (Span). The kernel
// carries one ambient TraceCtx alongside the virtual clock: a spawned
// Proc inherits the spawner's context, a parked Proc saves and restores
// its own across the block, and every scheduled event captures the
// context of its scheduler and reinstates it when it fires. Because
// execution is strictly sequential, the ambient context follows the
// causal chain through the entire simulation — packet hops, ACK
// processing, I/O readiness callbacks — with no per-layer plumbing.
// It is pure data: it never influences scheduling, so determinism is
// unaffected whether or not anyone reads it.
type TraceCtx struct {
	Trace int64 // request (root span) identity; 0 = none
	Span  int64 // causally current span; 0 = none
}

// Zero reports whether the context is empty (no trace in progress).
func (c TraceCtx) Zero() bool { return c == TraceCtx{} }

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulated process: a goroutine scheduled cooperatively by
// the Kernel. All blocking simulation primitives take the Proc so that
// only code running inside a process can block.
type Proc struct {
	k      *Kernel
	name   string
	id     int64
	state  procState
	reason string // why blocked, for deadlock diagnostics

	resume   chan struct{} // kernel -> proc: run
	daemon   bool
	unparkFn func() // cached unpark closure for Sleep/Yield scheduling
	ctx      TraceCtx
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this Proc belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

type event struct {
	at  Time
	seq int64
	fn  func()
	// pooled events (Schedule) have no Timer handle outstanding, so the
	// kernel recycles them after firing; cancellable events (After/At)
	// must not be recycled — a stale Timer.Stop would tombstone an
	// unrelated reuse.
	pooled bool
	ctx    TraceCtx // scheduler's ambient context, reinstated at fire time
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. Create one with NewKernel, spawn
// Procs with Go, then call Run.
type Kernel struct {
	now        Time
	seq        int64
	events     eventHeap
	evFree     []*event // recycled pooled events (Schedule fire-and-forget)
	tombstones int      // Stop-cancelled entries still sitting in the heap
	runnable   []*Proc  // FIFO, head-indexed so the backing array is reused
	rhead      int
	procs      map[int64]*Proc
	parked     chan struct{} // proc -> kernel: I yielded
	running    *Proc
	dead       bool
	failure    error
	nprocs     int64
	cur        TraceCtx // ambient trace context of the running Proc/event

	// Stats, exposed for tests and the bench harness.
	EventsFired   int64
	ProcSwitches  int64
	ProcsSpawned  int64
	ProcsFinished int64

	// Telemetry is an opaque per-kernel observability slot, set by
	// internal/telemetry.Attach. vtime only knows the FailureObserver
	// facet so the dependency points outward.
	Telemetry any
}

// FailureObserver is implemented by a telemetry hub that wants to hear
// about kernel failures (deadlock, proc panic) before Run returns —
// the flight-recorder dump hook.
type FailureObserver interface{ KernelFailure(err error) }

// notifyFailure tells an attached observer about a terminal error.
func (k *Kernel) notifyFailure(err error) {
	if err == nil {
		return
	}
	if fo, ok := k.Telemetry.(FailureObserver); ok {
		fo.KernelFailure(err)
	}
}

// NewKernel returns an empty kernel at t=0.
func NewKernel() *Kernel {
	return &Kernel{
		procs:  make(map[int64]*Proc),
		parked: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// TraceCtx returns the ambient trace context of whatever is currently
// executing (Proc or event handler).
func (k *Kernel) TraceCtx() TraceCtx { return k.cur }

// SetTraceCtx replaces the ambient trace context and returns the
// previous one, for save/restore around an explicit context handoff
// (entering a root span, adopting a wire-carried context).
func (k *Kernel) SetTraceCtx(c TraceCtx) TraceCtx {
	prev := k.cur
	k.cur = c
	return prev
}

// Go spawns a new Proc named name running fn. It may be called before
// Run or from inside a running Proc or event handler. The new Proc is
// appended to the runnable queue; it starts when the scheduler reaches
// it. Procs that outlive the root Proc (network pollers, daemons) are
// unwound when Run returns.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	if k.dead {
		panic("vtime: Go on dead kernel")
	}
	k.nprocs++
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.nprocs,
		state:  stateNew,
		resume: make(chan struct{}),
		ctx:    k.cur, // inherit the spawner's trace context
	}
	p.unparkFn = p.unpark
	k.procs[p.id] = p
	k.ProcsSpawned++
	go func() {
		<-p.resume // wait for first schedule
		k.cur = p.ctx
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, errKilled) {
					// Normal teardown unwind.
					k.parked <- struct{}{}
					return
				}
				if k.failure == nil {
					k.failure = &PanicError{ProcName: p.name, Value: r, Stack: debug.Stack()}
				}
			}
			p.state = stateDone
			delete(k.procs, p.id)
			k.ProcsFinished++
			k.parked <- struct{}{}
		}()
		fn(p)
	}()
	p.state = stateRunnable
	k.runnable = append(k.runnable, p)
	return p
}

// GoDaemon is Go for Procs that are expected to outlive the root Proc
// (pollers, servers). Daemons do not count toward deadlock detection:
// a simulation where only daemons remain blocked terminates normally.
func (k *Kernel) GoDaemon(name string, fn func(p *Proc)) *Proc {
	p := k.Go(name, fn)
	p.daemon = true
	return p
}

// Timer is a cancellable scheduled event.
type Timer struct {
	k       *Kernel
	ev      *event
	stopped bool
}

// Stop cancels the timer; it is a no-op if the timer already fired.
// It returns true if the call prevented the timer from firing.
// Stopped timers leave a tombstone in the event heap; the kernel
// compacts the heap when tombstones outnumber live entries, so a
// workload that arms and cancels timers at a high rate (TCP RTO on
// every ACK round) cannot grow the heap without bound.
func (t *Timer) Stop() bool {
	if t.stopped || t.ev.fn == nil {
		return false
	}
	t.stopped = true
	t.ev.fn = nil // tombstone; heap entry is skipped when popped
	t.k.tombstones++
	t.k.maybeCompact()
	return true
}

// After schedules fn to run at now+d in scheduler context. Handlers must
// be short and non-blocking: they typically complete operations and wake
// Procs. Blocking primitives panic if used from handler context.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	k.seq++
	ev := &event{at: k.now.Add(d), seq: k.seq, fn: fn, ctx: k.cur}
	heap.Push(&k.events, ev)
	return &Timer{k: k, ev: ev}
}

// At schedules fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) *Timer {
	d := t.Sub(k.now)
	return k.After(d, fn)
}

// Schedule is After for fire-and-forget events: no Timer handle is
// returned, which lets the kernel recycle the event object after it
// fires. Hot paths (per-packet fabric steps, per-operation cost
// charges) schedule millions of these; pooling them removes the
// dominant allocation of long simulations. Timing and ordering are
// identical to After.
func (k *Kernel) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.seq++
	var ev *event
	if n := len(k.evFree); n > 0 {
		ev = k.evFree[n-1]
		k.evFree = k.evFree[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = k.now.Add(d)
	ev.seq = k.seq
	ev.fn = fn
	ev.pooled = true
	ev.ctx = k.cur
	heap.Push(&k.events, ev)
}

// ScheduleAt is Schedule at absolute virtual time t (clamped to now).
func (k *Kernel) ScheduleAt(t Time, fn func()) { k.Schedule(t.Sub(k.now), fn) }

// maybeCompact rebuilds the event heap without tombstones once they
// outnumber the live entries. Pop order is governed by the total
// (at, seq) order, so compaction never changes which event fires next.
func (k *Kernel) maybeCompact() {
	if k.tombstones <= len(k.events)/2 || len(k.events) < 64 {
		return
	}
	live := k.events[:0]
	for _, ev := range k.events {
		if ev.fn != nil {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(k.events); i++ {
		k.events[i] = nil
	}
	k.events = live
	k.tombstones = 0
	heap.Init(&k.events)
}

// Run executes the simulation: it spawns root and schedules Procs and
// events until root returns. It then unwinds any remaining Procs and
// returns. Run returns an error if any Proc panicked or if the
// simulation deadlocked (no runnable Proc, no pending event, and at
// least one non-daemon Proc blocked) before root completed.
func (k *Kernel) Run(root func(p *Proc)) error {
	if k.dead {
		return errors.New("vtime: Run on dead kernel")
	}
	done := false
	k.Go("root", func(p *Proc) {
		defer func() { done = true }()
		root(p)
	})
	for !done && k.failure == nil {
		if k.rhead < len(k.runnable) {
			p := k.runnable[k.rhead]
			k.runnable[k.rhead] = nil
			k.rhead++
			if k.rhead == len(k.runnable) {
				k.runnable = k.runnable[:0]
				k.rhead = 0
			}
			k.step(p)
			continue
		}
		if !k.fireNextEvent() {
			// Nothing runnable, nothing scheduled.
			if err := k.deadlock(); err != nil {
				k.notifyFailure(err)
				k.teardown()
				return err
			}
			break
		}
	}
	k.notifyFailure(k.failure)
	k.teardown()
	return k.failure
}

// step resumes p and waits for it to yield control back.
func (k *Kernel) step(p *Proc) {
	if p.state == stateDone {
		return
	}
	p.state = stateRunning
	p.reason = ""
	k.running = p
	k.ProcSwitches++
	p.resume <- struct{}{}
	<-k.parked
	k.running = nil
}

// fireNextEvent pops events until one live event has run; it reports
// whether any event fired.
func (k *Kernel) fireNextEvent() bool {
	for len(k.events) > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.fn == nil {
			k.tombstones-- // cancelled; its tombstone leaves the heap here
			continue
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		pooled := ev.pooled
		k.cur = ev.ctx
		k.EventsFired++
		if pooled {
			// Safe to recycle before running: no Timer references this
			// event, and fn was captured above.
			ev.pooled = false
			k.evFree = append(k.evFree, ev)
		}
		fn()
		return true
	}
	return false
}

// deadlock builds a DeadlockError if a non-daemon Proc is blocked.
func (k *Kernel) deadlock() error {
	var blocked []string
	stuck := false
	for _, p := range k.procs {
		if p.state == stateBlocked {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.reason))
			if !p.daemon {
				stuck = true
			}
		}
	}
	if !stuck {
		return nil
	}
	sort.Strings(blocked)
	return &DeadlockError{Now: k.now, Blocked: blocked}
}

// teardown unwinds every remaining Proc by resuming it with the kernel
// marked dead; park points detect this and panic errKilled, which the
// spawn wrapper swallows. This prevents goroutine leaks across tests.
func (k *Kernel) teardown() {
	k.dead = true
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateRunnable {
			p.resume <- struct{}{}
			<-k.parked
		}
	}
	k.runnable = nil
	k.rhead = 0
	k.events = nil
}

// park blocks the calling Proc until something re-queues it via unpark.
// reason is recorded for deadlock diagnostics.
func (p *Proc) park(reason string) {
	k := p.k
	if k.running != p {
		panic(fmt.Sprintf("vtime: park of %q from outside its own context", p.name))
	}
	p.state = stateBlocked
	p.reason = reason
	p.ctx = k.cur // save ambient context across the block
	k.running = nil
	k.parked <- struct{}{}
	<-p.resume
	if k.dead {
		panic(errKilled)
	}
	p.state = stateRunning
	k.running = p
	k.cur = p.ctx
}

// unpark moves p from blocked to the back of the runnable queue. It is
// idempotent for already-runnable Procs and must be called from kernel
// context (another Proc or an event handler).
func (p *Proc) unpark() {
	if p.state != stateBlocked {
		return
	}
	p.state = stateRunnable
	p.k.runnable = append(p.k.runnable, p)
}

// Yield gives other runnable Procs and due events a chance to run before
// p continues, without advancing virtual time.
func (p *Proc) Yield() {
	p.k.Schedule(0, p.unparkFn)
	p.park("yield")
}

// Sleep suspends p for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.k.Schedule(d, p.unparkFn)
	p.park("sleep")
}

// Consume models CPU time spent by this process: it advances virtual
// time by d exactly like Sleep but documents intent at call sites
// (marshalling cost, copy cost, protocol processing).
func (p *Proc) Consume(d Duration) { p.Sleep(d) }
