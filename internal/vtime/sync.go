package vtime

// Cond is a condition variable for simulated processes. Unlike
// sync.Cond there is no associated mutex: the kernel guarantees mutual
// exclusion, so the usual pattern is
//
//	for !predicate() {
//		cond.Wait(p)
//	}
//
// with Signal/Broadcast called by whichever Proc or event handler makes
// the predicate true. Wakeups are FIFO and deterministic.
// The wait list is a head-indexed slice rather than a re-sliced one:
// popping from the front with waiters[1:] strands the backing array's
// capacity, so a busy cond (credit windows, socket readiness) would
// reallocate on nearly every Wait. With the head index the backing is
// reused once drained. Wakeup order is unchanged (FIFO).
type Cond struct {
	name    string
	waiters []*Proc
	head    int
}

// NewCond returns a condition variable; name appears in deadlock
// diagnostics.
func NewCond(name string) *Cond { return &Cond{name: name} }

// Wait parks p until Signal or Broadcast. Spurious wakeups are possible
// (a Signal may race with another waiter's predicate), so always re-check
// the condition in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park("cond:" + c.name)
}

// WaitTimeout parks p until a signal or until d elapses; it reports
// whether it was woken by a signal (true) or by the timeout (false).
// A Proc woken by Signal has already been removed from the wait list,
// so the timer firing later finds nothing to do.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool {
	timedOut := false
	timer := p.k.After(d, func() {
		for i := c.head; i < len(c.waiters); i++ {
			if c.waiters[i] == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				timedOut = true
				p.unpark()
				return
			}
		}
	})
	c.waiters = append(c.waiters, p)
	p.park("cond:" + c.name)
	timer.Stop()
	return !timedOut
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if c.head == len(c.waiters) {
		return
	}
	p := c.waiters[c.head]
	c.waiters[c.head] = nil
	c.head++
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	p.unpark()
}

// Broadcast wakes every current waiter.
func (c *Cond) Broadcast() {
	for i := c.head; i < len(c.waiters); i++ {
		p := c.waiters[i]
		c.waiters[i] = nil
		p.unpark()
	}
	c.waiters = c.waiters[:0]
	c.head = 0
}

// Waiting returns the number of parked waiters.
func (c *Cond) Waiting() int { return len(c.waiters) - c.head }

// Queue is an unbounded FIFO of values with blocking Pop, the basic
// conduit between event handlers (producers, e.g. packet arrivals) and
// Procs (consumers, e.g. polling loops).
// Like Cond, the item list is head-indexed so the backing array is
// reused once drained instead of reallocating under steady traffic.
type Queue[T any] struct {
	items []T
	head  int
	cond  *Cond
	// OnPush, if non-nil, runs after each Push; used by multiplexers to
	// kick a shared poller when any of many queues becomes non-empty.
	OnPush func()
}

// NewQueue returns an empty queue; name appears in deadlock diagnostics.
func NewQueue[T any](name string) *Queue[T] {
	return &Queue[T]{cond: NewCond("queue:" + name)}
}

// Push appends v. Callable from Procs and event handlers.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.cond.Signal()
	if q.OnPush != nil {
		q.OnPush()
	}
}

// TryPop removes and returns the head without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Pop blocks p until an item is available and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.cond.Wait(p)
	}
}

// PopTimeout is Pop bounded by d; ok is false on timeout.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (T, bool) {
	deadline := p.Now().Add(d)
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		remain := deadline.Sub(p.Now())
		if remain <= 0 {
			var zero T
			return zero, false
		}
		q.cond.WaitTimeout(p, remain)
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// WaitGroup mirrors sync.WaitGroup for simulated processes.
type WaitGroup struct {
	n    int
	cond *Cond
}

// NewWaitGroup returns a WaitGroup; name appears in deadlock diagnostics.
func NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{cond: NewCond("waitgroup:" + name)}
}

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("vtime: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n != 0 {
		w.cond.Wait(p)
	}
}

// Semaphore is a counting semaphore with FIFO acquisition order.
type Semaphore struct {
	avail int
	cond  *Cond
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(name string, n int) *Semaphore {
	return &Semaphore{avail: n, cond: NewCond("sem:" + name)}
}

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		s.cond.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a permit without blocking; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit.
func (s *Semaphore) Release() {
	s.avail++
	s.cond.Signal()
}

// Future is a one-shot value container: completed at most once, awaited
// by any number of Procs. It is the kernel-level building block for
// asynchronous completions (VLink operations, MPI requests, RPC replies).
type Future[T any] struct {
	done bool
	val  T
	err  error
	cond *Cond
	// Handler, if set before completion, runs in the completer's context
	// immediately upon completion (active-message style callback).
	Handler func(T, error)
}

// NewFuture returns an incomplete Future.
func NewFuture[T any](name string) *Future[T] {
	return &Future[T]{cond: NewCond("future:" + name)}
}

// Complete resolves the future. Completing twice panics: completions
// represent hardware or protocol events that must be unique.
func (f *Future[T]) Complete(v T, err error) {
	if f.done {
		panic("vtime: Future completed twice")
	}
	f.done = true
	f.val = v
	f.err = err
	f.cond.Broadcast()
	if f.Handler != nil {
		f.Handler(v, err)
	}
}

// Done reports whether the future is resolved (poll interface).
func (f *Future[T]) Done() bool { return f.done }

// Wait blocks p until resolution and returns the value and error.
func (f *Future[T]) Wait(p *Proc) (T, error) {
	for !f.done {
		f.cond.Wait(p)
	}
	return f.val, f.err
}

// Value returns the resolved value and error; it panics if not done.
func (f *Future[T]) Value() (T, error) {
	if !f.done {
		panic("vtime: Value on incomplete Future")
	}
	return f.val, f.err
}
