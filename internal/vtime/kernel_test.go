package vtime

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end Time
	if err := k.Run(func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		p.Sleep(2 * time.Millisecond)
		end = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if end != Time(5*time.Millisecond) {
		t.Fatalf("end = %v, want 5ms", end)
	}
}

func TestZeroSleepYields(t *testing.T) {
	k := NewKernel()
	order := []string{}
	if err := k.Run(func(p *Proc) {
		k.Go("b", func(q *Proc) { order = append(order, "b") })
		p.Sleep(0)
		order = append(order, "a")
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
	if k.Now() != 0 {
		t.Fatalf("clock moved on zero sleep: %v", k.Now())
	}
}

func TestEventOrderDeterministic(t *testing.T) {
	k := NewKernel()
	var got []int
	if err := k.Run(func(p *Proc) {
		// Same timestamp: must fire in scheduling order.
		k.After(time.Millisecond, func() { got = append(got, 1) })
		k.After(time.Millisecond, func() { got = append(got, 2) })
		k.After(time.Microsecond, func() { got = append(got, 0) })
		p.Sleep(2 * time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if i != v {
			t.Fatalf("got %v, want [0 1 2]", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel()
	fired := false
	if err := k.Run(func(p *Proc) {
		tm := k.After(time.Millisecond, func() { fired = true })
		if !tm.Stop() {
			t.Error("Stop returned false on pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
		p.Sleep(2 * time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	c := NewCond("never")
	err := k.Run(func(p *Proc) { c.Wait(p) })
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 entry", de.Blocked)
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	k := NewKernel()
	c := NewCond("poller")
	err := k.Run(func(p *Proc) {
		k.GoDaemon("poller", func(q *Proc) { c.Wait(q) })
		p.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatalf("daemon blocked forever should not fail Run: %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	k := NewKernel()
	err := k.Run(func(p *Proc) {
		k.Go("bad", func(q *Proc) { panic("boom") })
		p.Sleep(time.Millisecond)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.ProcName != "bad" {
		t.Fatalf("proc = %q, want bad", pe.ProcName)
	}
}

func TestRunEndsWhenRootExits(t *testing.T) {
	k := NewKernel()
	hits := 0
	err := k.Run(func(p *Proc) {
		k.GoDaemon("ticker", func(q *Proc) {
			for {
				q.Sleep(time.Millisecond)
				hits++
			}
		})
		p.Sleep(10*time.Millisecond + time.Microsecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 10 {
		t.Fatalf("ticker hits = %d, want 10", hits)
	}
}

func TestCondSignalFIFO(t *testing.T) {
	k := NewKernel()
	c := NewCond("fifo")
	var woke []string
	if err := k.Run(func(p *Proc) {
		for _, n := range []string{"w1", "w2", "w3"} {
			n := n
			k.Go(n, func(q *Proc) {
				c.Wait(q)
				woke = append(woke, n)
			})
		}
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Signal()
		c.Signal()
		p.Sleep(time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w1" || woke[1] != "w2" || woke[2] != "w3" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := NewKernel()
	c := NewCond("tmo")
	if err := k.Run(func(p *Proc) {
		start := p.Now()
		if c.WaitTimeout(p, time.Millisecond) {
			t.Error("WaitTimeout reported signal on timeout")
		}
		if got := p.Now().Sub(start); got != time.Millisecond {
			t.Errorf("timeout took %v, want 1ms", got)
		}
		// Now a signalled wait: signal arrives before deadline.
		k.After(100*time.Microsecond, func() { c.Signal() })
		if !c.WaitTimeout(p, time.Millisecond) {
			t.Error("WaitTimeout reported timeout on signal")
		}
		if c.Waiting() != 0 {
			t.Errorf("waiters left: %d", c.Waiting())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int]("q")
	var got []int
	if err := k.Run(func(p *Proc) {
		k.Go("consumer", func(c *Proc) {
			for i := 0; i < 3; i++ {
				got = append(got, q.Pop(c))
			}
		})
		p.Sleep(time.Millisecond)
		q.Push(1)
		q.Push(2)
		p.Sleep(time.Millisecond)
		q.Push(3)
		p.Sleep(time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string]("q")
	if err := k.Run(func(p *Proc) {
		if _, ok := q.PopTimeout(p, time.Millisecond); ok {
			t.Error("PopTimeout succeeded on empty queue")
		}
		k.After(time.Millisecond, func() { q.Push("late") })
		v, ok := q.PopTimeout(p, 5*time.Millisecond)
		if !ok || v != "late" {
			t.Errorf("PopTimeout = %q,%v", v, ok)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup("wg")
	n := 0
	if err := k.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			wg.Add(1)
			d := time.Duration(i+1) * time.Millisecond
			k.Go("worker", func(q *Proc) {
				q.Sleep(d)
				n++
				wg.Done()
			})
		}
		wg.Wait(p)
		if n != 5 {
			t.Errorf("n = %d at Wait return", n)
		}
		if p.Now() != Time(5*time.Millisecond) {
			t.Errorf("Wait returned at %v, want 5ms", p.Now())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore("sem", 2)
	active, peak := 0, 0
	if err := k.Run(func(p *Proc) {
		wg := NewWaitGroup("done")
		for i := 0; i < 6; i++ {
			wg.Add(1)
			k.Go("w", func(q *Proc) {
				sem.Acquire(q)
				active++
				if active > peak {
					peak = active
				}
				q.Sleep(time.Millisecond)
				active--
				sem.Release()
				wg.Done()
			})
		}
		wg.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
}

func TestFuture(t *testing.T) {
	k := NewKernel()
	if err := k.Run(func(p *Proc) {
		f := NewFuture[int]("f")
		if f.Done() {
			t.Error("new future done")
		}
		handled := 0
		f.Handler = func(v int, err error) { handled = v }
		k.After(time.Millisecond, func() { f.Complete(42, nil) })
		v, err := f.Wait(p)
		if v != 42 || err != nil {
			t.Errorf("Wait = %d,%v", v, err)
		}
		if handled != 42 {
			t.Errorf("handler saw %d", handled)
		}
		if v2, _ := f.Value(); v2 != 42 {
			t.Errorf("Value = %d", v2)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	k := NewKernel()
	err := k.Run(func(p *Proc) {
		f := NewFuture[int]("f")
		f.Complete(1, nil)
		f.Complete(2, nil)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

// Property: for any set of sleep durations, each Proc observes exactly
// its own total sleep, and the kernel clock ends at the max.
func TestQuickSleepAccounting(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 32 {
			durs = durs[:32]
		}
		k := NewKernel()
		ends := make([]Time, len(durs))
		err := k.Run(func(p *Proc) {
			wg := NewWaitGroup("all")
			for i, d := range durs {
				i, d := i, time.Duration(d)*time.Microsecond
				wg.Add(1)
				k.Go("w", func(q *Proc) {
					q.Sleep(d)
					ends[i] = q.Now()
					wg.Done()
				})
			}
			wg.Wait(p)
		})
		if err != nil {
			return false
		}
		var max Time
		for i, d := range durs {
			want := Time(time.Duration(d) * time.Microsecond)
			if ends[i] != want {
				return false
			}
			if want > max {
				max = want
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves FIFO for any pushed sequence.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(vals []int32) bool {
		k := NewKernel()
		var got []int32
		err := k.Run(func(p *Proc) {
			q := NewQueue[int32]("q")
			for _, v := range vals {
				q.Push(v)
			}
			for range vals {
				got = append(got, q.Pop(p))
			}
		})
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedRunsAreDeterministic(t *testing.T) {
	run := func() (int64, int64, Time) {
		k := NewKernel()
		_ = k.Run(func(p *Proc) {
			q := NewQueue[int]("q")
			for i := 0; i < 10; i++ {
				i := i
				k.Go("prod", func(w *Proc) {
					w.Sleep(time.Duration(i%3) * time.Millisecond)
					q.Push(i)
				})
			}
			for i := 0; i < 10; i++ {
				q.Pop(p)
			}
		})
		return k.EventsFired, k.ProcSwitches, k.Now()
	}
	e1, s1, t1 := run()
	for i := 0; i < 5; i++ {
		e2, s2, t2 := run()
		if e1 != e2 || s1 != s2 || t1 != t2 {
			t.Fatalf("nondeterminism: (%d,%d,%v) vs (%d,%d,%v)", e1, s1, t1, e2, s2, t2)
		}
	}
}

func TestNestedSpawnFromHandler(t *testing.T) {
	k := NewKernel()
	ran := false
	if err := k.Run(func(p *Proc) {
		k.After(time.Millisecond, func() {
			k.Go("late", func(q *Proc) { ran = true })
		})
		p.Sleep(2 * time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("proc spawned from handler never ran")
	}
}

// TestTimerTombstoneCompaction is the regression test for the stopped-
// timer leak: Timers that are armed far in the future and immediately
// stopped used to sit in the event heap until their (distant) due time
// was popped. The kernel now compacts once tombstones outnumber live
// entries, so the heap stays bounded by the live-event count.
func TestTimerTombstoneCompaction(t *testing.T) {
	k := NewKernel()
	if err := k.Run(func(p *Proc) {
		for i := 0; i < 10000; i++ {
			tm := k.After(time.Hour, func() { t.Error("stopped timer fired") })
			if !tm.Stop() {
				t.Fatal("Stop returned false for a pending timer")
			}
		}
		if n := len(k.events); n > 128 {
			t.Fatalf("event heap holds %d entries after stopping 10000 timers; compaction leaked", n)
		}
		p.Sleep(time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleMatchesAfter pins Schedule's contract: identical firing
// time and ordering as After for the same (d, call-order) sequence, and
// pooled events must be recycled.
func TestScheduleMatchesAfter(t *testing.T) {
	run := func(useSchedule bool) ([]int, Time) {
		k := NewKernel()
		var order []int
		err := k.Run(func(p *Proc) {
			for i := 0; i < 8; i++ {
				i := i
				d := time.Duration(8-i) * time.Millisecond
				if useSchedule {
					k.Schedule(d, func() { order = append(order, i) })
				} else {
					k.After(d, func() { order = append(order, i) })
				}
			}
			p.Sleep(20 * time.Millisecond)
		})
		if err != nil {
			t.Fatal(err)
		}
		return order, k.Now()
	}
	o1, t1 := run(false)
	o2, t2 := run(true)
	if t1 != t2 {
		t.Fatalf("final times differ: %v vs %v", t1, t2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("firing order differs at %d: %v vs %v", i, o1, o2)
		}
	}
}

// TestSchedulePoolRecycles checks that fire-and-forget events are
// actually reused instead of reallocated.
func TestSchedulePoolRecycles(t *testing.T) {
	k := NewKernel()
	if err := k.Run(func(p *Proc) {
		for i := 0; i < 1000; i++ {
			k.Schedule(time.Microsecond, func() {})
			p.Sleep(2 * time.Microsecond)
		}
		if len(k.evFree) == 0 {
			t.Fatal("no pooled events on the free list after 1000 Schedules")
		}
	}); err != nil {
		t.Fatal(err)
	}
}
